"""Storage-layout helpers: LAPACK packed and band formats.

LAPACK90 drivers such as ``LA_PPSV`` (packed positive definite) and
``LA_GBSV`` (general band) operate on LAPACK's compact storage schemes.
This module centralizes the index arithmetic and the pack/unpack
conversions so the substrate, the high-level layer, the tests and the
examples all share one definition.

Conventions (0-based, matching the rest of the package):

Packed triangular (``AP`` of length ``n(n+1)/2``):
    * ``uplo='U'``: ``A[i, j] → AP[i + j(j+1)/2]`` for ``i ≤ j``
      (columns of the upper triangle, stacked).
    * ``uplo='L'``: ``A[i, j] → AP[i - j + (2n - j - 1) j / 2]`` for ``i ≥ j``.

General band (``AB`` of shape ``(kl + ku + 1, n)``):
    * ``A[i, j] → AB[ku + i - j, j]`` for ``max(0, j-ku) ≤ i ≤ min(m-1, j+kl)``.

Symmetric/triangular band (``AB`` of shape ``(k + 1, n)``):
    * ``uplo='U'``: ``A[i, j] → AB[k + i - j, j]`` for ``j-k ≤ i ≤ j``.
    * ``uplo='L'``: ``A[i, j] → AB[i - j, j]`` for ``j ≤ i ≤ j+k``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "packed_index", "packed_size", "pack", "unpack",
    "band_to_full", "full_to_band", "sym_band_to_full", "full_to_sym_band",
]


def packed_size(n: int) -> int:
    """Length of a packed triangular array for an n×n matrix."""
    return n * (n + 1) // 2


def packed_index(i: int, j: int, n: int, uplo: str) -> int:
    """Index of ``A[i, j]`` inside the packed array ``AP``."""
    if uplo.upper() == "U":
        if i > j:
            raise IndexError("upper-packed storage holds only i <= j")
        return i + j * (j + 1) // 2
    if i < j:
        raise IndexError("lower-packed storage holds only i >= j")
    return i - j + (2 * n - j - 1) * j // 2


def pack(a: np.ndarray, uplo: str = "U") -> np.ndarray:
    """Pack the ``uplo`` triangle of a square matrix into LAPACK packed form."""
    n = a.shape[0]
    if a.shape[1] != n:
        raise ValueError("pack requires a square matrix")
    ap = np.empty(packed_size(n), dtype=a.dtype)
    if uplo.upper() == "U":
        pos = 0
        for j in range(n):
            ap[pos:pos + j + 1] = a[: j + 1, j]
            pos += j + 1
    else:
        pos = 0
        for j in range(n):
            ap[pos:pos + n - j] = a[j:, j]
            pos += n - j
    return ap


def unpack(ap: np.ndarray, n: int, uplo: str = "U",
           hermitian: bool = False, symmetric: bool = False) -> np.ndarray:
    """Expand a packed array to a full square matrix.

    With ``symmetric=True`` (or ``hermitian=True`` for conjugate symmetry)
    the opposite triangle is filled in by (conjugate) reflection.
    """
    if ap.shape[0] < packed_size(n):
        raise ValueError("packed array too short for order n")
    a = np.zeros((n, n), dtype=ap.dtype)
    if uplo.upper() == "U":
        pos = 0
        for j in range(n):
            a[: j + 1, j] = ap[pos:pos + j + 1]
            pos += j + 1
    else:
        pos = 0
        for j in range(n):
            a[j:, j] = ap[pos:pos + n - j]
            pos += n - j
    if symmetric:
        if uplo.upper() == "U":
            a = a + np.triu(a, 1).T
        else:
            a = a + np.tril(a, -1).T
    elif hermitian:
        if uplo.upper() == "U":
            a = a + np.conj(np.triu(a, 1)).T
        else:
            a = a + np.conj(np.tril(a, -1)).T
        np.fill_diagonal(a, a.diagonal().real)
    return a


def full_to_band(a: np.ndarray, kl: int, ku: int) -> np.ndarray:
    """Compress a general matrix to LAPACK band storage ``(kl+ku+1, n)``."""
    m, n = a.shape
    ab = np.zeros((kl + ku + 1, n), dtype=a.dtype)
    for j in range(n):
        lo = max(0, j - ku)
        hi = min(m - 1, j + kl)
        ab[ku + lo - j: ku + hi - j + 1, j] = a[lo: hi + 1, j]
    return ab


def band_to_full(ab: np.ndarray, m: int, n: int, kl: int, ku: int) -> np.ndarray:
    """Expand LAPACK band storage back to a full ``m×n`` matrix."""
    if ab.shape[0] < kl + ku + 1:
        raise ValueError("band array has too few rows for kl/ku")
    a = np.zeros((m, n), dtype=ab.dtype)
    for j in range(n):
        lo = max(0, j - ku)
        hi = min(m - 1, j + kl)
        a[lo: hi + 1, j] = ab[ku + lo - j: ku + hi - j + 1, j]
    return a


def full_to_sym_band(a: np.ndarray, k: int, uplo: str = "U") -> np.ndarray:
    """Compress the ``uplo`` triangle of a symmetric band matrix to
    ``(k+1, n)`` storage."""
    n = a.shape[0]
    ab = np.zeros((k + 1, n), dtype=a.dtype)
    if uplo.upper() == "U":
        for j in range(n):
            lo = max(0, j - k)
            ab[k + lo - j: k + 1, j] = a[lo: j + 1, j]
    else:
        for j in range(n):
            hi = min(n - 1, j + k)
            ab[0: hi - j + 1, j] = a[j: hi + 1, j]
    return ab


def sym_band_to_full(ab: np.ndarray, n: int, uplo: str = "U",
                     hermitian: bool = False) -> np.ndarray:
    """Expand symmetric/Hermitian band storage to a full matrix."""
    k = ab.shape[0] - 1
    a = np.zeros((n, n), dtype=ab.dtype)
    if uplo.upper() == "U":
        for j in range(n):
            lo = max(0, j - k)
            a[lo: j + 1, j] = ab[k + lo - j: k + 1, j]
        tri = np.triu(a, 1)
        a = a + (np.conj(tri).T if hermitian else tri.T)
    else:
        for j in range(n):
            hi = min(n - 1, j + k)
            a[j: hi + 1, j] = ab[0: hi - j + 1, j]
        tri = np.tril(a, -1)
        a = a + (np.conj(tri).T if hermitian else tri.T)
    if hermitian:
        np.fill_diagonal(a, a.diagonal().real)
    return a
