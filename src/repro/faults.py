"""Deterministic fault registry consulted by the substrate and drivers.

LAPACK90's ERINFO contract has branches no natural input reaches — a
workspace allocation that fails (``LINFO = -100``), a pivot that is
exactly zero in an otherwise well-scaled matrix, an eigeniteration that
refuses to converge.  This module lets the test tier *inject* those
conditions deterministically so every reporting path can be exercised.

The registry lives at the package root so that both :mod:`repro.lapack77`
and :mod:`repro.core` can consult it without importing the test layer
(:mod:`repro.testing.faultinject` is the user-facing wrapper).

Three fault kinds are supported, keyed by a lower-cased routine name:

* ``zero_pivot=j`` — the factorization kernel zeroes its working column
  at step *j*, driving the genuine singular/not-positive-definite path;
* ``alloc=True`` — the driver's workspace guard reports LAPACK90's
  allocation failure (``LINFO = -100``);
* ``linfo=k`` — the substrate routine returns status ``k`` without
  computing (e.g. a forced convergence failure for ``syev``/``gesvd``).

A fault may be armed with a finite ``count``; it disarms after firing
that many times.  Hooks are free when nothing is installed: each first
checks a module-level flag.
"""

from __future__ import annotations

from contextlib import contextmanager

__all__ = ["install", "remove", "clear", "injected", "active",
           "pivot_fault", "alloc_fault", "linfo_fault"]

#: Fast-path flag: True only while at least one fault is installed.
ACTIVE = False

_FAULTS: dict[str, dict] = {}

_KINDS = ("zero_pivot", "alloc", "linfo")


def _sync() -> None:
    global ACTIVE
    ACTIVE = bool(_FAULTS)


def install(routine: str, *, zero_pivot: int | None = None,
            alloc: bool = False, linfo: int | None = None,
            count: int | None = None) -> None:
    """Arm a fault against ``routine`` (case-insensitive).

    ``count`` limits how many times the fault fires before disarming
    itself; ``None`` means it stays armed until removed.
    """
    if zero_pivot is None and not alloc and linfo is None:
        raise ValueError("install() needs one of zero_pivot=, alloc=, linfo=")
    _FAULTS[routine.lower()] = {
        "zero_pivot": zero_pivot,
        "alloc": alloc,
        "linfo": linfo,
        "count": count,
    }
    _sync()


def remove(routine: str) -> None:
    """Disarm the fault installed against ``routine`` (if any)."""
    _FAULTS.pop(routine.lower(), None)
    _sync()


def clear() -> None:
    """Disarm every installed fault."""
    _FAULTS.clear()
    _sync()


@contextmanager
def injected(routine: str, **kwargs):
    """Context manager: arm a fault for the duration of the block."""
    install(routine, **kwargs)
    try:
        yield
    finally:
        remove(routine)


def active() -> bool:
    """True while any fault is armed."""
    return ACTIVE


def _consume(name: str, kind: str):
    fault = _FAULTS.get(name)
    if fault is None or fault[kind] is None or fault[kind] is False:
        return None
    count = fault["count"]
    if count is not None:
        if count <= 0:
            return None
        fault["count"] = count - 1
    return fault[kind]


def pivot_fault(routine: str, j: int) -> bool:
    """True when the factorization kernel should force a zero pivot at
    (local) step ``j``."""
    if not ACTIVE:
        return False
    fault = _FAULTS.get(routine.lower())
    if fault is None or fault["zero_pivot"] is None or fault["zero_pivot"] != j:
        return False
    return _consume(routine.lower(), "zero_pivot") is not None


def alloc_fault(routine: str) -> bool:
    """True when the driver should simulate a failed workspace
    allocation (``LINFO = -100``)."""
    if not ACTIVE:
        return False
    return _consume(routine.lower(), "alloc") is not None


def linfo_fault(routine: str) -> int | None:
    """Forced status code for ``routine``, or ``None``."""
    if not ACTIVE:
        return None
    return _consume(routine.lower(), "linfo")
