"""Deterministic fault registry consulted by the substrate and drivers.

LAPACK90's ERINFO contract has branches no natural input reaches — a
workspace allocation that fails (``LINFO = -100``), a pivot that is
exactly zero in an otherwise well-scaled matrix, an eigeniteration that
refuses to converge.  This module lets the test tier *inject* those
conditions deterministically so every reporting path can be exercised.

The registry lives at the package root so that both :mod:`repro.lapack77`
and :mod:`repro.core` can consult it without importing the test layer
(:mod:`repro.testing.faultinject` is the user-facing wrapper).

Three fault kinds are supported, keyed by a lower-cased routine name:

* ``zero_pivot=j`` — the factorization kernel zeroes its working column
  at step *j*, driving the genuine singular/not-positive-definite path;
* ``alloc=True`` — the driver's workspace guard reports LAPACK90's
  allocation failure (``LINFO = -100``);
* ``linfo=k`` — the substrate routine returns status ``k`` without
  computing (e.g. a forced convergence failure for ``syev``/``gesvd``).

A fault may be armed with a finite ``count``; it disarms after firing
that many times.  Hooks are free when nothing is installed: each first
checks a module-level flag.

A second, independent registry — the **chaos harness** — injects faults
at the *dispatch seam* (:mod:`repro.backends.kernels`) rather than
inside the substrate kernels, so the resilience layer's retry ladder and
circuit breakers can be exercised deterministically against any backend:

* ``flaky_every=k`` — every *k*-th dispatched call of the routine raises
  a transient :class:`InjectedFault` before the kernel runs;
* ``fail_next=n`` — the next *n* dispatched calls fail, then the routine
  is healthy again (the breaker trip/recover shape);
* ``latency=s`` — sleep *s* seconds before the kernel runs (for
  deadline testing);
* ``error="alloc"`` — raise ``MemoryError`` instead of
  :class:`InjectedFault` (a transient allocation failure).

Chaos faults are keyed ``(routine, backend)`` (``backend=None`` matches
any) and — unlike the substrate registry above — arming them does *not*
reroute dispatch to the reference backend: the whole point is to fail
the backend actually selected.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from ._sync import STATE_LOCK

__all__ = ["install", "remove", "clear", "injected", "active",
           "pivot_fault", "alloc_fault", "linfo_fault",
           "InjectedFault", "chaos_install", "chaos_remove",
           "chaos_clear", "chaos_active", "chaos", "chaos_fault",
           "default_chaos_profile", "CHAOS_DEFAULT_ROUTINES"]

#: Fast-path flag: True only while at least one fault is installed.
ACTIVE = False

_FAULTS: dict[str, dict] = {}

_KINDS = ("zero_pivot", "alloc", "linfo")


def _sync() -> None:
    global ACTIVE
    ACTIVE = bool(_FAULTS)


def install(routine: str, *, zero_pivot: int | None = None,
            alloc: bool = False, linfo: int | None = None,
            count: int | None = None) -> None:
    """Arm a fault against ``routine`` (case-insensitive).

    ``count`` limits how many times the fault fires before disarming
    itself; ``None`` means it stays armed until removed.
    """
    if zero_pivot is None and not alloc and linfo is None:
        raise ValueError("install() needs one of zero_pivot=, alloc=, linfo=")
    with STATE_LOCK:
        _FAULTS[routine.lower()] = {
            "zero_pivot": zero_pivot,
            "alloc": alloc,
            "linfo": linfo,
            "count": count,
        }
        _sync()


def remove(routine: str) -> None:
    """Disarm the fault installed against ``routine`` (if any)."""
    with STATE_LOCK:
        _FAULTS.pop(routine.lower(), None)
        _sync()


def clear() -> None:
    """Disarm every installed fault."""
    with STATE_LOCK:
        _FAULTS.clear()
        _sync()


@contextmanager
def injected(routine: str, **kwargs):
    """Context manager: arm a fault for the duration of the block."""
    install(routine, **kwargs)
    try:
        yield
    finally:
        remove(routine)


def active() -> bool:
    """True while any fault is armed."""
    return ACTIVE  # laflow: benign-race — single boolean, worst case one stale hook consult


def _consume(name: str, kind: str):
    fault = _FAULTS.get(name)
    if fault is None or fault[kind] is None or fault[kind] is False:
        return None
    count = fault["count"]
    if count is not None:
        if count <= 0:
            return None
        fault["count"] = count - 1
    return fault[kind]


def pivot_fault(routine: str, j: int) -> bool:
    """True when the factorization kernel should force a zero pivot at
    (local) step ``j``."""
    if not ACTIVE:  # laflow: benign-race — hot-path gate; the locked lookup below re-checks
        return False
    with STATE_LOCK:
        fault = _FAULTS.get(routine.lower())
        if fault is None or fault["zero_pivot"] is None \
                or fault["zero_pivot"] != j:
            return False
        return _consume(routine.lower(), "zero_pivot") is not None


def alloc_fault(routine: str) -> bool:
    """True when the driver should simulate a failed workspace
    allocation (``LINFO = -100``)."""
    if not ACTIVE:  # laflow: benign-race — hot-path gate; the locked lookup below re-checks
        return False
    with STATE_LOCK:
        return _consume(routine.lower(), "alloc") is not None


def linfo_fault(routine: str) -> int | None:
    """Forced status code for ``routine``, or ``None``."""
    if not ACTIVE:  # laflow: benign-race — hot-path gate; the locked lookup below re-checks
        return None
    with STATE_LOCK:
        return _consume(routine.lower(), "linfo")


# ---------------------------------------------------------------------
# The chaos harness (dispatch-seam faults).
# ---------------------------------------------------------------------

class InjectedFault(RuntimeError):
    """The transient error the chaos harness raises in place of a kernel
    call.  Deliberately *not* a :class:`repro.errors.LinAlgError`: the
    resilience layer treats contract outcomes (singular matrix, …) as
    verdicts and only retries genuine kernel failures like this one."""


#: Fast-path flag: True only while at least one chaos fault is armed.
CHAOS_ACTIVE = False

_CHAOS: dict[str, dict] = {}


def _chaos_sync() -> None:
    global CHAOS_ACTIVE
    CHAOS_ACTIVE = bool(_CHAOS)


def chaos_install(routine: str, *, flaky_every: int | None = None,
                  fail_next: int | None = None,
                  latency: float | None = None,
                  error: str = "transient",
                  backend: str | None = None) -> None:
    """Arm a chaos fault against ``routine`` at the dispatch seam.

    ``backend`` restricts the fault to dispatches served by that backend
    (``None`` matches any — including the reference rung an escalation
    lands on).  ``error`` picks the raised class: ``"transient"``
    (:class:`InjectedFault`) or ``"alloc"`` (``MemoryError``).
    """
    if flaky_every is None and fail_next is None and latency is None:
        raise ValueError("chaos_install() needs one of flaky_every=, "
                         "fail_next=, latency=")
    if flaky_every is not None and flaky_every < 1:
        raise ValueError("flaky_every must be >= 1")
    if error not in ("transient", "alloc"):
        raise ValueError(f"error must be 'transient' or 'alloc', "
                         f"got {error!r}")
    with STATE_LOCK:
        _CHAOS[routine.lower()] = {
            "flaky_every": flaky_every,
            "fail_next": fail_next,
            "latency": latency,
            "error": error,
            "backend": backend,
            "calls": 0,
        }
        _chaos_sync()


def chaos_remove(routine: str) -> None:
    """Disarm the chaos fault installed against ``routine`` (if any)."""
    with STATE_LOCK:
        _CHAOS.pop(routine.lower(), None)
        _chaos_sync()


def chaos_clear() -> None:
    """Disarm every chaos fault."""
    with STATE_LOCK:
        _CHAOS.clear()
        _chaos_sync()


def chaos_active() -> bool:
    """True while any chaos fault is armed."""
    return CHAOS_ACTIVE  # laflow: benign-race — single boolean, worst case one stale report


@contextmanager
def chaos(routine: str, **kwargs):
    """Context manager: arm a chaos fault for the duration of the block."""
    chaos_install(routine, **kwargs)
    try:
        yield
    finally:
        chaos_remove(routine)


def chaos_fault(routine: str, backend: str) -> Exception | None:
    """Consulted by the dispatch seam before each kernel attempt.

    Applies any armed latency (sleeps here) and returns the exception
    the attempt should raise instead of running the kernel, or ``None``
    to proceed.  Calls filtered out by a ``backend=`` restriction do not
    advance the fault's counters.
    """
    if not CHAOS_ACTIVE:  # laflow: benign-race — hot-path gate; the locked lookup below re-checks
        return None
    with STATE_LOCK:
        spec = _CHAOS.get(routine.lower())
        if spec is None or (spec["backend"] is not None
                            and spec["backend"] != backend):
            return None
        spec["calls"] += 1
        fire = False
        if spec["fail_next"] is not None and spec["fail_next"] > 0:
            spec["fail_next"] -= 1
            fire = True
        elif spec["flaky_every"] is not None \
                and spec["calls"] % spec["flaky_every"] == 0:
            fire = True
        latency = spec["latency"]
        error = spec["error"]
    if latency:
        time.sleep(latency)
    if not fire:
        return None
    if error == "alloc":
        return MemoryError(
            f"injected transient allocation failure in {routine!r}")
    return InjectedFault(f"injected transient fault in {routine!r} "
                         f"(backend {backend!r})")


#: Hot kernels the ``REPRO_CHAOS=1`` profile makes intermittently flaky.
CHAOS_DEFAULT_ROUTINES = (
    "gesv", "gbsv", "posv", "sysv", "hesv", "getrf", "potrf", "sytrf",
    "getrs", "potrs", "gels", "syev", "heev", "gesvd", "geev",
)


def default_chaos_profile(every: int = 5) -> None:
    """Arm the CI chaos profile: every ``every``-th dispatched call of
    each hot kernel raises a transient fault.  With the default
    resilience policy (one same-kernel retry) a suite run under this
    profile must pass through degradation — retries and escalation —
    rather than crash."""
    for routine in CHAOS_DEFAULT_ROUTINES:
        chaos_install(routine, flaky_every=every)
