"""Process-global numerical-exception policy (check / warn / propagate).

LAPACK90 funnels every driver's status through one routine (``ERINFO``,
see :mod:`repro.errors`), but the reference contract only covers argument
errors and exact computational failures.  Non-finite inputs (NaN/Inf)
either propagate silently or surface as a misleading
``SingularMatrix``/``NotPositiveDefinite`` — the inconsistency catalogued
by Demmel et al., *Proposed Consistent Exception Handling for the BLAS
and LAPACK* (arXiv:2207.09281).  This module makes the behaviour a
uniform, explicit policy:

* ``nonfinite="check"`` — drivers screen their array arguments and
  report :class:`repro.errors.NonFiniteInput` (code ``NONFINITE - i``)
  through the normal ERINFO channel;
* ``nonfinite="warn"`` — a :class:`repro.errors.NonFiniteWarning` is
  emitted and the computation proceeds;
* ``nonfinite="propagate"`` (default) — no screening; NaN/Inf flow
  through arithmetic exactly as in reference LAPACK.

Two further knobs complete the policy:

* ``rcond_guard`` — ``"warn"`` makes the expert drivers emit a
  :class:`repro.errors.IllConditionedWarning` alongside their uniform
  ``info = n+1`` verdict when RCOND drops below machine epsilon
  (``"silent"``, the default, keeps today's store-only behaviour);
* ``fallbacks`` — enables the graceful-degradation ladder in the simple
  drivers (``la_posv`` → symmetric-indefinite retry, ``la_gesv`` /
  ``la_gbsv`` → expert equilibrate-and-refine retry), each retry being
  recorded on the caller's :class:`repro.errors.Info` handle and
  announced with a :class:`repro.errors.DriverFallbackWarning`.

The policy is process-global and mutable (like the block-size table in
:mod:`repro.config`); :func:`exception_policy` scopes a change to a
``with`` block.

This module also owns the shared finiteness predicates so the substrate
kernels agree with reference LAPACK in ``"propagate"`` mode: reference
``xPOTF2``/``xPBTRF`` test ``AJJ <= 0 .OR. DISNAN(AJJ)`` — an infinite
pivot is *not* a failure there, it propagates — and ``xNRM2`` returns the
non-finite magnitude unchanged.
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from ._sync import STATE_LOCK
from .errors import (NONFINITE, IllConditionedWarning, NonFiniteInput,
                     NonFiniteWarning)

__all__ = ["ExceptionPolicy", "get_policy", "set_policy",
           "exception_policy", "screen", "screen_stack", "illcond_event",
           "disnan", "notfinite", "has_nonfinite"]

_NONFINITE_MODES = ("check", "warn", "propagate")
_RCOND_MODES = ("warn", "silent")


@dataclass
class ExceptionPolicy:
    """The three knobs described in the module docstring."""
    nonfinite: str = "propagate"
    rcond_guard: str = "silent"
    fallbacks: bool = False


_POLICY = ExceptionPolicy()


def get_policy() -> ExceptionPolicy:
    """The live process-global policy object."""
    return _POLICY  # laflow: benign-race — stable object identity; knob reads are word-sized and tear-free


def set_policy(nonfinite: str | None = None, rcond_guard: str | None = None,
               fallbacks: bool | None = None) -> ExceptionPolicy:
    """Mutate the process-global policy; ``None`` leaves a knob alone."""
    if nonfinite is not None and nonfinite not in _NONFINITE_MODES:
        raise ValueError(f"nonfinite mode must be one of "
                         f"{_NONFINITE_MODES}, got {nonfinite!r}")
    if rcond_guard is not None and rcond_guard not in _RCOND_MODES:
        raise ValueError(f"rcond_guard must be one of {_RCOND_MODES}, "
                         f"got {rcond_guard!r}")
    with STATE_LOCK:
        if nonfinite is not None:
            _POLICY.nonfinite = nonfinite
        if rcond_guard is not None:
            _POLICY.rcond_guard = rcond_guard
        if fallbacks is not None:
            _POLICY.fallbacks = bool(fallbacks)
        return _POLICY


@contextmanager
def exception_policy(nonfinite: str | None = None,
                     rcond_guard: str | None = None,
                     fallbacks: bool | None = None):
    """Scope a policy change to a ``with`` block::

        with exception_policy(nonfinite="check", fallbacks=True):
            la_gesv(a, b)
    """
    with STATE_LOCK:
        old = (_POLICY.nonfinite, _POLICY.rcond_guard, _POLICY.fallbacks)
        set_policy(nonfinite, rcond_guard, fallbacks)
    try:
        yield _POLICY
    finally:
        set_policy(nonfinite=old[0], rcond_guard=old[1],
                   fallbacks=old[2])


# ---------------------------------------------------------------------------
# Shared finiteness predicates (the one home for what used to be ad-hoc
# checks in blas.level1, lapack77.chol and lapack77.banded).

def disnan(x) -> bool:
    """Scalar NaN test — LAPACK's ``DISNAN``.  A pivot test must use this
    (not ``isfinite``): reference ``xPOTF2`` lets an infinite pivot
    propagate rather than mislabel it *not positive definite*."""
    return bool(np.isnan(x))


def notfinite(x) -> bool:
    """Scalar NaN-or-Inf test (``.NOT. ISFINITE`` in the proposed
    consistent-exception-handling BLAS)."""
    return not np.isfinite(x)


def has_nonfinite(a: np.ndarray) -> bool:
    """True when the array holds at least one NaN or Inf entry."""
    return a.size > 0 and not bool(np.all(np.isfinite(a)))


# ---------------------------------------------------------------------------
# Driver-side hooks.

def screen(srname: str, *args):
    """Screen driver inputs per the active policy.

    ``args`` are ``(position, array)`` pairs, 1-based positions matching
    the driver's documented argument order.  Returns ``(linfo, exc)`` —
    ``(0, None)`` when nothing (or nothing actionable) was found, else
    the ``NONFINITE - i`` code with a pre-built
    :class:`repro.errors.NonFiniteInput` for ERINFO to raise or store.
    """
    mode = _POLICY.nonfinite  # laflow: benign-race — one tear-free knob read snapshots the mode for this screen
    if mode == "propagate":
        return 0, None
    for position, arr in args:
        if not isinstance(arr, np.ndarray) or arr.dtype.kind not in "fc":
            continue
        if has_nonfinite(arr):
            if mode == "check":
                return NONFINITE - position, NonFiniteInput(srname, position)
            warnings.warn(
                f"{srname}: argument {position} contains non-finite "
                "entries; they will propagate through the computation",
                NonFiniteWarning, stacklevel=3)
    return 0, None


def screen_stack(srname: str, batch: int, *args):
    """Vectorized batch-mode screen: one pass per stacked operand.

    ``args`` are ``(position, stack)`` pairs whose stacks carry a
    leading batch axis of size *batch*.  Returns ``(codes, warned)``:

    * ``codes`` — int64 array of length *batch*; in ``"check"`` mode
      problem *k*'s entry is the ``NONFINITE - i`` code of its first
      offending argument (argument order wins, matching the per-problem
      :func:`screen` ladder), 0 when clean;
    * ``warned`` — in ``"warn"`` mode, a list of
      ``(position, indices)`` pairs naming the offending problems per
      argument, for the caller to announce batch-indexed (the policy
      layer does not know the batch wrapper's rate-limit windows).

    ``"propagate"`` mode returns all-zero codes and no warnings, like
    the scalar screen.
    """
    codes = np.zeros(batch, dtype=np.int64)
    mode = _POLICY.nonfinite  # laflow: benign-race — one tear-free knob read snapshots the mode for this screen
    if mode == "propagate":
        return codes, []
    warned = []
    for position, stack in args:
        if not isinstance(stack, np.ndarray) \
                or stack.dtype.kind not in "fc" or stack.size == 0:
            continue
        bad = ~np.all(np.isfinite(stack.reshape(batch, -1)), axis=1)
        if not bad.any():
            continue
        if mode == "check":
            hit = bad & (codes == 0)
            codes[hit] = NONFINITE - position
        else:
            warned.append((position, np.nonzero(bad)[0]))
    return codes, warned


def illcond_event(srname: str, rcond: float) -> None:
    """Report an ill-conditioning verdict (RCOND below machine epsilon)
    per the active policy.  The caller still sets ``info = n+1``; this
    hook only decides whether the condition is also announced."""
    if _POLICY.rcond_guard == "warn":  # laflow: benign-race — one tear-free knob read; worst case one warning under the departing mode
        warnings.warn(
            f"{srname}: matrix is singular to working precision "
            f"(RCOND = {rcond:.3e}); results carry info = n+1",
            IllConditionedWarning, stacklevel=3)
