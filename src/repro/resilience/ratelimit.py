"""Windowed warning aggregation.

The ROADMAP's observability item calls for replacing once-per-key
warning suppression with *rate-limited aggregation*: a key may announce
at most once per window, and when it next announces the message carries
how many identical events were swallowed in between.  The class is
clock-injectable so the window arithmetic is deterministically testable.
"""

from __future__ import annotations

import threading
import time

__all__ = ["RateLimiter"]


class RateLimiter:
    """At most one emission per key per window, counting suppressions.

    :meth:`tick` returns ``(emit, suppressed)``: whether the caller
    should emit now, and how many ticks were suppressed since the last
    emission (non-zero only on the first tick after a window expires).
    A key's first tick always emits.
    """

    def __init__(self, window: float = 60.0, clock=time.monotonic):
        self.window = float(window)
        self._clock = clock
        self._lock = threading.Lock()
        self._seen: dict = {}  # key -> [last_emit_time, suppressed_count]

    def tick(self, key, now: float | None = None,
             window: float | None = None) -> tuple[bool, int]:
        """Record one event for ``key``; decide whether to emit.

        ``now`` overrides the clock and ``window`` the instance window
        (both for tests and for callers whose window is a live policy
        knob).
        """
        if now is None:
            now = self._clock()
        if window is None:
            window = self.window
        with self._lock:
            entry = self._seen.get(key)
            if entry is None:
                self._seen[key] = [now, 0]
                return True, 0
            last, suppressed = entry
            if now - last >= window:
                entry[0] = now
                entry[1] = 0
                return True, suppressed
            entry[1] = suppressed + 1
            return False, 0

    def reset(self, where=None) -> int:
        """Forget keys (their next tick emits again); returns the count.

        ``where`` is an optional key predicate for selective resets —
        the backend layer passes ``lambda key: key[0] == departed`` on
        a backend switch so only the departed substrate's windows
        reopen, leaving the surviving backend's suppression history
        intact.
        """
        with self._lock:
            if where is None:
                dropped = len(self._seen)
                self._seen.clear()
                return dropped
            stale = [k for k in self._seen if where(k)]
            for k in stale:
                del self._seen[k]
            return len(stale)
