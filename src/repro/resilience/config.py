"""The process-global resilience policy (retries, breaker, windows).

One user-facing knob set, mirroring :mod:`repro.policy`: a mutable
process-global :class:`ResiliencePolicy` behind
:func:`get_resilience`/:func:`set_resilience`, with
:func:`resilience_policy` scoping a change to a ``with`` block.  Every
mutation holds :data:`repro._sync.STATE_LOCK`; lalint rule LA016
enforces that discipline (and forbids foreign modules from naming
``_RESILIENCE`` at all).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

from .._sync import STATE_LOCK

__all__ = ["ResiliencePolicy", "get_resilience", "set_resilience",
           "resilience_policy"]


@dataclass
class ResiliencePolicy:
    """The resilience knobs.

    ``retries`` — same-kernel retry budget per rung for transient
    (non-``LinAlgError``) kernel failures; ``breaker_threshold`` —
    consecutive failures of a ``(backend, routine)`` pair that trip its
    circuit breaker open; ``breaker_cooldown`` — seconds an open breaker
    waits before admitting a half-open recovery probe;
    ``warning_window`` — seconds between repeated
    ``BackendFallbackWarning`` announcements for one key (the
    rate-limited aggregation window).
    """

    retries: int = 1
    breaker_threshold: int = 3
    breaker_cooldown: float = 30.0
    warning_window: float = 60.0


_RESILIENCE = ResiliencePolicy()


def get_resilience() -> ResiliencePolicy:
    """The live process-global resilience policy object."""
    return _RESILIENCE  # laflow: benign-race — stable object identity; knob reads are word-sized and tear-free


def set_resilience(retries: int | None = None,
                   breaker_threshold: int | None = None,
                   breaker_cooldown: float | None = None,
                   warning_window: float | None = None) -> ResiliencePolicy:
    """Mutate the process-global policy; ``None`` leaves a knob alone."""
    if retries is not None and retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries!r}")
    if breaker_threshold is not None and breaker_threshold < 1:
        raise ValueError(f"breaker_threshold must be >= 1, "
                         f"got {breaker_threshold!r}")
    if breaker_cooldown is not None and breaker_cooldown < 0:
        raise ValueError(f"breaker_cooldown must be >= 0, "
                         f"got {breaker_cooldown!r}")
    if warning_window is not None and warning_window < 0:
        raise ValueError(f"warning_window must be >= 0, "
                         f"got {warning_window!r}")
    with STATE_LOCK:
        if retries is not None:
            _RESILIENCE.retries = int(retries)
        if breaker_threshold is not None:
            _RESILIENCE.breaker_threshold = int(breaker_threshold)
        if breaker_cooldown is not None:
            _RESILIENCE.breaker_cooldown = float(breaker_cooldown)
        if warning_window is not None:
            _RESILIENCE.warning_window = float(warning_window)
        return _RESILIENCE


@contextmanager
def resilience_policy(retries: int | None = None,
                      breaker_threshold: int | None = None,
                      breaker_cooldown: float | None = None,
                      warning_window: float | None = None):
    """Scope a resilience-policy change to a ``with`` block::

        with resilience_policy(retries=0, breaker_threshold=2):
            la_gesv(a, b)
    """
    with STATE_LOCK:
        old = (_RESILIENCE.retries, _RESILIENCE.breaker_threshold,
               _RESILIENCE.breaker_cooldown, _RESILIENCE.warning_window)
        set_resilience(retries, breaker_threshold, breaker_cooldown,
                       warning_window)
    try:
        yield _RESILIENCE
    finally:
        set_resilience(retries=old[0], breaker_threshold=old[1],
                       breaker_cooldown=old[2], warning_window=old[3])
