"""Per-``(backend, routine)`` circuit breakers over the dispatch seam.

A breaker guards one ``(backend, routine)`` pair.  It is *closed* (calls
flow) until :attr:`~repro.resilience.config.ResiliencePolicy.breaker_threshold`
consecutive kernel failures trip it *open*: dispatch then routes the
routine to the reference substrate without attempting the backend at
all.  After ``breaker_cooldown`` seconds the breaker turns *half-open*
and admits exactly one recovery probe; a probe that succeeds closes the
breaker (the entry is deleted — the registry only ever holds unhealthy
pairs), a probe that fails re-opens it and restarts the cooldown.

Contract verdicts (``LinAlgError`` — singular matrix, failed
convergence) are *successes* here: the kernel did its job; the input was
the problem.  Only genuine kernel failures (anything else raised) count
against a pair.

All registry mutations hold :data:`repro._sync.STATE_LOCK`; lalint rule
LA016 enforces that and forbids foreign modules from touching
``_BREAKERS`` directly.  ``TRACKING`` is the lock-free fast gate
(mirroring ``faults.ACTIVE``): dispatch skips the breaker branch
entirely while it is False.
"""

from __future__ import annotations

import time

from .._sync import STATE_LOCK
from .config import get_resilience

__all__ = ["admit", "record_failure", "record_success", "breaker_state",
           "states", "reset_breakers"]

#: Fast-path flag: True only while at least one pair is being tracked.
TRACKING = False

# key -> {"failures": int, "open_since": float|None, "probing": bool,
#         "probe_at": float}; a pair absent from the table is healthy.
_BREAKERS: dict[tuple[str, str], dict] = {}


def _sync() -> None:
    global TRACKING
    TRACKING = bool(_BREAKERS)


def admit(backend: str, routine: str) -> str:
    """Gate one dispatch attempt for ``(backend, routine)``.

    Returns the call's breaker disposition: ``"closed"`` (untracked or
    still under threshold — call normally), ``"probe"`` (half-open; this
    call is the single recovery probe), or ``"open"`` (do not call the
    backend; route to reference).
    """
    if not TRACKING:  # laflow: benign-race — hot-path gate; an untracked pair is healthy by definition
        return "closed"
    key = (backend, routine)
    now = time.monotonic()
    with STATE_LOCK:
        entry = _BREAKERS.get(key)
        if entry is None or entry["open_since"] is None:
            return "closed"
        if entry["probing"]:
            return "open"
        if now - entry["open_since"] >= get_resilience().breaker_cooldown:
            entry["probing"] = True
            entry["probe_at"] = now
            return "probe"
        return "open"


def record_failure(backend: str, routine: str) -> str | None:
    """Count one genuine kernel failure against ``(backend, routine)``.

    Returns a transition note for the call log — ``"open"`` when this
    failure trips the breaker (or fails a recovery probe, re-opening
    it) — or ``None`` when the pair is still closed.
    """
    key = (backend, routine)
    now = time.monotonic()
    with STATE_LOCK:
        entry = _BREAKERS.get(key)
        if entry is None:
            entry = _BREAKERS[key] = {"failures": 0, "open_since": None,  # laflow: atomic-split — each transition is atomic; admit→record deliberately brackets the unlocked kernel call
                                      "probing": False, "probe_at": 0.0}
            _sync()
        if entry["probing"]:
            # Failed recovery probe: re-open and restart the cooldown.
            entry["probing"] = False
            entry["open_since"] = now
            return "open"
        entry["failures"] += 1
        if entry["open_since"] is None \
                and entry["failures"] >= get_resilience().breaker_threshold:
            entry["open_since"] = now
            return "open"
        return None


def record_success(backend: str, routine: str) -> str | None:
    """Count one successful kernel call (or contract verdict) for
    ``(backend, routine)``.

    A healthy pair stays untracked (free).  A tracked pair is deleted —
    whether it was merely accumulating failures or completing a recovery
    probe — so the registry only ever holds unhealthy pairs.  Returns
    ``"closed"`` when this success closed a probing breaker (worth a
    call-log note), else ``None``.
    """
    if not TRACKING:  # laflow: benign-race — hot-path gate; a pair going untracked mid-call just skips one bookkeeping pop
        return None
    key = (backend, routine)
    with STATE_LOCK:
        entry = _BREAKERS.pop(key, None)  # laflow: atomic-split — each transition is atomic; admit→record deliberately brackets the unlocked kernel call
        _sync()
        if entry is not None and entry["probing"]:
            return "closed"
        return None


def breaker_state(backend: str, routine: str) -> str:
    """The pair's current state: ``"closed"``, ``"open"``, or
    ``"half-open"`` (cooldown elapsed or probe in flight)."""
    if not TRACKING:  # laflow: benign-race — hot-path gate; an untracked pair reports closed correctly
        return "closed"
    now = time.monotonic()
    with STATE_LOCK:
        entry = _BREAKERS.get((backend, routine))
        if entry is None or entry["open_since"] is None:
            return "closed"
        if entry["probing"] \
                or now - entry["open_since"] >= get_resilience().breaker_cooldown:
            return "half-open"
        return "open"


def states() -> dict[str, str]:
    """Snapshot of every tracked pair, ``"backend:routine" -> state``
    (pairs still closed but accumulating failures report ``"closed"``)."""
    out: dict[str, str] = {}
    if not TRACKING:  # laflow: benign-race — snapshot API; an empty report for a just-tracked pair is a valid snapshot
        return out
    with STATE_LOCK:
        keys = list(_BREAKERS)
    for backend, routine in keys:
        out[f"{backend}:{routine}"] = breaker_state(backend, routine)
    return out


def reset_breakers() -> None:
    """Forget all breaker state (tests and operator resets)."""
    with STATE_LOCK:
        _BREAKERS.clear()
        _sync()
