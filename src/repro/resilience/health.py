"""Liveness probing: one small solve per registered backend.

:func:`healthcheck` answers "which substrates can actually serve a
solve right now, and which breakers are open?" — the operational
companion to the passive breaker registry.  Each probe is a real
``la_gesv`` call pinned to one backend, so it travels the full dispatch
seam: a probe against a half-open pair doubles as the breaker's
recovery probe, and a healthy run closes it.

Imports of the driver layer are deferred into the function body: the
resilience package is imported by :mod:`repro.backends`, which the
drivers themselves import.
"""

from __future__ import annotations

import numpy as np

from . import breaker
from .config import get_resilience

__all__ = ["healthcheck"]


def healthcheck() -> dict:
    """Probe every registered backend with a small solve.

    Returns a report dict::

        {"backends": {name: {"ok": bool, "error": str | None,
                             "residual": float | None,
                             "batch": {"ok": bool, "error": str | None,
                                       "modes": {"gesv": "native" |
                                                 "stack" | "loop",
                                                 ...}}}},
         "breakers": {"backend:routine": "open" | "half-open" | ...},
         "dispatch": {"structure_cache": {"entries": ..., "hits": ...,
                                          "misses": ...,
                                          "invalidated": ...,
                                          "epoch": ...}},
         "policy": {"retries": ..., "breaker_threshold": ...,
                    "breaker_cooldown": ..., "warning_window": ...}}

    ``breakers`` holds only unhealthy pairs (an empty dict means every
    tracked pair recovered).  The probe solves a fixed well-conditioned
    3×3 system, so ``residual`` should be at round-off level for any
    correct substrate.  The ``batch`` entry reports the backend's batch
    capability per batchable kernel — ``"stack"`` when a ``*_stack``
    entry crosses the dispatch seam once per stack, ``"loop"`` when the
    derived wrapper loops per problem inside the seam — and probes a
    2-problem ``batch_gesv`` over the same fixed system.  ``dispatch``
    surfaces the front door's per-array structure-cache counters
    (:func:`repro.dispatch_front.cache.stats`).
    """
    from ..backends import available_backends, use_backend
    from ..backends.batched import batch_capability
    from ..batch import BatchInfo, batch_gesv
    from ..core.linear_equations import la_gesv
    from ..errors import Info

    a0 = np.array([[4.0, 1.0, 0.0],
                   [1.0, 3.0, 1.0],
                   [0.0, 1.0, 2.0]])
    b0 = a0 @ np.array([1.0, -1.0, 2.0])

    report: dict = {"backends": {}, "breakers": {}, "policy": {}}
    capability = batch_capability()
    for name in available_backends():
        entry = {"ok": False, "error": None, "residual": None}
        try:
            info = Info()
            x = b0.copy()
            with use_backend(name):
                la_gesv(a0.copy(), x, info=info)
            residual = float(np.max(np.abs(a0 @ x - b0)))
            entry["residual"] = residual
            entry["ok"] = int(info) == 0 and residual < 1e-10
            if not entry["ok"]:
                entry["error"] = "info={}, residual={:.3e}".format(
                    int(info), residual)
        except Exception as exc:  # a probe must never take the caller down
            entry["error"] = "{}: {}".format(type(exc).__name__, exc)
        entry["batch"] = {"ok": False, "error": None,
                          "modes": capability.get(name, {})}
        try:
            binfo = BatchInfo()
            astack = np.stack([a0, a0])
            bstack = np.stack([b0, b0])
            with use_backend(name):
                xb = batch_gesv(astack, bstack, info=binfo)
            bres = float(np.max(np.abs(
                np.einsum("kij,kj->ki", np.stack([a0, a0]), xb)
                - np.stack([b0, b0]))))
            entry["batch"]["ok"] = binfo.first_failure < 0 and bres < 1e-10
            if not entry["batch"]["ok"]:
                entry["batch"]["error"] = "codes={}, residual={:.3e}".format(
                    binfo.codes(), bres)
        except Exception as exc:
            entry["batch"]["error"] = "{}: {}".format(
                type(exc).__name__, exc)
        report["backends"][name] = entry

    report["breakers"] = breaker.states()
    from ..dispatch_front import cache as _structure_cache
    report["dispatch"] = {"structure_cache": _structure_cache.stats()}
    policy = get_resilience()
    report["policy"] = {
        "retries": policy.retries,
        "breaker_threshold": policy.breaker_threshold,
        "breaker_cooldown": policy.breaker_cooldown,
        "warning_window": policy.warning_window,
    }
    return report
