"""The resilient dispatch seam: retries, escalation, breakers, chaos.

:func:`call` is what :class:`repro.backends.kernels.KernelProxy`
delegates to.  The registry's ``resolve`` and ``get_backend_name`` are
passed *in* as parameters rather than imported, so this package never
imports :mod:`repro.backends` at module level (the backends package
imports :mod:`repro.faults` and the drivers import the backends — a
top-level import here would close a cycle).

The undeadlined, un-chaosed, reference-served call — the overwhelming
majority — takes a fast path that adds two flag reads and one name
compare over the pre-resilience seam.  Everything else goes through
:func:`_resilient_call`:

1. **Classify.**  ``LinAlgError`` is a contract *verdict* (singular
   matrix, failed convergence): never retried, counts as breaker
   success, re-raised as-is.  ``KeyboardInterrupt``/``SystemExit``
   always propagate.  Anything else is a *transient kernel failure*.
2. **Retry.**  Transient failures retry the same kernel up to the
   policy's ``retries`` budget.  Because kernels mutate their array
   arguments in place, the arrays are snapshotted up front and restored
   before every re-attempt.
3. **Escalate.**  When a non-reference rung exhausts its budget, the
   call escalates to the reference substrate (the accelerated→reference
   ladder; the drivers' own simple→expert ladder sits above this seam).
4. **Break.**  Consecutive transient failures trip the pair's circuit
   breaker (:mod:`repro.resilience.breaker`); an open breaker routes
   straight to reference with a rate-limited
   :class:`~repro.errors.BackendFallbackWarning`.
5. **Record.**  Failures, escalations, and breaker transitions land on
   the driver's open call-log frame, surfacing as ``info.attempts`` /
   ``info.breaker``.  Clean first-attempt successes record nothing.
"""

from __future__ import annotations

import warnings

import numpy as np

from .. import faults
from ..errors import BackendFallbackWarning, LinAlgError
from . import breaker, calllog
from .config import get_resilience
from .ratelimit import RateLimiter

__all__ = ["call", "snapshot_set", "exempt_kernels",
           "reset_open_warnings"]

_OPEN_WARNINGS = RateLimiter()

#: Lazily-built set of kernel names whose driver specs opt out of the
#: retry/escalation ladder (e.g. kernels consuming stateful RNGs, where
#: a re-attempt would observe different inputs).
_EXEMPT: frozenset | None = None


def exempt_kernels() -> frozenset:
    """Kernel names whose specs opt out of retry/escalation."""
    global _EXEMPT
    # Deliberately lock-free: importing SPECS under STATE_LOCK could
    # deadlock against the import lock at first use; the computed set is
    # deterministic, so racing initialisations agree.
    if _EXEMPT is None:  # laflow: benign-race — idempotent lazy init; racing builders compute identical sets
        from ..specs import SPECS
        _EXEMPT = frozenset(  # laflow: benign-race — idempotent lazy init; racing builders compute identical sets
            spec.kernel for spec in SPECS.values()
            if spec.breaker_exempt and spec.kernel is not None)
    return _EXEMPT  # laflow: benign-race — frozenset snapshot, immutable once built


_exempt_kernels = exempt_kernels    # backwards-compatible alias


def reset_open_warnings() -> None:
    """Forget breaker-open warning history (tests)."""
    _OPEN_WARNINGS.reset()


def call(routine, dtype, args, kwargs, resolve, get_backend_name):
    """Dispatch one kernel call through the resilience ladder."""
    if (not faults.CHAOS_ACTIVE and not breaker.TRACKING
            and get_backend_name() == "reference"):
        return resolve(routine, dtype)(*args, **kwargs)
    return _resilient_call(routine, dtype, args, kwargs, resolve,
                           get_backend_name())


def snapshot_set(args, kwargs) -> list:
    """The operands the retry machinery snapshots and restores: every
    ndarray among the positional and keyword arguments, in call order.

    This is the resilience layer's mutation contract — a kernel operand
    that is written in place but is *not* in this set cannot be rolled
    back before a re-attempt.  lalint's LA019 verifies the driver side
    of that contract statically against the spec effect signatures.
    """
    return [value for value in list(args) + list(kwargs.values())
            if isinstance(value, np.ndarray)]


def _snapshot(args, kwargs):
    return [(value, value.copy()) for value in snapshot_set(args, kwargs)]


def _restore(saved):
    for arr, snap in saved:
        arr[...] = snap


def _warn_open(serving, routine, window):
    emit, suppressed = _OPEN_WARNINGS.tick((serving, routine),
                                           window=window)
    if not emit:
        return
    message = ("circuit breaker open for backend {!r} routine {!r}; "
               "routing to the reference kernel".format(serving, routine))
    if suppressed:
        message += (" ({} identical warnings suppressed in the last "
                    "window)".format(suppressed))
    warnings.warn(message, BackendFallbackWarning, stacklevel=5)


def _resilient_call(routine, dtype, args, kwargs, resolve, selected):
    reference = resolve(routine, dtype, backend="reference")
    primary = resolve(routine, dtype)
    serving = "reference" if primary is reference else selected
    policy = get_resilience()

    events: list[str] = []
    disposition = "closed"
    if serving != "reference":
        disposition = breaker.admit(serving, routine)
        if disposition == "open":
            events.append("open:{}:{}".format(serving, routine))
            _warn_open(serving, routine, policy.warning_window)
        elif disposition == "probe":
            events.append("probe:{}:{}".format(serving, routine))

    if disposition == "open":
        rungs = [("reference", reference)]
    elif serving != "reference":
        rungs = [(serving, primary), ("reference", reference)]
    else:
        rungs = [("reference", reference)]

    exempt = routine in _exempt_kernels()
    retries = 0 if exempt else policy.retries
    if exempt:
        rungs = rungs[:1]

    saved = _snapshot(args, kwargs) \
        if (retries or len(rungs) > 1) and not exempt else []

    noteworthy = bool(events)
    failures = 0
    attempt = 0
    last_exc: BaseException | None = None
    for rung_backend, kernel in rungs:
        for _ in range(retries + 1):
            attempt += 1
            if attempt > 1:
                _restore(saved)
            try:
                fault = faults.chaos_fault(routine, rung_backend) \
                    if faults.CHAOS_ACTIVE else None
                if fault is not None:
                    raise fault
                result = kernel(*args, **kwargs)
            except LinAlgError:
                # Contract verdict: the kernel worked, the input was the
                # problem.  Counts as breaker success; never retried.
                if not exempt:
                    note = breaker.record_success(rung_backend, routine)
                    if note:
                        events.append("closed:{}:{}".format(
                            rung_backend, routine))
                        noteworthy = True
                if noteworthy or failures:
                    calllog.record("{}:{}#{}:verdict".format(
                        rung_backend, routine, attempt))
                    for event in events:
                        calllog.note(event)
                raise
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                failures += 1
                last_exc = exc
                calllog.record("{}:{}#{}:error={}".format(
                    rung_backend, routine, attempt, type(exc).__name__))
                if not exempt:
                    note = breaker.record_failure(rung_backend, routine)
                    if note:
                        events.append("{}:{}:{}".format(
                            note, rung_backend, routine))
                continue
            if not exempt:
                note = breaker.record_success(rung_backend, routine)
                if note:
                    events.append("closed:{}:{}".format(
                        rung_backend, routine))
                    noteworthy = True
            if noteworthy or failures:
                calllog.record("{}:{}#{}".format(
                    rung_backend, routine, attempt))
                for event in events:
                    calllog.note(event)
            return result

    # Every rung exhausted: surface the breaker notes, then let the last
    # transient failure propagate to the caller.
    for event in events:
        calllog.note(event)
    raise last_exc
