"""Deadline budgets for driver calls.

:func:`deadline` arms a wall-clock budget for everything inside its
``with`` block.  Drivers check the budget at well-defined *checkpoints*
— entry (inside ``driver_guard``) and, for the expert drivers, between
the factor/condition/solve/refine stages — and raise
:class:`repro.errors.DeadlineExceeded` carrying the partial ``Info``
accumulated so far.  A computation is never interrupted mid-kernel; the
guarantee is "no *new* stage starts after the budget is spent", which
keeps every intermediate array in a consistent state.

Deadlines nest: the tightest (earliest) limit on the stack wins.  The
stack is thread-local; ``_ARMED`` is the process-global armed-scope
count that lets :func:`check` bail out with a single integer compare on
the (overwhelmingly common) undeadlined path.  ``_ARMED`` mutations hold
:data:`repro._sync.STATE_LOCK` (LA016); the thread-local stack needs no
lock.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from .._sync import STATE_LOCK
from . import calllog

__all__ = ["deadline", "check", "remaining"]

#: Count of live deadline() scopes across all threads (fast gate).
_ARMED = 0

_DEADLINES = threading.local()


def _stack() -> list[float]:
    stack = getattr(_DEADLINES, "stack", None)
    if stack is None:
        stack = _DEADLINES.stack = []
    return stack


@contextmanager
def deadline(seconds: float):
    """Scope a wall-clock budget over the block's driver calls::

        with repro.deadline(0.5):
            x, info = la_gesv(a, b)   # raises DeadlineExceeded if the
                                      # budget is spent at a checkpoint
    """
    global _ARMED
    if seconds <= 0:
        raise ValueError(f"deadline must be positive, got {seconds!r}")
    limit = time.monotonic() + float(seconds)
    stack = _stack()
    stack.append(limit)
    with STATE_LOCK:
        _ARMED += 1
    try:
        yield
    finally:
        with STATE_LOCK:
            _ARMED -= 1
        stack.remove(limit)


def remaining() -> float | None:
    """Seconds left on the tightest enclosing deadline, or ``None`` when
    no deadline is armed on this thread."""
    if not _ARMED:  # laflow: benign-race — counter gate; this thread's own deadlines are in the thread-local stack checked next
        return None
    stack = _stack()
    if not stack:
        return None
    return min(stack) - time.monotonic()


def check(srname: str, stage: str = "entry", info=None) -> None:
    """Checkpoint: raise :class:`~repro.errors.DeadlineExceeded` when the
    tightest enclosing deadline has passed.

    ``info`` is the driver's partial :class:`~repro.errors.Info` (when it
    already exists at this checkpoint); the open call-log frame is
    drained into it so the exception's ``partial`` handle carries the
    attempts made before the budget ran out.
    """
    if not _ARMED:  # laflow: benign-race — counter gate; this thread's own deadlines are in the thread-local stack checked next
        return
    stack = _stack()
    if not stack or time.monotonic() < min(stack):
        return
    from ..errors import DEADLINE, DeadlineExceeded, Info
    partial = info if info is not None else Info(DEADLINE)
    partial.value = DEADLINE
    # This frame will never reach the driver's reporting shim — consume
    # it here so the stack stays balanced across the raise.
    calllog.drain_into(partial)
    raise DeadlineExceeded(srname, stage=stage, partial=partial)
