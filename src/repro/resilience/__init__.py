"""Policy-driven fault tolerance around the backend dispatch seam.

LAPACK90's contract (§4 of the paper) is that a driver either computes
or *says why it could not* through ``INFO`` — it never silently
corrupts.  This package extends that contract from numerical failures
to *infrastructure* failures: a crashing accelerated kernel, a hung
substrate, a backend that went bad mid-process.

Four cooperating mechanisms, all scoped to the ``(backend, routine)``
dispatch seam in :mod:`repro.backends.kernels`:

* **Retry with escalation** (:mod:`.dispatch`) — transient kernel
  failures retry in place (array arguments snapshotted and restored),
  then escalate accelerated→reference.  Contract verdicts
  (``LinAlgError``) are never retried.
* **Circuit breakers** (:mod:`.breaker`) — consecutive failures of a
  pair trip it open; dispatch then routes to reference until a
  cooldown-gated half-open probe succeeds.
* **Deadlines** (:mod:`.deadlines`) — ``repro.deadline(seconds)``
  scopes a wall-clock budget, checked at driver entry and between
  expert-driver stages; exceeding it raises
  :class:`~repro.errors.DeadlineExceeded` carrying the partial ``Info``.
* **Health** (:mod:`.health`) — ``repro.healthcheck()`` runs a real
  solve per registered backend and reports breaker states.

Every attempt is visible on the driver's ``Info`` handle
(``info.attempts`` / ``info.breaker``); the chaos harness in
:mod:`repro.faults` exercises all of it deterministically.  lalint rule
LA016 pins the package's shared registries behind
:data:`repro._sync.STATE_LOCK`.
"""

from __future__ import annotations

from .breaker import breaker_state, reset_breakers, states as breaker_states
from .config import (ResiliencePolicy, get_resilience, resilience_policy,
                     set_resilience)
from .deadlines import deadline, remaining
from .dispatch import reset_open_warnings
from .health import healthcheck

__all__ = [
    "ResiliencePolicy",
    "get_resilience",
    "set_resilience",
    "resilience_policy",
    "deadline",
    "remaining",
    "healthcheck",
    "breaker_state",
    "breaker_states",
    "reset_breakers",
    "reset_open_warnings",
]
