"""Per-driver-call attempt telemetry (thread-local frames).

The dispatch seam (:mod:`repro.resilience.dispatch`) runs per *kernel*
call, but the ``attempts``/``breaker`` fields live on the *driver's*
:class:`repro.errors.Info` handle.  This module bridges the two layers
without plumbing the handle through every kernel signature: the driver
entry gate (:func:`repro.core.auxmod.driver_guard`) pushes a frame, the
seam records events into the innermost frame, and the driver's reporting
shim (``_report``/``_record_fallback``/``_finish``) drains the frame
into the caller's ``Info`` on the way out.

Frames are purely thread-local telemetry — there is no cross-thread
state here, so (unlike the breaker/deadline registries LA016 polices)
no lock is taken on the per-call hot path.  Kernel calls made outside a
driver frame (the F77 layer, direct proxy use) are simply not recorded.
"""

from __future__ import annotations

import threading

__all__ = ["push", "record", "note", "drain", "drain_into", "depth"]

_FRAMES = threading.local()


def _stack() -> list:
    stack = getattr(_FRAMES, "stack", None)
    if stack is None:
        stack = _FRAMES.stack = []
    return stack


def push() -> None:
    """Open a telemetry frame for the driver call being entered.

    Bounded as a leak backstop: a kernel exception that escapes a driver
    without reaching its reporting shim strands a frame, so the stack is
    capped rather than allowed to grow without limit.
    """
    stack = _stack()
    if len(stack) > 64:
        del stack[0]
    stack.append({"attempts": [], "breaker": []})


def record(attempt: str) -> None:
    """Append one kernel-attempt record to the innermost frame."""
    stack = _stack()
    if stack:
        stack[-1]["attempts"].append(attempt)


def note(event: str) -> None:
    """Append one breaker-transition note to the innermost frame."""
    stack = _stack()
    if stack:
        stack[-1]["breaker"].append(event)


def drain() -> dict | None:
    """Pop and return the innermost frame (``None`` when no frame is
    open — reporting shims reached without a guard, e.g. on a
    validation-failure exit)."""
    stack = _stack()
    return stack.pop() if stack else None


def drain_into(info) -> None:
    """Pop the innermost frame and attach its non-empty telemetry to the
    caller's ``Info`` handle (a no-op handle-wise when ``info`` is
    ``None``, but the frame is still consumed)."""
    frame = drain()
    if frame is None or info is None:
        return
    if frame["attempts"]:
        info.attempts = tuple(frame["attempts"])
    if frame["breaker"]:
        info.breaker = ";".join(frame["breaker"])


def depth() -> int:
    """Open-frame count for the current thread (test hook)."""
    return len(_stack())
