"""repro — a reproduction of LAPACK90 (Waśniewski & Dongarra, IPPS 1998).

Three layers, mirroring the paper's architecture:

* :mod:`repro.core` (the ``F90_LAPACK`` module) — the paper's
  contribution: generic high-level drivers with assumed-shape arrays,
  optional arguments and uniform ERINFO error handling.  Re-exported
  here: ``la_gesv``, ``la_posv``, ``la_syev``, … (Appendix G catalogue).
* :mod:`repro.f77` (the ``F77_LAPACK`` module) — the same routines with
  explicit FORTRAN 77 argument lists (paper Example 1/3).
* :mod:`repro.lapack77` — the from-scratch pure-NumPy LAPACK substrate
  both interfaces sit on (factorizations, eigensolvers, SVD…), with
  :mod:`repro.blas` underneath.

Both interface layers reach the substrate through the pluggable backend
registry (:mod:`repro.backends`): ``reference`` is the lapack77 package
itself, ``accelerated`` adapts ``scipy.linalg.lapack`` when SciPy is
available.  Select with :func:`set_backend` / ``use_backend`` / the
``REPRO_BACKEND`` environment variable, or per call via the drivers'
``backend=`` keyword.

The dispatch seam is wrapped by a resilience layer
(:mod:`repro.resilience`): transient kernel failures retry and escalate
to the reference substrate, per-``(backend, routine)`` circuit breakers
shed repeatedly-failing backends, ``repro.deadline(seconds)`` bounds
driver wall-clock at stage checkpoints, and ``repro.healthcheck()``
probes every registered backend.  Setting ``REPRO_CHAOS=1`` arms the
chaos profile (:func:`repro.faults.default_chaos_profile`): hot kernels
become deterministically flaky so a test run exercises the whole ladder.

Quickstart (paper Fig. 2, the LAPACK90 interface)::

    import numpy as np
    from repro import la_gesv

    rng = np.random.default_rng()
    a = rng.random((5, 5))
    b = a.sum(axis=1)           # exact solution: all ones
    la_gesv(a, b)               # b now holds the solution
"""

import os as _os

from . import (backends, batch, blas, config, core, f77, faults, lapack77,
               policy, resilience, storage, testing)
from .batch import BatchInfo
from .batch import __all__ as _batch_all
from .batch import *  # noqa: F401,F403 — the derived batch_* wrappers
from .backends import (available_backends, get_backend_name, set_backend,
                       use_backend)
from .errors import (BackendFallbackWarning, ComputationalError,
                     DeadlineExceeded, DriverFallbackWarning,
                     IllConditionedWarning, IllegalArgument, Info,
                     LinAlgError, NoConvergence, NonFiniteInput,
                     NonFiniteWarning, NotPositiveDefinite,
                     NumericalWarning, SingularMatrix, WorkspaceError)
from .policy import exception_policy, get_policy, set_policy
from .resilience import (deadline, get_resilience, healthcheck,
                         resilience_policy, set_resilience)
from .core import *  # noqa: F401,F403 — the Appendix G catalogue
from .core import __all__ as _core_all
from . import dispatch_front
from .dispatch_front import (Explanation, eig, lstsq, solve,
                             invalidate_structure_cache,
                             structure_cache_stats)

__version__ = "1.0.0"

__all__ = list(_core_all) + list(_batch_all) + [
    "Info", "LinAlgError", "IllegalArgument", "ComputationalError",
    "SingularMatrix", "NotPositiveDefinite", "NoConvergence",
    "WorkspaceError", "NonFiniteInput", "NumericalWarning",
    "NonFiniteWarning", "IllConditionedWarning", "DriverFallbackWarning",
    "BackendFallbackWarning", "DeadlineExceeded",
    "exception_policy", "get_policy", "set_policy",
    "deadline", "healthcheck", "resilience_policy", "get_resilience",
    "set_resilience",
    "available_backends", "get_backend_name", "set_backend",
    "use_backend",
    "solve", "lstsq", "eig", "Explanation",
    "invalidate_structure_cache", "structure_cache_stats",
    "backends", "batch", "blas", "config", "core", "dispatch_front",
    "f77", "faults", "lapack77", "policy", "resilience", "storage",
    "testing",
]

# CI chaos leg: REPRO_CHAOS=1 arms the default chaos profile before any
# driver runs, so the whole suite executes through degradation.
_chaos_env = _os.environ.get("REPRO_CHAOS", "").strip()
if _chaos_env and _chaos_env != "0":
    faults.default_chaos_profile()
del _chaos_env
