"""Error-handling machinery mirroring LAPACK90's ``ERINFO`` conventions.

LAPACK90 (Waśniewski & Dongarra, 1998) funnels every driver's status through
one routine, ``ERINFO(LINFO, SRNAME, INFO, ISTAT)``:

* If the caller did **not** supply the optional ``INFO`` argument and the
  local status ``LINFO`` signals an error, the program terminates with a
  message naming the routine and the code.
* If the caller **did** supply ``INFO``, the code is stored there and control
  returns normally.
* Codes follow the LAPACK convention: ``-i`` (for small *i*) means the
  *i*-th argument is illegal, positive codes are computational failures
  (e.g. a zero pivot), ``-100`` is an internal/allocation-class error
  (workspace allocation failed), codes in the warning band
  ``-200 >= linfo > -1000`` (e.g. ``-200`` = a reduced-size workspace was
  used) are stored but never terminate, and codes at or below ``-1000``
  form the non-finite-input error class added by the exception policy:
  ``NONFINITE - i`` flags NaN/Inf entries in argument *i*.

In Python, "terminate with a message" becomes raising an exception, and the
``INFO`` output argument becomes the mutable :class:`Info` handle.
"""

from __future__ import annotations

__all__ = [
    "Info",
    "LinAlgError",
    "IllegalArgument",
    "ComputationalError",
    "SingularMatrix",
    "NotPositiveDefinite",
    "NoConvergence",
    "WorkspaceError",
    "NonFiniteInput",
    "DeadlineExceeded",
    "NumericalWarning",
    "NonFiniteWarning",
    "IllConditionedWarning",
    "DriverFallbackWarning",
    "BackendFallbackWarning",
    "erinfo",
    "is_error_code",
    "xerbla",
    "ALLOC_FAILED",
    "WORK_REDUCED",
    "NONFINITE",
    "DEADLINE",
]

#: LINFO code used by LAPACK90 when workspace allocation fails.
ALLOC_FAILED = -100
#: LINFO warning code used when a reduced (unblocked) workspace is used.
WORK_REDUCED = -200
#: Base of the non-finite-input error class: ``NONFINITE - i`` means
#: argument *i* contained NaN or Inf entries (screened by
#: :mod:`repro.policy` in ``"check"`` mode).
NONFINITE = -1000
#: Code class for an exceeded :func:`repro.deadline` time budget.  The
#: class sits below the non-finite band (which only ever reaches
#: ``NONFINITE - position``) so the three error families stay disjoint.
DEADLINE = -3000


class LinAlgError(Exception):
    """Base class for every error raised by the repro library.

    Carries the LAPACK ``info`` code and the name of the routine that
    detected the condition, mirroring the message ``ERINFO`` prints before
    terminating.
    """

    def __init__(self, srname: str, info: int, message: str | None = None):
        self.srname = srname
        self.info = info
        if message is None:
            message = f"Terminated in subroutine {srname}: INFO = {info}"
        super().__init__(message)


class IllegalArgument(LinAlgError, ValueError):
    """An argument had an illegal value (``info = -i`` for argument *i*)."""

    def __init__(self, srname: str, position: int, detail: str = ""):
        info = -abs(position)
        msg = f"{srname}: argument {abs(position)} had an illegal value"
        if detail:
            msg += f" ({detail})"
        super().__init__(srname, info, msg)


class ComputationalError(LinAlgError):
    """The computation failed with a positive ``info`` code."""


class SingularMatrix(ComputationalError):
    """``U(i,i)`` (or ``D(i,i)``) is exactly zero; the factor is singular."""

    def __init__(self, srname: str, index: int):
        super().__init__(
            srname,
            index,
            f"{srname}: U({index},{index}) is exactly zero; "
            "the matrix is singular and the solution could not be computed",
        )


class NotPositiveDefinite(ComputationalError):
    """A leading minor was not positive definite (Cholesky-family failure)."""

    def __init__(self, srname: str, order: int):
        super().__init__(
            srname,
            order,
            f"{srname}: the leading minor of order {order} is not positive "
            "definite; the factorization could not be completed",
        )


class NoConvergence(ComputationalError):
    """An iterative eigen/SVD process failed to converge."""

    def __init__(self, srname: str, info: int, detail: str = ""):
        msg = f"{srname}: the algorithm failed to converge (INFO = {info})"
        if detail:
            msg += f"; {detail}"
        super().__init__(srname, info, msg)


class WorkspaceError(LinAlgError):
    """Workspace could not be allocated (LAPACK90's ``LINFO = -100``)."""

    def __init__(self, srname: str):
        super().__init__(srname, ALLOC_FAILED, f"{srname}: workspace allocation failed")


class NonFiniteInput(LinAlgError, ValueError):
    """An input array contained NaN or Inf entries.

    Raised (or reported through ``info``) only when the exception policy
    is in ``"check"`` mode; the dedicated code class is ``NONFINITE - i``
    for the *i*-th argument, keeping it disjoint from both the argument
    errors (``-i``) and the warning band (``-200`` … ``> -1000``).
    """

    def __init__(self, srname: str, position: int, detail: str = ""):
        self.position = abs(position)
        info = NONFINITE - self.position
        msg = (f"{srname}: argument {self.position} contains "
               "non-finite (NaN or Inf) entries")
        if detail:
            msg += f" ({detail})"
        super().__init__(srname, info, msg)


class DeadlineExceeded(LinAlgError):
    """A :func:`repro.deadline` time budget ran out mid-solve.

    Unlike every other ``LinAlgError`` this is a *control-flow
    interruption*, not a status: it is raised even when the caller
    supplied an ``info=`` handle, because a deadline exists precisely so
    the caller regains control.  What the driver had established by the
    time the budget expired travels on :attr:`partial` — an
    :class:`Info` whose ``value`` is :data:`DEADLINE` and whose
    ``attempts``/``breaker``/``fallback`` fields hold the resilience
    telemetry collected so far.

    ``stage`` names the checkpoint that noticed the expiry (``"entry"``,
    ``"factor"``, ``"solve"``, ``"refine"``).
    """

    def __init__(self, srname: str, stage: str = "entry",
                 partial: "Info | None" = None):
        self.stage = stage
        self.partial = partial if partial is not None else Info(DEADLINE)
        super().__init__(
            srname, DEADLINE,
            f"{srname}: deadline exceeded at the {stage!r} checkpoint; "
            f"partial status: {self.partial!r}")


class NumericalWarning(RuntimeWarning):
    """Base class for the structured warnings the exception policy emits."""


class NonFiniteWarning(NumericalWarning):
    """Non-finite entries were detected while the policy is in
    ``"warn"`` mode; the computation proceeds (and will propagate them)."""


class IllConditionedWarning(NumericalWarning):
    """An expert driver's RCOND estimate flags the matrix as singular to
    working precision (the ``info = n+1`` condition)."""


class DriverFallbackWarning(NumericalWarning):
    """A driver degraded gracefully onto its fallback path (e.g.
    ``LA_POSV`` retrying through the symmetric-indefinite solver)."""


class BackendFallbackWarning(NumericalWarning):
    """The selected compute backend could not serve a routine (substrate
    not registered, routine missing, or dtype unsupported) and the call
    fell back to the ``reference`` kernels.  Announced once per
    (backend, routine) pair per process."""


class Info:
    """Mutable stand-in for FORTRAN's optional ``INTEGER, INTENT(OUT) :: INFO``.

    Passing an :class:`Info` instance to a driver suppresses the raise and
    records the status code instead, exactly like supplying the optional
    ``INFO`` argument in LAPACK90::

        info = Info()
        la_gesv(a, b, info=info)
        if info:            # truthy when info.value != 0
            handle(info.value)

    Beyond the raw code, the handle records graceful-degradation events:
    ``fallback`` names the substitute path a driver took (``None`` when the
    primary path succeeded) and ``rcond`` carries the reciprocal condition
    estimate when the fallback route computed one.  The resilience layer
    (:mod:`repro.resilience`) adds two more telemetry fields: ``attempts``
    is the per-call kernel attempt trail (a tuple of
    ``"backend:routine#n:outcome"`` strings — only populated when
    something beyond a clean first attempt happened) and ``breaker``
    summarises circuit-breaker involvement
    (``"accelerated:gesv:open"`` …).

    The dispatch front end (:mod:`repro.dispatch_front`) adds three
    more: ``structure`` is the probed structure class the routing
    decision was based on, ``chosen_driver`` names the ``la_*`` /
    ``batch_*`` wrapper the call was routed to, and ``probe_cost`` is
    the wall-clock seconds the structure probe took (``0.0`` on a
    structure-cache hit).  All three stay ``None`` on direct driver
    calls.
    """

    __slots__ = ("value", "fallback", "rcond", "attempts", "breaker",
                 "structure", "chosen_driver", "probe_cost")

    def __init__(self, value: int = 0):
        self.value = int(value)
        self.fallback: str | None = None
        self.rcond: float | None = None
        self.attempts: tuple | None = None
        self.breaker: str | None = None
        self.structure: str | None = None
        self.chosen_driver: str | None = None
        self.probe_cost: float | None = None

    def __bool__(self) -> bool:
        return self.value != 0

    def __int__(self) -> int:
        return self.value

    def __index__(self) -> int:
        return self.value

    def __eq__(self, other) -> bool:
        if isinstance(other, Info):
            return self.value == other.value
        if isinstance(other, int):
            return self.value == other
        return NotImplemented

    # Equality is by code, so hash by code too (defining __eq__ alone
    # would have left the class silently unhashable).  Equality and hash
    # deliberately ignore the telemetry fields (fallback, rcond,
    # attempts, breaker): those depend on which backend happened to be
    # healthy and how many retries fired — timing-dependent facts that
    # would make otherwise-identical outcomes compare unequal.  The
    # handle is mutable, so hash-based collections are only safe once a
    # driver has finished writing to it — the same caveat LAPACK's
    # INTENT(OUT) arguments carry.
    def __hash__(self) -> int:
        return hash(self.value)

    def __repr__(self) -> str:
        extras = []
        if self.fallback is not None:
            extras.append(f"fallback={self.fallback!r}")
        if self.rcond is not None:
            extras.append(f"rcond={self.rcond!r}")
        if self.attempts is not None:
            extras.append(f"attempts={self.attempts!r}")
        if self.breaker is not None:
            extras.append(f"breaker={self.breaker!r}")
        if self.structure is not None:
            extras.append(f"structure={self.structure!r}")
        if self.chosen_driver is not None:
            extras.append(f"chosen_driver={self.chosen_driver!r}")
        if self.probe_cost is not None:
            extras.append(f"probe_cost={self.probe_cost:.2e}")
        tail = "".join(", " + e for e in extras)
        return f"Info({self.value}{tail})"


def is_error_code(linfo: int) -> bool:
    """True when *linfo* is error-class under the ``ERINFO`` contract.

    Error-class: positive computational failures, argument errors
    ``-1 … -99``, the allocation failure ``-100``, and the non-finite /
    deadline classes at or below ``NONFINITE``.  The warning band
    ``WORK_REDUCED >= linfo > NONFINITE`` and 0 are not errors.
    """
    return linfo > 0 or (0 > linfo > WORK_REDUCED) or linfo <= NONFINITE


def _error_for(srname: str, linfo: int) -> LinAlgError:
    """Build the most specific exception class for a raw ``linfo`` code."""
    if linfo <= DEADLINE:
        return DeadlineExceeded(srname)
    if linfo <= NONFINITE:
        return NonFiniteInput(srname, NONFINITE - linfo)
    if linfo == ALLOC_FAILED:
        return WorkspaceError(srname)
    if linfo < 0:
        return IllegalArgument(srname, -linfo)
    return ComputationalError(srname, linfo)


def erinfo(
    linfo: int,
    srname: str,
    info: Info | None = None,
    istat: int = 0,
    exc: LinAlgError | None = None,
    batch_index: int | None = None,
) -> None:
    """Python rendering of LAPACK90's ``ERINFO`` subroutine.

    Parameters
    ----------
    linfo
        The local status code computed by the driver.
    srname
        Name of the LAPACK90 routine, e.g. ``'LA_GESV'``.
    info
        The caller's optional :class:`Info` handle. When ``None`` and
        ``linfo`` signals an error, an exception is raised (the analogue of
        ``STOP`` after the error message). When supplied, the code is stored
        and no exception escapes.
    istat
        Allocation status, reported in the message for ``linfo = -100``.
    exc
        A pre-built specific exception to raise instead of the generic one
        (lets drivers raise :class:`SingularMatrix` etc. while still
        honouring the ``info=`` contract).
    batch_index
        For batched wrappers: the index of the problem within the stack
        that produced ``linfo``.  Recorded on the raised exception as
        ``exc.batch_index`` and appended to its message, so a failure in
        problem *k* of a ``batch_*`` call names *k* and the routine.

    Notes
    -----
    Warning-class codes — the band ``WORK_REDUCED >= linfo > NONFINITE``,
    i.e. ``-200 >= linfo > -1000`` (so ``-200``, ``-300``, …) — never
    terminate: they are stored in ``info`` when present, matching the
    paper's ``ERINFO`` listing.  Everything else that is nonzero is
    error-class: positive computational failures, argument errors
    ``-1 … -99``, the allocation failure ``-100``, and the non-finite
    input codes at or below ``NONFINITE`` (``-1000``).
    """
    if is_error_code(linfo) and info is None:
        err = exc if exc is not None else _error_for(srname, linfo)
        if batch_index is not None:
            err.batch_index = batch_index
            err.args = (f"{err.args[0] if err.args else ''}"
                        f" [batch problem {batch_index}]",)
        raise err
    if info is not None:
        info.value = int(linfo)


def xerbla(srname: str, position: int, detail: str = "") -> None:
    """LAPACK77's argument-error handler: always raises.

    The substrate layer (``repro.lapack77``) validates like the reference
    F77 code and calls ``xerbla`` on the first bad argument; there is no
    optional-INFO escape hatch at that level, exactly as in LAPACK77 where
    ``XERBLA`` stops the program.
    """
    raise IllegalArgument(srname.upper(), position, detail)
