"""Fault-injection harness for exercising ERINFO's unreachable branches.

Thin user-facing wrapper over the package-root registry
(:mod:`repro.faults` — placed there so the substrate can consult it
without importing the test layer).  Adds :func:`inject_nonfinite`, the
input-corruption side of the harness: the registry covers faults that
arise *inside* a routine (zero pivots, allocation failures, forced
status codes), while NaN/Inf corruption happens to the *arguments*
before the call.

Typical use::

    from repro.testing import faultinject as fi

    with fi.injected("getf2", zero_pivot=1):
        la_gesv(a, b)          # -> SingularMatrix, info = 2

    bad = fi.inject_nonfinite(a.copy())   # a[0, 0] = NaN
    with exception_policy(nonfinite="check"):
        la_gesv(bad, b)        # -> NonFiniteInput, info = -1001

The chaos harness (dispatch-seam faults driving the resilience layer's
retries, escalation, and circuit breakers) is re-exported here too::

    with fi.chaos("gesv", fail_next=3, backend="accelerated"):
        la_gesv(a, b)          # retries, then escalates to reference
"""

from __future__ import annotations

import numpy as np

from ..faults import (InjectedFault, active, alloc_fault, chaos,
                      chaos_active, chaos_clear, chaos_install,
                      chaos_remove, clear, default_chaos_profile,
                      injected, install, linfo_fault, pivot_fault, remove)

__all__ = ["install", "remove", "clear", "injected", "active",
           "pivot_fault", "alloc_fault", "linfo_fault",
           "inject_nonfinite", "InjectedFault", "chaos", "chaos_install",
           "chaos_remove", "chaos_clear", "chaos_active",
           "default_chaos_profile"]


def inject_nonfinite(a: np.ndarray, value: float = np.nan,
                     index: tuple | int | None = None) -> np.ndarray:
    """Corrupt ``a`` in place with a non-finite entry and return it.

    ``value`` is the poison (``np.nan``, ``np.inf``, ``-np.inf``);
    ``index`` picks the entry (default: the first, i.e. ``(0, ..., 0)``).
    Deterministic on purpose — reproducibility beats coverage breadth
    for regression tests.
    """
    if np.isfinite(value):
        raise ValueError("value must be non-finite (NaN or +/-Inf)")
    if index is None:
        index = (0,) * a.ndim
    a[index] = value
    return a
