"""Systematic error-exit tests (the "9 error exits tests" of Appendix F).

Each case feeds LA_GESV an illegal argument combination and verifies the
ERINFO contract twice over:

* with ``info`` supplied — the negative code must land in ``info`` and
  no exception may escape,
* without ``info`` — an :class:`repro.errors.IllegalArgument` (ERINFO's
  ``STOP``) must be raised.
"""

from __future__ import annotations

import numpy as np

from ..core import la_gesv
from ..errors import IllegalArgument, Info, LinAlgError
from ..specs import error_exit_codes

__all__ = ["run_gesv_error_exits", "GESV_ERROR_CASES",
           "ERROR_EXIT_CODES"]

#: ``driver -> {argument: expected LINFO code}`` — a *derived view* of
#: the driver-spec registry (``repro.specs``): every argument marked
#: ``in_table`` contributes its negative 1-based position.  The dynamic
#: error-exit harnesses (this module and
#: ``tests/core/test_error_exits_all_drivers.py``) read their expected
#: codes from here; ``tests/core/test_specs.py`` pins the derivation
#: byte-for-byte against the frozen pre-refactor table
#: (``tests/core/fixtures/error_exit_codes_v0.json``).
ERROR_EXIT_CODES = error_exit_codes()


def _rect_a():
    return np.ones((3, 4)), np.ones(3)


def _bad_b_rows():
    return np.eye(3), np.ones(4)


def _bad_b_matrix():
    return np.eye(3), np.ones((4, 2))


def _b_scalarlike():
    return np.eye(3), np.ones((2, 2, 2))  # wrong rank


def _short_ipiv():
    return np.eye(3), np.ones(3), np.zeros(2, dtype=np.int64)


def _long_ipiv():
    return np.eye(3), np.ones(3), np.zeros(5, dtype=np.int64)


def _a_not_2d():
    return np.ones(3), np.ones(3)


def _a_3d():
    return np.ones((2, 2, 2)), np.ones(2)


def _empty_vs_rhs():
    return np.zeros((0, 0)), np.ones(2)


_GESV = ERROR_EXIT_CODES["la_gesv"]

#: (description, builder, expected info code) — nine cases, as in the
#: paper's report; codes come from the shared table above.
GESV_ERROR_CASES = [
    ("A not square", _rect_a, _GESV["a"]),
    ("B has wrong number of rows (vector)", _bad_b_rows, _GESV["b"]),
    ("B has wrong number of rows (matrix)", _bad_b_matrix, _GESV["b"]),
    ("B has illegal rank", _b_scalarlike, _GESV["b"]),
    ("IPIV too short", _short_ipiv, _GESV["ipiv"]),
    ("IPIV too long", _long_ipiv, _GESV["ipiv"]),
    ("A is one-dimensional", _a_not_2d, _GESV["a"]),
    ("A has illegal rank", _a_3d, _GESV["a"]),
    ("empty A with non-empty B", _empty_vs_rhs, _GESV["b"]),
]


def run_gesv_error_exits(verbose: bool = False):
    """Run the nine LA_GESV error-exit cases.

    Returns ``(ran, passed)``.
    """
    ran = passed = 0
    for desc, builder, expect in GESV_ERROR_CASES:
        ran += 1
        built = builder()
        a, b = built[0], built[1]
        ipiv = built[2] if len(built) > 2 else None
        ok = True
        # Path 1: info supplied — code recorded, no raise.
        info = Info()
        try:
            la_gesv(a.copy() if isinstance(a, np.ndarray) else a,
                    b.copy() if isinstance(b, np.ndarray) else b,
                    ipiv=ipiv, info=info)
        except LinAlgError:
            ok = False
        if info.value != expect:
            ok = False
        # Path 2: info omitted — must raise IllegalArgument.
        try:
            la_gesv(a.copy() if isinstance(a, np.ndarray) else a,
                    b.copy() if isinstance(b, np.ndarray) else b,
                    ipiv=ipiv)
            ok = False
        except IllegalArgument as e:
            if e.info != expect:
                ok = False
        except LinAlgError:
            ok = False
        if ok:
            passed += 1
        if verbose:
            print(f"  error exit [{desc:40s}] "
                  f"{'passed' if ok else 'FAILED'} (info={expect})")
    return ran, passed
