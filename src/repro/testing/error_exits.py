"""Systematic error-exit tests (the "9 error exits tests" of Appendix F).

Each case feeds LA_GESV an illegal argument combination and verifies the
ERINFO contract twice over:

* with ``info`` supplied — the negative code must land in ``info`` and
  no exception may escape,
* without ``info`` — an :class:`repro.errors.IllegalArgument` (ERINFO's
  ``STOP``) must be raised.
"""

from __future__ import annotations

import numpy as np

from ..core import la_gesv
from ..errors import IllegalArgument, Info, LinAlgError

__all__ = ["run_gesv_error_exits", "GESV_ERROR_CASES",
           "ERROR_EXIT_CODES"]

#: One source of truth for ``driver -> {argument: expected LINFO code}``.
#:
#: The dynamic error-exit harnesses (this module and
#: ``tests/core/test_error_exits_all_drivers.py``) read their expected
#: codes from here, and the static LA002 rule (``repro.analysis``)
#: cross-checks every entry against the live driver signature — a code
#: that drifts from its argument's 1-based position fails both ways.
#: Keep the dict a literal: lalint reads it from the AST, not by import.
ERROR_EXIT_CODES = {
    "la_gesv": {"a": -1, "b": -2, "ipiv": -3},
    "la_gbsv": {"ab": -1, "b": -2, "kl": -3, "ipiv": -4},
    "la_gtsv": {"dl": -1, "d": -2, "du": -3, "b": -4},
    "la_posv": {"a": -1, "b": -2, "uplo": -3},
    "la_ppsv": {"ap": -1, "b": -2, "uplo": -3},
    "la_pbsv": {"ab": -1, "b": -2, "uplo": -3},
    "la_ptsv": {"d": -1, "e": -2, "b": -3},
    "la_sysv": {"a": -1, "b": -2, "uplo": -3, "ipiv": -4},
    "la_hesv": {"a": -1, "b": -2, "uplo": -3, "ipiv": -4},
    "la_spsv": {"ap": -1, "b": -2, "uplo": -3, "ipiv": -4},
    "la_hpsv": {"ap": -1, "b": -2, "uplo": -3, "ipiv": -4},
    "la_gels": {"a": -1, "b": -2, "trans": -3},
    "la_syev": {"a": -1, "w": -2, "jobz": -3, "uplo": -4},
    "la_heev": {"a": -1, "w": -2, "jobz": -3, "uplo": -4},
    "la_sygv": {"a": -1, "b": -2, "w": -3, "itype": -4, "jobz": -5,
                "uplo": -6},
    "la_gesvx": {"a": -1, "b": -2, "af": -4, "fact": -6, "trans": -7},
    "la_gbsvx": {"ab": -1, "b": -2, "kl": -4, "abf": -5, "trans": -8},
    "la_gtsvx": {"dl": -1, "d": -2, "b": -4, "trans": -6},
    "la_posvx": {"a": -1, "b": -2, "uplo": -4, "af": -5},
    "la_ppsvx": {"ap": -1, "b": -2, "uplo": -4, "afp": -5},
    "la_pbsvx": {"ab": -1, "b": -2, "uplo": -4, "afb": -5},
    "la_ptsvx": {"d": -1, "e": -2, "b": -3},
    "la_sysvx": {"a": -1, "b": -2, "uplo": -4, "af": -5, "ipiv": -6},
    "la_hesvx": {"a": -1, "b": -2, "uplo": -4, "af": -5, "ipiv": -6},
    "la_spsvx": {"ap": -1, "b": -2, "uplo": -4, "afp": -5, "ipiv": -6},
    "la_hpsvx": {"ap": -1, "b": -2, "uplo": -4, "afp": -5, "ipiv": -6},
}


def _rect_a():
    return np.ones((3, 4)), np.ones(3)


def _bad_b_rows():
    return np.eye(3), np.ones(4)


def _bad_b_matrix():
    return np.eye(3), np.ones((4, 2))


def _b_scalarlike():
    return np.eye(3), np.ones((2, 2, 2))  # wrong rank


def _short_ipiv():
    return np.eye(3), np.ones(3), np.zeros(2, dtype=np.int64)


def _long_ipiv():
    return np.eye(3), np.ones(3), np.zeros(5, dtype=np.int64)


def _a_not_2d():
    return np.ones(3), np.ones(3)


def _a_3d():
    return np.ones((2, 2, 2)), np.ones(2)


def _empty_vs_rhs():
    return np.zeros((0, 0)), np.ones(2)


_GESV = ERROR_EXIT_CODES["la_gesv"]

#: (description, builder, expected info code) — nine cases, as in the
#: paper's report; codes come from the shared table above.
GESV_ERROR_CASES = [
    ("A not square", _rect_a, _GESV["a"]),
    ("B has wrong number of rows (vector)", _bad_b_rows, _GESV["b"]),
    ("B has wrong number of rows (matrix)", _bad_b_matrix, _GESV["b"]),
    ("B has illegal rank", _b_scalarlike, _GESV["b"]),
    ("IPIV too short", _short_ipiv, _GESV["ipiv"]),
    ("IPIV too long", _long_ipiv, _GESV["ipiv"]),
    ("A is one-dimensional", _a_not_2d, _GESV["a"]),
    ("A has illegal rank", _a_3d, _GESV["a"]),
    ("empty A with non-empty B", _empty_vs_rhs, _GESV["b"]),
]


def run_gesv_error_exits(verbose: bool = False):
    """Run the nine LA_GESV error-exit cases.

    Returns ``(ran, passed)``.
    """
    ran = passed = 0
    for desc, builder, expect in GESV_ERROR_CASES:
        ran += 1
        built = builder()
        a, b = built[0], built[1]
        ipiv = built[2] if len(built) > 2 else None
        ok = True
        # Path 1: info supplied — code recorded, no raise.
        info = Info()
        try:
            la_gesv(a.copy() if isinstance(a, np.ndarray) else a,
                    b.copy() if isinstance(b, np.ndarray) else b,
                    ipiv=ipiv, info=info)
        except LinAlgError:
            ok = False
        if info.value != expect:
            ok = False
        # Path 2: info omitted — must raise IllegalArgument.
        try:
            la_gesv(a.copy() if isinstance(a, np.ndarray) else a,
                    b.copy() if isinstance(b, np.ndarray) else b,
                    ipiv=ipiv)
            ok = False
        except IllegalArgument as e:
            if e.info != expect:
                ok = False
        except LinAlgError:
            ok = False
        if ok:
            passed += 1
        if verbose:
            print(f"  error exit [{desc:40s}] "
                  f"{'passed' if ok else 'FAILED'} (info={expect})")
    return ran, passed
