"""The "easy-to-use test program" of paper Section 6 / Appendix F.

Reproduces the LA_GESV test program: a sweep of test matrices and call
forms, scaled residual ratios compared against a threshold, error-exit
checks, and a report printed in exactly the Appendix F layout — including
both the "Test Runs Correctly" outcome (threshold 10.0) and the "Test
Partly Fails" outcome (threshold 5.0 trips on the ill-conditioned
300×300 / 50-RHS case).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core import la_gesv
from ..errors import Info
from ..lapack77.generators import latms_like
from ..lapack77.lautil import lange
from ..lapack77.machine import lamch
from .error_exits import run_gesv_error_exits
from .ratios import residual_ratio

__all__ = ["GesvTestProgram", "TestReport", "CaseResult"]

#: The four call forms the Appendix-F program exercises.
CALL_FORMS = [
    "CALL LA_GESV( A, B )",
    "CALL LA_GESV( A, B, IPIV )",
    "CALL LA_GESV( A, B, INFO=INFO )",
    "CALL LA_GESV( A, B, IPIV, INFO )",
]


@dataclass
class CaseResult:
    """Outcome of one (matrix, call-form) combination."""
    test_no: int
    call_form: str
    n: int
    nrhs: int
    ratio: float
    passed: bool
    info: int
    anorm: float
    cond: float
    xnorm: float
    residnorm: float


@dataclass
class TestReport:
    """Aggregate of a test-program run, with the Appendix-F printer."""
    threshold: float
    eps: float
    cases: list = field(default_factory=list)
    error_exits_run: int = 0
    error_exits_passed: int = 0
    biggest_n: int = 0
    nrhs_values: tuple = (50, 1)
    n_matrices: int = 3

    @property
    def passed(self) -> int:
        return sum(1 for c in self.cases if c.passed)

    @property
    def failed(self) -> int:
        return len(self.cases) - self.passed

    def format(self) -> str:
        """Render the report in the paper's Appendix F layout."""
        lines = [
            "SGESV Test Example Program Results.",
            "LA_GESV LAPACK subroutine solves a dense general",
            "linear system of equations, Ax = b.",
            f"Threshold value of test ratio = {self.threshold:5.2f} "
            f"the machine eps = {self.eps:.5E}",
            "-" * 64,
        ]
        for c in self.cases:
            if not c.passed:
                lines += [
                    f"Test {c.test_no} -- '{c.call_form}', Failed.",
                    f"Matrix {c.n} x {c.n} with {c.nrhs} rhs.",
                    f"INFO = {c.info}",
                    f"|| A ||1 = {c.anorm:.7G}  COND = {c.cond:.7E}",
                    f"|| X ||1 = {c.xnorm:.7E}  "
                    f"|| B - AX ||1 = {c.residnorm:.7G}",
                    "ratio = || B - AX || / ( || A ||*|| X ||*eps ) = "
                    f"{c.ratio:.7G}",
                    "-" * 64,
                ]
        lines += [
            f"{self.n_matrices} matrices were tested with "
            f"{len(CALL_FORMS)} tests. NRHS was "
            f"{self.nrhs_values[0]} and one.",
            f"The biggest tested matrix was {self.biggest_n} x "
            f"{self.biggest_n}",
            f"{self.passed} tests passed.",
            f"{self.failed} test{'s' if self.failed != 1 else ''} failed.",
            "-" * 64,
            f"{self.error_exits_run} error exits tests were ran",
            f"{self.error_exits_passed} tests passed.",
            f"{self.error_exits_run - self.error_exits_passed} tests "
            "failed.",
        ]
        return "\n".join(lines)


class GesvTestProgram:
    """The LA_GESV test program (paper Section 6, category 3).

    Workload matching Appendix F: three matrices (well-conditioned small
    and medium, ill-conditioned 300×300), four call forms each,
    alternating NRHS between 50 and 1, in single precision.
    """

    def __init__(self, threshold: float = 10.0, dtype=np.float32,
                 sizes=(50, 150, 300), conds=(10.0, 50.0, 2.0686414e2),
                 nrhs_values=(50, 1), seed: int = 1998):
        self.threshold = float(threshold)
        self.dtype = np.dtype(dtype)
        self.sizes = tuple(sizes)
        self.conds = tuple(conds)
        self.nrhs_values = tuple(nrhs_values)
        self.seed = seed

    def run(self) -> TestReport:
        eps = lamch("E", self.dtype)
        report = TestReport(threshold=self.threshold, eps=eps,
                            biggest_n=max(self.sizes),
                            nrhs_values=self.nrhs_values,
                            n_matrices=len(self.sizes))
        rng = np.random.default_rng(self.seed)
        test_no = 0
        for idx, (n, cond) in enumerate(zip(self.sizes, self.conds)):
            a_base, _ = latms_like(n, n, cond=cond, dtype=np.float64,
                                   rng=rng)
            a_base = a_base.astype(self.dtype)
            for form_idx, call_form in enumerate(CALL_FORMS):
                test_no += 1
                nrhs = self.nrhs_values[form_idx % len(self.nrhs_values)]
                x_true = np.ones((n, nrhs), dtype=self.dtype)
                b = (a_base.astype(np.float64)
                     @ x_true.astype(np.float64)).astype(self.dtype)
                a = a_base.copy()
                bx = b.copy()
                info = Info()
                ipiv = np.zeros(n, dtype=np.int64)
                # Dispatch the four call forms of the paper's program.
                if form_idx == 0:
                    la_gesv(a, bx, info=info)   # info kept internal
                elif form_idx == 1:
                    la_gesv(a, bx, ipiv=ipiv, info=info)
                elif form_idx == 2:
                    la_gesv(a, bx, info=info)
                else:
                    la_gesv(a, bx, ipiv=ipiv, info=info)
                ratio = residual_ratio(a_base, bx, b)
                anorm = float(lange("1", a_base))
                report.cases.append(CaseResult(
                    test_no=test_no, call_form=call_form, n=n, nrhs=nrhs,
                    ratio=float(ratio), passed=ratio < self.threshold,
                    info=int(info), anorm=anorm, cond=float(cond),
                    xnorm=float(np.max(np.sum(np.abs(bx), axis=0))),
                    residnorm=float(np.max(np.sum(np.abs(
                        b - a_base @ bx), axis=0)))))
        ran, passed = run_gesv_error_exits()
        report.error_exits_run = ran
        report.error_exits_passed = passed
        return report
