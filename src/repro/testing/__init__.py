"""LAPACK90 test-program machinery (paper Section 6 and Appendix F).

Three categories, as in the paper:

1. per-routine interface tests (the pytest suites under ``tests/``),
2. adapted LAPACK77-style factorization/residual checks
   (:mod:`repro.testing.ratios`),
3. the "easy-to-use test programs" that run a workload, compute scaled
   residual ratios against a threshold, and print a pass/fail report in
   Appendix F's format (:mod:`repro.testing.harness`), plus systematic
   error-exit tests (:mod:`repro.testing.error_exits`).
"""

from .ratios import (residual_ratio, lu_reconstruction_ratio,
                     solve_ratio_columns, orthogonality_ratio)
from .harness import GesvTestProgram, TestReport
from .error_exits import ERROR_EXIT_CODES, run_gesv_error_exits
from . import faultinject

__all__ = ["residual_ratio", "lu_reconstruction_ratio",
           "solve_ratio_columns", "orthogonality_ratio",
           "GesvTestProgram", "TestReport", "run_gesv_error_exits",
           "ERROR_EXIT_CODES",
           "faultinject"]
