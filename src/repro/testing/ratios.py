"""Scaled residual ratios — the numerical quality metrics of the paper's
Appendix F::

    ratio = || B - A X ||  /  ( || A || · || X || · eps )

A computation "passes" when the ratio is below a threshold (the paper
uses 10.0, and demonstrates a partial failure at 5.0).  All ratios use
the 1-norm, as printed in the Appendix F report.
"""

from __future__ import annotations

import numpy as np

from ..lapack77.machine import lamch

__all__ = ["residual_ratio", "solve_ratio_columns",
           "lu_reconstruction_ratio", "orthogonality_ratio"]


def _norm1(x: np.ndarray) -> float:
    if x.ndim == 1:
        return float(np.sum(np.abs(x)))
    return float(np.max(np.sum(np.abs(x), axis=0))) if x.size else 0.0


def residual_ratio(a: np.ndarray, x: np.ndarray, b: np.ndarray) -> float:
    """The Appendix-F solve ratio ``‖B − AX‖₁ / (‖A‖₁‖X‖₁ eps)``."""
    eps = lamch("E", a.dtype)
    anorm = _norm1(a)
    xnorm = _norm1(x)
    if anorm == 0 or xnorm == 0:
        return float(np.inf) if _norm1(b) != 0 else 0.0
    resid = _norm1(np.asarray(b) - a @ x)
    return resid / (anorm * xnorm * eps)


def solve_ratio_columns(a: np.ndarray, x: np.ndarray,
                        b: np.ndarray) -> np.ndarray:
    """Per-column solve ratios (LAPACK's ``xGET02`` style)."""
    eps = lamch("E", a.dtype)
    anorm = _norm1(a)
    xm = x if x.ndim == 2 else x[:, None]
    bm = b if b.ndim == 2 else b[:, None]
    out = np.empty(xm.shape[1])
    for j in range(xm.shape[1]):
        xnorm = _norm1(xm[:, j])
        if anorm == 0 or xnorm == 0:
            out[j] = 0.0 if _norm1(bm[:, j]) == 0 else np.inf
            continue
        out[j] = _norm1(bm[:, j] - a @ xm[:, j]) / (anorm * xnorm * eps)
    return out


def lu_reconstruction_ratio(a_orig: np.ndarray, lu: np.ndarray,
                            ipiv: np.ndarray) -> float:
    """``‖A − PᵀLU‖₁ / (n ‖A‖₁ eps)`` (LAPACK's ``xGET01``)."""
    eps = lamch("E", a_orig.dtype)
    n = a_orig.shape[0]
    k = min(lu.shape)
    l = np.tril(lu[:, :k], -1)
    l[np.arange(k), np.arange(k)] = 1
    u = np.triu(lu[:k, :])
    rec = l @ u
    for j in range(k - 1, -1, -1):
        p = ipiv[j]
        if p != j:
            rec[[j, p], :] = rec[[p, j], :]
    anorm = _norm1(a_orig)
    if anorm == 0:
        return float(np.inf) if _norm1(rec) != 0 else 0.0
    return _norm1(a_orig - rec) / (max(n, 1) * anorm * eps)


def orthogonality_ratio(q: np.ndarray) -> float:
    """``‖I − QᴴQ‖₁ / (n eps)`` — orthogonality check for computed
    factors (LAPACK's ``xORT01``)."""
    eps = lamch("E", q.dtype)
    n = q.shape[1]
    gram = np.conj(q.T) @ q
    return _norm1(np.eye(n) - gram) / (max(n, 1) * eps)
