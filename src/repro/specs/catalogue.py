"""Appendix-G catalogue emitter.

Renders the complete user-callable routine catalogue as markdown from
the spec registry, so ``docs/USERS_GUIDE.md`` carries a table that can
never drift from the code: the committed copy lives between the
``BEGIN/END GENERATED CATALOGUE`` markers and CI re-renders it with
``python -m repro.specs --check-catalogue``.
"""

from __future__ import annotations

from .registry import SPECS

__all__ = ["render_catalogue", "splice_guide", "BEGIN_MARK", "END_MARK"]

BEGIN_MARK = "<!-- BEGIN GENERATED CATALOGUE -->"
END_MARK = "<!-- END GENERATED CATALOGUE -->"

_HEADER = (
    "| Routine | Calling sequence | Kernel | Backends | Types | "
    "Batched | Purpose |\n"
    "|---|---|---|---|---|---|---|\n")


def _sections():
    """Specs grouped by section, preserving registry order."""
    grouped = {}
    for spec in SPECS.values():
        grouped.setdefault(spec.section, []).append(spec)
    return grouped


def _dtype_cell(spec):
    cell = spec.dtypes
    if spec.pair:
        cell += f" (pairs with `{spec.pair}`)"
    return cell


def _row(spec):
    backends = "reference" if spec.reference_only \
        else "reference, accelerated"
    batched = f"`batch_{spec.name[3:]}`" if spec.batchable else "—"
    return (f"| `{spec.name}` | `{spec.call_sequence()}` "
            f"| `{spec.kernel}` | {backends} | {_dtype_cell(spec)} "
            f"| {batched} | {spec.summary} |\n")


def render_catalogue() -> str:
    """The full Appendix-G catalogue as a markdown fragment."""
    out = [
        "_This catalogue is generated from the driver-spec registry\n"
        "(`repro.specs.registry`) — do not edit it by hand.  Regenerate\n"
        "with `PYTHONPATH=src python -m repro.specs --write-catalogue`\n"
        "after changing the registry._\n",
    ]
    for section, specs in _sections().items():
        out.append(f"\n### {section}\n\n")
        out.append(_HEADER)
        out.extend(_row(s) for s in specs)
    return "".join(out)


def splice_guide(text: str) -> str:
    """Replace the marked region of the guide with a fresh render."""
    begin = text.index(BEGIN_MARK) + len(BEGIN_MARK)
    end = text.index(END_MARK)
    return text[:begin] + "\n" + render_catalogue() + text[end:]
