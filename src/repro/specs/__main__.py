"""``python -m repro.specs`` — spec-registry tooling.

``--catalogue`` prints the generated Appendix-G table;
``--write-catalogue`` splices it into ``docs/USERS_GUIDE.md`` between
the GENERATED CATALOGUE markers; ``--check-catalogue`` exits 1 when the
committed table is stale (the CI guard).  ``--routing`` /
``--write-routing`` / ``--check-routing`` do the same for the
structure→driver routing table the dispatch front end derives from the
registry.
"""

from __future__ import annotations

import argparse
import sys

from .catalogue import render_catalogue, splice_guide
from .routing import render_routing, splice_routing

DEFAULT_GUIDE = "docs/USERS_GUIDE.md"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.specs",
        description="Driver-spec registry tooling (Appendix-G catalogue "
                    "and routing-table emitters).")
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--catalogue", action="store_true",
                       help="print the generated catalogue to stdout")
    group.add_argument("--write-catalogue", action="store_true",
                       help="rewrite the marked region of the guide")
    group.add_argument("--check-catalogue", action="store_true",
                       help="exit 1 when the committed catalogue is "
                            "stale")
    group.add_argument("--routing", action="store_true",
                       help="print the generated routing table to "
                            "stdout")
    group.add_argument("--write-routing", action="store_true",
                       help="rewrite the marked routing region of the "
                            "guide")
    group.add_argument("--check-routing", action="store_true",
                       help="exit 1 when the committed routing table "
                            "is stale")
    parser.add_argument("--guide", default=DEFAULT_GUIDE, metavar="FILE",
                        help=f"guide file to splice "
                             f"(default: {DEFAULT_GUIDE})")
    return parser


def _run(args, what, render, splice, write, regen_flag):
    if render is not None:
        sys.stdout.write(render())
        return 0
    try:
        with open(args.guide, encoding="utf-8") as fh:
            text = fh.read()
    except OSError as err:
        print(f"repro.specs: cannot read {args.guide}: {err}",
              file=sys.stderr)
        return 2
    try:
        fresh = splice(text)
    except ValueError:
        print(f"repro.specs: {args.guide} lacks the {what} markers",
              file=sys.stderr)
        return 2

    if write:
        if fresh != text:
            with open(args.guide, "w", encoding="utf-8") as fh:
                fh.write(fresh)
            print(f"repro.specs: updated {args.guide}")
        else:
            print(f"repro.specs: {args.guide} already up to date")
        return 0

    if fresh != text:
        print(f"repro.specs: the {what} in {args.guide} is stale — "
              f"run `python -m repro.specs {regen_flag}`",
              file=sys.stderr)
        return 1
    print(f"repro.specs: {args.guide} {what} is up to date")
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.catalogue:
        return _run(args, "GENERATED CATALOGUE", render_catalogue,
                    None, False, "--write-catalogue")
    if args.routing:
        return _run(args, "GENERATED ROUTING TABLE", render_routing,
                    None, False, "--write-routing")
    if args.write_catalogue or args.check_catalogue:
        return _run(args, "GENERATED CATALOGUE", None, splice_guide,
                    args.write_catalogue, "--write-catalogue")
    return _run(args, "GENERATED ROUTING TABLE", None, splice_routing,
                args.write_routing, "--write-routing")


if __name__ == "__main__":
    raise SystemExit(main())
