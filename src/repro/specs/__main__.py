"""``python -m repro.specs`` — spec-registry tooling.

``--catalogue`` prints the generated Appendix-G table;
``--write-catalogue`` splices it into ``docs/USERS_GUIDE.md`` between
the GENERATED CATALOGUE markers; ``--check-catalogue`` exits 1 when the
committed table is stale (the CI guard).
"""

from __future__ import annotations

import argparse
import sys

from .catalogue import render_catalogue, splice_guide

DEFAULT_GUIDE = "docs/USERS_GUIDE.md"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.specs",
        description="Driver-spec registry tooling (Appendix-G catalogue "
                    "emitter).")
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--catalogue", action="store_true",
                       help="print the generated catalogue to stdout")
    group.add_argument("--write-catalogue", action="store_true",
                       help="rewrite the marked region of the guide")
    group.add_argument("--check-catalogue", action="store_true",
                       help="exit 1 when the committed catalogue is "
                            "stale")
    parser.add_argument("--guide", default=DEFAULT_GUIDE, metavar="FILE",
                        help=f"guide file to splice "
                             f"(default: {DEFAULT_GUIDE})")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.catalogue:
        sys.stdout.write(render_catalogue())
        return 0

    try:
        with open(args.guide, encoding="utf-8") as fh:
            text = fh.read()
    except OSError as err:
        print(f"repro.specs: cannot read {args.guide}: {err}",
              file=sys.stderr)
        return 2
    try:
        fresh = splice_guide(text)
    except ValueError:
        print(f"repro.specs: {args.guide} lacks the GENERATED "
              f"CATALOGUE markers", file=sys.stderr)
        return 2

    if args.write_catalogue:
        if fresh != text:
            with open(args.guide, "w", encoding="utf-8") as fh:
                fh.write(fresh)
            print(f"repro.specs: updated {args.guide}")
        else:
            print(f"repro.specs: {args.guide} already up to date")
        return 0

    # --check-catalogue
    if fresh != text:
        print(f"repro.specs: the catalogue in {args.guide} is stale — "
              f"run `python -m repro.specs --write-catalogue`",
              file=sys.stderr)
        return 1
    print(f"repro.specs: {args.guide} catalogue is up to date")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
