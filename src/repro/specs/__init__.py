"""Declarative driver-spec layer: one machine-readable description per
``la_*`` wrapper, from which the other layers are derived —

* argument validation (:func:`validate` / :func:`validate_args`,
  used by every ``repro.core`` driver),
* the shared error-exit table (:func:`error_exit_codes`, re-exported
  as :data:`repro.testing.error_exits.ERROR_EXIT_CODES`),
* the backend kernel binding (``repro.backends.bound_kernel``),
* the lalint cross-checks (rules LA009/LA010), and
* the Appendix-G routine catalogue
  (``python -m repro.specs --catalogue``).

Importing :mod:`repro.specs` pulls in numpy (for the validation
engine) but none of the driver or backend modules, so tooling can load
the registry without touching the numerical stack.
"""

from __future__ import annotations

from .model import ArgSpec, Check, DriverSpec, CHECK_KINDS, DIM_SOURCES
from .engine import validate, validate_args, validate_batch
from .registry import SPECS, error_exit_codes
from .routing import (STRUCTURES, PROBLEM_KINDS, REFINEMENTS,
                      refinement_chain, routing_table, candidates, route)

__all__ = [
    "ArgSpec", "Check", "DriverSpec", "CHECK_KINDS", "DIM_SOURCES",
    "SPECS", "all_specs", "get_spec", "validate", "validate_args",
    "validate_batch", "error_exit_codes",
    "STRUCTURES", "PROBLEM_KINDS", "REFINEMENTS", "refinement_chain",
    "routing_table", "candidates", "route",
]


def get_spec(name: str) -> DriverSpec:
    """The registered spec for driver *name* (KeyError when unknown)."""
    return SPECS[name]


def all_specs():
    """All registered specs, in Appendix-G catalogue order."""
    return list(SPECS.values())
