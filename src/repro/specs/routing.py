"""The structure→driver routing table, derived from the spec registry.

The dispatch front end (:mod:`repro.dispatch_front`) probes a matrix
for structure and asks this module which driver serves a
``(problem_kind, structure, dtype)`` triple best.  There is no
hand-written ``if structure == "spd": la_posv`` ladder anywhere — the
table below is computed entirely from the ``problem_kind`` /
``structure`` fields each :class:`~repro.specs.model.DriverSpec`
declares (lalint rule LA022 forbids rebuilding it by hand), so adding a
structure-aware driver to the registry is all it takes to extend the
front door.

Structures form a refinement lattice: a diagonal matrix is also
triangular, tridiagonal, banded and general; an SPD matrix is also
symmetric.  :data:`REFINEMENTS` encodes the "is also" chains, and
:func:`route` walks a probe's structure through its chain until a
registered driver claims it — so a structure with no dedicated driver
(for a given verb or dtype domain) degrades to the nearest more general
one instead of failing.  ``la_syev`` being real-only, for example,
makes a complex *symmetric* (non-Hermitian) eigenproblem fall through
``symmetric`` to ``general``/``la_geev`` purely from the spec dtype
domains.
"""

from __future__ import annotations

from .registry import SPECS

__all__ = [
    "STRUCTURES", "PROBLEM_KINDS", "REFINEMENTS", "refinement_chain",
    "routing_table", "candidates", "route", "render_routing",
    "splice_routing", "BEGIN_MARK", "END_MARK",
]

#: The structure labels the probe can report, most to least specific.
STRUCTURES = ("diagonal", "triangular", "tridiagonal", "spd", "hpd",
              "banded", "symmetric", "hermitian", "general")

#: The front-door verbs.
PROBLEM_KINDS = ("solve", "lstsq", "eig")

#: structure -> the more general structures it *is also*, nearest first.
#: A diagonal matrix routes as triangular before tridiagonal: one
#: substitution sweep beats a pivoted tridiagonal elimination.
REFINEMENTS = {
    "diagonal": ("triangular", "tridiagonal", "banded", "general"),
    "triangular": ("general",),
    "tridiagonal": ("banded", "general"),
    "banded": ("general",),
    "spd": ("symmetric", "general"),
    "hpd": ("hermitian", "general"),
    "symmetric": ("general",),
    "hermitian": ("general",),
    "general": (),
}


def refinement_chain(structure):
    """``structure`` followed by its refinements, most specific first."""
    if structure not in REFINEMENTS:
        raise ValueError("unknown structure {!r}; known: {}".format(
            structure, ", ".join(STRUCTURES)))
    return (structure,) + REFINEMENTS[structure]


def _claims(kind=None):
    """Specs declaring front-door metadata, in registry order."""
    return [s for s in SPECS.values() if s.problem_kind is not None
            and (kind is None or s.problem_kind == kind)]


def routing_table():
    """``{problem_kind: {structure: [spec, ...]}}`` from the registry.

    Only structures some spec explicitly claims appear; the refinement
    chains make the rest reachable at :func:`route` time.
    """
    table = {}
    for spec in _claims():
        row = table.setdefault(spec.problem_kind, {})
        for label in spec.structure:
            row.setdefault(label, []).append(spec)
    return table


def _serves_dtype(spec, iscomplex):
    return spec.dtypes != ("real" if iscomplex else "complex")


def candidates(kind, structure, iscomplex=False):
    """Every spec that could serve the triple, best first.

    Walks the refinement chain and, at each structure, yields the specs
    claiming it (registry order) whose dtype domain covers the input.
    """
    table = routing_table().get(kind)
    if table is None:
        raise ValueError("unknown problem kind {!r}; known: {}".format(
            kind, ", ".join(PROBLEM_KINDS)))
    out = []
    for label in refinement_chain(structure):
        out.extend(s for s in table.get(label, ())
                   if _serves_dtype(s, iscomplex) and s not in out)
    return out


def route(kind, structure, iscomplex=False):
    """The winning spec for ``(problem_kind, structure, dtype domain)``.

    Raises ``LookupError`` when no registered driver claims any
    structure on the refinement chain — which cannot happen for the
    shipped registry, where every chain ends in ``general`` and every
    verb has a general-structure driver.
    """
    found = candidates(kind, structure, iscomplex)
    if not found:
        raise LookupError(
            "no driver routes ({!r}, {!r}, {})".format(
                kind, structure, "complex" if iscomplex else "real"))
    return found[0]


# -- the generated Users' Guide table ---------------------------------

BEGIN_MARK = "<!-- BEGIN GENERATED ROUTING TABLE -->"
END_MARK = "<!-- END GENERATED ROUTING TABLE -->"

_HEADER = ("| Probed structure | `repro.solve` | `repro.lstsq` | "
           "`repro.eig` |\n|---|---|---|---|\n")


def _cell(kind, structure):
    real = route(kind, structure, iscomplex=False)
    cplx = route(kind, structure, iscomplex=True)
    if real is cplx:
        return f"`{real.name}`"
    return f"`{real.name}` / `{cplx.name}` (complex)"


def render_routing() -> str:
    """The structure→driver table as a markdown fragment."""
    out = [
        "_This table is generated from the `problem_kind`/`structure`\n"
        "fields of the driver-spec registry — do not edit it by hand.\n"
        "Regenerate with `PYTHONPATH=src python -m repro.specs\n"
        "--write-routing` after changing the registry._\n\n",
        _HEADER,
    ]
    for structure in STRUCTURES:
        if structure in ("spd", "hpd"):
            # One row: the probe reports spd for real, hpd for complex.
            if structure == "hpd":
                continue
            solve = (f"`{route('solve', 'spd').name}` "
                     f"(Cholesky factor cached for reuse)")
            lstsq = f"`{route('lstsq', 'spd').name}`"
            eig = (f"`{route('eig', 'spd').name}` / "
                   f"`{route('eig', 'hpd', iscomplex=True).name}` "
                   "(complex)")
            out.append(f"| spd / hpd | {solve} | {lstsq} | {eig} |\n")
            continue
        out.append("| {} | {} | {} | {} |\n".format(
            structure, _cell("solve", structure),
            _cell("lstsq", structure), _cell("eig", structure)))
    return "".join(out)


def splice_routing(text: str) -> str:
    """Replace the marked region of the guide with a fresh render."""
    begin = text.index(BEGIN_MARK) + len(BEGIN_MARK)
    end = text.index(END_MARK)
    return text[:begin] + "\n" + render_routing() + text[end:]
