"""Spec-driven argument validation.

:func:`validate` replays a :class:`~repro.specs.model.DriverSpec`'s
ordered check ladder against the caller's bound arguments and returns
the first violated check's negative ``LINFO`` code (0 when the
arguments conform).  The semantics of every check kind reproduce the
hand-written ladders the drivers used before the spec layer existed —
in particular the ladders are *first-failure-wins* and never raise: a
malformed argument (wrong type, empty option string) maps to its
negative code rather than an exception, which is the wrapper contract's
whole point.

The engine deliberately re-implements the tiny ``lsame`` /
``check_square`` / ``check_rhs`` predicates instead of importing
:mod:`repro.core.auxmod`, keeping ``repro.specs`` import-light and free
of cycles with the driver layer.
"""

from __future__ import annotations

import numpy as np

from .model import ArgSpec, Check, DriverSpec

__all__ = ["validate", "validate_args", "validate_batch"]


# -- primitive predicates (auxmod-equivalent) -------------------------

def _lsame(ca, cb) -> bool:
    return bool(ca) and bool(cb) and ca[0].upper() == cb[0].upper()


def _is2d(a) -> bool:
    return isinstance(a, np.ndarray) and a.ndim == 2


def _square_ok(a) -> bool:
    return _is2d(a) and a.shape[0] == a.shape[1]


def _rhs_ok(rows, b) -> bool:
    return isinstance(b, np.ndarray) and b.ndim in (1, 2) \
        and b.shape[0] == rows


def _veclen(v) -> int:
    return v.shape[0] if isinstance(v, np.ndarray) and v.ndim >= 1 else -1


# -- derived dimensions ----------------------------------------------

def _dim_rows2d(ctx, ref):
    a = ctx.get(ref)
    return a.shape[0] if _is2d(a) else -1


def _dim_cols2d(ctx, ref):
    a = ctx.get(ref)
    return a.shape[1] if _is2d(a) else -1


def _dim_len(ctx, ref):
    v = ctx.get(ref)
    return v.shape[0] if isinstance(v, np.ndarray) else -1


def _dim_tri(ctx, ref):
    """Triangle order recovered from a packed length (``_packed_ev``)."""
    ap = ctx.get(ref)
    if not isinstance(ap, np.ndarray) or ap.ndim != 1:
        return -1
    ln = ap.shape[0]
    n = int((np.sqrt(8 * ln + 1) - 1) / 2 + 0.5)
    return n if n * (n + 1) // 2 == ln else -1


def _dim_min(ctx, *refs):
    vals = [ctx[r] for r in refs]
    return min(vals) if vals else -1


_DIM_SOURCES = {
    "rows2d": _dim_rows2d,
    "cols2d": _dim_cols2d,
    "len": _dim_len,
    "tri": _dim_tri,
    "min": _dim_min,
}


# -- check kinds ------------------------------------------------------
# Each evaluator returns True when the check is VIOLATED.

def _ck_square(c, ctx):
    return not _square_ok(ctx.get(c.args[0]))


def _ck_square_conform(c, ctx):
    x = ctx.get(c.args[0])
    return not _square_ok(x) or x.shape[0] != ctx[c.dim]


def _ck_matrix2d(c, ctx):
    return not _is2d(ctx.get(c.args[0]))


def _ck_rhs(c, ctx):
    return not _rhs_ok(ctx[c.dim], ctx.get(c.args[0]))


def _ck_rhs_same(c, ctx):
    x = ctx.get(c.args[0])
    ref = ctx.get(c.params["ref"])
    return not _rhs_ok(ctx[c.dim], x) or np.shape(x) != np.shape(ref)


def _ck_nonneg(c, ctx):
    return ctx[c.dim] < 0


def _ck_offdiag(c, ctx):
    n = ctx[c.dim]
    v = ctx.get(c.args[0])
    want = max(0, n - 1)
    if not isinstance(v, np.ndarray):
        return True
    if c.params.get("mode") == "min":
        return v.shape[0] < want
    return v.shape[0] != want


def _ck_offdiag_pair(c, ctx):
    want = max(0, ctx[c.dim] - 1)
    for name in c.args:
        v = ctx.get(name)
        if not isinstance(v, np.ndarray) or v.shape[0] != want:
            return True
    return False


def _ck_optlen(c, ctx):
    v = ctx.get(c.args[0])
    return v is not None and _veclen(v) != ctx[c.dim]


def _ck_reqlen(c, ctx):
    return _veclen(ctx.get(c.args[0])) != ctx[c.dim]


def _ck_minlen(c, ctx):
    v = ctx.get(c.args[0])
    if v is None and c.params.get("optional"):
        return False
    want = max(0, ctx[c.dim] + c.params.get("offset", 0))
    ln = v.shape[0] if isinstance(v, np.ndarray) else len(v)
    return ln < want


def _ck_packed(c, ctx):
    ap = ctx.get(c.args[0])
    if not isinstance(ap, np.ndarray) or ap.ndim != 1:
        return True
    if c.dim is None:       # self-sized (order recovered from length)
        return _dim_tri(ctx, c.args[0]) < 0
    n = ctx[c.dim]
    return n >= 0 and ap.shape[0] != n * (n + 1) // 2


def _ck_flag(c, ctx):
    value = ctx.get(c.args[0])
    options = c.params["options"]
    mode = c.params.get("mode", "lsame")
    if mode == "exact":
        return str(value).upper() not in options
    if mode == "first":
        return str(value).upper()[0] not in options
    return not any(_lsame(value, o) for o in options)


def _ck_intenum(c, ctx):
    return ctx.get(c.args[0]) not in c.params["values"]


def _ck_band(c, ctx):
    """Band-width consistency for ``2*kl + ku + 1``-row (gb) or
    ``kl + ku + 1``-row (gbx) general band storage; ``kl`` defaults the
    LAPACK90 way when omitted."""
    rows = ctx[c.dim]
    kl = ctx.get(c.args[0])
    if c.params.get("style") == "gbx":
        if kl is None:
            kl = (rows - 1) // 2
        ku = rows - kl - 1
    else:
        if kl is None:
            kl = (rows - 1) // 3
        ku = rows - 2 * kl - 1
    return kl < 0 or ku < 0


def _ck_fact_requires(c, ctx):
    if not _lsame(ctx.get(c.args[0]), "F"):
        return False
    return any(ctx.get(name) is None for name in c.args[1:])


def _ck_range_pair(c, ctx):
    vl, vu = ctx.get(c.args[0]), ctx.get(c.args[1])
    return vl is not None and vu is not None and vl >= vu


def _ck_index_pair(c, ctx):
    il, iu = ctx.get(c.args[0]), ctx.get(c.args[1])
    return il is not None and iu is not None and not 0 <= il <= iu


def _ck_same_shape(c, ctx):
    x = ctx.get(c.args[0])
    ref = ctx.get(c.params["ref"])
    return not isinstance(x, np.ndarray) or x.shape != np.shape(ref)


def _ck_cols_conform(c, ctx):
    x = ctx.get(c.args[0])
    ref = ctx.get(c.params["ref"])
    return not _is2d(x) or not _is2d(ref) or x.shape[1] != ref.shape[1]


def _ck_square_same(c, ctx):
    x = ctx.get(c.args[0])
    ref = ctx.get(c.params["ref"])
    return not _square_ok(x) or x.shape != np.shape(ref)


def _ck_custom(c, ctx):
    return _CUSTOM[c.params["name"]](c, ctx)


# -- named one-off predicates ----------------------------------------

def _cu_gels_b(c, ctx):
    """``la_gels``: b rows must match op(A) — m for trans='N', n
    otherwise — or max(m, n) for the padded workspace form."""
    a, b, trans = ctx.get("a"), ctx.get("b"), ctx.get("trans")
    rows = a.shape[0] if _lsame(trans, "N") else a.shape[1]
    return not isinstance(b, np.ndarray) or b.ndim not in (1, 2) \
        or b.shape[0] not in (rows, max(a.shape))


def _cu_ls_b(c, ctx):
    """``la_gelsx``/``la_gelss``: b rows in (m, max(m, n))."""
    a, b = ctx.get("a"), ctx.get("b")
    return not isinstance(b, np.ndarray) or b.ndim not in (1, 2) \
        or b.shape[0] not in (a.shape[0], max(a.shape))


def _cu_gglse_b(c, ctx):
    """``la_gglse``: B is p-by-n with p <= n <= m + p."""
    a, b = ctx.get("a"), ctx.get("b")
    if not _is2d(b) or b.shape[1] != a.shape[1]:
        return True
    m, n, p = a.shape[0], a.shape[1], b.shape[0]
    return not p <= n <= m + p


def _cu_glm_b(c, ctx):
    """``la_ggglm``: A n-by-m, B n-by-p with m <= n <= m + p."""
    a, b = ctx.get("a"), ctx.get("b")
    if not _is2d(b) or b.shape[0] != a.shape[0]:
        return True
    n, m, p = a.shape[0], a.shape[1], b.shape[1]
    return not m <= n <= m + p


def _cu_getrf_rcond(c, ctx):
    """``la_getrf``: a condition estimate needs a square matrix."""
    a = ctx.get("a")
    return bool(ctx.get("rcond")) and a.shape[0] != a.shape[1]


_CUSTOM = {
    "gels_b": _cu_gels_b,
    "ls_b": _cu_ls_b,
    "gglse_b": _cu_gglse_b,
    "glm_b": _cu_glm_b,
    "getrf_rcond": _cu_getrf_rcond,
}

_KINDS = {
    "square": _ck_square,
    "square_conform": _ck_square_conform,
    "matrix2d": _ck_matrix2d,
    "rhs": _ck_rhs,
    "rhs_same": _ck_rhs_same,
    "nonneg": _ck_nonneg,
    "offdiag": _ck_offdiag,
    "offdiag_pair": _ck_offdiag_pair,
    "optlen": _ck_optlen,
    "reqlen": _ck_reqlen,
    "minlen": _ck_minlen,
    "packed": _ck_packed,
    "flag": _ck_flag,
    "intenum": _ck_intenum,
    "band": _ck_band,
    "fact_requires": _ck_fact_requires,
    "range_pair": _ck_range_pair,
    "index_pair": _ck_index_pair,
    "same_shape": _ck_same_shape,
    "cols_conform": _ck_cols_conform,
    "square_same": _ck_square_same,
    "custom": _ck_custom,
}


# -- entry points -----------------------------------------------------

def validate(spec: DriverSpec, bound: dict) -> int:
    """First violated check's ``LINFO`` code for *bound* args, else 0."""
    ctx = dict(bound)
    for var, source, *refs in spec.dims:
        ctx[var] = _DIM_SOURCES[source](ctx, *refs)
    for check in spec.checks:
        try:
            bad = _KINDS[check.kind](check, ctx)
        except Exception:
            bad = True      # malformed argument: report, never raise
        if bad:
            return check.code
    return 0


def validate_args(driver: str, **bound) -> int:
    """Validate *bound* arguments against *driver*'s registered spec."""
    from .registry import SPECS
    return validate(SPECS[driver], bound)


# -- amortized batch mode ---------------------------------------------

#: Expected ndim of a *stacked* operand, per argument kind.  A matrix
#: gains exactly one leading batch axis; an rhs may be a stack of
#: vectors ``(batch, n)`` or of matrices ``(batch, n, nrhs)``; a vector
#: stacks to 2-D.
_STACK_NDIM = {"matrix": (3,), "rhs": (2, 3), "vector": (2,)}


def validate_batch(spec: DriverSpec, bound: dict) -> tuple:
    """Amortized batch-mode validation: ``(code, batch)``.

    The per-problem check ladder is *not* replayed ``batch`` times.
    Because a stack is one contiguous ndarray, every problem in it has
    identical trailing shapes and dtype, so the structural screen splits
    into (a) a stack-level pass over the array operands — present when
    required, an ndarray, carrying exactly one leading batch axis of a
    size agreed by all operands — and (b) **one** run of the ordinary
    :func:`validate` ladder over the problem-0 cross-section, whose
    verdict then holds for the whole batch.  Per-problem *value* screens
    (NaN/Inf) stay vectorized in :func:`repro.policy.screen_stack`.

    Returns the first violated check's negative ``LINFO`` code and the
    batch size (0 when no stacked operand is present or the leading axis
    is empty; the code is authoritative, the batch only meaningful when
    the code is 0).
    """
    batch = 0
    stacked = set(spec.batch_stacked)
    for a in spec.args:
        if a.name not in stacked:
            continue
        val = bound.get(a.name)
        if val is None:
            if a.required:
                return -a.position, 0
            continue
        if not isinstance(val, np.ndarray) \
                or val.ndim not in _STACK_NDIM[a.kind]:
            return -a.position, 0
        if batch == 0:
            batch = val.shape[0]
        elif val.shape[0] != batch:
            return -a.position, 0
    if batch == 0:
        return 0, 0
    cross = {name: (val[0] if name in stacked
                    and isinstance(val, np.ndarray) else val)
             for name, val in bound.items()}
    return validate(spec, cross), batch
