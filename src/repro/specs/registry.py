"""The declarative registry of all 77 ``la_*`` drivers.

Each :class:`~repro.specs.model.DriverSpec` is the single source of
truth for one wrapper: the Appendix-G catalogue entry, the argument
positions that negative ``LINFO`` codes are keyed to, the ordered
validation ladder replayed by :mod:`repro.specs.engine`, the derived
error-exit table row (``in_table`` arguments), the bound backend kernel,
and the dtype/generic-dispatch metadata.

The check ladders below are transcriptions of the hand-written
``linfo = -k`` ladders the ``core/*`` drivers shipped with; the frozen
pre-refactor table in ``tests/core/fixtures/error_exit_codes_v0.json``
pins the derived view to that history.
"""

from __future__ import annotations

from .model import ArgSpec, Check, DriverSpec

__all__ = ["SPECS", "error_exit_codes"]

C = Check

# Shared flag domains / check parameters.
_UL = {"options": ("U", "L")}
_NV = {"options": ("N", "V")}
_NEF = {"options": ("N", "E", "F")}
_NTC = {"options": ("N", "T", "C"), "mode": "exact"}
_NORM1OI = {"options": ("1", "O", "I")}
_ITYPE = {"values": (1, 2, 3)}

# Appendix-G section titles (must match the catalogue inventory).
_S1 = "Driver Routines for Linear Equations"
_S2 = "Expert Driver Routines for Linear Equations"
_S3 = "Driver Routines for Linear Least Squares Problems"
_S4 = "Driver Routines for generalized Linear Least Squares Problems"
_S5 = "Driver Routines for Standard Eigenvalue and Singular Value Problems"
_S6 = "Divide and Conquer Driver Routines"
_S7 = "Expert Driver Routines for Standard Eigenvalue Problems"
_S8 = "Driver Routines for Generalized Eigenvalue and SVD Problems"
_S9 = "Some Computational Routines"
_S10 = "Matrix Manipulation Routines"

_KINDS = ("matrix", "rhs", "vector", "flag", "scalar", "info")


def _args(*defs):
    """Build the ArgSpec tuple from ``"name[:kind][:mods]"`` strings.

    Positions are assigned from signature order (1-based).  Mods:
    ``opt`` (optional), ``in``/``inout``/``out`` (intent), ``ws``
    (wrapper-allocated workspace output), ``tbl`` (row of the shared
    error-exit table).
    """
    out = []
    for pos, text in enumerate(defs, 1):
        name, *mods = text.split(":")
        kind, kw = "matrix", {}
        for m in mods:
            if m in _KINDS:
                kind = m
            elif m == "opt":
                kw["required"] = False
            elif m in ("in", "inout", "out"):
                kw["intent"] = m
            elif m == "ws":
                kw["workspace"] = True
            elif m == "tbl":
                kw["in_table"] = True
            else:
                raise ValueError(f"unknown arg modifier {m!r} in {text!r}")
        if kind == "info":
            kw.setdefault("required", False)
            kw.setdefault("intent", "out")
        out.append(ArgSpec(name, pos, kind, **kw))
    return tuple(out)


_SPEC_LIST = [
    # -- §1: simple linear-equation drivers ---------------------------
    DriverSpec(
        "la_gesv", _S1, "General system A X = B via LU with partial "
        "pivoting",
        args=_args("a:inout:tbl", "b:rhs:inout:tbl",
                   "ipiv:vector:opt:out:ws:tbl", "info:info"),
        dims=(("n", "rows2d", "a"),),
        checks=(C(-1, "square", ("a",)),
                C(-2, "rhs", ("b",), "n"),
                C(-3, "optlen", ("ipiv",), "n")),
        kernel="gesv", reference_only=False, batchable=True,
        problem_kind="solve", structure=("general",),
        positive_info="i: U(i,i) is exactly zero — the factor U is "
        "singular and no solution was computed"),
    DriverSpec(
        "la_gbsv", _S1, "General band system via band LU with partial "
        "pivoting",
        args=_args("ab:inout:tbl", "b:rhs:inout:tbl",
                   "kl:scalar:opt:tbl", "ipiv:vector:opt:out:ws:tbl",
                   "info:info"),
        dims=(("rows", "rows2d", "ab"), ("n", "cols2d", "ab")),
        checks=(C(-1, "matrix2d", ("ab",)),
                C(-3, "band", ("kl",), "rows"),
                C(-2, "rhs", ("b",), "n"),
                C(-4, "optlen", ("ipiv",), "n")),
        kernel="gbsv", reference_only=False,
        problem_kind="solve", structure=("banded",),
        positive_info="i: U(i,i) is exactly zero — no solution"),
    DriverSpec(
        "la_gtsv", _S1, "General tridiagonal system via Gaussian "
        "elimination with partial pivoting",
        args=_args("dl:vector:inout:tbl", "d:vector:inout:tbl",
                   "du:vector:inout:tbl", "b:rhs:inout:tbl",
                   "info:info"),
        dims=(("n", "len", "d"),),
        checks=(C(-1, "offdiag", ("dl",), "n"),
                C(-2, "nonneg", (), "n"),
                C(-3, "offdiag", ("du",), "n"),
                C(-4, "rhs", ("b",), "n")),
        kernel="gtsv", reference_only=False,
        problem_kind="solve", structure=("tridiagonal",),
        positive_info="i: U(i,i) is exactly zero — no solution"),
    DriverSpec(
        "la_posv", _S1, "Symmetric/Hermitian positive definite system "
        "via Cholesky",
        args=_args("a:inout:tbl", "b:rhs:inout:tbl", "uplo:flag:opt:tbl",
                   "info:info"),
        dims=(("n", "rows2d", "a"),),
        checks=(C(-1, "square", ("a",)),
                C(-2, "rhs", ("b",), "n"),
                C(-3, "flag", ("uplo",), params=_UL)),
        kernel="posv", reference_only=False, batchable=True,
        problem_kind="solve", structure=("spd", "hpd"),
        positive_info="i: the leading minor of order i is not positive "
        "definite"),
    DriverSpec(
        "la_ppsv", _S1, "Positive definite system, packed storage",
        args=_args("ap:vector:inout:tbl", "b:rhs:inout:tbl",
                   "uplo:flag:opt:tbl", "info:info"),
        dims=(("n", "len", "b"),),
        checks=(C(-1, "packed", ("ap",), "n"),
                C(-2, "nonneg", (), "n"),
                C(-3, "flag", ("uplo",), params=_UL)),
        kernel="ppsv",
        positive_info="i: the leading minor of order i is not positive "
        "definite"),
    DriverSpec(
        "la_pbsv", _S1, "Positive definite band system via band "
        "Cholesky",
        args=_args("ab:inout:tbl", "b:rhs:inout:tbl", "uplo:flag:opt:tbl",
                   "info:info"),
        dims=(("n", "cols2d", "ab"),),
        checks=(C(-1, "matrix2d", ("ab",)),
                C(-2, "rhs", ("b",), "n"),
                C(-3, "flag", ("uplo",), params=_UL)),
        kernel="pbsv", reference_only=False,
        positive_info="i: the leading minor of order i is not positive "
        "definite"),
    DriverSpec(
        "la_ptsv", _S1, "Positive definite tridiagonal system via "
        "L D L^H",
        args=_args("d:vector:inout:tbl", "e:vector:inout:tbl",
                   "b:rhs:inout:tbl", "info:info"),
        dims=(("n", "len", "d"),),
        checks=(C(-1, "nonneg", (), "n"),
                C(-2, "offdiag", ("e",), "n"),
                C(-3, "rhs", ("b",), "n")),
        kernel="ptsv", reference_only=False,
        positive_info="i: the leading minor of order i is not positive "
        "definite"),
    DriverSpec(
        "la_sysv", _S1, "Symmetric indefinite system via diagonal "
        "pivoting",
        args=_args("a:inout:tbl", "b:rhs:inout:tbl", "uplo:flag:opt:tbl",
                   "ipiv:vector:opt:out:ws:tbl", "info:info"),
        dims=(("n", "rows2d", "a"),),
        checks=(C(-1, "square", ("a",)),
                C(-2, "rhs", ("b",), "n"),
                C(-3, "flag", ("uplo",), params=_UL),
                C(-4, "optlen", ("ipiv",), "n")),
        kernel="sysv", reference_only=False, pair="la_hesv",
        batchable=True, problem_kind="solve", structure=("symmetric",),
        positive_info="i: D(i,i) is exactly zero — the block diagonal "
        "factor is singular"),
    DriverSpec(
        "la_hesv", _S1, "Hermitian indefinite system via diagonal "
        "pivoting",
        args=_args("a:inout:tbl", "b:rhs:inout:tbl", "uplo:flag:opt:tbl",
                   "ipiv:vector:opt:out:ws:tbl", "info:info"),
        dims=(("n", "rows2d", "a"),),
        checks=(C(-1, "square", ("a",)),
                C(-2, "rhs", ("b",), "n"),
                C(-3, "flag", ("uplo",), params=_UL),
                C(-4, "optlen", ("ipiv",), "n")),
        kernel="hesv", reference_only=False, dtypes="complex",
        pair="la_sysv", batchable=True,
        problem_kind="solve", structure=("hermitian",),
        positive_info="i: D(i,i) is exactly zero — the block diagonal "
        "factor is singular"),
    DriverSpec(
        "la_spsv", _S1, "Symmetric indefinite system, packed storage",
        args=_args("ap:vector:inout:tbl", "b:rhs:inout:tbl",
                   "uplo:flag:opt:tbl", "ipiv:vector:opt:out:ws:tbl",
                   "info:info"),
        dims=(("n", "len", "b"),),
        checks=(C(-1, "packed", ("ap",), "n"),
                C(-2, "nonneg", (), "n"),
                C(-3, "flag", ("uplo",), params=_UL),
                C(-4, "optlen", ("ipiv",), "n")),
        kernel="spsv", pair="la_hpsv",
        positive_info="i: D(i,i) is exactly zero — the block diagonal "
        "factor is singular"),
    DriverSpec(
        "la_hpsv", _S1, "Hermitian indefinite system, packed storage",
        args=_args("ap:vector:inout:tbl", "b:rhs:inout:tbl",
                   "uplo:flag:opt:tbl", "ipiv:vector:opt:out:ws:tbl",
                   "info:info"),
        dims=(("n", "len", "b"),),
        checks=(C(-1, "packed", ("ap",), "n"),
                C(-2, "nonneg", (), "n"),
                C(-3, "flag", ("uplo",), params=_UL),
                C(-4, "optlen", ("ipiv",), "n")),
        kernel="hpsv", dtypes="complex", pair="la_spsv",
        positive_info="i: D(i,i) is exactly zero — the block diagonal "
        "factor is singular"),

    # -- §2: expert drivers (factor + refine + condition estimate) ----
    DriverSpec(
        "la_gesvx", _S2, "Expert LU solve: equilibrate, factor, refine, "
        "estimate RCOND",
        args=_args("a:inout:tbl", "b:rhs:inout:tbl", "x:rhs:opt:out:ws",
                   "af:opt:inout:tbl", "ipiv:vector:opt:inout:ws",
                   "fact:flag:opt:tbl", "trans:flag:opt:tbl",
                   "equed:flag:opt", "r:vector:opt:inout",
                   "c:vector:opt:inout", "info:info"),
        dims=(("n", "rows2d", "a"),),
        checks=(C(-1, "square", ("a",)),
                C(-2, "rhs", ("b",), "n"),
                C(-6, "flag", ("fact",), params=_NEF),
                C(-7, "flag", ("trans",), params=_NTC),
                C(-4, "fact_requires", ("fact", "af", "ipiv"))),
        kernel="getrf", reference_only=False,
        positive_info="i <= n: U(i,i) is exactly zero",
        warn="n+1: RCOND is below machine epsilon — the solution may "
        "be inaccurate"),
    DriverSpec(
        "la_gbsvx", _S2, "Expert band solve with refinement and RCOND",
        args=_args("ab:inout:tbl", "b:rhs:inout:tbl", "x:rhs:opt:out:ws",
                   "kl:scalar:opt:tbl", "abf:opt:inout:tbl",
                   "ipiv:vector:opt:inout:ws", "fact:flag:opt",
                   "trans:flag:opt:tbl", "info:info"),
        dims=(("rows", "rows2d", "ab"), ("n", "cols2d", "ab")),
        checks=(C(-1, "matrix2d", ("ab",)),
                C(-4, "band", ("kl",), "rows", {"style": "gbx"}),
                C(-2, "rhs", ("b",), "n"),
                C(-8, "flag", ("trans",), params=_NTC),
                C(-5, "fact_requires", ("fact", "abf", "ipiv"))),
        kernel="gbtrf",
        positive_info="i <= n: U(i,i) is exactly zero",
        warn="n+1: RCOND is below machine epsilon — the solution may "
        "be inaccurate"),
    DriverSpec(
        "la_gtsvx", _S2, "Expert tridiagonal solve with refinement and "
        "RCOND",
        args=_args("dl:vector:tbl", "d:vector:tbl", "du:vector",
                   "b:rhs:tbl", "x:rhs:opt:out:ws", "trans:flag:opt:tbl",
                   "info:info"),
        dims=(("n", "len", "d"),),
        checks=(C(-2, "nonneg", (), "n"),
                C(-1, "offdiag_pair", ("dl", "du"), "n"),
                C(-4, "rhs", ("b",), "n"),
                C(-6, "flag", ("trans",), params=_NTC)),
        kernel="gttrf",
        positive_info="i <= n: U(i,i) is exactly zero",
        warn="n+1: RCOND is below machine epsilon — the solution may "
        "be inaccurate"),
    DriverSpec(
        "la_posvx", _S2, "Expert Cholesky solve with refinement and "
        "RCOND",
        args=_args("a:inout:tbl", "b:rhs:inout:tbl", "x:rhs:opt:out:ws",
                   "uplo:flag:opt:tbl", "af:opt:inout:tbl",
                   "fact:flag:opt", "s:vector:opt:inout", "info:info"),
        dims=(("n", "rows2d", "a"),),
        checks=(C(-1, "square", ("a",)),
                C(-2, "rhs", ("b",), "n"),
                C(-4, "flag", ("uplo",), params=_UL),
                C(-5, "fact_requires", ("fact", "af"))),
        kernel="potrf", reference_only=False,
        positive_info="i <= n: the leading minor of order i is not "
        "positive definite",
        warn="n+1: RCOND is below machine epsilon — the solution may "
        "be inaccurate"),
    DriverSpec(
        "la_ppsvx", _S2, "Expert packed Cholesky solve with refinement "
        "and RCOND",
        args=_args("ap:vector:inout:tbl", "b:rhs:inout:tbl",
                   "x:rhs:opt:out:ws", "uplo:flag:opt:tbl",
                   "afp:vector:opt:inout:tbl", "fact:flag:opt",
                   "info:info"),
        dims=(("n", "len", "b"),),
        checks=(C(-1, "packed", ("ap",), "n"),
                C(-2, "nonneg", (), "n"),
                C(-4, "flag", ("uplo",), params=_UL),
                C(-5, "fact_requires", ("fact", "afp"))),
        kernel="pptrf",
        positive_info="i <= n: the leading minor of order i is not "
        "positive definite",
        warn="n+1: RCOND is below machine epsilon — the solution may "
        "be inaccurate"),
    DriverSpec(
        "la_pbsvx", _S2, "Expert band Cholesky solve with refinement "
        "and RCOND",
        args=_args("ab:inout:tbl", "b:rhs:inout:tbl", "x:rhs:opt:out:ws",
                   "uplo:flag:opt:tbl", "afb:opt:inout:tbl",
                   "fact:flag:opt", "info:info"),
        dims=(("n", "cols2d", "ab"),),
        checks=(C(-1, "matrix2d", ("ab",)),
                C(-2, "rhs", ("b",), "n"),
                C(-4, "flag", ("uplo",), params=_UL),
                C(-5, "fact_requires", ("fact", "afb"))),
        kernel="pbtrf",
        positive_info="i <= n: the leading minor of order i is not "
        "positive definite",
        warn="n+1: RCOND is below machine epsilon — the solution may "
        "be inaccurate"),
    DriverSpec(
        "la_ptsvx", _S2, "Expert positive definite tridiagonal solve "
        "with refinement and RCOND",
        args=_args("d:vector:tbl", "e:vector:tbl", "b:rhs:tbl",
                   "x:rhs:opt:out:ws", "fact:flag:opt", "info:info"),
        dims=(("n", "len", "d"),),
        checks=(C(-1, "nonneg", (), "n"),
                C(-2, "offdiag", ("e",), "n"),
                C(-3, "rhs", ("b",), "n")),
        kernel="pttrf",
        positive_info="i <= n: the leading minor of order i is not "
        "positive definite",
        warn="n+1: RCOND is below machine epsilon — the solution may "
        "be inaccurate"),
    DriverSpec(
        "la_sysvx", _S2, "Expert symmetric indefinite solve with "
        "refinement and RCOND",
        args=_args("a:tbl", "b:rhs:tbl", "x:rhs:opt:out:ws",
                   "uplo:flag:opt:tbl", "af:opt:inout:tbl",
                   "ipiv:vector:opt:inout:ws:tbl", "fact:flag:opt",
                   "info:info"),
        dims=(("n", "rows2d", "a"),),
        checks=(C(-1, "square", ("a",)),
                C(-2, "rhs", ("b",), "n"),
                C(-4, "flag", ("uplo",), params=_UL),
                C(-5, "fact_requires", ("fact", "af", "ipiv"))),
        kernel="sytrf", pair="la_hesvx",
        positive_info="i <= n: D(i,i) is exactly zero",
        warn="n+1: RCOND is below machine epsilon — the solution may "
        "be inaccurate"),
    DriverSpec(
        "la_hesvx", _S2, "Expert Hermitian indefinite solve with "
        "refinement and RCOND",
        args=_args("a:tbl", "b:rhs:tbl", "x:rhs:opt:out:ws",
                   "uplo:flag:opt:tbl", "af:opt:inout:tbl",
                   "ipiv:vector:opt:inout:ws:tbl", "fact:flag:opt",
                   "info:info"),
        dims=(("n", "rows2d", "a"),),
        checks=(C(-1, "square", ("a",)),
                C(-2, "rhs", ("b",), "n"),
                C(-4, "flag", ("uplo",), params=_UL),
                C(-5, "fact_requires", ("fact", "af", "ipiv"))),
        kernel="hetrf", dtypes="complex", pair="la_sysvx",
        positive_info="i <= n: D(i,i) is exactly zero",
        warn="n+1: RCOND is below machine epsilon — the solution may "
        "be inaccurate"),
    DriverSpec(
        "la_spsvx", _S2, "Expert packed symmetric indefinite solve "
        "with refinement and RCOND",
        args=_args("ap:vector:tbl", "b:rhs:tbl", "x:rhs:opt:out:ws",
                   "uplo:flag:opt:tbl", "afp:vector:opt:inout:tbl",
                   "ipiv:vector:opt:inout:ws:tbl", "fact:flag:opt",
                   "info:info"),
        dims=(("n", "len", "b"),),
        checks=(C(-1, "packed", ("ap",), "n"),
                C(-2, "rhs", ("b",), "n"),
                C(-4, "flag", ("uplo",), params=_UL),
                C(-5, "fact_requires", ("fact", "afp", "ipiv"))),
        kernel="sptrf", pair="la_hpsvx",
        positive_info="i <= n: D(i,i) is exactly zero",
        warn="n+1: RCOND is below machine epsilon — the solution may "
        "be inaccurate"),
    DriverSpec(
        "la_hpsvx", _S2, "Expert packed Hermitian indefinite solve "
        "with refinement and RCOND",
        args=_args("ap:vector:tbl", "b:rhs:tbl", "x:rhs:opt:out:ws",
                   "uplo:flag:opt:tbl", "afp:vector:opt:inout:tbl",
                   "ipiv:vector:opt:inout:ws:tbl", "fact:flag:opt",
                   "info:info"),
        dims=(("n", "len", "b"),),
        checks=(C(-1, "packed", ("ap",), "n"),
                C(-2, "rhs", ("b",), "n"),
                C(-4, "flag", ("uplo",), params=_UL),
                C(-5, "fact_requires", ("fact", "afp", "ipiv"))),
        kernel="hptrf", dtypes="complex", pair="la_spsvx",
        positive_info="i <= n: D(i,i) is exactly zero",
        warn="n+1: RCOND is below machine epsilon — the solution may "
        "be inaccurate"),

    # -- §3: least squares --------------------------------------------
    DriverSpec(
        "la_gels", _S3, "Full-rank least squares via QR or LQ "
        "factorization",
        args=_args("a:inout:tbl", "b:rhs:inout:tbl", "trans:flag:opt:tbl",
                   "info:info"),
        checks=(C(-1, "matrix2d", ("a",)),
                C(-2, "custom", ("b",), params={"name": "gels_b"}),
                C(-3, "flag", ("trans",), params=_NTC)),
        kernel="gels", reference_only=False, batchable=True,
        problem_kind="lstsq", structure=("general",)),
    DriverSpec(
        "la_gelsx", _S3, "Rank-deficient least squares via complete "
        "orthogonal factorization",
        args=_args("a:inout", "b:rhs:inout", "rcond:scalar:opt",
                   "jpvt:vector:opt:inout", "info:info"),
        checks=(C(-1, "matrix2d", ("a",)),
                C(-2, "custom", ("b",), params={"name": "ls_b"})),
        kernel="gelsx"),
    DriverSpec(
        "la_gelss", _S3, "Minimum-norm least squares via the singular "
        "value decomposition",
        args=_args("a:inout", "b:rhs:inout", "rcond:scalar:opt",
                   "info:info"),
        checks=(C(-1, "matrix2d", ("a",)),
                C(-2, "custom", ("b",), params={"name": "ls_b"})),
        kernel="gelss",
        positive_info="i: the SVD failed to converge (i off-diagonals "
        "did not reduce to zero)"),

    # -- §4: generalized least squares --------------------------------
    DriverSpec(
        "la_gglse", _S4, "Equality-constrained least squares (LSE) via "
        "generalized RQ",
        args=_args("a:inout", "b:inout", "c:vector:inout",
                   "d:vector:inout", "x:vector:opt:out:ws", "info:info"),
        dims=(("m", "rows2d", "a"), ("nn", "cols2d", "a"),
              ("p", "rows2d", "b")),
        checks=(C(-1, "matrix2d", ("a",)),
                C(-2, "custom", ("b",), params={"name": "gglse_b"}),
                C(-3, "reqlen", ("c",), "m"),
                C(-4, "reqlen", ("d",), "p"),
                C(-5, "optlen", ("x",), "nn")),
        kernel="gglse"),
    DriverSpec(
        "la_ggglm", _S4, "Gauss-Markov linear model (GLM) via "
        "generalized QR",
        args=_args("a:inout", "b:inout", "d:vector:inout",
                   "x:vector:opt:out:ws", "y:vector:opt:out:ws",
                   "info:info"),
        dims=(("n", "rows2d", "a"), ("m", "cols2d", "a"),
              ("p", "cols2d", "b")),
        checks=(C(-1, "matrix2d", ("a",)),
                C(-2, "custom", ("b",), params={"name": "glm_b"}),
                C(-3, "reqlen", ("d",), "n"),
                C(-4, "optlen", ("x",), "m"),
                C(-5, "optlen", ("y",), "p")),
        kernel="ggglm"),

    # -- §5: standard eigenvalue / SVD drivers ------------------------
    DriverSpec(
        "la_syev", _S5, "All eigenvalues and optionally eigenvectors of "
        "a real symmetric matrix",
        args=_args("a:inout:tbl", "w:vector:opt:out:ws:tbl",
                   "jobz:flag:opt:tbl", "uplo:flag:opt:tbl",
                   "info:info"),
        dims=(("n", "rows2d", "a"),),
        checks=(C(-1, "square", ("a",)),
                C(-2, "optlen", ("w",), "n"),
                C(-3, "flag", ("jobz",), params=_NV),
                C(-4, "flag", ("uplo",), params=_UL)),
        kernel="syev", reference_only=False, dtypes="real",
        pair="la_heev", batchable=True,
        problem_kind="eig", structure=("symmetric",),
        positive_info="i: i off-diagonal elements failed to converge "
        "to zero"),
    DriverSpec(
        "la_heev", _S5, "All eigenvalues and optionally eigenvectors of "
        "a complex Hermitian matrix",
        args=_args("a:inout:tbl", "w:vector:opt:out:ws:tbl",
                   "jobz:flag:opt:tbl", "uplo:flag:opt:tbl",
                   "info:info"),
        dims=(("n", "rows2d", "a"),),
        checks=(C(-1, "square", ("a",)),
                C(-2, "optlen", ("w",), "n"),
                C(-3, "flag", ("jobz",), params=_NV),
                C(-4, "flag", ("uplo",), params=_UL)),
        kernel="heev", reference_only=False, dtypes="complex",
        pair="la_syev", batchable=True,
        problem_kind="eig", structure=("hermitian",),
        positive_info="i: i off-diagonal elements failed to converge "
        "to zero"),
    DriverSpec(
        "la_spev", _S5, "Eigenvalues of a symmetric matrix in packed "
        "storage",
        args=_args("ap:vector:inout", "w:vector:opt:out:ws",
                   "uplo:flag:opt", "z:opt:out", "info:info"),
        dims=(("n", "tri", "ap"),),
        checks=(C(-1, "packed", ("ap",)),
                C(-2, "optlen", ("w",), "n"),
                C(-3, "flag", ("uplo",), params=_UL)),
        kernel="spev", dtypes="real", pair="la_hpev",
        positive_info="i: i off-diagonal elements failed to converge"),
    DriverSpec(
        "la_hpev", _S5, "Eigenvalues of a Hermitian matrix in packed "
        "storage",
        args=_args("ap:vector:inout", "w:vector:opt:out:ws",
                   "uplo:flag:opt", "z:opt:out", "info:info"),
        dims=(("n", "tri", "ap"),),
        checks=(C(-1, "packed", ("ap",)),
                C(-2, "optlen", ("w",), "n"),
                C(-3, "flag", ("uplo",), params=_UL)),
        kernel="hpev", dtypes="complex", pair="la_spev",
        positive_info="i: i off-diagonal elements failed to converge"),
    DriverSpec(
        "la_sbev", _S5, "Eigenvalues of a symmetric band matrix",
        args=_args("ab:inout", "w:vector:opt:out:ws", "uplo:flag:opt",
                   "z:opt:out", "info:info"),
        dims=(("n", "cols2d", "ab"),),
        checks=(C(-1, "matrix2d", ("ab",)),
                C(-2, "optlen", ("w",), "n"),
                C(-3, "flag", ("uplo",), params=_UL)),
        kernel="sbev", dtypes="real", pair="la_hbev",
        positive_info="i: i off-diagonal elements failed to converge"),
    DriverSpec(
        "la_hbev", _S5, "Eigenvalues of a Hermitian band matrix",
        args=_args("ab:inout", "w:vector:opt:out:ws", "uplo:flag:opt",
                   "z:opt:out", "info:info"),
        dims=(("n", "cols2d", "ab"),),
        checks=(C(-1, "matrix2d", ("ab",)),
                C(-2, "optlen", ("w",), "n"),
                C(-3, "flag", ("uplo",), params=_UL)),
        kernel="hbev", dtypes="complex", pair="la_sbev",
        positive_info="i: i off-diagonal elements failed to converge"),
    DriverSpec(
        "la_stev", _S5, "Eigenvalues of a real symmetric tridiagonal "
        "matrix",
        args=_args("d:vector:inout", "e:vector:inout", "z:opt:out",
                   "info:info"),
        dims=(("n", "len", "d"),),
        checks=(C(-1, "nonneg", (), "n"),
                C(-2, "offdiag", ("e",), "n", {"mode": "min"})),
        kernel="stev", dtypes="real",
        positive_info="i: i off-diagonal elements failed to converge"),
    DriverSpec(
        "la_gees", _S5, "Schur factorization of a general matrix",
        args=_args("a:inout", "w:vector:opt:out:ws", "vs:opt:out",
                   "select:scalar:opt", "info:info"),
        checks=(C(-1, "square", ("a",)),),
        kernel="gees",
        positive_info="i: the QR algorithm failed to compute all Schur "
        "eigenvalues"),
    DriverSpec(
        "la_geev", _S5, "Eigenvalues and optionally eigenvectors of a "
        "general matrix",
        args=_args("a:inout", "w:vector:opt:out:ws", "vl:opt:out",
                   "vr:opt:out", "info:info"),
        checks=(C(-1, "square", ("a",)),),
        kernel="geev",
        problem_kind="eig", structure=("general",),
        positive_info="i: the QR algorithm failed; elements i+1:n of w "
        "contain converged eigenvalues"),
    DriverSpec(
        "la_gesvd", _S5, "Singular value decomposition of a general "
        "matrix",
        args=_args("a:inout", "s:vector:opt:out:ws", "u:opt:out",
                   "vt:opt:out", "ww:vector:opt:out", "job:flag:opt",
                   "info:info"),
        checks=(C(-1, "matrix2d", ("a",)),),
        kernel="gesvd", reference_only=False,
        positive_info="i: i superdiagonals of the bidiagonal form did "
        "not converge"),

    # -- §6: divide and conquer ---------------------------------------
    DriverSpec(
        "la_syevd", _S6, "Symmetric eigenproblem (divide and conquer)",
        args=_args("a:inout", "w:vector:opt:out:ws", "jobz:flag:opt",
                   "uplo:flag:opt", "info:info"),
        dims=(("n", "rows2d", "a"),),
        checks=(C(-1, "square", ("a",)),
                C(-2, "optlen", ("w",), "n"),
                C(-3, "flag", ("jobz",), params=_NV),
                C(-4, "flag", ("uplo",), params=_UL)),
        kernel="syevd", dtypes="real", pair="la_heevd",
        positive_info="i: the algorithm failed to converge"),
    DriverSpec(
        "la_heevd", _S6, "Hermitian eigenproblem (divide and conquer)",
        args=_args("a:inout", "w:vector:opt:out:ws", "jobz:flag:opt",
                   "uplo:flag:opt", "info:info"),
        dims=(("n", "rows2d", "a"),),
        checks=(C(-1, "square", ("a",)),
                C(-2, "optlen", ("w",), "n"),
                C(-3, "flag", ("jobz",), params=_NV),
                C(-4, "flag", ("uplo",), params=_UL)),
        kernel="heevd", dtypes="complex", pair="la_syevd",
        positive_info="i: the algorithm failed to converge"),
    DriverSpec(
        "la_spevd", _S6, "Packed symmetric eigenproblem (divide and "
        "conquer)",
        args=_args("ap:vector:inout", "w:vector:opt:out:ws",
                   "uplo:flag:opt", "z:opt:out", "info:info"),
        dims=(("n", "tri", "ap"),),
        checks=(C(-1, "packed", ("ap",)),
                C(-2, "optlen", ("w",), "n"),
                C(-3, "flag", ("uplo",), params=_UL)),
        kernel="spevd", dtypes="real", pair="la_hpevd",
        positive_info="i: the algorithm failed to converge"),
    DriverSpec(
        "la_hpevd", _S6, "Packed Hermitian eigenproblem (divide and "
        "conquer)",
        args=_args("ap:vector:inout", "w:vector:opt:out:ws",
                   "uplo:flag:opt", "z:opt:out", "info:info"),
        dims=(("n", "tri", "ap"),),
        checks=(C(-1, "packed", ("ap",)),
                C(-2, "optlen", ("w",), "n"),
                C(-3, "flag", ("uplo",), params=_UL)),
        kernel="hpevd", dtypes="complex", pair="la_spevd",
        positive_info="i: the algorithm failed to converge"),
    DriverSpec(
        "la_sbevd", _S6, "Symmetric band eigenproblem (divide and "
        "conquer)",
        args=_args("ab:inout", "w:vector:opt:out:ws", "uplo:flag:opt",
                   "z:opt:out", "info:info"),
        dims=(("n", "cols2d", "ab"),),
        checks=(C(-1, "matrix2d", ("ab",)),
                C(-2, "optlen", ("w",), "n"),
                C(-3, "flag", ("uplo",), params=_UL)),
        kernel="sbevd", dtypes="real", pair="la_hbevd",
        positive_info="i: the algorithm failed to converge"),
    DriverSpec(
        "la_hbevd", _S6, "Hermitian band eigenproblem (divide and "
        "conquer)",
        args=_args("ab:inout", "w:vector:opt:out:ws", "uplo:flag:opt",
                   "z:opt:out", "info:info"),
        dims=(("n", "cols2d", "ab"),),
        checks=(C(-1, "matrix2d", ("ab",)),
                C(-2, "optlen", ("w",), "n"),
                C(-3, "flag", ("uplo",), params=_UL)),
        kernel="hbevd", dtypes="complex", pair="la_sbevd",
        positive_info="i: the algorithm failed to converge"),
    DriverSpec(
        "la_stevd", _S6, "Tridiagonal eigenproblem (divide and conquer)",
        args=_args("d:vector:inout", "e:vector:inout", "z:opt:out",
                   "info:info"),
        dims=(("n", "len", "d"),),
        checks=(C(-1, "nonneg", (), "n"),
                C(-2, "offdiag", ("e",), "n", {"mode": "min"})),
        kernel="stevd", dtypes="real",
        positive_info="i: the algorithm failed to converge"),

    # -- §7: expert eigenvalue drivers --------------------------------
    DriverSpec(
        "la_syevx", _S7, "Selected eigenvalues of a symmetric matrix "
        "(by value range or index)",
        args=_args("a:inout", "w:vector:opt:out:ws", "uplo:flag:opt",
                   "z:opt:out", "vl:scalar:opt", "vu:scalar:opt",
                   "il:scalar:opt", "iu:scalar:opt", "abstol:scalar:opt",
                   "info:info"),
        checks=(C(-1, "square", ("a",)),
                C(-5, "range_pair", ("vl", "vu")),
                C(-7, "index_pair", ("il", "iu"))),
        kernel="syevx", dtypes="real", pair="la_heevx",
        positive_info="i: i eigenvectors failed to converge"),
    DriverSpec(
        "la_heevx", _S7, "Selected eigenvalues of a Hermitian matrix "
        "(by value range or index)",
        args=_args("a:inout", "w:vector:opt:out:ws", "uplo:flag:opt",
                   "z:opt:out", "vl:scalar:opt", "vu:scalar:opt",
                   "il:scalar:opt", "iu:scalar:opt", "abstol:scalar:opt",
                   "info:info"),
        checks=(C(-1, "square", ("a",)),
                C(-5, "range_pair", ("vl", "vu")),
                C(-7, "index_pair", ("il", "iu"))),
        kernel="heevx", dtypes="complex", pair="la_syevx",
        positive_info="i: i eigenvectors failed to converge"),
    DriverSpec(
        "la_spevx", _S7, "Selected eigenvalues, packed symmetric "
        "storage",
        args=_args("ap:vector:inout", "w:vector:opt:out:ws",
                   "uplo:flag:opt", "z:opt:out", "vl:scalar:opt",
                   "vu:scalar:opt", "il:scalar:opt", "iu:scalar:opt",
                   "abstol:scalar:opt", "info:info"),
        dims=(("n", "tri", "ap"),),
        checks=(C(-1, "packed", ("ap",)),
                C(-5, "range_pair", ("vl", "vu")),
                C(-7, "index_pair", ("il", "iu"))),
        kernel="spevx", dtypes="real", pair="la_hpevx",
        positive_info="i: i eigenvectors failed to converge"),
    DriverSpec(
        "la_hpevx", _S7, "Selected eigenvalues, packed Hermitian "
        "storage",
        args=_args("ap:vector:inout", "w:vector:opt:out:ws",
                   "uplo:flag:opt", "z:opt:out", "vl:scalar:opt",
                   "vu:scalar:opt", "il:scalar:opt", "iu:scalar:opt",
                   "abstol:scalar:opt", "info:info"),
        dims=(("n", "tri", "ap"),),
        checks=(C(-1, "packed", ("ap",)),
                C(-5, "range_pair", ("vl", "vu")),
                C(-7, "index_pair", ("il", "iu"))),
        kernel="hpevx", dtypes="complex", pair="la_spevx",
        positive_info="i: i eigenvectors failed to converge"),
    DriverSpec(
        "la_sbevx", _S7, "Selected eigenvalues of a symmetric band "
        "matrix",
        args=_args("ab:inout", "w:vector:opt:out:ws", "uplo:flag:opt",
                   "z:opt:out", "vl:scalar:opt", "vu:scalar:opt",
                   "il:scalar:opt", "iu:scalar:opt", "abstol:scalar:opt",
                   "info:info"),
        checks=(C(-1, "matrix2d", ("ab",)),
                C(-5, "range_pair", ("vl", "vu")),
                C(-7, "index_pair", ("il", "iu"))),
        kernel="sbevx", dtypes="real", pair="la_hbevx",
        positive_info="i: i eigenvectors failed to converge"),
    DriverSpec(
        "la_hbevx", _S7, "Selected eigenvalues of a Hermitian band "
        "matrix",
        args=_args("ab:inout", "w:vector:opt:out:ws", "uplo:flag:opt",
                   "z:opt:out", "vl:scalar:opt", "vu:scalar:opt",
                   "il:scalar:opt", "iu:scalar:opt", "abstol:scalar:opt",
                   "info:info"),
        checks=(C(-1, "matrix2d", ("ab",)),
                C(-5, "range_pair", ("vl", "vu")),
                C(-7, "index_pair", ("il", "iu"))),
        kernel="hbevx", dtypes="complex", pair="la_sbevx",
        positive_info="i: i eigenvectors failed to converge"),
    DriverSpec(
        "la_stevx", _S7, "Selected eigenvalues of a tridiagonal matrix",
        args=_args("d:vector:inout", "e:vector:inout",
                   "w:vector:opt:out:ws", "z:opt:out", "vl:scalar:opt",
                   "vu:scalar:opt", "il:scalar:opt", "iu:scalar:opt",
                   "abstol:scalar:opt", "info:info"),
        dims=(("n", "len", "d"),),
        checks=(C(-1, "nonneg", (), "n"),
                C(-2, "offdiag", ("e",), "n", {"mode": "min"}),
                C(-5, "range_pair", ("vl", "vu")),
                C(-7, "index_pair", ("il", "iu"))),
        kernel="stevx", dtypes="real",
        positive_info="i: i eigenvectors failed to converge"),
    DriverSpec(
        "la_geesx", _S7, "Schur factorization with condition estimates",
        args=_args("a:inout", "w:vector:opt:out:ws", "vs:opt:out",
                   "select:scalar:opt", "sense:flag:opt", "info:info"),
        checks=(C(-1, "square", ("a",)),),
        kernel="geesx",
        positive_info="i: the QR algorithm failed to compute all Schur "
        "eigenvalues"),
    DriverSpec(
        "la_geevx", _S7, "General eigenproblem with balancing and "
        "condition estimates",
        args=_args("a:inout", "w:vector:opt:out:ws", "vl:opt:out",
                   "vr:opt:out", "balanc:flag:opt", "sense:flag:opt",
                   "info:info"),
        checks=(C(-1, "square", ("a",)),),
        kernel="geevx",
        positive_info="i: the QR algorithm failed; elements i+1:n of w "
        "contain converged eigenvalues"),

    # -- §8: generalized eigenvalue / SVD -----------------------------
    DriverSpec(
        "la_sygv", _S8, "Symmetric-definite generalized eigenproblem",
        args=_args("a:inout:tbl", "b:inout:tbl", "w:vector:opt:out:ws:tbl",
                   "itype:scalar:opt:tbl", "jobz:flag:opt:tbl",
                   "uplo:flag:opt:tbl", "info:info"),
        dims=(("n", "rows2d", "a"),),
        checks=(C(-1, "square", ("a",)),
                C(-2, "square_conform", ("b",), "n"),
                C(-3, "optlen", ("w",), "n"),
                C(-4, "intenum", ("itype",), params=_ITYPE),
                C(-5, "flag", ("jobz",), params=_NV),
                C(-6, "flag", ("uplo",), params=_UL)),
        kernel="sygv", dtypes="real", pair="la_hegv",
        positive_info="i <= n: the eigensolver failed; n+i: the leading "
        "minor of order i of B is not positive definite"),
    DriverSpec(
        "la_hegv", _S8, "Hermitian-definite generalized eigenproblem",
        args=_args("a:inout", "b:inout", "w:vector:opt:out:ws",
                   "itype:scalar:opt", "jobz:flag:opt",
                   "uplo:flag:opt", "info:info"),
        dims=(("n", "rows2d", "a"),),
        checks=(C(-1, "square", ("a",)),
                C(-2, "square_conform", ("b",), "n"),
                C(-3, "optlen", ("w",), "n"),
                C(-4, "intenum", ("itype",), params=_ITYPE),
                C(-5, "flag", ("jobz",), params=_NV),
                C(-6, "flag", ("uplo",), params=_UL)),
        kernel="hegv", dtypes="complex", pair="la_sygv",
        positive_info="i <= n: the eigensolver failed; n+i: the leading "
        "minor of order i of B is not positive definite"),
    DriverSpec(
        "la_spgv", _S8, "Packed symmetric-definite generalized "
        "eigenproblem",
        args=_args("ap:vector:inout", "bp:vector:inout",
                   "w:vector:opt:out:ws", "itype:scalar:opt",
                   "uplo:flag:opt", "z:opt:out", "info:info"),
        checks=(C(-1, "packed", ("ap",)),
                C(-2, "same_shape", ("bp",), params={"ref": "ap"})),
        kernel="spgv", dtypes="real", pair="la_hpgv",
        positive_info="i <= n: the eigensolver failed; n+i: B is not "
        "positive definite"),
    DriverSpec(
        "la_hpgv", _S8, "Packed Hermitian-definite generalized "
        "eigenproblem",
        args=_args("ap:vector:inout", "bp:vector:inout",
                   "w:vector:opt:out:ws", "itype:scalar:opt",
                   "uplo:flag:opt", "z:opt:out", "info:info"),
        checks=(C(-1, "packed", ("ap",)),
                C(-2, "same_shape", ("bp",), params={"ref": "ap"})),
        kernel="spgv", dtypes="complex", pair="la_spgv",
        positive_info="i <= n: the eigensolver failed; n+i: B is not "
        "positive definite"),
    DriverSpec(
        "la_sbgv", _S8, "Banded symmetric-definite generalized "
        "eigenproblem",
        args=_args("ab:inout", "bb:inout", "w:vector:opt:out:ws",
                   "uplo:flag:opt", "z:opt:out", "info:info"),
        checks=(C(-1, "matrix2d", ("ab",)),
                C(-2, "cols_conform", ("bb",), params={"ref": "ab"})),
        kernel="sbgv", dtypes="real", pair="la_hbgv",
        positive_info="i <= n: the eigensolver failed; n+i: B is not "
        "positive definite"),
    DriverSpec(
        "la_hbgv", _S8, "Banded Hermitian-definite generalized "
        "eigenproblem",
        args=_args("ab:inout", "bb:inout", "w:vector:opt:out:ws",
                   "uplo:flag:opt", "z:opt:out", "info:info"),
        checks=(C(-1, "matrix2d", ("ab",)),
                C(-2, "cols_conform", ("bb",), params={"ref": "ab"})),
        kernel="sbgv", dtypes="complex", pair="la_sbgv",
        positive_info="i <= n: the eigensolver failed; n+i: B is not "
        "positive definite"),
    DriverSpec(
        "la_gegs", _S8, "Generalized Schur factorization of a matrix "
        "pencil",
        args=_args("a:inout", "b:inout", "vsl:opt:out", "vsr:opt:out",
                   "info:info"),
        checks=(C(-1, "square", ("a",)),
                C(-2, "square_same", ("b",), params={"ref": "a"})),
        kernel="gegs",
        positive_info="i: the QZ iteration failed"),
    DriverSpec(
        "la_gegv", _S8, "Generalized eigenvalues of a matrix pencil",
        args=_args("a:inout", "b:inout", "vl:opt:out", "vr:opt:out",
                   "info:info"),
        checks=(C(-1, "square", ("a",)),
                C(-2, "square_same", ("b",), params={"ref": "a"})),
        kernel="gegv",
        positive_info="i: the QZ iteration failed"),
    DriverSpec(
        "la_ggsvd", _S8, "Generalized singular value decomposition",
        args=_args("a:inout", "b:inout", "info:info"),
        checks=(C(-1, "matrix2d", ("a",)),
                C(-2, "cols_conform", ("b",), params={"ref": "a"})),
        kernel="ggsvd",
        positive_info="1: the Jacobi-type procedure failed to converge"),

    # -- §9: computational routines -----------------------------------
    DriverSpec(
        "la_getrf", _S9, "LU factorization with partial pivoting and "
        "optional condition estimate",
        args=_args("a:inout", "ipiv:vector:opt:out:ws",
                   "rcond:scalar:opt", "norm:flag:opt", "info:info"),
        dims=(("m", "rows2d", "a"), ("nc", "cols2d", "a"),
              ("mn", "min", "m", "nc")),
        checks=(C(-1, "matrix2d", ("a",)),
                C(-2, "optlen", ("ipiv",), "mn"),
                C(-3, "custom", ("rcond",), params={"name":
                                                    "getrf_rcond"}),
                C(-4, "flag", ("norm",), params=_NORM1OI)),
        kernel="getrf", reference_only=False,
        positive_info="i: U(i,i) is exactly zero — the factor U is "
        "singular"),
    DriverSpec(
        "la_getrs", _S9, "Solve a general system from its LU "
        "factorization",
        args=_args("a", "ipiv:vector", "b:rhs:inout", "trans:flag:opt",
                   "info:info"),
        dims=(("n", "rows2d", "a"),),
        checks=(C(-1, "square", ("a",)),
                C(-2, "reqlen", ("ipiv",), "n"),
                C(-3, "rhs", ("b",), "n"),
                C(-4, "flag", ("trans",), params=_NTC)),
        kernel="getrs", reference_only=False),
    DriverSpec(
        "la_trtrs", _S9, "Solve a triangular system by forward or "
        "backward substitution",
        # No in_table args: the driver postdates the frozen pre-refactor
        # error-exit fixture, which pins only the original hand-written
        # table rows byte-for-byte.
        args=_args("a", "b:rhs:inout", "uplo:flag:opt", "trans:flag:opt",
                   "diag:flag:opt", "info:info"),
        dims=(("n", "rows2d", "a"),),
        checks=(C(-1, "square", ("a",)),
                C(-2, "rhs", ("b",), "n"),
                C(-3, "flag", ("uplo",), params=_UL),
                C(-4, "flag", ("trans",), params=_NTC),
                C(-5, "flag", ("diag",), params={"options": ("N", "U")})),
        kernel="trtrs", reference_only=False,
        problem_kind="solve", structure=("triangular",),
        positive_info="i: A(i,i) is exactly zero — the matrix is "
        "singular and the solve was not performed"),
    DriverSpec(
        "la_getri", _S9, "Matrix inverse from the LU factorization "
        "(Appendix C listing)",
        args=_args("a:inout", "ipiv:vector", "info:info"),
        dims=(("n", "rows2d", "a"),),
        checks=(C(-1, "square", ("a",)),
                C(-2, "reqlen", ("ipiv",), "n")),
        kernel="getri",
        positive_info="i: U(i,i) is exactly zero — the matrix is "
        "singular",
        warn="-200: workspace reduced below the blocked optimum "
        "(unblocked updates used)"),
    DriverSpec(
        "la_gerfs", _S9, "Iterative refinement with forward/backward "
        "error bounds",
        args=_args("a", "af", "ipiv:vector", "b:rhs", "x:rhs:inout",
                   "trans:flag:opt", "info:info"),
        dims=(("n", "rows2d", "a"),),
        checks=(C(-1, "square", ("a",)),
                C(-2, "square_conform", ("af",), "n"),
                C(-3, "reqlen", ("ipiv",), "n"),
                C(-4, "rhs", ("b",), "n"),
                C(-5, "rhs_same", ("x",), "n", {"ref": "b"}),
                C(-6, "flag", ("trans",), params=_NTC)),
        kernel="gerfs"),
    DriverSpec(
        "la_geequ", _S9, "Row and column equilibration scalings",
        args=_args("a", "info:info"),
        checks=(C(-1, "matrix2d", ("a",)),),
        kernel="geequ"),
    DriverSpec(
        "la_potrf", _S9, "Cholesky factorization with optional "
        "condition estimate",
        args=_args("a:inout", "uplo:flag:opt", "rcond:scalar:opt",
                   "norm:flag:opt", "info:info"),
        checks=(C(-1, "square", ("a",)),
                C(-2, "flag", ("uplo",), params=_UL)),
        kernel="potrf", reference_only=False,
        positive_info="i: the leading minor of order i is not positive "
        "definite"),
    DriverSpec(
        "la_sygst", _S9, "Reduce a symmetric-definite generalized "
        "eigenproblem to standard form",
        args=_args("a:inout", "b", "itype:scalar:opt", "uplo:flag:opt",
                   "info:info"),
        dims=(("n", "rows2d", "a"),),
        checks=(C(-1, "square", ("a",)),
                C(-2, "square_conform", ("b",), "n"),
                C(-3, "intenum", ("itype",), params=_ITYPE),
                C(-4, "flag", ("uplo",), params=_UL)),
        kernel="sygst", dtypes="real", pair="la_hegst"),
    DriverSpec(
        "la_hegst", _S9, "Reduce a Hermitian-definite generalized "
        "eigenproblem to standard form",
        args=_args("a:inout", "b", "itype:scalar:opt", "uplo:flag:opt",
                   "info:info"),
        dims=(("n", "rows2d", "a"),),
        checks=(C(-1, "square", ("a",)),
                C(-2, "square_conform", ("b",), "n"),
                C(-3, "intenum", ("itype",), params=_ITYPE),
                C(-4, "flag", ("uplo",), params=_UL)),
        kernel="hegst", dtypes="complex", pair="la_sygst"),
    DriverSpec(
        "la_sytrd", _S9, "Reduce a symmetric matrix to tridiagonal form",
        args=_args("a:inout", "tau:vector:opt:out:ws", "uplo:flag:opt",
                   "info:info"),
        checks=(C(-1, "square", ("a",)),
                C(-3, "flag", ("uplo",), params=_UL)),
        kernel="sytrd", dtypes="real", pair="la_hetrd"),
    DriverSpec(
        "la_hetrd", _S9, "Reduce a Hermitian matrix to tridiagonal form",
        args=_args("a:inout", "tau:vector:opt:out:ws", "uplo:flag:opt",
                   "info:info"),
        checks=(C(-1, "square", ("a",)),
                C(-3, "flag", ("uplo",), params=_UL)),
        kernel="hetrd", dtypes="complex", pair="la_sytrd"),
    DriverSpec(
        "la_orgtr", _S9, "Generate the orthogonal matrix Q of the "
        "tridiagonal reduction",
        args=_args("a:inout", "tau:vector", "uplo:flag:opt",
                   "info:info"),
        dims=(("n", "rows2d", "a"),),
        checks=(C(-1, "square", ("a",)),
                C(-2, "minlen", ("tau",), "n", {"offset": -1}),
                C(-3, "flag", ("uplo",), params=_UL)),
        kernel="orgtr", dtypes="real", pair="la_ungtr"),
    DriverSpec(
        "la_ungtr", _S9, "Generate the unitary matrix Q of the "
        "tridiagonal reduction",
        args=_args("a:inout", "tau:vector", "uplo:flag:opt",
                   "info:info"),
        dims=(("n", "rows2d", "a"),),
        checks=(C(-1, "square", ("a",)),
                C(-2, "minlen", ("tau",), "n", {"offset": -1}),
                C(-3, "flag", ("uplo",), params=_UL)),
        kernel="ungtr", dtypes="complex", pair="la_orgtr"),

    # -- §10: matrix manipulation -------------------------------------
    DriverSpec(
        "la_lange", _S10, "Matrix norm (one, infinity, Frobenius, or "
        "max-abs)",
        args=_args("a", "norm:flag:opt", "info:info"),
        checks=(C(-1, "matrix2d", ("a",)),
                C(-2, "flag", ("norm",),
                  params={"options": ("M", "1", "O", "I", "F", "E"),
                          "mode": "first"})),
        kernel="lange"),
    DriverSpec(
        "la_lagge", _S10, "Generate a random general matrix with given "
        "singular values and bandwidth",
        args=_args("a:inout", "kl:scalar:opt", "ku:scalar:opt",
                   "d:vector:opt", "iseed:scalar:opt", "info:info"),
        dims=(("m", "rows2d", "a"), ("nc", "cols2d", "a"),
              ("mn", "min", "m", "nc")),
        checks=(C(-1, "matrix2d", ("a",)),
                C(-4, "minlen", ("d",), "mn", {"optional": True})),
        # The lagge kernel consumes a caller-seeded RNG stream; a
        # resilience-layer retry would re-draw from an advanced stream
        # and silently change the generated matrix.
        kernel="lagge", breaker_exempt=True),
]

#: Driver name -> spec, in Appendix-G catalogue order.
SPECS = {spec.name: spec for spec in _SPEC_LIST}

if len(SPECS) != len(_SPEC_LIST):
    raise RuntimeError("duplicate driver name in the spec registry")


def error_exit_codes():
    """The shared error-exit table, derived from the ``in_table`` flags.

    This is the single source of
    :data:`repro.testing.error_exits.ERROR_EXIT_CODES`; the frozen
    fixture ``tests/core/fixtures/error_exit_codes_v0.json`` pins it to
    the pre-refactor hand-written table.
    """
    return {spec.name: spec.table_codes for spec in SPECS.values()
            if any(a.in_table for a in spec.args)}
