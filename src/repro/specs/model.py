"""Data model for the declarative driver-spec layer.

A :class:`DriverSpec` is the machine-readable description of one
``la_*`` wrapper: its arguments with their 1-based LAPACK positions,
the ordered argument checks (each bound to the negative ``LINFO`` code
it produces), the derived dimensions those checks consult, the dtype
domain and generic-dispatch pair, the backend kernel the driver is
bound to, and the meaning of positive ``INFO`` values.

Everything here is plain data — no numpy, no driver imports — so the
registry can be loaded by tooling (``lalint``, the catalogue emitter)
without touching the numerical stack.  The evaluation semantics of the
check vocabulary live in :mod:`repro.specs.engine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ArgSpec", "Check", "DriverSpec"]

#: Check kinds understood by the validation engine.  Kept as data so
#: lalint and the registry can agree on the vocabulary without importing
#: the engine.
CHECK_KINDS = frozenset({
    "square",          # arg is a square 2-D array
    "square_conform",  # square and shape[0] == dim
    "matrix2d",        # arg is a 2-D array
    "rhs",             # 1-D/2-D with dim rows (the check_rhs contract)
    "rhs_same",        # rhs plus shape identical to a reference arg
    "nonneg",          # derived dimension is non-negative
    "offdiag",         # off-diagonal vector of length max(0, dim-1)
    "offdiag_pair",    # two off-diagonal vectors share that length
    "optlen",          # optional vector: when given, length == dim
    "reqlen",          # required vector of length == dim
    "minlen",          # vector of length >= dim (optional via param)
    "packed",          # 1-D packed triangle of order dim (or self-sized)
    "flag",            # option letter within a domain
    "intenum",         # integer drawn from a small enum
    "band",            # band storage: derived kl/ku both non-negative
    "fact_requires",   # fact='F' demands the factored arguments
    "range_pair",      # half-open eigenvalue range: vl < vu
    "index_pair",      # eigenvalue index range: 0 <= il <= iu
    "same_shape",      # arg.shape == reference arg.shape
    "cols_conform",    # 2-D with the same column count as a reference
    "square_same",     # square and same shape as a reference arg
    "custom",          # named predicate registered in the engine
})

#: Derived-dimension sources (see ``engine._DIM_SOURCES``).
DIM_SOURCES = frozenset({"rows2d", "cols2d", "len", "tri", "min"})


@dataclass(frozen=True)
class ArgSpec:
    """One wrapper argument.

    ``position`` is the 1-based LAPACK position that negative ``LINFO``
    codes are keyed to.  ``in_table`` marks the arguments that appear in
    the shared error-exit table (:data:`repro.testing.error_exits.
    ERROR_EXIT_CODES` is derived from exactly these flags).
    """

    name: str
    position: int
    kind: str = "matrix"     # matrix | rhs | vector | flag | scalar | info
    required: bool = True
    intent: str = "in"       # in | inout | out
    workspace: bool = False  # wrapper allocates this output when omitted
    in_table: bool = False


@dataclass(frozen=True)
class Check:
    """One ordered validation step.

    ``code`` is the negative ``LINFO`` value emitted on violation;
    ``args`` names the argument(s) under test, ``dim`` a derived
    dimension from :attr:`DriverSpec.dims`, and ``params`` carries
    kind-specific options (flag domains, band styles, enum values,
    custom-predicate names).
    """

    code: int
    kind: str
    args: tuple = ()
    dim: str | None = None
    params: dict = field(default_factory=dict)


@dataclass(frozen=True)
class DriverSpec:
    """Declarative description of one ``la_*`` driver."""

    name: str                       # "la_gesv"
    section: str                    # Appendix-G catalogue section
    summary: str                    # one-line catalogue description
    args: tuple = ()                # ArgSpec, signature order
    checks: tuple = ()              # Check, ladder order (first wins)
    dims: tuple = ()                # (var, source, *arg-or-dim refs)
    kernel: str | None = None       # bound backend-kernel name
    reference_only: bool = True     # accelerated backend lacks the kernel
    dtypes: str = "both"            # real | complex | both
    pair: str | None = None         # generic real<->complex partner
    positive_info: str = ""         # meaning of INFO > 0
    warn: str | None = None         # warning-band semantics, if any
    breaker_exempt: bool = False    # resilience: never retry/escalate
    # (breaker_exempt marks kernels whose inputs are not replayable —
    # e.g. they consume a stateful RNG — so a dispatch re-attempt would
    # observe different arguments than the first try.)
    batchable: bool = False         # repro.batch derives a batch_* wrapper
    problem_kind: str | None = None  # front-door verb: solve | lstsq | eig
    structure: tuple = ()           # matrix structures this driver is the
    # preferred route for (labels from repro.specs.routing.STRUCTURES).
    # The dispatch front end derives its probe->driver routing table
    # from exactly these two fields — there is no hand-written ladder
    # anywhere (lalint LA022 forbids one).

    @property
    def srname(self) -> str:
        return self.name.upper()

    @property
    def flags(self) -> dict:
        """Flag-argument domains, collected from the flag checks."""
        return {c.args[0]: tuple(c.params.get("options", ()))
                for c in self.checks if c.kind == "flag"}

    @property
    def table_codes(self) -> dict:
        """This driver's row of the derived error-exit table."""
        return {a.name: -a.position for a in self.args if a.in_table}

    @property
    def array_args(self) -> tuple:
        """Names of the array operands (matrix / rhs / vector kinds)."""
        return tuple(a.name for a in self.args
                     if a.kind in ("matrix", "rhs", "vector"))

    @property
    def written_args(self) -> tuple:
        """Array operands the driver's kernel may write in place — the
        read/write half of the effect signature lalint derives per
        kernel (intent ``inout``/``out`` array arguments)."""
        return tuple(a.name for a in self.args
                     if a.kind in ("matrix", "rhs", "vector")
                     and a.intent in ("inout", "out"))

    @property
    def batch_stacked(self) -> tuple:
        """Array operands that gain a leading batch axis in the derived
        ``batch_*`` wrapper — every per-problem array (the batched layer
        stacks all of them; there is no per-argument opt-out)."""
        return self.array_args

    @property
    def batch_broadcast(self) -> tuple:
        """Arguments shared (broadcast) across the whole batch: option
        flags and scalars.  The derived wrapper accepts one value and
        applies it to every problem; a flag's default is the first
        option in its declared domain (``uplo='U'``, ``jobz='N'``,
        ``trans='N'`` — matching the parent drivers)."""
        return tuple(a.name for a in self.args
                     if a.kind in ("flag", "scalar"))

    def arg(self, name: str) -> ArgSpec | None:
        for a in self.args:
            if a.name == name:
                return a
        return None

    def call_sequence(self) -> str:
        """``la_gesv(a, b, ipiv=, info=)`` — catalogue call summary."""
        parts = [a.name if a.required else f"{a.name}=" for a in self.args]
        return f"{self.name}({', '.join(parts)})"
