"""Finding objects, fingerprints and the baseline file for ``lalint``.

A :class:`Finding` is one rule violation anchored to a file and line.
Its :attr:`~Finding.fingerprint` deliberately omits line numbers so that
unrelated edits above a legacy violation do not invalidate the committed
baseline; only the rule code, the relative path, the enclosing context
(usually the driver name) and a slug of the message participate.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass, field

__all__ = ["Finding", "Baseline", "sarif_log"]

_SLUG_RE = re.compile(r"[^a-z0-9]+")


def _slug(text: str) -> str:
    return _SLUG_RE.sub("-", text.lower()).strip("-")


@dataclass(frozen=True)
class Finding:
    """One lalint violation.

    ``context`` names the enclosing definition (driver or module) and is
    part of the stable fingerprint; ``line``/``col`` are display-only.
    """

    code: str          # "LA001" .. "LA010"
    message: str
    path: str          # as given on the command line (often relative)
    line: int
    col: int = 0
    context: str = ""  # enclosing function / module-level marker

    @property
    def fingerprint(self) -> str:
        base = "|".join(
            (self.code, _relpath(self.path), self.context,
             _slug(self.message)))
        return hashlib.sha256(base.encode()).hexdigest()[:16]

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "context": self.context,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        where = f"{self.path}:{self.line}"
        ctx = f" [{self.context}]" if self.context else ""
        return f"{where}: {self.code}{ctx} {self.message}"

    def render_github(self) -> str:
        # GitHub Actions workflow-command annotation format.
        return (f"::error file={self.path},line={self.line},"
                f"title={self.code}::{self.message}")


#: SARIF 2.1.0 schema reference for the emitted log.
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")


def sarif_log(findings, rule_titles: dict) -> dict:
    """A SARIF 2.1.0 log for *findings* (GitHub code-scanning format).

    Fingerprints ride along as ``partialFingerprints`` so code-scanning
    result identity matches the lalint baseline identity: line motion
    does not resurrect a dismissed alert.
    """
    results = []
    for f in findings:
        results.append({
            "ruleId": f.code,
            "level": "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": _relpath(f.path)},
                    "region": {"startLine": max(1, f.line),
                               "startColumn": f.col + 1},
                },
            }],
            "partialFingerprints": {"lalint/v1": f.fingerprint},
        })
    return {
        "$schema": SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "lalint",
                "rules": [{"id": code,
                           "shortDescription": {"text": title}}
                          for code, title in sorted(rule_titles.items())],
            }},
            "results": results,
        }],
    }


def _relpath(path: str) -> str:
    """Normalise to a stable repo-relative posix path for fingerprints."""
    p = path.replace(os.sep, "/")
    for marker in ("src/repro/", "tests/"):
        idx = p.find(marker)
        if idx >= 0:
            return p[idx:]
    return p.lstrip("./")


@dataclass
class Baseline:
    """Accepted legacy findings, stored as a sorted JSON list of entries.

    Each entry keeps a human-readable echo of the finding next to the
    fingerprint so reviews of the baseline file stay meaningful.
    """

    entries: dict = field(default_factory=dict)  # fingerprint -> echo

    @classmethod
    def load(cls, path: str) -> "Baseline":
        if not os.path.exists(path):
            return cls()
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        entries = {e["fingerprint"]: e for e in data.get("findings", [])}
        return cls(entries)

    def save(self, path: str) -> None:
        payload = {
            "comment": "lalint baseline: accepted legacy findings. "
                       "Regenerate with --write-baseline.",
            "findings": sorted(self.entries.values(),
                               key=lambda e: (e.get("code", ""),
                                              e.get("path", ""),
                                              e["fingerprint"])),
        }
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")

    def absorb(self, findings) -> None:
        for f in findings:
            d = f.to_dict()
            d.pop("line", None)
            d.pop("col", None)
            self.entries[f.fingerprint] = d

    def suppresses(self, finding: Finding) -> bool:
        return finding.fingerprint in self.entries

    def split(self, findings):
        """Partition into (new, suppressed) lists."""
        new, suppressed = [], []
        for f in findings:
            (suppressed if self.suppresses(f) else new).append(f)
        return new, suppressed
