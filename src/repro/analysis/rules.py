"""The lalint rule catalogue (LA001–LA022).

Every rule is a function ``check(project) -> list[Finding]`` registered
in :data:`RULES`.  Rules only inspect the AST model — the analysed code
is never imported.  The two spec rules (LA009/LA010) additionally load
the declarative driver-spec registry (:mod:`repro.specs.registry`) —
plain data, not the code under analysis — and degrade to no findings
when it cannot be imported.
"""

from __future__ import annotations

import ast
import os

from .findings import Finding
from .model import (NON_DRIVER_LA, Project, alias_map, body_statements,
                    call_name, int_literal, names_in, neg_literal,
                    param_defaults, param_positions)

__all__ = ["RULES", "run_rules", "rule_titles"]

#: Error classes a driver must never raise directly — ERINFO owns
#: termination (paper Appendix C).
LAPACK_ERRORS = {
    "LinAlgError", "IllegalArgument", "ComputationalError",
    "SingularMatrix", "NotPositiveDefinite", "NoConvergence",
    "WorkspaceError", "NonFiniteInput",
}

#: Reporter callables and the index of their LINFO argument.
REPORTERS = {"erinfo": 0, "xerbla": 1, "_report": 1, "_finish": 1,
             "_record_fallback": 3}

#: Real <-> complex driver-family digraphs (``la_sysv`` pairs with
#: ``la_hesv`` and so on).
_REAL_COMPLEX = {"sy": "he", "sp": "hp", "sb": "hb", "or": "un"}
PAIRS = dict(_REAL_COMPLEX)
PAIRS.update({v: k for k, v in _REAL_COMPLEX.items()})

#: Named code-class constants (``repro.errors``) whose raw values must
#: not be spelled as literals inside driver modules.
CODE_CLASS_FLOOR = -100


def _f(code, message, mod, node, context=""):
    return Finding(code=code, message=message, path=mod.path,
                   line=getattr(node, "lineno", 1),
                   col=getattr(node, "col_offset", 0), context=context)


# ---------------------------------------------------------------------
# Validation-branch collection (shared by LA002 and LA004)
# ---------------------------------------------------------------------

def _reporter_code_args(call):
    """Literal LINFO codes passed to a reporter call.

    Returns a list of ``(code, test_or_None)`` — an ``IfExp`` code
    argument (``erinfo(-1 if check_square(a, 1) else -2, ...)``)
    contributes its then-branch keyed to the IfExp's own test; the
    else-branch code carries no usable test.
    """
    name = call_name(call)
    if name not in REPORTERS:
        return []
    out = []
    for arg in call.args[:2]:
        if isinstance(arg, ast.IfExp):
            for sub, test in ((arg.body, arg.test), (arg.orelse, None)):
                code = neg_literal(sub)
                if code is not None:
                    out.append((code, test))
            return out
        code = neg_literal(arg)
        if code is not None:
            return [(code, None)]
    return out


def _validation_branches(func):
    """Yield ``(code, test, node)`` for every validation exit.

    A validation exit is a ``linfo = -k`` assignment or a reporter call
    with a literal negative code, in the direct body of an ``if``.
    """
    for node in ast.walk(func):
        if not isinstance(node, ast.If):
            continue
        for stmt in node.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name) \
                    and stmt.targets[0].id == "linfo":
                code = neg_literal(stmt.value)
                if code is not None:
                    yield code, node.test, stmt
                continue
            value = stmt.value if isinstance(stmt, (ast.Expr, ast.Return)) \
                else None
            if isinstance(value, ast.Call):
                for code, test in _reporter_code_args(value):
                    yield code, test if test is not None else node.test, \
                        stmt


def _declared_checks(test):
    """``check_square(a, 1)`` / ``check_rhs(n, b, 2)`` calls in a test:
    yields ``(array_name, declared_position, node)``."""
    for node in ast.walk(test):
        name = call_name(node)
        if name == "check_square" and len(node.args) >= 2:
            arr, pos = node.args[0], node.args[1]
        elif name == "check_rhs" and len(node.args) >= 3:
            arr, pos = node.args[1], node.args[2]
        else:
            continue
        p = int_literal(pos)
        if isinstance(arr, ast.Name) and p is not None:
            yield arr.id, p, node


def _implicated_positions(test, aliases, posmap):
    out = set()
    for name in names_in(test):
        for src in aliases.get(name, {name}):
            if src in posmap:
                out.add(posmap[src])
    return out


# ---------------------------------------------------------------------
# LA001 — every exit path reports through ERINFO
# ---------------------------------------------------------------------

def check_la001(project: Project):
    findings = []
    for impl in project.driver_impls():
        mod, func = impl.impl_module, impl.func

        def uncovered(stmt, impl=impl, mod=mod):
            findings.append(_f(
                "LA001",
                f"exit path returns without reporting through "
                f"erinfo/_report (driver {impl.driver})",
                mod, stmt, context=impl.driver))

        project._walk(body_statements(func), False, uncovered)
        for node in ast.walk(func):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                findings.append(_f(
                    "LA001", "bare except swallows LAPACK errors "
                    f"(driver {impl.driver})", mod, node,
                    context=impl.driver))
            if isinstance(node, ast.Raise) and node.exc is not None \
                    and call_name(node.exc) in LAPACK_ERRORS:
                findings.append(_f(
                    "LA001",
                    f"direct raise of {call_name(node.exc)} bypasses "
                    f"erinfo (driver {impl.driver})", mod, node,
                    context=impl.driver))
    return findings


# ---------------------------------------------------------------------
# LA002 — LINFO codes match 1-based argument positions
# ---------------------------------------------------------------------

def check_la002(project: Project):
    findings = []
    for impl in project.driver_impls():
        posmap = impl.posmap
        aliases = alias_map(impl.func, set(posmap))
        for code, test, node in _validation_branches(impl.func):
            if test is None:
                continue
            declared = list(_declared_checks(test))
            for arr, p, cnode in declared:
                arr_pos = {posmap[s] for s in aliases.get(arr, {arr})
                           if s in posmap}
                if arr_pos and p not in arr_pos:
                    findings.append(_f(
                        "LA002",
                        f"check helper declares argument position {p} "
                        f"but {arr} is argument "
                        f"{sorted(arr_pos)[0]} of {impl.driver}",
                        impl.impl_module, cnode, context=impl.driver))
            implicated = _implicated_positions(test, aliases, posmap)
            candidates = implicated | {p for _, p, _ in declared}
            if candidates and -code not in candidates:
                pretty = ", ".join(str(p) for p in sorted(candidates))
                findings.append(_f(
                    "LA002",
                    f"LINFO code {code} does not match the flagged "
                    f"argument (test involves position(s) {pretty} "
                    f"of {impl.driver})",
                    impl.impl_module, node, context=impl.driver))
        # driver_guard position tuples must agree with the signature.
        for node in ast.walk(impl.func):
            if call_name(node) != "driver_guard":
                continue
            for arg in node.args:
                if not (isinstance(arg, ast.Tuple)
                        and len(arg.elts) == 2):
                    continue
                p = int_literal(arg.elts[0])
                name = arg.elts[1]
                if p is None or not isinstance(name, ast.Name):
                    continue
                pos = {posmap[s]
                       for s in aliases.get(name.id, {name.id})
                       if s in posmap}
                if pos and p not in pos:
                    findings.append(_f(
                        "LA002",
                        f"driver_guard flags {name.id} as argument {p} "
                        f"but it is argument {sorted(pos)[0]} of "
                        f"{impl.driver}",
                        impl.impl_module, node, context=impl.driver))
    findings.extend(_check_error_exit_table(project))
    return findings


def _check_error_exit_table(project: Project):
    """Cross-check the shared (driver, argument, code) table from
    ``repro.testing.error_exits`` against the live signatures."""
    findings = []
    drivers = {}
    for mod in project.modules:
        for name, func in mod.drivers().items():
            drivers.setdefault(name, func)
    for mod in project.modules:
        for node in mod.tree.body:
            if not (isinstance(node, ast.Assign) and node.targets
                    and isinstance(node.targets[0], ast.Name)
                    and node.targets[0].id == "ERROR_EXIT_CODES"
                    and isinstance(node.value, ast.Dict)):
                continue
            for key, val in zip(node.value.keys, node.value.values):
                if not (isinstance(key, ast.Constant)
                        and isinstance(val, ast.Dict)):
                    continue
                func = drivers.get(key.value)
                if func is None:
                    continue
                positions = param_positions(func)
                for akey, aval in zip(val.keys, val.values):
                    if not isinstance(akey, ast.Constant):
                        continue
                    code = int_literal(aval)
                    argname = akey.value
                    if code is None:
                        continue
                    want = positions.get(argname)
                    if want is None:
                        findings.append(_f(
                            "LA002",
                            f"error-exit table names unknown argument "
                            f"{argname!r} of {key.value}", mod, aval,
                            context=key.value))
                    elif -code != want:
                        findings.append(_f(
                            "LA002",
                            f"error-exit table expects code {code} for "
                            f"{key.value}({argname}) but {argname} is "
                            f"argument {want}", mod, aval,
                            context=key.value))
    return findings


# ---------------------------------------------------------------------
# LA003 — drivers accept info=None and thread it to the reporter
# ---------------------------------------------------------------------

def check_la003(project: Project):
    findings = []
    for mod in project.modules:
        for name, func in sorted(mod.drivers().items()):
            defaults = param_defaults(func)
            if "info" not in param_positions(func):
                findings.append(_f(
                    "LA003", f"driver {name} does not accept an info "
                    "argument", mod, func, context=name))
                continue
            dflt = defaults.get("info")
            if not (isinstance(dflt, ast.Constant)
                    and dflt.value is None):
                findings.append(_f(
                    "LA003", f"driver {name} must default info to None",
                    mod, func, context=name))
            if not _threads_info(func):
                findings.append(_f(
                    "LA003", f"driver {name} never threads info to a "
                    "reporter or helper", mod, func, context=name))
    return findings


def _threads_info(func):
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            for arg in list(node.args) + [kw.value for kw in
                                          node.keywords]:
                if isinstance(arg, ast.Name) and arg.id == "info":
                    return True
        if isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == "info":
            return True
    return False


# ---------------------------------------------------------------------
# LA004 — validation precedes driver_guard and the substrate call
# ---------------------------------------------------------------------

def check_la004(project: Project):
    findings = []
    for impl in project.driver_impls():
        func = impl.func
        substrate = impl.impl_module.substrate_names
        sub_lines = [n.lineno for n in ast.walk(func)
                     if call_name(n) in substrate
                     and isinstance(n, ast.Call)]
        guard_lines = [n.lineno for n in ast.walk(func)
                       if isinstance(n, ast.Call)
                       and call_name(n) == "driver_guard"]
        first_sub = min(sub_lines) if sub_lines else None
        first_guard = min(guard_lines) if guard_lines else None
        threshold = min(x for x in (first_sub, first_guard)
                        if x is not None) if (first_sub or first_guard) \
            else None
        if threshold is None:
            continue
        gate = "driver_guard" if threshold == first_guard \
            else "the lapack77 substrate call"
        for code, test, node in _validation_branches(func):
            if node.lineno > threshold:
                findings.append(_f(
                    "LA004",
                    f"argument validation (code {code}) runs after "
                    f"{gate} in {impl.driver}",
                    impl.impl_module, node, context=impl.driver))
        if first_sub is not None and first_guard is not None \
                and first_guard > first_sub:
            findings.append(Finding(
                code="LA004",
                message=(f"driver_guard runs after the first substrate "
                         f"call in {impl.driver}"),
                path=impl.impl_module.path, line=first_guard,
                context=impl.driver))
    return findings


# ---------------------------------------------------------------------
# LA005 — __all__ agrees with the public drivers
# ---------------------------------------------------------------------

def check_la005(project: Project):
    findings = []
    for mod in project.modules:
        if mod.all_dynamic or mod.all_literal is None:
            continue
        defined = set(mod.imports)
        for node in mod.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                defined.add(node.name)
            elif isinstance(node, ast.Assign):
                for t in node.targets:
                    if isinstance(t, ast.Name):
                        defined.add(t.id)
            elif isinstance(node, ast.AnnAssign) \
                    and isinstance(node.target, ast.Name):
                defined.add(node.target.id)
        exported = set(mod.all_literal)
        for name, func in sorted(mod.drivers().items()):
            if name not in exported:
                findings.append(_f(
                    "LA005", f"public driver {name} missing from "
                    "__all__", mod, func, context=name))
        for name in sorted(exported - defined):
            findings.append(_f(
                "LA005", f"__all__ exports undefined name {name}",
                mod, mod.all_node, context=name))
    return findings


# ---------------------------------------------------------------------
# LA006 — dtype-dispatch completeness against the lapack77 substrate
# ---------------------------------------------------------------------

def check_la006(project: Project):
    findings = []
    submods, flat = {}, set()
    for mod in project.modules:
        if not mod.is_substrate:
            continue
        base = mod.path.replace("\\", "/").rsplit("/", 1)[-1][:-3]
        names = set(mod.functions) | set(mod.imports)
        submods.setdefault(base, set()).update(names)
        flat |= names
    if flat:
        for mod in project.modules:
            if mod.is_substrate:
                continue
            for node in ast.walk(mod.tree):
                if not isinstance(node, ast.ImportFrom):
                    continue
                src = node.module or ""
                parts = src.split(".")
                # A registry-dispatched import (repro.backends.kernels)
                # is "the lapack77 call": its proxies must name real
                # substrate routines too.
                dispatched = "backends" in parts and \
                    parts[-1] == "kernels"
                if "lapack77" not in parts and not dispatched:
                    continue
                last = parts[-1]
                pool = flat if (dispatched or last == "lapack77") \
                    else submods.get(last, flat)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    if alias.name not in pool and alias.name not in flat:
                        findings.append(_f(
                            "LA006",
                            f"substrate routine {alias.name} not found "
                            f"in the scanned lapack77 package", mod,
                            node))
    # Real/complex pairing: the s/d (real) family driver and its c/z
    # (complex) partner must both exist for the dispatch to cover all
    # four type combinations.
    all_drivers = set()
    for mod in project.modules:
        all_drivers |= set(mod.drivers())
    for mod in project.modules:
        for name, func in sorted(mod.drivers().items()):
            digraph = name[3:5]
            if digraph not in PAIRS or len(name) <= 5:
                continue
            partner = "la_" + PAIRS[digraph] + name[5:]
            if partner not in all_drivers:
                findings.append(_f(
                    "LA006",
                    f"{name} has no {partner} partner — s/d/c/z "
                    "dispatch is incomplete", mod, func, context=name))
    return findings


# ---------------------------------------------------------------------
# LA007 — code-class discipline (no raw code-class literals)
# ---------------------------------------------------------------------

def check_la007(project: Project):
    findings = []
    for mod in project.modules:
        if not mod.drivers():
            continue
        for node in ast.walk(mod.tree):
            code = neg_literal(node)
            if code is None or code > CODE_CLASS_FLOOR:
                continue
            if code <= -1000:
                what = ("the <= -1000 class is reserved for "
                        "NonFiniteInput (use NONFINITE)")
            elif code <= -200:
                what = ("the -200..-999 warning band must go through "
                        "warn-style reporting (use WORK_REDUCED)")
            else:
                what = "use ALLOC_FAILED instead of a raw literal"
            findings.append(_f(
                "LA007",
                f"hard-coded code-class literal {code}: {what}",
                mod, node))
    return findings


# ---------------------------------------------------------------------
# LA008 — driver modules must dispatch, not import the substrate
# ---------------------------------------------------------------------

def check_la008(project: Project):
    """Driver modules may not import :mod:`repro.lapack77` directly —
    kernel access goes through the backend registry's dispatching
    proxies (``repro.backends.kernels``) so the substrate stays
    swappable.  Modules without drivers (storage helpers, the registry
    itself) are exempt."""
    findings = []
    for mod in project.modules:
        if mod.is_substrate or not mod.drivers():
            continue
        for node in ast.walk(mod.tree):
            hit = False
            if isinstance(node, ast.ImportFrom):
                parts = (node.module or "").split(".")
                hit = "lapack77" in parts or any(
                    alias.name == "lapack77" or
                    alias.name.startswith("lapack77.")
                    for alias in node.names)
            elif isinstance(node, ast.Import):
                hit = any("lapack77" in alias.name.split(".")
                          for alias in node.names)
            if hit:
                findings.append(_f(
                    "LA008",
                    "driver module imports the lapack77 substrate "
                    "directly; dispatch through "
                    "repro.backends.kernels instead", mod, node))
    return findings


# ---------------------------------------------------------------------
# LA009 / LA010 — the declarative driver-spec registry agrees with the
# live driver layer.  Both rules only look at modules under the core
# driver package (``repro/core/``); fixture trees elsewhere are exempt.
# ---------------------------------------------------------------------

def _is_core(mod):
    p = mod.path.replace(os.sep, "/")
    return "/repro/core/" in p or p.startswith("repro/core/")


def _load_specs():
    try:
        from ..specs.registry import SPECS
    except Exception:
        return None
    return SPECS


def check_la009(project: Project):
    """Spec/signature agreement: every argument a spec declares exists
    in the live driver at the declared 1-based position, every check's
    LINFO code points at a declared position, and no core driver keeps a
    hand-rolled literal validation ladder next to the spec engine."""
    specs = _load_specs()
    if specs is None:
        return []
    findings = []
    for mod in project.modules:
        if not _is_core(mod):
            continue
        for name, func in sorted(mod.drivers().items()):
            spec = specs.get(name)
            if spec is None:      # LA010's finding, not ours
                continue
            positions = param_positions(func)
            declared = set()
            for a in spec.args:
                declared.add(a.position)
                live = positions.get(a.name)
                if live is None:
                    findings.append(_f(
                        "LA009",
                        f"spec for {name} declares argument {a.name!r} "
                        "which the driver does not accept", mod, func,
                        context=name))
                elif live != a.position:
                    findings.append(_f(
                        "LA009",
                        f"spec for {name} places {a.name} at position "
                        f"{a.position} but it is argument {live}",
                        mod, func, context=name))
            for c in spec.checks:
                if -c.code not in declared:
                    findings.append(_f(
                        "LA009",
                        f"spec check for {name} emits code {c.code} but "
                        f"no argument is declared at position {-c.code}",
                        mod, func, context=name))
    for impl in project.driver_impls():
        if not _is_core(impl.impl_module) \
                or specs.get(impl.driver) is None:
            continue
        for code, test, node in _validation_branches(impl.func):
            findings.append(_f(
                "LA009",
                f"hand-rolled validation ladder (literal code {code}) in "
                f"{impl.driver}; emit the code through the spec engine "
                "(validate_args)", impl.impl_module, node,
                context=impl.driver))
    return findings


def check_la010(project: Project):
    """Spec coverage both ways: every core driver has a registered spec,
    and (when the core package itself is in the scanned tree) every
    registered spec names a driver the core package exports."""
    specs = _load_specs()
    if specs is None:
        return []
    findings = []
    core_init = None
    for mod in project.modules:
        if not _is_core(mod):
            continue
        if mod.path.replace(os.sep, "/").endswith("/core/__init__.py"):
            core_init = mod
        for name, func in sorted(mod.drivers().items()):
            if name not in specs:
                findings.append(_f(
                    "LA010",
                    f"core driver {name} has no registered driver spec",
                    mod, func, context=name))
    if core_init is not None:
        exported = {n for n in core_init.imports
                    if n.startswith("la_")} - NON_DRIVER_LA
        for name in sorted(set(specs) - exported):
            findings.append(_f(
                "LA010",
                f"spec {name} names no driver exported by the core "
                "package", core_init, core_init.tree, context=name))
    return findings


# ---------------------------------------------------------------------
# LA021 — batch wrappers come from the generator, not by hand
# ---------------------------------------------------------------------

#: Calls into the spec engine whose per-problem repetition defeats the
#: amortized batch mode.
VALIDATORS = {"validate", "validate_args", "validate_batch"}


def _is_batch_home(mod):
    """The modules allowed to iterate a stack around the spec engine:
    the batch package (generator, reporting) and its dispatch-seam
    companion that installs the ``*_stack`` kernels."""
    p = mod.path.replace(os.sep, "/")
    return ("/repro/batch/" in p or p.startswith("repro/batch/")
            or p.endswith("/backends/batched.py")
            or p == "repro/backends/batched.py")


def check_la021(project: Project):
    """No hand-rolled batch ladders outside the generator.  Batched
    wrappers are *derived* from the DriverSpec registry
    (:func:`repro.batch.make_batched`): validation ladders run once on
    the stack (``validate_batch``), not per problem.  Two shapes are
    flagged anywhere outside the batch package: a spec-engine validator
    called inside a ``for``/``while`` body (per-problem re-validation),
    and a module-level ``batch_*`` function definition (a hand-written
    wrapper shadowing the generated family)."""
    findings = []
    for mod in project.modules:
        if mod.is_substrate or _is_batch_home(mod):
            continue
        flagged = {}
        for loop in ast.walk(mod.tree):
            if not isinstance(loop, (ast.For, ast.While,
                                     ast.AsyncFor)):
                continue
            for stmt in loop.body + loop.orelse:
                for node in ast.walk(stmt):
                    if isinstance(node, ast.Call) \
                            and call_name(node) in VALIDATORS:
                        flagged.setdefault(id(node), node)
        for node in flagged.values():
            findings.append(_f(
                "LA021",
                f"per-problem {call_name(node)} call inside a loop is a "
                "hand-rolled batch validation ladder; validate the "
                "whole stack once through validate_batch "
                "(repro.batch.make_batched)", mod, node))
        for node in mod.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node.name.startswith("batch_"):
                findings.append(_f(
                    "LA021",
                    f"hand-written batch wrapper {node.name}; batched "
                    "drivers are derived from the spec registry "
                    "(repro.batch.make_batched), not written by hand",
                    mod, node, context=node.name))
    return findings


# ---------------------------------------------------------------------
# LA022 — routing is derived from DriverSpec metadata, not hand-rolled
# ---------------------------------------------------------------------

#: The structure vocabulary the routing lattice is defined over.  Kept
#: as a literal here — rules never import the code under analysis; the
#: routing tests pin this set against ``repro.specs.routing.STRUCTURES``.
STRUCTURE_LABELS = frozenset({
    "diagonal", "triangular", "tridiagonal", "spd", "hpd", "banded",
    "symmetric", "hermitian", "general",
})


def _is_routing_home(mod):
    """The one module allowed to relate structure labels to drivers:
    the derivation home, where the table is *computed* from the
    registry's ``problem_kind``/``structure`` metadata."""
    p = mod.path.replace(os.sep, "/")
    return (p.endswith("/specs/routing.py")
            or p == "repro/specs/routing.py")


def _driver_ref(node):
    """True when *node* names a driver — ``la_*``/``batch_*`` as a
    Name, an Attribute, or a string constant."""
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Constant) and isinstance(node.value, str):
        name = node.value
    else:
        return False
    return name.startswith("la_") or name.startswith("batch_")


def _label_constants(node):
    """Structure-label string constants compared against in *node*
    (bare constants plus tuple/list element constants)."""
    out = []
    nodes = [node]
    if isinstance(node, (ast.Tuple, ast.List)):
        nodes = list(node.elts)
    for n in nodes:
        if isinstance(n, ast.Constant) and isinstance(n.value, str) \
                and n.value in STRUCTURE_LABELS:
            out.append(n.value)
    return out


def _chain_of(node):
    """The if/elif chain rooted at *node*:
    ``([(test, body), ...], [chain If nodes])``."""
    chain, members = [], []
    while isinstance(node, ast.If):
        chain.append((node.test, node.body))
        members.append(node)
        node = node.orelse[0] \
            if len(node.orelse) == 1 and isinstance(node.orelse[0],
                                                    ast.If) else None
    return chain, members


def check_la022(project: Project):
    """No hand-rolled structure→driver routing ladders.  The front
    door's routing table is *derived* from the DriverSpec registry's
    declarative ``problem_kind``/``structure`` metadata
    (:func:`repro.specs.routing.routing_table`); a driver joins the
    routing by annotating its spec, never by editing a dispatch site.
    Two shapes are flagged outside the derivation home: a dict literal
    keyed by structure labels whose values name drivers, and an
    ``if``/``elif`` chain comparing against structure-label constants
    whose branches name drivers."""
    findings = []
    for mod in project.modules:
        if mod.is_substrate or _is_routing_home(mod):
            continue
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Dict):
                labels = [k for k in node.keys
                          if k is not None and _label_constants(k)]
                routed = [v for v in node.values
                          if any(_driver_ref(n) for n in ast.walk(v))]
                if len(labels) >= 2 and routed:
                    findings.append(_f(
                        "LA022",
                        "dict literal maps structure labels to drivers; "
                        "routing is derived from DriverSpec "
                        "problem_kind/structure metadata "
                        "(repro.specs.routing), not written by hand",
                        mod, node))
        seen = set()
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.If) or id(node) in seen:
                continue
            chain, members = _chain_of(node)
            seen.update(id(n) for n in members)
            labelled = [t for t, _ in chain
                        if any(_label_constants(c)
                               for c in ast.walk(t)
                               if isinstance(c, (ast.Constant, ast.Tuple,
                                                 ast.List)))]
            routed = any(_driver_ref(n)
                         for _, body in chain
                         for stmt in body
                         for n in ast.walk(stmt))
            if len(labelled) >= 2 and routed:
                findings.append(_f(
                    "LA022",
                    "if/elif ladder dispatches structure labels to "
                    "drivers; routing is derived from DriverSpec "
                    "problem_kind/structure metadata "
                    "(repro.specs.routing), not written by hand",
                    mod, node))
    return findings


from .flow import (check_la011, check_la012, check_la013,  # noqa: E402
                   check_la014, check_la015, check_la016, check_la017,
                   check_la018, check_la019, check_la020, check_la023,
                   check_la024, check_la025, check_la026)

RULES = [
    ("LA001", "every exit path reports through erinfo", check_la001),
    ("LA002", "LINFO codes match argument positions", check_la002),
    ("LA003", "drivers accept and thread info=None", check_la003),
    ("LA004", "validation precedes guard and substrate", check_la004),
    ("LA005", "__all__ agrees with public drivers", check_la005),
    ("LA006", "s/d/c/z dispatch completeness", check_la006),
    ("LA007", "code-class literal discipline", check_la007),
    ("LA008", "no direct substrate imports in driver modules",
     check_la008),
    ("LA009", "driver specs agree with the live signatures",
     check_la009),
    ("LA010", "spec coverage of the core driver catalogue",
     check_la010),
    ("LA011", "derived dimensions conform to the spec formulas",
     check_la011),
    ("LA012", "declared outputs are written on the success path",
     check_la012),
    ("LA013", "no hard-coded dtype flows into the kernel", check_la013),
    ("LA014", "in-place writes only to intent(inout/out) arguments",
     check_la014),
    ("LA015", "global policy/backend state behind setters and the lock",
     check_la015),
    ("LA016", "resilience state owned by repro.resilience under the lock",
     check_la016),
    ("LA017", "every declared error exit is reachable, none shadowed",
     check_la017),
    ("LA018", "no aliased operands into distinct written kernel slots",
     check_la018),
    ("LA019", "written kernel operands stay retry-snapshotable",
     check_la019),
    ("LA020", "deadline checkpoints between expert driver stages",
     check_la020),
    ("LA021", "no hand-rolled batch ladders outside the generator",
     check_la021),
    ("LA022", "no hand-rolled structure routing outside the derivation",
     check_la022),
    ("LA023", "guarded state accessed only with its lock held",
     check_la023),
    ("LA024", "no check-then-act split across lock regions",
     check_la024),
    ("LA025", "lock acquisition order is globally acyclic",
     check_la025),
    ("LA026", "thread-local state never escapes into shared containers",
     check_la026),
]


def rule_titles():
    return {code: title for code, title, _ in RULES}


def run_rules(project: Project, select=None):
    """Run the catalogue, honouring *select* exactly: ``None`` means
    every rule, and an (even empty) set means precisely those codes —
    an empty selection runs nothing rather than everything."""
    findings = []
    for code, _, check in RULES:
        if select is not None and code not in select:
            continue
        findings.extend(check(project))
    findings.sort(key=lambda f: (f.path, f.line, f.code))
    return findings
