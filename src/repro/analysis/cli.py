"""Command-line front end: ``python -m repro.analysis [paths]``.

Exit status is 0 when every finding is suppressed by the baseline (or
there are none), 1 when new findings exist, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from .findings import Baseline, sarif_log
from .model import Project
from .rules import RULES, rule_titles, run_rules

DEFAULT_BASELINE = "lalint.baseline.json"

FORMATS = ("text", "json", "github", "sarif")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="lalint: static checker for the LAPACK90 wrapper "
                    "contract (rules LA001-LA026).")
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to analyse "
                             "(default: src/repro)")
    parser.add_argument("--format", choices=FORMATS,
                        default="text", help="output format")
    parser.add_argument("--output", dest="format", choices=FORMATS,
                        help="alias for --format (e.g. --output sarif)")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help=f"baseline file (default: "
                             f"{DEFAULT_BASELINE} when present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="accept all current findings into the "
                             "baseline and exit 0")
    parser.add_argument("--select", default=None, metavar="CODES",
                        help="comma-separated rule codes to run "
                             "(e.g. LA002,LA004)")
    parser.add_argument("--ignore", default=None, metavar="CODES",
                        help="comma-separated rule codes to skip "
                             "(the complement of --select)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for code, title, _ in RULES:
            print(f"{code}  {title}")
        return 0

    paths = [p for p in args.paths if os.path.exists(p)]
    if not paths:
        print("lalint: no such path(s): "
              + ", ".join(args.paths), file=sys.stderr)
        return 2

    all_codes = {code for code, _, _ in RULES}

    def _codes(raw, flag):
        codes = {c.strip().upper() for c in raw.split(",") if c.strip()}
        unknown = codes - all_codes
        if unknown:
            print(f"lalint: {flag} names unknown rule(s): "
                  + ", ".join(sorted(unknown)), file=sys.stderr)
            return None
        return codes

    selected = all_codes
    if args.select:
        selected = _codes(args.select, "--select")
        if selected is None:
            return 2
    if args.ignore:
        ignored = _codes(args.ignore, "--ignore")
        if ignored is None:
            return 2
        selected = selected - ignored
    restricted = selected != all_codes
    select = selected if restricted else None

    project = Project.load(paths)
    findings = run_rules(project, select=select)

    baseline_path = args.baseline or DEFAULT_BASELINE
    baseline = Baseline()
    if not args.no_baseline and os.path.exists(baseline_path):
        baseline = Baseline.load(baseline_path)

    if args.write_baseline:
        if restricted:
            # A restricted run judged only the selected rules: keep the
            # suppressions of every rule that did not run, or a
            # --select'ed regeneration would silently unsuppress them.
            baseline.entries = {
                fp: entry for fp, entry in baseline.entries.items()
                if entry.get("code") not in selected}
        else:
            baseline = Baseline()
        baseline.absorb(findings)
        baseline.save(baseline_path)
        print(f"lalint: wrote {len(findings)} finding(s) to "
              f"{baseline_path}")
        return 0

    new, suppressed = baseline.split(findings)

    # A baseline entry whose fingerprint no longer matches any current
    # finding is stale — the legacy violation was fixed (or the code
    # deleted) and the suppression must be dropped from the file, or it
    # would silently mask a future regression.  A restricted run
    # (--select/--ignore) can only judge entries for the rules that
    # actually ran; the rest are expected to be unmatched.
    stale = []
    if baseline.entries:
        current = {f.fingerprint for f in findings}
        stale = [entry for fp, entry in sorted(baseline.entries.items())
                 if fp not in current
                 and entry.get("code") in selected]

    if args.format == "json":
        print(json.dumps({
            "findings": [f.to_dict() for f in new],
            "suppressed": len(suppressed),
            "stale_baseline": stale,
        }, indent=2, sort_keys=True))
    elif args.format == "sarif":
        print(json.dumps(sarif_log(new, rule_titles()),
                         indent=2, sort_keys=True))
    elif args.format == "github":
        for f in new:
            print(f.render_github())
        for entry in stale:
            print(f"::error file={args.baseline or DEFAULT_BASELINE}"
                  f",title=stale-baseline::baseline entry "
                  f"{entry['fingerprint']} ({entry.get('code', '?')}) "
                  "matches no current finding")
        if new or stale:
            print(f"lalint: {len(new)} new finding(s), "
                  f"{len(stale)} stale baseline entr(ies)")
    else:
        for f in new:
            print(f.render())
        for entry in stale:
            print(f"lalint: stale baseline entry {entry['fingerprint']}"
                  f" ({entry.get('code', '?')} {entry.get('path', '?')}"
                  f" [{entry.get('context', '')}]) matches no current "
                  "finding; regenerate with --write-baseline")
        note = f" ({len(suppressed)} suppressed by baseline)" \
            if suppressed else ""
        print(f"lalint: {len(new)} finding(s) in "
              f"{len(project.modules)} module(s){note}")
    return 1 if new or stale else 0
