"""laflow — spec-driven shape/dtype dataflow analysis for lalint.

The package splits into three layers:

* :mod:`.values` — the abstract domain (symbolic dimensions, the dtype
  lattice, array provenance),
* :mod:`.interp` — the symbolic interpreter over one driver body,
* :mod:`.rules` — the LA011–LA016 checks registered in the main
  lalint catalogue (:mod:`repro.analysis.rules`).
"""

from .interp import DriverFlow, spec_dim_formulas
from .rules import (check_la011, check_la012, check_la013, check_la014,
                    check_la015, check_la016)

__all__ = ["DriverFlow", "spec_dim_formulas", "check_la011",
           "check_la012", "check_la013", "check_la014", "check_la015",
           "check_la016"]
