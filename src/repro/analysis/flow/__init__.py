"""laflow — spec-driven shape/dtype dataflow analysis for lalint.

The package splits into four layers:

* :mod:`.values` — the abstract domain (symbolic dimensions, the dtype
  lattice, array provenance, kernel references),
* :mod:`.interp` — the symbolic interpreter over one driver body,
* :mod:`.summaries` — the interprocedural layer: kernel effect
  signatures derived from the spec registry, and memoized helper
  summaries (dims in, events out) replayed into callers,
* :mod:`.rules` — the LA011–LA020 checks registered in the main
  lalint catalogue (:mod:`repro.analysis.rules`),
* :mod:`.locks` — the lock model: the ``guarded_by`` registry, lockset
  tracking through summaries, and the LA023–LA026 concurrency checks.
"""

from .interp import DriverFlow, FlowInterpreter, spec_dim_formulas
from .summaries import KernelEffect, SummaryEngine, kernel_effects
from .rules import (check_la011, check_la012, check_la013, check_la014,
                    check_la015, check_la016, check_la017, check_la018,
                    check_la019, check_la020, front_door_sites)
from .locks import (GUARDED_BY, GUARDED_ATTRS, ConcurrencySummaryEngine,
                    check_la023, check_la024, check_la025, check_la026)

__all__ = ["DriverFlow", "FlowInterpreter", "spec_dim_formulas",
           "KernelEffect", "SummaryEngine", "kernel_effects",
           "GUARDED_BY", "GUARDED_ATTRS", "ConcurrencySummaryEngine",
           "check_la011", "check_la012", "check_la013", "check_la014",
           "check_la015", "check_la016", "check_la017", "check_la018",
           "check_la019", "check_la020", "check_la023", "check_la024",
           "check_la025", "check_la026", "front_door_sites"]
