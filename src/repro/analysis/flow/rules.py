"""The laflow rule catalogue (LA011–LA016).

LA011–LA014 run the symbolic interpreter (:class:`.interp.DriverFlow`)
over every core driver implementation that has a registered spec and
compare the recorded dataflow events against the spec's promises.
LA015 and LA016 are plain module scans policing process-global state:
LA015 the configuration knobs (policy, backend selection, blocking
configuration), LA016 the resilience registries (circuit breakers,
resilience policy, deadline arming, the chaos-fault table).

Like every lalint rule these functions never import the analysed code;
the spec registry they consult is plain data.
"""

from __future__ import annotations

import ast
import os

from ..findings import Finding
from ..model import Project, call_name
from . import values as V
from .interp import DriverFlow, spec_dim_formulas

__all__ = ["check_la011", "check_la012", "check_la013", "check_la014",
           "check_la015", "check_la016"]

_ARRAY_KINDS = {"matrix", "rhs", "vector"}
_LEN_CHECKS = {"optlen", "reqlen"}


def _f(code, message, mod, node, context=""):
    return Finding(code=code, message=message, path=mod.path,
                   line=getattr(node, "lineno", 1),
                   col=getattr(node, "col_offset", 0), context=context)


def _is_core(mod):
    p = mod.path.replace(os.sep, "/")
    return "/repro/core/" in p or p.startswith("repro/core/")


def _load_specs():
    try:
        from ...specs.registry import SPECS
    except Exception:
        return None
    return SPECS


def _flows(project: Project, specs):
    """Yield ``(impl, spec, flow)`` for every analysable core driver."""
    for impl in project.driver_impls():
        if not _is_core(impl.impl_module):
            continue
        spec = specs.get(impl.driver)
        if spec is None or not impl.posmap:
            continue
        yield impl, spec, DriverFlow(impl, spec).run()


# ---------------------------------------------------------------------
# LA011 — derived-dimension conformance
# ---------------------------------------------------------------------

def check_la011(project: Project):
    """Dimension variables and workspace allocations must agree with
    the spec's derived-dimension formulas.

    Two checks: a local binding of a spec-declared dimension variable
    (``n = a.shape[0]``) must resolve to the spec's formula for that
    variable, and an array allocated for a length-checked output
    argument (``ipiv``, ``w`` …) and stored into it must have exactly
    the spec-derived length.  Unresolvable values are never reported.
    """
    specs = _load_specs()
    if specs is None:
        return []
    findings = []
    for impl, spec, flow in _flows(project, specs):
        formulas = flow.spec_dims
        for var, dim, node in flow.dim_defs:
            want = formulas.get(var)
            if want is not None and dim != want:
                findings.append(_f(
                    "LA011",
                    f"dimension {var} is bound to {V.render_dim(dim)} "
                    f"but the spec for {impl.driver} derives it as "
                    f"{V.render_dim(want)}",
                    impl.impl_module, node, context=impl.driver))
        # Allocation lengths for length-checked vector outputs.
        required = {}
        for c in spec.checks:
            if c.kind in _LEN_CHECKS and c.dim in formulas and c.args:
                required[c.args[0]] = (formulas[c.dim], c.dim)
        for write in flow.writes:
            if not isinstance(write.value, V.ArrayVal):
                continue
            for name in sorted(write.names & set(required)):
                want, dimname = required[name]
                for idx in sorted(write.value.allocs):
                    site = flow.allocs[idx]
                    if site.shape is None or len(site.shape) != 1:
                        continue
                    got = site.shape[0]
                    if got is not None and got != want:
                        findings.append(_f(
                            "LA011",
                            f"allocation stored into {name} has length "
                            f"{V.render_dim(got)} but the spec for "
                            f"{impl.driver} requires {dimname} = "
                            f"{V.render_dim(want)}",
                            impl.impl_module, site.node,
                            context=impl.driver))
    return findings


# ---------------------------------------------------------------------
# LA012 — output-write completeness
# ---------------------------------------------------------------------

def check_la012(project: Project):
    """Every spec-declared output argument the implementation receives
    must be assigned on some path: either an in-place store whose
    target may alias it, or being handed to a kernel call that fills
    it.  A declared output that no event ever touches is dead — the
    caller's buffer comes back unchanged."""
    specs = _load_specs()
    if specs is None:
        return []
    findings = []
    for impl, spec, flow in _flows(project, specs):
        mapped = {a.name for a in flow.param_args.values()}
        touched = set()
        for write in flow.writes:
            touched |= write.names
        for sink in flow.sinks:
            for val in sink.values:
                if isinstance(val, V.ArrayVal):
                    touched |= val.origins
        for arg in spec.args:
            if arg.intent != "out" or arg.kind not in _ARRAY_KINDS:
                continue
            if arg.name not in mapped or arg.name in touched:
                continue
            findings.append(_f(
                "LA012",
                f"declared output {arg.name} of {impl.driver} is never "
                "written (no in-place store and no kernel call "
                "receives it)",
                impl.impl_module, impl.func, context=impl.driver))
    return findings


# ---------------------------------------------------------------------
# LA013 — dtype-flow consistency
# ---------------------------------------------------------------------

def check_la013(project: Project):
    """No silent promotion/demotion between the generic pair and the
    bound kernel: an array allocated with a hard-coded inexact dtype
    (``np.float64`` …) that flows into a kernel call or into a caller
    output buffer pins the precision regardless of the input dtype.
    Allocations whose dtype follows an argument (``dtype=a.dtype``),
    integer buffers and NumPy's implicit default are all fine."""
    specs = _load_specs()
    if specs is None:
        return []
    findings = []
    for impl, spec, flow in _flows(project, specs):
        used = set()
        for sink in flow.sinks:
            for val in sink.values:
                if isinstance(val, V.ArrayVal):
                    used |= val.allocs
        for write in flow.writes:
            if write.names and isinstance(write.value, V.ArrayVal):
                used |= write.value.allocs
        for idx in sorted(used):
            site = flow.allocs[idx]
            if V.is_fixed_inexact(site.dtype):
                findings.append(_f(
                    "LA013",
                    f"buffer reaching the kernel is allocated with "
                    f"hard-coded dtype {V.render_dtype(site.dtype)} in "
                    f"{impl.driver}; derive it from the inputs "
                    "(e.g. dtype=a.dtype) so the generic pair keeps "
                    "its precision",
                    impl.impl_module, site.node, context=impl.driver))
    return findings


# ---------------------------------------------------------------------
# LA014 — caller-array mutation discipline
# ---------------------------------------------------------------------

def check_la014(project: Project):
    """In-place writes may target only arguments the spec marks in-out
    or out.  A store that can alias a pure-in array argument mutates
    caller data the contract promises to leave alone."""
    specs = _load_specs()
    if specs is None:
        return []
    findings = []
    for impl, spec, flow in _flows(project, specs):
        readonly = {a.name for a in spec.args
                    if a.intent == "in" and a.kind in _ARRAY_KINDS}
        seen = set()
        for write in flow.writes:
            for name in sorted(write.names & readonly):
                key = (name, id(write.node))
                if key in seen:
                    continue
                seen.add(key)
                findings.append(_f(
                    "LA014",
                    f"in-place write may mutate {name}, which the spec "
                    f"for {impl.driver} declares intent(in)",
                    impl.impl_module, write.node, context=impl.driver))
    return findings


# ---------------------------------------------------------------------
# LA015/LA016 — global-state discipline
# ---------------------------------------------------------------------

#: Process-global configuration state policed by LA015:
#: variable -> (owner module suffix, public API).
GLOBAL_STATE = {
    "_POLICY": ("repro/policy.py",
                "get_policy()/set_policy()/exception_policy()"),
    "_SELECTED": ("repro/backends/__init__.py",
                  "get_backend_name()/set_backend()/use_backend()"),
    "_BLOCK_SIZES": ("repro/config.py",
                     "ilaenv()/set_block_size()/block_size_override()"),
    "_MIN_BLOCK": ("repro/config.py",
                   "ilaenv()/set_block_size()/block_size_override()"),
    "_CROSSOVER": ("repro/config.py",
                   "ilaenv()/set_block_size()/block_size_override()"),
}

#: Resilience-subsystem state policed by LA016, same shape.
#: ``_DEADLINES`` is listed for the foreign-access ban only (it is a
#: ``threading.local`` — per-thread by construction, so its owner
#: mutates it without the lock).
RESILIENCE_STATE = {
    "_BREAKERS": ("repro/resilience/breaker.py",
                  "admit()/record_failure()/record_success()/"
                  "breaker_state()/states()/reset_breakers()"),
    "_RESILIENCE": ("repro/resilience/config.py",
                    "get_resilience()/set_resilience()/"
                    "resilience_policy()"),
    "_ARMED": ("repro/resilience/deadlines.py",
               "repro.deadline()/remaining()/check()"),
    "_DEADLINES": ("repro/resilience/deadlines.py",
                   "repro.deadline()/remaining()/check()"),
    "_CHAOS": ("repro/faults.py",
               "chaos_install()/chaos_remove()/chaos_clear()/"
               "chaos_fault()"),
}

#: Table entries whose owner mutations are lock-exempt (thread-local).
_UNLOCKED_OK = frozenset({"_DEADLINES"})

#: The shared lock every mutation site must hold (repro._sync).
STATE_LOCK = "STATE_LOCK"

_MUTATING_METHODS = {"update", "clear", "pop", "popitem", "setdefault",
                     "append", "extend", "remove"}


def _chain_root(node):
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _mutated_state(stmt, table):
    """State names a simple statement mutates (assignment targets and
    mutating method calls)."""
    out = set()
    targets = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        func = stmt.value.func
        if isinstance(func, ast.Attribute) \
                and func.attr in _MUTATING_METHODS:
            root = _chain_root(func.value)
            if root in table:
                out.add(root)
    flat = []
    while targets:
        t = targets.pop()
        if isinstance(t, (ast.Tuple, ast.List)):
            targets.extend(t.elts)
        else:
            flat.append(t)
    for t in flat:
        if isinstance(t, ast.Name) and t.id in table:
            out.add(t.id)
        else:
            root = _chain_root(t)
            if root in table:
                out.add(root)
    return out


def _holds_lock(with_stmt):
    for item in with_stmt.items:
        for node in ast.walk(item.context_expr):
            if isinstance(node, ast.Name) and node.id == STATE_LOCK:
                return True
            if isinstance(node, ast.Attribute) \
                    and node.attr == STATE_LOCK:
                return True
    return False


def _owner_unlocked_mutations(tree, table):
    """Yield ``(var, stmt)`` for in-function mutations of owned state
    outside ``with STATE_LOCK:``.  Module top-level (initialisation)
    assignments are allowed."""

    def walk(stmts, locked, in_func):
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A nested def runs later: the lexical lock is gone.
                yield from walk(stmt.body, False, True)
                continue
            if isinstance(stmt, ast.With):
                yield from walk(stmt.body,
                                locked or _holds_lock(stmt), in_func)
                continue
            if isinstance(stmt, (ast.If, ast.For, ast.While, ast.Try)):
                for block in (getattr(stmt, "body", []),
                              getattr(stmt, "orelse", []),
                              getattr(stmt, "finalbody", [])):
                    yield from walk(block, locked, in_func)
                for handler in getattr(stmt, "handlers", []):
                    yield from walk(handler.body, locked, in_func)
                continue
            if in_func and not locked:
                for var in sorted(_mutated_state(stmt, table)):
                    yield var, stmt

    yield from walk(tree.body, False, False)


def _state_discipline(project, table, code, unlocked_ok=frozenset()):
    """The shared LA015/LA016 scan over one state table.

    Outside its owner module a listed variable may not be *named* at
    all — not imported, not read, not reached through an attribute
    chain; callers go through the designated API.  Inside the owner,
    every in-function mutation must lexically hold
    ``with STATE_LOCK:`` (module top-level initialisation is exempt,
    as are the ``unlocked_ok`` thread-local entries).
    """
    findings = []
    for mod in project.modules:
        p = mod.path.replace(os.sep, "/")
        owned = {var for var, (suffix, _) in table.items()
                 if p.endswith(suffix)}
        foreign = set(table) - owned
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name in foreign:
                        _, api = table[alias.name]
                        findings.append(_f(
                            code,
                            f"import of global state {alias.name}; go "
                            f"through {api} instead", mod, node))
            elif isinstance(node, ast.Name) and node.id in foreign:
                _, api = table[node.id]
                findings.append(_f(
                    code,
                    f"direct access to global state {node.id}; go "
                    f"through {api} instead", mod, node))
            elif isinstance(node, ast.Attribute) \
                    and node.attr in foreign:
                _, api = table[node.attr]
                findings.append(_f(
                    code,
                    f"direct access to global state {node.attr}; go "
                    f"through {api} instead", mod, node))
        if owned:
            for var, stmt in _owner_unlocked_mutations(mod.tree, table):
                if var in owned and var not in unlocked_ok:
                    findings.append(_f(
                        code,
                        f"mutation of {var} outside `with STATE_LOCK:`",
                        mod, stmt))
    return findings


def check_la015(project: Project):
    """Global-state discipline: outside its owner module, the
    process-global policy/backend/blocking state may not be named at
    all — callers go through the designated APIs.  Inside the owner,
    every mutation site must lexically hold ``with STATE_LOCK:`` (the
    shared :data:`repro._sync.STATE_LOCK` RLock); module top-level
    initialisation is exempt."""
    return _state_discipline(project, GLOBAL_STATE, "LA015")


def check_la016(project: Project):
    """Resilience-state discipline: the breaker registry, resilience
    policy, deadline arming and chaos-fault table may only be touched by
    their owning module, and every owner mutation must lexically hold
    ``with STATE_LOCK:`` — the same shared RLock LA015 polices, so the
    resilience layer can never deadlock against (or race) the
    configuration knobs.  The thread-local deadline stack is exempt from
    the lock requirement but still closed to foreign access."""
    return _state_discipline(project, RESILIENCE_STATE, "LA016",
                             unlocked_ok=_UNLOCKED_OK)
