"""The laflow rule catalogue (LA011–LA020).

LA011–LA014 and LA017–LA020 run the symbolic interpreter
(:class:`.interp.DriverFlow`) over every core driver implementation
that has a registered spec and compare the recorded dataflow events
against the spec's promises; since the interprocedural layer landed
every flow runs with a shared :class:`~.summaries.SummaryEngine`, so
helper calls contribute their effects instead of poisoning the
environment, and kernel calls carry spec-derived read/write effect
signatures.  Flows are interpreted once per project and cached — the
eight dataflow rules share one pass.

LA015 and LA016 are plain module scans policing process-global state:
LA015 the configuration knobs (policy, backend selection, blocking
configuration), LA016 the resilience registries (circuit breakers,
resilience policy, deadline arming, the chaos-fault table).

Since the dispatch front door landed, LA017 also covers *borrowed*
validation ladders: a :mod:`repro.dispatch_front` function that calls
``validate_args("la_posv", ...)`` by name (the cached-Cholesky
``potrs`` shortcut does exactly this) is held to the same error-exit
reachability contract as the driver's own call site — the argument set
it forwards decides which declared exits stay live through
``repro.solve``.  :func:`front_door_sites` is the discovery summary.

Like every lalint rule these functions never import the analysed code;
the spec registry they consult is plain data.
"""

from __future__ import annotations

import ast
import os

from ..findings import Finding
from ..model import Project, call_name
from . import values as V
from .interp import DriverFlow, spec_dim_formulas
from .summaries import SummaryEngine, kernel_effects

__all__ = ["check_la011", "check_la012", "check_la013", "check_la014",
           "check_la015", "check_la016", "check_la017", "check_la018",
           "check_la019", "check_la020", "front_door_sites"]

_ARRAY_KINDS = {"matrix", "rhs", "vector"}
_LEN_CHECKS = {"optlen", "reqlen"}


def _f(code, message, mod, node, context=""):
    return Finding(code=code, message=message, path=mod.path,
                   line=getattr(node, "lineno", 1),
                   col=getattr(node, "col_offset", 0), context=context)


def _is_core(mod):
    p = mod.path.replace(os.sep, "/")
    return "/repro/core/" in p or p.startswith("repro/core/")


def _is_front_door(mod):
    p = mod.path.replace(os.sep, "/")
    return "/repro/dispatch_front/" in p \
        or p.startswith("repro/dispatch_front/")


def front_door_sites(project: Project, specs):
    """Yield ``(mod, func, driver, spec, calls)`` for dispatch-front
    functions that borrow a registered driver's validation ladder.

    The front door re-runs the chosen driver's ``validate_args`` ladder
    before executing a structure-specialised path (the cached-Cholesky
    ``potrs`` shortcut replays ``la_posv``'s), so a borrowed call site
    carries the same obligation as the driver's own: every declared
    error exit must stay emittable from the argument set actually
    forwarded.  ``calls`` is ``[(node, passed-name-set), ...]``, one
    entry per ``validate_args("<driver>", ...)`` site in the function;
    functions with a statically unmappable site (non-constant driver
    name, extra positionals, keyword splat) are skipped entirely —
    laflow never guesses.
    """
    for mod in project.modules:
        if not _is_front_door(mod):
            continue
        for _, func in sorted(mod.functions.items()):
            sites: dict = {}
            mappable = True
            for node in ast.walk(func):
                if call_name(node) != "validate_args":
                    continue
                first = node.args[0] if node.args else None
                if len(node.args) != 1 \
                        or not isinstance(first, ast.Constant) \
                        or not isinstance(first.value, str) \
                        or any(kw.arg is None for kw in node.keywords):
                    mappable = False
                    break
                sites.setdefault(first.value, []).append(
                    (node, {kw.arg for kw in node.keywords}))
            if not mappable:
                continue
            for driver in sorted(sites):
                spec = specs.get(driver)
                if spec is not None:
                    yield mod, func, driver, spec, sites[driver]


def _load_specs():
    try:
        from ...specs.registry import SPECS
    except Exception:
        return None
    return SPECS


def _analysis(project: Project, specs):
    """The project's shared dataflow pass, computed once and cached.

    Returns ``{"flows": [(impl, spec, flow), ...], "engine":
    SummaryEngine, "effects": {kernel: KernelEffect}, "front_door":
    [(mod, func, driver, spec, calls), ...]}``.  All dataflow rules
    consume this cache, so one ``run_rules`` interprets every driver
    exactly once no matter how many rules are selected.
    """
    cache = getattr(project, "_laflow_cache", None)
    if cache is not None:
        return cache
    engine = SummaryEngine(project)
    flows = []
    for impl in project.driver_impls():
        if not _is_core(impl.impl_module):
            continue
        spec = specs.get(impl.driver)
        if spec is None or not impl.posmap:
            continue
        flows.append((impl, spec,
                      DriverFlow(impl, spec, summaries=engine).run()))
    cache = {"flows": flows, "engine": engine,
             "effects": kernel_effects(project, specs),
             "front_door": list(front_door_sites(project, specs))}
    project._laflow_cache = cache
    return cache


def _flows(project: Project, specs):
    """Yield ``(impl, spec, flow)`` for every analysable core driver."""
    return iter(_analysis(project, specs)["flows"])


# ---------------------------------------------------------------------
# LA011 — derived-dimension conformance
# ---------------------------------------------------------------------

def check_la011(project: Project):
    """Dimension variables and workspace allocations must agree with
    the spec's derived-dimension formulas.

    Two checks: a local binding of a spec-declared dimension variable
    (``n = a.shape[0]``) must resolve to the spec's formula for that
    variable, and an array allocated for a length-checked output
    argument (``ipiv``, ``w`` …) and stored into it must have exactly
    the spec-derived length.  Unresolvable values are never reported.
    """
    specs = _load_specs()
    if specs is None:
        return []
    findings = []
    for impl, spec, flow in _flows(project, specs):
        formulas = flow.spec_dims
        for var, dim, node in flow.dim_defs:
            want = formulas.get(var)
            if want is not None and dim != want:
                findings.append(_f(
                    "LA011",
                    f"dimension {var} is bound to {V.render_dim(dim)} "
                    f"but the spec for {impl.driver} derives it as "
                    f"{V.render_dim(want)}",
                    impl.impl_module, node, context=impl.driver))
        # Allocation lengths for length-checked vector outputs.
        required = {}
        for c in spec.checks:
            if c.kind in _LEN_CHECKS and c.dim in formulas and c.args:
                required[c.args[0]] = (formulas[c.dim], c.dim)
        for write in flow.writes:
            if not isinstance(write.value, V.ArrayVal):
                continue
            for name in sorted(write.names & set(required)):
                want, dimname = required[name]
                for idx in sorted(write.value.allocs):
                    site = flow.allocs[idx]
                    if site.shape is None or len(site.shape) != 1:
                        continue
                    got = site.shape[0]
                    if got is not None and got != want:
                        findings.append(_f(
                            "LA011",
                            f"allocation stored into {name} has length "
                            f"{V.render_dim(got)} but the spec for "
                            f"{impl.driver} requires {dimname} = "
                            f"{V.render_dim(want)}",
                            impl.impl_module, site.node,
                            context=impl.driver))
    return findings


# ---------------------------------------------------------------------
# LA012 — output-write completeness
# ---------------------------------------------------------------------

def check_la012(project: Project):
    """Every spec-declared output argument the implementation receives
    must be assigned on some path: either an in-place store whose
    target may alias it, or being handed to a kernel call that fills
    it.  A declared output that no event ever touches is dead — the
    caller's buffer comes back unchanged."""
    specs = _load_specs()
    if specs is None:
        return []
    findings = []
    for impl, spec, flow in _flows(project, specs):
        mapped = {a.name for a in flow.param_args.values()}
        touched = set()
        for write in flow.writes:
            touched |= write.names
        for sink in flow.sinks:
            for val in sink.values:
                if isinstance(val, V.ArrayVal):
                    touched |= val.origins
        for arg in spec.args:
            if arg.intent != "out" or arg.kind not in _ARRAY_KINDS:
                continue
            if arg.name not in mapped or arg.name in touched:
                continue
            findings.append(_f(
                "LA012",
                f"declared output {arg.name} of {impl.driver} is never "
                "written (no in-place store and no kernel call "
                "receives it)",
                impl.impl_module, impl.func, context=impl.driver))
    return findings


# ---------------------------------------------------------------------
# LA013 — dtype-flow consistency
# ---------------------------------------------------------------------

def check_la013(project: Project):
    """No silent promotion/demotion between the generic pair and the
    bound kernel: an array allocated with a hard-coded inexact dtype
    (``np.float64`` …) that flows into a kernel call or into a caller
    output buffer pins the precision regardless of the input dtype.
    Allocations whose dtype follows an argument (``dtype=a.dtype``),
    integer buffers and NumPy's implicit default are all fine."""
    specs = _load_specs()
    if specs is None:
        return []
    findings = []
    for impl, spec, flow in _flows(project, specs):
        used = set()
        for sink in flow.sinks:
            for val in sink.values:
                if isinstance(val, V.ArrayVal):
                    used |= val.allocs
        for write in flow.writes:
            if write.names and isinstance(write.value, V.ArrayVal):
                used |= write.value.allocs
        for idx in sorted(used):
            site = flow.allocs[idx]
            if V.is_fixed_inexact(site.dtype):
                findings.append(_f(
                    "LA013",
                    f"buffer reaching the kernel is allocated with "
                    f"hard-coded dtype {V.render_dtype(site.dtype)} in "
                    f"{impl.driver}; derive it from the inputs "
                    "(e.g. dtype=a.dtype) so the generic pair keeps "
                    "its precision",
                    impl.impl_module, site.node, context=impl.driver))
    return findings


# ---------------------------------------------------------------------
# LA014 — caller-array mutation discipline
# ---------------------------------------------------------------------

def check_la014(project: Project):
    """In-place writes may target only arguments the spec marks in-out
    or out.  A store that can alias a pure-in array argument mutates
    caller data the contract promises to leave alone."""
    specs = _load_specs()
    if specs is None:
        return []
    findings = []
    for impl, spec, flow in _flows(project, specs):
        readonly = {a.name for a in spec.args
                    if a.intent == "in" and a.kind in _ARRAY_KINDS}
        seen = set()
        for write in flow.writes:
            for name in sorted(write.names & readonly):
                key = (name, id(write.node))
                if key in seen:
                    continue
                seen.add(key)
                findings.append(_f(
                    "LA014",
                    f"in-place write may mutate {name}, which the spec "
                    f"for {impl.driver} declares intent(in)",
                    impl.impl_module, write.node, context=impl.driver))
    return findings


# ---------------------------------------------------------------------
# LA015/LA016 — global-state discipline
# ---------------------------------------------------------------------

#: Process-global configuration state policed by LA015:
#: variable -> (owner module suffix, public API).
GLOBAL_STATE = {
    "_POLICY": ("repro/policy.py",
                "get_policy()/set_policy()/exception_policy()"),
    "_SELECTED": ("repro/backends/__init__.py",
                  "get_backend_name()/set_backend()/use_backend()"),
    "_BLOCK_SIZES": ("repro/config.py",
                     "ilaenv()/set_block_size()/block_size_override()"),
    "_MIN_BLOCK": ("repro/config.py",
                   "ilaenv()/set_block_size()/block_size_override()"),
    "_CROSSOVER": ("repro/config.py",
                   "ilaenv()/set_block_size()/block_size_override()"),
}

#: Resilience-subsystem state policed by LA016, same shape.
#: ``_DEADLINES`` is listed for the foreign-access ban only (it is a
#: ``threading.local`` — per-thread by construction, so its owner
#: mutates it without the lock).
RESILIENCE_STATE = {
    "_BREAKERS": ("repro/resilience/breaker.py",
                  "admit()/record_failure()/record_success()/"
                  "breaker_state()/states()/reset_breakers()"),
    "_RESILIENCE": ("repro/resilience/config.py",
                    "get_resilience()/set_resilience()/"
                    "resilience_policy()"),
    "_ARMED": ("repro/resilience/deadlines.py",
               "repro.deadline()/remaining()/check()"),
    "_DEADLINES": ("repro/resilience/deadlines.py",
                   "repro.deadline()/remaining()/check()"),
    "_CHAOS": ("repro/faults.py",
               "chaos_install()/chaos_remove()/chaos_clear()/"
               "chaos_fault()"),
}

#: Table entries whose owner mutations are lock-exempt (thread-local).
_UNLOCKED_OK = frozenset({"_DEADLINES"})

#: The shared lock every mutation site must hold (repro._sync).
STATE_LOCK = "STATE_LOCK"

_MUTATING_METHODS = {"update", "clear", "pop", "popitem", "setdefault",
                     "append", "extend", "remove"}


def _chain_root(node):
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _mutated_state(stmt, table):
    """State names a simple statement mutates (assignment targets and
    mutating method calls)."""
    out = set()
    targets = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        func = stmt.value.func
        if isinstance(func, ast.Attribute) \
                and func.attr in _MUTATING_METHODS:
            root = _chain_root(func.value)
            if root in table:
                out.add(root)
    flat = []
    while targets:
        t = targets.pop()
        if isinstance(t, (ast.Tuple, ast.List)):
            targets.extend(t.elts)
        else:
            flat.append(t)
    for t in flat:
        if isinstance(t, ast.Name) and t.id in table:
            out.add(t.id)
        else:
            root = _chain_root(t)
            if root in table:
                out.add(root)
    return out


def _holds_lock(with_stmt):
    for item in with_stmt.items:
        for node in ast.walk(item.context_expr):
            if isinstance(node, ast.Name) and node.id == STATE_LOCK:
                return True
            if isinstance(node, ast.Attribute) \
                    and node.attr == STATE_LOCK:
                return True
    return False


def _owner_unlocked_mutations(tree, table):
    """Yield ``(var, stmt)`` for in-function mutations of owned state
    outside ``with STATE_LOCK:``.  Module top-level (initialisation)
    assignments are allowed."""

    def walk(stmts, locked, in_func):
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A nested def runs later: the lexical lock is gone.
                yield from walk(stmt.body, False, True)
                continue
            if isinstance(stmt, ast.With):
                yield from walk(stmt.body,
                                locked or _holds_lock(stmt), in_func)
                continue
            if isinstance(stmt, (ast.If, ast.For, ast.While, ast.Try)):
                for block in (getattr(stmt, "body", []),
                              getattr(stmt, "orelse", []),
                              getattr(stmt, "finalbody", [])):
                    yield from walk(block, locked, in_func)
                for handler in getattr(stmt, "handlers", []):
                    yield from walk(handler.body, locked, in_func)
                continue
            if in_func and not locked:
                for var in sorted(_mutated_state(stmt, table)):
                    yield var, stmt

    yield from walk(tree.body, False, False)


def _state_discipline(project, table, code, unlocked_ok=frozenset()):
    """The shared LA015/LA016 scan over one state table.

    Outside its owner module a listed variable may not be *named* at
    all — not imported, not read, not reached through an attribute
    chain; callers go through the designated API.  Inside the owner,
    every in-function mutation must lexically hold
    ``with STATE_LOCK:`` (module top-level initialisation is exempt,
    as are the ``unlocked_ok`` thread-local entries).
    """
    findings = []
    for mod in project.modules:
        p = mod.path.replace(os.sep, "/")
        owned = {var for var, (suffix, _) in table.items()
                 if p.endswith(suffix)}
        foreign = set(table) - owned
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name in foreign:
                        _, api = table[alias.name]
                        findings.append(_f(
                            code,
                            f"import of global state {alias.name}; go "
                            f"through {api} instead", mod, node))
            elif isinstance(node, ast.Name) and node.id in foreign:
                _, api = table[node.id]
                findings.append(_f(
                    code,
                    f"direct access to global state {node.id}; go "
                    f"through {api} instead", mod, node))
            elif isinstance(node, ast.Attribute) \
                    and node.attr in foreign:
                _, api = table[node.attr]
                findings.append(_f(
                    code,
                    f"direct access to global state {node.attr}; go "
                    f"through {api} instead", mod, node))
        if owned:
            for var, stmt in _owner_unlocked_mutations(mod.tree, table):
                if var in owned and var not in unlocked_ok:
                    findings.append(_f(
                        code,
                        f"mutation of {var} outside `with STATE_LOCK:`",
                        mod, stmt))
    return findings


def check_la015(project: Project):
    """Global-state discipline: outside its owner module, the
    process-global policy/backend/blocking state may not be named at
    all — callers go through the designated APIs.  Inside the owner,
    every mutation site must lexically hold ``with STATE_LOCK:`` (the
    shared :data:`repro._sync.STATE_LOCK` RLock); module top-level
    initialisation is exempt."""
    return _state_discipline(project, GLOBAL_STATE, "LA015")


def check_la016(project: Project):
    """Resilience-state discipline: the breaker registry, resilience
    policy, deadline arming and chaos-fault table may only be touched by
    their owning module, and every owner mutation must lexically hold
    ``with STATE_LOCK:`` — the same shared RLock LA015 polices, so the
    resilience layer can never deadlock against (or race) the
    configuration knobs.  The thread-local deadline stack is exempt from
    the lock requirement but still closed to foreign access."""
    return _state_discipline(project, RESILIENCE_STATE, "LA016",
                             unlocked_ok=_UNLOCKED_OK)


# ---------------------------------------------------------------------
# LA017 — error-exit reachability
# ---------------------------------------------------------------------

#: Custom engine predicates: argument names whose absence makes the
#: predicate raise (and therefore fire) on every call.
_CUSTOM_REQUIRED = {"gels_b": ("a", "b"), "ls_b": ("a", "b"),
                    "gglse_b": ("a", "b"), "glm_b": ("a", "b")}

#: Custom predicates short-circuited off by a missing argument.
_CUSTOM_NEVER_WITHOUT = {"getrf_rcond": "rcond"}


def _dim_avail(dim, spec, passed) -> bool:
    """Can this derived dimension resolve (not the -1 sentinel) given
    the argument names actually handed to ``validate_args``?"""
    table = {entry[0]: entry for entry in spec.dims}

    def avail(name):
        entry = table.get(name)
        if entry is None:
            return False
        _, source, *refs = entry
        if source == "min":
            return all(avail(r) for r in refs)
        return refs[0] in passed
    return avail(dim)


def _classify_check(check, spec, passed) -> str:
    """How one spec check behaves when ``validate_args`` receives only
    *passed*: ``"ok"`` (outcome depends on runtime values), ``"never"``
    (cannot fire — its error exit is unreachable), or ``"always"``
    (fires unconditionally — it shadows every later exit).

    This mirrors :mod:`repro.specs.engine` exactly: a missing argument
    enters the ladder as ``None``, a derived dimension whose source is
    missing resolves to ``-1``, and a predicate that raises counts as
    violated.
    """
    k = check.kind
    arg = check.args[0] if check.args else None
    dim_ok = check.dim is None or _dim_avail(check.dim, spec, passed)
    ref = check.params.get("ref")

    if k in ("square", "matrix2d", "intenum", "offdiag"):
        return "ok" if arg in passed else "always"
    if k in ("square_conform", "rhs"):
        return "ok" if arg in passed and dim_ok else "always"
    if k == "rhs_same":
        return "ok" if arg in passed and ref in passed and dim_ok \
            else "always"
    if k in ("nonneg", "band"):
        return "ok" if dim_ok else "always"
    if k == "offdiag_pair":
        return "ok" if all(a in passed for a in check.args) \
            else "always"
    if k == "optlen":
        # None short-circuits the optional check off entirely.
        return "ok" if arg in passed else "never"
    if k == "reqlen":
        if arg in passed and dim_ok:
            return "ok"
        if arg not in passed and not dim_ok:
            return "never"      # -1 == -1: the lengths "agree"
        return "always"
    if k == "minlen":
        if arg in passed:
            if dim_ok:
                return "ok"
            want = max(0, -1 + check.params.get("offset", 0))
            return "ok" if want > 0 else "never"
        return "never" if check.params.get("optional") else "always"
    if k == "packed":
        if arg not in passed:
            return "always"
        if check.dim is None or dim_ok:
            return "ok"
        return "never"          # n = -1 disarms the length test
    if k == "flag":
        if arg in passed:
            return "ok"
        if check.params.get("mode") == "first" \
                and "N" in check.params.get("options", ()):
            return "ok"         # str(None).upper()[0] == "N" passes
        return "always"
    if k == "fact_requires":
        # lsame(None, 'F') is False: the guard never opens.
        return "ok" if arg in passed else "never"
    if k in ("range_pair", "index_pair"):
        return "ok" if all(a in passed for a in check.args) else "never"
    if k in ("same_shape", "cols_conform", "square_same"):
        return "ok" if arg in passed and ref in passed else "always"
    if k == "custom":
        name = check.params.get("name")
        gate = _CUSTOM_NEVER_WITHOUT.get(name)
        if gate is not None:
            return "ok" if gate in passed else "never"
        required = _CUSTOM_REQUIRED.get(name, ())
        return "ok" if all(r in passed for r in required) else "always"
    return "ok"


def _check_inputs(check, spec) -> list:
    """Argument names this check consults (args, ref, dim sources)."""
    names = list(check.args)
    ref = check.params.get("ref")
    if ref is not None:
        names.append(ref)
    table = {entry[0]: entry for entry in spec.dims}

    def dim_sources(name):
        entry = table.get(name)
        if entry is None:
            return
        _, source, *refs = entry
        for r in refs:
            if source == "min":
                yield from dim_sources(r)
            else:
                yield r
    if check.dim is not None:
        names.extend(dim_sources(check.dim))
    seen, out = set(), []
    for n in names:
        if n not in seen:
            seen.add(n)
            out.append(n)
    return out


def _shadowed_checks(spec) -> list:
    """Later checks structurally identical to an earlier one: the
    ladder is first-violation-wins, so the duplicate can never fire."""
    seen: dict = {}
    out = []
    for check in spec.checks:
        key = (check.kind, check.args, check.dim,
               tuple(sorted((k, repr(v))
                            for k, v in check.params.items())))
        if key in seen:
            out.append((check, seen[key]))
        else:
            seen[key] = check
    return out


def _validate_calls(impl) -> list | None:
    """The ``validate_args`` call sites in the implementation body as
    ``(node, passed-name-set)``; ``None`` when a site is not statically
    mappable (keyword splat / extra positionals)."""
    calls = []
    for node in ast.walk(impl.func):
        if call_name(node) != "validate_args":
            continue
        if len(node.args) > 1 \
                or any(kw.arg is None for kw in node.keywords):
            return None
        calls.append((node, {kw.arg for kw in node.keywords}))
    return calls


def check_la017(project: Project):
    """Error-exit reachability: every negative ``LINFO`` code the spec
    declares must be emittable by the driver's ``validate_args`` call,
    and no check may fire unconditionally (shadowing all later exits)
    or duplicate an earlier check (first violation wins).

    The classification replays :mod:`repro.specs.engine` semantics for
    the statically-known argument set: an argument the driver never
    forwards enters every call as ``None``, so e.g. an ``optlen`` check
    on it is disarmed forever — that error exit is dead code in the
    documented contract.

    The same classification runs over the dispatch front door's
    *borrowed* ladders (:func:`front_door_sites`): a
    ``repro.dispatch_front`` function replaying a driver's
    ``validate_args`` by name must keep that spec's exits exactly as
    reachable as the driver itself does, or ``repro.solve`` silently
    changes the documented error contract on that route."""
    specs = _load_specs()
    if specs is None:
        return []
    findings = []
    for impl, spec, flow in _flows(project, specs):
        if not spec.checks:
            continue
        calls = _validate_calls(impl)
        if calls is None:
            continue            # splat call: assume everything passed
        if not calls:
            codes = sorted({c.code for c in spec.checks}, reverse=True)
            findings.append(_f(
                "LA017",
                f"{impl.driver} never calls validate_args, so none of "
                f"its declared error exits {codes} can be emitted",
                impl.impl_module, impl.func, context=impl.driver))
            continue
        for check, first in _shadowed_checks(spec):
            findings.append(_f(
                "LA017",
                f"check for exit {check.code} of {impl.driver} "
                f"duplicates the exit {first.code} check and can never "
                "fire (the ladder is first-violation-wins)",
                impl.impl_module, calls[0][0], context=impl.driver))
        for check in spec.checks:
            verdicts = {_classify_check(check, spec, passed)
                        for _, passed in calls}
            node = calls[0][0]
            if verdicts == {"never"}:
                missing = [n for n in _check_inputs(check, spec)
                           if all(n not in p for _, p in calls)]
                findings.append(_f(
                    "LA017",
                    f"error exit {check.code} of {impl.driver} is "
                    f"unreachable: validate_args never receives "
                    f"{', '.join(missing)} so its {check.kind} check "
                    "cannot fire",
                    impl.impl_module, node, context=impl.driver))
            elif verdicts == {"always"}:
                missing = [n for n in _check_inputs(check, spec)
                           if all(n not in p for _, p in calls)]
                findings.append(_f(
                    "LA017",
                    f"the {check.kind} check for exit {check.code} of "
                    f"{impl.driver} always fires: validate_args omits "
                    f"{', '.join(missing)}, so every call returns "
                    f"{check.code} and shadows all later exits",
                    impl.impl_module, node, context=impl.driver))
                break           # everything after is dead anyway
    for mod, func, driver, spec, calls in \
            _analysis(project, specs)["front_door"]:
        for check in spec.checks:
            verdicts = {_classify_check(check, spec, passed)
                        for _, passed in calls}
            node = calls[0][0]
            missing = [n for n in _check_inputs(check, spec)
                       if all(n not in p for _, p in calls)]
            if verdicts == {"never"}:
                findings.append(_f(
                    "LA017",
                    f"front-door {func.name} borrows the {driver} "
                    f"ladder but validate_args never receives "
                    f"{', '.join(missing)}, so error exit {check.code} "
                    f"({check.kind}) is unreachable on this dispatch "
                    "route",
                    mod, node, context=driver))
            elif verdicts == {"always"}:
                findings.append(_f(
                    "LA017",
                    f"the {check.kind} check for exit {check.code} of "
                    f"the {driver} ladder always fires in front-door "
                    f"{func.name}: validate_args omits "
                    f"{', '.join(missing)}, so every call through this "
                    f"route returns {check.code} and shadows all later "
                    "exits",
                    mod, node, context=driver))
                break           # everything after is dead anyway
    return findings


# ---------------------------------------------------------------------
# LA018 — kernel operand aliasing
# ---------------------------------------------------------------------

def _effect_sinks(project, specs, flow):
    """Yield ``(sink, kernel, effect, slots)`` for driver-body kernel
    calls whose effect signature is known."""
    effects = _analysis(project, specs)["effects"]
    for sink in flow.sinks:
        if sink.depth != 0:
            continue
        for kernel in sorted(sink.callees):
            eff = effects.get(kernel)
            if eff is not None:
                yield sink, kernel, eff, eff.slots(sink.args,
                                                   sink.kwargs)


def check_la018(project: Project):
    """Kernel operand aliasing: two distinct operand slots of one
    kernel call must not receive arrays that may share memory when at
    least one of them is written in place.  Provenance is tracked
    through views and slices, so ``trs(lu, piv, a[:, :1])`` with ``lu``
    a view of ``a`` is flagged; independent allocations and copies are
    fine."""
    specs = _load_specs()
    if specs is None:
        return []
    findings = []
    for impl, spec, flow in _flows(project, specs):
        for sink, kernel, eff, slots in _effect_sinks(project, specs,
                                                      flow):
            names = sorted(n for n in slots if n in eff.arrays)
            for i, n1 in enumerate(names):
                for n2 in names[i + 1:]:
                    if not eff.written & {n1, n2}:
                        continue
                    if not V.may_overlap(slots[n1], slots[n2]):
                        continue
                    shared = slots[n1].origins & slots[n2].origins
                    via = (f"both may alias "
                           f"{'/'.join(sorted(shared))}" if shared
                           else "both may carry the same workspace "
                                "allocation")
                    wrote = " and ".join(sorted(
                        eff.written & {n1, n2}))
                    findings.append(_f(
                        "LA018",
                        f"operands {n1} and {n2} of kernel {kernel} "
                        f"may overlap ({via}) while {wrote} is "
                        "written in place — pass independent arrays "
                        "or copy first",
                        impl.impl_module, sink.node,
                        context=impl.driver))
    return findings


# ---------------------------------------------------------------------
# LA019 — retry-snapshot completeness
# ---------------------------------------------------------------------

def check_la019(project: Project):
    """Retry-snapshot completeness: the resilience layer snapshots and
    restores every *ndarray* operand around a retried kernel call
    (:func:`repro.resilience.dispatch.snapshot_set`), so an operand the
    kernel's effect signature marks written must actually be an array
    at the call site.  Passing a scalar or tuple into a written slot
    means a retry would replay the kernel against state the first
    attempt already mutated.  Kernels the specs mark ``breaker_exempt``
    are never retried and are exempt."""
    specs = _load_specs()
    if specs is None:
        return []
    exempt = {s.kernel for s in specs.values()
              if s.breaker_exempt and s.kernel}
    findings = []
    for impl, spec, flow in _flows(project, specs):
        for sink, kernel, eff, slots in _effect_sinks(project, specs,
                                                      flow):
            if kernel in exempt:
                continue
            for name in sorted(eff.written):
                val = slots.get(name)
                if isinstance(val, (V.DimScalar, V.TupleVal,
                                    V.KernelRef)):
                    findings.append(_f(
                        "LA019",
                        f"operand {name} of kernel {kernel} is "
                        "written in place but the value passed is not "
                        "an ndarray, so dispatch.snapshot_set cannot "
                        "capture it for retry restore — pass the "
                        "array itself",
                        impl.impl_module, sink.node,
                        context=impl.driver))
    return findings


# ---------------------------------------------------------------------
# LA020 — deadline checkpoints between driver stages
# ---------------------------------------------------------------------

#: Stage classification by substrate naming convention.
_STAGE_SUFFIXES = (("trf", "factor"), ("trs", "solve"),
                   ("rfs", "refine"))


def _stage_of(sink) -> str | None:
    names = set(sink.callees) | {sink.callee}
    for suffix, stage in _STAGE_SUFFIXES:
        if any(isinstance(n, str) and n.endswith(suffix)
               for n in names):
            return stage
    return None


def check_la020(project: Project):
    """Deadline-checkpoint coverage: a multi-stage expert driver
    (factor / solve / refine) must call ``deadlines.check`` between
    consecutive stages, so an armed ``repro.deadline()`` budget is
    observed before committing to the next expensive phase rather than
    only at entry.  Checkpoints contributed by helper summaries (e.g.
    ``driver_guard``'s entry check) do not count — the transition needs
    its own driver-body checkpoint."""
    specs = _load_specs()
    if specs is None:
        return []
    findings = []
    for impl, spec, flow in _flows(project, specs):
        staged = sorted(
            ((sink.node.lineno, stage, sink)
             for sink in flow.sinks
             if sink.depth == 0 and (stage := _stage_of(sink))),
            key=lambda t: t[0])
        if len({stage for _, stage, _ in staged}) < 2:
            continue
        marks = sorted(c.node.lineno for c in flow.checkpoints
                       if c.depth == 0)
        for (l1, s1, k1), (l2, s2, k2) in zip(staged, staged[1:]):
            if s1 == s2:
                continue
            if any(l1 < mark < l2 for mark in marks):
                continue
            findings.append(_f(
                "LA020",
                f"stage transition {s1} -> {s2} in {impl.driver} has "
                f"no deadlines.check between {k1.callee} (line {l1}) "
                f"and {k2.callee} — an armed deadline budget is not "
                "observed before the next stage",
                impl.impl_module, k2.node, context=impl.driver))
    return findings
