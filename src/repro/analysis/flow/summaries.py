"""Interprocedural effect summaries for the laflow interpreter.

Two kinds of summary make laflow interprocedural without ever importing
the analysed code:

**Kernel effect signatures** (:func:`kernel_effects`) are derived from
the DriverSpec bindings: a spec names the backend kernel it calls and
declares intent (``in`` / ``inout`` / ``out``) per argument, and the
substrate definition of the kernel supplies the parameter order.
Matching spec arguments to kernel parameters *by name* yields, per
kernel, which call slots are array operands and which of those are
written in place.  Drivers that share a kernel (``la_spgv`` and
``la_hpgv`` both bind ``spgv``) contribute the union of their effects.

**Helper summaries** (:class:`SummaryEngine`) cover the wrapper layer's
own call graph: calls from a driver body into same-module helpers or
``core.auxmod`` utilities are interpreted *once* per distinct abstract
input vector and memoized — dims in, events out.  Interpreting a helper
yields its abstract return value plus the allocation / write / sink /
checkpoint events its body performs; applying the summary replays those
events into the caller at ``depth + 1`` with allocation-site indices
remapped into the caller's site table, and the return value flows back
symbolically.  Before a helper call the input values are *canonicalized*
(caller allocation-site indices become stable negative placeholders) so
the memo key is independent of the caller's site numbering; on every
application — cache hit or miss — the helper's local allocations are
re-instantiated as fresh caller sites, because each call is a fresh
allocation.

Recursion and unbounded nesting are cut off conservatively: a helper
already being summarized, or a call more than :data:`MAX_DEPTH` levels
down, is left unmodelled (the call evaluates to bottom and contributes
no events).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from ..model import body_statements
from . import values as V

__all__ = ["KernelEffect", "kernel_effects", "Summary", "SummaryEngine",
           "NO_SUMMARY", "MAX_DEPTH"]

#: Maximum helper-summary nesting depth before calls go unmodelled.
MAX_DEPTH = 3

#: Sentinel: the engine declined to model the call.
NO_SUMMARY = object()


@dataclass(frozen=True)
class KernelEffect:
    """Per-kernel read/write effect signature in call-slot terms."""

    kernel: str
    params: tuple          # kernel parameter names, signature order
    arrays: frozenset      # params that are array operands
    written: frozenset     # array params the kernel writes in place

    def slots(self, args, kwargs):
        """Align a call's abstract values to kernel parameter names.

        ``args`` is the positional value tuple, ``kwargs`` the
        ``((name, value), ...)`` keyword tuple from a :class:`~.interp.
        Sink`.  Extra positionals beyond the known signature are
        dropped; unknown keyword names are dropped.
        """
        out = {}
        for pname, val in zip(self.params, args):
            out[pname] = val
        for kname, val in kwargs:
            if kname in self.params:
                out[kname] = val
        return out


def kernel_effects(project, specs) -> dict:
    """Kernel name -> :class:`KernelEffect`, from spec bindings.

    Only kernels whose substrate definition is part of the analysed
    project get a signature (parameter order comes from the ``def``);
    effects of specs sharing a kernel are unioned.
    """
    defs = {}
    for mod in project.modules:
        if not mod.is_substrate:
            continue
        for name, func in mod.functions.items():
            defs.setdefault(name, func)
    effects: dict = {}
    for spec in specs.values():
        func = defs.get(spec.kernel) if spec.kernel else None
        if func is None:
            continue
        params = tuple(a.arg for a in (list(func.args.posonlyargs)
                                       + list(func.args.args)))
        arrays = set(params) & set(spec.array_args)
        written = set(params) & set(spec.written_args)
        prev = effects.get(spec.kernel)
        if prev is not None:
            arrays |= prev.arrays
            written |= prev.written
        effects[spec.kernel] = KernelEffect(
            kernel=spec.kernel, params=params,
            arrays=frozenset(arrays), written=frozenset(written))
    # Generated batch wrappers call ``<kernel>_stack`` entries that have
    # no substrate ``def`` (the batched seam synthesizes them at import
    # time, looping or forwarding per backend).  Their effect signature
    # is the parent kernel's, lifted slot-for-slot over the batch axis —
    # derived here from the spec's ``batchable`` opt-in, never written
    # by hand.
    for spec in specs.values():
        if not getattr(spec, "batchable", False) or not spec.kernel:
            continue
        eff = effects.get(spec.kernel)
        if eff is None:
            continue
        stacked = spec.kernel + "_stack"
        effects.setdefault(stacked, KernelEffect(
            kernel=stacked, params=eff.params,
            arrays=eff.arrays, written=eff.written))
    return effects


@dataclass(frozen=True)
class Summary:
    """Memoized result of interpreting one helper once.

    All allocation-site indices inside are in *summary space*: negative
    placeholders stand for caller sites that flowed in through the
    arguments, and ``0..len(allocs)-1`` number the helper's own sites.
    Event depths are relative to the helper body (0 = its own
    statements).
    """

    ret: object            # merged abstract return value
    allocs: tuple          # the helper's own AllocSites, local indices
    writes: tuple
    sinks: tuple
    checkpoints: tuple
    # Concurrency events (empty for plain dataflow summaries).  Access
    # locksets and acquire held-sets are relative to the helper body;
    # replay unions the caller's lockset on top and renumbers the
    # helper's lock regions into fresh caller regions, so a helper that
    # locks internally stays atomic and one that relies on the caller's
    # lock inherits it — the interprocedural half of LA023/LA024.
    accesses: tuple = ()
    acquires: tuple = ()
    escapes: tuple = ()


def _rewrite(value, remap):
    """Renumber allocation-site indices inside an abstract value."""
    if isinstance(value, V.ArrayVal):
        if not value.allocs:
            return value
        return V.ArrayVal(shape=value.shape, dtype=value.dtype,
                          origins=value.origins,
                          allocs=frozenset(remap.get(i, i)
                                           for i in value.allocs))
    if isinstance(value, V.TupleVal):
        return V.TupleVal(tuple(_rewrite(x, remap) for x in value.items))
    return value


def _alloc_indices(value) -> set:
    if isinstance(value, V.ArrayVal):
        return set(value.allocs)
    if isinstance(value, V.TupleVal):
        out: set = set()
        for item in value.items:
            out |= _alloc_indices(item)
        return out
    return set()


class SummaryEngine:
    """Compute-once, replay-everywhere summaries for helper calls.

    One engine is shared across all driver flows of a project so the
    memo table amortizes: ``driver_guard`` is interpreted once and its
    entry checkpoint replayed into all 76 drivers.
    """

    NO_SUMMARY = NO_SUMMARY

    def __init__(self, project):
        self.project = project
        self.memo: dict = {}
        self.computed = 0       # distinct summaries interpreted
        self._stack: list = []  # func ids currently being summarized

    # -- resolution -------------------------------------------------

    def resolve(self, module, name):
        """``(module, func)`` for a modelled helper call, else None.

        Scope is deliberately narrow: functions defined in the calling
        module itself, plus names the module imports from
        ``core.auxmod``.  Everything else (``validate_args``,
        ``erinfo``, storage utilities) stays unmodelled — those are
        contract *subjects*, handled by dedicated rules, not effects to
        inline.
        """
        if module is None:
            return None
        func = module.functions.get(name)
        if func is not None:
            return (module, func)
        src = module.imports.get(name, "")
        if not src.endswith("auxmod"):
            return None
        entry = self.project.functions.get(name)
        if entry is None:
            return None
        mod, func = entry
        if not mod.path.replace("\\", "/").endswith("/auxmod.py"):
            return None
        return (mod, func)

    # -- application ------------------------------------------------

    def apply(self, caller, target, argvals, kwvals):
        """Summarize ``target`` for these inputs and replay its effects
        into ``caller``; returns the abstract return value or
        :data:`NO_SUMMARY`."""
        mod, func = target
        if id(func) in self._stack or len(self._stack) >= MAX_DEPTH:
            return NO_SUMMARY
        if func.args.vararg is not None or func.args.kwarg is not None:
            return NO_SUMMARY
        params = [a.arg for a in (list(func.args.posonlyargs)
                                  + list(func.args.args))]
        if len(argvals) > len(params) \
                or not set(kwvals) <= set(params):
            return NO_SUMMARY

        # Canonicalize: caller site indices -> stable placeholders.
        incoming: set = set()
        for val in list(argvals) + list(kwvals.values()):
            incoming |= _alloc_indices(val)
        to_placeholder = {idx: -(pos + 1)
                          for pos, idx in enumerate(sorted(incoming))}
        canon_args = tuple(_rewrite(v, to_placeholder) for v in argvals)
        canon_kwargs = {k: _rewrite(v, to_placeholder)
                        for k, v in kwvals.items()}

        key = (id(func), canon_args,
               tuple(sorted(canon_kwargs.items())))
        try:
            summary = self.memo.get(key)
        except TypeError:       # unhashable abstract value — no memo
            key, summary = None, None
        if summary is None:
            summary = self._compute(mod, func, params, canon_args,
                                    canon_kwargs)
            if key is not None:
                self.memo[key] = summary

        # Instantiate: placeholders back to this call's caller sites,
        # helper-local sites appended as fresh caller sites.
        base = len(caller.allocs)
        remap = {ph: idx for idx, ph in to_placeholder.items()}
        for site in summary.allocs:
            remap[site.index] = base + site.index
            caller.allocs.append(V.AllocSite(
                index=base + site.index, node=site.node,
                shape=site.shape, dtype=site.dtype))
        bump = caller.depth + 1
        for w in summary.writes:
            caller.writes.append(w.__class__(
                names=w.names, value=_rewrite(w.value, remap),
                node=w.node, via=w.via, depth=bump + w.depth))
        for s in summary.sinks:
            caller.sinks.append(s.__class__(
                callee=s.callee,
                values=tuple(_rewrite(v, remap) for v in s.values),
                node=s.node,
                args=tuple(_rewrite(v, remap) for v in s.args),
                kwargs=tuple((k, _rewrite(v, remap))
                             for k, v in s.kwargs),
                callees=s.callees, depth=bump + s.depth))
        for c in summary.checkpoints:
            caller.checkpoints.append(c.__class__(
                stage=c.stage, node=c.node, depth=bump + c.depth))
        if summary.accesses or summary.acquires or summary.escapes:
            self._replay_concurrency(caller, summary, bump)
        return _rewrite(summary.ret, remap)

    @staticmethod
    def _replay_concurrency(caller, summary, bump):
        """Replay lock-model events into the caller.

        The caller's lockset at the call site joins every replayed
        access (a helper touching guarded state under the *caller's*
        lock is fine), helper-local lock regions are renumbered into
        fresh caller regions, and each event keeps the *first* call
        expression it was replayed through as its ``site`` — the line
        where the guarded module's API was invoked — so reports and
        pragmas can anchor there.
        """
        lockset = getattr(caller, "_call_lockset", frozenset())
        locks_held = frozenset(l for l, _ in lockset)
        site = getattr(caller, "_call_node", None)
        site_path = caller.module.path if caller.module is not None else ""
        rmap: dict = {}

        def region(r):
            if r not in rmap:
                caller._regions += 1
                rmap[r] = caller._regions
            return rmap[r]

        for a in summary.accesses:
            caller.accesses.append(a.__class__(
                name=a.name, kind=a.kind, lock=a.lock,
                locks=lockset | frozenset((l, region(r))
                                          for l, r in a.locks),
                node=a.node, path=a.path,
                site=a.site if a.site is not None else site,
                site_path=a.site_path if a.site is not None else site_path,
                depth=bump + a.depth))
        for q in summary.acquires:
            caller.acquires.append(q.__class__(
                lock=q.lock, held=q.held | locks_held,
                reentrant=q.reentrant, node=q.node, path=q.path,
                site=q.site if q.site is not None else site,
                depth=bump + q.depth))
        for e in summary.escapes:
            caller.escapes.append(e.__class__(
                source=e.source, target=e.target, node=e.node,
                path=e.path, site=e.site if e.site is not None else site,
                depth=bump + e.depth))

    def _make_interpreter(self, mod, func):
        """Build the sub-interpreter a summary is computed with.

        Subclasses (the concurrency engine) override this to install
        per-module guard/lock configuration; the base engine keeps the
        lock model inert.
        """
        from .interp import FlowInterpreter   # cycle: interp hooks us
        sub = FlowInterpreter(module=mod, func=func,
                              substrate=mod.substrate_names,
                              summaries=self, depth=0)
        sub.in_summary = True
        return sub

    def _compute(self, mod, func, params, canon_args,
                 canon_kwargs) -> Summary:
        self.computed += 1
        sub = self._make_interpreter(mod, func)
        env = {p: V.UNKNOWN for p in params}
        for pname, val in zip(params, canon_args):
            env[pname] = val
        env.update(canon_kwargs)
        self._stack.append(id(func))
        try:
            sub._exec_block(body_statements(func), env)
        finally:
            self._stack.pop()
        ret = functools.reduce(V.merge_values, sub.returns) \
            if sub.returns else V.UNKNOWN
        return Summary(ret=ret, allocs=tuple(sub.allocs),
                       writes=tuple(sub.writes),
                       sinks=tuple(sub.sinks),
                       checkpoints=tuple(sub.checkpoints),
                       accesses=tuple(sub.accesses),
                       acquires=tuple(sub.acquires),
                       escapes=tuple(sub.escapes))
