"""Symbolic abstract interpreter over ``la_*`` driver bodies.

One :class:`DriverFlow` interprets one driver implementation (the
driver's own body, or its delegation helper with positions remapped via
the call site) against its :class:`~repro.specs.model.DriverSpec`.  The
environment is seeded from the spec's argument table — a ``matrix``
argument ``a`` enters as an abstract array of shape ``(rows(a),
cols(a))`` whose dtype *follows* ``a`` — and the interpreter then walks
the body tracking allocations, slicing, kernel calls and assignments.

The result is a set of recorded events the LA011–LA014 and LA017–LA020
rules consume:

* ``dim_defs`` — local bindings of spec-declared dimension variables
  (``n = a.shape[0]``) with their resolved symbolic value,
* ``allocs`` — array-allocation sites with symbolic shape and dtype,
* ``writes`` — in-place stores (``w[:] = ...``, ``_store(z, ...)``)
  with the driver arguments the target may alias,
* ``sinks`` — substrate/kernel calls (including calls through a
  helper's kernel-valued parameter or a kernel-valued local) with
  their abstract arguments, positional/keyword split, and the set of
  substrate kernels the callee may resolve to,
* ``checkpoints`` — ``deadlines.check(srname, stage, ...)`` calls with
  their stage label.

Interpretation is conservative: branches are walked with forked
environments and joined, unknown constructs evaluate to bottom, and no
rule reports anything derived from an unknown value.  When a
:class:`~.summaries.SummaryEngine` is attached, calls to same-module
helpers and ``core.auxmod`` helpers are interpreted through memoized
effect summaries instead of evaluating to bottom — their events are
replayed into the caller at ``depth + 1`` and their return value flows
back symbolically (see :mod:`.summaries`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..model import body_statements, call_name
from . import values as V

__all__ = ["FlowInterpreter", "DriverFlow", "Write", "Sink",
           "Checkpoint", "Access", "Acquire", "Escape", "TLSRef",
           "LOCKSET", "MUTATORS", "spec_dim_formulas"]

#: NumPy allocation calls with an explicit shape first argument.
ALLOCATORS = {"zeros", "empty", "ones", "full", "eye", "identity"}
LIKE_ALLOCATORS = {"zeros_like", "empty_like", "ones_like", "full_like"}

#: Calls that return (a view of) their first array argument unchanged
#: for provenance purposes.
PASSTHROUGH = {"asarray", "ascontiguousarray", "asfortranarray",
               "atleast_1d", "atleast_2d", "conj", "conjugate",
               "triu", "tril", "require"}

_DIM_ATOMS = {"rows2d": "rows", "cols2d": "cols", "len": "len",
              "tri": "tri"}

#: Reserved environment key holding the current *lockset*: a frozenset
#: of ``(lock, region)`` pairs.  Living in the environment (rather than
#: on the interpreter) makes branch joins do the right thing for free —
#: a lock acquired on only one arm of an ``if`` is dropped at the merge
#: (must-intersection by lock name; region ids of survivors union).
LOCKSET = "__lockset__"

#: Container-method names treated as writes to the receiver.
MUTATORS = {"update", "clear", "pop", "popitem", "setdefault",
            "append", "extend", "remove", "add", "discard"}


def spec_dim_formulas(spec) -> dict:
    """Resolve a spec's derived-dimension table to canonical Dims."""
    out: dict = {}
    for entry in spec.dims:
        var, source, refs = entry[0], entry[1], entry[2:]
        if source in _DIM_ATOMS:
            out[var] = V.atom((_DIM_ATOMS[source], refs[0]))
        elif source == "min":
            resolved = [out.get(r) for r in refs]
            dim = resolved[0]
            for r in resolved[1:]:
                dim = V.dim_min(dim, r)
            out[var] = dim
    return {k: v for k, v in out.items() if v is not None}


@dataclass(frozen=True)
class Write:
    """An in-place store whose target may alias driver arguments."""
    names: frozenset        # spec argument names the target may alias
    value: object           # abstract value stored
    node: object            # display position
    via: str                # "slice" | "store" | "aug"
    depth: int = 0          # 0 = driver body, >0 = inside a summary


@dataclass(frozen=True)
class Sink:
    """A substrate/kernel call with its abstract arguments.

    ``values`` keeps the flat positional-then-keyword value tuple the
    original LA011–LA014 rules consume; ``args``/``kwargs`` preserve the
    call structure for slot-aligned rules (LA018/LA019), and ``callees``
    is the set of substrate kernel names the call may resolve to (empty
    when the callee is an unresolved callable parameter).
    """
    callee: str
    values: tuple
    node: object
    args: tuple = ()
    kwargs: tuple = ()      # ((name, value), ...)
    callees: frozenset = frozenset()
    depth: int = 0


@dataclass(frozen=True)
class Checkpoint:
    """A ``deadlines.check(srname, stage, ...)`` call."""
    stage: str | None
    node: object
    depth: int = 0


@dataclass(frozen=True)
class Access:
    """One read or write of a guarded name, with the locks held.

    ``node``/``path`` locate the access in the module whose source
    textually contains it — for accesses replayed out of a helper
    summary that is the *helper's* file, so reports and pragma lookups
    land on the real line.  ``site``/``site_path`` name the *first*
    call expression the access was replayed through (``None`` for a
    function's own statements) — the line where the guarded module's
    API was invoked — letting a pragma at that call site cover
    cross-module check-then-act sequences.
    """
    name: str               # guarded name ("_FAULTS", "RateLimiter._seen")
    kind: str               # "read" | "write"
    lock: str               # lock the guarded_by registry requires
    locks: frozenset        # (lock, region) pairs held at the access
    node: object
    path: str
    site: object = None
    site_path: str = ""
    depth: int = 0


@dataclass(frozen=True)
class Acquire:
    """One lock acquisition (``with`` entry or ``.acquire()``) with the
    set of lock names already held when it happens."""
    lock: str
    held: frozenset         # lock names held on entry
    reentrant: bool
    node: object
    path: str
    site: object = None
    depth: int = 0


@dataclass(frozen=True)
class Escape:
    """A thread-local-derived value stored into long-lived state."""
    source: str             # thread-local name the value came from
    target: str             # module global / guarded name stored into
    node: object
    path: str
    site: object = None
    depth: int = 0


@dataclass(frozen=True)
class TLSRef:
    """Abstract value: derived from thread-local state ``source``."""
    source: str


class FlowInterpreter:
    """The spec-agnostic interpreter core over one function body.

    Subclasses (or the summary engine) seed ``env`` and drive
    :meth:`_exec_block`; events accumulate on the instance.
    """

    def __init__(self, module, func, substrate=frozenset(),
                 summaries=None, depth=0):
        self.module = module
        self.func = func
        self.substrate = set(substrate)
        self.summaries = summaries
        self.depth = depth
        self.allocs: list[V.AllocSite] = []
        self.writes: list[Write] = []
        self.sinks: list[Sink] = []
        self.checkpoints: list[Checkpoint] = []
        self.returns: list = []
        self.dim_defs: list[tuple] = []   # (var, Dim, node)
        self.spec_dims: dict = {}
        self.callable_params: set = set()
        # Concurrency model — inert defaults: driver flows never set
        # these, so the lock model costs the dataflow rules nothing.
        self.guarded: dict = {}          # access key -> (name, lock)
        self.lock_table: dict = {}       # "STATE_LOCK"/"self._lock" -> id
        self.reentrant_locks: set = set()
        self.module_globals: set = set()
        self.tls_names: set = set()
        self.accesses: list = []
        self.acquires: list = []
        self.escapes: list = []
        self._regions = 0

    # -- statements -------------------------------------------------

    def _exec_block(self, stmts, env):
        for stmt in stmts:
            self._exec(stmt, env)
        return env

    def _exec(self, stmt, env):
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, env)
            for target in stmt.targets:
                self._assign(target, value, stmt, env)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign(stmt.target, self._eval(stmt.value, env),
                         stmt, env)
        elif isinstance(stmt, ast.AugAssign):
            self._eval(stmt.value, env)
            # An augmented store is one locked RMW at the bytecode-free
            # level this model cares about: record a single "write" so
            # ``+= 1`` counters never pair into a split check-then-act.
            if isinstance(stmt.target, ast.Subscript):
                self._record_subscript_write(stmt.target, V.UNKNOWN,
                                             stmt, env, via="aug")
            elif isinstance(stmt.target, ast.Name):
                self._record_access(stmt.target.id, "write", stmt, env)
                env[stmt.target.id] = V.UNKNOWN
            elif isinstance(stmt.target, ast.Attribute) \
                    and isinstance(stmt.target.value, ast.Name):
                key = f"{stmt.target.value.id}.{stmt.target.attr}"
                if not self._record_access(key, "write", stmt, env):
                    self._record_access(stmt.target.value.id, "write",
                                        stmt, env)
                env[key] = V.UNKNOWN
        elif isinstance(stmt, ast.Return):
            value = self._eval(stmt.value, env) \
                if stmt.value is not None else V.UNKNOWN
            self.returns.append(value)
        elif isinstance(stmt, ast.Expr):
            if stmt.value is not None:
                self._eval(stmt.value, env)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test, env)
            then_env = self._exec_block(stmt.body, dict(env))
            else_env = self._exec_block(stmt.orelse, dict(env))
            env.clear()
            env.update(self._merge_envs(then_env, else_env))
        elif isinstance(stmt, ast.With):
            pairs = []
            for item in stmt.items:
                lock = self._lock_id(item.context_expr)
                if lock is not None:
                    pairs.append(self._push_lock(lock, env,
                                                 item.context_expr))
                else:
                    self._eval(item.context_expr, env)
            self._exec_block(stmt.body, env)
            if pairs:
                env[LOCKSET] = env.get(LOCKSET, frozenset()) \
                    - frozenset(pairs)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                base = target.value \
                    if isinstance(target, ast.Subscript) else target
                if isinstance(target, ast.Subscript):
                    self._eval(target.slice, env)
                if isinstance(base, ast.Name):
                    self._record_access(base.id, "write", stmt, env)
                elif isinstance(base, ast.Attribute) \
                        and isinstance(base.value, ast.Name):
                    self._record_access(
                        f"{base.value.id}.{base.attr}", "write", stmt,
                        env)
        elif isinstance(stmt, (ast.For, ast.While)):
            fork = dict(env)
            if isinstance(stmt, ast.For):
                self._eval(stmt.iter, fork)
                self._assign(stmt.target, V.UNKNOWN, stmt, fork)
            else:
                self._eval(stmt.test, fork)
            body_env = self._exec_block(stmt.body, fork)
            body_env = self._exec_block(stmt.orelse, body_env)
            merged = self._merge_envs(env, body_env)
            env.clear()
            env.update(merged)
        elif isinstance(stmt, ast.Try):
            pre = dict(env)
            self._exec_block(stmt.body, env)
            merged = env
            for handler in stmt.handlers:
                h_env = self._exec_block(handler.body, dict(pre))
                merged = self._merge_envs(merged, h_env)
            env.clear()
            env.update(merged)
            self._exec_block(stmt.finalbody, env)
        # Raise / Pass / Global / etc.: nothing to track.

    @staticmethod
    def _merge_envs(e1, e2):
        out = {}
        for key in set(e1) | set(e2):
            if key == LOCKSET:
                s1 = e1.get(key, frozenset())
                s2 = e2.get(key, frozenset())
                names = {l for l, _ in s1} & {l for l, _ in s2}
                out[key] = frozenset(p for p in s1 | s2
                                     if p[0] in names)
                continue
            out[key] = V.merge_values(e1.get(key, V.UNKNOWN),
                                      e2.get(key, V.UNKNOWN))
        return out

    # -- lock model -------------------------------------------------

    def _lock_id(self, expr):
        """Lock id for a ``with``/.acquire() context expression."""
        if isinstance(expr, ast.Name):
            return self.lock_table.get(expr.id)
        if isinstance(expr, ast.Attribute) \
                and isinstance(expr.value, ast.Name):
            return self.lock_table.get(f"{expr.value.id}.{expr.attr}")
        return None

    def _push_lock(self, lock, env, node):
        held = env.get(LOCKSET, frozenset())
        self.acquires.append(Acquire(
            lock=lock, held=frozenset(l for l, _ in held),
            reentrant=lock in self.reentrant_locks, node=node,
            path=self.module.path, depth=self.depth))
        self._regions += 1
        pair = (lock, self._regions)
        env[LOCKSET] = held | {pair}
        return pair

    def _record_access(self, key, kind, node, env) -> bool:
        entry = self.guarded.get(key)
        if entry is None:
            return False
        name, lock = entry
        self.accesses.append(Access(
            name=name, kind=kind, lock=lock,
            locks=env.get(LOCKSET, frozenset()),
            node=node, path=self.module.path, depth=self.depth))
        return True

    def _record_escape(self, value, target, node):
        if isinstance(value, TLSRef):
            self.escapes.append(Escape(
                source=value.source, target=target, node=node,
                path=self.module.path, depth=self.depth))

    def _assign(self, target, value, stmt, env):
        if isinstance(target, ast.Name):
            self._record_access(target.id, "write", stmt, env)
            if target.id in self.module_globals:
                self._record_escape(value, target.id, stmt)
            env[target.id] = value
            if target.id in self.spec_dims \
                    and isinstance(value, V.DimScalar):
                self.dim_defs.append((target.id, value.dim, stmt))
        elif isinstance(target, (ast.Tuple, ast.List)):
            items = value.items if isinstance(value, V.TupleVal) \
                and len(value.items) == len(target.elts) \
                else (V.UNKNOWN,) * len(target.elts)
            for elt, item in zip(target.elts, items):
                if not isinstance(elt, ast.Starred):
                    self._assign(elt, item, stmt, env)
        elif isinstance(target, ast.Subscript):
            self._record_subscript_write(target, value, stmt, env,
                                         via="slice")
        elif isinstance(target, ast.Attribute) \
                and isinstance(target.value, ast.Name):
            # ``res.af = ...`` — track the attribute as a pseudo-local
            # so later reads (``potrf(res.af)``) keep the value.
            key = f"{target.value.id}.{target.attr}"
            if not self._record_access(key, "write", stmt, env):
                self._record_access(target.value.id, "write", stmt, env)
            env[key] = value

    def _record_subscript_write(self, target, value, stmt, env, via):
        base = target.value
        if isinstance(base, ast.Attribute) \
                and isinstance(base.value, ast.Name):
            self._record_access(f"{base.value.id}.{base.attr}", "write",
                                stmt, env)
            return
        if not isinstance(base, ast.Name):
            return
        self._record_access(base.id, "write", stmt, env)
        if base.id in self.module_globals:
            self._record_escape(value, base.id, stmt)
        held = env.get(base.id, V.UNKNOWN)
        names = held.origins if isinstance(held, V.ArrayVal) \
            else frozenset()
        self.writes.append(Write(names=names, value=value, node=stmt,
                                 via=via, depth=self.depth))

    # -- expressions ------------------------------------------------

    def _eval(self, node, env):
        if isinstance(node, ast.Name):
            self._record_access(node.id, "read", node, env)
            if node.id in self.tls_names:
                return TLSRef(node.id)
            if node.id in env:
                return env[node.id]
            if node.id in self.substrate:
                return V.KernelRef(frozenset({node.id}))
            return V.UNKNOWN
        if isinstance(node, ast.Constant):
            if isinstance(node.value, int) \
                    and not isinstance(node.value, bool):
                return V.DimScalar(V.const(node.value))
            return V.UNKNOWN
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node, env)
        if isinstance(node, ast.UnaryOp):
            val = self._eval(node.operand, env)
            if isinstance(node.op, ast.USub) \
                    and isinstance(val, V.DimScalar):
                return V.DimScalar(V.scale(val.dim, -1))
            return V.UNKNOWN
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node, env)
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node, env)
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.IfExp):
            self._eval(node.test, env)
            return V.merge_values(self._eval(node.body, env),
                                  self._eval(node.orelse, env))
        if isinstance(node, (ast.Tuple, ast.List)):
            return V.TupleVal(tuple(self._eval(e, env)
                                    for e in node.elts))
        if isinstance(node, (ast.Compare, ast.BoolOp)):
            for sub in ast.iter_child_nodes(node):
                if isinstance(sub, ast.expr):
                    self._eval(sub, env)
            return V.UNKNOWN
        return V.UNKNOWN

    def _eval_binop(self, node, env):
        left = self._eval(node.left, env)
        right = self._eval(node.right, env)
        if isinstance(left, V.DimScalar) and isinstance(right, V.DimScalar):
            if isinstance(node.op, ast.Add):
                return V.DimScalar(V.add(left.dim, right.dim))
            if isinstance(node.op, ast.Sub):
                return V.DimScalar(V.sub(left.dim, right.dim))
            if isinstance(node.op, ast.Mult):
                k = V.as_const(left.dim)
                if k is not None:
                    return V.DimScalar(V.scale(right.dim, k))
                k = V.as_const(right.dim)
                if k is not None:
                    return V.DimScalar(V.scale(left.dim, k))
        return V.UNKNOWN

    def _eval_attribute(self, node, env):
        val = self._eval(node.value, env)
        if isinstance(val, TLSRef):
            return val
        if isinstance(node.value, ast.Name):
            self._record_access(f"{node.value.id}.{node.attr}", "read",
                                node, env)
        if isinstance(val, V.ArrayVal):
            if node.attr == "shape":
                if val.shape is None:
                    return V.UNKNOWN
                return V.TupleVal(tuple(V.DimScalar(d)
                                        for d in val.shape))
            if node.attr == "T":
                shape = tuple(reversed(val.shape)) \
                    if val.shape is not None else None
                return V.ArrayVal(shape=shape, dtype=val.dtype,
                                  origins=val.origins, allocs=val.allocs)
            if node.attr in ("real", "imag"):
                return V.ArrayVal(shape=val.shape, dtype=val.dtype,
                                  origins=val.origins, allocs=val.allocs)
        if isinstance(node.value, ast.Name):
            key = f"{node.value.id}.{node.attr}"
            if key in env:
                return env[key]
        return V.UNKNOWN

    def _eval_subscript(self, node, env):
        base = self._eval(node.value, env)
        if isinstance(base, V.TupleVal):
            idx = node.slice
            if isinstance(idx, ast.Constant) \
                    and isinstance(idx.value, int) \
                    and -len(base.items) <= idx.value < len(base.items):
                return base.items[idx.value]
            return V.UNKNOWN
        if isinstance(base, V.ArrayVal):
            # A slice/index view keeps provenance but loses exact shape.
            return V.ArrayVal(shape=None, dtype=base.dtype,
                              origins=base.origins, allocs=base.allocs)
        return V.UNKNOWN

    # -- calls ------------------------------------------------------

    def _eval_call(self, call, env):
        name = call_name(call)
        func = call.func

        if isinstance(func, ast.Attribute) and func.attr == "copy":
            base = self._eval(func.value, env)
            if isinstance(base, V.ArrayVal):
                site = self._alloc(call, base.shape, base.dtype)
                return V.ArrayVal(shape=base.shape, dtype=base.dtype,
                                  allocs=frozenset({site.index}))
            return V.UNKNOWN
        if isinstance(func, ast.Attribute) and func.attr == "astype":
            base = self._eval(func.value, env)
            dtype = self._eval_dtype(call.args[0], env) if call.args \
                else V.DT_UNKNOWN
            if isinstance(base, V.ArrayVal):
                site = self._alloc(call, base.shape, dtype)
                return V.ArrayVal(shape=base.shape, dtype=dtype,
                                  allocs=frozenset({site.index}))
            return V.UNKNOWN

        # Explicit ``LOCK.acquire()`` / ``LOCK.release()`` — the
        # non-``with`` half of the lock model (joins at branch merges
        # are only interesting because these exist).
        if isinstance(func, ast.Attribute) \
                and func.attr in ("acquire", "release"):
            lock = self._lock_id(func.value)
            if lock is not None:
                if func.attr == "acquire":
                    self._push_lock(lock, env, call)
                else:
                    held = env.get(LOCKSET, frozenset())
                    env[LOCKSET] = frozenset(
                        p for p in held if p[0] != lock)
                return V.UNKNOWN

        # ``deadlines.check(srname, stage, ...)`` — a stage checkpoint.
        if isinstance(func, ast.Attribute) and func.attr == "check" \
                and isinstance(func.value, ast.Name) \
                and func.value.id == "deadlines":
            stage = None
            if len(call.args) >= 2 \
                    and isinstance(call.args[1], ast.Constant) \
                    and isinstance(call.args[1].value, str):
                stage = call.args[1].value
            self._eval_rest(call, env)
            self.checkpoints.append(Checkpoint(stage=stage, node=call,
                                               depth=self.depth))
            return V.UNKNOWN

        if name in ALLOCATORS:
            return self._eval_allocator(call, name, env)
        if name in LIKE_ALLOCATORS:
            base = self._eval(call.args[0], env) if call.args \
                else V.UNKNOWN
            dtype = self._dtype_kw(call, env)
            if isinstance(base, V.ArrayVal):
                if dtype is None:
                    dtype = base.dtype
                site = self._alloc(call, base.shape, dtype)
                return V.ArrayVal(shape=base.shape, dtype=dtype,
                                  allocs=frozenset({site.index}))
            site = self._alloc(call, None, dtype or V.DT_UNKNOWN)
            return V.ArrayVal(allocs=frozenset({site.index}),
                              dtype=dtype or V.DT_UNKNOWN)
        if name in PASSTHROUGH:
            self._eval_rest(call, env, skip=1)
            return self._eval(call.args[0], env) if call.args \
                else V.UNKNOWN

        if name in ("min", "max") and isinstance(func, ast.Name):
            dims = [self._as_dim(self._eval(a, env)) for a in call.args]
            if len(dims) == 2:
                joined = (V.dim_min if name == "min"
                          else V.dim_max)(dims[0], dims[1])
                if joined is not None:
                    return V.DimScalar(joined)
            return V.UNKNOWN
        if name == "len" and call.args:
            val = self._eval(call.args[0], env)
            if isinstance(val, V.ArrayVal) and val.shape:
                return V.DimScalar(val.shape[0])
            return V.UNKNOWN
        if name == "int" and call.args:
            val = self._eval(call.args[0], env)
            return val if isinstance(val, V.DimScalar) else V.UNKNOWN

        if name == "as_matrix" and call.args:
            val = self._eval(call.args[0], env)
            if isinstance(val, V.ArrayVal):
                mat = V.ArrayVal(shape=None, dtype=val.dtype,
                                 origins=val.origins, allocs=val.allocs)
                return V.TupleVal((mat, V.UNKNOWN))
            return V.TupleVal((V.UNKNOWN, V.UNKNOWN))
        if name == "_store" and len(call.args) >= 2:
            target = self._eval(call.args[0], env)
            value = self._eval(call.args[1], env)
            names = target.origins if isinstance(target, V.ArrayVal) \
                else frozenset()
            self.writes.append(Write(names=names, value=value,
                                     node=call, via="store",
                                     depth=self.depth))
            return V.merge_values(target, value)

        callees = frozenset()
        is_sink = False
        if name is not None and name in self.substrate:
            is_sink = True
            callees = frozenset({name})
        elif isinstance(func, ast.Name):
            held = env.get(func.id)
            if isinstance(held, V.KernelRef):
                is_sink = True
                callees = held.names
            elif func.id in self.callable_params:
                is_sink = True
        if is_sink:
            argvals = tuple(self._eval(a, env) for a in call.args)
            kwvals = tuple((kw.arg, self._eval(kw.value, env))
                           for kw in call.keywords
                           if kw.value is not None)
            self.sinks.append(Sink(
                callee=name or "?",
                values=argvals + tuple(v for _, v in kwvals),
                node=call, args=argvals, kwargs=kwvals,
                callees=callees, depth=self.depth))
            return V.UNKNOWN

        # Interprocedural step: same-module / auxmod helpers resolve
        # through the summary engine instead of poisoning the env.
        clean_call = not any(kw.arg is None for kw in call.keywords) \
            and not any(isinstance(a, ast.Starred) for a in call.args)
        if self.summaries is not None and isinstance(func, ast.Name) \
                and clean_call:
            target = self.summaries.resolve(self.module, func.id)
            if target is not None:
                return self._apply_summary(call, target, env)
        # Module-attribute calls (``cache.lookup(a)``) resolve through
        # the engine's import map when it provides one — the
        # concurrency pass inlines calls into state-owning modules.
        if self.summaries is not None \
                and isinstance(func, ast.Attribute) \
                and isinstance(func.value, ast.Name) and clean_call:
            resolve_attr = getattr(self.summaries, "resolve_attr", None)
            if resolve_attr is not None:
                target = resolve_attr(self.module, func.value.id,
                                      func.attr)
                if target is not None:
                    return self._apply_summary(call, target, env)

        return self._eval_generic(call, env)

    def _apply_summary(self, call, target, env):
        argvals = [self._eval(a, env) for a in call.args]
        kwvals = {kw.arg: self._eval(kw.value, env)
                  for kw in call.keywords}
        # Call context for event replay: the caller's lockset (unioned
        # onto replayed accesses/acquires) and the call node (the
        # ``site`` stamped on events replayed into a root).
        self._call_node = call
        self._call_lockset = env.get(LOCKSET, frozenset())
        result = self.summaries.apply(self, target, argvals, kwvals)
        if result is not self.summaries.NO_SUMMARY:
            return result
        return V.UNKNOWN

    def _eval_generic(self, call, env):
        """Evaluate an unmodelled call: arguments for side effects,
        guarded receivers as reads/writes, thread-local provenance."""
        func = call.func
        argvals = [self._eval(a, env) for a in call.args]
        for kw in call.keywords:
            if kw.value is not None:
                self._eval(kw.value, env)
        if isinstance(func, ast.Name) and func.id == "getattr" \
                and argvals and isinstance(argvals[0], TLSRef):
            return argvals[0]
        if isinstance(func, ast.Attribute):
            base = func.value
            recv_key = None
            if isinstance(base, ast.Name):
                recv_key = base.id
            elif isinstance(base, ast.Attribute) \
                    and isinstance(base.value, ast.Name):
                recv_key = f"{base.value.id}.{base.attr}"
            if recv_key is not None:
                mutating = func.attr in MUTATORS
                if recv_key in self.guarded:
                    self._record_access(
                        recv_key, "write" if mutating else "read",
                        call, env)
                if mutating and (recv_key in self.module_globals
                                 or recv_key in self.guarded):
                    for v in argvals:
                        self._record_escape(v, recv_key, call)
                if recv_key not in self.guarded:
                    recv = self._eval(base, env)
                    if isinstance(recv, TLSRef):
                        return recv
        return V.UNKNOWN

    def _eval_rest(self, call, env, skip=0):
        """Evaluate remaining call arguments for their side effects
        (nested ``_store``/allocations) without modelling the call."""
        for a in call.args[skip:]:
            self._eval(a, env)
        for kw in call.keywords:
            if kw.value is not None:
                self._eval(kw.value, env)

    def _eval_allocator(self, call, name, env):
        shape = None
        if call.args:
            first = call.args[0]
            if isinstance(first, (ast.Tuple, ast.List)):
                shape = tuple(self._as_dim(self._eval(e, env))
                              for e in first.elts)
            else:
                shape = (self._as_dim(self._eval(first, env)),)
        dtype = self._dtype_kw(call, env)
        if dtype is None and name in ("zeros", "empty", "ones") \
                and len(call.args) >= 2:
            dtype = self._eval_dtype(call.args[1], env)
        if dtype is None:
            dtype = V.DT_DEFAULT
        site = self._alloc(call, shape, dtype)
        return V.ArrayVal(shape=shape, dtype=dtype,
                          allocs=frozenset({site.index}))

    def _dtype_kw(self, call, env):
        for kw in call.keywords:
            if kw.arg == "dtype":
                return self._eval_dtype(kw.value, env)
        return None

    def _alloc(self, node, shape, dtype) -> V.AllocSite:
        site = V.AllocSite(index=len(self.allocs), node=node,
                           shape=shape, dtype=dtype)
        self.allocs.append(site)
        return site

    @staticmethod
    def _as_dim(val):
        return val.dim if isinstance(val, V.DimScalar) else None

    # -- dtype expressions ------------------------------------------

    def _eval_dtype(self, node, env):
        if isinstance(node, ast.Name):
            return V.dt_fixed(node.id) if node.id in V.FIXED_INEXACT \
                or node.id in ("int", "bool") or "int" in node.id \
                else V.DT_UNKNOWN
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            label = node.value
            return V.dt_fixed(label)
        if isinstance(node, ast.Attribute):
            if node.attr == "dtype":
                base = self._eval(node.value, env)
                if isinstance(base, V.ArrayVal):
                    if base.dtype != V.DT_UNKNOWN:
                        return base.dtype
                    if base.origins:
                        return V.dt_follows(base.origins)
                return V.DT_UNKNOWN
            # np.float64 / np.intp / np.complex128 ...
            return V.dt_fixed(node.attr)
        if isinstance(node, ast.Call):
            if call_name(node) in ("result_type", "promote_types",
                                   "common_type"):
                origins = set()
                for a in node.args:
                    val = self._eval(a, env)
                    if isinstance(val, V.ArrayVal):
                        origins |= val.origins
                return V.dt_follows(origins) if origins else V.DT_UNKNOWN
            return V.DT_UNKNOWN
        if isinstance(node, ast.IfExp):
            d1 = self._eval_dtype(node.body, env)
            d2 = self._eval_dtype(node.orelse, env)
            return d1 if d1 == d2 else V.DT_UNKNOWN
        return V.DT_UNKNOWN


class DriverFlow(FlowInterpreter):
    """Interpret one driver implementation against its spec."""

    def __init__(self, impl, spec, summaries=None):
        super().__init__(module=impl.impl_module, func=impl.func,
                         substrate=impl.impl_module.substrate_names,
                         summaries=summaries, depth=0)
        self.impl = impl
        self.spec = spec
        self.spec_dims = spec_dim_formulas(spec)

        pos_to_arg = {a.position: a for a in spec.args}
        self.param_args = {}
        params = [a.arg for a in (list(impl.func.args.posonlyargs)
                                  + list(impl.func.args.args))]
        for pname in params:
            arg = pos_to_arg.get(impl.posmap.get(pname))
            if arg is not None:
                self.param_args[pname] = arg
        # Helper parameters with no spec mapping may hold the bound
        # kernel (``driver(ap, n, ...)``); calls through them are sinks.
        self.callable_params = {p for p in params
                                if p not in self.param_args}

    # -- driving ----------------------------------------------------

    def run(self) -> "DriverFlow":
        env = {}
        for pname, arg in self.param_args.items():
            env[pname] = self._seed(arg)
        # Delegation sites that pass substrate kernels by name bind the
        # receiving helper parameter to a kernel reference, so calls
        # through it resolve to the concrete kernel.
        for pname, kernel in getattr(self.impl, "callmap", {}).items():
            env[pname] = V.KernelRef(frozenset({kernel}))
        self._exec_block(body_statements(self.impl.func), env)
        return self

    @staticmethod
    def _seed(arg):
        origins = frozenset({arg.name})
        dtype = V.dt_follows({arg.name})
        if arg.kind == "matrix":
            return V.ArrayVal(shape=(V.atom(("rows", arg.name)),
                                     V.atom(("cols", arg.name))),
                              dtype=dtype, origins=origins)
        if arg.kind == "vector":
            return V.ArrayVal(shape=(V.atom(("len", arg.name)),),
                              dtype=dtype, origins=origins)
        if arg.kind == "rhs":
            return V.ArrayVal(shape=None, dtype=dtype, origins=origins)
        return V.UNKNOWN
