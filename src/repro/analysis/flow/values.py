"""Abstract values for the ``laflow`` dataflow engine.

The engine tracks three things symbolically:

* **Dimensions** — canonical linear forms over dimension *atoms* such as
  ``rows(a)`` or ``len(d)``, so ``2 * kl + ku + 1`` and spec formulas
  like ``rows2d(ab)`` can be compared structurally.  A dimension is
  ``("lin", const, frozenset((atom, coef), ...))``; ``None`` means
  *unknown* and poisons every operation (no finding is ever produced
  from an unknown dimension).
* **Dtypes** — a small lattice: *follows* one or more driver arguments,
  an explicitly *fixed* NumPy dtype (the LA013 candidates), NumPy's
  implicit *default* (``np.zeros(n)`` with no ``dtype=``), *int*, or
  *unknown*.
* **Array provenance** — which spec-declared driver arguments a value
  may alias (``origins``) and which allocation sites it may carry
  (``allocs``, indices into the interpreter's site table).

Everything is plain data over :mod:`ast` nodes; the analysed code is
never imported.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Dim", "const", "atom", "add", "sub", "scale", "dim_min",
           "dim_max", "as_const", "render_dim", "DT_UNKNOWN",
           "DT_DEFAULT", "DT_INT", "dt_follows", "dt_fixed",
           "is_fixed_inexact", "render_dtype", "FIXED_INEXACT",
           "UNKNOWN", "Unknown", "DimScalar", "ArrayVal", "TupleVal",
           "KernelRef", "AllocSite", "merge_values", "may_overlap"]

#: type alias (documentation only): a Dim is the tuple described above,
#: or ``None`` for unknown.
Dim = tuple


def const(k: int) -> Dim:
    return ("lin", int(k), frozenset())


def atom(base) -> Dim:
    """A dimension atom: ``("rows", "a")``, ``("cols", "a")``,
    ``("len", "d")``, ``("tri", "ap")`` or a nested ``("min", d1, d2)`` /
    ``("max", d1, d2)``."""
    return ("lin", 0, frozenset({(base, 1)}))


def add(d1: Dim | None, d2: Dim | None) -> Dim | None:
    if d1 is None or d2 is None:
        return None
    terms: dict = {}
    for _, _, ts in (d1, d2):
        for base, coef in ts:
            terms[base] = terms.get(base, 0) + coef
    return ("lin", d1[1] + d2[1],
            frozenset((b, c) for b, c in terms.items() if c != 0))


def scale(d: Dim | None, k: int) -> Dim | None:
    if d is None:
        return None
    return ("lin", d[1] * k, frozenset((b, c * k) for b, c in d[2]))


def sub(d1: Dim | None, d2: Dim | None) -> Dim | None:
    return add(d1, scale(d2, -1))


def as_const(d: Dim | None) -> int | None:
    if d is not None and not d[2]:
        return d[1]
    return None


def _extreme(kind, d1, d2):
    if d1 is None or d2 is None:
        return None
    if d1 == d2:
        return d1
    k1, k2 = as_const(d1), as_const(d2)
    if k1 is not None and k2 is not None:
        return const(min(k1, k2) if kind == "min" else max(k1, k2))
    lo, hi = sorted((d1, d2), key=repr)
    return atom((kind, lo, hi))


def dim_min(d1: Dim | None, d2: Dim | None) -> Dim | None:
    return _extreme("min", d1, d2)


def dim_max(d1: Dim | None, d2: Dim | None) -> Dim | None:
    return _extreme("max", d1, d2)


def render_dim(d: Dim | None) -> str:
    """Human-readable form of a dimension for finding messages."""
    if d is None:
        return "?"
    parts = []
    for base, coef in sorted(d[2], key=repr):
        parts.append(("" if coef == 1 else f"{coef}*") + _render_atom(base))
    if d[1] or not parts:
        parts.append(str(d[1]))
    return " + ".join(parts).replace("+ -", "- ")


def _render_atom(base) -> str:
    kind = base[0]
    if kind in ("min", "max"):
        return f"{kind}({render_dim(base[1])}, {render_dim(base[2])})"
    return f"{kind}({base[1]})"


# -- dtypes -----------------------------------------------------------

DT_UNKNOWN = ("unknown",)
DT_DEFAULT = ("default",)   # NumPy's implicit float64
DT_INT = ("int",)

#: Explicit inexact dtype spellings whose hard-coding inside a
#: dtype-generic driver is an LA013 finding.
FIXED_INEXACT = frozenset({
    "float", "float16", "float32", "float64", "float128", "single",
    "double", "longdouble", "half", "complex", "complex64", "complex128",
    "complex256", "csingle", "cdouble", "cfloat", "clongdouble",
})

_INT_NAMES = frozenset({
    "int", "intp", "intc", "int8", "int16", "int32", "int64", "bool",
    "bool_", "uint8", "uint16", "uint32", "uint64",
})


def dt_follows(names) -> tuple:
    return ("follows", frozenset(names))


def dt_fixed(label: str) -> tuple:
    if label in _INT_NAMES:
        return DT_INT
    return ("fixed", label)


def is_fixed_inexact(dtype: tuple) -> bool:
    return dtype[0] == "fixed" and dtype[1] in FIXED_INEXACT


def render_dtype(dtype: tuple) -> str:
    if dtype[0] == "follows":
        return "dtype of " + "/".join(sorted(dtype[1]))
    if dtype[0] == "fixed":
        return dtype[1]
    return dtype[0]


# -- values -----------------------------------------------------------

class Unknown:
    """Singleton bottom value — nothing is known, nothing is reported."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "<unknown>"


UNKNOWN = Unknown()


@dataclass(frozen=True)
class DimScalar:
    """An integer scalar with a known symbolic dimension value."""
    dim: Dim


@dataclass(frozen=True)
class AllocSite:
    """One array-allocation site recorded during interpretation."""
    index: int
    node: object                 # the ast.Call (display position)
    shape: tuple | None          # tuple of Dim (each possibly None)
    dtype: tuple


@dataclass(frozen=True)
class ArrayVal:
    """An abstract array: symbolic shape, dtype, and provenance."""
    shape: tuple | None = None           # tuple of Dim, or unknown rank
    dtype: tuple = DT_UNKNOWN
    origins: frozenset = field(default_factory=frozenset)
    allocs: frozenset = field(default_factory=frozenset)  # AllocSite idx


@dataclass(frozen=True)
class TupleVal:
    items: tuple = ()


@dataclass(frozen=True)
class KernelRef:
    """A first-class reference to one or more substrate kernels
    (``rfs = herfs if hermitian else syrfs``); a call through it is a
    sink whose callee may be any of ``names``."""
    names: frozenset


def merge_values(v1, v2):
    """Join two abstract values after a branch split."""
    if v1 is v2 or v1 == v2:
        return v1
    if isinstance(v1, ArrayVal) or isinstance(v2, ArrayVal):
        a1 = v1 if isinstance(v1, ArrayVal) else ArrayVal()
        a2 = v2 if isinstance(v2, ArrayVal) else ArrayVal()
        return ArrayVal(
            shape=a1.shape if a1.shape == a2.shape else None,
            dtype=a1.dtype if a1.dtype == a2.dtype else DT_UNKNOWN,
            origins=a1.origins | a2.origins,
            allocs=a1.allocs | a2.allocs)
    if isinstance(v1, KernelRef) and isinstance(v2, KernelRef):
        return KernelRef(v1.names | v2.names)
    if isinstance(v1, TupleVal) and isinstance(v2, TupleVal) \
            and len(v1.items) == len(v2.items):
        return TupleVal(tuple(merge_values(a, b)
                              for a, b in zip(v1.items, v2.items)))
    return UNKNOWN


def may_overlap(v1, v2) -> bool:
    """Whether two abstract arrays may share memory: they can alias a
    common declared argument, or carry a common allocation site
    (views/slices keep both provenance sets)."""
    if not (isinstance(v1, ArrayVal) and isinstance(v2, ArrayVal)):
        return False
    return bool(v1.origins & v2.origins) or bool(v1.allocs & v2.allocs)
