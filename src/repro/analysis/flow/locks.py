"""The laflow lock model and concurrency rules (LA023–LA026).

LA015/LA016 are syntactic: a mutation of owned global state must sit
lexically inside ``with STATE_LOCK:`` in its owner module.  This module
upgrades that to real lockset reasoning on top of the interprocedural
interpreter: the abstract environment carries the set of ``(lock,
region)`` pairs held at every point (:data:`~.interp.LOCKSET`), helper
summaries record the guarded state they touch and the locks they
acquire, and replay unions the caller's lockset on top — so a helper
that *relies on* its caller's lock (``breaker._sync``) is clean at
every locked call site while still flagging an unlocked one.

The rules are driven by a declarative **guarded_by registry**: every
shared mutable name in the package — the policy object, backend
registry and selection, blocking knobs, breaker registry and tracking
flag, resilience policy, deadline arming, fault/chaos tables, the
structure cache with its stats/epoch counters, switch hooks, and the
rate-limiter windows behind the fallback-announcement state — mapped to
the lock that owns it.  The module-level entries are derived from the
same owner tables LA015/LA016 police (:data:`~.rules.GLOBAL_STATE`,
:data:`~.rules.RESILIENCE_STATE`) plus the registries that grew after
those rules landed; instance state (``RateLimiter._seen``) is guarded
by a per-object lock discovered from the class ``__init__``.  A module
outside the shipped tree can declare its own table with a top-level
``_LAFLOW_GUARDED = {"_NAME": "LOCK"}`` literal (fixtures use this).

The four rules:

* **LA023 — lockset consistency.**  Every read *and* write of a
  guarded name must happen with its lock in the current lockset,
  interprocedurally.  Deliberate unlocked fast-path reads carry a
  ``# laflow: benign-race — <why>`` pragma; the rule verifies each
  pragma has a justification and actually covers a reached access.
* **LA024 — atomicity.**  A read of a guarded name under one lock
  region followed by a write under a *disjoint* region is a split
  check-then-act (the classic cache lookup-then-insert race shape).
  Justified splits carry ``# laflow: atomic-split — <why>`` on either
  access line or on the root call site; generator bodies (save/restore
  context managers) are exempt — their two halves bracket the caller's
  code by design.
* **LA025 — lock order.**  The static acquisition graph (which locks
  are held when another is acquired, across ``with`` blocks,
  ``.acquire()`` calls and summary replay) must be acyclic;
  re-acquiring a held lock is fine for re-entrant locks (STATE_LOCK is
  an RLock) and a self-deadlock for plain ones.
* **LA026 — thread-local escape.**  A value derived from thread-local
  state (``_DEADLINES``, the calllog ``_FRAMES``) must not be stored
  into module globals or long-lived shared containers.

Pragma placement matters and is checked: a pragma on a line no guarded
access reaches is itself a finding, so stale suppressions cannot
accumulate.  Like every lalint rule, nothing here imports the analysed
code.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field

from ..findings import Finding
from ..model import Project, body_statements, call_name
from . import values as V
from .interp import FlowInterpreter
from .summaries import SummaryEngine
from .rules import (GLOBAL_STATE, RESILIENCE_STATE, STATE_LOCK,
                    _UNLOCKED_OK)

__all__ = ["GUARDED_BY", "GUARDED_ATTRS", "ConcurrencySummaryEngine",
           "check_la023", "check_la024", "check_la025", "check_la026"]


# ---------------------------------------------------------------------
# The guarded_by registry
# ---------------------------------------------------------------------

#: name -> (owner-path suffix, owning lock).  Seeded from the LA015 /
#: LA016 owner tables (everything there is STATE_LOCK-guarded except
#: the thread-local deadline stack), then extended with the shared
#: registries that grew after those rules landed.
GUARDED_BY: dict = {}
for _var, (_owner, _api) in {**GLOBAL_STATE, **RESILIENCE_STATE}.items():
    if _var in _UNLOCKED_OK:        # threading.local: per-thread
        continue
    GUARDED_BY[_var] = (_owner, STATE_LOCK)
GUARDED_BY.update({
    # backend registry and switch hooks (fallback announcements reset
    # through _switched ride the same lock)
    "_REGISTRY": ("repro/backends/__init__.py", STATE_LOCK),
    "_SWITCH_HOOKS": ("repro/backends/__init__.py", STATE_LOCK),
    # breaker tracking flag (the registry itself is LA016-inherited)
    "TRACKING": ("repro/resilience/breaker.py", STATE_LOCK),
    # fault-injection tables and their fast-path gates
    "_FAULTS": ("repro/faults.py", STATE_LOCK),
    "ACTIVE": ("repro/faults.py", STATE_LOCK),
    "CHAOS_ACTIVE": ("repro/faults.py", STATE_LOCK),
    # the PR 9 structure cache and its stats/epoch counters
    "_ENTRIES": ("repro/dispatch_front/cache.py", STATE_LOCK),
    "_STATS": ("repro/dispatch_front/cache.py", STATE_LOCK),
    # lazily-initialised retry exemption set at the dispatch seam
    "_EXEMPT": ("repro/resilience/dispatch.py", STATE_LOCK),
})

#: Instance state guarded by a per-object lock: ``"Class.attr" ->
#: "Class.lockattr"``.  The owner is wherever the class is defined; the
#: lock itself is discovered from ``self.<lockattr> = threading.Lock()``
#: in ``__init__`` (which also decides re-entrancy).
GUARDED_ATTRS = {
    "RateLimiter._seen": "RateLimiter._lock",   # warning windows
}

_PRAGMA_RE = re.compile(
    r"#\s*laflow:\s*(benign-race|atomic-split)\b[\s:—–-]*(.*)")


# ---------------------------------------------------------------------
# Per-module configuration
# ---------------------------------------------------------------------

def _norm(path: str) -> str:
    return path.replace(os.sep, "/")


def _dirname(path: str) -> str:
    return path.rsplit("/", 1)[0] if "/" in path else ""


def _lock_ctor(node) -> str | None:
    """``'Lock' | 'RLock' | 'local'`` for a threading primitive call."""
    if not isinstance(node, ast.Call):
        return None
    f = node.func
    name = f.id if isinstance(f, ast.Name) \
        else f.attr if isinstance(f, ast.Attribute) else None
    return name if name in ("Lock", "RLock", "local") else None


@dataclass
class ModuleConfig:
    """Everything the lock model knows about one module."""
    guarded: dict = field(default_factory=dict)
    lock_table: dict = field(default_factory=dict)
    reentrant: set = field(default_factory=set)
    tls_names: set = field(default_factory=set)
    module_globals: set = field(default_factory=set)
    class_locks: dict = field(default_factory=dict)
    class_guarded: dict = field(default_factory=dict)
    defines_lock: bool = False
    imports_state_lock: bool = False

    @property
    def relevant(self) -> bool:
        return bool(self.guarded or self.tls_names or self.class_locks
                    or self.defines_lock)


def _module_config(mod) -> ModuleConfig:
    p = _norm(mod.path)
    cfg = ModuleConfig()
    cfg.reentrant.add(STATE_LOCK)   # repro._sync.STATE_LOCK is an RLock
    for name, (owner, lock) in GUARDED_BY.items():
        if p.endswith(owner):
            cfg.guarded[name] = (name, lock)
    cfg.imports_state_lock = any(
        alias == "STATE_LOCK"
        for _lvl, _src, _orig, alias in mod.import_records)
    for node in mod.tree.body:
        if isinstance(node, ast.Assign):
            targets = [t for t in node.targets if isinstance(t, ast.Name)]
            value = node.value
        elif isinstance(node, ast.AnnAssign) \
                and isinstance(node.target, ast.Name):
            targets, value = [node.target], node.value
        else:
            continue
        cfg.module_globals.update(t.id for t in targets)
        ctor = _lock_ctor(value)
        if ctor == "local":
            cfg.tls_names.update(t.id for t in targets)
        elif ctor in ("Lock", "RLock"):
            cfg.defines_lock = True
            for t in targets:
                cfg.lock_table[t.id] = t.id
                if ctor == "RLock":
                    cfg.reentrant.add(t.id)
        if targets and targets[0].id == "_LAFLOW_GUARDED" \
                and isinstance(value, ast.Dict):
            for k, v in zip(value.keys, value.values):
                if isinstance(k, ast.Constant) \
                        and isinstance(k.value, str) \
                        and isinstance(v, ast.Constant) \
                        and isinstance(v.value, str):
                    cfg.guarded[k.value] = (k.value, v.value)
    cfg.lock_table.setdefault("STATE_LOCK", STATE_LOCK)
    for cname, cnode in mod.classes.items():
        locks: dict = {}
        for item in cnode.body:
            if not (isinstance(item, ast.FunctionDef)
                    and item.name == "__init__"):
                continue
            for n in ast.walk(item):
                if not isinstance(n, ast.Assign):
                    continue
                ctor = _lock_ctor(n.value)
                if ctor not in ("Lock", "RLock"):
                    continue
                for t in n.targets:
                    if isinstance(t, ast.Attribute) \
                            and isinstance(t.value, ast.Name) \
                            and t.value.id == "self":
                        lid = f"{cname}.{t.attr}"
                        locks[t.attr] = lid
                        if ctor == "RLock":
                            cfg.reentrant.add(lid)
        if locks:
            cfg.class_locks[cname] = locks
        attrs: dict = {}
        for qual, lockqual in GUARDED_ATTRS.items():
            qcls, attr = qual.split(".", 1)
            if qcls == cname:
                attrs[f"self.{attr}"] = (qual, lockqual)
        if attrs:
            cfg.class_guarded[cname] = attrs
    return cfg


def _local_shadows(func) -> set:
    """Names that are plain locals of ``func`` (assigned without a
    ``global`` declaration, or parameters) — these shadow any guarded
    module global of the same name inside this function."""
    declared: set = set()
    assigned: set = set()

    def targets_of(t):
        if isinstance(t, ast.Name):
            assigned.add(t.id)
        elif isinstance(t, (ast.Tuple, ast.List)):
            for e in t.elts:
                targets_of(e)
        elif isinstance(t, ast.Starred):
            targets_of(t.value)

    for node in ast.walk(func):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            declared.update(node.names)
        elif isinstance(node, ast.Assign):
            for t in node.targets:
                targets_of(t)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign, ast.For)):
            targets_of(node.target)
        elif isinstance(node, ast.With):
            for item in node.items:
                if item.optional_vars is not None:
                    targets_of(item.optional_vars)
        elif isinstance(node, ast.comprehension):
            targets_of(node.target)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            assigned.add(node.name)
    a = func.args
    for p in (list(a.posonlyargs) + list(a.args) + list(a.kwonlyargs)):
        assigned.add(p.arg)
    if a.vararg is not None:
        assigned.add(a.vararg.arg)
    if a.kwarg is not None:
        assigned.add(a.kwarg.arg)
    return assigned - declared


# ---------------------------------------------------------------------
# Import resolution (level-aware, unlike Module.imports)
# ---------------------------------------------------------------------

class _ImportResolver:
    """Resolve from-imports to project modules by actual file path."""

    def __init__(self, project):
        self.index = {_norm(m.path): m for m in project.modules}

    def module_for(self, importer, level, dotted):
        if level > 0:
            base = _dirname(_norm(importer.path))
            for _ in range(level - 1):
                base = _dirname(base)
            tail = dotted.replace(".", "/") if dotted else ""
            cand = f"{base}/{tail}" if tail else base
            if tail:
                m = self.index.get(cand + ".py")
                if m is not None:
                    return m
            return self.index.get(cand + "/__init__.py")
        tail = dotted.replace(".", "/") if dotted else ""
        if not tail:
            return None
        for path, m in self.index.items():
            if path.endswith(f"/{tail}.py") or path == f"{tail}.py" \
                    or path.endswith(f"/{tail}/__init__.py"):
                return m
        return None

    def function_target(self, importer, name):
        """``(module, func)`` for a name imported as a function."""
        for level, src, orig, alias in importer.import_records:
            if alias != name:
                continue
            m = self.module_for(importer, level, src)
            if m is not None:
                func = m.functions.get(orig)
                if func is not None:
                    return (m, func)
        return None

    def module_alias(self, importer, alias):
        """Project module bound to ``alias`` by ``from pkg import mod``."""
        for level, src, orig, asname in importer.import_records:
            if asname != alias:
                continue
            dotted = f"{src}.{orig}" if src else orig
            m = self.module_for(importer, level, dotted)
            if m is not None:
                return m
        return None


# ---------------------------------------------------------------------
# The concurrency summary engine
# ---------------------------------------------------------------------

class ConcurrencySummaryEngine(SummaryEngine):
    """A :class:`SummaryEngine` whose sub-interpreters carry the lock
    model, and whose resolution scope extends across modules into the
    state owners (``cache.lookup`` inlines into ``api._classify``)."""

    def __init__(self, project, configs, resolver):
        super().__init__(project)
        self.configs = configs          # norm path -> (Module, config)
        self.resolver = resolver

    def _config(self, mod):
        entry = self.configs.get(_norm(mod.path))
        return entry[1] if entry is not None else None

    def resolve(self, module, name):
        if module is None:
            return None
        func = module.functions.get(name)
        if func is not None:
            return (module, func)
        target = self.resolver.function_target(module, name)
        if target is not None and self._config(target[0]) is not None:
            return target
        return None

    def resolve_attr(self, module, alias, attr):
        if module is None:
            return None
        m = self.resolver.module_alias(module, alias)
        if m is None or self._config(m) is None:
            return None
        func = m.functions.get(attr)
        if func is None:
            return None
        return (m, func)

    def _make_interpreter(self, mod, func):
        sub = super()._make_interpreter(mod, func)
        self.configure(sub, mod, func)
        return sub

    def configure(self, interp, mod, func, cls=None):
        """Install the lock model for one function (or method)."""
        cfg = self._config(mod)
        if cfg is None:
            return
        shadows = _local_shadows(func)
        interp.guarded = {k: v for k, v in cfg.guarded.items()
                          if k not in shadows}
        interp.lock_table = dict(cfg.lock_table)
        interp.reentrant_locks = set(cfg.reentrant)
        interp.tls_names = cfg.tls_names - shadows
        interp.module_globals = cfg.module_globals - shadows
        if cls is not None:
            for attr, lid in cfg.class_locks.get(cls, {}).items():
                interp.lock_table[f"self.{attr}"] = lid
            interp.guarded.update(cfg.class_guarded.get(cls, {}))


# ---------------------------------------------------------------------
# Root selection and the shared pass
# ---------------------------------------------------------------------

def _roots(mod):
    """Yield ``(display name, class or None, func)`` entry points.

    Public module functions and public methods are roots; private ones
    are only roots when nothing in the module calls them by name (a
    decorated hook like ``_on_backend_switch`` has no textual caller
    but runs on arbitrary threads).  ``__init__`` and other dunders are
    exempt: construction happens-before sharing.
    """
    called = {call_name(n) for n in ast.walk(mod.tree)
              if isinstance(n, ast.Call)}
    for fname, func in sorted(mod.functions.items()):
        if fname.startswith("_") and fname in called:
            continue
        yield fname, None, func
    for cname, cnode in sorted(mod.classes.items()):
        methods = {n.name: n for n in cnode.body
                   if isinstance(n, ast.FunctionDef)}
        self_called = set()
        for m in methods.values():
            for node in ast.walk(m):
                if isinstance(node, ast.Call) \
                        and isinstance(node.func, ast.Attribute) \
                        and isinstance(node.func.value, ast.Name) \
                        and node.func.value.id == "self":
                    self_called.add(node.func.attr)
        for mname, m in sorted(methods.items()):
            if mname.startswith("__"):
                continue
            if mname.startswith("_") and mname in self_called:
                continue
            yield f"{cname}.{mname}", cname, m


def _is_generator(func) -> bool:
    return any(isinstance(n, (ast.Yield, ast.YieldFrom))
               for n in ast.walk(func))


@dataclass
class _Run:
    mod: object
    name: str
    interp: object
    generator: bool


def _scan_pragmas(mod) -> dict:
    out = {}
    for i, line in enumerate(mod.source_lines, 1):
        m = _PRAGMA_RE.search(line)
        if m is not None:
            out[i] = (m.group(1), m.group(2).strip())
    return out


def _concurrency(project: Project) -> dict:
    """The shared concurrency pass, computed once per project.

    Scope: modules that own guarded state, define locks or
    thread-locals, import STATE_LOCK, or import directly from such a
    module (the dispatch seam and front-door callers).  Everything
    else has no lock obligations and is skipped.
    """
    cache = getattr(project, "_laconc_cache", None)
    if cache is not None:
        return cache
    resolver = _ImportResolver(project)
    all_cfgs = {_norm(mod.path): (mod, _module_config(mod))
                for mod in project.modules}
    lock_defs = {p for p, (_m, c) in all_cfgs.items() if c.defines_lock}
    configs: dict = {}
    for p, (mod, cfg) in all_cfgs.items():
        # ``from .._sync import STATE_LOCK`` makes a module relevant,
        # but only when the source really defines the lock — the lint
        # rules themselves import the *name* as a string constant.
        if cfg.imports_state_lock and not cfg.relevant:
            for level, src, _orig, alias in mod.import_records:
                if alias != "STATE_LOCK":
                    continue
                hit = resolver.module_for(mod, level, src)
                if hit is not None and _norm(hit.path) in lock_defs:
                    configs[p] = (mod, cfg)
                    break
        elif cfg.relevant:
            configs[p] = (mod, cfg)
    base_paths = set(configs)
    for mod in project.modules:
        p = _norm(mod.path)
        if p in configs:
            continue
        for level, src, orig, _alias in mod.import_records:
            hit = resolver.module_for(mod, level, src)
            if hit is None or _norm(hit.path) not in base_paths:
                dotted = f"{src}.{orig}" if src else orig
                hit = resolver.module_for(mod, level, dotted)
            if hit is not None and _norm(hit.path) in base_paths:
                configs[p] = all_cfgs[p]
                break
    engine = ConcurrencySummaryEngine(project, configs, resolver)
    runs = []
    for p in sorted(configs):
        mod, _cfg = configs[p]
        for name, cls, func in _roots(mod):
            interp = FlowInterpreter(module=mod, func=func,
                                     substrate=frozenset(),
                                     summaries=engine, depth=0)
            engine.configure(interp, mod, func, cls=cls)
            env = {}
            a = func.args
            for par in (list(a.posonlyargs) + list(a.args)
                        + list(a.kwonlyargs)):
                env[par.arg] = V.UNKNOWN
            interp._exec_block(body_statements(func), env)
            runs.append(_Run(mod=mod, name=name, interp=interp,
                             generator=_is_generator(func)))
    pragmas = {p: _scan_pragmas(mod) for p, (mod, _c) in configs.items()}
    cache = {"runs": runs, "pragmas": pragmas, "configs": configs,
             "engine": engine}
    project._laconc_cache = cache
    return cache


# ---------------------------------------------------------------------
# Pragma plumbing
# ---------------------------------------------------------------------

def _pragma_at(data, kind, path, lineno):
    entry = data["pragmas"].get(_norm(path), {}).get(lineno)
    if entry is not None and entry[0] == kind and entry[1]:
        return (_norm(path), lineno)
    return None


def _access_pragma(data, run, access, kind):
    """Pragma covering an access: on its own line, or on the call site
    it was first replayed through (the guarded API's invocation)."""
    hit = _pragma_at(data, kind, access.path,
                     getattr(access.node, "lineno", 0))
    if hit is None and access.site is not None:
        hit = _pragma_at(data, kind, access.site_path,
                         getattr(access.site, "lineno", 0))
    return hit


def _reached_lines(data) -> set:
    reached = data.get("_reached")
    if reached is not None:
        return reached
    reached = set()
    for run in data["runs"]:
        for a in run.interp.accesses:
            reached.add((_norm(a.path), getattr(a.node, "lineno", 0)))
            if a.site is not None:
                reached.add((_norm(a.site_path),
                             getattr(a.site, "lineno", 0)))
    data["_reached"] = reached
    return reached


def _pragma_findings(data, kind, code) -> list:
    """A pragma must justify itself and must be load-bearing: one with
    no justification text, or on a line no reached guarded access
    matches, is a finding under its own rule."""
    findings = []
    reached = _reached_lines(data)
    for path, table in sorted(data["pragmas"].items()):
        for lineno, (k, just) in sorted(table.items()):
            if k != kind:
                continue
            if not just:
                findings.append(Finding(
                    code=code,
                    message=f"`# laflow: {kind}` needs a justification "
                            "on the same line "
                            f"(`# laflow: {kind} — <why>`)",
                    path=path, line=lineno, col=0, context="pragma"))
            elif (path, lineno) not in reached:
                findings.append(Finding(
                    code=code,
                    message=f"unused `# laflow: {kind}` pragma: the "
                            "analysis reaches no guarded access on "
                            "this line",
                    path=path, line=lineno, col=0, context="pragma"))
    return findings


# ---------------------------------------------------------------------
# LA023 — lockset consistency
# ---------------------------------------------------------------------

def check_la023(project: Project):
    """Every read and write of a guarded name happens with its owning
    lock held, interprocedurally; deliberate unlocked fast-path reads
    carry a justified ``# laflow: benign-race`` pragma (verified to be
    load-bearing)."""
    data = _concurrency(project)
    findings = []
    seen: set = set()
    for run in data["runs"]:
        for a in run.interp.accesses:
            if a.lock in {l for l, _ in a.locks}:
                continue
            if _access_pragma(data, run, a, "benign-race") is not None:
                continue
            key = (a.name, _norm(a.path), getattr(a.node, "lineno", 0))
            if key in seen:
                continue
            seen.add(key)
            findings.append(Finding(
                code="LA023",
                message=f"{a.kind} of {a.name} without holding "
                        f"{a.lock}; hold the lock or mark the line "
                        "`# laflow: benign-race — <why>`",
                path=a.path, line=getattr(a.node, "lineno", 1),
                col=getattr(a.node, "col_offset", 0),
                context=run.name))
    findings += _pragma_findings(data, "benign-race", "LA023")
    return findings


# ---------------------------------------------------------------------
# LA024 — atomicity of check-then-act
# ---------------------------------------------------------------------

def check_la024(project: Project):
    """A read of a guarded name in one lock region followed by a write
    in a disjoint region is a split check-then-act: the state can
    change between the two acquisitions.  Generator bodies are exempt
    (save/restore context managers bracket caller code by design), and
    a justified ``# laflow: atomic-split`` pragma on either access (or
    the root call site) accepts a verified-benign split."""
    data = _concurrency(project)
    findings = []
    seen: set = set()
    for run in data["runs"]:
        if run.generator:
            continue
        accs = run.interp.accesses
        for i, r in enumerate(accs):
            if r.kind != "read":
                continue
            r_regs = {reg for l, reg in r.locks if l == r.lock}
            if not r_regs:
                continue        # unlocked read: LA023's problem
            if _access_pragma(data, run, r, "atomic-split") is not None \
                    or _access_pragma(data, run, r,
                                      "benign-race") is not None:
                continue
            for w in accs[i + 1:]:
                if w.name != r.name or w.kind != "write":
                    continue
                w_regs = {reg for l, reg in w.locks if l == w.lock}
                if not w_regs or (r_regs & w_regs):
                    continue
                if _access_pragma(data, run, w,
                                  "atomic-split") is not None \
                        or _access_pragma(data, run, w,
                                          "benign-race") is not None:
                    continue
                key = (r.name, _norm(r.path),
                       getattr(r.node, "lineno", 0),
                       _norm(w.path), getattr(w.node, "lineno", 0))
                if key in seen:
                    continue
                seen.add(key)
                findings.append(Finding(
                    code="LA024",
                    message=f"check-then-act on {r.name} split across "
                            f"two {w.lock} regions (read at "
                            f"{os.path.basename(r.path)}:"
                            f"{getattr(r.node, 'lineno', 0)}): the "
                            "state can change between the regions; "
                            "merge them or mark "
                            "`# laflow: atomic-split — <why>`",
                    path=w.path, line=getattr(w.node, "lineno", 1),
                    col=getattr(w.node, "col_offset", 0),
                    context=run.name))
    findings += _pragma_findings(data, "atomic-split", "LA024")
    return findings


# ---------------------------------------------------------------------
# LA025 — lock-order cycles
# ---------------------------------------------------------------------

def check_la025(project: Project):
    """The static lock-acquisition graph must be acyclic, and a
    non-re-entrant lock may not be re-acquired while held.
    STATE_LOCK's RLock re-entrancy is modelled, so nested
    ``with STATE_LOCK:`` (a locked API calling another) stays clean."""
    data = _concurrency(project)
    findings = []
    seen: set = set()
    edges: dict = {}
    for run in data["runs"]:
        for q in run.interp.acquires:
            if q.lock in q.held:
                if not q.reentrant:
                    key = ("self", q.lock, _norm(q.path),
                           getattr(q.node, "lineno", 0))
                    if key in seen:
                        continue
                    seen.add(key)
                    findings.append(Finding(
                        code="LA025",
                        message=f"non-re-entrant lock {q.lock} "
                                "acquired while already held "
                                "(self-deadlock)",
                        path=q.path, line=getattr(q.node, "lineno", 1),
                        col=getattr(q.node, "col_offset", 0),
                        context=run.name))
                continue
            for h in sorted(q.held):
                edges.setdefault((h, q.lock), (q, run))
    graph: dict = {}
    for (a, b) in edges:
        graph.setdefault(a, set()).add(b)

    def reaches(src, dst):
        stack, visited = [src], set()
        while stack:
            n = stack.pop()
            if n == dst:
                return True
            if n in visited:
                continue
            visited.add(n)
            stack.extend(graph.get(n, ()))
        return False

    for (a, b), (q, run) in sorted(edges.items()):
        if not reaches(b, a):
            continue
        comp = frozenset(n for n in graph
                         if reaches(a, n) and reaches(n, a)) | {a, b}
        if comp in seen:
            continue
        seen.add(comp)
        findings.append(Finding(
            code="LA025",
            message="lock-order cycle between "
                    f"{', '.join(sorted(comp))}: here {a} is held "
                    f"while acquiring {b}, elsewhere the order "
                    "reverses; pick one global acquisition order",
            path=q.path, line=getattr(q.node, "lineno", 1),
            col=getattr(q.node, "col_offset", 0),
            context=run.name))
    return findings


# ---------------------------------------------------------------------
# LA026 — thread-local escape
# ---------------------------------------------------------------------

def check_la026(project: Project):
    """Values derived from thread-local state (deadline stacks, calllog
    frames) must stay per-thread: storing one into a module global or a
    long-lived shared container leaks state across requests."""
    data = _concurrency(project)
    findings = []
    seen: set = set()
    for run in data["runs"]:
        for e in run.interp.escapes:
            key = (e.source, e.target, _norm(e.path),
                   getattr(e.node, "lineno", 0))
            if key in seen:
                continue
            seen.add(key)
            findings.append(Finding(
                code="LA026",
                message=f"value derived from thread-local {e.source} "
                        f"is stored into module-level {e.target}; "
                        "thread-local state must not escape into "
                        "long-lived shared containers",
                path=e.path, line=getattr(e.node, "lineno", 1),
                col=getattr(e.node, "col_offset", 0),
                context=run.name))
    return findings
