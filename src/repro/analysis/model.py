"""AST project model for ``lalint``.

The model never imports the code under analysis.  It parses every
``*.py`` file it is pointed at and derives, per module:

* the top-level functions and which of them are public ``la_*`` drivers,
* per-function 1-based argument positions (the LINFO convention),
* a simple alias map (``n = d.shape[0]`` makes ``n`` stand for ``d``),
* helper delegation — ``la_sysv`` implemented as
  ``return _indef_driver("LA_SYSV", sysv, a, b, uplo, ipiv, info)``
  is analysed through the helper with positions remapped via the call
  site,
* which names come from the ``lapack77`` substrate, and
* a reporter classification fixpoint: functions that *always* report
  through ``erinfo`` on every exit path versus those that *sometimes*
  do (used by LA001's path analysis).
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field

__all__ = ["Project", "Module", "DriverImpl", "neg_literal",
           "call_name", "names_in"]

#: ``la_*`` helpers that are not drivers (workspace-size queries).
NON_DRIVER_LA = {"la_ws_gels", "la_ws_gelss"}

#: Seed of the always-reporting fixpoint.
REPORTER_SEED = {"erinfo", "xerbla"}


def call_name(node: ast.AST) -> str | None:
    """Dotted-free name of a call target (``f(...)`` or ``m.f(...)``)."""
    if not isinstance(node, ast.Call):
        return None
    f = node.func
    if isinstance(f, ast.Name):
        return f.id
    if isinstance(f, ast.Attribute):
        return f.attr
    return None


def neg_literal(node: ast.AST) -> int | None:
    """Value of a literal negative int (``-3`` parses as USub(3))."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub) \
            and isinstance(node.operand, ast.Constant) \
            and isinstance(node.operand.value, int):
        return -node.operand.value
    if isinstance(node, ast.Constant) and isinstance(node.value, int) \
            and node.value < 0:
        return node.value
    return None


def int_literal(node: ast.AST) -> int | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, int) \
            and not isinstance(node.value, bool):
        return node.value
    neg = neg_literal(node)
    return neg


def names_in(node: ast.AST) -> set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def is_info_value_store(stmt: ast.AST) -> bool:
    """``info.value = ...`` counts as reporting (fallback bookkeeping)."""
    if not isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        return False
    targets = stmt.targets if isinstance(stmt, ast.Assign) \
        else [stmt.target]
    for t in targets:
        if isinstance(t, ast.Attribute) and t.attr == "value" \
                and isinstance(t.value, ast.Name) and t.value.id == "info":
            return True
    return False


@dataclass
class Module:
    path: str
    tree: ast.Module
    functions: dict = field(default_factory=dict)   # name -> FunctionDef
    classes: dict = field(default_factory=dict)     # name -> ClassDef
    imports: dict = field(default_factory=dict)     # name -> module str
    #: Raw ``from``-import records ``(level, module, name, asname)`` —
    #: unlike :attr:`imports` these keep the relative level, so the
    #: concurrency pass can resolve ``from . import cache`` to the
    #: actual project file instead of guessing by bare name.
    import_records: list = field(default_factory=list)
    source_lines: tuple = ()                        # for pragma scans
    all_literal: list | None = None                 # None = absent
    all_dynamic: bool = False
    all_node: ast.AST | None = None
    substrate_names: set = field(default_factory=set)

    @property
    def is_substrate(self) -> bool:
        p = self.path.replace(os.sep, "/")
        return "/lapack77/" in p or p.endswith("/lapack77")

    @property
    def is_f77_compat(self) -> bool:
        """The ``F77_LAPACK`` compatibility layer keeps the FORTRAN 77
        convention — ``info`` is the return value and argument errors
        raise through XERBLA — so the F90 wrapper-contract rules do not
        apply to its ``la_*`` functions."""
        p = self.path.replace(os.sep, "/")
        return "/f77/" in p or p.endswith("/f77")

    def public_functions(self):
        return {n: f for n, f in self.functions.items()
                if not n.startswith("_")}

    def drivers(self):
        if self.is_f77_compat:
            return {}
        return {n: f for n, f in self.functions.items()
                if n.startswith("la_") and n not in NON_DRIVER_LA}


@dataclass
class DriverImpl:
    """Where a driver's contract logic actually lives.

    For plain drivers ``func`` is the driver itself and ``posmap`` maps
    each of its own parameters to its 1-based position.  For delegating
    drivers ``func`` is the helper and ``posmap`` maps *helper*
    parameter names to positions in the public driver's signature.
    """

    driver: str
    module: Module
    func: ast.FunctionDef
    impl_module: Module
    posmap: dict            # impl param name -> 1-based driver position
    delegated: bool = False
    callmap: dict = field(default_factory=dict)
    # callmap: helper param name -> substrate kernel bound at the
    # delegation site (``_indef_expert(srname, sytrf, sytrs, ...)``),
    # so laflow can resolve calls through those parameters.


def param_positions(func: ast.FunctionDef) -> dict:
    """1-based positions of all positional/keyword parameters."""
    args = list(func.args.posonlyargs) + list(func.args.args)
    return {a.arg: i + 1 for i, a in enumerate(args)}


def param_defaults(func: ast.FunctionDef) -> dict:
    """Map param name -> default AST node (positional params only)."""
    args = list(func.args.posonlyargs) + list(func.args.args)
    defaults = list(func.args.defaults)
    out = {}
    for a, d in zip(args[len(args) - len(defaults):], defaults):
        out[a.arg] = d
    for a, d in zip(func.args.kwonlyargs, func.args.kw_defaults):
        if d is not None:
            out[a.arg] = d
    return out


def body_statements(func: ast.FunctionDef):
    """Function body with a leading docstring stripped."""
    body = func.body
    if body and isinstance(body[0], ast.Expr) \
            and isinstance(body[0].value, ast.Constant) \
            and isinstance(body[0].value.value, str):
        return body[1:]
    return body


def alias_map(func: ast.FunctionDef, params: set) -> dict:
    """Map local names to the set of parameters they derive from.

    Handles the codebase's idioms: ``n = a.shape[0]``, ``t =
    trans.upper()``, ``m, n = a.shape``, ``ku = rows - 2 * kl - 1``
    (transitively through earlier aliases).  Conditional expressions
    contribute the union of both arms.
    """
    aliases = {p: {p} for p in params}
    assigns = sorted(
        (n for n in ast.walk(func) if isinstance(n, ast.Assign)),
        key=lambda n: n.lineno)

    def sources(node):
        out = set()
        for name in names_in(node):
            out |= aliases.get(name, set())
        return out

    for _ in range(2):   # two passes settle chains like rows -> ku
        for stmt in assigns:
            src = sources(stmt.value)
            if not src:
                continue
            for target in stmt.targets:
                elts = [target] if isinstance(target, ast.Name) \
                    else list(getattr(target, "elts", []))
                for elt in elts:
                    if isinstance(elt, ast.Name):
                        aliases.setdefault(elt.id, set())
                        aliases[elt.id] |= src
    return aliases


class Project:
    """All parsed modules plus cross-module lookup tables."""

    def __init__(self):
        self.modules: list[Module] = []
        self.functions: dict = {}        # name -> (Module, FunctionDef)
        self.always_reporting: set = set(REPORTER_SEED)
        self.sometimes_reporting: set = set()

    # -- loading ----------------------------------------------------

    @classmethod
    def load(cls, paths) -> "Project":
        proj = cls()
        for path in _expand(paths):
            proj._load_file(path)
        proj._classify_reporters()
        return proj

    def _load_file(self, path: str) -> None:
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            return
        mod = Module(path=path, tree=tree,
                     source_lines=tuple(source.splitlines()))
        for node in tree.body:
            if isinstance(node, ast.FunctionDef):
                mod.functions[node.name] = node
            elif isinstance(node, ast.ClassDef):
                mod.classes[node.name] = node
            elif isinstance(node, ast.Assign):
                for t in node.targets:
                    if isinstance(t, ast.Name) and t.id == "__all__":
                        mod.all_node = node
                        lits = _literal_strs(node.value)
                        if lits is None:
                            mod.all_dynamic = True
                        else:
                            mod.all_literal = lits
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                src = node.module or ""
                for alias in node.names:
                    name = alias.asname or alias.name
                    mod.imports[name] = src
                    mod.import_records.append(
                        (node.level, src, alias.name, name))
                    parts = src.split(".")
                    # Direct substrate imports and registry-dispatched
                    # proxies (repro.backends.kernels) both count as
                    # "the lapack77 call" for the call-ordering and
                    # catalogue rules (LA004/LA006).
                    if "lapack77" in parts or \
                            ("backends" in parts and
                             parts[-1] == "kernels"):
                        mod.substrate_names.add(name)
        self.modules.append(mod)
        for name, func in mod.functions.items():
            self.functions.setdefault(name, (mod, func))

    # -- driver implementations ------------------------------------

    def driver_impls(self):
        """Yield a :class:`DriverImpl` for every public driver."""
        for mod in self.modules:
            for name, func in sorted(mod.drivers().items()):
                yield self._resolve_impl(name, func, mod)

    def _resolve_impl(self, name, func, mod) -> DriverImpl:
        own = param_positions(func)
        body = body_statements(func)
        if len(body) == 1 and isinstance(body[0], ast.Return) \
                and isinstance(body[0].value, ast.Call):
            call = body[0].value
            helper = call_name(call)
            if helper and helper in self.functions \
                    and helper.startswith("_"):
                hmod, hfunc = self.functions[helper]
                posmap = self._map_call(call, hfunc, own)
                if posmap is not None:
                    callmap = self._map_callables(
                        call, hfunc, mod.substrate_names)
                    return DriverImpl(driver=name, module=mod, func=hfunc,
                                      impl_module=hmod, posmap=posmap,
                                      delegated=True, callmap=callmap)
        return DriverImpl(driver=name, module=mod, func=func,
                          impl_module=mod, posmap=own)

    @staticmethod
    def _map_call(call, hfunc, caller_positions) -> dict | None:
        """Map helper params to driver positions via the call site."""
        hparams = list(hfunc.args.posonlyargs) + list(hfunc.args.args)
        posmap = {}
        for i, arg in enumerate(call.args):
            if i >= len(hparams):
                return None
            if isinstance(arg, ast.Name) and arg.id in caller_positions:
                posmap[hparams[i].arg] = caller_positions[arg.id]
        for kw in call.keywords:
            if kw.arg and isinstance(kw.value, ast.Name) \
                    and kw.value.id in caller_positions:
                posmap[kw.arg] = caller_positions[kw.value.id]
        return posmap

    @staticmethod
    def _map_callables(call, hfunc, substrate_names) -> dict:
        """Map helper params to substrate kernels passed at the site."""
        hparams = list(hfunc.args.posonlyargs) + list(hfunc.args.args)
        callmap = {}
        for i, arg in enumerate(call.args):
            if i < len(hparams) and isinstance(arg, ast.Name) \
                    and arg.id in substrate_names:
                callmap[hparams[i].arg] = arg.id
        for kw in call.keywords:
            if kw.arg and isinstance(kw.value, ast.Name) \
                    and kw.value.id in substrate_names:
                callmap[kw.arg] = kw.value.id
        return callmap

    # -- reporter classification -----------------------------------

    def _classify_reporters(self) -> None:
        changed = True
        while changed:
            changed = False
            for name, (mod, func) in self.functions.items():
                if name in self.always_reporting:
                    continue
                if self._always_reports(func):
                    self.always_reporting.add(name)
                    changed = True
        changed = True
        while changed:
            changed = False
            for name, (mod, func) in self.functions.items():
                if name in self.sometimes_reporting:
                    continue
                if self._sometimes_reports(func):
                    self.sometimes_reporting.add(name)
                    changed = True

    def stmt_reports(self, stmt: ast.stmt) -> bool:
        """Does this simple statement unconditionally report?"""
        if is_info_value_store(stmt):
            return True
        if isinstance(stmt, (ast.Expr, ast.Assign, ast.Return,
                             ast.AugAssign, ast.AnnAssign, ast.Raise)):
            for node in ast.walk(stmt):
                if call_name(node) in self.always_reporting:
                    return True
        return False

    def expr_reports(self, expr: ast.AST | None, always_only=False) -> bool:
        if expr is None:
            return False
        pool = self.always_reporting if always_only \
            else self.always_reporting | self.sometimes_reporting
        return any(call_name(node) in pool for node in ast.walk(expr))

    def _always_reports(self, func: ast.FunctionDef) -> bool:
        ok, fell_through, reported = self._walk(body_statements(func),
                                                False)
        if not ok:
            return False
        return reported if fell_through else True

    def _walk(self, stmts, reported, on_uncovered=None):
        """Walk a block; return ``(all_exits_reported, fell_through,
        reported_at_end)``.

        ``on_uncovered`` (LA001) receives each ``return`` statement that
        exits without a report having been issued on its path.
        """
        ok = True
        for stmt in stmts:
            if isinstance(stmt, ast.Return):
                covered = reported or self.expr_reports(stmt.value,
                                                        always_only=True)
                if not covered and on_uncovered is not None:
                    on_uncovered(stmt)
                return ok and covered, False, reported
            if isinstance(stmt, ast.Raise):
                return ok, False, reported
            if isinstance(stmt, ast.If):
                if _is_info_guard(stmt):
                    # ``if info is not None: info.value = ...`` — the
                    # store half of the ERINFO protocol; counts as an
                    # unconditional report (erinfo itself raises only
                    # for error-class codes when info is omitted).
                    reported = True
                    continue
                branch_in = reported or self.expr_reports(stmt.test)
                b_ok, b_fell, b_rep = self._walk(stmt.body, branch_in,
                                                 on_uncovered)
                e_ok, e_fell, e_rep = self._walk(stmt.orelse, reported,
                                                 on_uncovered)
                ok = ok and b_ok and e_ok
                if not b_fell and not e_fell:
                    return ok, False, reported
                if b_fell and e_fell:
                    reported = b_rep and e_rep
                else:
                    reported = b_rep if b_fell else e_rep
                continue
            if isinstance(stmt, (ast.For, ast.While, ast.With, ast.Try)):
                for block in _sub_blocks(stmt):
                    b_ok, _, _ = self._walk(block, reported, on_uncovered)
                    ok = ok and b_ok
                continue
            if self.stmt_reports(stmt):
                reported = True
        return ok, True, reported

    def _sometimes_reports(self, func: ast.FunctionDef) -> bool:
        pool = self.always_reporting | self.sometimes_reporting
        for node in ast.walk(func):
            if call_name(node) in pool:
                return True
            if isinstance(node, ast.stmt) and is_info_value_store(node):
                return True
        return False


def _is_info_guard(stmt: ast.If) -> bool:
    """Match ``if info is not None: <only info.value stores>``."""
    test = stmt.test
    if not (isinstance(test, ast.Compare) and len(test.ops) == 1
            and isinstance(test.ops[0], (ast.IsNot, ast.NotEq))
            and isinstance(test.left, ast.Name)
            and test.left.id == "info"
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None):
        return False
    if stmt.orelse:
        return False
    return all(isinstance(s, (ast.Assign, ast.AugAssign, ast.AnnAssign))
               for s in stmt.body) \
        and any(is_info_value_store(s) for s in stmt.body)


def _sub_blocks(stmt):
    blocks = [getattr(stmt, "body", []), getattr(stmt, "orelse", [])]
    blocks.append(getattr(stmt, "finalbody", []))
    for handler in getattr(stmt, "handlers", []):
        blocks.append(handler.body)
    return [b for b in blocks if b]


def _literal_strs(node) -> list | None:
    if isinstance(node, (ast.List, ast.Tuple)):
        out = []
        for elt in node.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                out.append(elt.value)
            else:
                return None
        return out
    return None


def _expand(paths):
    seen = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(d for d in dirs
                                 if d not in ("__pycache__", ".git"))
                for name in sorted(files):
                    if name.endswith(".py"):
                        seen.append(os.path.join(root, name))
        elif path.endswith(".py"):
            seen.append(path)
    return seen
