"""``repro.analysis`` — lalint, the LAPACK90 wrapper-contract checker.

A self-contained, AST-based lint pass over the ``la_*`` driver catalogue
(the code under analysis is parsed, never imported).  See
``docs/USERS_GUIDE.md`` for the rule catalogue LA001–LA022 and the
baseline workflow.  Run it with::

    PYTHONPATH=src python -m repro.analysis src/repro
"""

from .findings import Baseline, Finding
from .model import Project
from .rules import RULES, run_rules
from .cli import main

__all__ = ["Baseline", "Finding", "Project", "RULES", "run_rules",
           "main"]
