"""Generalized least squares drivers: ``xGGLSE`` (equality-constrained
least squares) and ``xGGGLM`` (general Gauss–Markov linear model).

Both are implemented with the orthogonal null-space method built on this
package's QR machinery — mathematically the same factorization-based
elimination LAPACK performs through its GRQ/GQR kernels (DESIGN.md §7).
"""

from __future__ import annotations

import numpy as np

from ..blas.level3 import trsm
from ..errors import xerbla
from .qr import geqrf, ormqr, orgqr

__all__ = ["gglse", "ggglm"]


def gglse(a: np.ndarray, b: np.ndarray, c: np.ndarray, d: np.ndarray):
    """Solve the LSE problem: minimize ``‖c − A x‖₂`` subject to
    ``B x = d`` (``xGGLSE``).

    ``a`` is m×n, ``b`` is p×n with ``p ≤ n ≤ m+p``; B must have full row
    rank p and ``[A; B]`` full column rank n (LAPACK's conditions).
    Returns ``(x, info)``; ``a``, ``b``, ``c``, ``d`` are destroyed.
    """
    m, n = a.shape
    p = b.shape[0]
    if b.shape[1] != n:
        xerbla("GGLSE", 2, "A and B must have the same column count")
    if not (p <= n <= m + p):
        xerbla("GGLSE", 2, "need p <= n <= m+p")
    if c.shape[0] != m:
        xerbla("GGLSE", 3, "c must have m entries")
    if d.shape[0] != p:
        xerbla("GGLSE", 4, "d must have p entries")
    # Null-space method: QR of Bᴴ splits x into a constrained part and a
    # free part.  Bᴴ = Qb Rb  ⇒  B = Rbᴴ Qbᴴ; with y = Qbᴴ x:
    #   constraint:  Rbᴴ y₁ = d            (lower-triangular solve)
    #   objective:   min ‖c − (A Qb)[:, p:] y₂ − (A Qb)[:, :p] y₁‖.
    bh = np.conj(b.T).copy()
    taub = geqrf(bh)
    y1 = np.asarray(d, dtype=a.dtype).copy()
    rb = bh[:p, :p]
    # Solve Rbᴴ y1 = d (Rb upper ⇒ Rbᴴ lower).
    trsm(1, rb, y1[:, None], side="L", uplo="U", transa="C", diag="N")
    # Form A Qb by applying Qb from the right: (Qbᴴ Aᴴ)ᴴ.
    ah = np.conj(a.T).copy()
    ormqr("L", "C", bh, taub, ah)
    aq = np.conj(ah.T)  # = A Qb
    # Residual objective over the free variables y2.
    rhs = np.asarray(c, dtype=a.dtype).copy() - aq[:, :p] @ y1
    nfree = n - p
    if nfree > 0:
        afree = aq[:, p:].copy()
        bls = np.zeros((max(m, nfree), 1), dtype=a.dtype)
        bls[:m, 0] = rhs
        from .lls import gels
        gels(afree, bls)
        y2 = bls[:nfree, 0]
    else:
        y2 = np.zeros(0, dtype=a.dtype)
    y = np.concatenate([y1, y2])
    # x = Qb y.
    x = y.copy()
    ormqr("L", "N", bh, taub, x[:, None])
    return x, 0


def ggglm(a: np.ndarray, b: np.ndarray, d: np.ndarray):
    """Solve the GLM problem: minimize ``‖y‖₂`` subject to
    ``d = A x + B y`` (``xGGGLM``).

    ``a`` is n×m, ``b`` is n×p with ``m ≤ n ≤ m+p``; A must have full
    column rank m and ``[A B]`` full row rank n.
    Returns ``(x, y, info)``; inputs are destroyed.
    """
    n, m = a.shape
    p = b.shape[1]
    if b.shape[0] != n:
        xerbla("GGGLM", 2, "A and B must have the same row count")
    if not (m <= n <= m + p):
        xerbla("GGGLM", 2, "need m <= n <= m+p")
    if d.shape[0] != n:
        xerbla("GGGLM", 3, "d must have n entries")
    # QR of A splits the constraint: Qaᴴ d = [R; 0] x + Qaᴴ B y.
    taua = geqrf(a)
    dd = np.asarray(d, dtype=a.dtype).copy()
    ormqr("L", "C", a, taua, dd[:, None])
    bb = b.astype(a.dtype, copy=True)
    ormqr("L", "C", a, taua, bb)
    # Bottom block determines the minimum-norm y.
    nb = n - m
    if nb > 0:
        bbot = bb[m:, :].copy()
        yls = np.zeros((max(nb, p), 1), dtype=a.dtype)
        yls[:nb, 0] = dd[m:]
        from .lls import gels
        gels(bbot, yls)
        y = yls[:p, 0].copy()
    else:
        y = np.zeros(p, dtype=a.dtype)
    # Top block gives x: R x = (Qaᴴ d)[:m] − (Qaᴴ B)[:m] y.
    rhs = dd[:m] - bb[:m, :] @ y
    trsm(1, a[:m, :m], rhs[:, None], side="L", uplo="U", transa="N",
         diag="N")
    return rhs, y, 0
