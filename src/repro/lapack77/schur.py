"""Schur decomposition machinery: ``xHSEQR`` (Francis implicitly-shifted
QR on a Hessenberg matrix), ``xTREVC`` (eigenvectors from the Schur form),
``xTREXC`` (reordering), ``xTRSYL`` (Sylvester equations) and ``trsen``
(condition numbers of eigenvalue clusters / invariant subspaces).

The real path follows LAPACK's ``dlahqr`` (double-shift, small-bulge) and
the complex path ``zlahqr`` (single Wilkinson shift); both accumulate the
Schur vectors directly.
"""

from __future__ import annotations

import numpy as np

from ..errors import xerbla
from .givens import lanv2
from .householder import larfg
from .machine import lamch

__all__ = ["hseqr", "trevc", "trexc", "trsyl", "trsen",
           "schur_blocks", "eig_of_schur"]

_ITMAX_PER_EIG = 30


def hseqr(h: np.ndarray, z: np.ndarray | None = None, ilo: int = 0,
          ihi: int | None = None, wantt: bool = True):
    """Eigenvalues/Schur form of an upper Hessenberg matrix.

    ``h`` is transformed in place into (quasi-)triangular Schur form when
    ``wantt``; Schur vectors are accumulated into ``z`` when supplied
    (``z`` should enter as the orthogonal matrix reducing the original A,
    or the identity).

    Returns ``(w, info)`` — complex eigenvalues and the failure index
    (``info > 0``: eigenvalues ``info..ihi`` converged, the rest did not).
    """
    n = h.shape[0]
    if ihi is None:
        ihi = n - 1
    if np.iscomplexobj(h):
        return _zlahqr(h, z, ilo, ihi, wantt)
    return _dlahqr(h, z, ilo, ihi, wantt)


def _dlahqr(h: np.ndarray, z: np.ndarray | None, ilo: int, ihi: int,
            wantt: bool):
    n = h.shape[0]
    wr = np.zeros(n)
    wi = np.zeros(n)
    # Copy in any already-isolated eigenvalues.
    for j in list(range(0, ilo)) + list(range(ihi + 1, n)):
        wr[j] = h[j, j]
    if ilo > ihi:
        return wr + 1j * wi, 0
    ulp = lamch("P", h.dtype)
    smlnum = lamch("S", h.dtype) * ((ihi - ilo + 1) / ulp)
    i1 = 0 if wantt else ilo
    i2 = n - 1 if wantt else ihi
    i = ihi
    info = 0
    while i >= ilo:
        l = ilo
        converged = False
        for its in range(_ITMAX_PER_EIG + 1):
            # Look for a single small subdiagonal element.
            k = i
            while k > l:
                if abs(h[k, k - 1]) <= smlnum:
                    break
                tst = abs(h[k - 1, k - 1]) + abs(h[k, k])
                if tst == 0.0:
                    if k - 2 >= ilo:
                        tst += abs(h[k - 1, k - 2])
                    if k + 1 <= ihi:
                        tst += abs(h[k + 1, k])
                if abs(h[k, k - 1]) <= ulp * tst:
                    # Ahues–Tisseur deflation criterion.
                    ab = max(abs(h[k, k - 1]), abs(h[k - 1, k]))
                    ba = min(abs(h[k, k - 1]), abs(h[k - 1, k]))
                    aa = max(abs(h[k, k]),
                             abs(h[k - 1, k - 1] - h[k, k]))
                    bb = min(abs(h[k, k]),
                             abs(h[k - 1, k - 1] - h[k, k]))
                    s = aa + ab
                    if ba * (ab / s) <= max(smlnum, ulp * (bb * (aa / s))):
                        break
                k -= 1
            l = k
            if l > ilo:
                h[l, l - 1] = 0.0
            if l >= i - 1:
                converged = True
                break
            # Shifts.
            if its == 10:
                s = abs(h[l + 1, l]) + abs(h[l + 2, l + 1])
                h11 = 0.75 * s + h[l, l]
                h12 = -0.4375 * s
                h21 = s
                h22 = h11
            elif its == 20:
                s = abs(h[i, i - 1]) + abs(h[i - 1, i - 2])
                h11 = 0.75 * s + h[i, i]
                h12 = -0.4375 * s
                h21 = s
                h22 = h11
            else:
                h11 = h[i - 1, i - 1]
                h21 = h[i, i - 1]
                h12 = h[i - 1, i]
                h22 = h[i, i]
            s = abs(h11) + abs(h12) + abs(h21) + abs(h22)
            if s == 0.0:
                rt1r = rt1i = rt2r = rt2i = 0.0
            else:
                h11 /= s
                h21 /= s
                h12 /= s
                h22 /= s
                tr = (h11 + h22) / 2.0
                det = (h11 - tr) * (h22 - tr) - h12 * h21
                rtdisc = np.sqrt(abs(det))
                if det >= 0.0:
                    rt1r = tr * s
                    rt2r = rt1r
                    rt1i = rtdisc * s
                    rt2i = -rt1i
                else:
                    rt1r = tr + rtdisc
                    rt2r = tr - rtdisc
                    if abs(rt1r - h22) <= abs(rt2r - h22):
                        rt1r = rt1r * s
                        rt2r = rt1r
                    else:
                        rt2r = rt2r * s
                        rt1r = rt2r
                    rt1i = rt2i = 0.0
            # Look for two consecutive small subdiagonals.
            v = np.zeros(3)
            for m in range(i - 2, l - 1, -1):
                h21s = h[m + 1, m]
                s = abs(h[m, m] - rt2r) + abs(rt2i) + abs(h21s)
                h21s = h[m + 1, m] / s
                v[0] = (h21s * h[m, m + 1]
                        + (h[m, m] - rt1r) * ((h[m, m] - rt2r) / s)
                        - rt1i * (rt2i / s))
                v[1] = h21s * (h[m, m] + h[m + 1, m + 1] - rt1r - rt2r)
                v[2] = h21s * h[m + 2, m + 1]
                s = abs(v[0]) + abs(v[1]) + abs(v[2])
                v /= s
                if m == l:
                    break
                if (abs(h[m, m - 1]) * (abs(v[1]) + abs(v[2]))
                        <= ulp * abs(v[0]) * (abs(h[m - 1, m - 1])
                                              + abs(h[m, m])
                                              + abs(h[m + 1, m + 1]))):
                    break
            # Double-shift QR sweep.
            for k in range(m, i):
                nr = min(3, i - k + 1)
                if k > m:
                    v[:nr] = h[k: k + nr, k - 1]
                vwork = v[1:nr].copy()
                beta, t1 = larfg(v[0], vwork)
                v[1:nr] = vwork
                if k > m:
                    h[k, k - 1] = beta
                    h[k + 1, k - 1] = 0.0
                    if k < i - 1:
                        h[k + 2, k - 1] = 0.0
                elif m > l:
                    # (avoids underflow of v2/v3; see dlahqr)
                    h[k, k - 1] = h[k, k - 1] * (1.0 - t1)
                v2 = v[1]
                t2 = t1 * v2
                if nr == 3:
                    v3 = v[2]
                    t3 = t1 * v3
                    # Left.
                    cols = slice(k, i2 + 1)
                    ssum = h[k, cols] + v2 * h[k + 1, cols] \
                        + v3 * h[k + 2, cols]
                    h[k, cols] -= ssum * t1
                    h[k + 1, cols] -= ssum * t2
                    h[k + 2, cols] -= ssum * t3
                    # Right.
                    rows = slice(i1, min(k + 3, i) + 1)
                    ssum = h[rows, k] + v2 * h[rows, k + 1] \
                        + v3 * h[rows, k + 2]
                    h[rows, k] -= ssum * t1
                    h[rows, k + 1] -= ssum * t2
                    h[rows, k + 2] -= ssum * t3
                    if z is not None:
                        ssum = z[:, k] + v2 * z[:, k + 1] + v3 * z[:, k + 2]
                        z[:, k] -= ssum * t1
                        z[:, k + 1] -= ssum * t2
                        z[:, k + 2] -= ssum * t3
                else:
                    cols = slice(k, i2 + 1)
                    ssum = h[k, cols] + v2 * h[k + 1, cols]
                    h[k, cols] -= ssum * t1
                    h[k + 1, cols] -= ssum * t2
                    rows = slice(i1, min(k + 2, i) + 1)
                    ssum = h[rows, k] + v2 * h[rows, k + 1]
                    h[rows, k] -= ssum * t1
                    h[rows, k + 1] -= ssum * t2
                    if z is not None:
                        ssum = z[:, k] + v2 * z[:, k + 1]
                        z[:, k] -= ssum * t1
                        z[:, k + 1] -= ssum * t2
        if not converged:
            return wr + 1j * wi, i + 1
        if l == i:
            wr[i] = h[i, i]
            wi[i] = 0.0
            i -= 1
        else:
            # 2×2 block: standardize.
            (h[i - 1, i - 1], h[i - 1, i], h[i, i - 1], h[i, i],
             rt1r, rt1i, rt2r, rt2i, cs, sn) = lanv2(
                h[i - 1, i - 1], h[i - 1, i], h[i, i - 1], h[i, i])
            wr[i - 1], wi[i - 1] = rt1r, rt1i
            wr[i], wi[i] = rt2r, rt2i
            if wantt and i < i2:
                row1 = h[i - 1, i + 1:i2 + 1].copy()
                h[i - 1, i + 1:i2 + 1] = cs * row1 + sn * h[i, i + 1:i2 + 1]
                h[i, i + 1:i2 + 1] = cs * h[i, i + 1:i2 + 1] - sn * row1
            if wantt and i1 < i - 1:
                col1 = h[i1:i - 1, i - 1].copy()
                h[i1:i - 1, i - 1] = cs * col1 + sn * h[i1:i - 1, i]
                h[i1:i - 1, i] = cs * h[i1:i - 1, i] - sn * col1
            if z is not None:
                col1 = z[:, i - 1].copy()
                z[:, i - 1] = cs * col1 + sn * z[:, i]
                z[:, i] = cs * z[:, i] - sn * col1
            i -= 2
    return wr + 1j * wi, 0


def _cabs1(z):
    return abs(z.real) + abs(z.imag)


def _zlahqr(h: np.ndarray, z: np.ndarray | None, ilo: int, ihi: int,
            wantt: bool):
    """Complex single-shift (Wilkinson) implicit QR.  Follows ``zlahqr``'s
    deflation and shift strategy; subdiagonal entries are kept general
    complex with magnitude-based tests (self-consistent variant)."""
    n = h.shape[0]
    w = np.zeros(n, dtype=np.complex128)
    for j in list(range(0, ilo)) + list(range(ihi + 1, n)):
        w[j] = h[j, j]
    if ilo > ihi:
        return w, 0
    ulp = lamch("P", h.dtype)
    smlnum = lamch("S", h.dtype) * ((ihi - ilo + 1) / ulp)
    i1 = 0 if wantt else ilo
    i2 = n - 1 if wantt else ihi
    i = ihi
    while i >= ilo:
        l = ilo
        converged = False
        for its in range(_ITMAX_PER_EIG + 1):
            k = i
            while k > l:
                if _cabs1(h[k, k - 1]) <= smlnum:
                    break
                tst = _cabs1(h[k - 1, k - 1]) + _cabs1(h[k, k])
                if tst == 0.0:
                    if k - 2 >= ilo:
                        tst += _cabs1(h[k - 1, k - 2])
                    if k + 1 <= ihi:
                        tst += _cabs1(h[k + 1, k])
                if _cabs1(h[k, k - 1]) <= ulp * tst:
                    ab = max(_cabs1(h[k, k - 1]), _cabs1(h[k - 1, k]))
                    ba = min(_cabs1(h[k, k - 1]), _cabs1(h[k - 1, k]))
                    aa = max(_cabs1(h[k, k]),
                             _cabs1(h[k - 1, k - 1] - h[k, k]))
                    bb = min(_cabs1(h[k, k]),
                             _cabs1(h[k - 1, k - 1] - h[k, k]))
                    s = aa + ab
                    if ba * (ab / s) <= max(smlnum, ulp * (bb * (aa / s))):
                        break
                k -= 1
            l = k
            if l > ilo:
                h[l, l - 1] = 0.0
            if l == i:
                converged = True
                break
            # Wilkinson shift (with zlahqr's exceptional-shift schedule).
            if its == 10:
                s = 0.75 * abs(h[l + 1, l])
                t = s + h[l, l]
            elif its == 20:
                s = 0.75 * abs(h[i, i - 1])
                t = s + h[i, i]
            else:
                t = h[i, i]
                u = np.sqrt(h[i - 1, i]) * np.sqrt(h[i, i - 1])
                s = _cabs1(u)
                if s != 0.0:
                    x = 0.5 * (h[i - 1, i - 1] - t)
                    sx = _cabs1(x)
                    s = max(s, sx)
                    y = s * np.sqrt((x / s) ** 2 + (u / s) ** 2)
                    if sx > 0.0:
                        if (x.real / sx) * y.real + (x.imag / sx) * y.imag \
                                < 0.0:
                            y = -y
                    t = t - u * (u / (x + y))
            # Look for two consecutive small subdiagonals.
            v = np.zeros(2, dtype=np.complex128)
            found = False
            for m in range(i - 1, l, -1):
                h11 = h[m, m]
                h22 = h[m + 1, m + 1]
                h11s = h11 - t
                h21 = h[m + 1, m]
                s = _cabs1(h11s) + _cabs1(h21)
                v[0] = h11s / s
                v[1] = h21 / s
                if _cabs1(h[m, m - 1]) * _cabs1(v[1]) <= ulp * (
                        _cabs1(v[0]) * (_cabs1(h11) + _cabs1(h22))):
                    found = True
                    break
            if not found:
                m = l
                h11s = h[l, l] - t
                h21 = h[l + 1, l]
                s = _cabs1(h11s) + _cabs1(h21)
                v[0] = h11s / s
                v[1] = h21 / s
            # Single-shift QR sweep (Hᴴ from the left, H from the right;
            # larfg's H satisfies Hᴴ[v0; v1] = [beta; 0]).
            for k in range(m, i):
                if k > m:
                    v[0] = h[k, k - 1]
                    v[1] = h[k + 1, k - 1]
                vtail = v[1:].copy()
                beta, t1 = larfg(v[0], vtail)
                v[1:] = vtail
                if k > m:
                    h[k, k - 1] = beta
                    h[k + 1, k - 1] = 0.0
                elif m > l:
                    # Off-sweep column m-1 only sees the row-m update; the
                    # (negligible) fill below it is dropped, as in LAPACK.
                    h[m, m - 1] = h[m, m - 1] * (1.0 - np.conj(t1))
                v2 = v[1]
                cols = slice(k, i2 + 1)
                ssum = np.conj(t1) * (h[k, cols]
                                      + np.conj(v2) * h[k + 1, cols])
                h[k, cols] -= ssum
                h[k + 1, cols] -= ssum * v2
                rows = slice(i1, min(k + 2, i) + 1)
                ssum = t1 * (h[rows, k] + v2 * h[rows, k + 1])
                h[rows, k] -= ssum
                h[rows, k + 1] -= ssum * np.conj(v2)
                if z is not None:
                    ssum = t1 * (z[:, k] + v2 * z[:, k + 1])
                    z[:, k] -= ssum
                    z[:, k + 1] -= ssum * np.conj(v2)
        if not converged:
            return w, i + 1
        w[i] = h[i, i]
        i -= 1
    return w, 0


def schur_blocks(t: np.ndarray) -> list[tuple[int, int]]:
    """Partition a real quasi-triangular (or complex triangular) Schur
    matrix into its diagonal blocks.  Returns a list of (start, size)."""
    n = t.shape[0]
    blocks = []
    j = 0
    while j < n:
        if j < n - 1 and not np.iscomplexobj(t) and t[j + 1, j] != 0:
            blocks.append((j, 2))
            j += 2
        else:
            blocks.append((j, 1))
            j += 1
    return blocks


def eig_of_schur(t: np.ndarray) -> np.ndarray:
    """Eigenvalues read off a (quasi-)triangular Schur matrix."""
    n = t.shape[0]
    w = np.zeros(n, dtype=np.complex128)
    for start, size in schur_blocks(t):
        if size == 1:
            w[start] = t[start, start]
        else:
            a, b = t[start, start], t[start, start + 1]
            c, d = t[start + 1, start], t[start + 1, start + 1]
            tr = (a + d) / 2.0
            disc = np.sqrt(complex(((a - d) / 2.0) ** 2 + b * c))
            w[start] = tr + disc
            w[start + 1] = tr - disc
    return w


def _solve_shifted_quasi_tri(t: np.ndarray, lam: complex, rhs: np.ndarray,
                             kend: int, eps_floor: float) -> np.ndarray:
    """Solve ``(T[0:kend, 0:kend] − lam·I) y = rhs`` by block back
    substitution over the quasi-triangular structure (complex arithmetic).
    Near-singular diagonal blocks are perturbed by ``eps_floor`` (LAPACK's
    ``SMIN`` safeguard in xLALN2/xLATRS)."""
    y = np.asarray(rhs, dtype=np.complex128).copy()
    blocks = [b for b in schur_blocks(t) if b[0] < kend]
    for start, size in reversed(blocks):
        if size == 1:
            den = t[start, start] - lam
            if abs(den) < eps_floor:
                den = eps_floor
            y[start] = y[start] / den
            if start > 0:
                y[:start] -= t[:start, start] * y[start]
        else:
            a = np.array(
                [[t[start, start] - lam, t[start, start + 1]],
                 [t[start + 1, start], t[start + 1, start + 1] - lam]],
                dtype=np.complex128)
            det = a[0, 0] * a[1, 1] - a[0, 1] * a[1, 0]
            if abs(det) < eps_floor * max(_cabs1(a).max(), eps_floor):
                det = eps_floor
            b0, b1 = y[start], y[start + 1]
            y[start] = (a[1, 1] * b0 - a[0, 1] * b1) / det
            y[start + 1] = (a[0, 0] * b1 - a[1, 0] * b0) / det
            if start > 0:
                y[:start] -= (t[:start, start] * y[start]
                              + t[:start, start + 1] * y[start + 1])
    return y


def trevc(t: np.ndarray, z: np.ndarray | None = None, side: str = "R"):
    """Eigenvectors of a (quasi-)triangular Schur matrix (``xTREVC``).

    With ``z`` supplied the vectors are back-transformed (eigenvectors of
    the original matrix).  Returns an n×n *complex* matrix of unit-norm
    eigenvectors (column *j* pairs with eigenvalue *j* of the Schur form);
    for real input, conjugate pairs produce conjugate columns — the
    Pythonic rendering of LAPACK's packed real representation.

    ``side``: 'R' right eigenvectors (``T v = λ v``), 'L' left
    (``wᴴ T = λ wᴴ``).
    """
    s = side.upper()
    if s not in ("R", "L"):
        xerbla("TREVC", 1, f"side={side!r}")
    n = t.shape[0]
    w = eig_of_schur(t)
    vecs = np.zeros((n, n), dtype=np.complex128)
    eps = lamch("E", t.dtype)
    tnorm = float(np.abs(t).max()) if n else 0.0
    floor = max(eps * max(tnorm, 1.0), lamch("S", t.dtype))
    if s == "L":
        # Left vectors of T are right vectors of Tᴴ; Tᴴ is lower
        # quasi-triangular — flip to reuse the back-substitution.
        flip = slice(None, None, -1)
        tf = np.conj(t.T)[flip, flip]
        zvf = trevc(tf, None, side="R")
        vecs = zvf[flip, :]
        # Column j of zvf pairs with eigenvalue conj(w[n-1-j]); reorder.
        vecs = vecs[:, ::-1]
        if z is not None:
            vecs = z.astype(np.complex128) @ vecs
        # Normalize.
        for j in range(n):
            nrm = np.linalg.norm(vecs[:, j])
            if nrm > 0:
                vecs[:, j] /= nrm
        return vecs
    for start, size in schur_blocks(t):
        if size == 1:
            ki = start
            lam = w[ki]
            y = np.zeros(n, dtype=np.complex128)
            y[ki] = 1.0
            if ki > 0:
                rhs = -np.asarray(t[:ki, ki], dtype=np.complex128)
                y[:ki] = _solve_shifted_quasi_tri(t, lam, rhs, ki, floor)
            vecs[:, ki] = y
        else:
            # 2×2 block: eigenvector inside the block, then substitute up.
            k1, k2 = start, start + 1
            for ki, lam in ((k1, w[k1]), (k2, w[k2])):
                a11 = t[k1, k1] - lam
                a12 = t[k1, k2]
                a21 = t[k2, k1]
                a22 = t[k2, k2] - lam
                # Null vector of the 2×2 (choose the better-scaled row).
                if max(abs(a11), abs(a12)) >= max(abs(a21), abs(a22)):
                    vb = np.array([-a12, a11], dtype=np.complex128)
                else:
                    vb = np.array([-a22, a21], dtype=np.complex128)
                if np.all(vb == 0):
                    vb = np.array([1.0, 0.0], dtype=np.complex128)
                y = np.zeros(n, dtype=np.complex128)
                y[k1], y[k2] = vb
                if k1 > 0:
                    rhs = -(np.asarray(t[:k1, k1], dtype=np.complex128)
                            * vb[0]
                            + np.asarray(t[:k1, k2], dtype=np.complex128)
                            * vb[1])
                    y[:k1] = _solve_shifted_quasi_tri(t, lam, rhs, k1,
                                                      floor)
                vecs[:, ki] = y
    if z is not None:
        vecs = z.astype(np.complex128) @ vecs
    for j in range(n):
        nrm = np.linalg.norm(vecs[:, j])
        if nrm > 0:
            vecs[:, j] /= nrm
            # Determinism: rotate the largest component to the positive
            # real axis (zgeev-style normalization).
            k = int(np.argmax(np.abs(vecs[:, j])))
            piv = vecs[k, j]
            if piv != 0:
                vecs[:, j] *= np.conj(piv) / abs(piv)
    return vecs


def _direct_swap(t: np.ndarray, q: np.ndarray | None, j1: int, n1: int,
                 n2: int) -> int:
    """Swap adjacent diagonal blocks T11 (n1×n1, at j1) and T22 (n2×n2)
    of a Schur matrix by the direct method (LAPACK ``xLAEXC``):

    solve the small Sylvester equation ``T11 X − X T22 = γ T12``, then the
    QR factorization of ``[−X; γI]`` gives the orthogonal transformation
    that exchanges the blocks.  Returns 0 on success, 1 if the swap is too
    ill-conditioned.
    """
    from .qr import geqrf, ormqr
    n = t.shape[0]
    j2 = j1 + n1
    nd = n1 + n2
    t11 = t[j1:j2, j1:j2].copy()
    t12 = t[j1:j2, j2:j1 + nd].copy()
    t22 = t[j2:j1 + nd, j2:j1 + nd].copy()
    # Scale for safety.
    gamma = max(float(np.abs(t11).max(initial=0.0)),
                float(np.abs(t22).max(initial=0.0)),
                float(np.abs(t12).max(initial=0.0)), 1.0)
    # Solve T11 X - X T22 = gamma*T12 via the Kronecker form (nd <= 4).
    eye1 = np.eye(n1, dtype=t.dtype)
    eye2 = np.eye(n2, dtype=t.dtype)
    kmat = np.kron(eye2, t11) - np.kron(t22.T, eye1)
    rhs = (gamma * t12).reshape(-1, order="F")
    try:
        xvec = np.linalg.solve(kmat, rhs)
    except np.linalg.LinAlgError:
        return 1
    x = xvec.reshape((n1, n2), order="F")
    # QR of [−X; γI] — its Q moves T22's invariant subspace to the front.
    m = np.zeros((nd, n2), dtype=t.dtype)
    m[:n1, :] = -x
    m[n1:, :] = gamma * eye2
    tau = geqrf(m)
    # Apply Qᴴ…Q to the full matrix rows/columns j1..j1+nd-1.
    block_rows = t[j1:j1 + nd, :]
    ormqr("L", "C", m, tau, block_rows)
    # Right-multiplication by Q == left-multiplication of the transpose
    # by Qᵀ; handle conjugation by working on the conjugate.
    if np.iscomplexobj(t):
        tmp = np.conj(t[:, j1:j1 + nd]).T.copy()
        ormqr("L", "C", m, tau, tmp)
        t[:, j1:j1 + nd] = np.conj(tmp).T
    else:
        tmp = t[:, j1:j1 + nd].T.copy()
        ormqr("L", "C", m, tau, tmp)
        t[:, j1:j1 + nd] = tmp.T
    if q is not None:
        if np.iscomplexobj(q):
            tmp = np.conj(q[:, j1:j1 + nd]).T.copy()
            ormqr("L", "C", m, tau, tmp)
            q[:, j1:j1 + nd] = np.conj(tmp).T
        else:
            tmp = q[:, j1:j1 + nd].T.copy()
            ormqr("L", "C", m, tau, tmp)
            q[:, j1:j1 + nd] = tmp.T
    # Clean the (now zero) lower-left block and re-standardize.
    t[j1 + n2: j1 + nd, j1: j1 + n2] = 0
    _restandardize(t, q, j1, n2)
    _restandardize(t, q, j1 + n2, n1)
    return 0


def _restandardize(t: np.ndarray, q: np.ndarray | None, j: int,
                   size: int) -> None:
    """Re-standardize a 2×2 diagonal block after a swap (real case)."""
    if size != 2 or np.iscomplexobj(t):
        return
    n = t.shape[0]
    (t[j, j], t[j, j + 1], t[j + 1, j], t[j + 1, j + 1],
     *_rest, cs, sn) = lanv2(t[j, j], t[j, j + 1],
                             t[j + 1, j], t[j + 1, j + 1])
    if j + 2 < n:
        row1 = t[j, j + 2:].copy()
        t[j, j + 2:] = cs * row1 + sn * t[j + 1, j + 2:]
        t[j + 1, j + 2:] = cs * t[j + 1, j + 2:] - sn * row1
    if j > 0:
        col1 = t[:j, j].copy()
        t[:j, j] = cs * col1 + sn * t[:j, j + 1]
        t[:j, j + 1] = cs * t[:j, j + 1] - sn * col1
    if q is not None:
        col1 = q[:, j].copy()
        q[:, j] = cs * col1 + sn * q[:, j + 1]
        q[:, j + 1] = cs * q[:, j + 1] - sn * col1


def trexc(t: np.ndarray, q: np.ndarray | None, ifst: int, ilst: int) -> int:
    """Move the diagonal block containing row ``ifst`` of a Schur matrix
    to row ``ilst`` by a sequence of adjacent swaps (``xTREXC``; 0-based).

    Returns ``info`` (1 = a swap was refused as too ill-conditioned;
    the matrix is left in a valid, partially-reordered Schur form).
    """
    n = t.shape[0]
    if not (0 <= ifst < n and 0 <= ilst < n):
        xerbla("TREXC", 3, "block index out of range")
    blocks = schur_blocks(t)
    starts = [b[0] for b in blocks]

    def block_of(row):
        for idx in range(len(starts) - 1, -1, -1):
            if starts[idx] <= row:
                return idx
        return 0

    bi = block_of(ifst)
    bl = block_of(ilst)
    while bi != bl:
        blocks = schur_blocks(t)
        starts = [b[0] for b in blocks]
        bi = block_of(min(ifst, n - 1))
        bl = block_of(min(ilst, n - 1))
        if bi == bl:
            break
        if bi < bl:
            j1, n1 = blocks[bi]
            n2 = blocks[bi + 1][1]
            if _direct_swap(t, q, j1, n1, n2):
                return 1
            ifst = j1 + n2
        else:
            j1, n1 = blocks[bi - 1]
            n2 = blocks[bi][1]
            if _direct_swap(t, q, j1, n1, n2):
                return 1
            ifst = j1
    return 0


def trsyl(a: np.ndarray, b: np.ndarray, c: np.ndarray, isgn: int = 1,
          trana: str = "N", tranb: str = "N"):
    """Solve the Sylvester equation ``op(A) X + isgn·X op(B) = scale·C``
    with A, B (quasi-)triangular Schur matrices (``xTRSYL``).

    The solution overwrites ``c``.  Returns ``(scale, info)`` — here
    always ``scale = 1``; ``info = 1`` flags perturbed near-common
    eigenvalues.

    Block Bartels–Stewart: iterate over the diagonal-block partition of A
    (bottom-up for op='N') and B (left-to-right for op='N'), solving the
    small (≤ 4×4) Kronecker systems directly.
    """
    ta, tb = trana.upper(), tranb.upper()
    if ta not in ("N", "T", "C") or tb not in ("N", "T", "C"):
        xerbla("TRSYL", 1, "bad trans option")
    m = a.shape[0]
    n = b.shape[0]
    opa = {"N": a, "T": a.T, "C": np.conj(a.T)}[ta]
    opb = {"N": b, "T": b.T, "C": np.conj(b.T)}[tb]
    ablocks = schur_blocks(a)
    bblocks = schur_blocks(b)
    # For op(A) upper triangular: solve rows bottom-up; op(A)='T' makes it
    # lower triangular: top-down.  Similarly for B columns.
    a_order = list(reversed(ablocks)) if ta == "N" else list(ablocks)
    b_order = list(bblocks) if tb == "N" else list(reversed(bblocks))
    info = 0
    eps = lamch("E", a.dtype)
    smin = eps * max(float(np.abs(a).max(initial=0.0)),
                     float(np.abs(b).max(initial=0.0)), 1.0)
    for jb, (js, jn) in enumerate(b_order):
        jsl = slice(js, js + jn)
        for ia, (is_, imn) in enumerate(a_order):
            isl = slice(is_, is_ + imn)
            rhs = c[isl, jsl].copy()
            # Subtract contributions from already-solved blocks.
            if ta == "N":
                if is_ + imn < m:
                    rhs -= opa[isl, is_ + imn:] @ c[is_ + imn:, jsl]
            else:
                if is_ > 0:
                    rhs -= opa[isl, :is_] @ c[:is_, jsl]
            if tb == "N":
                if js > 0:
                    rhs -= isgn * (c[isl, :js] @ opb[:js, jsl])
            else:
                if js + jn < n:
                    rhs -= isgn * (c[isl, js + jn:] @ opb[js + jn:, jsl])
            a_blk = opa[isl, isl]
            b_blk = opb[jsl, jsl]
            kmat = (np.kron(np.eye(jn, dtype=c.dtype), a_blk)
                    + isgn * np.kron(b_blk.T, np.eye(imn, dtype=c.dtype)))
            # Guard near-singularity (common eigenvalues).
            d = np.abs(np.diag(kmat))
            if np.any(d < smin):
                kmat = kmat + np.eye(kmat.shape[0], dtype=c.dtype) * smin
                info = 1
            sol = np.linalg.solve(kmat, rhs.reshape(-1, order="F"))
            c[isl, jsl] = sol.reshape((imn, jn), order="F")
    return 1.0, info


def trsen(t: np.ndarray, q: np.ndarray | None, select: np.ndarray,
          job: str = "B"):
    """Reorder the Schur factorization so the selected eigenvalues are
    leading, and estimate condition numbers (``xTRSEN``).

    ``select`` is a boolean mask over the eigenvalue positions (a 2×2
    block is moved when either of its positions is selected).

    Returns ``(w, sdim, s_cond, sep, info)``: reordered eigenvalues, the
    dimension of the selected invariant subspace, the reciprocal condition
    number of the average selected eigenvalue (``s_cond``), and the
    separation estimate for the invariant subspace (``sep``).
    """
    n = t.shape[0]
    select = np.asarray(select, dtype=bool)
    info = 0
    # Bubble the selected blocks to the front, preserving order.
    dest = 0
    guard = 0
    while True:
        guard += 1
        if guard > 4 * n + 16:
            break
        blocks = schur_blocks(t)
        moved = False
        for start, size in blocks:
            if start >= dest and np.any(select[start:start + size]):
                if start != dest:
                    if trexc(t, q, start, dest):
                        info = 1
                    # The blocks formerly in dest..start-1 slid right by
                    # `size`; rotate the mask to keep flags aligned.
                    seg = select[dest:start + size].copy()
                    select[dest:dest + size] = seg[start - dest:]
                    select[dest + size:start + size] = seg[:start - dest]
                # The moved block now sits at dest; clear its flags so
                # later passes skip it.
                select[dest:dest + size] = False
                dest += size
                moved = True
                break
        if not moved:
            break
    sdim = dest
    w = eig_of_schur(t)
    s_cond = 1.0
    sep = 0.0
    if 0 < sdim < n:
        t11 = t[:sdim, :sdim]
        t22 = t[sdim:, sdim:]
        t12 = t[:sdim, sdim:].copy()
        # Solve T11 R − R T22 = γ T12 to get the spectral projector norm.
        rr = t12.copy()
        trsyl(t11, t22, rr, isgn=-1)
        rnorm = float(np.linalg.norm(rr))
        s_cond = 1.0 / np.sqrt(1.0 + rnorm * rnorm)
        # sep(T11, T22) via a 1-norm estimate of the inverse Sylvester map.
        from .lacon import lacon

        def sylvec(x):
            cmat = x.reshape((sdim, n - sdim), order="F").astype(
                t.dtype, copy=True)
            trsyl(t11, t22, cmat, isgn=-1)
            return cmat.reshape(-1, order="F")

        def sylvec_h(x):
            cmat = x.reshape((sdim, n - sdim), order="F").astype(
                t.dtype, copy=True)
            trsyl(t11, t22, cmat, isgn=-1, trana="C", tranb="C")
            return cmat.reshape(-1, order="F")

        est = lacon(sdim * (n - sdim), sylvec, sylvec_h, dtype=t.dtype)
        sep = 1.0 / est if est > 0 else 0.0
    return w, sdim, s_cond, sep, info
