"""LU factorization family: ``xGETRF/xGETRS/xGESV/xGETRI`` plus condition
estimation (``xGECON``), iterative refinement (``xGERFS``) and
equilibration (``xGEEQU``/``xLAQGE``).

This is the substrate under the paper's running example ``LA_GESV`` and
under the expert driver ``LA_GESVX``.  The blocked right-looking ``getrf``
realizes the Level-3-BLAS reorganization the paper's §1.1 describes: panel
factorizations (``getf2``) plus ``trsm``/``gemm`` trailing updates.
"""

from __future__ import annotations

import numpy as np

from ..config import ilaenv
from ..errors import xerbla
from ..faults import pivot_fault
from ..blas.level3 import trsm
from .lacon import lacon
from .lautil import laswp
from .machine import lamch

__all__ = ["getf2", "getrf", "getrs", "gesv", "getri", "gecon", "gerfs",
           "geequ", "laqge"]


def getf2(a: np.ndarray, ipiv: np.ndarray | None = None):
    """Unblocked LU with partial pivoting of an m×n matrix (in place).

    Returns ``(ipiv, info)`` — 0-based pivot indices and the LAPACK info
    code (``info = i+1 > 0`` means ``U[i, i]`` is exactly zero).
    """
    m, n = a.shape
    k = min(m, n)
    if ipiv is None:
        ipiv = np.zeros(k, dtype=np.int64)
    info = 0
    for j in range(k):
        if pivot_fault("getf2", j):
            a[j:, j] = 0
        col = a[j:, j]
        p = j + int(np.argmax(np.abs(col.real) + np.abs(col.imag)
                              if np.iscomplexobj(col) else np.abs(col)))
        ipiv[j] = p
        if a[p, j] != 0:
            if p != j:
                a[[j, p], :] = a[[p, j], :]
            if j < m - 1:
                a[j + 1:, j] /= a[j, j]
                if j < n - 1:
                    a[j + 1:, j + 1:] -= np.outer(a[j + 1:, j], a[j, j + 1:])
        elif info == 0:
            info = j + 1
    return ipiv, info


def getrf(a: np.ndarray):
    """Blocked LU factorization with partial pivoting, ``A = P L U``
    (in place).

    Returns ``(ipiv, info)``.  The paper's ``LA_GETRF`` sits directly on
    this routine.
    """
    m, n = a.shape
    k = min(m, n)
    ipiv = np.zeros(k, dtype=np.int64)
    nb = ilaenv(1, "getrf")
    if nb <= 1 or nb >= k:
        return getf2(a, ipiv)
    info = 0
    for j in range(0, k, nb):
        jb = min(nb, k - j)
        # Factor the current panel.
        panel = a[j:, j:j + jb]
        piv, pinfo = getf2(panel)
        if pinfo != 0 and info == 0:
            info = pinfo + j
        ipiv[j:j + jb] = piv + j
        # Apply interchanges to the columns outside the panel.
        for i in range(jb):
            p = ipiv[j + i]
            if p != j + i:
                a[[j + i, p], :j] = a[[p, j + i], :j]
                if j + jb < n:
                    a[[j + i, p], j + jb:] = a[[p, j + i], j + jb:]
        if j + jb < n:
            # U12 := L11^{-1} A12  (unit lower triangular solve)
            trsm(1, a[j:j + jb, j:j + jb], a[j:j + jb, j + jb:],
                 side="L", uplo="L", transa="N", diag="U")
            if j + jb < m:
                # Trailing update A22 -= L21 U12
                a[j + jb:, j + jb:] -= a[j + jb:, j:j + jb] @ a[j:j + jb, j + jb:]
    return ipiv, info


def getrs(a: np.ndarray, ipiv: np.ndarray, b: np.ndarray,
          trans: str = "N") -> int:
    """Solve ``op(A) X = B`` from the ``getrf`` factors (B in place).

    ``trans``: 'N' (A), 'T' (Aᵀ) or 'C' (Aᴴ).  Returns ``info`` (always 0;
    argument errors raise).
    """
    t = trans.upper()
    if t not in ("N", "T", "C"):
        xerbla("GETRS", 1, f"trans={trans!r}")
    n = a.shape[0]
    if a.shape[1] != n:
        xerbla("GETRS", 2, "matrix must be square")
    if b.shape[0] != n:
        xerbla("GETRS", 3, "dimension mismatch between A and B")
    bmat = b if b.ndim == 2 else b[:, None]
    if t == "N":
        laswp(bmat, ipiv)
        trsm(1, a, bmat, side="L", uplo="L", transa="N", diag="U")
        trsm(1, a, bmat, side="L", uplo="U", transa="N", diag="N")
    else:
        trsm(1, a, bmat, side="L", uplo="U", transa=t, diag="N")
        trsm(1, a, bmat, side="L", uplo="L", transa=t, diag="U")
        laswp(bmat, ipiv, forward=False)
    return 0


def gesv(a: np.ndarray, b: np.ndarray):
    """Solve ``A X = B`` by LU with partial pivoting (``xGESV``).

    ``a`` is overwritten by its LU factors, ``b`` by the solution.
    Returns ``(ipiv, info)``; a positive ``info`` leaves ``b`` unsolved,
    matching LAPACK.
    """
    n = a.shape[0]
    if a.shape[1] != n:
        xerbla("GESV", 1, "matrix must be square")
    if b.shape[0] != n:
        xerbla("GESV", 2, "dimension mismatch between A and B")
    ipiv, info = getrf(a)
    if info == 0:
        getrs(a, ipiv, b)
    return ipiv, info


def getri(a: np.ndarray, ipiv: np.ndarray, lwork: int | None = None) -> int:
    """Compute ``A⁻¹`` from the ``getrf`` factors (in place).

    ``lwork`` mirrors LAPACK's workspace length: when it allows fewer than
    ``n·nb`` elements the routine degrades to column-at-a-time updates
    (the behaviour the paper's LA_GETRI listing preserves with its -200
    warning path).  Returns ``info`` (``i+1`` if ``U[i, i] == 0``).
    """
    n = a.shape[0]
    if a.shape[1] != n:
        xerbla("GETRI", 1, "matrix must be square")
    if len(ipiv) < n:
        xerbla("GETRI", 2, "pivot vector too short")
    if n == 0:
        return 0
    diag = a.diagonal()
    zeros = np.where(diag == 0)[0]
    if zeros.size:
        return int(zeros[0]) + 1
    # Invert U in place.
    from .triangular import trti2
    trti2(a, uplo="U", diag="N")
    nb = ilaenv(1, "getri")
    if lwork is not None and lwork < n * nb:
        nb = max(1, (lwork or n) // max(n, 1))
    # Solve inv(A) L = inv(U) for inv(A), sweeping blocks right to left.
    nb = max(1, min(nb, n))
    j = ((n - 1) // nb) * nb
    while j >= 0:
        jb = min(nb, n - j)
        # Copy the strictly-lower part of columns j..j+jb-1 (the L block),
        # then zero it in A.
        work = np.zeros((n, jb), dtype=a.dtype)
        for jj in range(jb):
            col = j + jj
            if col + 1 < n:
                work[col + 1:, jj] = a[col + 1:, col]
                a[col + 1:, col] = 0
        # Update with the columns to the right, then the in-block part.
        if j + jb < n:
            a[:, j:j + jb] -= a[:, j + jb:] @ work[j + jb:, :]
        # In-block: solve A(:, j:j+jb) := A(:, j:j+jb) inv(L_block)
        trsm(1, work[j:j + jb, :], a[:, j:j + jb],
             side="R", uplo="L", transa="N", diag="U")
        j -= nb
    # Apply column interchanges: columns j and ipiv[j], last to first.
    for j in range(n - 1, -1, -1):
        p = ipiv[j]
        if p != j:
            a[:, [j, p]] = a[:, [p, j]]
    return 0


def gecon(a: np.ndarray, anorm: float, norm: str = "1"):
    """Estimate the reciprocal condition number from ``getrf`` factors.

    Returns ``(rcond, info)``.  ``norm`` ∈ {'1', 'O', 'I'}.
    """
    n = a.shape[0]
    if norm.upper() not in ("1", "O", "I"):
        xerbla("GECON", 1, f"norm={norm!r}")
    if n == 0:
        return 1.0, 0
    if anorm == 0:
        return 0.0, 0
    # Solves use only the L and U factors; permutations do not change the
    # 1-/inf-norm being estimated (LAPACK's xGECON does the same).
    onenorm = norm.upper() in ("1", "O")

    def solve(x):
        y = x.copy()
        trsm(1, a, y[:, None], side="L", uplo="L", transa="N", diag="U")
        trsm(1, a, y[:, None], side="L", uplo="U", transa="N", diag="N")
        return y

    def solve_h(x):
        y = x.copy()
        trsm(1, a, y[:, None], side="L", uplo="U", transa="C", diag="N")
        trsm(1, a, y[:, None], side="L", uplo="L", transa="C", diag="U")
        return y

    if onenorm:
        est = lacon(n, solve, solve_h, dtype=a.dtype)
    else:
        # inf-norm of inv(A) = 1-norm of inv(A)ᴴ
        est = lacon(n, solve_h, solve, dtype=a.dtype)
    if est == 0:
        return 0.0, 0
    return 1.0 / (est * anorm), 0


def gerfs(a: np.ndarray, af: np.ndarray, ipiv: np.ndarray, b: np.ndarray,
          x: np.ndarray, trans: str = "N", itmax: int = 5):
    """Iterative refinement with forward/backward error bounds (``xGERFS``).

    ``a`` is the original matrix, ``af``/``ipiv`` its ``getrf`` factors,
    ``b`` the right-hand sides and ``x`` the current solution (refined in
    place).  Returns ``(ferr, berr, info)`` — per-column forward error
    estimates and componentwise backward errors.
    """
    t = trans.upper()
    if t not in ("N", "T", "C"):
        xerbla("GERFS", 6, f"trans={trans!r}")
    n = a.shape[0]
    bmat = b if b.ndim == 2 else b[:, None]
    xmat = x if x.ndim == 2 else x[:, None]
    nrhs = bmat.shape[1]
    ferr = np.zeros(nrhs)
    berr = np.zeros(nrhs)
    if n == 0 or nrhs == 0:
        return ferr, berr, 0
    eps = lamch("E", a.dtype)
    safmin = lamch("S", a.dtype)
    safe1 = (n + 1) * safmin
    safe2 = safe1 / eps
    op = {"N": a, "T": a.T, "C": np.conj(a.T)}[t]
    absop = np.abs(op)
    for j in range(nrhs):
        count = 1
        lstres = 3.0
        while True:
            # Residual in the working precision.
            r = bmat[:, j] - op @ xmat[:, j]
            denom = absop @ np.abs(xmat[:, j]) + np.abs(bmat[:, j])
            num = np.abs(r)
            with np.errstate(divide="ignore", invalid="ignore"):
                ratios = np.where(denom > safe2, num / denom,
                                  (num + safe1) / (denom + safe1))
            berr[j] = float(np.max(ratios))
            if berr[j] > eps and berr[j] <= 0.5 * lstres and count <= itmax:
                dx = r.copy()
                getrs(af, ipiv, dx, trans=t)
                xmat[:, j] += dx
                lstres = berr[j]
                count += 1
            else:
                break
        # Forward error bound:
        #   ferr = norm(inv(op(A)) * f) / norm(x), f = |r| + nz*eps*(|A||x|+|b|)
        r = bmat[:, j] - op @ xmat[:, j]
        nz = n + 1
        f = np.abs(r) + nz * eps * (absop @ np.abs(xmat[:, j])
                                    + np.abs(bmat[:, j]))
        f = np.where(f > safe2, f, f + safe1)

        # Estimate norm(inv(op(A)) · diag(f)) with lacon.  f is real, so the
        # adjoint is diag(f) · inv(op(A))ᴴ.
        def mv(v):
            w = f * v
            getrs(af, ipiv, w, trans=t)
            return w

        def rmv(v):
            if t == "T" and np.iscomplexobj(v):
                # op(A)ᴴ = conj(A):  solve conj(A) w = v via conjugation.
                w = np.conj(v)
                getrs(af, ipiv, w, trans="N")
                w = np.conj(w)
            else:
                w = v.copy()
                getrs(af, ipiv, w, trans={"N": "C", "T": "N", "C": "N"}[t])
            return f * w

        est = lacon(n, mv, rmv, dtype=a.dtype)
        xnorm = float(np.max(np.abs(xmat[:, j]))) if n else 0.0
        ferr[j] = est / xnorm if xnorm > 0 else est
    return ferr, berr, 0


def geequ(a: np.ndarray):
    """Row/column equilibration scalings (``xGEEQU``).

    Returns ``(r, c, rowcnd, colcnd, amax, info)``.  ``info = i+1`` flags a
    zero row ``i``; ``info = m+j+1`` flags a zero column ``j``.
    """
    m, n = a.shape
    r = np.zeros(m)
    c = np.zeros(n)
    if m == 0 or n == 0:
        return r, c, 1.0, 1.0, 0.0, 0
    smlnum = lamch("S", a.dtype)
    bignum = 1.0 / smlnum
    absa = np.abs(a.real) + np.abs(a.imag) if np.iscomplexobj(a) else np.abs(a)
    rowmax = absa.max(axis=1)
    amax = float(rowmax.max())
    zero_rows = np.where(rowmax == 0)[0]
    if zero_rows.size:
        return r, c, 0.0, 0.0, amax, int(zero_rows[0]) + 1
    r = 1.0 / np.clip(rowmax, smlnum, bignum)
    rcmin, rcmax = float(rowmax.min()), float(rowmax.max())
    rowcnd = max(rcmin, smlnum) / min(rcmax, bignum)
    colmax = (absa * r[:, None]).max(axis=0)
    zero_cols = np.where(colmax == 0)[0]
    if zero_cols.size:
        return r, c, rowcnd, 0.0, amax, m + int(zero_cols[0]) + 1
    c = 1.0 / np.clip(colmax, smlnum, bignum)
    ccmin, ccmax = float(colmax.min()), float(colmax.max())
    colcnd = max(ccmin, smlnum) / min(ccmax, bignum)
    return r, c, rowcnd, colcnd, amax, 0


def laqge(a: np.ndarray, r: np.ndarray, c: np.ndarray, rowcnd: float,
          colcnd: float, amax: float) -> str:
    """Apply equilibration if worthwhile (``xLAQGE``).

    Scales A in place and returns ``equed`` ∈ {'N','R','C','B'} describing
    which scalings were applied, using LAPACK's thresholds (0.1 for the
    condition ratios, small/large checks on ``amax``).
    """
    thresh = 0.1
    small = lamch("S", a.dtype) / lamch("P", a.dtype)
    large = 1.0 / small
    row = not (rowcnd >= thresh and small <= amax <= large)
    col = not (colcnd >= thresh)
    if row and col:
        a *= np.outer(r, c)
        return "B"
    if row:
        a *= r[:, None]
        return "R"
    if col:
        a *= c[None, :]
        return "C"
    return "N"
