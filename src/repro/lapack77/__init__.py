"""The LAPACK77 substrate: from-scratch factorizations and solvers.

This package reimplements, in pure NumPy, the slice of FORTRAN 77 LAPACK
that the LAPACK90 interface layer (paper Appendix G) sits on:

* LU / Cholesky / Bunch–Kaufman factorizations with blocked Level-3 forms,
* band, tridiagonal and packed variants,
* condition estimation, equilibration and iterative refinement,
* QR/LQ (Householder) machinery, least squares (GELS/GELSX/GELSS),
  constrained least squares (GGLSE/GGGLM),
* symmetric/Hermitian eigensolvers (tridiagonalization + QL/QR implicit
  shifts, divide and conquer, bisection + inverse iteration),
* nonsymmetric eigensolvers (balancing, Hessenberg, Francis QR, Schur
  vectors, eigenvector back-transformation),
* SVD (bidiagonalization + Golub–Kahan implicit QR),
* generalized problems (SYGV-family reductions, QZ, GSVD),
* test-matrix generators (xLAGGE-family).

Naming keeps LAPACK's (minus the precision prefix): routines are
dtype-generic, arrays are modified in place where LAPACK does, and each
routine returns its ``info`` code (plus any scalar outputs).  Argument
errors raise via :func:`repro.errors.xerbla`, matching LAPACK77 where
``XERBLA`` aborts.

Submodules are imported lazily-by-hand here; the growing re-export list
mirrors DESIGN.md §3.
"""

from .machine import lamch
from .lautil import (lange, lansy, lanhe, langb, langt, lansp, lansb, lanhs,
                     lanst, lantr, laswp, lacpy, laset, lassq, lapy2, lapy3,
                     larnv)
from .lacon import lacon
from .lu import (gesv, getf2, getrf, getri, getrs, gecon, gerfs, geequ,
                 laqge)
from .chol import (posv, potf2, potrf, potrs, pocon, porfs, poequ, laqsy)
from .tridiag import (gtsv, gttrf, gttrs, gtcon, gtrfs, ptsv, pttrf, pttrs,
                      ptcon, ptrfs, gt_matvec, pt_matvec)
from .banded import (gbsv, gbtrf, gbtrs, gbcon, gbrfs, gbequ,
                     pbsv, pbtrf, pbtrs, pbcon, pbrfs, pbequ)
from .sym_indef import (sytf2, sytrf, sytrs, sysv, sycon, syrfs,
                        hetf2, hetrf, hetrs, hesv, hecon, herfs)
from .packed import (pptrf, pptrs, ppsv, ppcon, pprfs, ppequ,
                     sptrf, sptrs, spsv, spcon, hptrf, hptrs, hpsv, hpcon)
from .qr import (geqr2, geqrf, orgqr, ungqr, ormqr, unmqr,
                 gelq2, gelqf, orglq, unglq, ormlq, unmlq)
from .qr_pivot import geqpf, tzrqf, latzm
from .lls import gels, gelss, gelsx
from .td_eigen import (sytd2, sytrd, hetrd, orgtr, ungtr, steqr, sterf,
                       laev2, stebz, stein, stedc)
from .syev import (syev, syevd, syevx, heev, heevd, heevx, stev, stevd,
                   stevx, spev, spevd, spevx, hpev, hpevd, hpevx,
                   sbev, sbevd, sbevx, hbev, hbevd, hbevx)
from .gen_sym_eigen import sygst, hegst, sygv, hegv, spgv, hpgv, sbgv, hbgv
from .band_eigen import sbtrd, hbtrd
from .triangular import trtri, trti2, trtrs, trcon
from .svd import gebd2, gebrd, orgbr, ormbr, bdsqr, gesvd
from .hessenberg import gebal, gebak, gehd2, gehrd, orghr, unghr
from .schur import (hseqr, trevc, trexc, trsyl, trsen, schur_blocks,
                    eig_of_schur)
from .nonsym_eigen import gees, geev, geesx, geevx
from .qz import gghrd, hgeqz, gegs, gegv, tgevc
from .gsvd import ggsvd
from .ggls import gglse, ggglm
from .generators import laror, lagge, lagsy, laghe, latms_like
from .householder import larfg, larf_left, larf_right, larft, larfb
from .givens import lartg, lartg_c, lanv2

# Explicit export catalogue.  Keep in sync with the imports above; a
# dir()-derived list would leak the submodule names (``lu``, ``chol``,
# ...) into the public namespace, and the backend registry builds the
# reference substrate directly from this list
# (tests/lapack77/test_namespace.py asserts both properties).
__all__ = [
    # machine / auxiliary
    "lamch",
    "lange", "lansy", "lanhe", "langb", "langt", "lansp", "lansb",
    "lanhs", "lanst", "lantr", "laswp", "lacpy", "laset", "lassq",
    "lapy2", "lapy3", "larnv",
    "lacon",
    # LU family
    "gesv", "getf2", "getrf", "getri", "getrs", "gecon", "gerfs",
    "geequ", "laqge",
    # Cholesky family
    "posv", "potf2", "potrf", "potrs", "pocon", "porfs", "poequ",
    "laqsy",
    # tridiagonal
    "gtsv", "gttrf", "gttrs", "gtcon", "gtrfs", "ptsv", "pttrf",
    "pttrs", "ptcon", "ptrfs", "gt_matvec", "pt_matvec",
    # banded
    "gbsv", "gbtrf", "gbtrs", "gbcon", "gbrfs", "gbequ",
    "pbsv", "pbtrf", "pbtrs", "pbcon", "pbrfs", "pbequ",
    # symmetric / Hermitian indefinite
    "sytf2", "sytrf", "sytrs", "sysv", "sycon", "syrfs",
    "hetf2", "hetrf", "hetrs", "hesv", "hecon", "herfs",
    # packed storage
    "pptrf", "pptrs", "ppsv", "ppcon", "pprfs", "ppequ",
    "sptrf", "sptrs", "spsv", "spcon", "hptrf", "hptrs", "hpsv",
    "hpcon",
    # QR / LQ
    "geqr2", "geqrf", "orgqr", "ungqr", "ormqr", "unmqr",
    "gelq2", "gelqf", "orglq", "unglq", "ormlq", "unmlq",
    "geqpf", "tzrqf", "latzm",
    # least squares
    "gels", "gelss", "gelsx",
    # tridiagonalization + symmetric eigensolvers
    "sytd2", "sytrd", "hetrd", "orgtr", "ungtr", "steqr", "sterf",
    "laev2", "stebz", "stein", "stedc",
    "syev", "syevd", "syevx", "heev", "heevd", "heevx", "stev",
    "stevd", "stevx", "spev", "spevd", "spevx", "hpev", "hpevd",
    "hpevx", "sbev", "sbevd", "sbevx", "hbev", "hbevd", "hbevx",
    # generalized symmetric eigenproblems
    "sygst", "hegst", "sygv", "hegv", "spgv", "hpgv", "sbgv", "hbgv",
    "sbtrd", "hbtrd",
    # triangular
    "trtri", "trti2", "trtrs", "trcon",
    # SVD
    "gebd2", "gebrd", "orgbr", "ormbr", "bdsqr", "gesvd",
    # Hessenberg / Schur / nonsymmetric eigenproblems
    "gebal", "gebak", "gehd2", "gehrd", "orghr", "unghr",
    "hseqr", "trevc", "trexc", "trsyl", "trsen", "schur_blocks",
    "eig_of_schur",
    "gees", "geev", "geesx", "geevx",
    # generalized nonsymmetric / GSVD / constrained LS
    "gghrd", "hgeqz", "gegs", "gegv", "tgevc",
    "ggsvd",
    "gglse", "ggglm",
    # test-matrix generators
    "laror", "lagge", "lagsy", "laghe", "latms_like",
    # elementary reflectors and rotations
    "larfg", "larf_left", "larf_right", "larft", "larfb",
    "lartg", "lartg_c", "lanv2",
]
