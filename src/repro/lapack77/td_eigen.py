"""Symmetric/Hermitian tridiagonal eigen-machinery.

* ``sytrd``/``hetrd`` — Householder tridiagonalization ``QᴴAQ = T``,
* ``orgtr``/``ungtr`` — accumulate the transformation Q,
* ``steqr`` — implicit-shift QL iteration (eigenvalues ± eigenvectors),
* ``sterf`` — eigenvalues only,
* ``laev2`` — the 2×2 closed form,
* ``stebz`` — bisection (by value range or index range),
* ``stein`` — inverse iteration for selected eigenvectors,
* ``stedc`` — Cuppen divide-and-conquer with Gu–Eisenstat (Löwner)
  weight correction for orthogonal eigenvectors.

Substrate for the paper's ``LA_SYEV/LA_SYEVD/LA_SYEVX`` families (and the
packed/band variants, which reduce to this dense path — DESIGN.md §7).
"""

from __future__ import annotations

import numpy as np

from ..errors import xerbla
from .householder import larf_left, larf_right, larfg
from .machine import lamch

__all__ = ["sytd2", "sytrd", "hetrd", "orgtr", "ungtr",
           "steqr", "sterf", "laev2", "stebz", "stein", "stedc"]


def sytd2(a: np.ndarray, uplo: str = "L", hermitian: bool | None = None):
    """Unblocked tridiagonal reduction (in place).

    Returns ``(d, e, tau)``: the tridiagonal diagonals (real) and the
    reflector scalars.  The reflector vectors overwrite the corresponding
    triangle of ``a``.
    """
    n = a.shape[0]
    if hermitian is None:
        hermitian = np.iscomplexobj(a)
    up = uplo.upper() == "U"
    rdtype = np.float32 if a.dtype in (np.float32, np.complex64) \
        else np.float64
    d = np.zeros(n, dtype=rdtype)
    e = np.zeros(max(n - 1, 0), dtype=rdtype)
    tau = np.zeros(max(n - 1, 0), dtype=a.dtype)
    conj = np.conj if hermitian else (lambda z: z)
    if up:
        for i in range(n - 2, -1, -1):
            # Annihilate A[0:i, i+1] leaving e[i] at A[i, i+1].
            beta, taui = larfg(a[i, i + 1], a[:i, i + 1])
            e[i] = beta.real if hermitian else beta
            if taui != 0:
                a[i, i + 1] = 1
                v = a[: i + 1, i + 1]
                # x = tau * A[0:i+1, 0:i+1] v (using the 'U' triangle).
                sub = np.triu(a[: i + 1, : i + 1])
                full = sub + conj(np.triu(sub, 1)).T
                if hermitian:
                    np.fill_diagonal(full, full.diagonal().real)
                x = taui * (full @ v)
                alpha = -0.5 * taui * np.dot(conj(x), v)
                w = x + alpha * v
                upd = np.outer(v, conj(w)) + np.outer(w, conj(v))
                iu = np.triu_indices(i + 1)
                a[: i + 1, : i + 1][iu] -= upd[iu]
                if hermitian:
                    di = np.arange(i + 1)
                    a[di, di] = a[di, di].real
            a[i, i + 1] = e[i]
            tau[i] = taui
        d[:] = a.diagonal().real if hermitian else a.diagonal()
    else:
        for i in range(n - 1):
            beta, taui = larfg(a[i + 1, i], a[i + 2:, i])
            e[i] = beta.real if hermitian else beta
            if taui != 0:
                a[i + 1, i] = 1
                v = a[i + 1:, i]
                sub = np.tril(a[i + 1:, i + 1:])
                full = sub + conj(np.tril(sub, -1)).T
                if hermitian:
                    np.fill_diagonal(full, full.diagonal().real)
                x = taui * (full @ v)
                alpha = -0.5 * taui * np.dot(conj(x), v)
                w = x + alpha * v
                upd = np.outer(v, conj(w)) + np.outer(w, conj(v))
                il = np.tril_indices(n - i - 1)
                a[i + 1:, i + 1:][il] -= upd[il]
                if hermitian:
                    di = np.arange(i + 1, n)
                    a[di, di] = a[di, di].real
            a[i + 1, i] = e[i]
            tau[i] = taui
        d[:] = a.diagonal().real if hermitian else a.diagonal()
    return d, e, tau


def sytrd(a: np.ndarray, uplo: str = "L"):
    """Tridiagonal reduction of a real symmetric matrix (``xSYTRD``).

    Returns ``(d, e, tau)``.
    """
    if uplo.upper() not in ("U", "L"):
        xerbla("SYTRD", 1, f"uplo={uplo!r}")
    return sytd2(a, uplo, hermitian=False)


def hetrd(a: np.ndarray, uplo: str = "L"):
    """Tridiagonal reduction of a complex Hermitian matrix (``xHETRD``).

    Returns ``(d, e, tau)`` with real ``d``/``e``.
    """
    if uplo.upper() not in ("U", "L"):
        xerbla("HETRD", 1, f"uplo={uplo!r}")
    return sytd2(a, uplo, hermitian=True)


def orgtr(a: np.ndarray, tau: np.ndarray, uplo: str = "L") -> np.ndarray:
    """Generate the unitary Q of the tridiagonal reduction (in place).

    Returns ``a`` containing Q.
    """
    n = a.shape[0]
    up = uplo.upper() == "U"
    q = np.eye(n, dtype=a.dtype)
    if up:
        # Q = H(n-2) ... H(1) H(0); H(i) has v in A[0:i, i+1] with v[i] = 1.
        for i in range(n - 1):
            if tau[i] == 0:
                continue
            v = np.zeros(i + 1, dtype=a.dtype)
            v[:i] = a[:i, i + 1]
            v[i] = 1
            larf_left(v, tau[i], q[: i + 1, :])
    else:
        for i in range(n - 2, -1, -1):
            if tau[i] == 0:
                continue
            v = np.zeros(n - i - 1, dtype=a.dtype)
            v[0] = 1
            v[1:] = a[i + 2:, i]
            larf_left(v, tau[i], q[i + 1:, :])
    a[...] = q
    return a


def ungtr(a, tau, uplo="L"):
    """Complex alias of :func:`orgtr`."""
    return orgtr(a, tau, uplo)


def laev2(a: float, b: float, c: float):
    """Eigendecomposition of the symmetric 2×2 ``[[a, b], [b, c]]``.

    Returns ``(rt1, rt2, cs1, sn1)`` with ``rt1 ≥ rt2`` and the rotation
    ``[cs1, sn1]`` giving the eigenvector of ``rt1``.
    """
    sm = a + c
    df = a - c
    adf = abs(df)
    tb = b + b
    ab = abs(tb)
    if adf > ab:
        rt = adf * np.sqrt(1.0 + (ab / adf) ** 2)
    elif adf < ab:
        rt = ab * np.sqrt(1.0 + (adf / ab) ** 2)
    else:
        rt = ab * np.sqrt(2.0)
    if sm < 0:
        rt1 = 0.5 * (sm - rt)
        sgn1 = -1
        rt2 = (a / rt1) * c - (b / rt1) * b
    elif sm > 0:
        rt1 = 0.5 * (sm + rt)
        sgn1 = 1
        rt2 = (a / rt1) * c - (b / rt1) * b
    else:
        rt1 = 0.5 * rt
        rt2 = -0.5 * rt
        sgn1 = 1
    # Eigenvector.
    if df >= 0:
        cs = df + rt
        sgn2 = 1
    else:
        cs = df - rt
        sgn2 = -1
    acs = abs(cs)
    if acs > ab:
        ct = -tb / cs
        sn1 = 1.0 / np.sqrt(1.0 + ct * ct)
        cs1 = ct * sn1
    else:
        if ab == 0:
            cs1, sn1 = 1.0, 0.0
        else:
            tn = -cs / tb
            cs1 = 1.0 / np.sqrt(1.0 + tn * tn)
            sn1 = tn * cs1
    if sgn1 == sgn2:
        cs1, sn1 = -sn1, cs1
    return rt1, rt2, cs1, sn1


def steqr(d: np.ndarray, e: np.ndarray, z: np.ndarray | None = None,
          compz: str = "N", maxiter_factor: int = 30):
    """Implicit-shift QL iteration for a symmetric tridiagonal matrix.

    ``compz``: 'N' eigenvalues only; 'V' accumulate into the supplied ``z``
    (which must contain the reducing transformation Q); 'I' initialize
    ``z`` to the identity (eigenvectors of T itself).

    On success the eigenvalues overwrite ``d`` in ascending order and the
    columns of ``z`` are the matching eigenvectors.  Returns ``info``
    (> 0: off-diagonal ``e[info-1]`` failed to converge).
    """
    c = compz.upper()
    if c not in ("N", "V", "I"):
        xerbla("STEQR", 1, f"compz={compz!r}")
    n = d.shape[0]
    want_z = c in ("V", "I")
    if want_z:
        if z is None:
            raise ValueError("compz='V'/'I' requires z")
        if c == "I":
            z[...] = 0
            z[np.arange(n), np.arange(n)] = 1
    if n <= 1:
        return 0
    eps = lamch("E", d.dtype)
    work_e = np.zeros(n, dtype=d.dtype)
    work_e[: n - 1] = e
    info = 0
    nmax_iter = maxiter_factor * n
    total_iter = 0
    for l in range(n):
        iters = 0
        while True:
            # Look for a negligible off-diagonal element.
            m = l
            while m < n - 1:
                dd = abs(d[m]) + abs(d[m + 1])
                if abs(work_e[m]) <= eps * dd:
                    break
                m += 1
            if m == l:
                break
            iters += 1
            total_iter += 1
            if total_iter > nmax_iter:
                # Report the first non-converged off-diagonal.
                return l + 1
            # Wilkinson shift.
            g = (d[l + 1] - d[l]) / (2.0 * work_e[l])
            r = float(np.hypot(g, 1.0))
            g = d[m] - d[l] + work_e[l] / (g + (r if g >= 0 else -r))
            s = 1.0
            cth = 1.0
            p = 0.0
            broke = False
            for i in range(m - 1, l - 1, -1):
                f = s * work_e[i]
                b = cth * work_e[i]
                r = float(np.hypot(f, g))
                work_e[i + 1] = r
                if r == 0.0:
                    d[i + 1] -= p
                    work_e[m] = 0.0
                    broke = True
                    break
                s = f / r
                cth = g / r
                g = d[i + 1] - p
                r = (d[i] - g) * s + 2.0 * cth * b
                p = s * r
                d[i + 1] = g + p
                g = cth * r - b
                if want_z:
                    col1 = z[:, i + 1].copy()
                    z[:, i + 1] = s * z[:, i] + cth * col1
                    z[:, i] = cth * z[:, i] - s * col1
            if not broke:
                d[l] -= p
                work_e[l] = g
                work_e[m] = 0.0
    # Sort ascending (and permute z).
    order = np.argsort(d, kind="stable")
    d[:] = d[order]
    e[:] = 0
    if want_z:
        z[:, :] = z[:, order]
    return info


def sterf(d: np.ndarray, e: np.ndarray, maxiter_factor: int = 30) -> int:
    """Eigenvalues of a symmetric tridiagonal matrix (no vectors)."""
    return steqr(d, e, None, compz="N", maxiter_factor=maxiter_factor)


def _sturm_count(d: np.ndarray, e2: np.ndarray, x: float,
                 pivmin: float) -> int:
    """Number of eigenvalues of T strictly less than x (Sturm sequence)."""
    count = 0
    q = d[0] - x
    if q < 0:
        count += 1
    for i in range(1, d.shape[0]):
        if q == 0:
            q = -pivmin
        q = d[i] - x - e2[i - 1] / q
        if q < 0:
            count += 1
    return count


def stebz(d: np.ndarray, e: np.ndarray, vl: float | None = None,
          vu: float | None = None, il: int | None = None,
          iu: int | None = None, abstol: float = 0.0):
    """Bisection eigenvalue computation (``xSTEBZ``).

    Select by value range ``(vl, vu]`` or 0-based index range
    ``[il, iu]``; with neither, all eigenvalues are computed.
    Returns ``(w, m, info)``: eigenvalues ascending and their count.
    """
    n = d.shape[0]
    if n == 0:
        return np.zeros(0), 0, 0
    e2 = np.zeros(max(n - 1, 0))
    e2[:] = np.asarray(e[: n - 1], dtype=np.float64) ** 2
    eps = lamch("E", np.float64)
    safemin = lamch("S", np.float64)
    pivmin = max(safemin, safemin * float(np.max(e2, initial=0.0)))
    # Gershgorin bounds.
    radius = np.zeros(n)
    absd = np.abs(np.asarray(e, dtype=np.float64))
    if n > 1:
        radius[0] = absd[0]
        radius[-1] = absd[n - 2]
        radius[1: n - 1] = absd[: n - 2] + absd[1: n - 1]
    gl = float(np.min(d - radius)) - 2 * pivmin - 1e-12
    gu = float(np.max(d + radius)) + 2 * pivmin + 1e-12
    if abstol <= 0:
        abstol = eps * max(abs(gl), abs(gu))

    def count(x):
        return _sturm_count(np.asarray(d, dtype=np.float64), e2, x, pivmin)

    if il is not None or iu is not None:
        il = 0 if il is None else il
        iu = n - 1 if iu is None else iu
        if not (0 <= il <= iu < n):
            xerbla("STEBZ", 4, "index range out of bounds")
        idx = range(il, iu + 1)
    else:
        lo = gl if vl is None else vl
        hi = gu if vu is None else vu
        n_lo = count(lo)
        n_hi = count(hi)
        idx = range(n_lo, n_hi)
    ws = []
    for k in idx:
        # Bisect for the (k+1)-th smallest eigenvalue.
        a_, b_ = gl, gu
        while b_ - a_ > abstol + 4 * eps * max(abs(a_), abs(b_)):
            mid = 0.5 * (a_ + b_)
            if count(mid) > k:
                b_ = mid
            else:
                a_ = mid
        ws.append(0.5 * (a_ + b_))
    w = np.array(ws)
    return w, len(ws), 0


def stein(d: np.ndarray, e: np.ndarray, w: np.ndarray,
          max_its: int = 5, rng=None):
    """Inverse iteration for selected eigenvectors of a symmetric
    tridiagonal matrix (``xSTEIN``).

    ``w`` holds the (ascending) eigenvalues to invert against.  Returns
    ``(z, info)`` — the n×m eigenvector matrix; ``info`` counts vectors
    that failed to converge.
    """
    from .tridiag import gttrf, gttrs
    n = d.shape[0]
    m = w.shape[0]
    z = np.zeros((n, m))
    if rng is None:
        rng = np.random.default_rng(1998)
    eps = lamch("E", np.float64)
    norm_t = float(np.max(np.abs(d)) + 2 * np.max(np.abs(e), initial=0.0))
    failed = 0
    prev_in_cluster = []
    for j in range(m):
        # Cluster detection: orthogonalize against close-by eigenvectors.
        if j > 0 and abs(w[j] - w[j - 1]) <= 1e-3 * max(norm_t, 1e-30) * 1e-4 \
                + 10 * eps * abs(w[j]):
            prev_in_cluster.append(j - 1)
        else:
            prev_in_cluster = []
        # Perturb the shift slightly to keep the factorization regular.
        shift = w[j] + eps * norm_t * (1 + j % 3)
        dl = np.asarray(e, dtype=np.float64).copy()
        du = np.asarray(e, dtype=np.float64).copy()
        dd = np.asarray(d, dtype=np.float64) - shift
        du2, ipiv, _ = gttrf(dl, dd, du)
        x = rng.standard_normal(n)
        x /= np.linalg.norm(x)
        ok = False
        for _ in range(max_its):
            gttrs(dl, dd, du, du2, ipiv, x)
            for p in prev_in_cluster:
                x -= np.dot(z[:, p], x) * z[:, p]
            nrm = np.linalg.norm(x)
            if nrm == 0:
                x = rng.standard_normal(n)
                nrm = np.linalg.norm(x)
            grow = nrm
            x /= nrm
            if grow > 1.0 / (np.sqrt(eps) * max(abs(shift), 1.0) + 1e-300):
                ok = True
                break
        else:
            ok = True  # accept after max_its (LAPACK flags via info)
        # Final cluster re-orthogonalization.
        for p in prev_in_cluster:
            x -= np.dot(z[:, p], x) * z[:, p]
        nrm = np.linalg.norm(x)
        if nrm > 0:
            x /= nrm
        else:
            failed += 1
        # Fix the sign: largest component positive (determinism).
        k = int(np.argmax(np.abs(x)))
        if x[k] < 0:
            x = -x
        z[:, j] = x
    return z, failed


# ---------------------------------------------------------------------------
# Divide and conquer (Cuppen + Gu–Eisenstat weights)
# ---------------------------------------------------------------------------

_DC_MIN = 32  # below this, fall back to steqr (LAPACK's SMLSIZ analogue)


def _secular_roots(dk: np.ndarray, z2: np.ndarray, rho: float):
    """Roots of the secular equation ``1 + rho Σ z²ₖ/(dₖ − λ) = 0``.

    Solved in *gap coordinates*: each root λ_i ∈ (d_i, d_{i+1}) is written
    as ``d_anchor + t`` with the anchor chosen as the nearer pole, and the
    bisection runs on ``t``.  This keeps ``d_k − λ_i`` accurate even for
    tightly clustered poles, which is what preserves eigenvector
    orthogonality (the same reason LAPACK's ``xLAED4`` solves for the gap).

    Returns ``(lam, anchor, off)`` with ``lam = dk[anchor] + off``.
    """
    k = dk.shape[0]
    lam = np.empty(k)
    anchor = np.empty(k, dtype=np.int64)
    off = np.empty(k)
    eps = np.finfo(np.float64).eps
    sum_z2 = float(np.sum(z2))
    for i in range(k):
        if i < k - 1:
            delta = dk[i + 1] - dk[i]
            midt = 0.5 * delta
            if midt == 0.0:
                anchor[i] = i
                off[i] = 0.0
                lam[i] = dk[i]
                continue
            diffs_i = dk - dk[i]
            fmid = 1.0 + rho * float(np.sum(z2 / (diffs_i - midt)))
            if fmid >= 0:
                anc, a_, b_ = i, 0.0, midt
            else:
                anc, a_, b_ = i + 1, -midt, 0.0
        else:
            anc = k - 1
            a_, b_ = 0.0, rho * sum_z2 + eps * max(abs(dk[-1]), rho * sum_z2,
                                                   1.0)
        diffs = dk - dk[anc]
        for _ in range(160):
            t = 0.5 * (a_ + b_)
            if t == a_ or t == b_:
                break
            val = 1.0 + rho * float(np.sum(z2 / (diffs - t)))
            if val < 0:
                a_ = t
            else:
                b_ = t
        t = 0.5 * (a_ + b_)
        anchor[i] = anc
        off[i] = t
        lam[i] = dk[anc] + t
    return lam, anchor, off


def _stedc_rec(d: np.ndarray, e: np.ndarray):
    """Recursive divide and conquer; returns ``(w, q)``."""
    n = d.shape[0]
    if n <= _DC_MIN:
        w = d.copy()
        ee = e.copy()
        q = np.empty((n, n))
        info = steqr(w, ee, q, compz="I")
        if info != 0:
            raise RuntimeError("steqr failed inside stedc")
        return w, q
    m = n // 2
    rho = float(e[m - 1])
    d1 = d[:m].copy()
    d2 = d[m:].copy()
    d1[-1] -= abs(rho)
    d2[0] -= abs(rho)
    w1, q1 = _stedc_rec(d1, e[: m - 1])
    w2, q2 = _stedc_rec(d2, e[m:])
    # Coupling: T = diag(T1′, T2′) + |rho| u uᵀ with u = [sign(rho)·e_m; e_1],
    # so in eigencoordinates z = [sign(rho)·(last row of Q1), first row of Q2].
    return _dc_merge_signed(w1, q1, w2, q2, rho)


def _dc_merge_signed(d1, q1, d2, q2, rho):
    """Wrapper handling the sign of the coupling element: the parent is
    ``diag(D1, D2) + |rho| z zᵀ`` with ``z = [sign(rho)·Q1ᵀe_last, Q2ᵀe_0]``."""
    n1 = d1.shape[0]
    sign = 1.0 if rho >= 0 else -1.0
    # Implement by temporarily scaling the last-row contribution.
    z = np.concatenate([sign * q1[-1, :], q2[0, :]])
    dall = np.concatenate([d1, d2])
    n = dall.shape[0]
    qall = np.zeros((n, n))
    qall[:n1, :n1] = q1
    qall[n1:, n1:] = q2
    return _merge_core(dall, z, qall, abs(rho))


def _merge_core(dall: np.ndarray, z: np.ndarray, qall: np.ndarray,
                rho: float):
    """Core rank-one-update eigensolver: ``diag(dall) + rho z zᵀ``
    (rho ≥ 0), with deflation and Löwner-corrected weights."""
    n = dall.shape[0]
    znorm = float(np.linalg.norm(z))
    if znorm == 0 or rho == 0:
        order = np.argsort(dall, kind="stable")
        return dall[order], qall[:, order]
    z = z / znorm
    rho_eff = rho * znorm * znorm
    order = np.argsort(dall, kind="stable")
    dall = dall[order]
    z = z[order]
    qall = qall[:, order]
    eps = np.finfo(np.float64).eps
    scale = max(float(np.max(np.abs(dall))), rho_eff, 1e-30)
    tol = 8.0 * eps * scale
    keep = rho_eff * np.abs(z) > tol
    idx_keep = [i for i in range(n) if keep[i]]
    i = 0
    while i < len(idx_keep) - 1:
        a_i, b_i = idx_keep[i], idx_keep[i + 1]
        if abs(dall[b_i] - dall[a_i]) <= tol:
            r = float(np.hypot(z[a_i], z[b_i]))
            if r > 0:
                c_ = z[b_i] / r
                s_ = z[a_i] / r
                z[b_i] = r
                z[a_i] = 0.0
                col_a = qall[:, a_i].copy()
                qall[:, a_i] = c_ * col_a - s_ * qall[:, b_i]
                qall[:, b_i] = s_ * col_a + c_ * qall[:, b_i]
            idx_keep.pop(i)
        else:
            i += 1
    keep = np.zeros(n, dtype=bool)
    keep[idx_keep] = True
    kidx = np.where(keep)[0]
    didx = np.where(~keep)[0]
    k = kidx.shape[0]
    d_out = np.empty(n)
    q_out = np.empty((n, n))
    d_out[k:] = dall[didx]
    q_out[:, k:] = qall[:, didx]
    if k > 0:
        dk = dall[kidx].astype(np.float64)
        zk = z[kidx].astype(np.float64)
        z2 = zk * zk
        lam, anchor, off = _secular_roots(dk, z2, rho_eff)
        # d_j − λ_i computed through the anchor so clustered poles keep
        # full relative accuracy: (d_j − d_anchor(i)) − off_i.
        denoms = (dk[:, None] - dk[anchor][None, :]) - off[None, :]
        # Gu–Eisenstat (Löwner) weights from the computed roots.
        zg = np.empty(k)
        for i in range(k):
            # |ẑ_i|² = Π_j (λ_j − d_i) / (rho Π_{j≠i} (d_j − d_i))
            num = -denoms[i, :]                     # λ_j − d_i
            p = 1.0
            for j in range(k):
                p *= num[j]
                if j != i:
                    p /= (dk[j] - dk[i])
            p /= rho_eff
            zg[i] = np.sqrt(max(p, 0.0)) * (1.0 if zk[i] >= 0 else -1.0)
        vecs = np.empty((k, k))
        for i in range(k):
            denom = denoms[:, i]
            denom = np.where(denom == 0, eps * scale, denom)
            col = zg / denom
            nrm = np.linalg.norm(col)
            if nrm == 0:
                col = np.zeros(k)
                col[i] = 1.0
                nrm = 1.0
            vecs[:, i] = col / nrm
        d_out[:k] = lam
        q_out[:, :k] = qall[:, kidx] @ vecs
    order = np.argsort(d_out, kind="stable")
    return d_out[order], q_out[:, order]


def stedc(d: np.ndarray, e: np.ndarray, z: np.ndarray | None = None,
          compz: str = "I"):
    """Divide-and-conquer eigensolver for symmetric tridiagonal matrices
    (``xSTEDC``).

    ``compz='N'`` eigenvalues only (delegates to :func:`sterf`);
    ``'I'`` eigenvectors of T; ``'V'`` back-transform with the supplied
    ``z`` (the reduction's Q), i.e. ``z := z @ Q_T``.

    Eigenvalues overwrite ``d`` (ascending).  Returns ``info``.
    """
    c = compz.upper()
    if c not in ("N", "V", "I"):
        xerbla("STEDC", 1, f"compz={compz!r}")
    n = d.shape[0]
    if c == "N":
        return sterf(d, e)
    if z is None:
        raise ValueError("compz='V'/'I' requires z")
    if n == 0:
        return 0
    try:
        w, q = _stedc_rec(np.asarray(d, dtype=np.float64),
                          np.asarray(e, dtype=np.float64))
    except RuntimeError:
        return 1
    d[:] = w
    if c == "I":
        z[...] = q
    else:
        z[...] = z @ q
    return 0
