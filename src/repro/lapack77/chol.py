"""Cholesky family: ``xPOTRF/xPOTRS/xPOSV`` with condition estimation
(``xPOCON``), refinement (``xPORFS``) and equilibration (``xPOEQU``).

Substrate for the paper's ``LA_POSV``/``LA_POSVX``/``LA_POTRF`` drivers.
Blocked ``potrf`` follows LAPACK's right-looking Level-3 form: panel
``potf2`` + ``trsm`` + ``syrk/herk`` trailing update.
"""

from __future__ import annotations

import numpy as np

from ..config import ilaenv
from ..errors import xerbla
from ..faults import pivot_fault
from ..policy import disnan
from ..blas.level3 import herk, syrk, trsm
from .lacon import lacon
from .machine import lamch

__all__ = ["potf2", "potrf", "potrs", "posv", "pocon", "porfs", "poequ",
           "laqsy"]


def potf2(a: np.ndarray, uplo: str = "U") -> int:
    """Unblocked Cholesky of the ``uplo`` triangle (in place).

    Returns ``info``; ``info = j+1 > 0`` flags the first non-positive
    leading minor.
    """
    n = a.shape[0]
    up = uplo.upper() == "U"
    hermitian = np.iscomplexobj(a)
    for j in range(n):
        if up:
            prior = a[:j, j]
        else:
            prior = a[j, :j]
        ajj = a[j, j].real - float(np.real(np.vdot(prior, prior)))
        if pivot_fault("potf2", j):
            ajj = 0.0
        # Reference xPOTF2 tests AJJ <= 0 .OR. DISNAN(AJJ): an infinite
        # pivot propagates rather than reporting not-positive-definite.
        if ajj <= 0 or disnan(ajj):
            a[j, j] = ajj
            return j + 1
        ajj = np.sqrt(ajj)
        a[j, j] = ajj
        if j < n - 1:
            if up:
                # Row j of U beyond the diagonal.
                a[j, j + 1:] -= np.conj(a[:j, j]) @ a[:j, j + 1:] \
                    if j > 0 else 0
                a[j, j + 1:] /= ajj
            else:
                a[j + 1:, j] -= a[j + 1:, :j] @ np.conj(a[j, :j]) \
                    if j > 0 else 0
                a[j + 1:, j] /= ajj
    return 0


def potrf(a: np.ndarray, uplo: str = "U") -> int:
    """Blocked Cholesky factorization: ``A = UᴴU`` (uplo='U') or ``LLᴴ``.

    Only the ``uplo`` triangle is referenced or written.  Returns ``info``.
    """
    if uplo.upper() not in ("U", "L"):
        xerbla("POTRF", 1, f"uplo={uplo!r}")
    n = a.shape[0]
    if a.shape[1] != n:
        xerbla("POTRF", 2, "matrix must be square")
    nb = ilaenv(1, "potrf")
    if nb <= 1 or nb >= n:
        return potf2(a, uplo)
    up = uplo.upper() == "U"
    hermitian = np.iscomplexobj(a)
    rank_update = herk if hermitian else syrk
    for j in range(0, n, nb):
        jb = min(nb, n - j)
        # Update the diagonal block with previously factored panels.
        if j > 0:
            if up:
                rank_update(-1.0, a[:j, j:j + jb], 1.0, a[j:j + jb, j:j + jb],
                            uplo="U", trans="T" if not hermitian else "C")
            else:
                rank_update(-1.0, a[j:j + jb, :j], 1.0, a[j:j + jb, j:j + jb],
                            uplo="L", trans="N")
        info = potf2(a[j:j + jb, j:j + jb], uplo)
        if info != 0:
            return info + j
        if j + jb < n:
            if up:
                if j > 0:
                    a[j:j + jb, j + jb:] -= (np.conj(a[:j, j:j + jb].T)
                                             @ a[:j, j + jb:])
                trsm(1, a[j:j + jb, j:j + jb], a[j:j + jb, j + jb:],
                     side="L", uplo="U", transa="C", diag="N")
            else:
                if j > 0:
                    a[j + jb:, j:j + jb] -= (a[j + jb:, :j]
                                             @ np.conj(a[j:j + jb, :j].T))
                trsm(1, a[j:j + jb, j:j + jb], a[j + jb:, j:j + jb],
                     side="R", uplo="L", transa="C", diag="N")
    return 0


def _herk_trans(hermitian: bool) -> str:
    return "C" if hermitian else "T"


def potrs(a: np.ndarray, b: np.ndarray, uplo: str = "U") -> int:
    """Solve ``A X = B`` from the Cholesky factor (B in place)."""
    if uplo.upper() not in ("U", "L"):
        xerbla("POTRS", 1, f"uplo={uplo!r}")
    n = a.shape[0]
    if b.shape[0] != n:
        xerbla("POTRS", 3, "dimension mismatch between A and B")
    bmat = b if b.ndim == 2 else b[:, None]
    if uplo.upper() == "U":
        trsm(1, a, bmat, side="L", uplo="U", transa="C", diag="N")
        trsm(1, a, bmat, side="L", uplo="U", transa="N", diag="N")
    else:
        trsm(1, a, bmat, side="L", uplo="L", transa="N", diag="N")
        trsm(1, a, bmat, side="L", uplo="L", transa="C", diag="N")
    return 0


def posv(a: np.ndarray, b: np.ndarray, uplo: str = "U"):
    """Solve an SPD/HPD system by Cholesky (``xPOSV``); returns ``info``."""
    info = potrf(a, uplo)
    if info == 0:
        potrs(a, b, uplo)
    return info


def pocon(a: np.ndarray, anorm: float, uplo: str = "U"):
    """Reciprocal condition estimate from the Cholesky factor.

    Returns ``(rcond, info)``.
    """
    n = a.shape[0]
    if n == 0:
        return 1.0, 0
    if anorm == 0:
        return 0.0, 0
    up = uplo.upper() == "U"

    def solve(x):
        y = x.copy()
        potrs(a, y, uplo=uplo)
        return y

    est = lacon(n, solve, solve, dtype=a.dtype)
    if est == 0:
        return 0.0, 0
    return 1.0 / (est * anorm), 0


def porfs(a: np.ndarray, af: np.ndarray, b: np.ndarray, x: np.ndarray,
          uplo: str = "U", itmax: int = 5):
    """Iterative refinement + error bounds for SPD systems (``xPORFS``).

    ``a`` holds the original matrix (``uplo`` triangle), ``af`` the factor.
    Returns ``(ferr, berr, info)``.
    """
    n = a.shape[0]
    hermitian = np.iscomplexobj(a)
    if uplo.upper() == "U":
        full = np.triu(a) + (np.conj(np.triu(a, 1)).T if hermitian
                             else np.triu(a, 1).T)
    else:
        full = np.tril(a) + (np.conj(np.tril(a, -1)).T if hermitian
                             else np.tril(a, -1).T)
    if hermitian:
        np.fill_diagonal(full, full.diagonal().real)
    bmat = b if b.ndim == 2 else b[:, None]
    xmat = x if x.ndim == 2 else x[:, None]
    nrhs = bmat.shape[1]
    ferr = np.zeros(nrhs)
    berr = np.zeros(nrhs)
    if n == 0 or nrhs == 0:
        return ferr, berr, 0
    eps = lamch("E", a.dtype)
    safmin = lamch("S", a.dtype)
    safe1 = (n + 1) * safmin
    safe2 = safe1 / eps
    absa = np.abs(full)
    for j in range(nrhs):
        count, lstres = 1, 3.0
        while True:
            r = bmat[:, j] - full @ xmat[:, j]
            denom = absa @ np.abs(xmat[:, j]) + np.abs(bmat[:, j])
            num = np.abs(r)
            with np.errstate(divide="ignore", invalid="ignore"):
                ratios = np.where(denom > safe2, num / denom,
                                  (num + safe1) / (denom + safe1))
            berr[j] = float(np.max(ratios))
            if berr[j] > eps and berr[j] <= 0.5 * lstres and count <= itmax:
                dx = r.copy()
                potrs(af, dx, uplo=uplo)
                xmat[:, j] += dx
                lstres = berr[j]
                count += 1
            else:
                break
        r = bmat[:, j] - full @ xmat[:, j]
        f = np.abs(r) + (n + 1) * eps * (absa @ np.abs(xmat[:, j])
                                         + np.abs(bmat[:, j]))
        f = np.where(f > safe2, f, f + safe1)

        def mv(v):
            w = f * v
            potrs(af, w, uplo=uplo)
            return w

        est = lacon(n, mv, mv, dtype=a.dtype)
        xnorm = float(np.max(np.abs(xmat[:, j])))
        ferr[j] = est / xnorm if xnorm > 0 else est
    return ferr, berr, 0


def poequ(a: np.ndarray):
    """Equilibration scalings for an SPD matrix (``xPOEQU``).

    Uses only the diagonal: ``s_i = 1/sqrt(a_ii)``.  Returns
    ``(s, scond, amax, info)``; ``info = i+1`` flags a non-positive
    diagonal entry.
    """
    n = a.shape[0]
    s = np.zeros(n)
    if n == 0:
        return s, 1.0, 0.0, 0
    d = a.diagonal().real
    amax = float(np.max(np.abs(a.diagonal()))) if n else 0.0
    bad = np.where(d <= 0)[0]
    if bad.size:
        return s, 0.0, amax, int(bad[0]) + 1
    s = 1.0 / np.sqrt(d)
    smin, smax = float(np.sqrt(d.min())), float(np.sqrt(d.max()))
    scond = smin / smax
    return s, scond, float(d.max()), 0


def laqsy(a: np.ndarray, s: np.ndarray, scond: float, amax: float,
          uplo: str = "U") -> str:
    """Apply symmetric equilibration if worthwhile (``xLAQSY``-family).

    Scales ``A := diag(s) A diag(s)`` (one triangle, in place) and returns
    ``equed`` ∈ {'N', 'Y'}.
    """
    thresh = 0.1
    small = lamch("S", a.dtype) / lamch("P", a.dtype)
    large = 1.0 / small
    if scond >= thresh and small <= amax <= large:
        return "N"
    n = a.shape[0]
    scale = np.outer(s, s)
    if uplo.upper() == "U":
        iu = np.triu_indices(n)
        a[iu] = a[iu] * scale[iu]
    else:
        il = np.tril_indices(n)
        a[il] = a[il] * scale[il]
    return "Y"
