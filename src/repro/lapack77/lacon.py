"""1-norm estimation: Higham's modification of Hager's algorithm
(``xLACON`` / ``xLACN2``).

LAPACK exposes this through reverse communication; in Python we take the
two matrix-vector product callbacks directly.  Every ``xxCON`` condition
estimator and every ``xxRFS`` error bound in the substrate is built on
this routine — exactly how LAPACK structures it.
"""

from __future__ import annotations

import numpy as np

__all__ = ["lacon"]


def lacon(n: int, matvec, rmatvec, dtype=np.float64, itmax: int = 5) -> float:
    """Estimate the 1-norm of an implicitly defined n×n matrix A.

    Parameters
    ----------
    n
        Order of the matrix.
    matvec
        Callable ``x -> A @ x``.
    rmatvec
        Callable ``x -> Aᴴ @ x`` (plain transpose for real dtypes).
    dtype
        Element dtype of A (drives the real/complex search strategy).
    itmax
        Iteration cap (LAPACK uses 5).

    Returns
    -------
    float
        A lower bound estimate of ``norm(A, 1)``, almost always within a
        factor of 2–3 of the true value.
    """
    if n == 0:
        return 0.0
    complex_case = np.dtype(dtype).kind == "c"
    x = np.full(n, 1.0 / n, dtype=dtype)
    v = matvec(x.copy())
    if n == 1:
        return float(abs(v[0]))
    est = float(np.sum(np.abs(v)))

    def sign_of(z):
        if complex_case:
            a = np.abs(z)
            out = np.where(a == 0, 1.0 + 0j, z / np.where(a == 0, 1, a))
            return out.astype(dtype)
        return np.where(z >= 0, 1.0, -1.0).astype(dtype)

    x = sign_of(v)
    x = rmatvec(x)
    jlast = -1
    for _ in range(itmax):
        j = int(np.argmax(np.abs(x.real) if complex_case else np.abs(x)))
        if complex_case:
            j = int(np.argmax(np.abs(x)))
        if j == jlast:
            break
        jlast = j
        x = np.zeros(n, dtype=dtype)
        x[j] = 1.0
        v = matvec(x)
        est_old = est
        est = float(np.sum(np.abs(v)))
        if est <= est_old:
            break
        x = sign_of(v)
        x = rmatvec(x)

    # Alternative estimate from a sweep with alternating-magnitude vector
    # (protects against the power-method-style stagnation).
    alt = np.array([1.0 + i / (n - 1) if n > 1 else 1.0 for i in range(n)],
                   dtype=dtype)
    alt[1::2] *= -1
    v = matvec(alt)
    alt_est = 2.0 * float(np.sum(np.abs(v))) / (3.0 * n)
    return max(est, alt_est)
