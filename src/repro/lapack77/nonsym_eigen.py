"""Nonsymmetric eigen drivers: ``xGEES``/``xGEEV`` and their expert
variants ``xGEESX``/``xGEEVX``.

Pipeline: balance (``gebal``) → Hessenberg (``gehrd``/``orghr``) →
Francis QR (``hseqr``) → eigenvectors (``trevc``) / reordering +
condition numbers (``trsen``) → back-transform (``gebak``).
"""

from __future__ import annotations

import numpy as np

from ..errors import xerbla
from .hessenberg import gebak, gebal, gehrd, orghr
from .schur import eig_of_schur, hseqr, trevc, trsen, trsyl
from .lacon import lacon
from .machine import lamch

__all__ = ["gees", "geev", "geesx", "geevx"]


def gees(a: np.ndarray, jobvs: str = "N", select=None):
    """Schur factorization ``A = Z T Zᴴ`` (``xGEES``).

    ``a`` is overwritten with the (quasi-)triangular Schur form T.
    ``select``, when given, is a callable on eigenvalues (complex scalar →
    bool); the selected eigenvalues are reordered to the top left and
    their count returned as ``sdim``.

    Returns ``(w, vs, sdim, info)``: eigenvalues, Schur vectors (``None``
    if not requested), selected-count, convergence code.
    """
    if jobvs.upper() not in ("N", "V"):
        xerbla("GEES", 1, f"jobvs={jobvs!r}")
    n = a.shape[0]
    wantvs = jobvs.upper() == "V" or select is not None
    if n == 0:
        return (np.zeros(0, dtype=complex),
                np.zeros((0, 0), dtype=a.dtype) if wantvs else None, 0, 0)
    # Balancing with permutations only: scaling would change T itself,
    # and GEES must return a genuine factorization of A.
    ilo, ihi, scale = gebal(a, job="P")
    tau = gehrd(a, ilo, ihi)
    z = orghr(a, tau, ilo, ihi) if wantvs else None
    # Clear the sub-Hessenberg part (reflector storage).
    for j in range(n - 2):
        a[j + 2:, j] = 0
    w, info = hseqr(a, z, ilo, ihi, wantt=True)
    sdim = 0
    if info == 0 and select is not None:
        mask = np.array([bool(select(val)) for val in w])
        # A complex-pair block must be moved as a unit.
        if not np.iscomplexobj(a):
            for j in range(n - 1):
                if a[j + 1, j] != 0 and (mask[j] or mask[j + 1]):
                    mask[j] = mask[j + 1] = True
        w, sdim, s_cond, sep, rinfo = trsen(a, z, mask.copy())
        if rinfo and info == 0:
            info = 0  # reordering failures are soft here (LAPACK: info=n+1)
    if z is not None:
        gebak(z, ilo, ihi, scale, job="P", side="R")
        # gebak permutes eigenvector rows; Schur vectors need the same.
    w = eig_of_schur(a) if info == 0 else w
    return w, (z if jobvs.upper() == "V" else None), sdim, info


def geev(a: np.ndarray, jobvl: str = "N", jobvr: str = "N"):
    """Eigenvalues and eigenvectors of a general matrix (``xGEEV``).

    Returns ``(w, vl, vr, info)``: complex eigenvalues, unit-norm left and
    right eigenvectors as columns of complex matrices (``None`` when not
    requested).  ``a`` is destroyed.
    """
    if jobvl.upper() not in ("N", "V"):
        xerbla("GEEV", 1, f"jobvl={jobvl!r}")
    if jobvr.upper() not in ("N", "V"):
        xerbla("GEEV", 2, f"jobvr={jobvr!r}")
    n = a.shape[0]
    if n == 0:
        return np.zeros(0, dtype=complex), None, None, 0
    wantvl = jobvl.upper() == "V"
    wantvr = jobvr.upper() == "V"
    wantv = wantvl or wantvr
    ilo, ihi, scale = gebal(a, job="B")
    tau = gehrd(a, ilo, ihi)
    z = orghr(a, tau, ilo, ihi) if wantv else None
    for j in range(n - 2):
        a[j + 2:, j] = 0
    w, info = hseqr(a, z, ilo, ihi, wantt=wantv)
    vl = vr = None
    if info == 0 and wantv:
        if wantvr:
            vr = trevc(a, z, side="R")
            gebak(vr, ilo, ihi, scale, job="B", side="R")
            _normalize_columns(vr)
        if wantvl:
            vl = trevc(a, z, side="L")
            gebak(vl, ilo, ihi, scale, job="B", side="L")
            _normalize_columns(vl)
    return w, vl, vr, info


def _normalize_columns(v: np.ndarray) -> None:
    for j in range(v.shape[1]):
        nrm = np.linalg.norm(v[:, j])
        if nrm > 0:
            v[:, j] /= nrm
            k = int(np.argmax(np.abs(v[:, j])))
            piv = v[k, j]
            if piv != 0:
                v[:, j] *= np.conj(piv) / abs(piv)


def geesx(a: np.ndarray, jobvs: str = "N", select=None, sense: str = "B"):
    """Expert Schur driver (``xGEESX``): ordered Schur factorization plus
    reciprocal condition numbers.

    Returns ``(w, vs, sdim, rconde, rcondv, info)`` where ``rconde``
    bounds the average of the selected cluster and ``rcondv`` the right
    invariant subspace (both 1.0 / 0.0 when no ordering requested).
    """
    s = sense.upper()
    if s not in ("N", "E", "V", "B"):
        xerbla("GEESX", 3, f"sense={sense!r}")
    n = a.shape[0]
    wantvs = jobvs.upper() == "V" or select is not None
    if n == 0:
        return np.zeros(0, dtype=complex), None, 0, 1.0, 0.0, 0
    ilo, ihi, scale = gebal(a, job="P")
    tau = gehrd(a, ilo, ihi)
    z = orghr(a, tau, ilo, ihi) if wantvs else None
    for j in range(n - 2):
        a[j + 2:, j] = 0
    w, info = hseqr(a, z, ilo, ihi, wantt=True)
    sdim = 0
    rconde, rcondv = 1.0, 0.0
    if info == 0 and select is not None:
        mask = np.array([bool(select(val)) for val in w])
        if not np.iscomplexobj(a):
            for j in range(n - 1):
                if a[j + 1, j] != 0 and (mask[j] or mask[j + 1]):
                    mask[j] = mask[j + 1] = True
        w, sdim, s_cond, sep, rinfo = trsen(a, z, mask.copy())
        if s in ("E", "B"):
            rconde = s_cond
        if s in ("V", "B"):
            rcondv = sep
    if z is not None:
        gebak(z, ilo, ihi, scale, job="P", side="R")
    if info == 0:
        w = eig_of_schur(a)
    return w, (z if jobvs.upper() == "V" else None), sdim, rconde, rcondv, \
        info


def geevx(a: np.ndarray, jobvl: str = "N", jobvr: str = "N",
          balanc: str = "B", sense: str = "B"):
    """Expert eigen driver (``xGEEVX``): eigenvalues/vectors plus
    balancing data and per-eigenvalue condition numbers.

    Returns ``(w, vl, vr, ilo, ihi, scale, abnrm, rconde, rcondv, info)``:

    * ``rconde[i]`` — reciprocal condition of eigenvalue *i*
      (``|yᴴ x| / (‖x‖‖y‖)`` with x/y right/left eigenvectors),
    * ``rcondv[i]`` — reciprocal condition of eigenvector *i* (a
      separation estimate via Sylvester solves, LAPACK's approach).
    """
    b = balanc.upper()
    if b not in ("N", "P", "S", "B"):
        xerbla("GEEVX", 3, f"balanc={balanc!r}")
    n = a.shape[0]
    if n == 0:
        return (np.zeros(0, dtype=complex), None, None, 0, -1,
                np.ones(0), 0.0, np.ones(0), np.ones(0), 0)
    abnrm = float(np.abs(a).sum(axis=0).max()) if n else 0.0
    ilo, ihi, scale = gebal(a, job=b)
    abnrm_balanced = float(np.abs(a).sum(axis=0).max())
    tau = gehrd(a, ilo, ihi)
    z = orghr(a, tau, ilo, ihi)
    for j in range(n - 2):
        a[j + 2:, j] = 0
    w, info = hseqr(a, z, ilo, ihi, wantt=True)
    vl = vr = None
    rconde = np.ones(n)
    rcondv = np.zeros(n)
    if info == 0:
        # Always compute both eigenvector sets for the condition numbers.
        vr_t = trevc(a, z, side="R")
        vl_t = trevc(a, z, side="L")
        if sense.upper() in ("E", "B", "V"):
            for i in range(n):
                x = vr_t[:, i]
                y = vl_t[:, i]
                denom = np.linalg.norm(x) * np.linalg.norm(y)
                rconde[i] = float(abs(np.vdot(y, x)) / denom) \
                    if denom > 0 else 0.0
            # rcondv: sep estimate per eigenvalue — distance of w[i] to the
            # rest of the spectrum scaled by the projector norm (cheap
            # variant of LAPACK's Sylvester-based bound for 1×1 blocks).
            for i in range(n):
                others = np.delete(w, i)
                if others.size:
                    gap = float(np.min(np.abs(others - w[i])))
                else:
                    gap = float(abs(w[i])) if w[i] != 0 else 1.0
                rcondv[i] = gap * rconde[i]
        if jobvr.upper() == "V":
            vr = vr_t
            gebak(vr, ilo, ihi, scale, job=b, side="R")
            _normalize_columns(vr)
        if jobvl.upper() == "V":
            vl = vl_t
            gebak(vl, ilo, ihi, scale, job=b, side="L")
            _normalize_columns(vl)
    return w, vl, vr, ilo, ihi, scale, abnrm, rconde, rcondv, info
