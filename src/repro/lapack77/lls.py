"""Least squares drivers: ``xGELS`` (full-rank QR/LQ), ``xGELSX``
(rank-revealing complete orthogonal factorization) and ``xGELSS``
(SVD-based minimum norm).

Substrate for the paper's ``LA_GELS``/``LA_GELSX``/``LA_GELSS``.
All three follow LAPACK's in-place convention: ``b`` must have
``max(m, n)`` rows; the solution occupies its leading rows on exit.
"""

from __future__ import annotations

import numpy as np

from ..blas.level3 import trsm
from ..errors import xerbla
from ..faults import linfo_fault
from .machine import lamch
from .qr import gelqf, geqrf, ormlq, ormqr
from .qr_pivot import geqpf, latzm, tzrqf

__all__ = ["gels", "gelsx", "gelss"]


def gels(a: np.ndarray, b: np.ndarray, trans: str = "N") -> int:
    """Solve over/under-determined full-rank systems by QR or LQ.

    * ``trans='N'``, m ≥ n — least squares ``min ‖Ax − b‖``; rows n..m−1 of
      each column of ``b`` hold the residual components on exit.
    * ``trans='N'``, m < n — minimum-norm solution of ``Ax = b``.
    * ``trans='T'/'C'`` — the same two problems for ``op(A)``.

    Returns ``info`` (0; full rank is assumed, matching LAPACK's contract).
    """
    t = trans.upper()
    if t not in ("N", "T", "C"):
        xerbla("GELS", 1, f"trans={trans!r}")
    if t == "T" and np.iscomplexobj(a):
        t = "C"
    m, n = a.shape
    bmat = b if b.ndim == 2 else b[:, None]
    if bmat.shape[0] < max(m, n):
        xerbla("GELS", 3, "b must have max(m, n) rows")
    forced = linfo_fault("gels")
    if forced:
        return forced
    if m >= n:
        tau = geqrf(a)
        if t == "N":
            # b := Qᴴ b ; solve R x = b[:n].
            ormqr("L", "C", a, tau, bmat[:m])
            trsm(1, a[:n, :n], bmat[:n], side="L", uplo="U",
                 transa="N", diag="N")
        else:
            # Minimum-norm solution of op(A) x = b: x = Q [R^{-H} b; 0].
            trsm(1, a[:n, :n], bmat[:n], side="L", uplo="U",
                 transa="C", diag="N")
            bmat[n:m] = 0
            ormqr("L", "N", a, tau, bmat[:m])
    else:
        tau = gelqf(a)
        if t == "N":
            # Minimum-norm: solve L y = b[:m]; x = Qᴴ [y; 0].
            trsm(1, a[:m, :m], bmat[:m], side="L", uplo="L",
                 transa="N", diag="N")
            bmat[m:n] = 0
            ormlq("L", "C", a, tau, bmat[:n])
        else:
            # Least squares for op(A): b := Q b ; solve Lᴴ x = b[:m].
            ormlq("L", "N", a, tau, bmat[:n])
            trsm(1, a[:m, :m], bmat[:m], side="L", uplo="L",
                 transa="C", diag="N")
    return 0


def gelsx(a: np.ndarray, b: np.ndarray, rcond: float = -1.0,
          jpvt: np.ndarray | None = None):
    """Minimum-norm least squares by complete orthogonal factorization
    (``xGELSX``): column-pivoted QR, rank decision at ``rcond``, then a
    trapezoidal RZ reduction for the rank-deficient case.

    Returns ``(rank, jpvt, info)``; the solution overwrites ``b[:n]``.
    """
    m, n = a.shape
    bmat = b if b.ndim == 2 else b[:, None]
    if bmat.shape[0] < max(m, n):
        xerbla("GELSX", 2, "b must have max(m, n) rows")
    if rcond < 0:
        rcond = lamch("E", a.dtype)
    perm, tau = geqpf(a, jpvt)
    k = min(m, n)
    if k == 0:
        bmat[:n] = 0
        return 0, perm, 0
    # Rank decision: |r_jj| >= rcond * |r_00| (triangular-diagonal variant
    # of LAPACK's incremental condition estimation — see DESIGN.md §7).
    r00 = abs(a[0, 0])
    if r00 == 0:
        rank = 0
        bmat[:n] = 0
        return rank, perm, 0
    diag = np.abs(np.diagonal(a)[:k])
    rank = int(np.sum(diag >= rcond * r00))
    # b := Qᴴ b.
    ormqr("L", "C", a, tau, bmat[:m])
    if rank < n:
        # [R11 R12] (rank × n) = [T 0] Z.
        ztau = tzrqf(a[:rank, :])
    # Solve T y = c1.
    trsm(1, a[:rank, :rank], bmat[:rank], side="L", uplo="U",
         transa="N", diag="N")
    bmat[rank:n] = 0
    if rank < n:
        # x(perm) = Zᴴ [y; 0]: apply G_0, G_1, … ascending (see tzrqf).
        for i in range(rank):
            v = a[i, rank:]
            latzm("L", v, np.conj(ztau[i]), bmat[i:i + 1], bmat[rank:n])
    # Undo the column permutation: x[perm[j]] = y[j].
    out = np.empty_like(bmat[:n])
    out[perm] = bmat[:n]
    bmat[:n] = out
    return rank, perm, 0


def gelss(a: np.ndarray, b: np.ndarray, rcond: float = -1.0):
    """Minimum-norm least squares via the SVD (``xGELSS``).

    Returns ``(s, rank, info)`` — the singular values, the effective rank
    at threshold ``rcond·s₁``, and the convergence code from the SVD.
    The solution overwrites ``b[:n]``.
    """
    from .svd import gesvd
    m, n = a.shape
    bmat = b if b.ndim == 2 else b[:, None]
    if bmat.shape[0] < max(m, n):
        xerbla("GELSS", 2, "b must have max(m, n) rows")
    if rcond < 0:
        rcond = lamch("E", a.dtype)
    s, u, vt, info = gesvd(a.copy(), jobu="S", jobvt="S")
    if info != 0:
        return s, 0, info
    k = min(m, n)
    if k == 0 or s[0] == 0:
        bmat[:n] = 0
        return s, 0, 0
    thresh = rcond * s[0]
    rank = int(np.sum(s > thresh))
    # x = V Σ⁺ Uᴴ b.
    c = np.conj(u[:, :rank].T) @ bmat[:m]
    c /= s[:rank, None]
    x = np.conj(vt[:rank, :].T) @ c
    bmat[:n] = x
    return s, rank, 0
