"""Auxiliary LAPACK routines: norms, copies, row swaps, scaled sums.

``xLANGE``-family norm computations (the substrate under the paper's
``LA_LANGE`` matrix-manipulation routine), plus ``laswp``/``lacpy``/
``laset``/``lassq`` utilities used throughout the factorizations.
"""

from __future__ import annotations

import numpy as np

from ..storage import band_to_full, sym_band_to_full, unpack

__all__ = [
    "lange", "lansy", "lanhe", "langb", "langt", "lansp", "lansb", "lanhs",
    "lantr", "lanst",
    "laswp", "lacpy", "laset", "lassq", "lapy2", "lapy3", "larnv",
]


def _norm_of(a: np.ndarray, norm: str):
    """Core norm dispatch on an explicit dense matrix."""
    c = norm.upper()[0]
    absa = np.abs(a)
    if c == "M":
        return absa.max() if a.size else 0.0
    if c in ("O", "1"):
        return absa.sum(axis=0).max() if a.size else 0.0
    if c == "I":
        return absa.sum(axis=1).max() if a.size else 0.0
    if c in ("F", "E"):
        if a.size == 0:
            return 0.0
        amax = absa.max()
        if amax == 0:
            return 0.0
        scaled = absa / amax
        return float(amax) * float(np.sqrt(np.sum(scaled * scaled)))
    raise ValueError(f"illegal norm selector {norm!r}")


def lange(norm: str, a: np.ndarray):
    """Norm of a general rectangular matrix.

    ``norm``: 'M' (max |a_ij|), '1'/'O' (1-norm), 'I' (infinity norm),
    'F'/'E' (Frobenius).
    """
    return _norm_of(a, norm)


def _sym_full(a: np.ndarray, uplo: str, hermitian: bool) -> np.ndarray:
    if uplo.upper() == "U":
        full = np.triu(a) + (np.conj(np.triu(a, 1)).T if hermitian
                             else np.triu(a, 1).T)
    else:
        full = np.tril(a) + (np.conj(np.tril(a, -1)).T if hermitian
                             else np.tril(a, -1).T)
    if hermitian:
        np.fill_diagonal(full, full.diagonal().real)
    return full


def lansy(norm: str, a: np.ndarray, uplo: str = "U"):
    """Norm of a symmetric matrix stored in one triangle."""
    return _norm_of(_sym_full(a, uplo, False), norm)


def lanhe(norm: str, a: np.ndarray, uplo: str = "U"):
    """Norm of a Hermitian matrix stored in one triangle."""
    return _norm_of(_sym_full(a, uplo, True), norm)


def langb(norm: str, ab: np.ndarray, kl: int, ku: int, m: int | None = None):
    """Norm of a general band matrix in LAPACK band storage."""
    n = ab.shape[1]
    if m is None:
        m = n
    return _norm_of(band_to_full(ab, m, n, kl, ku), norm)


def langt(norm: str, dl: np.ndarray, d: np.ndarray, du: np.ndarray):
    """Norm of a general tridiagonal matrix given by its three diagonals."""
    n = d.shape[0]
    a = np.zeros((n, n), dtype=np.result_type(dl.dtype, d.dtype, du.dtype))
    a[np.arange(n), np.arange(n)] = d
    if n > 1:
        a[np.arange(1, n), np.arange(n - 1)] = dl
        a[np.arange(n - 1), np.arange(1, n)] = du
    return _norm_of(a, norm)


def lanst(norm: str, d: np.ndarray, e: np.ndarray):
    """Norm of a symmetric tridiagonal matrix (diagonal d, off-diagonal e)."""
    return langt(norm, e, d, e)


def lansp(norm: str, ap: np.ndarray, n: int, uplo: str = "U",
          hermitian: bool = False):
    """Norm of a symmetric/Hermitian matrix in packed storage."""
    full = unpack(ap, n, uplo=uplo, symmetric=not hermitian,
                  hermitian=hermitian)
    return _norm_of(full, norm)


def lansb(norm: str, ab: np.ndarray, n: int, uplo: str = "U",
          hermitian: bool = False):
    """Norm of a symmetric/Hermitian band matrix."""
    return _norm_of(sym_band_to_full(ab, n, uplo=uplo, hermitian=hermitian),
                    norm)


def lanhs(norm: str, a: np.ndarray):
    """Norm of an upper Hessenberg matrix (dense storage)."""
    return _norm_of(np.triu(a, -1), norm)


def lantr(norm: str, a: np.ndarray, uplo: str = "U", diag: str = "N"):
    """Norm of a triangular (possibly unit-diagonal, possibly trapezoidal)
    matrix."""
    m, n = a.shape
    t = np.triu(a) if uplo.upper() == "U" else np.tril(a)
    if diag.upper() == "U":
        k = min(m, n)
        t = t.copy()
        t[np.arange(k), np.arange(k)] = 1
    return _norm_of(t, norm)


def laswp(a: np.ndarray, ipiv: np.ndarray, k1: int = 0, k2: int | None = None,
          forward: bool = True) -> np.ndarray:
    """Apply a sequence of row interchanges to ``a`` (in place).

    ``ipiv[k]`` (0-based) says row ``k`` was swapped with row ``ipiv[k]``.
    ``forward=False`` applies them in reverse order (the inverse permutation).
    """
    if k2 is None:
        k2 = len(ipiv)
    ks = range(k1, k2) if forward else range(k2 - 1, k1 - 1, -1)
    for k in ks:
        p = ipiv[k]
        if p != k:
            a[[k, p], :] = a[[p, k], :]
    return a


def lacpy(a: np.ndarray, b: np.ndarray, uplo: str = "A") -> np.ndarray:
    """Copy all of ``a`` (uplo='A'), or just its upper/lower triangle,
    into ``b``."""
    u = uplo.upper()
    if u == "A":
        b[...] = a
    elif u == "U":
        iu = np.triu_indices(a.shape[0], 0, a.shape[1])
        b[iu] = a[iu]
    else:
        il = np.tril_indices(a.shape[0], 0, a.shape[1])
        b[il] = a[il]
    return b


def laset(a: np.ndarray, alpha=0.0, beta=0.0, uplo: str = "A") -> np.ndarray:
    """Set the off-diagonal of ``a`` (or one triangle) to ``alpha`` and the
    diagonal to ``beta`` (in place)."""
    u = uplo.upper()
    m, n = a.shape
    if u == "A":
        a[...] = alpha
    elif u == "U":
        a[np.triu_indices(m, 1, n)] = alpha
    else:
        a[np.tril_indices(m, -1, n)] = alpha
    k = min(m, n)
    a[np.arange(k), np.arange(k)] = beta
    return a


def lassq(x: np.ndarray, scale: float = 0.0, sumsq: float = 1.0):
    """Scaled sum of squares: returns ``(scale, sumsq)`` with
    ``scale²·sumsq = scale₀²·sumsq₀ + Σ|x_i|²``, overflow-safe."""
    absx = np.abs(x[x != 0]) if x.size else np.empty(0)
    if np.iscomplexobj(x):
        parts = np.concatenate([np.abs(x.real), np.abs(x.imag)])
        absx = parts[parts != 0]
    for v in absx:
        v = float(v)
        if scale < v:
            sumsq = 1.0 + sumsq * (scale / v) ** 2
            scale = v
        else:
            sumsq += (v / scale) ** 2
    return scale, sumsq


def lapy2(x: float, y: float) -> float:
    """``sqrt(x² + y²)`` without unnecessary overflow."""
    return float(np.hypot(x, y))


def lapy3(x: float, y: float, z: float) -> float:
    """``sqrt(x² + y² + z²)`` without unnecessary overflow."""
    w = max(abs(x), abs(y), abs(z))
    if w == 0:
        return 0.0
    return w * float(np.sqrt((x / w) ** 2 + (y / w) ** 2 + (z / w) ** 2))


def larnv(idist: int, n: int, dtype=np.float64, rng=None) -> np.ndarray:
    """Random vector generator, ``xLARNV`` semantics.

    ``idist``: 1 → uniform(0,1); 2 → uniform(-1,1); 3 → normal(0,1).
    Complex dtypes get independent real and imaginary parts.
    """
    if rng is None:
        rng = np.random.default_rng()
    kind = np.dtype(dtype).kind

    def draw():
        if idist == 1:
            return rng.uniform(0, 1, n)
        if idist == 2:
            return rng.uniform(-1, 1, n)
        if idist == 3:
            return rng.standard_normal(n)
        raise ValueError("idist must be 1, 2 or 3")

    if kind == "c":
        return np.asarray(draw() + 1j * draw(), dtype=dtype)
    return np.asarray(draw(), dtype=dtype)
