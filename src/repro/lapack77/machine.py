"""Machine parameters: the ``xLAMCH`` analogue, backed by ``np.finfo``.

The paper's Appendix F reports ``the machine eps = 0.11921E-06`` — single
precision epsilon — which is exactly ``lamch('E', np.float32)`` here.
"""

from __future__ import annotations

import numpy as np

__all__ = ["lamch"]

_FLOAT_FOR = {
    np.dtype(np.float32): np.float32,
    np.dtype(np.float64): np.float64,
    np.dtype(np.complex64): np.float32,
    np.dtype(np.complex128): np.float64,
}


def lamch(cmach: str, dtype=np.float64) -> float:
    """Return a machine parameter for the real type underlying ``dtype``.

    Supported queries (LAPACK letters):

    * ``'E'`` — relative machine epsilon (LAPACK's eps = ulp/2 convention
      is *not* used; we return ``np.finfo.eps``, matching the value the
      paper prints for single precision),
    * ``'S'`` — safe minimum, such that 1/S does not overflow,
    * ``'P'`` — precision, ``eps * base``,
    * ``'U'`` — underflow threshold (smallest normal),
    * ``'O'`` — overflow threshold,
    * ``'B'`` — base of the machine,
    * ``'M'`` — minimum exponent, ``'L'`` — maximum exponent,
    * ``'N'`` — number of digits in the mantissa,
    * ``'R'`` — 1.0 if rounding occurs in addition.
    """
    real = _FLOAT_FOR[np.dtype(dtype)]
    fi = np.finfo(real)
    c = cmach.upper()[0]
    if c == "E":
        return float(fi.eps)
    if c == "S":
        sfmin = float(fi.tiny)
        small = 1.0 / float(fi.max)
        if small >= sfmin:
            # Use SMALL plus a bit, to avoid the possibility of rounding
            # causing overflow when computing 1/sfmin (LAPACK comment).
            sfmin = small * (1.0 + float(fi.eps))
        return sfmin
    if c == "P":
        return float(fi.eps) * 2.0
    if c == "U":
        return float(fi.tiny)
    if c == "O":
        return float(fi.max)
    if c == "B":
        return 2.0
    if c == "M":
        return float(fi.minexp)
    if c == "L":
        return float(fi.maxexp)
    if c == "N":
        return float(fi.nmant + 1)
    if c == "R":
        return 1.0
    raise ValueError(f"unknown machine parameter query {cmach!r}")
