"""Tridiagonal solvers: general (``xGTTRF/xGTTRS/xGTSV``) and symmetric
positive definite (``xPTTRF/xPTTRS/xPTSV``), with condition estimation and
refinement.

Substrate for the paper's ``LA_GTSV``/``LA_GTSVX``/``LA_PTSV``/``LA_PTSVX``
drivers.  Diagonals are the natural vector inputs (``dl``, ``d``, ``du``),
factor outputs overwrite them in place, exactly like LAPACK.
"""

from __future__ import annotations

import numpy as np

from ..errors import xerbla
from .lacon import lacon
from .machine import lamch

__all__ = ["gttrf", "gttrs", "gtsv", "gtcon", "gtrfs",
           "pttrf", "pttrs", "ptsv", "ptcon", "ptrfs",
           "gt_matvec", "pt_matvec"]


def gt_matvec(dl, d, du, x, trans="N"):
    """Tridiagonal matrix-vector (or matrix-matrix) product ``op(A) @ x``."""
    t = trans.upper()
    if t == "N":
        lo, di, up = dl, d, du
    elif t == "T":
        lo, di, up = du, d, dl
    else:
        lo, di, up = np.conj(du), np.conj(d), np.conj(dl)
    xm = x if x.ndim == 2 else x[:, None]
    n = di.shape[0]
    y = di[:, None] * xm
    if n > 1:
        y[1:] += lo[:, None] * xm[:-1]
        y[:-1] += up[:, None] * xm[1:]
    return y if x.ndim == 2 else y[:, 0]


def pt_matvec(d, e, x):
    """SPD-tridiagonal product: real diagonal ``d``, subdiagonal ``e``."""
    xm = x if x.ndim == 2 else x[:, None]
    y = d[:, None] * xm
    if d.shape[0] > 1:
        y[1:] += e[:, None] * xm[:-1]
        y[:-1] += np.conj(e)[:, None] * xm[1:]
    return y if x.ndim == 2 else y[:, 0]


def gttrf(dl: np.ndarray, d: np.ndarray, du: np.ndarray):
    """LU factorization of a general tridiagonal matrix with partial
    pivoting (in place).

    On exit ``dl`` holds the multipliers, ``d``/``du`` the main and first
    superdiagonal of U.  Returns ``(du2, ipiv, info)`` — the second
    superdiagonal of U and 0-based pivots (``ipiv[i] ∈ {i, i+1}``).
    """
    n = d.shape[0]
    if dl.shape[0] != max(n - 1, 0) or du.shape[0] != max(n - 1, 0):
        xerbla("GTTRF", 1, "diagonal length mismatch")
    du2 = np.zeros(max(n - 2, 0), dtype=d.dtype)
    ipiv = np.arange(n, dtype=np.int64)
    info = 0
    mag = (lambda z: abs(z.real) + abs(z.imag)) if np.iscomplexobj(d) \
        else abs
    for i in range(n - 1):
        if mag(d[i]) >= mag(dl[i]):
            ipiv[i] = i
            if d[i] != 0:
                fact = dl[i] / d[i]
                dl[i] = fact
                d[i + 1] -= fact * du[i]
            if i < n - 2:
                du2[i] = 0
        else:
            ipiv[i] = i + 1
            fact = d[i] / dl[i]
            d[i] = dl[i]
            dl[i] = fact
            temp = du[i]
            du[i] = d[i + 1]
            d[i + 1] = temp - fact * d[i + 1]
            if i < n - 2:
                du2[i] = du[i + 1]
                du[i + 1] = -fact * du[i + 1]
    if info == 0:
        zero = np.where(d == 0)[0]
        if zero.size:
            info = int(zero[0]) + 1
    return du2, ipiv, info


def gttrs(dl, d, du, du2, ipiv, b, trans: str = "N") -> int:
    """Solve ``op(A) X = B`` from ``gttrf`` factors (B in place)."""
    t = trans.upper()
    if t not in ("N", "T", "C"):
        xerbla("GTTRS", 1, f"trans={trans!r}")
    n = d.shape[0]
    bmat = b if b.ndim == 2 else b[:, None]
    if bmat.shape[0] != n:
        xerbla("GTTRS", 6, "dimension mismatch")
    if n == 0:
        return 0
    if t == "N":
        # Solve L x = b.
        for i in range(n - 1):
            if ipiv[i] == i:
                bmat[i + 1] -= dl[i] * bmat[i]
            else:
                temp = bmat[i].copy()
                bmat[i] = bmat[i + 1]
                bmat[i + 1] = temp - dl[i] * bmat[i]
        # Solve U x = b.
        bmat[n - 1] /= d[n - 1]
        if n > 1:
            bmat[n - 2] = (bmat[n - 2] - du[n - 2] * bmat[n - 1]) / d[n - 2]
        for i in range(n - 3, -1, -1):
            bmat[i] = (bmat[i] - du[i] * bmat[i + 1]
                       - du2[i] * bmat[i + 2]) / d[i]
    else:
        conj = (lambda z: np.conj(z)) if t == "C" else (lambda z: z)
        # Solve Uᵀ x = b (forward).
        bmat[0] /= conj(d[0])
        if n > 1:
            bmat[1] = (bmat[1] - conj(du[0]) * bmat[0]) / conj(d[1])
        for i in range(2, n):
            bmat[i] = (bmat[i] - conj(du[i - 1]) * bmat[i - 1]
                       - conj(du2[i - 2]) * bmat[i - 2]) / conj(d[i])
        # Solve Lᵀ x = b (backward).
        for i in range(n - 2, -1, -1):
            if ipiv[i] == i:
                bmat[i] -= conj(dl[i]) * bmat[i + 1]
            else:
                temp = bmat[i + 1].copy()
                bmat[i + 1] = bmat[i] - conj(dl[i]) * temp
                bmat[i] = temp
    return 0


def gtsv(dl, d, du, b):
    """Solve a general tridiagonal system (``xGTSV``); diagonals and B are
    overwritten.  Returns ``info``."""
    du2, ipiv, info = gttrf(dl, d, du)
    if info == 0:
        gttrs(dl, d, du, du2, ipiv, b)
    return info


def gtcon(dl, d, du, du2, ipiv, anorm: float, norm: str = "1"):
    """Reciprocal condition estimate for a general tridiagonal matrix.

    Returns ``(rcond, info)``.
    """
    if norm.upper() not in ("1", "O", "I"):
        xerbla("GTCON", 1, f"norm={norm!r}")
    n = d.shape[0]
    if n == 0:
        return 1.0, 0
    if anorm == 0:
        return 0.0, 0
    if np.any(d == 0):
        return 0.0, 0

    def solve(x):
        y = x.copy()
        gttrs(dl, d, du, du2, ipiv, y, trans="N")
        return y

    def solve_h(x):
        y = x.copy()
        gttrs(dl, d, du, du2, ipiv, y,
              trans="C" if np.iscomplexobj(d) else "T")
        return y

    if norm.upper() in ("1", "O"):
        est = lacon(n, solve, solve_h, dtype=d.dtype)
    else:
        est = lacon(n, solve_h, solve, dtype=d.dtype)
    return (1.0 / (est * anorm) if est else 0.0), 0


def gtrfs(dl, d, du, dlf, df, duf, du2, ipiv, b, x, trans: str = "N",
          itmax: int = 5):
    """Iterative refinement + error bounds for tridiagonal systems
    (``xGTRFS``).  Returns ``(ferr, berr, info)``; ``x`` refined in place."""
    n = d.shape[0]
    bmat = b if b.ndim == 2 else b[:, None]
    xmat = x if x.ndim == 2 else x[:, None]
    nrhs = bmat.shape[1]
    ferr = np.zeros(nrhs)
    berr = np.zeros(nrhs)
    if n == 0 or nrhs == 0:
        return ferr, berr, 0
    eps = lamch("E", d.dtype)
    safmin = lamch("S", d.dtype)
    safe1 = (n + 1) * safmin
    safe2 = safe1 / eps
    t = trans.upper()
    adl, ad, adu = np.abs(dl), np.abs(d), np.abs(du)
    for j in range(nrhs):
        count, lstres = 1, 3.0
        while True:
            r = bmat[:, j] - gt_matvec(dl, d, du, xmat[:, j], trans=t)
            ax = gt_matvec(adl, ad, adu, np.abs(xmat[:, j]),
                           trans="N" if t == "N" else "T")
            denom = ax + np.abs(bmat[:, j])
            num = np.abs(r)
            with np.errstate(divide="ignore", invalid="ignore"):
                ratios = np.where(denom > safe2, num / denom,
                                  (num + safe1) / (denom + safe1))
            berr[j] = float(np.max(ratios))
            if berr[j] > eps and berr[j] <= 0.5 * lstres and count <= itmax:
                dx = r.copy()
                gttrs(dlf, df, duf, du2, ipiv, dx, trans=t)
                xmat[:, j] += dx
                lstres = berr[j]
                count += 1
            else:
                break
        r = bmat[:, j] - gt_matvec(dl, d, du, xmat[:, j], trans=t)
        ax = gt_matvec(adl, ad, adu, np.abs(xmat[:, j]),
                       trans="N" if t == "N" else "T")
        f = np.abs(r) + (n + 1) * eps * (ax + np.abs(bmat[:, j]))
        f = np.where(f > safe2, f, f + safe1)

        def mv(v):
            w = f * v
            gttrs(dlf, df, duf, du2, ipiv, w, trans=t)
            return w

        def rmv(v):
            if t == "T" and np.iscomplexobj(v):
                w = np.conj(v)
                gttrs(dlf, df, duf, du2, ipiv, w, trans="N")
                w = np.conj(w)
            else:
                w = v.copy()
                gttrs(dlf, df, duf, du2, ipiv, w,
                      trans={"N": "C", "T": "N", "C": "N"}[t])
            return f * w

        est = lacon(n, mv, rmv, dtype=d.dtype)
        xnorm = float(np.max(np.abs(xmat[:, j])))
        ferr[j] = est / xnorm if xnorm > 0 else est
    return ferr, berr, 0


def pttrf(d: np.ndarray, e: np.ndarray) -> int:
    """``L D Lᴴ`` factorization of an SPD/HPD tridiagonal matrix (in place).

    ``d`` (real) holds D on exit, ``e`` the subdiagonal multipliers of L.
    Returns ``info`` (``i+1`` flags loss of positive definiteness at step i).
    """
    n = d.shape[0]
    if e.shape[0] != max(n - 1, 0):
        xerbla("PTTRF", 2, "off-diagonal length mismatch")
    for i in range(n - 1):
        if d[i].real <= 0:
            return i + 1
        ei = e[i]
        e[i] = ei / d[i]
        d[i + 1] = d[i + 1] - (e[i] * np.conj(ei)).real
    if d[n - 1].real <= 0:
        return n
    return 0


def pttrs(d: np.ndarray, e: np.ndarray, b: np.ndarray) -> int:
    """Solve from the ``pttrf`` factors (B in place)."""
    n = d.shape[0]
    bmat = b if b.ndim == 2 else b[:, None]
    if bmat.shape[0] != n:
        xerbla("PTTRS", 3, "dimension mismatch")
    for i in range(1, n):
        bmat[i] -= e[i - 1] * bmat[i - 1]
    bmat /= d[:, None].real if np.iscomplexobj(d) else d[:, None]
    for i in range(n - 2, -1, -1):
        bmat[i] -= np.conj(e[i]) * bmat[i + 1]
    return 0


def ptsv(d: np.ndarray, e: np.ndarray, b: np.ndarray) -> int:
    """Solve an SPD/HPD tridiagonal system (``xPTSV``); returns ``info``."""
    info = pttrf(d, e)
    if info == 0:
        pttrs(d, e, b)
    return info


def ptcon(d: np.ndarray, e: np.ndarray, anorm: float):
    """Reciprocal condition estimate from ``pttrf`` factors.

    LAPACK's ``xPTCON`` computes the exact 1-norm of the inverse via the
    positivity structure; we use the same lacon machinery as the other
    families (documented deviation, same accuracy class).
    Returns ``(rcond, info)``.
    """
    n = d.shape[0]
    if n == 0:
        return 1.0, 0
    if anorm == 0:
        return 0.0, 0
    if np.any(d.real <= 0):
        return 0.0, 0

    def solve(x):
        y = x.copy()
        pttrs(d, e, y)
        return y

    est = lacon(n, solve, solve, dtype=np.result_type(d.dtype, e.dtype))
    return (1.0 / (est * anorm) if est else 0.0), 0


def ptrfs(d, e, df, ef, b, x, itmax: int = 5):
    """Iterative refinement + error bounds for SPD tridiagonal systems.

    ``d``/``e`` are the original diagonals, ``df``/``ef`` the factors.
    Returns ``(ferr, berr, info)``; ``x`` refined in place."""
    n = d.shape[0]
    bmat = b if b.ndim == 2 else b[:, None]
    xmat = x if x.ndim == 2 else x[:, None]
    nrhs = bmat.shape[1]
    ferr = np.zeros(nrhs)
    berr = np.zeros(nrhs)
    if n == 0 or nrhs == 0:
        return ferr, berr, 0
    eps = lamch("E", np.result_type(d.dtype, e.dtype))
    safmin = lamch("S", np.result_type(d.dtype, e.dtype))
    safe1 = (n + 1) * safmin
    safe2 = safe1 / eps
    ad, ae = np.abs(d), np.abs(e)
    for j in range(nrhs):
        count, lstres = 1, 3.0
        while True:
            r = bmat[:, j] - pt_matvec(d, e, xmat[:, j])
            denom = pt_matvec(ad, ae, np.abs(xmat[:, j])) + np.abs(bmat[:, j])
            num = np.abs(r)
            with np.errstate(divide="ignore", invalid="ignore"):
                ratios = np.where(denom > safe2, num / denom,
                                  (num + safe1) / (denom + safe1))
            berr[j] = float(np.max(ratios))
            if berr[j] > eps and berr[j] <= 0.5 * lstres and count <= itmax:
                dx = r.copy()
                pttrs(df, ef, dx)
                xmat[:, j] += dx
                lstres = berr[j]
                count += 1
            else:
                break
        r = bmat[:, j] - pt_matvec(d, e, xmat[:, j])
        f = np.abs(r) + (n + 1) * eps * (
            pt_matvec(ad, ae, np.abs(xmat[:, j])) + np.abs(bmat[:, j]))
        f = np.where(f > safe2, f, f + safe1)

        def mv(v):
            w = f * v
            pttrs(df, ef, w)
            return w

        est = lacon(n, mv, mv, dtype=np.result_type(d.dtype, e.dtype))
        xnorm = float(np.max(np.abs(xmat[:, j])))
        ferr[j] = est / xnorm if xnorm > 0 else est
    return ferr, berr, 0
