"""Triangular computational routines: ``xTRTRS`` (solve), ``xTRTRI``
(invert) and ``xTRCON`` (condition estimate).

These complete the linear-equation substrate: the LU/Cholesky paths use
``trsm`` directly, but the standalone triangular routines are part of
LAPACK's user-visible surface (and ``trtri`` is the kernel inside
``getri``).
"""

from __future__ import annotations

import numpy as np

from ..blas.level3 import trsm
from ..errors import xerbla
from .lacon import lacon
from .lautil import lantr

__all__ = ["trtri", "trti2", "trtrs", "trcon"]


def trti2(a: np.ndarray, uplo: str = "U", diag: str = "N") -> int:
    """Unblocked in-place inversion of a triangular matrix (``xTRTI2``).

    Returns ``info`` (``j+1`` if the matrix is singular at diagonal j).
    """
    if uplo.upper() not in ("U", "L"):
        xerbla("TRTI2", 1, f"uplo={uplo!r}")
    if diag.upper() not in ("N", "U"):
        xerbla("TRTI2", 2, f"diag={diag!r}")
    n = a.shape[0]
    up = uplo.upper() == "U"
    unit = diag.upper() == "U"
    if not unit:
        zero = np.where(a.diagonal() == 0)[0]
        if zero.size:
            return int(zero[0]) + 1
    if up:
        for j in range(n):
            if unit:
                ajj = -1.0
            else:
                a[j, j] = 1.0 / a[j, j]
                ajj = -a[j, j]
            if j > 0:
                # x := T(0:j, 0:j) x  (triangular matvec on stored inverse)
                t = np.triu(a[:j, :j])
                if unit:
                    t = t.copy()
                    np.fill_diagonal(t, 1)
                a[:j, j] = t @ a[:j, j]
                a[:j, j] *= ajj
    else:
        for j in range(n - 1, -1, -1):
            if unit:
                ajj = -1.0
            else:
                a[j, j] = 1.0 / a[j, j]
                ajj = -a[j, j]
            if j < n - 1:
                t = np.tril(a[j + 1:, j + 1:])
                if unit:
                    t = t.copy()
                    np.fill_diagonal(t, 1)
                a[j + 1:, j] = t @ a[j + 1:, j]
                a[j + 1:, j] *= ajj
    return 0


def trtri(a: np.ndarray, uplo: str = "U", diag: str = "N") -> int:
    """In-place inversion of a triangular matrix (``xTRTRI``).

    Returns ``info``.
    """
    return trti2(a, uplo, diag)


def trtrs(a: np.ndarray, b: np.ndarray, uplo: str = "U", trans: str = "N",
          diag: str = "N") -> int:
    """Solve ``op(A) X = B`` with A triangular (``xTRTRS``; B in place).

    Returns ``info`` (``j+1`` when A is exactly singular — the solve is
    not performed then, matching LAPACK).
    """
    if uplo.upper() not in ("U", "L"):
        xerbla("TRTRS", 1, f"uplo={uplo!r}")
    if trans.upper() not in ("N", "T", "C"):
        xerbla("TRTRS", 2, f"trans={trans!r}")
    if diag.upper() not in ("N", "U"):
        xerbla("TRTRS", 3, f"diag={diag!r}")
    n = a.shape[0]
    if b.shape[0] != n:
        xerbla("TRTRS", 5, "dimension mismatch")
    if diag.upper() == "N":
        zero = np.where(a.diagonal() == 0)[0]
        if zero.size:
            return int(zero[0]) + 1
    bmat = b if b.ndim == 2 else b[:, None]
    trsm(1, a, bmat, side="L", uplo=uplo, transa=trans, diag=diag)
    return 0


def trcon(a: np.ndarray, uplo: str = "U", diag: str = "N",
          norm: str = "1"):
    """Reciprocal condition estimate of a triangular matrix (``xTRCON``).

    Returns ``(rcond, info)``.
    """
    if norm.upper() not in ("1", "O", "I"):
        xerbla("TRCON", 1, f"norm={norm!r}")
    n = a.shape[0]
    if n == 0:
        return 1.0, 0
    anorm = lantr(norm, a, uplo=uplo, diag=diag)
    if anorm == 0:
        return 0.0, 0

    def solve(x):
        y = x.copy()
        trsm(1, a, y[:, None], side="L", uplo=uplo, transa="N", diag=diag)
        return y

    def solve_h(x):
        y = x.copy()
        trsm(1, a, y[:, None], side="L", uplo=uplo, transa="C", diag=diag)
        return y

    if norm.upper() in ("1", "O"):
        est = lacon(n, solve, solve_h, dtype=a.dtype)
    else:
        est = lacon(n, solve_h, solve, dtype=a.dtype)
    return (1.0 / (est * anorm) if est else 0.0), 0
