"""Givens rotation kernels: ``xLARTG`` and the multi-rotation ``xLASR``.

These drive the implicit-shift QL/QR eigenvalue iterations (``steqr``),
the bidiagonal SVD iteration (``bdsqr``) and the QZ sweeps.
"""

from __future__ import annotations

import numpy as np

__all__ = ["lartg", "lartg_c", "lasr", "rot_rows", "rot_cols", "lanv2"]


def lartg(f: float, g: float):
    """Generate a real plane rotation: ``(c, s, r)`` with
    ``[[c, s], [-s, c]] [f; g] = [r; 0]`` and ``c² + s² = 1``."""
    if g == 0.0:
        return 1.0, 0.0, float(f)
    if f == 0.0:
        return 0.0, 1.0, float(g)
    r = float(np.hypot(f, g))
    if abs(f) > abs(g) and f < 0:
        r = -r
    return f / r, g / r, r


def lartg_c(f, g):
    """Complex plane rotation (``zlartg``): ``c`` real, ``s`` complex, with
    ``[[c, s], [-conj(s), c]] [f; g] = [r; 0]``."""
    if g == 0:
        return 1.0, 0j, f
    if f == 0:
        absg = abs(g)
        return 0.0, np.conj(g) / absg, absg
    d = np.sqrt(abs(f) ** 2 + abs(g) ** 2)
    c = abs(f) / d
    ff = f / abs(f)
    s = ff * np.conj(g) / d
    r = ff * d
    return float(c), s, r


def rot_rows(a: np.ndarray, i: int, j: int, c, s) -> None:
    """Apply ``[[c, s], [-conj(s), c]]`` to rows ``i`` and ``j`` of ``a``."""
    ri = a[i].copy()
    a[i] = c * ri + s * a[j]
    a[j] = -np.conj(s) * ri + c * a[j]


def rot_cols(a: np.ndarray, i: int, j: int, c, s) -> None:
    """Apply the rotation from the right to columns ``i``, ``j`` of ``a``:
    ``[a_i, a_j] := [a_i, a_j] · [[c, -conj(s)], [s, c]]ᵀ``-style update
    matching LAPACK's right-multiplication in ``xSTEQR``."""
    ci = a[:, i].copy()
    a[:, i] = c * ci + s * a[:, j]
    a[:, j] = -np.conj(s) * ci + c * a[:, j]


def lasr(side: str, pivot: str, direct: str, c: np.ndarray, s: np.ndarray,
         a: np.ndarray) -> np.ndarray:
    """Apply a sequence of plane rotations to ``a`` (``xLASR`` subset:
    pivot='V' — rotations act on adjacent rows/columns).

    side='L': ``A := P A`` where P is the product of rotations P_k acting on
    rows (k, k+1); side='R': ``A := A Pᵀ`` acting on columns (k, k+1).
    direct='F' applies P = P_{z-1}···P_0, 'B' the reverse.
    """
    if pivot.upper() != "V":
        raise NotImplementedError("only pivot='V' is used in this package")
    z = len(c)
    order = range(z) if direct.upper() == "F" else range(z - 1, -1, -1)
    if side.upper() == "L":
        for k in order:
            ck, sk = c[k], s[k]
            if ck != 1 or sk != 0:
                r1 = a[k].copy()
                a[k] = ck * r1 + sk * a[k + 1]
                a[k + 1] = -sk * r1 + ck * a[k + 1]
    else:
        for k in order:
            ck, sk = c[k], s[k]
            if ck != 1 or sk != 0:
                c1 = a[:, k].copy()
                a[:, k] = ck * c1 + sk * a[:, k + 1]
                a[:, k + 1] = -sk * c1 + ck * a[:, k + 1]
    return a


def lanv2(a: float, b: float, c: float, d: float):
    """Standardize a real 2×2 block: compute the Schur factorization of
    ``[[a, b], [c, d]]``.

    Returns ``(aa, bb, cc, dd, rt1r, rt1i, rt2r, rt2i, cs, sn)`` where the
    rotated block ``[[aa, bb], [cc, dd]]`` is either upper triangular (real
    eigenvalues) or has ``aa == dd`` and ``bb*cc < 0`` (complex pair), as in
    LAPACK's ``xLANV2``.
    """
    eps = np.finfo(np.float64).eps
    if c == 0.0:
        cs, sn = 1.0, 0.0
    elif b == 0.0:
        # Swap rows and columns.
        cs, sn = 0.0, 1.0
        a, b, c, d = d, -c, 0.0, a
    elif (a - d) == 0.0 and np.sign(b) != np.sign(c):
        cs, sn = 1.0, 0.0
    else:
        temp = a - d
        p = 0.5 * temp
        bcmax = max(abs(b), abs(c))
        bcmis = min(abs(b), abs(c)) * np.sign(b) * np.sign(c)
        scale = max(abs(p), bcmax)
        z = p / scale * p + (bcmax / scale) * bcmis
        if z >= 4.0 * eps:
            # Real eigenvalues: compute a and d.
            z = p + np.sign(p if p != 0 else 1.0) * np.sqrt(scale) * np.sqrt(z)
            a = d + z
            d = d - (bcmax / z) * bcmis
            tau = float(np.hypot(c, z))
            cs, sn = z / tau, c / tau
            b = b - c
            c = 0.0
        else:
            # Complex eigenvalues, or real (almost) equal eigenvalues.
            sigma = b + c
            tau = float(np.hypot(sigma, temp))
            cs = np.sqrt(0.5 * (1.0 + abs(sigma) / tau))
            sn = -(p / (tau * cs)) * np.sign(sigma if sigma != 0 else 1.0)
            # [[aa bb]; [cc dd]] = [[a b]; [c d]] [[cs -sn]; [sn cs]]
            aa = a * cs + b * sn
            bb = -a * sn + b * cs
            cc = c * cs + d * sn
            dd = -c * sn + d * cs
            # then premultiply by [[cs sn]; [-sn cs]]
            a = aa * cs + cc * sn
            b = bb * cs + dd * sn
            c = -aa * sn + cc * cs
            d = -bb * sn + dd * cs
            temp = 0.5 * (a + d)
            a = d = temp
            if c != 0.0:
                if b != 0.0:
                    if np.sign(b) == np.sign(c):
                        # Real eigenvalues: reduce to upper triangular.
                        sab = np.sqrt(abs(b))
                        sac = np.sqrt(abs(c))
                        p = np.sign(c) * sab * sac
                        tau = 1.0 / np.sqrt(abs(b + c))
                        a = temp + p
                        d = temp - p
                        b = b - c
                        c = 0.0
                        cs1 = sab * tau
                        sn1 = sac * tau
                        cs, sn = cs * cs1 - sn * sn1, cs * sn1 + sn * cs1
                else:
                    b, c = -c, 0.0
                    cs, sn = -sn, cs
    # Eigenvalues.
    rt1r, rt2r = a, d
    if c == 0.0:
        rt1i = rt2i = 0.0
    else:
        rt1i = np.sqrt(abs(b)) * np.sqrt(abs(c))
        rt2i = -rt1i
    return a, b, c, d, rt1r, rt1i, rt2r, rt2i, cs, sn
