"""Generalized symmetric-definite eigenproblems.

* ``sygst``/``hegst`` — reduce ``A x = λ B x`` (itype 1), ``A B x = λ x``
  (itype 2) or ``B A x = λ x`` (itype 3) to standard form using the
  Cholesky factor of B,
* ``sygv``/``hegv`` — full drivers,
* ``spgv``/``hpgv`` — packed variants, ``sbgv``/``hbgv`` — band variants
  (both via dense expansion; DESIGN.md §7).

Failure coding matches LAPACK: ``info ≤ n`` comes from the eigensolver;
``info = n + i`` means the leading minor of order *i* of B is not
positive definite.
"""

from __future__ import annotations

import numpy as np

from ..blas.level3 import trmm, trsm
from ..errors import xerbla
from ..storage import sym_band_to_full, unpack
from .chol import potrf
from .syev import syev, heev, syevd, heevd

__all__ = ["sygst", "hegst", "sygv", "hegv", "spgv", "hpgv", "sbgv", "hbgv"]


def _symmetrize(a: np.ndarray, hermitian: bool) -> None:
    a += np.conj(a.T) if hermitian else a.T
    a *= 0.5
    if hermitian:
        np.fill_diagonal(a, a.diagonal().real)


def sygst(a: np.ndarray, b: np.ndarray, itype: int = 1,
          uplo: str = "U", hermitian: bool = False) -> int:
    """Reduce a generalized symmetric-definite problem to standard form
    (in place on the *full* matrix ``a``).

    ``b`` must already hold the Cholesky factor from :func:`potrf`.
    itype 1: ``A := inv(F)ᴴ A inv(F)``; itype 2/3: ``A := F A Fᴴ``-style
    (with F = U or L per ``uplo``).  Returns ``info`` (0).
    """
    if itype not in (1, 2, 3):
        xerbla("SYGST", 1, f"itype={itype}")
    up = uplo.upper() == "U"
    if itype == 1:
        if up:
            trsm(1, b, a, side="L", uplo="U", transa="C", diag="N")
            trsm(1, b, a, side="R", uplo="U", transa="N", diag="N")
        else:
            trsm(1, b, a, side="L", uplo="L", transa="N", diag="N")
            trsm(1, b, a, side="R", uplo="L", transa="C", diag="N")
    else:
        if up:
            trmm(1, b, a, side="L", uplo="U", transa="N", diag="N")
            trmm(1, b, a, side="R", uplo="U", transa="C", diag="N")
        else:
            trmm(1, b, a, side="L", uplo="L", transa="C", diag="N")
            trmm(1, b, a, side="R", uplo="L", transa="N", diag="N")
    _symmetrize(a, hermitian)
    return 0


def hegst(a, b, itype=1, uplo="U"):
    """Hermitian variant of :func:`sygst`."""
    return sygst(a, b, itype=itype, uplo=uplo, hermitian=True)


def _gv_driver(a, b, itype, jobz, uplo, hermitian, method="qr"):
    n = a.shape[0]
    info = potrf(b, uplo)
    if info != 0:
        rdtype = np.float32 if a.dtype in (np.float32, np.complex64) \
            else np.float64
        return np.zeros(n, dtype=rdtype), n + info
    sygst(a, b, itype=itype, uplo=uplo, hermitian=hermitian)
    if hermitian:
        eig = heevd if method == "dc" else heev
    else:
        eig = syevd if method == "dc" else syev
    w, info = eig(a, jobz=jobz, uplo=uplo)
    if info != 0 or jobz.upper() != "V":
        return w, info
    up = uplo.upper() == "U"
    if itype in (1, 2):
        # x = inv(U) y ('U') or inv(Lᴴ) y ('L').
        if up:
            trsm(1, b, a, side="L", uplo="U", transa="N", diag="N")
        else:
            trsm(1, b, a, side="L", uplo="L", transa="C", diag="N")
    else:
        # x = Uᴴ y ('U') or L y ('L').
        if up:
            trmm(1, b, a, side="L", uplo="U", transa="C", diag="N")
        else:
            trmm(1, b, a, side="L", uplo="L", transa="N", diag="N")
    return w, info


def sygv(a: np.ndarray, b: np.ndarray, itype: int = 1, jobz: str = "N",
         uplo: str = "U"):
    """Generalized symmetric-definite eigen driver (``xSYGV``).

    ``a`` holds eigenvectors on exit (jobz='V'), normalized B-orthonormally
    for itype 1/2; ``b`` holds the Cholesky factor.  Returns ``(w, info)``.
    """
    if jobz.upper() not in ("N", "V"):
        xerbla("SYGV", 4, f"jobz={jobz!r}")
    return _gv_driver(a, b, itype, jobz, uplo, hermitian=False)


def hegv(a: np.ndarray, b: np.ndarray, itype: int = 1, jobz: str = "N",
         uplo: str = "U"):
    """Generalized Hermitian-definite eigen driver (``xHEGV``)."""
    if jobz.upper() not in ("N", "V"):
        xerbla("HEGV", 4, f"jobz={jobz!r}")
    return _gv_driver(a, b, itype, jobz, uplo, hermitian=True)


def spgv(ap, bp, n, itype: int = 1, jobz: str = "N", uplo: str = "U",
         method: str = "qr"):
    """Packed generalized symmetric-definite driver (``xSPGV``/``xSPGVD``).

    Returns ``(w, z, info)`` where ``z`` is ``None`` unless jobz='V'.
    """
    hermitian = np.iscomplexobj(np.asarray(ap))
    a = unpack(np.asarray(ap), n, uplo=uplo, symmetric=not hermitian,
               hermitian=hermitian)
    b = unpack(np.asarray(bp), n, uplo=uplo, symmetric=not hermitian,
               hermitian=hermitian)
    w, info = _gv_driver(a, b, itype, jobz, uplo, hermitian, method)
    return w, (a if jobz.upper() == "V" else None), info


def hpgv(ap, bp, n, itype=1, jobz="N", uplo="U"):
    """Packed generalized Hermitian-definite driver (``xHPGV``)."""
    return spgv(ap, bp, n, itype=itype, jobz=jobz, uplo=uplo)


def sbgv(ab, bb, n, jobz: str = "N", uplo: str = "U"):
    """Band generalized symmetric-definite driver (``xSBGV``; itype 1 only,
    as in LAPACK).

    Returns ``(w, z, info)``.
    """
    hermitian = np.iscomplexobj(np.asarray(ab))
    a = sym_band_to_full(np.asarray(ab), n, uplo=uplo, hermitian=hermitian)
    b = sym_band_to_full(np.asarray(bb), n, uplo=uplo, hermitian=hermitian)
    w, info = _gv_driver(a, b, 1, jobz, uplo, hermitian)
    return w, (a if jobz.upper() == "V" else None), info


def hbgv(ab, bb, n, jobz="N", uplo="U"):
    """Band generalized Hermitian-definite driver (``xHBGV``)."""
    return sbgv(ab, bb, n, jobz=jobz, uplo=uplo)
