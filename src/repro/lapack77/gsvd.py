"""Generalized singular value decomposition (``xGGSVD``).

Construction (DESIGN.md §7): QR of the stacked matrix + CS decomposition
of the partitioned orthonormal factor, built on this package's SVD —
the textbook GSVD route (Golub & Van Loan §8.7.4) rather than LAPACK's
``xGGSVP``/``xTGSJA`` Jacobi pipeline.  Requires ``[A; B]`` to have full
column rank (LAPACK's ``k + l = n`` case).

For ``A`` (m×n) and ``B`` (p×n) it produces::

    A = U · D1 · R · Qᴴ        (D1 m×n, D1[i, i] = alpha_i)
    B = V · D2 · R · Qᴴ        (D2 p×n, D2[i−k, i] = beta_i for i ≥ k)

with ``alpha² + beta² = 1``, U/V/Q unitary and R upper triangular —
LAPACK's D1/D2 layout for the ``k + l = n`` case.
"""

from __future__ import annotations

import numpy as np

from ..errors import xerbla
from .machine import lamch
from .qr import geqrf, orgqr
from .svd import gesvd

__all__ = ["ggsvd"]


def _rq(m: np.ndarray):
    """RQ factorization ``M = R Q`` of a square matrix (R upper
    triangular, Q unitary): ``MᴴJ = Q₁R₁`` ⇒ ``M = (J R₁ᴴ J)(J Q₁ᴴ)``."""
    n = m.shape[0]
    flip = slice(None, None, -1)
    x = np.conj(m.T)[:, flip].copy()     # = Mᴴ J
    tau = geqrf(x)
    r1 = np.triu(x[:n, :])
    q1 = orgqr(x, tau)
    r = np.conj(r1.T)[flip, :][:, flip]  # J R₁ᴴ J — upper triangular
    q = np.conj(q1.T)[flip, :]           # J Q₁ᴴ
    return r, q


def _complete_unitary(cols: list[np.ndarray], dim: int, dtype) -> np.ndarray:
    """Extend a list of orthonormal columns to a full dim×dim unitary by
    Gram–Schmidt against the canonical basis."""
    basis = [c.astype(dtype, copy=True) for c in cols]
    e = 0
    while len(basis) < dim and e < 2 * dim:
        cand = np.zeros(dim, dtype=dtype)
        cand[e % dim] = 1
        for bvec in basis:
            cand = cand - np.vdot(bvec, cand) * bvec
        nrm = np.linalg.norm(cand)
        if nrm > 0.3:
            basis.append(cand / nrm)
        e += 1
    return np.column_stack(basis)


def ggsvd(a: np.ndarray, b: np.ndarray):
    """GSVD of the pair (A, B); see the module docstring for the form.

    Returns ``(alpha, beta, k, l, u, v, q, r, info)``:

    * ``alpha``/``beta`` — cosines (descending) and sines per column,
    * ``k`` — number of leading pairs with ``beta ≈ 0`` (pure-A
      directions); ``l = n − k`` (the full-rank k+l split),
    * ``u`` (m×m), ``v`` (p×p), ``q`` (n×n) unitary, ``r`` (n×n) upper
      triangular.
    """
    m, n = a.shape
    p = b.shape[0]
    if b.shape[1] != n:
        xerbla("GGSVD", 2, "A and B must have the same column count")
    if m + p < n:
        xerbla("GGSVD", 1, "[A; B] must have full column rank (m+p >= n)")
    dtype = np.result_type(a.dtype, b.dtype, np.float64 if
                           np.dtype(a.dtype).kind != "c" else np.complex128)
    c = np.zeros((m + p, n), dtype=dtype)
    c[:m] = a
    c[m:] = b
    tau = geqrf(c)
    rc = np.triu(c[:n, :]).copy()
    qc = orgqr(c, tau)                   # (m+p)×n orthonormal columns
    q1 = qc[:m, :]
    q2 = qc[m:, :]
    # CS decomposition via the SVD of the top block: Q1 = U·D1·Wᴴ.
    # jobvt='A' keeps the full n×n W even when m < n (the extra columns
    # are pure-B directions with cosine 0).
    svals, u_s, wt, info = gesvd(q1.copy(), jobu="S", jobvt="A")
    if info != 0:
        return (np.zeros(n), np.zeros(n), 0, n, None, None, None, None,
                info)
    alpha = np.zeros(n)
    alpha[: svals.shape[0]] = np.clip(svals, 0.0, 1.0)
    beta = np.sqrt(np.clip(1.0 - alpha * alpha, 0.0, None))
    w = np.conj(wt.T)
    eps = lamch("E", dtype)
    # β = √(1−α²) loses half the digits near α = 1, so the deflation
    # threshold is O(√eps) (the usual CS-decomposition tolerance).
    thresh = 8.0 * np.sqrt(eps * max(m, n, p))
    # alpha descends ⇒ beta ascends: the k deflated (β≈0) slots lead.
    beta = np.where(beta > thresh, beta, 0.0)
    k = int(np.sum(beta == 0.0))
    # At most p sines can be live (rank(B) ≤ p): enforce structurally.
    if n - k > p:
        k = n - p
        beta[:k] = 0.0
    l = n - k                            # number of live sines (≤ p)
    # Bottom block: Q2 W = V·D2 (exact since Q2ᴴQ2 = I − Q1ᴴQ1), with
    # LAPACK's D2 layout: D2[i−k, i] = β_i for i ≥ k.  So V's column j
    # (j < l) is x[:, k+j]/β_{k+j}; the rest completes the unitary.
    x = q2 @ w
    live = [x[:, k + j] / beta[k + j] for j in range(l)]
    v = _complete_unitary(live, p, dtype) if p else np.zeros((0, 0), dtype)
    # Middle factor: A = U·D1·(Wᴴ Rc); make it triangular with RQ.
    mid = np.conj(w.T) @ rc
    r, qrows = _rq(mid)
    q = np.conj(qrows.T)                 # so that  mid = R Qᴴ
    # Full U: extend the n columns of u_s when m > n.
    if u_s.shape[1] < m:
        u = _complete_unitary(list(u_s.T), m, dtype)
    else:
        u = u_s
    return alpha, beta, k, l, u, v, q, r, 0
