"""Band tridiagonalization: ``xSBTRD``/``xHBTRD`` by Givens bulge
chasing (the Schwarz/Rutishauser scheme LAPACK's routine descends from).

Each elimination rotates a plane ``(i−1, i)`` to annihilate the
outermost in-band entry of a column; the rotation spills a bulge one
bandwidth further down, which is chased off the end with rotations every
``kd`` rows.  All applications are windowed to the band, so the
reduction costs ``O(n² kd)`` flops instead of the dense ``O(n³)`` — the
genuinely banded algorithm the earlier dense-expansion substitution
stood in for (DESIGN.md §7).

The matrix is held in full symmetric storage here (both triangles kept
in sync); the band *structure* is exploited through the windowed
updates.  The driver converts from LAPACK band storage at entry.
"""

from __future__ import annotations

import numpy as np

from ..errors import xerbla
from ..storage import sym_band_to_full

__all__ = ["sbtrd", "hbtrd"]


def _apply_sym_rot(a: np.ndarray, p: int, q: int, c: float, s,
                   kd: int, hermitian: bool) -> None:
    """Apply the similarity ``G A Gᴴ`` for a rotation in plane (p, q)
    (q = p+1), touching only the band window around the plane."""
    n = a.shape[0]
    lo = max(0, p - kd - 1)
    hi = min(n, q + kd + 2)
    cs = np.conj(s) if hermitian else s
    # Rows p, q over the window (G A).
    rp = a[p, lo:hi].copy()
    rq = a[q, lo:hi]
    a[p, lo:hi] = c * rp + s * rq
    a[q, lo:hi] = -cs * rp + c * rq
    # Columns p, q over the window (· Gᴴ).
    cp = a[lo:hi, p].copy()
    cq = a[lo:hi, q]
    a[lo:hi, p] = c * cp + cs * cq
    a[lo:hi, q] = -s * cp + c * cq


def _givens(f, g, hermitian: bool):
    """Rotation with ``G [f; g] = [r; 0]``; c real, s matching the
    symmetric (real s) or Hermitian (complex s) update convention."""
    if g == 0:
        return 1.0, 0.0 * g, f
    if f == 0:
        if hermitian:
            ag = abs(g)
            return 0.0, g / ag, ag
        return 0.0, 1.0 + 0 * g, g
    if hermitian:
        d = np.sqrt(abs(f) ** 2 + abs(g) ** 2)
        c = abs(f) / d
        ph = f / abs(f)
        s = ph * np.conj(g) / d
        return float(c), s, ph * d
    r = float(np.hypot(f, g))
    return f / r, g / r, r


def _bandtrd(a: np.ndarray, kd: int, q: np.ndarray | None,
             hermitian: bool):
    """Core reduction on full symmetric storage with band windowing."""
    n = a.shape[0]
    rdtype = np.float32 if a.dtype in (np.float32, np.complex64) \
        else np.float64
    if kd <= 1:
        d = a.diagonal().real.astype(rdtype) if hermitian \
            else a.diagonal().astype(rdtype)
        e = (a.diagonal(-1).copy() if n > 1
             else np.zeros(0, dtype=a.dtype))
        if hermitian and n > 1:
            # Make the subdiagonal real with a diagonal unitary.
            phase = np.ones(n, dtype=a.dtype)
            ereal = np.zeros(n - 1, dtype=rdtype)
            for i in range(n - 1):
                # T := Dᴴ T D with D = diag(phase) makes e real:
                # phase_{i+1} = e_i·phase_i / |e_i·phase_i|.
                v = e[i] * phase[i]
                av = abs(v)
                ereal[i] = av
                phase[i + 1] = v / av if av > 0 else phase[i]
            if q is not None:
                q *= phase[None, :]
            return d, ereal, 0
        return d, np.asarray(e.real if hermitian else e,
                             dtype=rdtype), 0
    for k in range(n - 2):
        # Annihilate the outermost in-band entries of column k, from the
        # bottom of the band upward.
        for r in range(min(kd, n - 1 - k), 1, -1):
            i = k + r              # entry a[i, k] to annihilate
            if a[i, k] == 0:
                continue
            c, s, _ = _givens(a[i - 1, k], a[i, k], hermitian)
            _apply_sym_rot(a, i - 1, i, c, s, kd, hermitian)
            if q is not None:
                # Q := Q Gᴴ (so that A₀ = Q T Qᴴ).
                cp = q[:, i - 1].copy()
                sq = np.conj(s) if hermitian else s
                q[:, i - 1] = c * cp + sq * q[:, i]
                q[:, i] = -s * cp + c * q[:, i]
            a[i, k] = 0
            a[k, i] = 0
            # Chase the bulge created at (i-1+kd+1, i-1) down the band.
            j = i - 1
            while j + kd + 1 < n:
                bi = j + kd + 1    # bulge row
                if a[bi, j] == 0:
                    break
                c, s, _ = _givens(a[bi - 1, j], a[bi, j], hermitian)
                _apply_sym_rot(a, bi - 1, bi, c, s, kd, hermitian)
                if q is not None:
                    cp = q[:, bi - 1].copy()
                    sq = np.conj(s) if hermitian else s
                    q[:, bi - 1] = c * cp + sq * q[:, bi]
                    q[:, bi] = -s * cp + c * q[:, bi]
                a[bi, j] = 0
                a[j, bi] = 0
                j = bi - 1
    d = a.diagonal().real.astype(rdtype) if hermitian \
        else a.diagonal().astype(rdtype)
    e = a.diagonal(-1).copy()
    if hermitian and n > 1:
        phase = np.ones(n, dtype=a.dtype)
        ereal = np.zeros(n - 1, dtype=rdtype)
        for i in range(n - 1):
            v = e[i] * phase[i]
            av = abs(v)
            ereal[i] = av
            phase[i + 1] = v / av if av > 0 else phase[i]
        if q is not None:
            q *= phase[None, :]
        return d, ereal, 0
    return d, np.asarray(e.real if hermitian else e, dtype=rdtype), 0


def sbtrd(ab: np.ndarray, uplo: str = "U", vect: str = "N",
          hermitian: bool | None = None):
    """Reduce a symmetric/Hermitian band matrix (LAPACK ``(kd+1, n)``
    band storage) to tridiagonal form by Givens bulge chasing.

    ``vect='V'`` also returns the accumulated unitary Q with
    ``A = Q T Qᴴ``.  Returns ``(d, e, q, info)`` (``q`` is ``None`` for
    vect='N').
    """
    if uplo.upper() not in ("U", "L"):
        xerbla("SBTRD", 2, f"uplo={uplo!r}")
    if vect.upper() not in ("N", "V"):
        xerbla("SBTRD", 3, f"vect={vect!r}")
    n = ab.shape[1]
    kd = ab.shape[0] - 1
    if hermitian is None:
        hermitian = np.iscomplexobj(ab)
    a = sym_band_to_full(ab, n, uplo=uplo, hermitian=hermitian)
    q = np.eye(n, dtype=a.dtype) if vect.upper() == "V" else None
    d, e, info = _bandtrd(a, kd, q, hermitian)
    return d, e, q, info


def hbtrd(ab: np.ndarray, uplo: str = "U", vect: str = "N"):
    """Hermitian variant of :func:`sbtrd` (``xHBTRD``)."""
    return sbtrd(ab, uplo=uplo, vect=vect, hermitian=True)
