"""Singular value decomposition: ``xGEBRD`` (bidiagonal reduction),
``xORGBR`` (accumulate the transformations), ``xBDSQR`` (implicit-shift
QR on the bidiagonal) and the ``xGESVD`` driver.

Substrate for the paper's ``LA_GESVD`` and ``LA_GELSS``.
"""

from __future__ import annotations

import numpy as np

from ..errors import xerbla
from ..faults import linfo_fault
from .householder import larf_left, larf_right, larfg
from .machine import lamch

__all__ = ["gebd2", "gebrd", "orgbr", "ormbr", "bdsqr", "gesvd"]


def gebd2(a: np.ndarray):
    """Unblocked bidiagonal reduction ``B = Qᴴ A P`` (in place), m ≥ n.

    Returns ``(d, e, tauq, taup)`` — real bidiagonal (main/super diagonal)
    and the reflector scalars.  Column reflector *i* is stored below the
    diagonal of column *i*; row reflector *i* right of the superdiagonal of
    row *i* (conjugated for complex data, LAPACK layout).
    """
    m, n = a.shape
    if m < n:
        raise ValueError("gebd2 requires m >= n (driver transposes)")
    rdtype = np.float32 if a.dtype in (np.float32, np.complex64) \
        else np.float64
    d = np.zeros(n, dtype=rdtype)
    e = np.zeros(max(n - 1, 0), dtype=rdtype)
    tauq = np.zeros(n, dtype=a.dtype)
    taup = np.zeros(n, dtype=a.dtype)
    cplx = np.iscomplexobj(a)
    for i in range(n):
        beta, tq = larfg(a[i, i], a[i + 1:, i])
        tauq[i] = tq
        d[i] = beta.real if cplx else beta
        if i < n - 1 and tq != 0:
            v = np.empty(m - i, dtype=a.dtype)
            v[0] = 1
            v[1:] = a[i + 1:, i]
            larf_left(v, np.conj(tq), a[i:, i + 1:])
        if i < n - 1:
            if cplx:
                a[i, i + 1:] = np.conj(a[i, i + 1:])
            beta, tp = larfg(a[i, i + 1], a[i, i + 2:])
            taup[i] = tp
            e[i] = beta.real if cplx else beta
            if tp != 0:
                v = np.empty(n - i - 1, dtype=a.dtype)
                v[0] = 1
                v[1:] = a[i, i + 2:]
                larf_right(v, tp, a[i + 1:, i + 1:])
            if cplx:
                a[i, i + 2:] = np.conj(a[i, i + 2:])
            a[i, i + 1] = e[i]
        else:
            taup[i] = 0
        a[i, i] = d[i]
    return d, e, tauq, taup


def gebrd(a: np.ndarray):
    """Bidiagonal reduction (``xGEBRD``); delegates to the unblocked
    kernel (LAPACK's blocked ``xLABRD`` form is a performance variant with
    identical output)."""
    return gebd2(a)


def orgbr(vect: str, a: np.ndarray, tauq: np.ndarray, taup: np.ndarray,
          ncols: int | None = None):
    """Accumulate the bidiagonal-reduction transformations (``xORGBR``).

    ``vect='Q'``: return Q (m×k, k = ``ncols`` or n) from the column
    reflectors stored in ``a``.
    ``vect='P'``: return ``Pᴴ`` (n×n) from the row reflectors.
    ``a`` is the ``gebrd`` output and is not modified.
    """
    m, n = a.shape
    v = vect.upper()
    if v == "Q":
        k = n if ncols is None else ncols
        q = np.zeros((m, k), dtype=a.dtype)
        q[np.arange(min(m, k)), np.arange(min(m, k))] = 1
        for i in range(n - 1, -1, -1):
            if tauq[i] == 0:
                continue
            vec = np.empty(m - i, dtype=a.dtype)
            vec[0] = 1
            vec[1:] = a[i + 1:, i]
            larf_left(vec, tauq[i], q[i:, :])
        return q
    if v == "P":
        vt = np.zeros((n, n), dtype=a.dtype)
        vt[np.arange(n), np.arange(n)] = 1
        # VT = Pᴴ = G(k-1)ᴴ ··· G(0)ᴴ; the innermost factor G(0)ᴴ hits the
        # identity first, so apply in ascending order.
        cplx = np.iscomplexobj(a)
        for i in range(n - 1):
            if taup[i] == 0:
                continue
            vec = np.empty(n - i - 1, dtype=a.dtype)
            vec[0] = 1
            vec[1:] = np.conj(a[i, i + 2:]) if cplx else a[i, i + 2:]
            larf_left(vec, np.conj(taup[i]), vt[i + 1:, :])
        return vt
    xerbla("ORGBR", 1, f"vect={vect!r}")


def bdsqr(d: np.ndarray, e: np.ndarray, vt: np.ndarray | None = None,
          u: np.ndarray | None = None, maxiter_factor: int = 40) -> int:
    """Implicit-shift QR iteration for an *upper* bidiagonal matrix
    (``xBDSQR``).

    On success ``d`` holds the singular values in descending order and the
    rotations are accumulated into ``u`` (columns) and ``vt`` (rows).
    Returns ``info`` (> 0: number of unconverged superdiagonals).
    """
    n = d.shape[0]
    if n == 0:
        return 0
    eps = lamch("E", d.dtype)
    rv1 = np.zeros(n, dtype=np.float64)
    rv1[1:] = e[: n - 1]
    w = d.astype(np.float64).copy()
    anorm = float(np.max(np.abs(w) + np.abs(rv1)))
    if anorm == 0:
        d[:] = 0
        return 0
    info = 0

    def rot_u(i, j, c_, s_):
        if u is not None:
            col = u[:, i].copy()
            u[:, i] = col * c_ + u[:, j] * s_
            u[:, j] = -col * s_ + u[:, j] * c_

    def rot_v(i, j, c_, s_):
        if vt is not None:
            row = vt[i, :].copy()
            vt[i, :] = row * c_ + vt[j, :] * s_
            vt[j, :] = -row * s_ + vt[j, :] * c_

    for k in range(n - 1, -1, -1):
        for its in range(maxiter_factor):
            flag = True
            l = k
            while l >= 0:
                nm = l - 1
                if abs(rv1[l]) <= eps * anorm:
                    flag = False
                    break
                if nm >= 0 and abs(w[nm]) <= eps * anorm:
                    break
                l -= 1
            if flag and l > 0:
                # Cancellation: zero rv1[l] against the zero w[l-1].
                c_, s_ = 0.0, 1.0
                nm = l - 1
                for i in range(l, k + 1):
                    f = s_ * rv1[i]
                    rv1[i] = c_ * rv1[i]
                    if abs(f) <= eps * anorm:
                        break
                    g = w[i]
                    h = float(np.hypot(f, g))
                    w[i] = h
                    h = 1.0 / h
                    c_ = g * h
                    s_ = -f * h
                    rot_u(nm, i, c_, s_)
            z = w[k]
            if l == k:
                # Converged; enforce non-negative singular value.
                if z < 0:
                    w[k] = -z
                    if vt is not None:
                        vt[k, :] = -vt[k, :]
                break
            if its == maxiter_factor - 1:
                info += 1
                break
            # Shift from the bottom 2×2 minor.
            x = w[l]
            nm = k - 1
            y = w[nm]
            g = rv1[nm]
            h = rv1[k]
            f = ((y - z) * (y + z) + (g - h) * (g + h)) / (2.0 * h * y)
            g = float(np.hypot(f, 1.0))
            f = ((x - z) * (x + z)
                 + h * (y / (f + (g if f >= 0 else -g)) - h)) / x
            # QR sweep.
            c_ = s_ = 1.0
            for j in range(l, nm + 1):
                i = j + 1
                g = rv1[i]
                y = w[i]
                h = s_ * g
                g = c_ * g
                z = float(np.hypot(f, h))
                rv1[j] = z
                c_ = f / z
                s_ = h / z
                f = x * c_ + g * s_
                g = g * c_ - x * s_
                h = y * s_
                y *= c_
                rot_v(j, i, c_, s_)
                z = float(np.hypot(f, h))
                w[j] = z
                if z != 0:
                    z = 1.0 / z
                    c_ = f * z
                    s_ = h * z
                f = c_ * g + s_ * y
                x = c_ * y - s_ * g
                rot_u(j, i, c_, s_)
            rv1[l] = 0.0
            rv1[k] = f
            w[k] = x
    # Sort descending; permute u's columns and vt's rows.
    order = np.argsort(-w, kind="stable")
    w = w[order]
    d[:] = w
    e[:] = 0
    if u is not None:
        # Only the leading n columns participate in the rotations (jobu='A'
        # leaves the orthogonal complement untouched).
        u[:, :n] = u[:, :n][:, order]
    if vt is not None:
        vt[:n, :] = vt[:n, :][order, :]
    return info


def gesvd(a: np.ndarray, jobu: str = "N", jobvt: str = "N",
          superdiag=None):
    """Singular value decomposition ``A = U Σ Vᴴ`` (``xGESVD``).

    ``jobu``/``jobvt`` ∈ {'N', 'S', 'A'}: none, the leading min(m,n)
    singular vectors, or the full square factor.  ``a`` is destroyed.
    ``superdiag``, when given a length min(m,n)-1 buffer, receives the
    superdiagonal of the intermediate bidiagonal form as left by the QR
    iteration — all zero on convergence, the unconverged elements when
    ``info > 0`` (the LA_GESVD ``WW`` output).  Returns ``(s, u, vt,
    info)`` with ``s`` descending; ``u``/``vt`` are ``None`` when not
    requested.
    """
    ju, jvt = jobu.upper(), jobvt.upper()
    if ju not in ("N", "S", "A"):
        xerbla("GESVD", 2, f"jobu={jobu!r}")
    if jvt not in ("N", "S", "A"):
        xerbla("GESVD", 3, f"jobvt={jobvt!r}")
    m, n = a.shape
    rdtype = np.float32 if a.dtype in (np.float32, np.complex64) \
        else np.float64
    forced = linfo_fault("gesvd")
    if forced:
        if superdiag is not None:
            superdiag[:] = 0
        return np.zeros(min(m, n), dtype=rdtype), None, None, forced
    if min(m, n) == 0:
        s = np.zeros(0, dtype=rdtype)
        u = np.eye(m, dtype=a.dtype) if ju == "A" else None
        vt = np.eye(n, dtype=a.dtype) if jvt == "A" else None
        return s, u, vt, 0
    if m < n:
        # SVD of Aᴴ = V Σ Uᴴ, then swap the factors.
        s, v, ut, info = gesvd(np.conj(a.T).copy(), jobu=jvt, jobvt=ju,
                               superdiag=superdiag)
        u = np.conj(ut.T) if ut is not None else None
        vt = np.conj(v.T) if v is not None else None
        return s, u, vt, info
    d, e, tauq, taup = gebrd(a)
    u = None
    vt = None
    if ju != "N":
        u = orgbr("Q", a, tauq, taup, ncols=(m if ju == "A" else n))
    if jvt != "N":
        vt = orgbr("P", a, tauq, taup)
    s64 = d.astype(np.float64)
    e64 = e.astype(np.float64)
    info = bdsqr(s64, e64, vt=vt, u=u)
    s = s64.astype(rdtype)
    if superdiag is not None:
        k = min(superdiag.shape[0], e64.shape[0])
        superdiag[:k] = e64[:k]
    return s, u, vt, info


def ormbr(vect: str, side: str, trans: str, a: np.ndarray,
          tauq: np.ndarray, taup: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Multiply C by the Q or Pᴴ factor of a bidiagonal reduction
    (``xORMBR``), in place.

    ``vect='Q'``: apply op(Q) (the column-reflector product);
    ``vect='P'``: apply op(Pᴴ) — with ``trans='N'`` this is Pᴴ itself,
    matching LAPACK's convention that the stored operator is Pᴴ.
    """
    from .householder import larf_left, larf_right
    v = vect.upper()
    s = side.upper()
    t = trans.upper()
    if v not in ("Q", "P"):
        xerbla("ORMBR", 1, f"vect={vect!r}")
    if s not in ("L", "R"):
        xerbla("ORMBR", 2, f"side={side!r}")
    if t not in ("N", "T", "C"):
        xerbla("ORMBR", 3, f"trans={trans!r}")
    m, n = a.shape
    cplx = np.iscomplexobj(a)
    if v == "Q":
        # Q = H(0) H(1) ... H(n-1), reflectors in columns of a.
        k = min(m, n)
        forward = (s == "L") != (t == "N")
        order = range(k) if forward else range(k - 1, -1, -1)
        for i in order:
            vec = np.empty(m - i, dtype=a.dtype)
            vec[0] = 1
            vec[1:] = a[i + 1:, i]
            ti = np.conj(tauq[i]) if t in ("T", "C") else tauq[i]
            if s == "L":
                larf_left(vec, ti, c[i:, :])
            else:
                larf_right(vec, ti, c[:, i:])
    else:
        # Pᴴ = G(k-1)ᴴ ··· G(0)ᴴ with G(i) = I − taup_i u uᴴ, u from row i.
        k = min(m, n) - 1 if m >= n else min(m, n)
        k = min(k, n - 1)
        # op = Pᴴ for trans='N'; op = P for trans='T'/'C'.
        # Pᴴ x: apply G(0)ᴴ first (ascending); P x: G(k-1) first... P =
        # G(0) G(1) ··· so P x applies G(k-1) first (descending).
        applying_ph = (t == "N")
        if s == "L":
            order = range(k) if applying_ph else range(k - 1, -1, -1)
        else:
            # C Pᴴ = (P Cᴴ)ᴴ: right-side order flips.
            order = range(k - 1, -1, -1) if applying_ph else range(k)
        for i in order:
            vec = np.empty(n - i - 1, dtype=a.dtype)
            vec[0] = 1
            vec[1:] = np.conj(a[i, i + 2:]) if cplx else a[i, i + 2:]
            ti = np.conj(taup[i]) if applying_ph else taup[i]
            if s == "L":
                larf_left(vec, ti, c[i + 1:, :])
            else:
                larf_right(vec, ti, c[:, i + 1:])
    return c
