"""Symmetric/Hermitian eigenvalue drivers.

* ``syev``/``heev`` — QL-iteration drivers (``xSYEV``/``xHEEV``),
* ``syevd``/``heevd`` — divide-and-conquer drivers,
* ``syevx``/``heevx`` — expert drivers (bisection + inverse iteration for
  selected eigenvalues),
* ``stev``/``stevd``/``stevx`` — tridiagonal drivers,
* packed (``spev…``/``hpev…``) and band (``sbev…``/``hbev…``) variants.

The band drivers reduce with the genuinely banded Givens chasing of
:mod:`repro.lapack77.band_eigen` (``sbtrd``); the packed drivers expand
to dense storage and run the dense path — a documented substitution
(DESIGN.md §7): LAPACK's in-format ``xSPTRD`` is a storage optimization
with identical numerical behaviour.
"""

from __future__ import annotations

import numpy as np

from ..errors import xerbla
from ..faults import linfo_fault
from ..storage import sym_band_to_full, unpack
from .td_eigen import orgtr, stebz, stedc, stein, steqr, sterf, sytd2


def _real_dtype(a: np.ndarray):
    return np.float32 if a.dtype in (np.float32, np.complex64) \
        else np.float64

__all__ = ["syev", "syevd", "syevx", "heev", "heevd", "heevx",
           "stev", "stevd", "stevx",
           "spev", "spevd", "spevx", "hpev", "hpevd", "hpevx",
           "sbev", "sbevd", "sbevx", "hbev", "hbevd", "hbevx"]


def _dense_eig(a: np.ndarray, jobz: str, uplo: str, hermitian: bool,
               method: str = "qr"):
    """Common dense driver body: tridiagonalize, iterate, back-transform.

    ``a`` is overwritten (with eigenvectors when ``jobz='V'``).
    Returns ``(w, info)``.
    """
    n = a.shape[0]
    rdtype = np.float32 if a.dtype in (np.float32, np.complex64) \
        else np.float64
    if n == 0:
        return np.zeros(0, dtype=rdtype), 0
    wantz = jobz.upper() == "V"
    d, e, tau = sytd2(a, uplo, hermitian=hermitian)
    if not wantz:
        if method == "dc":
            info = stedc(d, e, compz="N")
        else:
            info = sterf(d, e)
        return d.astype(rdtype), info
    q = a.copy()
    orgtr(q, tau, uplo)
    if method == "dc":
        # stedc works in float64; back-transform explicitly.
        d64 = d.astype(np.float64)
        e64 = e.astype(np.float64)
        zt = np.empty((n, n))
        info = stedc(d64, e64, zt, compz="I")
        if info == 0:
            a[...] = q @ zt.astype(a.dtype)
            d = d64.astype(rdtype)
    else:
        info = steqr(d, e, q, compz="V")
        if info == 0:
            a[...] = q
    return d.astype(rdtype), info


def syev(a: np.ndarray, jobz: str = "N", uplo: str = "U"):
    """Eigenvalues (and optionally eigenvectors) of a real symmetric
    matrix (``xSYEV``).

    With ``jobz='V'`` the eigenvectors overwrite ``a`` (column *i* pairs
    with ``w[i]``).  Returns ``(w, info)``; eigenvalues ascend.
    """
    if jobz.upper() not in ("N", "V"):
        xerbla("SYEV", 1, f"jobz={jobz!r}")
    if uplo.upper() not in ("U", "L"):
        xerbla("SYEV", 2, f"uplo={uplo!r}")
    forced = linfo_fault("syev")
    if forced:
        return np.zeros(a.shape[0], dtype=_real_dtype(a)), forced
    return _dense_eig(a, jobz, uplo, hermitian=False, method="qr")


def heev(a: np.ndarray, jobz: str = "N", uplo: str = "U"):
    """Hermitian eigen driver (``xHEEV``). Returns ``(w, info)``, w real."""
    if jobz.upper() not in ("N", "V"):
        xerbla("HEEV", 1, f"jobz={jobz!r}")
    if uplo.upper() not in ("U", "L"):
        xerbla("HEEV", 2, f"uplo={uplo!r}")
    forced = linfo_fault("heev")
    if forced:
        return np.zeros(a.shape[0], dtype=_real_dtype(a)), forced
    return _dense_eig(a, jobz, uplo, hermitian=True, method="qr")


def syevd(a: np.ndarray, jobz: str = "N", uplo: str = "U"):
    """Divide-and-conquer symmetric eigen driver (``xSYEVD``)."""
    return _dense_eig(a, jobz, uplo, hermitian=False, method="dc")


def heevd(a: np.ndarray, jobz: str = "N", uplo: str = "U"):
    """Divide-and-conquer Hermitian eigen driver (``xHEEVD``)."""
    return _dense_eig(a, jobz, uplo, hermitian=True, method="dc")


def _dense_eigx(a: np.ndarray, jobz: str, uplo: str, hermitian: bool,
                vl=None, vu=None, il=None, iu=None, abstol=0.0):
    """Expert driver body: tridiagonalize, bisect, inverse-iterate,
    back-transform.  Returns ``(w, z, m, ifail, info)``."""
    n = a.shape[0]
    rdtype = np.float32 if a.dtype in (np.float32, np.complex64) \
        else np.float64
    wantz = jobz.upper() == "V"
    if n == 0:
        return (np.zeros(0, dtype=rdtype),
                np.zeros((0, 0), dtype=a.dtype), 0, np.zeros(0, np.int64), 0)
    d, e, tau = sytd2(a, uplo, hermitian=hermitian)
    d64 = d.astype(np.float64)
    e64 = e.astype(np.float64)
    w, m, info = stebz(d64, e64, vl=vl, vu=vu, il=il, iu=iu, abstol=abstol)
    ifail = np.zeros(m, dtype=np.int64)
    if not wantz:
        return w.astype(rdtype), None, m, ifail, info
    zt, nfail = stein(d64, e64, w)
    q = a.copy()
    orgtr(q, tau, uplo)
    z = q @ zt.astype(a.dtype)
    return w.astype(rdtype), z, m, ifail, (nfail if info == 0 else info)


def syevx(a, jobz="N", uplo="U", vl=None, vu=None, il=None, iu=None,
          abstol=0.0):
    """Expert symmetric eigen driver (``xSYEVX``): selected eigenvalues by
    value range ``(vl, vu]`` or 0-based index range ``[il, iu]``.

    Returns ``(w, z, m, ifail, info)`` (``z`` is ``None`` for jobz='N').
    """
    if vl is not None and vu is not None and vl >= vu:
        xerbla("SYEVX", 4, "need vl < vu")
    return _dense_eigx(a, jobz, uplo, hermitian=False, vl=vl, vu=vu,
                       il=il, iu=iu, abstol=abstol)


def heevx(a, jobz="N", uplo="U", vl=None, vu=None, il=None, iu=None,
          abstol=0.0):
    """Expert Hermitian eigen driver (``xHEEVX``)."""
    if vl is not None and vu is not None and vl >= vu:
        xerbla("HEEVX", 4, "need vl < vu")
    return _dense_eigx(a, jobz, uplo, hermitian=True, vl=vl, vu=vu,
                       il=il, iu=iu, abstol=abstol)


def stev(d: np.ndarray, e: np.ndarray, z: np.ndarray | None = None,
         jobz: str = "N"):
    """Tridiagonal eigen driver (``xSTEV``): eigenvalues overwrite ``d``.

    With ``jobz='V'`` the eigenvectors fill ``z``.  Returns ``info``.
    """
    if jobz.upper() == "V":
        if z is None:
            raise ValueError("jobz='V' requires z")
        return steqr(d, e, z, compz="I")
    return sterf(d, e)


def stevd(d: np.ndarray, e: np.ndarray, z: np.ndarray | None = None,
          jobz: str = "N"):
    """Divide-and-conquer tridiagonal driver (``xSTEVD``)."""
    if jobz.upper() == "V":
        if z is None:
            raise ValueError("jobz='V' requires z")
        return stedc(d, e, z, compz="I")
    return stedc(d, e, compz="N")


def stevx(d, e, jobz="N", vl=None, vu=None, il=None, iu=None, abstol=0.0):
    """Expert tridiagonal driver (``xSTEVX``).

    Returns ``(w, z, m, ifail, info)``.
    """
    d64 = np.asarray(d, dtype=np.float64)
    e64 = np.asarray(e, dtype=np.float64)
    w, m, info = stebz(d64, e64, vl=vl, vu=vu, il=il, iu=iu, abstol=abstol)
    ifail = np.zeros(m, dtype=np.int64)
    if jobz.upper() != "V":
        return w, None, m, ifail, info
    z, nfail = stein(d64, e64, w)
    return w, z, m, ifail, (nfail if info == 0 else info)


# -- packed storage drivers -------------------------------------------------

def _packed_driver(ap, n, jobz, uplo, hermitian, method):
    full = unpack(np.asarray(ap), n, uplo=uplo, symmetric=not hermitian,
                  hermitian=hermitian)
    w, info = _dense_eig(full, jobz, uplo, hermitian, method)
    z = full if jobz.upper() == "V" else None
    return w, z, info


def spev(ap, n, jobz="N", uplo="U"):
    """Packed symmetric eigen driver (``xSPEV``).

    Returns ``(w, z, info)`` with ``z=None`` unless ``jobz='V'``.
    """
    return _packed_driver(ap, n, jobz, uplo, False, "qr")


def hpev(ap, n, jobz="N", uplo="U"):
    """Packed Hermitian eigen driver (``xHPEV``)."""
    return _packed_driver(ap, n, jobz, uplo, True, "qr")


def spevd(ap, n, jobz="N", uplo="U"):
    """Packed symmetric divide-and-conquer driver (``xSPEVD``)."""
    return _packed_driver(ap, n, jobz, uplo, False, "dc")


def hpevd(ap, n, jobz="N", uplo="U"):
    """Packed Hermitian divide-and-conquer driver (``xHPEVD``)."""
    return _packed_driver(ap, n, jobz, uplo, True, "dc")


def spevx(ap, n, jobz="N", uplo="U", vl=None, vu=None, il=None, iu=None,
          abstol=0.0):
    """Packed symmetric expert driver (``xSPEVX``).

    Returns ``(w, z, m, ifail, info)``.
    """
    full = unpack(np.asarray(ap), n, uplo=uplo, symmetric=True)
    return _dense_eigx(full, jobz, uplo, False, vl, vu, il, iu, abstol)


def hpevx(ap, n, jobz="N", uplo="U", vl=None, vu=None, il=None, iu=None,
          abstol=0.0):
    """Packed Hermitian expert driver (``xHPEVX``)."""
    full = unpack(np.asarray(ap), n, uplo=uplo, hermitian=True)
    return _dense_eigx(full, jobz, uplo, True, vl, vu, il, iu, abstol)


# -- band storage drivers ---------------------------------------------------

def _band_driver(ab, n, jobz, uplo, hermitian, method):
    # Reduce with the genuinely banded Givens chasing (sbtrd), then run
    # the tridiagonal eigensolver and back-transform.
    from .band_eigen import sbtrd
    wantz = jobz.upper() == "V"
    d, e, q, info = sbtrd(np.asarray(ab), uplo=uplo,
                          vect="V" if wantz else "N",
                          hermitian=hermitian)
    if info != 0:
        return d, None, info
    d64 = d.astype(np.float64)
    e64 = e.astype(np.float64)
    if not wantz:
        if method == "dc":
            info = stedc(d64, e64, compz="N")
        else:
            info = sterf(d64, e64)
        return d64.astype(d.dtype), None, info
    zt = np.empty((n, n))
    if method == "dc":
        info = stedc(d64, e64, zt, compz="I")
    else:
        info = steqr(d64, e64, zt, compz="I")
    if info != 0:
        return d64.astype(d.dtype), None, info
    z = q @ zt.astype(q.dtype)
    return d64.astype(d.dtype), z, info


def sbev(ab, n, jobz="N", uplo="U"):
    """Symmetric band eigen driver (``xSBEV``).

    Returns ``(w, z, info)``.
    """
    return _band_driver(ab, n, jobz, uplo, False, "qr")


def hbev(ab, n, jobz="N", uplo="U"):
    """Hermitian band eigen driver (``xHBEV``)."""
    return _band_driver(ab, n, jobz, uplo, True, "qr")


def sbevd(ab, n, jobz="N", uplo="U"):
    """Symmetric band divide-and-conquer driver (``xSBEVD``)."""
    return _band_driver(ab, n, jobz, uplo, False, "dc")


def hbevd(ab, n, jobz="N", uplo="U"):
    """Hermitian band divide-and-conquer driver (``xHBEVD``)."""
    return _band_driver(ab, n, jobz, uplo, True, "dc")


def sbevx(ab, n, jobz="N", uplo="U", vl=None, vu=None, il=None, iu=None,
          abstol=0.0):
    """Symmetric band expert driver (``xSBEVX``).

    Returns ``(w, z, m, ifail, info)``.
    """
    full = sym_band_to_full(np.asarray(ab), n, uplo=uplo)
    return _dense_eigx(full, jobz, uplo, False, vl, vu, il, iu, abstol)


def hbevx(ab, n, jobz="N", uplo="U", vl=None, vu=None, il=None, iu=None,
          abstol=0.0):
    """Hermitian band expert driver (``xHBEVX``)."""
    full = sym_band_to_full(np.asarray(ab), n, uplo=uplo, hermitian=True)
    return _dense_eigx(full, jobz, uplo, True, vl, vu, il, iu, abstol)
