"""Packed-storage solvers: positive definite (``xPPTRF/xPPTRS/xPPSV``) and
symmetric/Hermitian indefinite (``xSPTRF/xSPSV``, ``xHPTRF/xHPSV``), with
condition estimation and refinement.

Substrate for the paper's ``LA_PPSV``/``LA_PPSVX``/``LA_SPSV``/``LA_HPSV``.

Implementation note (documented deviation, DESIGN.md §7): LAPACK's packed
routines run the factorizations directly on the packed array to stay within
``n(n+1)/2`` storage.  Here each packed routine round-trips through the
dense kernel (unpack → factor → repack), which preserves every numerical
and interface behaviour — identical factors, pivots, info codes — at the
cost of a transient dense buffer.  The packed array is still updated in
place with the packed factor, so factor/solve call sequences work exactly
as in LAPACK.
"""

from __future__ import annotations

import numpy as np

from ..errors import xerbla
from ..storage import pack, packed_size, unpack
from .chol import potrf
from .lacon import lacon
from .machine import lamch
from .sym_indef import sytf2, sytrs

__all__ = ["pptrf", "pptrs", "ppsv", "ppcon", "pprfs", "ppequ",
           "sptrf", "sptrs", "spsv", "spcon",
           "hptrf", "hptrs", "hpsv", "hpcon"]


def _order_from_packed(ap: np.ndarray) -> int:
    ln = ap.shape[0]
    n = int((np.sqrt(8.0 * ln + 1.0) - 1.0) / 2.0 + 0.5)
    if packed_size(n) != ln:
        xerbla("PPTRF", 2, "packed array length is not n(n+1)/2")
    return n


def pptrf(ap: np.ndarray, uplo: str = "U") -> int:
    """Cholesky factorization in packed storage (in place).

    Returns ``info``.
    """
    if uplo.upper() not in ("U", "L"):
        xerbla("PPTRF", 1, f"uplo={uplo!r}")
    n = _order_from_packed(ap)
    full = unpack(ap, n, uplo=uplo)
    info = potrf(full, uplo)
    if info == 0:
        ap[...] = pack(np.triu(full) if uplo.upper() == "U"
                       else np.tril(full), uplo=uplo)
    return info


def pptrs(ap: np.ndarray, b: np.ndarray, uplo: str = "U") -> int:
    """Solve from the packed Cholesky factor (B in place)."""
    from .chol import potrs
    n = b.shape[0]
    full = unpack(ap, n, uplo=uplo)
    return potrs(full, b, uplo)


def ppsv(ap: np.ndarray, b: np.ndarray, uplo: str = "U") -> int:
    """Solve a packed SPD/HPD system (``xPPSV``); returns ``info``."""
    info = pptrf(ap, uplo)
    if info == 0:
        pptrs(ap, b, uplo)
    return info


def ppcon(ap: np.ndarray, anorm: float, uplo: str = "U"):
    """Reciprocal condition estimate from the packed Cholesky factor."""
    ln = ap.shape[0]
    n = int((np.sqrt(8.0 * ln + 1.0) - 1.0) / 2.0 + 0.5)
    if n == 0:
        return 1.0, 0
    if anorm == 0:
        return 0.0, 0

    def solve(x):
        y = x.copy()
        pptrs(ap, y, uplo=uplo)
        return y

    est = lacon(n, solve, solve, dtype=ap.dtype)
    return (1.0 / (est * anorm) if est else 0.0), 0


def pprfs(ap_orig: np.ndarray, afp: np.ndarray, b: np.ndarray, x: np.ndarray,
          uplo: str = "U", itmax: int = 5):
    """Refinement + error bounds for packed SPD systems (``xPPRFS``)."""
    n = b.shape[0]
    hermitian = np.iscomplexobj(ap_orig)
    full = unpack(ap_orig, n, uplo=uplo, symmetric=not hermitian,
                  hermitian=hermitian)
    bmat = b if b.ndim == 2 else b[:, None]
    xmat = x if x.ndim == 2 else x[:, None]
    nrhs = bmat.shape[1]
    ferr = np.zeros(nrhs)
    berr = np.zeros(nrhs)
    if n == 0 or nrhs == 0:
        return ferr, berr, 0
    eps = lamch("E", ap_orig.dtype)
    safmin = lamch("S", ap_orig.dtype)
    safe1 = (n + 1) * safmin
    safe2 = safe1 / eps
    absa = np.abs(full)
    for j in range(nrhs):
        count, lstres = 1, 3.0
        while True:
            r = bmat[:, j] - full @ xmat[:, j]
            denom = absa @ np.abs(xmat[:, j]) + np.abs(bmat[:, j])
            num = np.abs(r)
            with np.errstate(divide="ignore", invalid="ignore"):
                ratios = np.where(denom > safe2, num / denom,
                                  (num + safe1) / (denom + safe1))
            berr[j] = float(np.max(ratios))
            if berr[j] > eps and berr[j] <= 0.5 * lstres and count <= itmax:
                dx = r.copy()
                pptrs(afp, dx, uplo=uplo)
                xmat[:, j] += dx
                lstres = berr[j]
                count += 1
            else:
                break
        r = bmat[:, j] - full @ xmat[:, j]
        f = np.abs(r) + (n + 1) * eps * (absa @ np.abs(xmat[:, j])
                                         + np.abs(bmat[:, j]))
        f = np.where(f > safe2, f, f + safe1)

        def mv(v):
            w = f * v
            pptrs(afp, w, uplo=uplo)
            return w

        est = lacon(n, mv, mv, dtype=ap_orig.dtype)
        xnorm = float(np.max(np.abs(xmat[:, j])))
        ferr[j] = est / xnorm if xnorm > 0 else est
    return ferr, berr, 0


def ppequ(ap: np.ndarray, n: int, uplo: str = "U"):
    """Equilibration scalings for a packed SPD matrix (``xPPEQU``).

    Returns ``(s, scond, amax, info)``.
    """
    full = unpack(ap, n, uplo=uplo)
    d = full.diagonal().real
    s = np.zeros(n)
    if n == 0:
        return s, 1.0, 0.0, 0
    amax = float(np.abs(d).max())
    bad = np.where(d <= 0)[0]
    if bad.size:
        return s, 0.0, amax, int(bad[0]) + 1
    s = 1.0 / np.sqrt(d)
    scond = float(np.sqrt(d.min()) / np.sqrt(d.max()))
    return s, scond, float(d.max()), 0


def _packed_indef_trf(ap: np.ndarray, uplo: str, hermitian: bool):
    n = _order_from_packed(ap)
    full = unpack(ap, n, uplo=uplo)
    ipiv, info = sytf2(full, uplo=uplo, hermitian=hermitian)
    ap[...] = pack(np.triu(full) if uplo.upper() == "U" else np.tril(full),
                   uplo=uplo)
    return ipiv, info


def sptrf(ap: np.ndarray, uplo: str = "U"):
    """Packed Bunch–Kaufman factorization, symmetric (``xSPTRF``).

    Returns ``(ipiv, info)``; ``ap`` holds the packed factor on exit.
    """
    return _packed_indef_trf(ap, uplo, hermitian=False)


def hptrf(ap: np.ndarray, uplo: str = "U"):
    """Packed Bunch–Kaufman factorization, Hermitian (``xHPTRF``)."""
    return _packed_indef_trf(ap, uplo, hermitian=True)


def sptrs(ap: np.ndarray, ipiv: np.ndarray, b: np.ndarray,
          uplo: str = "U", hermitian: bool = False) -> int:
    """Solve from packed Bunch–Kaufman factors (B in place)."""
    n = b.shape[0]
    full = unpack(ap, n, uplo=uplo)
    return sytrs(full, ipiv, b, uplo=uplo, hermitian=hermitian)


def hptrs(ap, ipiv, b, uplo="U"):
    """Hermitian variant of :func:`sptrs`."""
    return sptrs(ap, ipiv, b, uplo=uplo, hermitian=True)


def spsv(ap: np.ndarray, b: np.ndarray, uplo: str = "U"):
    """Solve a packed symmetric indefinite system (``xSPSV``).

    Returns ``(ipiv, info)``.
    """
    ipiv, info = sptrf(ap, uplo)
    if info == 0:
        sptrs(ap, ipiv, b, uplo)
    return ipiv, info


def hpsv(ap: np.ndarray, b: np.ndarray, uplo: str = "U"):
    """Solve a packed Hermitian indefinite system (``xHPSV``).

    Returns ``(ipiv, info)``.
    """
    ipiv, info = hptrf(ap, uplo)
    if info == 0:
        hptrs(ap, ipiv, b, uplo)
    return ipiv, info


def spcon(ap, ipiv, anorm, uplo="U", hermitian=False):
    """Reciprocal condition estimate from packed indefinite factors."""
    ln = ap.shape[0]
    n = int((np.sqrt(8.0 * ln + 1.0) - 1.0) / 2.0 + 0.5)
    if n == 0:
        return 1.0, 0
    if anorm == 0:
        return 0.0, 0

    def solve(x):
        y = x.copy()
        sptrs(ap, ipiv, y, uplo=uplo, hermitian=hermitian)
        return y

    if hermitian or not np.iscomplexobj(ap):
        est = lacon(n, solve, solve, dtype=ap.dtype)
    else:
        def solve_h(x):
            y = np.conj(x)
            sptrs(ap, ipiv, y, uplo=uplo, hermitian=False)
            return np.conj(y)
        est = lacon(n, solve, solve_h, dtype=ap.dtype)
    return (1.0 / (est * anorm) if est else 0.0), 0


def hpcon(ap, ipiv, anorm, uplo="U"):
    """Hermitian variant of :func:`spcon`."""
    return spcon(ap, ipiv, anorm, uplo=uplo, hermitian=True)
