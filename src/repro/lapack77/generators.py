"""Test-matrix generators: ``xLAGGE`` (general with prescribed singular
values and optional bandwidth), ``xLAGSY``/``xLAGHE`` (symmetric/Hermitian
with prescribed eigenvalues) and ``laror`` (random orthogonal/unitary).

These are the generators behind the paper's matrix-manipulation section
(``LA_LAGGE``) and behind the Appendix-F test harness workloads.
"""

from __future__ import annotations

import numpy as np

from ..errors import xerbla
from .householder import larf_left, larf_right

__all__ = ["laror", "lagge", "lagsy", "laghe", "latms_like"]


def laror(n: int, dtype=np.float64, rng=None, m: int | None = None) -> np.ndarray:
    """Random orthogonal/unitary matrix, Haar-distributed (``xLAROR``'s
    job of pre/post multiplying, exposed as an explicit matrix).

    Built from the QR factorization of a Gaussian matrix with the sign
    (phase) correction that makes the distribution Haar.
    """
    if rng is None:
        rng = np.random.default_rng()
    if m is None:
        m = n
    g = rng.standard_normal((m, n))
    if np.dtype(dtype).kind == "c":
        g = g + 1j * rng.standard_normal((m, n))
    g = np.asarray(g, dtype=dtype)
    from .qr import geqrf, orgqr
    tau = geqrf(g)
    diag = np.diagonal(g)[: min(m, n)].copy()
    q = orgqr(g, tau)
    # Phase correction: multiply column j by sign(r_jj).
    phase = np.where(diag == 0, 1, diag / np.abs(np.where(diag == 0, 1,
                                                          diag)))
    q[:, : len(phase)] *= phase[None, :]
    return q


def lagge(m: int, n: int, d: np.ndarray, kl: int | None = None,
          ku: int | None = None, dtype=np.float64, rng=None) -> np.ndarray:
    """Generate a random m×n matrix ``A = U diag(d) V`` with prescribed
    singular values ``|d|`` and random orthogonal/unitary U, V
    (``xLAGGE``).  With ``kl``/``ku`` smaller than full, the bandwidth is
    then reduced by two-sided Householder transformations, preserving the
    singular values.
    """
    if rng is None:
        rng = np.random.default_rng()
    k = min(m, n)
    if len(d) < k:
        xerbla("LAGGE", 3, "need min(m, n) diagonal values")
    if kl is None:
        kl = m - 1
    if ku is None:
        ku = n - 1
    a = np.zeros((m, n), dtype=dtype)
    a[np.arange(k), np.arange(k)] = np.asarray(d[:k], dtype=dtype)
    # Pre- and post-multiply by Haar random unitaries.
    u = laror(m, dtype=dtype, rng=rng)
    v = laror(n, dtype=dtype, rng=rng)
    a = u @ a @ v
    if kl == 0 and ku == 0:
        # A diagonal request cannot be reached by finite reflections;
        # return the (phase-randomized) diagonal matrix directly.
        a = np.zeros((m, n), dtype=dtype)
        a[np.arange(k), np.arange(k)] = np.asarray(d[:k], dtype=dtype)
        return a

    def zap_col(i):
        # Annihilate A[kl+i+1:, i] from the left (safe when ku >= 1 after,
        # see ordering below).
        if kl + i + 1 < m:
            col = a[kl + i:, i].copy()
            vref, tau = _reflector(col)
            if tau != 0:
                larf_left(vref, np.conj(tau), a[kl + i:, i:])

    def zap_row(i):
        # Annihilate A[i, ku+i+1:] from the right: G = I − conj(tau) u uᴴ
        # built from the conjugated row (same construction as tzrqf).
        if ku + i + 1 < n:
            row = np.conj(a[i, ku + i:]) if np.dtype(dtype).kind == "c" \
                else a[i, ku + i:].copy()
            vref, tau = _reflector(row.copy())
            if tau != 0:
                # r G = (Gᴴ conj(r)ᵀ)ᴴ with Gᴴ = I − conj(tau) u uᴴ the
                # larfg annihilator ⇒ apply G = I − tau u uᴴ on the right.
                larf_right(vref, tau, a[i:, ku + i:])

    # Ordering: the row reflection mixes columns ku+i.. (must not touch the
    # freshly-zeroed column i ⇒ needs ku ≥ 1); symmetrically the column
    # reflection needs kl ≥ 1 when rows go first.
    for i in range(min(m, n)):
        if ku >= 1:
            zap_col(i)
            zap_row(i)
        else:
            zap_row(i)
            zap_col(i)
    # Snap the annihilated entries to exact zero.
    for j in range(n):
        lo = max(0, j - ku)
        hi = min(m - 1, j + kl)
        if lo > 0:
            a[:lo, j] = 0
        if hi + 1 < m:
            a[hi + 1:, j] = 0
    return a


def _reflector(x: np.ndarray):
    """Householder vector/factor annihilating x[1:] (full-vector form)."""
    from .householder import larfg
    v = x.copy()
    tail = v[1:].copy()
    beta, tau = larfg(v[0], tail)
    out = np.empty_like(v)
    out[0] = 1
    out[1:] = tail
    return out, tau


def lagsy(n: int, d: np.ndarray, dtype=np.float64, rng=None) -> np.ndarray:
    """Random symmetric matrix ``A = U diag(d) Uᵀ`` with prescribed
    eigenvalues (``xLAGSY``, full-bandwidth case)."""
    if rng is None:
        rng = np.random.default_rng()
    u = laror(n, dtype=dtype, rng=rng)
    a = (u * np.asarray(d, dtype=dtype)[None, :]) @ u.T
    return (a + a.T) / 2


def laghe(n: int, d: np.ndarray, rng=None, dtype=np.complex128) -> np.ndarray:
    """Random Hermitian matrix ``A = U diag(d) Uᴴ`` with prescribed real
    eigenvalues (``xLAGHE``)."""
    if rng is None:
        rng = np.random.default_rng()
    u = laror(n, dtype=dtype, rng=rng)
    a = (u * np.asarray(d, dtype=np.float64)[None, :]) @ np.conj(u.T)
    a = (a + np.conj(a.T)) / 2
    np.fill_diagonal(a, a.diagonal().real)
    return a


def latms_like(m: int, n: int, cond: float = 1e2, mode: str = "geometric",
               dtype=np.float64, rng=None):
    """Spectrum-controlled generator in the spirit of ``xLATMS``: singular
    values spanning ``[1/cond, 1]`` geometrically ('geometric') or
    arithmetically ('arithmetic'); returns ``(a, s)``.
    """
    if rng is None:
        rng = np.random.default_rng()
    k = min(m, n)
    if k == 0:
        return np.zeros((m, n), dtype=dtype), np.zeros(0)
    if mode == "geometric":
        s = np.geomspace(1.0, 1.0 / cond, k)
    elif mode == "arithmetic":
        s = np.linspace(1.0, 1.0 / cond, k)
    else:
        raise ValueError("mode must be 'geometric' or 'arithmetic'")
    a = lagge(m, n, s, dtype=dtype, rng=rng)
    return a, s
