"""Band solvers: general band LU (``xGBTRF/xGBTRS/xGBSV``) and positive
definite band Cholesky (``xPBTRF/xPBTRS/xPBSV``), with condition
estimation, refinement and equilibration.

Substrate for the paper's ``LA_GBSV``/``LA_GBSVX``/``LA_PBSV``/``LA_PBSVX``.

Storage (0-based): ``gbtrf`` works on the LAPACK factored-band layout —
``ab`` has ``2·kl + ku + 1`` rows, the input matrix occupies rows
``kl .. 2·kl+ku`` (``A[i, j] → ab[kl + ku + i - j, j]``) and the top ``kl``
rows receive pivoting fill-in.  ``pbtrf`` uses the symmetric band layout
``(kd+1, n)`` from :mod:`repro.storage`.
"""

from __future__ import annotations

import numpy as np

from ..errors import xerbla
from ..faults import pivot_fault
from ..policy import disnan
from ..blas.level2 import gbmv, tbsv
from .lacon import lacon
from .machine import lamch

__all__ = ["gbtrf", "gbtrs", "gbsv", "gbcon", "gbrfs", "gbequ",
           "pbtrf", "pbtrs", "pbsv", "pbcon", "pbrfs", "pbequ"]


def _mag(x):
    return (np.abs(x.real) + np.abs(x.imag)) if np.iscomplexobj(x) \
        else np.abs(x)


def gbtrf(ab: np.ndarray, kl: int, ku: int, m: int | None = None):
    """LU factorization of an m×n band matrix with partial pivoting
    (in place, factored-band layout).

    Returns ``(ipiv, info)``.
    """
    n = ab.shape[1]
    if m is None:
        m = n
    kv = kl + ku
    if ab.shape[0] < 2 * kl + ku + 1:
        xerbla("GBTRF", 1, "band array needs 2*kl+ku+1 rows")
    ipiv = np.zeros(min(m, n), dtype=np.int64)
    info = 0
    # Zero the fill-in workspace rows for the initial columns.
    for j in range(min(kv, n)):
        ab[max(0, kv - kl - j):kl, j] = 0
    ju = 0  # last column affected by current pivoting (0-based)
    for j in range(min(m, n)):
        # Zero the fill-in space of the column entering the band window.
        if j + kv < n:
            ab[:kl, j + kv] = 0
        km = min(kl, m - 1 - j)           # subdiagonal count in column j
        if pivot_fault("gbtrf", j):
            ab[kl + ku: kl + ku + km + 1, j] = 0
        col = ab[kl + ku: kl + ku + km + 1, j]
        jp = int(np.argmax(_mag(col)))
        ipiv[j] = jp + j
        if col[jp] != 0:
            ju = max(ju, min(j + ku + jp, n - 1))
            if jp != 0:
                # Swap rows j and j+jp across columns j..ju (diagonal walk).
                q = np.arange(j, ju + 1)
                r1 = kl + ku + j - q
                r2 = kl + ku + j + jp - q
                tmp = ab[r1, q].copy()
                ab[r1, q] = ab[r2, q]
                ab[r2, q] = tmp
            if km > 0:
                ab[kl + ku + 1: kl + ku + km + 1, j] /= ab[kl + ku, j]
                if ju > j:
                    lvec = ab[kl + ku + 1: kl + ku + km + 1, j]
                    for q in range(j + 1, ju + 1):
                        off = kl + ku + j - q
                        ajq = ab[off, q]
                        if ajq != 0:
                            ab[off + 1: off + 1 + km, q] -= lvec * ajq
        elif info == 0:
            info = j + 1
    return ipiv, info


def gbtrs(ab: np.ndarray, kl: int, ku: int, ipiv: np.ndarray, b: np.ndarray,
          trans: str = "N") -> int:
    """Solve ``op(A) X = B`` from ``gbtrf`` factors (B in place)."""
    t = trans.upper()
    if t not in ("N", "T", "C"):
        xerbla("GBTRS", 1, f"trans={trans!r}")
    n = ab.shape[1]
    kv = kl + ku
    bmat = b if b.ndim == 2 else b[:, None]
    if bmat.shape[0] != n:
        xerbla("GBTRS", 5, "dimension mismatch")
    if n == 0:
        return 0
    if t == "N":
        # L solve with row interchanges.
        if kl > 0:
            for j in range(n - 1):
                lm = min(kl, n - 1 - j)
                p = ipiv[j]
                if p != j:
                    bmat[[j, p]] = bmat[[p, j]]
                bmat[j + 1: j + 1 + lm] -= np.outer(
                    ab[kv + 1: kv + 1 + lm, j], bmat[j])
        # U solve (band back substitution).
        for j in range(n - 1, -1, -1):
            bmat[j] = bmat[j] / ab[kv, j]
            lo = max(0, j - kv)
            if lo < j:
                bmat[lo:j] -= np.outer(ab[kv + lo - j: kv, j], bmat[j])
    else:
        conj = (lambda z: np.conj(z)) if t == "C" else (lambda z: z)
        # Uᵀ solve (forward).
        for j in range(n):
            lo = max(0, j - kv)
            if lo < j:
                bmat[j] -= conj(ab[kv + lo - j: kv, j]) @ bmat[lo:j]
            bmat[j] = bmat[j] / conj(ab[kv, j])
        # Lᵀ solve (backward) + interchanges.
        if kl > 0:
            for j in range(n - 2, -1, -1):
                lm = min(kl, n - 1 - j)
                bmat[j] -= conj(ab[kv + 1: kv + 1 + lm, j]) @ \
                    bmat[j + 1: j + 1 + lm]
                p = ipiv[j]
                if p != j:
                    bmat[[j, p]] = bmat[[p, j]]
    return 0


def gbsv(ab: np.ndarray, kl: int, ku: int, b: np.ndarray):
    """Solve a general band system (``xGBSV``); returns ``(ipiv, info)``."""
    ipiv, info = gbtrf(ab, kl, ku)
    if info == 0:
        gbtrs(ab, kl, ku, ipiv, b)
    return ipiv, info


def gbcon(ab: np.ndarray, kl: int, ku: int, ipiv: np.ndarray, anorm: float,
          norm: str = "1"):
    """Reciprocal condition estimate from ``gbtrf`` factors."""
    if norm.upper() not in ("1", "O", "I"):
        xerbla("GBCON", 1, f"norm={norm!r}")
    n = ab.shape[1]
    if n == 0:
        return 1.0, 0
    if anorm == 0:
        return 0.0, 0

    def solve(x):
        y = x.copy()
        gbtrs(ab, kl, ku, ipiv, y, trans="N")
        return y

    def solve_h(x):
        y = x.copy()
        gbtrs(ab, kl, ku, ipiv, y,
              trans="C" if np.iscomplexobj(ab) else "T")
        return y

    if norm.upper() in ("1", "O"):
        est = lacon(n, solve, solve_h, dtype=ab.dtype)
    else:
        est = lacon(n, solve_h, solve, dtype=ab.dtype)
    return (1.0 / (est * anorm) if est else 0.0), 0


def gbrfs(ab_orig: np.ndarray, afb: np.ndarray, kl: int, ku: int,
          ipiv: np.ndarray, b: np.ndarray, x: np.ndarray,
          trans: str = "N", itmax: int = 5):
    """Refinement + error bounds for band systems (``xGBRFS``).

    ``ab_orig`` is the *plain* band storage ``(kl+ku+1, n)`` of A; ``afb``
    the factored-band output of ``gbtrf``.  Returns ``(ferr, berr, info)``.
    """
    t = trans.upper()
    n = ab_orig.shape[1]
    bmat = b if b.ndim == 2 else b[:, None]
    xmat = x if x.ndim == 2 else x[:, None]
    nrhs = bmat.shape[1]
    ferr = np.zeros(nrhs)
    berr = np.zeros(nrhs)
    if n == 0 or nrhs == 0:
        return ferr, berr, 0
    eps = lamch("E", ab_orig.dtype)
    safmin = lamch("S", ab_orig.dtype)
    safe1 = (n + 1) * safmin
    safe2 = safe1 / eps
    abs_ab = np.abs(ab_orig)

    def amv(v):
        out = np.zeros(n, dtype=v.dtype)
        gbmv(1.0, ab_orig, v, 0.0, out, m=n, kl=kl, ku=ku, trans=t)
        return out

    def abs_amv(v):
        out = np.zeros(n, dtype=np.float64)
        gbmv(1.0, abs_ab, v, 0.0, out, m=n, kl=kl, ku=ku,
             trans="N" if t == "N" else "T")
        return out

    for j in range(nrhs):
        count, lstres = 1, 3.0
        while True:
            r = bmat[:, j] - amv(xmat[:, j])
            denom = abs_amv(np.abs(xmat[:, j])) + np.abs(bmat[:, j])
            num = np.abs(r)
            with np.errstate(divide="ignore", invalid="ignore"):
                ratios = np.where(denom > safe2, num / denom,
                                  (num + safe1) / (denom + safe1))
            berr[j] = float(np.max(ratios))
            if berr[j] > eps and berr[j] <= 0.5 * lstres and count <= itmax:
                dx = r.copy()
                gbtrs(afb, kl, ku, ipiv, dx, trans=t)
                xmat[:, j] += dx
                lstres = berr[j]
                count += 1
            else:
                break
        r = bmat[:, j] - amv(xmat[:, j])
        f = np.abs(r) + (n + 1) * eps * (abs_amv(np.abs(xmat[:, j]))
                                         + np.abs(bmat[:, j]))
        f = np.where(f > safe2, f, f + safe1)

        def mv(v):
            w = f * v
            gbtrs(afb, kl, ku, ipiv, w, trans=t)
            return w

        def rmv(v):
            if t == "T" and np.iscomplexobj(v):
                w = np.conj(v)
                gbtrs(afb, kl, ku, ipiv, w, trans="N")
                w = np.conj(w)
            else:
                w = v.copy()
                gbtrs(afb, kl, ku, ipiv, w,
                      trans={"N": "C", "T": "N", "C": "N"}[t])
            return f * w

        est = lacon(n, mv, rmv, dtype=ab_orig.dtype)
        xnorm = float(np.max(np.abs(xmat[:, j])))
        ferr[j] = est / xnorm if xnorm > 0 else est
    return ferr, berr, 0


def gbequ(ab: np.ndarray, kl: int, ku: int, m: int | None = None):
    """Equilibration scalings for a band matrix (``xGBEQU``).

    Returns ``(r, c, rowcnd, colcnd, amax, info)``.
    """
    n = ab.shape[1]
    if m is None:
        m = n
    smlnum = lamch("S", ab.dtype)
    bignum = 1.0 / smlnum
    absab = np.abs(ab.real) + np.abs(ab.imag) if np.iscomplexobj(ab) \
        else np.abs(ab)
    rowmax = np.zeros(m)
    colmax = np.zeros(n)
    for j in range(n):
        lo = max(0, j - ku)
        hi = min(m - 1, j + kl)
        seg = absab[ku + lo - j: ku + hi - j + 1, j]
        if seg.size:
            colmax[j] = seg.max()
            rowmax[lo:hi + 1] = np.maximum(rowmax[lo:hi + 1], seg)
    amax = float(rowmax.max()) if m else 0.0
    r = np.zeros(m)
    c = np.zeros(n)
    zr = np.where(rowmax == 0)[0]
    if zr.size:
        return r, c, 0.0, 0.0, amax, int(zr[0]) + 1
    r = 1.0 / np.clip(rowmax, smlnum, bignum)
    rowcnd = max(rowmax.min(), smlnum) / min(rowmax.max(), bignum)
    # Column maxima of diag(r)·A.
    colmax_scaled = np.zeros(n)
    for j in range(n):
        lo = max(0, j - ku)
        hi = min(m - 1, j + kl)
        seg = absab[ku + lo - j: ku + hi - j + 1, j] * r[lo:hi + 1]
        if seg.size:
            colmax_scaled[j] = seg.max()
    zc = np.where(colmax_scaled == 0)[0]
    if zc.size:
        return r, c, rowcnd, 0.0, amax, m + int(zc[0]) + 1
    c = 1.0 / np.clip(colmax_scaled, smlnum, bignum)
    colcnd = max(colmax_scaled.min(), smlnum) / min(colmax_scaled.max(),
                                                    bignum)
    return r, c, rowcnd, colcnd, amax, 0


def pbtrf(ab: np.ndarray, uplo: str = "U") -> int:
    """Cholesky of an SPD/HPD band matrix in ``(kd+1, n)`` storage
    (in place).  Returns ``info``."""
    if uplo.upper() not in ("U", "L"):
        xerbla("PBTRF", 1, f"uplo={uplo!r}")
    n = ab.shape[1]
    kd = ab.shape[0] - 1
    up = uplo.upper() == "U"
    for j in range(n):
        ajj = ab[kd, j].real if up else ab[0, j].real
        if pivot_fault("pbtrf", j):
            ajj = 0.0
        # Same pivot test as reference xPBTRF: NaN fails, Inf propagates.
        if ajj <= 0 or disnan(ajj):
            return j + 1
        ajj = np.sqrt(ajj)
        kn = min(kd, n - 1 - j)
        if up:
            ab[kd, j] = ajj
            if kn > 0:
                q = np.arange(j + 1, j + kn + 1)
                rows = kd + j - q
                ab[rows, q] /= ajj          # row j of U beyond the diagonal
                v = ab[rows, q].copy()
                for t_ in range(kn):
                    qq = j + 1 + t_
                    # Column qq: A[i, qq] -= conj(U[j, i]) · U[j, qq]
                    # for i = j+1 .. qq (A = UᴴU).
                    seg = ab[kd - t_: kd + 1, qq]
                    seg -= np.conj(v[: t_ + 1]) * v[t_]
        else:
            ab[0, j] = ajj
            if kn > 0:
                ab[1: kn + 1, j] /= ajj
                v = ab[1: kn + 1, j].copy()
                for t_ in range(kn):
                    qq = j + 1 + t_
                    # Column qq: update entries i = qq .. j+kn.
                    seg = ab[0: kn - t_, qq]
                    seg -= v[t_:] * np.conj(v[t_])
    return 0


def pbtrs(ab: np.ndarray, b: np.ndarray, uplo: str = "U") -> int:
    """Solve from the band Cholesky factor (B in place)."""
    n = ab.shape[1]
    bmat = b if b.ndim == 2 else b[:, None]
    if bmat.shape[0] != n:
        xerbla("PBTRS", 2, "dimension mismatch")
    nrhs = bmat.shape[1]
    up = uplo.upper() == "U"
    for k in range(nrhs):
        col = bmat[:, k]
        if up:
            tbsv(ab, col, uplo="U", trans="C", diag="N")
            tbsv(ab, col, uplo="U", trans="N", diag="N")
        else:
            tbsv(ab, col, uplo="L", trans="N", diag="N")
            tbsv(ab, col, uplo="L", trans="C", diag="N")
    return 0


def pbsv(ab: np.ndarray, b: np.ndarray, uplo: str = "U") -> int:
    """Solve an SPD/HPD band system (``xPBSV``); returns ``info``."""
    info = pbtrf(ab, uplo)
    if info == 0:
        pbtrs(ab, b, uplo)
    return info


def pbcon(ab: np.ndarray, anorm: float, uplo: str = "U"):
    """Reciprocal condition estimate from the band Cholesky factor."""
    n = ab.shape[1]
    if n == 0:
        return 1.0, 0
    if anorm == 0:
        return 0.0, 0

    def solve(x):
        y = x.copy()
        pbtrs(ab, y, uplo=uplo)
        return y

    est = lacon(n, solve, solve, dtype=ab.dtype)
    return (1.0 / (est * anorm) if est else 0.0), 0


def pbrfs(ab_orig: np.ndarray, afb: np.ndarray, b: np.ndarray, x: np.ndarray,
          uplo: str = "U", itmax: int = 5):
    """Refinement + error bounds for SPD band systems (``xPBRFS``)."""
    from ..storage import sym_band_to_full
    n = ab_orig.shape[1]
    hermitian = np.iscomplexobj(ab_orig)
    full = sym_band_to_full(ab_orig, n, uplo=uplo, hermitian=hermitian)
    bmat = b if b.ndim == 2 else b[:, None]
    xmat = x if x.ndim == 2 else x[:, None]
    nrhs = bmat.shape[1]
    ferr = np.zeros(nrhs)
    berr = np.zeros(nrhs)
    if n == 0 or nrhs == 0:
        return ferr, berr, 0
    eps = lamch("E", ab_orig.dtype)
    safmin = lamch("S", ab_orig.dtype)
    safe1 = (n + 1) * safmin
    safe2 = safe1 / eps
    absa = np.abs(full)
    for j in range(nrhs):
        count, lstres = 1, 3.0
        while True:
            r = bmat[:, j] - full @ xmat[:, j]
            denom = absa @ np.abs(xmat[:, j]) + np.abs(bmat[:, j])
            num = np.abs(r)
            with np.errstate(divide="ignore", invalid="ignore"):
                ratios = np.where(denom > safe2, num / denom,
                                  (num + safe1) / (denom + safe1))
            berr[j] = float(np.max(ratios))
            if berr[j] > eps and berr[j] <= 0.5 * lstres and count <= itmax:
                dx = r.copy()
                pbtrs(afb, dx, uplo=uplo)
                xmat[:, j] += dx
                lstres = berr[j]
                count += 1
            else:
                break
        r = bmat[:, j] - full @ xmat[:, j]
        f = np.abs(r) + (n + 1) * eps * (absa @ np.abs(xmat[:, j])
                                         + np.abs(bmat[:, j]))
        f = np.where(f > safe2, f, f + safe1)

        def mv(v):
            w = f * v
            pbtrs(afb, w, uplo=uplo)
            return w

        est = lacon(n, mv, mv, dtype=ab_orig.dtype)
        xnorm = float(np.max(np.abs(xmat[:, j])))
        ferr[j] = est / xnorm if xnorm > 0 else est
    return ferr, berr, 0


def pbequ(ab: np.ndarray, uplo: str = "U"):
    """Equilibration scalings for an SPD band matrix (``xPBEQU``).

    Returns ``(s, scond, amax, info)``.
    """
    n = ab.shape[1]
    kd = ab.shape[0] - 1
    d = (ab[kd, :] if uplo.upper() == "U" else ab[0, :]).real
    s = np.zeros(n)
    if n == 0:
        return s, 1.0, 0.0, 0
    amax = float(np.abs(d).max())
    bad = np.where(d <= 0)[0]
    if bad.size:
        return s, 0.0, amax, int(bad[0]) + 1
    s = 1.0 / np.sqrt(d)
    scond = float(np.sqrt(d.min()) / np.sqrt(d.max()))
    return s, scond, float(d.max()), 0
