"""Symmetric/Hermitian indefinite solvers: Bunch–Kaufman diagonal pivoting
(``xSYTRF/xSYTRS/xSYSV`` and ``xHETRF/xHETRS/xHESV``) with condition
estimation (``xSYCON/xHECON``) and refinement (``xSYRFS/xHERFS``).

Substrate for the paper's ``LA_SYSV``/``LA_HESV`` drivers and their expert
variants.  The factorization is ``A = U D Uᵀ`` (or ``Uᴴ`` for Hermitian)
with D block diagonal (1×1 and 2×2 blocks) chosen by the Bunch–Kaufman
criterion with ``alpha = (1+√17)/8``.

Pivot encoding matches LAPACK (0-based): ``ipiv[k] >= 0`` marks a 1×1 block
with rows/columns ``k`` and ``ipiv[k]`` interchanged; a 2×2 block stores
``ipiv[k] = ipiv[k∓1] = -(p+1)`` where ``p`` is the interchanged index.
"""

from __future__ import annotations

import numpy as np

from ..errors import xerbla
from .lacon import lacon
from .lautil import lansy, lanhe
from .machine import lamch

__all__ = ["sytf2", "sytrf", "sytrs", "sysv", "sycon", "syrfs",
           "hetf2", "hetrf", "hetrs", "hesv", "hecon", "herfs"]

_ALPHA = (1.0 + np.sqrt(17.0)) / 8.0


def _cabs1(z):
    return np.abs(z.real) + np.abs(z.imag) if np.iscomplexobj(z) else np.abs(z)


def _diag_entry(a, k, hermitian):
    return a[k, k].real if hermitian else a[k, k]


def _sytf2_upper(a: np.ndarray, ipiv: np.ndarray, hermitian: bool) -> int:
    n = a.shape[0]
    info = 0
    k = n - 1
    while k >= 0:
        kstep = 1
        absakk = abs(a[k, k].real) if hermitian else _cabs1(a[k, k])
        if k > 0:
            col = a[:k, k]
            imax = int(np.argmax(_cabs1(col)))
            colmax = float(_cabs1(col[imax]))
        else:
            imax, colmax = 0, 0.0
        if max(absakk, colmax) == 0.0:
            if info == 0:
                info = k + 1
            kp = k
            if hermitian:
                a[k, k] = a[k, k].real
        else:
            if absakk >= _ALPHA * colmax:
                kp = k
            else:
                rowmax = float(np.max(_cabs1(a[imax, imax + 1: k + 1])))
                if imax > 0:
                    rowmax = max(rowmax,
                                 float(np.max(_cabs1(a[:imax, imax]))))
                dmag = abs(a[imax, imax].real) if hermitian \
                    else _cabs1(a[imax, imax])
                if absakk >= _ALPHA * colmax * (colmax / rowmax):
                    kp = k
                elif dmag >= _ALPHA * rowmax:
                    kp = imax
                else:
                    kp = imax
                    kstep = 2
            kk = k - kstep + 1
            if kp != kk:
                # Interchange rows/columns kk and kp of the leading block.
                tmp = a[:kp, kk].copy()
                a[:kp, kk] = a[:kp, kp]
                a[:kp, kp] = tmp
                seg = a[kp + 1: kk, kk].copy()
                if hermitian:
                    a[kp + 1: kk, kk] = np.conj(a[kp, kp + 1: kk])
                    a[kp, kp + 1: kk] = np.conj(seg)
                    a[kp, kk] = np.conj(a[kp, kk])
                    dkk, dkp = a[kk, kk].real, a[kp, kp].real
                    a[kk, kk], a[kp, kp] = dkp, dkk
                else:
                    a[kp + 1: kk, kk] = a[kp, kp + 1: kk]
                    a[kp, kp + 1: kk] = seg
                    a[kk, kk], a[kp, kp] = a[kp, kp], a[kk, kk]
                if kstep == 2:
                    a[kk, k], a[kp, k] = a[kp, k], a[kk, k]
            elif hermitian:
                a[kk, kk] = a[kk, kk].real
                if kstep == 2:
                    a[k, k] = a[k, k].real
            if kstep == 1:
                # 1x1 pivot: rank-1 update of the leading (k)x(k) block.
                if k > 0:
                    if hermitian:
                        r1 = 1.0 / a[k, k].real
                        x = a[:k, k]
                        upd = r1 * np.outer(x, np.conj(x))
                        iu = np.triu_indices(k)
                        a[:k, :k][iu] -= upd[iu]
                        di = np.arange(k)
                        a[di, di] = a[di, di].real
                        a[:k, k] *= r1
                    else:
                        r1 = 1.0 / a[k, k]
                        x = a[:k, k]
                        upd = r1 * np.outer(x, x)
                        iu = np.triu_indices(k)
                        a[:k, :k][iu] -= upd[iu]
                        a[:k, k] *= r1
            else:
                # 2x2 pivot in columns (k-1, k).
                if k > 1:
                    if hermitian:
                        dd = float(np.hypot(a[k - 1, k].real,
                                            a[k - 1, k].imag))
                        d22 = a[k - 1, k - 1].real / dd
                        d11 = a[k, k].real / dd
                        tt = 1.0 / (d11 * d22 - 1.0)
                        d12 = a[k - 1, k] / dd
                        dsc = tt / dd
                        colk = a[:k - 1, k].copy()
                        colkm1 = a[:k - 1, k - 1].copy()
                        wkm1 = dsc * (d11 * colkm1 - colk * np.conj(d12))
                        wk = dsc * (d22 * colk - colkm1 * d12)
                        upd = (np.outer(colk, np.conj(wk))
                               + np.outer(colkm1, np.conj(wkm1)))
                        iu = np.triu_indices(k - 1)
                        a[:k - 1, :k - 1][iu] -= upd[iu]
                        di = np.arange(k - 1)
                        a[di, di] = a[di, di].real
                        a[:k - 1, k] = wk
                        a[:k - 1, k - 1] = wkm1
                    else:
                        d12 = a[k - 1, k]
                        d22 = a[k - 1, k - 1] / d12
                        d11 = a[k, k] / d12
                        tt = 1.0 / (d11 * d22 - 1.0)
                        d12 = tt / d12
                        colk = a[:k - 1, k].copy()
                        colkm1 = a[:k - 1, k - 1].copy()
                        wkm1 = d12 * (d11 * colkm1 - colk)
                        wk = d12 * (d22 * colk - colkm1)
                        upd = np.outer(colk, wk) + np.outer(colkm1, wkm1)
                        iu = np.triu_indices(k - 1)
                        a[:k - 1, :k - 1][iu] -= upd[iu]
                        a[:k - 1, k] = wk
                        a[:k - 1, k - 1] = wkm1
        if kstep == 1:
            ipiv[k] = kp
        else:
            ipiv[k] = -(kp + 1)
            ipiv[k - 1] = -(kp + 1)
        k -= kstep
    return info


def _sytf2_lower(a: np.ndarray, ipiv: np.ndarray, hermitian: bool) -> int:
    n = a.shape[0]
    info = 0
    k = 0
    while k < n:
        kstep = 1
        absakk = abs(a[k, k].real) if hermitian else _cabs1(a[k, k])
        if k < n - 1:
            col = a[k + 1:, k]
            imax = k + 1 + int(np.argmax(_cabs1(col)))
            colmax = float(_cabs1(a[imax, k]))
        else:
            imax, colmax = k, 0.0
        if max(absakk, colmax) == 0.0:
            if info == 0:
                info = k + 1
            kp = k
            if hermitian:
                a[k, k] = a[k, k].real
        else:
            if absakk >= _ALPHA * colmax:
                kp = k
            else:
                rowmax = float(np.max(_cabs1(a[imax, k:imax]))) \
                    if imax > k else 0.0
                if imax < n - 1:
                    rowmax = max(rowmax,
                                 float(np.max(_cabs1(a[imax + 1:, imax]))))
                dmag = abs(a[imax, imax].real) if hermitian \
                    else _cabs1(a[imax, imax])
                if absakk >= _ALPHA * colmax * (colmax / rowmax):
                    kp = k
                elif dmag >= _ALPHA * rowmax:
                    kp = imax
                else:
                    kp = imax
                    kstep = 2
            kk = k + kstep - 1
            if kp != kk:
                if kp < n - 1:
                    tmp = a[kp + 1:, kk].copy()
                    a[kp + 1:, kk] = a[kp + 1:, kp]
                    a[kp + 1:, kp] = tmp
                seg = a[kk + 1: kp, kk].copy()
                if hermitian:
                    a[kk + 1: kp, kk] = np.conj(a[kp, kk + 1: kp])
                    a[kp, kk + 1: kp] = np.conj(seg)
                    a[kp, kk] = np.conj(a[kp, kk])
                    dkk, dkp = a[kk, kk].real, a[kp, kp].real
                    a[kk, kk], a[kp, kp] = dkp, dkk
                else:
                    a[kk + 1: kp, kk] = a[kp, kk + 1: kp]
                    a[kp, kk + 1: kp] = seg
                    a[kk, kk], a[kp, kp] = a[kp, kp], a[kk, kk]
                if kstep == 2:
                    a[kk, k], a[kp, k] = a[kp, k], a[kk, k]
            elif hermitian:
                a[kk, kk] = a[kk, kk].real
                if kstep == 2:
                    a[k, k] = a[k, k].real
            if kstep == 1:
                if k < n - 1:
                    if hermitian:
                        r1 = 1.0 / a[k, k].real
                        x = a[k + 1:, k]
                        upd = r1 * np.outer(x, np.conj(x))
                        il = np.tril_indices(n - k - 1)
                        a[k + 1:, k + 1:][il] -= upd[il]
                        di = np.arange(k + 1, n)
                        a[di, di] = a[di, di].real
                        a[k + 1:, k] *= r1
                    else:
                        r1 = 1.0 / a[k, k]
                        x = a[k + 1:, k]
                        upd = r1 * np.outer(x, x)
                        il = np.tril_indices(n - k - 1)
                        a[k + 1:, k + 1:][il] -= upd[il]
                        a[k + 1:, k] *= r1
            else:
                if k < n - 2:
                    if hermitian:
                        dd = float(np.hypot(a[k + 1, k].real,
                                            a[k + 1, k].imag))
                        d11 = a[k + 1, k + 1].real / dd
                        d22 = a[k, k].real / dd
                        tt = 1.0 / (d11 * d22 - 1.0)
                        d21 = a[k + 1, k] / dd
                        dsc = tt / dd
                        colk = a[k + 2:, k].copy()
                        colkp1 = a[k + 2:, k + 1].copy()
                        wk = dsc * (d11 * colk - colkp1 * d21)
                        wkp1 = dsc * (d22 * colkp1 - colk * np.conj(d21))
                        upd = (np.outer(colk, np.conj(wk))
                               + np.outer(colkp1, np.conj(wkp1)))
                        il = np.tril_indices(n - k - 2)
                        a[k + 2:, k + 2:][il] -= upd[il]
                        di = np.arange(k + 2, n)
                        a[di, di] = a[di, di].real
                        a[k + 2:, k] = wk
                        a[k + 2:, k + 1] = wkp1
                    else:
                        d21 = a[k + 1, k]
                        d11 = a[k + 1, k + 1] / d21
                        d22 = a[k, k] / d21
                        tt = 1.0 / (d11 * d22 - 1.0)
                        d21 = tt / d21
                        colk = a[k + 2:, k].copy()
                        colkp1 = a[k + 2:, k + 1].copy()
                        wk = d21 * (d11 * colk - colkp1)
                        wkp1 = d21 * (d22 * colkp1 - colk)
                        upd = np.outer(colk, wk) + np.outer(colkp1, wkp1)
                        il = np.tril_indices(n - k - 2)
                        a[k + 2:, k + 2:][il] -= upd[il]
                        a[k + 2:, k] = wk
                        a[k + 2:, k + 1] = wkp1
        if kstep == 1:
            ipiv[k] = kp
        else:
            ipiv[k] = -(kp + 1)
            ipiv[k + 1] = -(kp + 1)
        k += kstep
    return info


def sytf2(a: np.ndarray, uplo: str = "U", hermitian: bool = False):
    """Unblocked Bunch–Kaufman factorization (in place).

    Returns ``(ipiv, info)``.
    """
    if uplo.upper() not in ("U", "L"):
        xerbla("SYTF2", 1, f"uplo={uplo!r}")
    n = a.shape[0]
    if a.shape[1] != n:
        xerbla("SYTF2", 2, "matrix must be square")
    ipiv = np.zeros(n, dtype=np.int64)
    if uplo.upper() == "U":
        info = _sytf2_upper(a, ipiv, hermitian)
    else:
        info = _sytf2_lower(a, ipiv, hermitian)
    return ipiv, info


def sytrf(a: np.ndarray, uplo: str = "U"):
    """Bunch–Kaufman factorization of a symmetric matrix, ``A = U D Uᵀ``.

    (Delegates to the unblocked kernel; LAPACK's ``xLASYF`` blocking is a
    pure performance refinement with identical output.)
    Returns ``(ipiv, info)``.
    """
    return sytf2(a, uplo, hermitian=False)


def hetf2(a: np.ndarray, uplo: str = "U"):
    """Unblocked Hermitian Bunch–Kaufman factorization (``xHETF2``)."""
    return sytf2(a, uplo, hermitian=True)


def hetrf(a: np.ndarray, uplo: str = "U"):
    """Bunch–Kaufman factorization of a Hermitian matrix, ``A = U D Uᴴ``.

    Returns ``(ipiv, info)``.
    """
    return sytf2(a, uplo, hermitian=True)


def _sytrs_upper(a, ipiv, b, hermitian):
    n = a.shape[0]
    conj = np.conj if hermitian else (lambda z: z)
    # Solve U D x = b (descending).
    k = n - 1
    while k >= 0:
        if ipiv[k] >= 0:
            kp = ipiv[k]
            if kp != k:
                b[[k, kp]] = b[[kp, k]]
            if k > 0:
                b[:k] -= np.outer(a[:k, k], b[k])
            b[k] = b[k] / (a[k, k].real if hermitian else a[k, k])
            k -= 1
        else:
            kp = -ipiv[k] - 1
            if kp != k - 1:
                b[[k - 1, kp]] = b[[kp, k - 1]]
            if k > 1:
                b[:k - 1] -= np.outer(a[:k - 1, k], b[k])
                b[:k - 1] -= np.outer(a[:k - 1, k - 1], b[k - 1])
            akm1k = a[k - 1, k]
            akm1 = a[k - 1, k - 1] / akm1k
            ak = a[k, k] / (conj(akm1k) if hermitian else akm1k)
            denom = akm1 * ak - 1.0
            bkm1 = b[k - 1] / akm1k
            bk = b[k] / (conj(akm1k) if hermitian else akm1k)
            b[k - 1] = (ak * bkm1 - bk) / denom
            b[k] = (akm1 * bk - bkm1) / denom
            k -= 2
    # Solve (op(U)) x = b, op = transpose or conjugate transpose (ascending).
    k = 0
    while k < n:
        if ipiv[k] >= 0:
            if k > 0:
                b[k] -= conj(a[:k, k]) @ b[:k]
            kp = ipiv[k]
            if kp != k:
                b[[k, kp]] = b[[kp, k]]
            k += 1
        else:
            if k > 0:
                b[k] -= conj(a[:k, k]) @ b[:k]
                b[k + 1] -= conj(a[:k, k + 1]) @ b[:k]
            kp = -ipiv[k] - 1
            if kp != k:
                b[[k, kp]] = b[[kp, k]]
            k += 2
    return 0


def _sytrs_lower(a, ipiv, b, hermitian):
    n = a.shape[0]
    conj = np.conj if hermitian else (lambda z: z)
    # Solve L D x = b (ascending).
    k = 0
    while k < n:
        if ipiv[k] >= 0:
            kp = ipiv[k]
            if kp != k:
                b[[k, kp]] = b[[kp, k]]
            if k < n - 1:
                b[k + 1:] -= np.outer(a[k + 1:, k], b[k])
            b[k] = b[k] / (a[k, k].real if hermitian else a[k, k])
            k += 1
        else:
            kp = -ipiv[k] - 1
            if kp != k + 1:
                b[[k + 1, kp]] = b[[kp, k + 1]]
            if k < n - 2:
                b[k + 2:] -= np.outer(a[k + 2:, k], b[k])
                b[k + 2:] -= np.outer(a[k + 2:, k + 1], b[k + 1])
            akm1k = a[k + 1, k]
            akm1 = a[k, k] / (conj(akm1k) if hermitian else akm1k)
            ak = a[k + 1, k + 1] / akm1k
            denom = akm1 * ak - 1.0
            bkm1 = b[k] / (conj(akm1k) if hermitian else akm1k)
            bk = b[k + 1] / akm1k
            b[k] = (ak * bkm1 - bk) / denom
            b[k + 1] = (akm1 * bk - bkm1) / denom
            k += 2
    # Solve op(L) x = b (descending).
    k = n - 1
    while k >= 0:
        if ipiv[k] >= 0:
            if k < n - 1:
                b[k] -= conj(a[k + 1:, k]) @ b[k + 1:]
            kp = ipiv[k]
            if kp != k:
                b[[k, kp]] = b[[kp, k]]
            k -= 1
        else:
            if k < n - 1:
                b[k] -= conj(a[k + 1:, k]) @ b[k + 1:]
                b[k - 1] -= conj(a[k + 1:, k - 1]) @ b[k + 1:]
            kp = -ipiv[k] - 1
            if kp != k:
                b[[k, kp]] = b[[kp, k]]
            k -= 2
    return 0


def sytrs(a: np.ndarray, ipiv: np.ndarray, b: np.ndarray, uplo: str = "U",
          hermitian: bool = False) -> int:
    """Solve from the Bunch–Kaufman factors (B in place)."""
    n = a.shape[0]
    bmat = b if b.ndim == 2 else b[:, None]
    if bmat.shape[0] != n:
        xerbla("SYTRS", 4, "dimension mismatch")
    if uplo.upper() == "U":
        return _sytrs_upper(a, ipiv, bmat, hermitian)
    return _sytrs_lower(a, ipiv, bmat, hermitian)


def hetrs(a, ipiv, b, uplo="U"):
    """Hermitian variant of :func:`sytrs`."""
    return sytrs(a, ipiv, b, uplo=uplo, hermitian=True)


def sysv(a: np.ndarray, b: np.ndarray, uplo: str = "U"):
    """Solve a symmetric indefinite system (``xSYSV``).

    Returns ``(ipiv, info)``.
    """
    ipiv, info = sytrf(a, uplo)
    if info == 0:
        sytrs(a, ipiv, b, uplo)
    return ipiv, info


def hesv(a: np.ndarray, b: np.ndarray, uplo: str = "U"):
    """Solve a Hermitian indefinite system (``xHESV``).

    Returns ``(ipiv, info)``.
    """
    ipiv, info = hetrf(a, uplo)
    if info == 0:
        hetrs(a, ipiv, b, uplo)
    return ipiv, info


def _indef_con(a, ipiv, anorm, uplo, hermitian):
    n = a.shape[0]
    if n == 0:
        return 1.0, 0
    if anorm == 0:
        return 0.0, 0

    def solve(x):
        y = x.copy()
        sytrs(a, ipiv, y, uplo=uplo, hermitian=hermitian)
        return y

    if hermitian or not np.iscomplexobj(a):
        # inv(A) Hermitian ⇒ matvec == rmatvec.
        est = lacon(n, solve, solve, dtype=a.dtype)
    else:
        # Complex symmetric: inv(A)ᴴ = conj(inv(A)).
        def solve_h(x):
            y = np.conj(x)
            sytrs(a, ipiv, y, uplo=uplo, hermitian=False)
            return np.conj(y)

        est = lacon(n, solve, solve_h, dtype=a.dtype)
    return (1.0 / (est * anorm) if est else 0.0), 0


def sycon(a, ipiv, anorm, uplo="U"):
    """Reciprocal condition estimate from ``sytrf`` factors."""
    return _indef_con(a, ipiv, anorm, uplo, hermitian=False)


def hecon(a, ipiv, anorm, uplo="U"):
    """Reciprocal condition estimate from ``hetrf`` factors."""
    return _indef_con(a, ipiv, anorm, uplo, hermitian=True)


def _indef_rfs(a, af, ipiv, b, x, uplo, hermitian, itmax=5):
    n = a.shape[0]
    if uplo.upper() == "U":
        full = np.triu(a) + (np.conj(np.triu(a, 1)).T if hermitian
                             else np.triu(a, 1).T)
    else:
        full = np.tril(a) + (np.conj(np.tril(a, -1)).T if hermitian
                             else np.tril(a, -1).T)
    if hermitian:
        np.fill_diagonal(full, full.diagonal().real)
    bmat = b if b.ndim == 2 else b[:, None]
    xmat = x if x.ndim == 2 else x[:, None]
    nrhs = bmat.shape[1]
    ferr = np.zeros(nrhs)
    berr = np.zeros(nrhs)
    if n == 0 or nrhs == 0:
        return ferr, berr, 0
    eps = lamch("E", a.dtype)
    safmin = lamch("S", a.dtype)
    safe1 = (n + 1) * safmin
    safe2 = safe1 / eps
    absa = np.abs(full)
    for j in range(nrhs):
        count, lstres = 1, 3.0
        while True:
            r = bmat[:, j] - full @ xmat[:, j]
            denom = absa @ np.abs(xmat[:, j]) + np.abs(bmat[:, j])
            num = np.abs(r)
            with np.errstate(divide="ignore", invalid="ignore"):
                ratios = np.where(denom > safe2, num / denom,
                                  (num + safe1) / (denom + safe1))
            berr[j] = float(np.max(ratios))
            if berr[j] > eps and berr[j] <= 0.5 * lstres and count <= itmax:
                dx = r.copy()
                sytrs(af, ipiv, dx, uplo=uplo, hermitian=hermitian)
                xmat[:, j] += dx
                lstres = berr[j]
                count += 1
            else:
                break
        r = bmat[:, j] - full @ xmat[:, j]
        f = np.abs(r) + (n + 1) * eps * (absa @ np.abs(xmat[:, j])
                                         + np.abs(bmat[:, j]))
        f = np.where(f > safe2, f, f + safe1)

        def mv(v):
            w = f * v
            sytrs(af, ipiv, w, uplo=uplo, hermitian=hermitian)
            return w

        def rmv(v):
            if hermitian or not np.iscomplexobj(a):
                return mv(v)
            w = np.conj(v)
            sytrs(af, ipiv, w, uplo=uplo, hermitian=False)
            return f * np.conj(w)

        est = lacon(n, mv, rmv, dtype=a.dtype)
        xnorm = float(np.max(np.abs(xmat[:, j])))
        ferr[j] = est / xnorm if xnorm > 0 else est
    return ferr, berr, 0


def syrfs(a, af, ipiv, b, x, uplo="U", itmax=5):
    """Refinement + error bounds for symmetric indefinite systems."""
    return _indef_rfs(a, af, ipiv, b, x, uplo, hermitian=False, itmax=itmax)


def herfs(a, af, ipiv, b, x, uplo="U", itmax=5):
    """Refinement + error bounds for Hermitian indefinite systems."""
    return _indef_rfs(a, af, ipiv, b, x, uplo, hermitian=True, itmax=itmax)
