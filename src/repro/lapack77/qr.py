"""QR/LQ factorizations and orthogonal-factor application:
``xGEQRF/xORGQR/xORMQR`` and ``xGELQF/xORGLQ/xORMLQ``.

Householder reflectors are stored exactly as in LAPACK: reflector *i*
lives below the diagonal of column *i* (QR) or right of the diagonal of
row *i* (LQ), with the scalar factors in ``tau``.  Blocked variants use
the compact WY representation (``larft``/``larfb``).
"""

from __future__ import annotations

import numpy as np

from ..config import ilaenv
from ..errors import xerbla
from .householder import larf_left, larf_right, larfb, larfg, larft

__all__ = ["geqr2", "geqrf", "orgqr", "ungqr", "ormqr", "unmqr",
           "gelq2", "gelqf", "orglq", "unglq", "ormlq", "unmlq"]


def geqr2(a: np.ndarray):
    """Unblocked QR factorization (in place). Returns ``tau``."""
    m, n = a.shape
    k = min(m, n)
    tau = np.zeros(k, dtype=a.dtype)
    for i in range(k):
        beta, t = larfg(a[i, i], a[i + 1:, i])
        tau[i] = t
        a[i, i] = beta
        if i < n - 1 and t != 0:
            v = np.empty(m - i, dtype=a.dtype)
            v[0] = 1
            v[1:] = a[i + 1:, i]
            larf_left(v, np.conj(t), a[i:, i + 1:])
    return tau


def geqrf(a: np.ndarray):
    """Blocked QR factorization ``A = Q R`` (in place). Returns ``tau``.

    On exit the upper triangle holds R; the reflectors live below the
    diagonal.
    """
    m, n = a.shape
    k = min(m, n)
    nb = ilaenv(1, "geqrf")
    if nb <= 1 or k <= nb:
        return geqr2(a)
    tau = np.zeros(k, dtype=a.dtype)
    for i in range(0, k, nb):
        ib = min(nb, k - i)
        tau[i:i + ib] = geqr2(a[i:, i:i + ib])
        if i + ib < n:
            # Build V (unit lower trapezoidal) and apply the block reflector
            # Hᴴ to the trailing columns.
            v = np.tril(a[i:, i:i + ib], -1)
            np.fill_diagonal(v, 1)
            t = larft("F", "C", v, tau[i:i + ib])
            larfb("L", "C", v, t, a[i:, i + ib:])
    return tau


def orgqr(a: np.ndarray, tau: np.ndarray, ncols: int | None = None) -> np.ndarray:
    """Generate the explicit Q with orthonormal columns from ``geqrf``
    output (in place over ``a``).

    ``a`` is m×n (n ≤ m); the first ``len(tau)`` columns hold reflectors.
    Returns ``a`` containing Q (m×n).
    """
    m, n = a.shape
    k = len(tau)
    if n > m:
        xerbla("ORGQR", 2, "need n <= m")
    if k > n:
        xerbla("ORGQR", 3, "need k <= n")
    # Initialise columns k..n-1 to unit vectors, then accumulate H_i.
    a[:, k:] = 0
    for j in range(k, n):
        a[j, j] = 1
    for i in range(k - 1, -1, -1):
        v = np.empty(m - i, dtype=a.dtype)
        v[0] = 1
        v[1:] = a[i + 1:, i]
        if i < n - 1:
            larf_left(v, tau[i], a[i:, i + 1:])
        a[i:, i] = -tau[i] * v
        a[i, i] += 1
        a[:i, i] = 0
    return a


def ungqr(a, tau, ncols=None):
    """Complex alias of :func:`orgqr` (LAPACK naming)."""
    return orgqr(a, tau, ncols)


def ormqr(side: str, trans: str, a: np.ndarray, tau: np.ndarray,
          c: np.ndarray) -> np.ndarray:
    """Multiply C by Q (or Qᴴ) from a ``geqrf`` factorization, in place.

    ``side='L'``: C := op(Q) C; ``side='R'``: C := C op(Q).
    ``trans``: 'N' for Q, 'T'/'C' for Qᴴ (transpose == conjugate transpose
    here since Q's reflectors already encode the conjugation rules).
    """
    s = side.upper()
    t = trans.upper()
    if s not in ("L", "R"):
        xerbla("ORMQR", 1, f"side={side!r}")
    if t not in ("N", "T", "C"):
        xerbla("ORMQR", 2, f"trans={trans!r}")
    k = len(tau)
    m = a.shape[0]
    # Q = H_0 H_1 ... H_{k-1}.
    # Left,  N: apply H_{k-1} .. H_0  -> iterate i descending
    # Left,  C: apply H_0ᴴ .. H_{k-1}ᴴ -> ascending with conj(tau)
    # Right, N: C Q = C H_0 ... -> ascending
    # Right, C: C Qᴴ = C H_{k-1}ᴴ ... -> descending with conj(tau)
    forward = (s == "L") != (t == "N")
    order = range(k) if forward else range(k - 1, -1, -1)
    for i in order:
        v = np.empty(m - i, dtype=a.dtype)
        v[0] = 1
        v[1:] = a[i + 1:, i]
        ti = np.conj(tau[i]) if t in ("T", "C") else tau[i]
        if s == "L":
            larf_left(v, ti, c[i:, :])
        else:
            larf_right(v, ti, c[:, i:])
    return c


def unmqr(side, trans, a, tau, c):
    """Complex alias of :func:`ormqr`."""
    return ormqr(side, trans, a, tau, c)


def gelq2(a: np.ndarray):
    """Unblocked LQ factorization (in place). Returns ``tau``.

    On exit the lower triangle holds L; reflector *i* is stored in row *i*
    right of the diagonal.  Matches LAPACK: for complex data the reflector
    annihilates the *conjugated* row.
    """
    m, n = a.shape
    k = min(m, n)
    tau = np.zeros(k, dtype=a.dtype)
    complex_case = np.iscomplexobj(a)
    for i in range(k):
        if complex_case:
            a[i, i:] = np.conj(a[i, i:])
        beta, t = larfg(a[i, i], a[i, i + 1:])
        tau[i] = t
        a[i, i] = beta
        if i < m - 1 and t != 0:
            v = np.empty(n - i, dtype=a.dtype)
            v[0] = 1
            v[1:] = a[i, i + 1:]
            larf_right(v, t, a[i + 1:, i:])
        if complex_case:
            a[i, i + 1:] = np.conj(a[i, i + 1:])
    return tau


def gelqf(a: np.ndarray):
    """LQ factorization ``A = L Q`` (in place). Returns ``tau``."""
    return gelq2(a)


def orglq(a: np.ndarray, tau: np.ndarray) -> np.ndarray:
    """Generate the explicit Q with orthonormal rows from ``gelqf`` output
    (in place; ``a`` is m×n with m ≤ n). Returns ``a`` containing Q."""
    m, n = a.shape
    k = len(tau)
    if m > n:
        xerbla("ORGLQ", 1, "need m <= n")
    complex_case = np.iscomplexobj(a)
    a[k:, :] = 0
    for j in range(k, m):
        a[j, j] = 1
    for i in range(k - 1, -1, -1):
        v = np.empty(n - i, dtype=a.dtype)
        v[0] = 1
        v[1:] = np.conj(a[i, i + 1:]) if complex_case else a[i, i + 1:]
        if i < m - 1:
            larf_right(v, np.conj(tau[i]), a[i + 1:, i:])
        a[i, i:] = -np.conj(tau[i]) * np.conj(v)
        a[i, i] += 1
        a[i, :i] = 0
    return a


def unglq(a, tau):
    """Complex alias of :func:`orglq`."""
    return orglq(a, tau)


def ormlq(side: str, trans: str, a: np.ndarray, tau: np.ndarray,
          c: np.ndarray) -> np.ndarray:
    """Multiply C by the Q of an LQ factorization (or its adjoint), in place.

    ``Q = H_{k-1}ᴴ ... H_0ᴴ`` in LAPACK's convention for complex LQ
    (plain ``H_{k-1} ... H_0`` for real).
    """
    s = side.upper()
    t = trans.upper()
    if s not in ("L", "R"):
        xerbla("ORMLQ", 1, f"side={side!r}")
    if t not in ("N", "T", "C"):
        xerbla("ORMLQ", 2, f"trans={trans!r}")
    k = len(tau)
    n = a.shape[1]
    complex_case = np.iscomplexobj(a)
    # Q = H(k-1)' ... H(0)' where H(i) uses v from row i (conjugated for
    # complex).  Application order mirrors ormqr with roles flipped.
    forward = (s == "L") == (t == "N")
    order = range(k) if forward else range(k - 1, -1, -1)
    for i in order:
        v = np.empty(n - i, dtype=a.dtype)
        v[0] = 1
        v[1:] = np.conj(a[i, i + 1:]) if complex_case else a[i, i + 1:]
        # Complex Q is built from H(i)ᴴ factors, so applying Q uses
        # conj(tau) and applying Qᴴ uses tau itself.
        ti = np.conj(tau[i]) if (t == "N" and complex_case) else tau[i]
        if s == "L":
            larf_left(v, ti, c[i:, :])
        else:
            larf_right(v, ti, c[:, i:])
    return c


def unmlq(side, trans, a, tau, c):
    """Complex alias of :func:`ormlq`."""
    return ormlq(side, trans, a, tau, c)
