"""Generalized nonsymmetric eigenproblem: QZ algorithm
(``xGGHRD`` + ``xHGEQZ``) and the drivers ``xGEGS``/``xGEGV``.

Implementation note (DESIGN.md §7): the iteration is the single-shift
complex QZ of Moler & Stewart.  Real input is promoted to complex, so for
real pencils ``gegs`` returns a (complex) triangular generalized Schur
form rather than LAPACK's real quasi-triangular one — the same
factorization over ℂ, exercising the same interface.  Eigenvalues are
returned as ``(alpha, beta)`` pairs, never forming ``alpha/beta``.
"""

from __future__ import annotations

import numpy as np

from ..errors import xerbla
from .givens import lartg_c
from .machine import lamch
from .qr import geqrf, ormqr

__all__ = ["gghrd", "hgeqz", "gegs", "gegv", "tgevc"]

_QZ_ITMAX = 60


def _rot_rows(a, i, j, c, s, cols=slice(None)):
    ri = a[i, cols].copy()
    a[i, cols] = c * ri + s * a[j, cols]
    a[j, cols] = -np.conj(s) * ri + c * a[j, cols]


def _rot_cols(a, i, j, c, s, rows=slice(None)):
    ci = a[rows, i].copy()
    a[rows, i] = c * ci + s * a[rows, j]
    a[rows, j] = -np.conj(s) * ci + c * a[rows, j]


def gghrd(a: np.ndarray, b: np.ndarray, q: np.ndarray | None = None,
          z: np.ndarray | None = None):
    """Reduce the pencil (A, B) to Hessenberg-triangular form
    (``xGGHRD``; in place): first B := QR triangularization, then Givens
    chasing keeps B triangular while making A Hessenberg.

    ``q`` and ``z`` (identity on entry) accumulate the transformations:
    on exit ``A₀ = Q A Zᴴ`` and ``B₀ = Q B Zᴴ``.
    """
    n = a.shape[0]
    if b.shape != (n, n):
        xerbla("GGHRD", 2, "A and B must be square, same order")
    # Step 1: B = QR; A := Qᴴ A, B := R.
    tau = geqrf(b)
    ormqr("L", "C", b, tau, a)
    if q is not None:
        # Q accumulates the *inverse* transforms: A0 = Q A Zᴴ.
        ormqr("R", "N", b, tau, q)
    for j in range(n - 1):
        b[j + 1:, j] = 0
    # Step 2: chase A to Hessenberg with Givens, keeping B triangular.
    for j in range(n - 2):
        for i in range(n - 1, j + 1, -1):
            # Zero A[i, j] with a row rotation (rows i-1, i).
            c, s, r = lartg_c(a[i - 1, j], a[i, j])
            a[i - 1, j] = r
            a[i, j] = 0
            _rot_rows(a, i - 1, i, c, s, cols=slice(j + 1, n))
            _rot_rows(b, i - 1, i, c, s, cols=slice(i - 1, n))
            if q is not None:
                # A0 = Q A: Q := Q Gᴴ when A := G A.
                _rot_cols(q, i - 1, i, c, np.conj(s))
            # The row rotation fills B[i, i-1]; zero it with a column
            # rotation (columns i, i-1).
            c, s, r = lartg_c(b[i, i], b[i, i - 1])
            b[i, i] = r
            b[i, i - 1] = 0
            # Column rotation acting on (col i, col i-1).
            _rot_cols(b, i, i - 1, c, s, rows=slice(0, i))
            _rot_cols(a, i, i - 1, c, s, rows=slice(0, n))
            if z is not None:
                _rot_cols(z, i, i - 1, c, s)
    return 0


def hgeqz(h: np.ndarray, t: np.ndarray, q: np.ndarray | None = None,
          z: np.ndarray | None = None):
    """Single-shift QZ iteration on a Hessenberg-triangular pencil
    (``xHGEQZ`` job='S'): reduce H to triangular while keeping T
    triangular; accumulate into ``q``/``z`` (so that the entry pencil
    ``(H₀, T₀) = (Q H Zᴴ, Q T Zᴴ)``).

    A negligible ``T`` diagonal entry (singular B ⇒ infinite eigenvalue)
    is regularized at the ``eps·‖T‖`` level — the corresponding ``beta``
    comes out ≈ 0 with the same accuracy class as LAPACK's deflation
    (DESIGN.md §7).

    Returns ``(alpha, beta, info)``.
    """
    n = h.shape[0]
    alpha = np.zeros(n, dtype=np.complex128)
    beta = np.zeros(n, dtype=np.complex128)
    if n == 0:
        return alpha, beta, 0
    eps = lamch("E", np.float64)
    hnorm = max(float(np.abs(h).max()), 1e-300)
    tnorm = max(float(np.abs(t).max()), 1e-300)
    atol = eps * hnorm
    btol = eps * tnorm
    # Regularize negligible T diagonal entries once, up front.
    for k in range(n):
        if abs(t[k, k]) <= btol:
            t[k, k] = btol
    ilast = n - 1
    iters_total = 0
    maxit = _QZ_ITMAX * n
    while ilast >= 0:
        if ilast == 0:
            alpha[0] = h[0, 0]
            beta[0] = t[0, 0]
            break
        progressed = False
        for _ in range(_QZ_ITMAX):
            iters_total += 1
            if iters_total > maxit:
                return alpha, beta, ilast + 1
            # Find the top of the active unreduced block.
            ifirst = ilast
            while ifirst > 0:
                sub = abs(h[ifirst, ifirst - 1])
                if sub <= atol or sub <= eps * (
                        abs(h[ifirst - 1, ifirst - 1])
                        + abs(h[ifirst, ifirst])):
                    h[ifirst, ifirst - 1] = 0
                    break
                ifirst -= 1
            if ifirst == ilast:
                alpha[ilast] = h[ilast, ilast]
                beta[ilast] = t[ilast, ilast]
                ilast -= 1
                progressed = True
                break
            # Wilkinson shift and implicit sweep.
            shift = _qz_shift(h, t, ilast)
            x = h[ifirst, ifirst] - shift * t[ifirst, ifirst]
            y = h[ifirst + 1, ifirst]
            for k in range(ifirst, ilast):
                if k > ifirst:
                    x = h[k, k - 1]
                    y = h[k + 1, k - 1]
                c, s, r = lartg_c(x, y)
                if k > ifirst:
                    h[k, k - 1] = r
                    h[k + 1, k - 1] = 0
                _rot_rows(h, k, k + 1, c, s, cols=slice(k, n))
                _rot_rows(t, k, k + 1, c, s, cols=slice(k, n))
                if q is not None:
                    _rot_cols(q, k, k + 1, c, np.conj(s))
                # T fill at (k+1, k): zero with a column rotation.
                c2, s2, r2 = lartg_c(t[k + 1, k + 1], t[k + 1, k])
                t[k + 1, k + 1] = r2
                t[k + 1, k] = 0
                _rot_cols(t, k + 1, k, c2, s2, rows=slice(0, k + 1))
                _rot_cols(h, k + 1, k, c2, s2,
                          rows=slice(0, min(k + 3, ilast + 1)))
                if z is not None:
                    _rot_cols(z, k + 1, k, c2, s2)
        if not progressed:
            return alpha, beta, ilast + 1
    return alpha, beta, 0


def _qz_shift(h, t, ilast):
    """Wilkinson shift: eigenvalue of the trailing 2×2 of T⁻¹H closest to
    the bottom-corner ratio."""
    k = ilast
    # Trailing 2×2 of the pencil in explicit form M = T22⁻¹ H22.
    h22 = h[k - 1: k + 1, k - 1: k + 1]
    t22 = t[k - 1: k + 1, k - 1: k + 1]
    # Solve T22 M = H22 (T22 upper triangular 2×2).
    m = np.empty((2, 2), dtype=np.complex128)
    t11, t12, t22_ = t22[0, 0], t22[0, 1], t22[1, 1]
    m[1, :] = h22[1, :] / t22_
    m[0, :] = (h22[0, :] - t12 * m[1, :]) / t11
    tr = m[0, 0] + m[1, 1]
    det = m[0, 0] * m[1, 1] - m[0, 1] * m[1, 0]
    disc = np.sqrt(tr * tr - 4.0 * det)
    r1 = (tr + disc) / 2.0
    r2 = (tr - disc) / 2.0
    target = m[1, 1]
    return r1 if abs(r1 - target) <= abs(r2 - target) else r2


def tgevc(s: np.ndarray, p: np.ndarray, z: np.ndarray | None = None,
          side: str = "R"):
    """Eigenvectors of a triangular pencil (S, P) (``xTGEVC``): columns
    solve ``(βᵢ S − αᵢ P) x = 0``; with ``z`` they are back-transformed.
    """
    n = s.shape[0]
    vecs = np.zeros((n, n), dtype=np.complex128)
    eps = lamch("E", np.float64)
    floor = eps * max(float(np.abs(s).max(initial=0)),
                      float(np.abs(p).max(initial=0)), 1.0)
    if side.upper() == "L":
        flip = slice(None, None, -1)
        sf = np.conj(s.T)[flip, flip]
        pf = np.conj(p.T)[flip, flip]
        v = tgevc(sf, pf, None, side="R")
        v = v[flip, :][:, ::-1]
        if z is not None:
            v = z.astype(np.complex128) @ v
        for j in range(n):
            nrm = np.linalg.norm(v[:, j])
            if nrm > 0:
                v[:, j] /= nrm
        return v
    for j in range(n):
        al, be = s[j, j], p[j, j]
        m = be * s - al * p           # triangular; column j of m·x = 0
        y = np.zeros(n, dtype=np.complex128)
        y[j] = 1.0
        for i in range(j - 1, -1, -1):
            num = -(m[i, i + 1: j + 1] @ y[i + 1: j + 1])
            den = m[i, i]
            if abs(den) < floor * max(abs(al), abs(be), 1.0):
                den = floor * max(abs(al), abs(be), 1.0)
            y[i] = num / den
        vecs[:, j] = y
    if z is not None:
        vecs = z.astype(np.complex128) @ vecs
    for j in range(n):
        nrm = np.linalg.norm(vecs[:, j])
        if nrm > 0:
            vecs[:, j] /= nrm
            k = int(np.argmax(np.abs(vecs[:, j])))
            piv = vecs[k, j]
            if piv != 0:
                vecs[:, j] *= np.conj(piv) / abs(piv)
    return vecs


def _promote(a):
    if np.iscomplexobj(a):
        return np.asarray(a, dtype=np.complex128).copy()
    return np.asarray(a, dtype=np.complex128)


def gegs(a: np.ndarray, b: np.ndarray, want_vsl: bool = True,
         want_vsr: bool = True):
    """Generalized Schur factorization of a pencil (A, B) (``xGEGS``).

    Returns ``(alpha, beta, s, t, vsl, vsr, info)`` with
    ``A = VSL · S · VSRᴴ`` and ``B = VSL · T · VSRᴴ`` (S, T upper
    triangular, complex — see the module note for real input).
    """
    n = a.shape[0]
    if b.shape != (n, n):
        xerbla("GEGS", 2, "A and B must be square, same order")
    s = _promote(a)
    t = _promote(b)
    q = np.eye(n, dtype=np.complex128)
    z = np.eye(n, dtype=np.complex128)
    gghrd(s, t, q, z)
    alpha, beta, info = hgeqz(s, t, q, z)
    # Entry pencil = Q S Zᴴ with our accumulation ⇒ VSL = Q, VSR = Z.
    return (alpha, beta, s, t,
            q if want_vsl else None, z if want_vsr else None, info)


def gegv(a: np.ndarray, b: np.ndarray, want_vl: bool = False,
         want_vr: bool = False):
    """Generalized eigenvalues (and optionally eigenvectors) of (A, B)
    (``xGEGV``): pairs (alphaᵢ, betaᵢ) with ``betaᵢ A x = alphaᵢ B x``.

    Returns ``(alpha, beta, vl, vr, info)``.
    """
    alpha, beta, s, t, q, z, info = gegs(a, b)
    vl = vr = None
    if info == 0:
        if want_vr:
            vr = tgevc(s, t, z, side="R")
        if want_vl:
            vl = tgevc(s, t, q, side="L")
    return alpha, beta, vl, vr, info
