"""Hessenberg reduction and balancing: ``xGEBAL``, ``xGEBAK``,
``xGEHRD``, ``xORGHR`` — the front end of the nonsymmetric eigensolvers.
"""

from __future__ import annotations

import numpy as np

from ..errors import xerbla
from .householder import larf_left, larf_right, larfg

__all__ = ["gebal", "gebak", "gehd2", "gehrd", "orghr", "unghr"]


def gebal(a: np.ndarray, job: str = "B"):
    """Balance a general matrix (``xGEBAL``): permute to isolate
    eigenvalues, then diagonally scale to equalize row/column norms.

    ``job``: 'N' none, 'P' permute only, 'S' scale only, 'B' both.
    ``a`` is transformed in place.  Returns ``(ilo, ihi, scale)``
    (0-based: rows/cols outside ``ilo..ihi`` are already triangular;
    ``scale`` records the permutations and scalings for ``gebak``).
    """
    j = job.upper()
    if j not in ("N", "P", "S", "B"):
        xerbla("GEBAL", 1, f"job={job!r}")
    n = a.shape[0]
    scale = np.ones(n)
    ilo, ihi = 0, n - 1
    if n == 0:
        return 0, -1, scale
    if j in ("P", "B"):
        # Push rows with zero off-diagonals to the bottom, columns to top.
        changed = True
        while changed:
            changed = False
            # Row search: a row i (ilo<=i<=ihi) with zeros off-diagonal in
            # columns ilo..ihi can be moved to position ihi.
            for i in range(ihi, ilo - 1, -1):
                row = a[i, ilo:ihi + 1]
                if np.all(row[np.arange(ihi - ilo + 1) != (i - ilo)] == 0):
                    _swap_rc(a, i, ihi)
                    scale[ihi] = i  # record permutation
                    ihi -= 1
                    changed = True
                    break
        changed = True
        while changed:
            changed = False
            for jcol in range(ilo, ihi + 1):
                col = a[ilo:ihi + 1, jcol]
                if np.all(col[np.arange(ihi - ilo + 1) != (jcol - ilo)] == 0):
                    _swap_rc(a, jcol, ilo)
                    scale[ilo] = jcol
                    ilo += 1
                    changed = True
                    break
    if j in ("S", "B") and ihi > ilo:
        # Iterative scaling to balance 1-norms of rows and columns.
        sclfac, factor = 2.0, 0.95
        converged = False
        while not converged:
            converged = True
            for i in range(ilo, ihi + 1):
                c = float(np.sum(np.abs(a[ilo:ihi + 1, i]))) - abs(a[i, i])
                r = float(np.sum(np.abs(a[i, ilo:ihi + 1]))) - abs(a[i, i])
                if c == 0 or r == 0:
                    continue
                g = r / sclfac
                f = 1.0
                s = c + r
                while c < g:
                    f *= sclfac
                    c *= sclfac
                    g /= sclfac
                g = c / sclfac
                while g >= r:
                    f /= sclfac
                    c /= sclfac
                    g /= sclfac
                if (c + r) < factor * s and f != 1.0:
                    scale[i] *= f
                    a[i, :] /= f
                    a[:, i] *= f
                    converged = False
    return ilo, ihi, scale


def _swap_rc(a: np.ndarray, i: int, j: int) -> None:
    if i != j:
        a[[i, j], :] = a[[j, i], :]
        a[:, [i, j]] = a[:, [j, i]]


def gebak(v: np.ndarray, ilo: int, ihi: int, scale: np.ndarray,
          job: str = "B", side: str = "R") -> np.ndarray:
    """Back-transform eigenvectors for the balancing (``xGEBAK``).

    ``v`` holds eigenvectors as columns (in place).
    """
    j = job.upper()
    n = v.shape[0]
    if n == 0:
        return v
    if j in ("S", "B") and ihi > ilo:
        for i in range(ilo, ihi + 1):
            s = scale[i]
            if side.upper() == "R":
                v[i, :] *= s
            else:
                v[i, :] /= s
    if j in ("P", "B"):
        # Undo permutations: order matters (reverse of gebal's recording).
        for i in list(range(ilo - 1, -1, -1)) + list(range(ihi + 1, n)):
            k = int(scale[i].real)
            if k != i:
                v[[i, k], :] = v[[k, i], :]
    return v


def gehd2(a: np.ndarray, ilo: int = 0, ihi: int | None = None):
    """Unblocked Hessenberg reduction ``Qᴴ A Q = H`` (in place).

    Reflector *i* is stored below the first subdiagonal of column *i*.
    Returns ``tau``.
    """
    n = a.shape[0]
    if ihi is None:
        ihi = n - 1
    tau = np.zeros(max(n - 1, 0), dtype=a.dtype)
    for i in range(ilo, ihi):
        beta, taui = larfg(a[i + 1, i], a[i + 2: ihi + 1, i])
        tau[i] = taui
        if taui != 0:
            a[i + 1, i] = 1
            v = a[i + 1: ihi + 1, i].copy()
            # Apply H from the right to rows 0..ihi, columns i+1..ihi.
            larf_right(v, taui, a[: ihi + 1, i + 1: ihi + 1])
            # Apply Hᴴ from the left to rows i+1..ihi, columns i+1..n-1.
            larf_left(v, np.conj(taui), a[i + 1: ihi + 1, i + 1:])
        a[i + 1, i] = beta
    return tau


def gehrd(a: np.ndarray, ilo: int = 0, ihi: int | None = None):
    """Hessenberg reduction (``xGEHRD``); delegates to the unblocked
    kernel (blocked ``xLAHRD`` is a performance variant)."""
    return gehd2(a, ilo, ihi)


def orghr(a: np.ndarray, tau: np.ndarray, ilo: int = 0,
          ihi: int | None = None) -> np.ndarray:
    """Generate the unitary Q of the Hessenberg reduction.

    Returns a new n×n array (does not modify ``a``).
    """
    n = a.shape[0]
    if ihi is None:
        ihi = n - 1
    q = np.eye(n, dtype=a.dtype)
    for i in range(ihi - 1, ilo - 1, -1):
        if tau[i] == 0:
            continue
        v = np.empty(ihi - i, dtype=a.dtype)
        v[0] = 1
        v[1:] = a[i + 2: ihi + 1, i]
        larf_left(v, tau[i], q[i + 1: ihi + 1, :])
    return q


def unghr(a, tau, ilo=0, ihi=None):
    """Complex alias of :func:`orghr`."""
    return orghr(a, tau, ilo, ihi)
