"""Column-pivoted QR (``xGEQPF``) and trapezoidal RZ factorization
(``xTZRQF``) — the rank-revealing machinery under ``xGELSX``.
"""

from __future__ import annotations

import numpy as np

from .householder import larf_left, larfg

__all__ = ["geqpf", "tzrqf", "latzm"]


def geqpf(a: np.ndarray, jpvt: np.ndarray | None = None):
    """QR factorization with column pivoting: ``A P = Q R`` (in place).

    ``jpvt`` (0-based) enters with fixed-column markers LAPACK-style
    (nonzero = move to front); passing ``None`` treats all columns as free.
    Returns ``(jpvt, tau)`` where ``jpvt[j]`` is the index of the original
    column now in position ``j``.
    """
    m, n = a.shape
    k = min(m, n)
    tau = np.zeros(k, dtype=a.dtype)
    perm = np.arange(n)
    if jpvt is not None:
        # Move the marked columns to the front, preserving order.
        fixed = [j for j in range(n) if jpvt[j]]
        free = [j for j in range(n) if not jpvt[j]]
        order = fixed + free
        a[:, :] = a[:, order]
        perm = np.array(order)
        nfixed = len(fixed)
    else:
        nfixed = 0
    # Partial column norms.
    norms = np.linalg.norm(a, axis=0).astype(np.float64)
    norms2 = norms.copy()
    for i in range(k):
        if i >= nfixed:
            # Pivot: bring the column with largest partial norm to front.
            p = i + int(np.argmax(norms[i:]))
            if p != i:
                a[:, [i, p]] = a[:, [p, i]]
                perm[[i, p]] = perm[[p, i]]
                norms[p] = norms[i]
                norms2[p] = norms2[i]
        beta, t = larfg(a[i, i], a[i + 1:, i])
        tau[i] = t
        a[i, i] = beta
        if i < n - 1:
            v = np.empty(m - i, dtype=a.dtype)
            v[0] = 1
            v[1:] = a[i + 1:, i]
            larf_left(v, np.conj(t), a[i:, i + 1:])
            # Downdate the partial norms with recomputation safeguard.
            for j in range(i + 1, n):
                if norms[j] != 0:
                    temp = 1.0 - (abs(a[i, j]) / norms[j]) ** 2
                    temp = max(temp, 0.0)
                    temp2 = 1.0 + 0.05 * temp * (norms[j] / norms2[j]) ** 2 \
                        if norms2[j] != 0 else 1.0
                    if temp2 == 1.0:
                        norms[j] = float(np.linalg.norm(a[i + 1:, j]))
                        norms2[j] = norms[j]
                    else:
                        norms[j] = norms[j] * np.sqrt(temp)
    return perm, tau


def tzrqf(a: np.ndarray):
    """Reduce an upper trapezoidal m×n matrix (m ≤ n) to upper triangular
    form: ``A = [R 0] Z`` with Z unitary (in place).

    Convention (self-consistent with :func:`latzm` — see ``gelsx``):
    step *k* builds ``G_k = I − conj(tau_k) u u^H`` with
    ``u = e_k + Σ v_j e_{m+j}`` and applies it from the right, so that
    ``Z = G_0ᴴ G_1ᴴ ··· G_{m-1}ᴴ`` and ``Zᴴ w`` is computed by applying
    ``G_0, G_1, …`` in ascending order via ``latzm`` with ``conj(tau)``.

    Row *k*'s reflector vector ``v`` is stored in ``a[k, m:]``; returns
    ``tau``.
    """
    m, n = a.shape
    if m > n:
        raise ValueError("tzrqf requires m <= n")
    tau = np.zeros(m, dtype=a.dtype)
    if m == n:
        return tau
    cplx = np.iscomplexobj(a)
    for k in range(m - 1, -1, -1):
        # Reflector for the conjugated row: annihilates x below alpha in
        # H' [alpha; x] = [beta; 0]; then G = H'ᴴ zeroes the row from the
        # right.
        alpha = np.conj(a[k, k]) if cplx else a[k, k]
        xvec = np.conj(a[k, m:]) if cplx else a[k, m:].copy()
        beta, t = larfg(alpha, xvec)
        tau[k] = t
        v = xvec  # larfg overwrote xvec with v
        if t != 0 and k > 0:
            # Rows 0..k-1, columns (k, m:):  A := A · G.
            s = a[:k, k] + a[:k, m:] @ v
            ct = np.conj(t)
            a[:k, k] -= ct * s
            a[:k, m:] -= ct * np.outer(s, np.conj(v))
        a[k, k] = np.conj(beta) if cplx else beta
        a[k, m:] = v
    return tau


def latzm(side: str, v: np.ndarray, tau, c1: np.ndarray, c2: np.ndarray):
    """Apply the ``tzrqf`` reflector ``H = I − tau [1; v] [1; v]ᴴ`` to
    ``[C1; C2]`` (side='L') or ``[C1, C2]`` (side='R'), in place.

    ``v`` is the stored trailing part of the reflector.
    """
    if tau == 0:
        return
    if side.upper() == "L":
        # w = C1 + vᴴ C2 ;  C1 -= tau w ; C2 -= tau v w
        w = c1 + np.conj(v) @ c2
        c1 -= tau * w
        c2 -= tau * np.outer(v, w)
    else:
        # w = C1 + C2 v ; C1 -= tau w ; C2 -= tau w vᴴ
        w = c1 + c2 @ v
        c1 -= tau * w
        c2 -= tau * np.outer(w, np.conj(v))
