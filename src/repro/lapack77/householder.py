"""Householder reflector kernels: ``xLARFG``, ``xLARF``, ``xLARFT``,
``xLARFB``.

The whole orthogonal-factorization substrate (QR/LQ, Hessenberg and
bidiagonal reductions, tridiagonalization) is built from these four.
A reflector is ``H = I − tau · v vᴴ`` with ``v[0] = 1`` implicit, exactly
LAPACK's representation, so factored forms stored in the lower/upper
triangles of the output arrays match LAPACK's layout.
"""

from __future__ import annotations

import numpy as np

__all__ = ["larfg", "larf_left", "larf_right", "larft", "larfb"]


def larfg(alpha, x: np.ndarray):
    """Generate an elementary reflector annihilating the vector below
    ``alpha``.

    Given the (n)-vector ``[alpha; x]``, find ``tau`` and ``v = [1; v2]``
    with ``H = I − tau v vᴴ`` such that ``H [alpha; x] = [beta; 0]`` and
    ``beta`` real for the complex case.

    ``x`` is overwritten with ``v2``; returns ``(beta, tau)``.
    """
    n = x.shape[0] + 1
    if n <= 0:
        return alpha, 0.0
    complex_case = np.iscomplexobj(x) or np.iscomplexobj(np.asarray(alpha))
    xnorm = float(np.linalg.norm(x)) if x.size else 0.0
    if xnorm == 0.0 and (not complex_case or np.imag(alpha) == 0.0):
        return np.real(alpha) if complex_case else alpha, 0.0

    if complex_case:
        alphr, alphi = np.real(alpha), np.imag(alpha)
        beta = -np.sign(alphr if alphr != 0 else 1.0) * _lapy3(alphr, alphi, xnorm)
        tau = complex((beta - alphr) / beta, -alphi / beta)
        denom = alpha - beta
        x /= denom
        return beta, tau
    beta = -np.sign(alpha if alpha != 0 else 1.0) * float(np.hypot(alpha, xnorm))
    tau = (beta - alpha) / beta
    x /= (alpha - beta)
    return beta, tau


def _lapy3(x, y, z):
    w = max(abs(x), abs(y), abs(z))
    if w == 0:
        return 0.0
    return w * float(np.sqrt((x / w) ** 2 + (y / w) ** 2 + (z / w) ** 2))


def larf_left(v: np.ndarray, tau, c: np.ndarray) -> np.ndarray:
    """Apply ``H = I − tau v vᴴ`` from the left: ``C := H C`` (in place).

    ``v`` is the full reflector vector including the leading 1.
    """
    if tau != 0:
        w = np.conj(v) @ c          # w = vᴴ C
        c -= tau * np.outer(v, w)
    return c


def larf_right(v: np.ndarray, tau, c: np.ndarray) -> np.ndarray:
    """Apply ``H`` from the right: ``C := C H`` (in place)."""
    if tau != 0:
        w = c @ v                   # w = C v
        c -= tau * np.outer(w, np.conj(v))
    return c


def larft(direct: str, storev: str, v: np.ndarray, tau: np.ndarray) -> np.ndarray:
    """Form the triangular factor T of a block reflector
    ``H = I − V T Vᴴ`` from k reflectors.

    Only the combination used by this package is implemented:
    ``direct='F'`` (H = H_0 H_1 ··· H_{k-1}) with ``storev='C'``
    (reflector j is column j of V, unit lower-trapezoidal).
    """
    if direct.upper() != "F" or storev.upper() != "C":
        raise NotImplementedError("only direct='F', storev='C' is used")
    n, k = v.shape
    t = np.zeros((k, k), dtype=v.dtype)
    for j in range(k):
        if tau[j] == 0:
            continue
        t[j, j] = tau[j]
        if j > 0:
            # t(0:j, j) = -tau_j * T(0:j,0:j) * V(:,0:j)ᴴ * V(:,j)
            w = np.conj(v[:, :j]).T @ v[:, j]
            t[:j, j] = -tau[j] * (t[:j, :j] @ w)
    return t


def larfb(side: str, trans: str, v: np.ndarray, t: np.ndarray,
          c: np.ndarray) -> np.ndarray:
    """Apply a block reflector ``H = I − V T Vᴴ`` (or ``Hᴴ``) to C in place.

    ``direct='F'``, ``storev='C'`` layout assumed (V is n×k unit
    lower-trapezoidal).  ``side='L'``: C := op(H) C; ``side='R'``:
    C := C op(H).
    """
    tt = t if trans.upper() == "N" else np.conj(t).T
    if side.upper() == "L":
        # W = Vᴴ C ; C -= V (op(T) W)
        w = np.conj(v).T @ c
        c -= v @ (tt @ w)
    else:
        # W = C V ; C -= (W op(T)) Vᴴ
        w = c @ v
        c -= (w @ tt) @ np.conj(v).T
    return c
