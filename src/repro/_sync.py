"""Shared synchronisation for the process-global configuration state.

The package keeps three pieces of process-global state: the exception
policy (:mod:`repro.policy`), the selected backend
(:mod:`repro.backends`) and the blocking parameters
(:mod:`repro.config`).  The "millions of users" deployment target means
these knobs get flipped from many threads while drivers are solving, so
every mutation goes through one shared re-entrant lock.

An :class:`~threading.RLock` (not a plain Lock) because the setters
nest: ``exception_policy`` restores via ``set_policy`` while already
holding the lock, and ``use_backend`` enters ``set_backend`` twice.

lalint's LA015 rule enforces the discipline statically: outside the
owner modules the state may only be touched through the designated
setters, and every mutation site inside the owners must lexically hold
``with STATE_LOCK:``.

Since LA023–LA026 the discipline is also *semantic*: the laflow
concurrency pass (:mod:`repro.analysis.flow.locks`) tracks this lock as
part of the abstract environment — reads as well as writes of every
name in the ``guarded_by`` registry must be proved to hold it on all
paths, interprocedurally; check-then-act sequences may not straddle two
lock regions; and the static acquisition graph over this and every
other lock in the tree must stay acyclic (re-entrant self-nesting of
this RLock is modelled and allowed).  Deliberate lock-free reads carry
a justified ``laflow: benign-race`` comment at the access site and the
annotation itself is verified load-bearing.  DESIGN.md §15 has the
model; the Users' Guide "Concurrency contract" section has the rules.
"""

from __future__ import annotations

import threading

__all__ = ["STATE_LOCK"]

STATE_LOCK = threading.RLock()
