"""Shared synchronisation for the process-global configuration state.

The package keeps three pieces of process-global state: the exception
policy (:mod:`repro.policy`), the selected backend
(:mod:`repro.backends`) and the blocking parameters
(:mod:`repro.config`).  The "millions of users" deployment target means
these knobs get flipped from many threads while drivers are solving, so
every mutation goes through one shared re-entrant lock.

An :class:`~threading.RLock` (not a plain Lock) because the setters
nest: ``exception_policy`` restores via ``set_policy`` while already
holding the lock, and ``use_backend`` enters ``set_backend`` twice.

lalint's LA015 rule enforces the discipline statically: outside the
owner modules the state may only be touched through the designated
setters, and every mutation site inside the owners must lexically hold
``with STATE_LOCK:``.
"""

from __future__ import annotations

import threading

__all__ = ["STATE_LOCK"]

STATE_LOCK = threading.RLock()
