"""The ``F77_LAPACK`` module: generic interfaces with explicit LAPACK77
argument lists (paper Section 2 and Appendix A).

These functions keep the full FORTRAN 77 calling convention — explicit
orders, leading dimensions and workspace outputs — while remaining
generic over precision and type (the paper's ``LA_GESV`` resolving to
``SGESV``/``DGESV``/``CGESV``/``ZGESV``).  Paper Example 1::

    CALL LA_GESV( N, NRHS, A, LDA, IPIV, B, LDB, INFO )

becomes::

    info = f77.la_gesv(n, nrhs, a, lda, ipiv, b, ldb)

Conventions:

* arrays are NumPy arrays whose first axis plays the leading-dimension
  role; ``lda``/``ldb`` are validated exactly like LAPACK's argument
  checks (``lda >= max(1, n)``, and the array must actually provide that
  many rows),
* ``info`` is the return value; argument errors raise through ``XERBLA``
  (:class:`repro.errors.IllegalArgument`), matching LAPACK77 where
  ``XERBLA`` stops the program,
* outputs (``ipiv``, ``w``, …) are caller-supplied arrays, filled in
  place — no allocation happens here, exactly as in F77.
"""

from __future__ import annotations

import numpy as np

from ..errors import xerbla
from ..backends import kernels as _l77
from ..config import ilaenv

__all__ = ["la_gesv", "la_getrf", "la_getrs", "la_getri", "la_gecon",
           "la_posv", "la_potrf", "la_potrs", "la_gels", "la_syev",
           "la_heev", "la_geev", "la_gesvd", "la_gbsv", "la_gtsv",
           "la_ptsv", "la_sysv", "ilaenv"]


def _check_order(srname, n, pos, name="N"):
    if not isinstance(n, (int, np.integer)) or n < 0:
        xerbla(srname, pos, f"{name} = {n!r} must be a non-negative integer")


def _check_ld(srname, ld, minval, a, pos, name="LDA"):
    if ld < max(1, minval):
        xerbla(srname, pos, f"{name} = {ld} < max(1, {minval})")
    if a.shape[0] < minval:
        xerbla(srname, pos, f"array provides {a.shape[0]} rows, "
                            f"need {minval}")


def la_gesv(n: int, nrhs: int, a: np.ndarray, lda: int, ipiv: np.ndarray,
            b: np.ndarray, ldb: int) -> int:
    """``CALL LA_GESV( N, NRHS, A, LDA, IPIV, B, LDB, INFO )`` —
    the F77 generic interface of paper Fig. 1 / Appendix A.

    Returns ``info``.
    """
    srname = "GESV"
    _check_order(srname, n, 1)
    _check_order(srname, nrhs, 2, "NRHS")
    _check_ld(srname, lda, n, a, 4)
    if ipiv.shape[0] < n:
        xerbla(srname, 5, "IPIV too short")
    _check_ld(srname, ldb, n, b, 7, "LDB")
    bmat = b[:n] if b.ndim == 2 else b[:n, None]
    lpiv, info = _l77.gesv(a[:n, :n], bmat[:, :nrhs])
    ipiv[:n] = lpiv
    return info


def la_getrf(m: int, n: int, a: np.ndarray, lda: int,
             piv: np.ndarray) -> int:
    """``CALL LA_GETRF( M, N, A, LDA, PIV, INFO )`` (paper Appendix A)."""
    srname = "GETRF"
    _check_order(srname, m, 1, "M")
    _check_order(srname, n, 2)
    _check_ld(srname, lda, m, a, 4)
    if piv.shape[0] < min(m, n):
        xerbla(srname, 5, "PIV too short")
    lpiv, info = _l77.getrf(a[:m, :n])
    piv[: min(m, n)] = lpiv
    return info


def la_getrs(trans: str, n: int, nrhs: int, a: np.ndarray, lda: int,
             ipiv: np.ndarray, b: np.ndarray, ldb: int) -> int:
    """``CALL LA_GETRS( TRANS, N, NRHS, A, LDA, IPIV, B, LDB, INFO )``."""
    srname = "GETRS"
    if trans.upper() not in ("N", "T", "C"):
        xerbla(srname, 1, f"TRANS = {trans!r}")
    _check_order(srname, n, 2)
    _check_ld(srname, lda, n, a, 5)
    _check_ld(srname, ldb, n, b, 8, "LDB")
    bmat = b if b.ndim == 2 else b[:, None]
    return _l77.getrs(a[:n, :n], ipiv[:n], bmat[:n, :nrhs], trans=trans)


def la_getri(n: int, a: np.ndarray, lda: int, ipiv: np.ndarray,
             work: np.ndarray | None, lwork: int) -> int:
    """``CALL LA_GETRI( N, A, LDA, IPIV, WORK, LWORK, INFO )``.

    ``lwork`` controls blocking exactly as in LAPACK (``n·nb`` optimal;
    smaller values degrade gracefully to unblocked updates).
    """
    srname = "GETRI"
    _check_order(srname, n, 1)
    _check_ld(srname, lda, n, a, 3)
    if lwork < max(1, n):
        xerbla(srname, 6, f"LWORK = {lwork} < max(1, N)")
    return _l77.getri(a[:n, :n], ipiv[:n], lwork=lwork)


def la_gecon(norm: str, n: int, a: np.ndarray, lda: int,
             anorm: float) -> tuple[float, int]:
    """``CALL LA_GECON( NORM, N, A, LDA, ANORM, RCOND, ... )`` —
    returns ``(rcond, info)``."""
    srname = "GECON"
    if norm.upper() not in ("1", "O", "I"):
        xerbla(srname, 1, f"NORM = {norm!r}")
    _check_order(srname, n, 2)
    _check_ld(srname, lda, n, a, 4)
    return _l77.gecon(a[:n, :n], anorm, norm=norm)


def la_posv(uplo: str, n: int, nrhs: int, a: np.ndarray, lda: int,
            b: np.ndarray, ldb: int) -> int:
    """``CALL LA_POSV( UPLO, N, NRHS, A, LDA, B, LDB, INFO )``."""
    srname = "POSV"
    if uplo.upper() not in ("U", "L"):
        xerbla(srname, 1, f"UPLO = {uplo!r}")
    _check_order(srname, n, 2)
    _check_ld(srname, lda, n, a, 5)
    _check_ld(srname, ldb, n, b, 7, "LDB")
    bmat = b if b.ndim == 2 else b[:, None]
    return _l77.posv(a[:n, :n], bmat[:n, :nrhs], uplo)


def la_potrf(uplo: str, n: int, a: np.ndarray, lda: int) -> int:
    """``CALL LA_POTRF( UPLO, N, A, LDA, INFO )``."""
    srname = "POTRF"
    if uplo.upper() not in ("U", "L"):
        xerbla(srname, 1, f"UPLO = {uplo!r}")
    _check_order(srname, n, 2)
    _check_ld(srname, lda, n, a, 4)
    return _l77.potrf(a[:n, :n], uplo)


def la_potrs(uplo: str, n: int, nrhs: int, a: np.ndarray, lda: int,
             b: np.ndarray, ldb: int) -> int:
    """``CALL LA_POTRS( UPLO, N, NRHS, A, LDA, B, LDB, INFO )``."""
    srname = "POTRS"
    if uplo.upper() not in ("U", "L"):
        xerbla(srname, 1, f"UPLO = {uplo!r}")
    _check_order(srname, n, 2)
    _check_ld(srname, lda, n, a, 5)
    _check_ld(srname, ldb, n, b, 7, "LDB")
    bmat = b if b.ndim == 2 else b[:, None]
    return _l77.potrs(a[:n, :n], bmat[:n, :nrhs], uplo)


def la_gels(trans: str, m: int, n: int, nrhs: int, a: np.ndarray,
            lda: int, b: np.ndarray, ldb: int) -> int:
    """``CALL LA_GELS( TRANS, M, N, NRHS, A, LDA, B, LDB, ... )``."""
    srname = "GELS"
    if trans.upper() not in ("N", "T", "C"):
        xerbla(srname, 1, f"TRANS = {trans!r}")
    _check_order(srname, m, 2, "M")
    _check_order(srname, n, 3)
    _check_ld(srname, lda, m, a, 6)
    _check_ld(srname, ldb, max(m, n), b, 8, "LDB")
    bmat = b if b.ndim == 2 else b[:, None]
    return _l77.gels(a[:m, :n], bmat[: max(m, n), :nrhs], trans=trans)


def la_syev(jobz: str, uplo: str, n: int, a: np.ndarray, lda: int,
            w: np.ndarray) -> int:
    """``CALL LA_SYEV( JOBZ, UPLO, N, A, LDA, W, ... )``."""
    srname = "SYEV"
    if jobz.upper() not in ("N", "V"):
        xerbla(srname, 1, f"JOBZ = {jobz!r}")
    if uplo.upper() not in ("U", "L"):
        xerbla(srname, 2, f"UPLO = {uplo!r}")
    _check_order(srname, n, 3)
    _check_ld(srname, lda, n, a, 5)
    if w.shape[0] < n:
        xerbla(srname, 6, "W too short")
    wout, info = _l77.syev(a[:n, :n], jobz=jobz, uplo=uplo)
    w[:n] = wout
    return info


def la_heev(jobz: str, uplo: str, n: int, a: np.ndarray, lda: int,
            w: np.ndarray) -> int:
    """``CALL LA_HEEV( JOBZ, UPLO, N, A, LDA, W, ... )``."""
    srname = "HEEV"
    if jobz.upper() not in ("N", "V"):
        xerbla(srname, 1, f"JOBZ = {jobz!r}")
    if uplo.upper() not in ("U", "L"):
        xerbla(srname, 2, f"UPLO = {uplo!r}")
    _check_order(srname, n, 3)
    _check_ld(srname, lda, n, a, 5)
    wout, info = _l77.heev(a[:n, :n], jobz=jobz, uplo=uplo)
    w[:n] = wout
    return info


def la_geev(jobvl: str, jobvr: str, n: int, a: np.ndarray, lda: int,
            w: np.ndarray, vl: np.ndarray | None, ldvl: int,
            vr: np.ndarray | None, ldvr: int) -> int:
    """``CALL LA_GEEV( JOBVL, JOBVR, N, A, LDA, W, VL, LDVL, VR,
    LDVR, ... )`` — ``w`` receives complex eigenvalues."""
    srname = "GEEV"
    if jobvl.upper() not in ("N", "V"):
        xerbla(srname, 1, f"JOBVL = {jobvl!r}")
    if jobvr.upper() not in ("N", "V"):
        xerbla(srname, 2, f"JOBVR = {jobvr!r}")
    _check_order(srname, n, 3)
    _check_ld(srname, lda, n, a, 5)
    wout, vlv, vrv, info = _l77.geev(a[:n, :n], jobvl=jobvl, jobvr=jobvr)
    w[:n] = wout
    if jobvl.upper() == "V" and vl is not None:
        vl[:n, :n] = vlv
    if jobvr.upper() == "V" and vr is not None:
        vr[:n, :n] = vrv
    return info


def la_gesvd(jobu: str, jobvt: str, m: int, n: int, a: np.ndarray,
             lda: int, s: np.ndarray, u: np.ndarray | None, ldu: int,
             vt: np.ndarray | None, ldvt: int) -> int:
    """``CALL LA_GESVD( JOBU, JOBVT, M, N, A, LDA, S, U, LDU, VT,
    LDVT, ... )``."""
    srname = "GESVD"
    if jobu.upper() not in ("N", "S", "A"):
        xerbla(srname, 1, f"JOBU = {jobu!r}")
    if jobvt.upper() not in ("N", "S", "A"):
        xerbla(srname, 2, f"JOBVT = {jobvt!r}")
    _check_order(srname, m, 3, "M")
    _check_order(srname, n, 4)
    _check_ld(srname, lda, m, a, 6)
    sout, uv, vtv, info = _l77.gesvd(a[:m, :n], jobu=jobu, jobvt=jobvt)
    s[: min(m, n)] = sout
    if uv is not None and u is not None:
        u[: uv.shape[0], : uv.shape[1]] = uv
    if vtv is not None and vt is not None:
        vt[: vtv.shape[0], : vtv.shape[1]] = vtv
    return info


def la_gbsv(n: int, kl: int, ku: int, nrhs: int, ab: np.ndarray,
            ldab: int, ipiv: np.ndarray, b: np.ndarray, ldb: int) -> int:
    """``CALL LA_GBSV( N, KL, KU, NRHS, AB, LDAB, IPIV, B, LDB, ... )``."""
    srname = "GBSV"
    _check_order(srname, n, 1)
    if kl < 0:
        xerbla(srname, 2, "KL < 0")
    if ku < 0:
        xerbla(srname, 3, "KU < 0")
    if ldab < 2 * kl + ku + 1 or ab.shape[0] < 2 * kl + ku + 1:
        xerbla(srname, 6, "LDAB < 2*KL+KU+1")
    _check_ld(srname, ldb, n, b, 9, "LDB")
    bmat = b if b.ndim == 2 else b[:, None]
    lpiv, info = _l77.gbsv(ab[: 2 * kl + ku + 1, :n], kl, ku,
                           bmat[:n, :nrhs])
    ipiv[:n] = lpiv
    return info


def la_gtsv(n: int, nrhs: int, dl: np.ndarray, d: np.ndarray,
            du: np.ndarray, b: np.ndarray, ldb: int) -> int:
    """``CALL LA_GTSV( N, NRHS, DL, D, DU, B, LDB, INFO )``."""
    srname = "GTSV"
    _check_order(srname, n, 1)
    _check_ld(srname, ldb, n, b, 7, "LDB")
    bmat = b if b.ndim == 2 else b[:, None]
    return _l77.gtsv(dl[: max(0, n - 1)], d[:n], du[: max(0, n - 1)],
                     bmat[:n, :nrhs])


def la_ptsv(n: int, nrhs: int, d: np.ndarray, e: np.ndarray,
            b: np.ndarray, ldb: int) -> int:
    """``CALL LA_PTSV( N, NRHS, D, E, B, LDB, INFO )``."""
    srname = "PTSV"
    _check_order(srname, n, 1)
    _check_ld(srname, ldb, n, b, 6, "LDB")
    bmat = b if b.ndim == 2 else b[:, None]
    return _l77.ptsv(d[:n], e[: max(0, n - 1)], bmat[:n, :nrhs])


def la_sysv(uplo: str, n: int, nrhs: int, a: np.ndarray, lda: int,
            ipiv: np.ndarray, b: np.ndarray, ldb: int) -> int:
    """``CALL LA_SYSV( UPLO, N, NRHS, A, LDA, IPIV, B, LDB, ... )``."""
    srname = "SYSV"
    if uplo.upper() not in ("U", "L"):
        xerbla(srname, 1, f"UPLO = {uplo!r}")
    _check_order(srname, n, 2)
    _check_ld(srname, lda, n, a, 5)
    _check_ld(srname, ldb, n, b, 8, "LDB")
    bmat = b if b.ndim == 2 else b[:, None]
    lpiv, info = _l77.sysv(a[:n, :n], bmat[:n, :nrhs], uplo)
    ipiv[:n] = lpiv
    return info
