"""Some Computational Routines for Linear Equations and Eigenproblems
(Appendix G, §9) — the non-driver routines LAPACK90 exposes with full
generic interfaces, including the ``LA_GETRI`` of the paper's Appendix C
listing (workspace sizing via ``ilaenv`` and the −200 reduced-workspace
warning path)."""

from __future__ import annotations

import numpy as np

from ..config import ilaenv
from ..errors import (Info, NoConvergence, SingularMatrix,
                      NotPositiveDefinite, WORK_REDUCED)
from ..backends import backend_aware
from ..backends.kernels import (gecon, geequ, gerfs, getrf, getri, getrs,
                                hegst, hetrd, lange, lanhe, lansy, orgtr,
                                pocon, potrf, sygst, sytrd, trtrs, ungtr)
from ..specs import validate_args
from .auxmod import _report, as_matrix

__all__ = ["la_getrf", "la_getrs", "la_trtrs", "la_getri", "la_gerfs",
           "la_geequ", "la_potrf", "la_sygst", "la_hegst", "la_sytrd",
           "la_hetrd", "la_orgtr", "la_ungtr"]


@backend_aware
def la_getrf(a: np.ndarray, ipiv: np.ndarray | None = None,
             rcond: bool = False, norm: str = "1",
             info: Info | None = None):
    """Computes an LU factorization of a general rectangular matrix using
    partial pivoting with row interchanges; optionally estimates the
    reciprocal condition number when A is square (paper: ``CALL LA_GETRF(
    A, IPIV, RCOND=rcond, NORM=norm, INFO=info )``).

    Returns ``(ipiv, rcond_value)`` — ``rcond_value`` is ``None`` unless
    requested with ``rcond=True``.
    """
    srname = "LA_GETRF"
    exc = None
    rc = None
    lpiv = np.zeros(0, dtype=np.int64)
    linfo = validate_args("la_getrf", a=a, ipiv=ipiv, rcond=rcond,
                          norm=norm)
    if linfo == 0:
        anorm = lange(norm, a) if rcond else 0.0
        lpiv, linfo = getrf(a)
        if ipiv is not None:
            ipiv[:] = lpiv
        if linfo > 0:
            exc = SingularMatrix(srname, linfo)
            rc = 0.0 if rcond else None
        elif rcond:
            rc, _ = gecon(a, anorm, norm=norm)
            rc = min(rc, 1.0)
    _report(srname, linfo, info, exc)
    return (ipiv if ipiv is not None else lpiv), rc


@backend_aware
def la_getrs(a: np.ndarray, ipiv: np.ndarray, b: np.ndarray,
             trans: str = "N", info: Info | None = None) -> np.ndarray:
    """Solves a general system using the LU factorization computed by
    :func:`la_getrf` (paper: ``CALL LA_GETRS( A, IPIV, B, TRANS=trans,
    INFO=info )``)."""
    srname = "LA_GETRS"
    linfo = validate_args("la_getrs", a=a, ipiv=ipiv, b=b, trans=trans)
    if linfo == 0:
        bmat, _ = as_matrix(b)
        linfo = getrs(a, ipiv, bmat, trans=trans)
    _report(srname, linfo, info)
    return b


@backend_aware
def la_trtrs(a: np.ndarray, b: np.ndarray, uplo: str = "U",
             trans: str = "N", diag: str = "N",
             info: Info | None = None) -> np.ndarray:
    """Solves a triangular system ``op(A) X = B`` by forward or backward
    substitution (``CALL LA_TRTRS( A, B, UPLO=uplo, TRANS=trans,
    DIAG=diag, INFO=info )``).

    Only the ``uplo`` triangle of ``a`` is referenced; a positive
    ``info = i`` reports an exactly zero ``A(i,i)`` (the solve is not
    performed then, matching LAPACK).
    """
    srname = "LA_TRTRS"
    exc = None
    linfo = validate_args("la_trtrs", a=a, b=b, uplo=uplo, trans=trans,
                          diag=diag)
    if linfo == 0:
        bmat, _ = as_matrix(b)
        linfo = trtrs(a, bmat, uplo=uplo, trans=trans, diag=diag)
        if linfo > 0:
            exc = SingularMatrix(srname, linfo)
    _report(srname, linfo, info, exc)
    return b


@backend_aware
def la_getri(a: np.ndarray, ipiv: np.ndarray,
             info: Info | None = None) -> np.ndarray:
    """Computes the inverse of a matrix from its LU factorization
    (paper Appendix C: ``LA_GETRI``).

    Mirrors the listing's workspace logic: size ``n·nb`` from ``ilaenv``,
    with the −200 warning path (reduced workspace → unblocked updates)
    reproduced through the substrate's ``lwork`` handling.
    """
    srname = "LA_GETRI"
    exc = None
    linfo = validate_args("la_getri", a=a, ipiv=ipiv)
    if linfo == 0 and a.shape[0] > 0:
        n = a.shape[0]
        nb = ilaenv(1, "getri", "", n)
        if nb < 1 or nb >= n:
            nb = 1
        lwork = max(n * nb, 1)
        linfo = getri(a, ipiv, lwork=lwork)
        if linfo > 0:
            exc = SingularMatrix(srname, linfo)
    _report(srname, linfo, info, exc)
    return a


@backend_aware
def la_gerfs(a: np.ndarray, af: np.ndarray, ipiv: np.ndarray,
             b: np.ndarray, x: np.ndarray, trans: str = "N",
             info: Info | None = None):
    """Improves the computed solution of ``A X = B`` (or ``AᵀX = B``) and
    provides forward/backward error bounds (paper: ``CALL LA_GERFS( A,
    AF, IPIV, B, X, TRANS=trans, FERR=ferr, BERR=berr, INFO=info )``).

    ``x`` is refined in place; returns ``(ferr, berr)``.
    """
    srname = "LA_GERFS"
    ferr = berr = np.zeros(0)
    linfo = validate_args("la_gerfs", a=a, af=af, ipiv=ipiv, b=b, x=x,
                          trans=trans)
    if linfo == 0:
        bmat, _ = as_matrix(b)
        xmat, _ = as_matrix(x)
        ferr, berr, linfo = gerfs(a, af, ipiv, bmat, xmat, trans=trans)
    _report(srname, linfo, info)
    return ferr, berr


@backend_aware
def la_geequ(a: np.ndarray, info: Info | None = None):
    """Computes row and column scalings intended to equilibrate a
    rectangular matrix and reduce its condition number (paper: ``CALL
    LA_GEEQU( A, R, C, ROWCND=rowcnd, COLCND=colcnd, AMAX=amax,
    INFO=info )``).

    Returns ``(r, c, rowcnd, colcnd, amax)``.
    """
    srname = "LA_GEEQU"
    linfo = validate_args("la_geequ", a=a)
    if linfo:
        _report(srname, linfo, info)
        return None
    r, c, rowcnd, colcnd, amax, linfo = geequ(a)
    _report(srname, linfo, info)
    return r, c, rowcnd, colcnd, amax


@backend_aware
def la_potrf(a: np.ndarray, uplo: str = "U", rcond: bool = False,
             norm: str = "1", info: Info | None = None):
    """Computes the Cholesky factorization and optionally estimates the
    reciprocal condition number of a positive definite matrix (paper:
    ``CALL LA_POTRF( A, UPLO=uplo, RCOND=rcond, NORM=norm,
    INFO=info )``).

    Returns the condition estimate (``None`` unless requested).
    """
    srname = "LA_POTRF"
    exc = None
    rc = None
    linfo = validate_args("la_potrf", a=a, uplo=uplo)
    if linfo == 0:
        hermitian = np.iscomplexobj(a)
        anorm = (lanhe(norm, a, uplo) if hermitian
                 else lansy(norm, a, uplo)) if rcond else 0.0
        linfo = potrf(a, uplo)
        if linfo > 0:
            exc = NotPositiveDefinite(srname, linfo)
            rc = 0.0 if rcond else None
        elif rcond:
            rc, _ = pocon(a, anorm, uplo)
            rc = min(rc, 1.0)
    _report(srname, linfo, info, exc)
    return rc


@backend_aware
def la_sygst(a: np.ndarray, b: np.ndarray, itype: int = 1,
             uplo: str = "U", info: Info | None = None) -> np.ndarray:
    """Reduces a real symmetric-definite generalized eigenproblem to
    standard form, with B already Cholesky-factored by :func:`la_potrf`
    (paper: ``CALL LA_SYGST( A, B, ITYPE=itype, UPLO=uplo,
    INFO=info )``)."""
    srname = "LA_SYGST"
    linfo = validate_args("la_sygst", a=a, b=b, itype=itype, uplo=uplo)
    if linfo == 0:
        linfo = sygst(a, b, itype=itype, uplo=uplo)
    _report(srname, linfo, info)
    return a


@backend_aware
def la_hegst(a: np.ndarray, b: np.ndarray, itype: int = 1,
             uplo: str = "U", info: Info | None = None) -> np.ndarray:
    """Hermitian-definite analogue of :func:`la_sygst`
    (paper ``LA_HEGST``)."""
    srname = "LA_HEGST"
    linfo = validate_args("la_hegst", a=a, b=b, itype=itype, uplo=uplo)
    if linfo == 0:
        linfo = hegst(a, b, itype=itype, uplo=uplo)
    _report(srname, linfo, info)
    return a


@backend_aware
def la_sytrd(a: np.ndarray, tau: np.ndarray | None = None,
             uplo: str = "U", info: Info | None = None):
    """Reduces a real symmetric matrix to tridiagonal form
    ``Qᴴ A Q = T`` (paper: ``CALL LA_SYTRD( A, TAU, UPLO=uplo,
    INFO=info )``).

    Returns ``(d, e, tau)`` — the tridiagonal and the reflector scalars
    (the reflector vectors overwrite ``a``'s triangle).
    """
    srname = "LA_SYTRD"
    linfo = validate_args("la_sytrd", a=a, uplo=uplo)
    if linfo:
        _report(srname, linfo, info)
        return None
    d, e, tau_out = sytrd(a, uplo)
    if tau is not None:
        tau[:] = tau_out
        tau_out = tau
    _report(srname, 0, info)
    return d, e, tau_out


@backend_aware
def la_hetrd(a: np.ndarray, tau: np.ndarray | None = None,
             uplo: str = "U", info: Info | None = None):
    """Hermitian tridiagonal reduction (paper ``LA_HETRD``); ``d``/``e``
    are real."""
    srname = "LA_HETRD"
    linfo = validate_args("la_hetrd", a=a, uplo=uplo)
    if linfo:
        _report(srname, linfo, info)
        return None
    d, e, tau_out = hetrd(a, uplo)
    if tau is not None:
        tau[:] = tau_out
        tau_out = tau
    _report(srname, 0, info)
    return d, e, tau_out


@backend_aware
def la_orgtr(a: np.ndarray, tau: np.ndarray, uplo: str = "U",
             info: Info | None = None) -> np.ndarray:
    """Generates the orthogonal matrix Q of the tridiagonal reduction
    from its reflectors (paper: ``CALL LA_ORGTR( A, TAU, UPLO=uplo,
    INFO=info )``)."""
    srname = "LA_ORGTR"
    linfo = validate_args("la_orgtr", a=a, tau=tau, uplo=uplo)
    if linfo == 0:
        orgtr(a, tau, uplo)
    _report(srname, linfo, info)
    return a


@backend_aware
def la_ungtr(a: np.ndarray, tau: np.ndarray, uplo: str = "U",
             info: Info | None = None) -> np.ndarray:
    """Unitary analogue of :func:`la_orgtr` (paper ``LA_UNGTR``)."""
    srname = "LA_UNGTR"
    linfo = validate_args("la_ungtr", a=a, tau=tau, uplo=uplo)
    if linfo == 0:
        ungtr(a, tau, uplo)
    _report(srname, linfo, info)
    return a
