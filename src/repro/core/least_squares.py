"""Driver Routines for Linear Least Squares Problems (Appendix G, §3)."""

from __future__ import annotations

import numpy as np

from ..errors import Info, erinfo
from ..backends import backend_aware
from ..backends.kernels import gels, gelss, gelsx
from .auxmod import as_matrix, check_rhs, driver_guard, lsame

__all__ = ["la_gels", "la_gelsx", "la_gelss"]


def _ls_rhs(a, b):
    """Pad the RHS to ``max(m, n)`` rows (LAPACK's B layout) when needed.

    Returns ``(b_work, was_vec, padded)``.
    """
    m, n = a.shape
    bmat, was_vec = as_matrix(b)
    rows = max(m, n)
    if bmat.shape[0] == rows:
        return bmat, was_vec, False
    bw = np.zeros((rows, bmat.shape[1]), dtype=np.result_type(a, bmat))
    bw[:bmat.shape[0]] = bmat
    return bw, was_vec, True


@backend_aware
def la_gels(a: np.ndarray, b: np.ndarray, trans: str = "N",
            info: Info | None = None) -> np.ndarray:
    """Solves over-determined or under-determined full-rank linear
    systems using a QR or LQ factorization of A
    (paper: ``CALL LA_GELS( A, B, TRANS=trans, INFO=info )``).

    ``b`` may have ``m`` rows (it is padded internally) or the LAPACK
    ``max(m, n)`` rows.  Returns the solution (the leading rows of the
    padded RHS):

    * ``trans='N'``: minimize ``‖A x − b‖`` (m ≥ n) or minimum-norm
      solution of ``A x = b`` (m < n);
    * ``trans='T'/'C'``: the same problems for ``op(A)``.
    """
    srname = "LA_GELS"
    linfo = 0
    if not isinstance(a, np.ndarray) or a.ndim != 2:
        linfo = -1
    elif not isinstance(b, np.ndarray) or b.ndim not in (1, 2) \
            or b.shape[0] not in (a.shape[0] if trans.upper() == "N"
                                  else a.shape[1],
                                  max(a.shape)):
        linfo = -2
    elif trans.upper() not in ("N", "T", "C"):
        linfo = -3
    exc = None
    if linfo == 0:
        linfo, exc = driver_guard(srname, (1, a), (2, b))
    if linfo == 0:
        m, n = a.shape
        bw, was_vec, padded = _ls_rhs(a, b)
        linfo = gels(a, bw, trans=trans)
        out_rows = n if trans.upper() == "N" else m
        x = bw[:out_rows, 0] if was_vec else bw[:out_rows]
        erinfo(linfo, srname, info)
        return x
    erinfo(linfo, srname, info, exc=exc)
    return b


@backend_aware
def la_gelsx(a: np.ndarray, b: np.ndarray, rcond: float = -1.0,
             jpvt: np.ndarray | None = None,
             info: Info | None = None):
    """Computes the minimum-norm solution to a least squares problem
    using a complete orthogonal factorization (paper: ``CALL LA_GELSX(
    A, B, RANK=rank, JPVT=jpvt, RCOND=rcond, INFO=info )``).

    Returns ``(x, rank)``; ``jpvt`` on entry marks fixed columns
    (LAPACK-style), on exit holds the permutation.
    """
    srname = "LA_GELSX"
    linfo = 0
    if not isinstance(a, np.ndarray) or a.ndim != 2:
        linfo = -1
        erinfo(linfo, srname, info)
        return b, 0
    m, n = a.shape
    if not isinstance(b, np.ndarray) or b.ndim not in (1, 2) \
            or b.shape[0] not in (m, max(m, n)):
        linfo = -2
        erinfo(linfo, srname, info)
        return b, 0
    linfo, exc = driver_guard(srname, (1, a), (2, b))
    if linfo:
        erinfo(linfo, srname, info, exc=exc)
        return b, 0
    bw, was_vec, padded = _ls_rhs(a, b)
    rank, perm, linfo = gelsx(a, bw, rcond=rcond, jpvt=jpvt)
    if jpvt is not None:
        jpvt[:] = perm
    x = bw[:n, 0] if was_vec else bw[:n]
    erinfo(linfo, srname, info)
    return x, rank


@backend_aware
def la_gelss(a: np.ndarray, b: np.ndarray, rcond: float = -1.0,
             info: Info | None = None):
    """Computes the minimum norm solution to a least squares problem
    using the singular value decomposition of A (paper: ``CALL LA_GELSS(
    A, B, RANK=rank, S=s, RCOND=rcond, INFO=info )``).

    Returns ``(x, rank, s)`` — solution, effective rank at threshold
    ``rcond·s₁``, and the singular values (descending).
    """
    srname = "LA_GELSS"
    linfo = 0
    if not isinstance(a, np.ndarray) or a.ndim != 2:
        erinfo(-1, srname, info)
        return b, 0, np.zeros(0)
    m, n = a.shape
    if not isinstance(b, np.ndarray) or b.ndim not in (1, 2) \
            or b.shape[0] not in (m, max(m, n)):
        erinfo(-2, srname, info)
        return b, 0, np.zeros(0)
    linfo, exc = driver_guard(srname, (1, a), (2, b))
    if linfo:
        erinfo(linfo, srname, info, exc=exc)
        return b, 0, np.zeros(0)
    bw, was_vec, padded = _ls_rhs(a, b)
    s, rank, linfo = gelss(a, bw, rcond=rcond)
    x = bw[:n, 0] if was_vec else bw[:n]
    erinfo(linfo, srname, info)
    return x, rank, s
