"""Driver Routines for Linear Least Squares Problems (Appendix G, §3)."""

from __future__ import annotations

import numpy as np

from ..errors import Info
from ..backends import backend_aware
from ..backends.kernels import gels, gelss, gelsx
from ..specs import validate_args
from .auxmod import _report, as_matrix, driver_guard

__all__ = ["la_gels", "la_gelsx", "la_gelss"]


def _ls_rhs(a, b):
    """Pad the RHS to ``max(m, n)`` rows (LAPACK's B layout) when needed.

    Returns ``(b_work, was_vec, padded)``.
    """
    m, n = a.shape
    bmat, was_vec = as_matrix(b)
    rows = max(m, n)
    if bmat.shape[0] == rows:
        return bmat, was_vec, False
    bw = np.zeros((rows, bmat.shape[1]), dtype=np.result_type(a, bmat))
    bw[:bmat.shape[0]] = bmat
    return bw, was_vec, True


@backend_aware
def la_gels(a: np.ndarray, b: np.ndarray, trans: str = "N",
            info: Info | None = None) -> np.ndarray:
    """Solves over-determined or under-determined full-rank linear
    systems using a QR or LQ factorization of A
    (paper: ``CALL LA_GELS( A, B, TRANS=trans, INFO=info )``).

    ``b`` may have ``m`` rows (it is padded internally) or the LAPACK
    ``max(m, n)`` rows.  Returns the solution (the leading rows of the
    padded RHS):

    * ``trans='N'``: minimize ``‖A x − b‖`` (m ≥ n) or minimum-norm
      solution of ``A x = b`` (m < n);
    * ``trans='T'/'C'``: the same problems for ``op(A)``.
    """
    srname = "LA_GELS"
    exc = None
    linfo = validate_args("la_gels", a=a, b=b, trans=trans)
    if linfo == 0:
        linfo, exc = driver_guard(srname, (1, a), (2, b))
    if linfo == 0:
        m, n = a.shape
        bw, was_vec, padded = _ls_rhs(a, b)
        linfo = gels(a, bw, trans=trans)
        out_rows = n if trans.upper() == "N" else m
        x = bw[:out_rows, 0] if was_vec else bw[:out_rows]
        _report(srname, linfo, info)
        return x
    _report(srname, linfo, info, exc)
    return b


@backend_aware
def la_gelsx(a: np.ndarray, b: np.ndarray, rcond: float = -1.0,
             jpvt: np.ndarray | None = None,
             info: Info | None = None):
    """Computes the minimum-norm solution to a least squares problem
    using a complete orthogonal factorization (paper: ``CALL LA_GELSX(
    A, B, RANK=rank, JPVT=jpvt, RCOND=rcond, INFO=info )``).

    Returns ``(x, rank)``; ``jpvt`` on entry marks fixed columns
    (LAPACK-style), on exit holds the permutation.
    """
    srname = "LA_GELSX"
    linfo = validate_args("la_gelsx", a=a, b=b)
    if linfo:
        _report(srname, linfo, info)
        return b, 0
    n = a.shape[1]
    linfo, exc = driver_guard(srname, (1, a), (2, b))
    if linfo:
        _report(srname, linfo, info, exc)
        return b, 0
    bw, was_vec, padded = _ls_rhs(a, b)
    rank, perm, linfo = gelsx(a, bw, rcond=rcond, jpvt=jpvt)
    if jpvt is not None:
        jpvt[:] = perm
    x = bw[:n, 0] if was_vec else bw[:n]
    _report(srname, linfo, info)
    return x, rank


@backend_aware
def la_gelss(a: np.ndarray, b: np.ndarray, rcond: float = -1.0,
             info: Info | None = None):
    """Computes the minimum norm solution to a least squares problem
    using the singular value decomposition of A (paper: ``CALL LA_GELSS(
    A, B, RANK=rank, S=s, RCOND=rcond, INFO=info )``).

    Returns ``(x, rank, s)`` — solution, effective rank at threshold
    ``rcond·s₁``, and the singular values (descending).
    """
    srname = "LA_GELSS"
    linfo = validate_args("la_gelss", a=a, b=b)
    if linfo:
        _report(srname, linfo, info)
        return b, 0, np.zeros(0)
    n = a.shape[1]
    linfo, exc = driver_guard(srname, (1, a), (2, b))
    if linfo:
        _report(srname, linfo, info, exc)
        return b, 0, np.zeros(0)
    bw, was_vec, padded = _ls_rhs(a, b)
    s, rank, linfo = gelss(a, bw, rcond=rcond)
    x = bw[:n, 0] if was_vec else bw[:n]
    _report(srname, linfo, info)
    return x, rank, s
