"""The LAPACK90 layer — the paper's contribution.

Generic, high-level drivers (``la_*``) over the :mod:`repro.lapack77`
substrate, reproducing the interface design of Waśniewski & Dongarra's
LAPACK90:

* **generic dispatch** — one name covers ``float32``/``float64``/
  ``complex64``/``complex128`` and vector- or matrix-shaped right-hand
  sides (F90's generic interfaces → Python dynamic dispatch),
* **assumed shape** — problem sizes come from ``ndarray.shape``
  (no ``N``/``LDA`` arguments),
* **optional arguments** — workspace outputs (``ipiv`` …) may be supplied
  or omitted; diagnostics are optional,
* **uniform error handling** — every driver validates its arguments into
  LAPACK-style negative ``INFO`` codes and reports through
  :func:`repro.errors.erinfo`: pass ``info=Info()`` to inspect the code,
  omit it to get an exception (the analogue of ERINFO's ``STOP``).

The catalogue follows the paper's Appendix G section by section.
"""

from .linear_equations import (la_gesv, la_gbsv, la_gtsv, la_posv, la_ppsv,
                               la_pbsv, la_ptsv, la_sysv, la_hesv, la_spsv,
                               la_hpsv)
from .expert_linear import (la_gesvx, la_gbsvx, la_gtsvx, la_posvx,
                            la_ppsvx, la_pbsvx, la_ptsvx, la_sysvx,
                            la_hesvx, la_spsvx, la_hpsvx, ExpertResult)
from .least_squares import la_gels, la_gelsx, la_gelss
from .generalized_lls import la_gglse, la_ggglm
from .eigen import (la_syev, la_heev, la_spev, la_hpev, la_sbev, la_hbev,
                    la_stev, la_gees, la_geev, la_gesvd)
from .eigen_dc import (la_syevd, la_heevd, la_spevd, la_hpevd, la_sbevd,
                       la_hbevd, la_stevd)
from .eigen_expert import (la_syevx, la_heevx, la_spevx, la_hpevx,
                           la_sbevx, la_hbevx, la_stevx, la_geesx,
                           la_geevx)
from .generalized_eigen import (la_sygv, la_hegv, la_spgv, la_hpgv,
                                la_sbgv, la_hbgv, la_gegs, la_gegv,
                                la_ggsvd)
from .computational import (la_getrf, la_getrs, la_trtrs, la_getri,
                            la_gerfs, la_geequ, la_potrf, la_sygst,
                            la_hegst, la_sytrd, la_hetrd, la_orgtr,
                            la_ungtr)
from .matrix_util import la_lange, la_lagge
from .auxmod import lsame, la_ws_gels, la_ws_gelss
from .precision import SP, DP, wp

__all__ = [name for name in dir() if name.startswith("la_")] + [
    "ExpertResult", "lsame", "SP", "DP", "wp",
]
