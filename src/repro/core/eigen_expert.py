"""Expert Driver Routines for Standard Eigenvalue Problems
(Appendix G, §7): selected eigenvalues by value range ``(vl, vu]`` or
0-based index range ``[il, iu]``, plus condition-number variants of the
Schur/eigen drivers."""

from __future__ import annotations

import numpy as np

from ..errors import Info, NoConvergence
from ..backends import backend_aware
from ..backends.kernels import (geesx, geevx, hbevx, heevx, hpevx, sbevx,
                                spevx, stevx, syevx)
from ..specs import validate_args
from .auxmod import _report
from .eigen import _store, _want

__all__ = ["la_syevx", "la_heevx", "la_spevx", "la_hpevx", "la_sbevx",
           "la_hbevx", "la_stevx", "la_geesx", "la_geevx"]


def _dense_evx(srname, driver, a, w, uplo, z, vl, vu, il, iu, abstol,
               info):
    exc = None
    wout = np.zeros(0)
    zout = None
    m = 0
    ifail = np.zeros(0, dtype=np.int64)
    linfo = validate_args(srname.lower(), a=a, vl=vl, vu=vu, il=il, iu=iu)
    if linfo == 0:
        jobz = "V" if _want(z) else "N"
        wout, zv, m, ifail, linfo = driver(a, jobz=jobz, uplo=uplo, vl=vl,
                                           vu=vu, il=il, iu=iu,
                                           abstol=abstol)
        if linfo > 0:
            exc = NoConvergence(srname, linfo,
                                f"{linfo} eigenvector(s) failed")
        if _want(z):
            zout = _store(z if isinstance(z, np.ndarray) else None, zv)
        if w is not None:
            w[:m] = wout
    _report(srname, linfo, info, exc)
    return (wout, zout, m, ifail) if _want(z) else (wout, m, ifail)


@backend_aware
def la_syevx(a, w=None, uplo="U", z=None, vl=None, vu=None, il=None,
             iu=None, abstol=0.0, info: Info | None = None):
    """Selected eigenvalues/vectors of a real symmetric matrix by
    bisection + inverse iteration (paper: ``CALL LA_SYEVX( A, W,
    UPLO=uplo, VL=vl, VU=vu, IL=il, IU=iu, M=m, IFAIL=ifail,
    ABSTOL=abstol, INFO=info )``).

    Returns ``(w, m, ifail)`` — or ``(w, z, m, ifail)`` with vectors.
    """
    return _dense_evx("LA_SYEVX", syevx, a, w, uplo, z, vl, vu, il, iu,
                      abstol, info)


@backend_aware
def la_heevx(a, w=None, uplo="U", z=None, vl=None, vu=None, il=None,
             iu=None, abstol=0.0, info: Info | None = None):
    """Hermitian expert eigen driver (paper ``LA_HEEVX``)."""
    return _dense_evx("LA_HEEVX", heevx, a, w, uplo, z, vl, vu, il, iu,
                      abstol, info)


def _structured_evx(srname, driver, bound, w, uplo, z, vl, vu, il, iu,
                    abstol, info):
    exc = None
    wout = np.zeros(0)
    zout = None
    m = 0
    ifail = np.zeros(0, dtype=np.int64)
    linfo = validate_args(srname.lower(), vl=vl, vu=vu, il=il, iu=iu,
                          **bound)
    if linfo == 0:
        if "ap" in bound:
            data = bound["ap"]
            ln = data.shape[0]
            n = int((np.sqrt(8.0 * ln + 1.0) - 1.0) / 2.0 + 0.5)
        else:
            data = bound["ab"]
            n = data.shape[1]
        jobz = "V" if _want(z) else "N"
        wout, zv, m, ifail, linfo = driver(data, n, jobz=jobz, uplo=uplo,
                                           vl=vl, vu=vu, il=il, iu=iu,
                                           abstol=abstol)
        if linfo > 0:
            exc = NoConvergence(srname, linfo)
        if _want(z):
            zout = _store(z if isinstance(z, np.ndarray) else None, zv)
        if w is not None:
            w[:m] = wout
    _report(srname, linfo, info, exc)
    return (wout, zout, m, ifail) if _want(z) else (wout, m, ifail)


@backend_aware
def la_spevx(ap, w=None, uplo="U", z=None, vl=None, vu=None, il=None,
             iu=None, abstol=0.0, info: Info | None = None):
    """Packed symmetric expert driver (paper ``LA_SPEVX``)."""
    return _structured_evx("LA_SPEVX", spevx, {"ap": ap}, w, uplo, z,
                           vl, vu, il, iu, abstol, info)


@backend_aware
def la_hpevx(ap, w=None, uplo="U", z=None, vl=None, vu=None, il=None,
             iu=None, abstol=0.0, info: Info | None = None):
    """Packed Hermitian expert driver (paper ``LA_HPEVX``)."""
    return _structured_evx("LA_HPEVX", hpevx, {"ap": ap}, w, uplo, z,
                           vl, vu, il, iu, abstol, info)


@backend_aware
def la_sbevx(ab, w=None, uplo="U", z=None, vl=None, vu=None, il=None,
             iu=None, abstol=0.0, info: Info | None = None):
    """Symmetric band expert driver (paper ``LA_SBEVX``)."""
    return _structured_evx("LA_SBEVX", sbevx, {"ab": ab}, w, uplo, z,
                           vl, vu, il, iu, abstol, info)


@backend_aware
def la_hbevx(ab, w=None, uplo="U", z=None, vl=None, vu=None, il=None,
             iu=None, abstol=0.0, info: Info | None = None):
    """Hermitian band expert driver (paper ``LA_HBEVX``)."""
    return _structured_evx("LA_HBEVX", hbevx, {"ab": ab}, w, uplo, z,
                           vl, vu, il, iu, abstol, info)


@backend_aware
def la_stevx(d, e, w=None, z=None, vl=None, vu=None, il=None, iu=None,
             abstol=0.0, info: Info | None = None):
    """Tridiagonal expert driver (paper: ``CALL LA_STEVX( D, E, W, Z=z,
    VL=vl, VU=vu, IL=il, IU=iu, M=m, IFAIL=ifail, ABSTOL=abstol,
    INFO=info )``).

    Returns ``(w, m, ifail)`` or ``(w, z, m, ifail)``.
    """
    srname = "LA_STEVX"
    exc = None
    wout = np.zeros(0)
    zout = None
    m = 0
    ifail = np.zeros(0, dtype=np.int64)
    linfo = validate_args("la_stevx", d=d, e=e, vl=vl, vu=vu, il=il,
                          iu=iu)
    if linfo == 0:
        jobz = "V" if _want(z) else "N"
        wout, zv, m, ifail, linfo = stevx(d, e, jobz=jobz, vl=vl, vu=vu,
                                          il=il, iu=iu, abstol=abstol)
        if linfo > 0:
            exc = NoConvergence(srname, linfo)
        if _want(z):
            zout = _store(z if isinstance(z, np.ndarray) else None, zv)
        if w is not None:
            w[:m] = wout
    _report(srname, linfo, info, exc)
    return (wout, zout, m, ifail) if _want(z) else (wout, m, ifail)


@backend_aware
def la_geesx(a, w=None, vs=None, select=None, sense: str = "B",
             info: Info | None = None):
    """Expert Schur driver: ordered Schur form plus reciprocal condition
    numbers for the selected cluster and its invariant subspace (paper:
    ``CALL LA_GEESX( A, ω, VS=vs, SELECT=select, SDIM=sdim,
    RCONDE=rconde, RCONDV=rcondv, INFO=info )``).

    Returns ``(w, sdim, rconde, rcondv)`` — with ``vs`` inserted after
    ``w`` when Schur vectors were requested.
    """
    srname = "LA_GEESX"
    exc = None
    wout = np.zeros(0, dtype=complex)
    vsout = None
    sdim = 0
    rconde, rcondv = 1.0, 0.0
    linfo = validate_args("la_geesx", a=a)
    if linfo == 0:
        jobvs = "V" if _want(vs) else "N"
        wout, vsv, sdim, rconde, rcondv, linfo = geesx(
            a, jobvs=jobvs, select=select, sense=sense)
        if linfo > 0:
            exc = NoConvergence(srname, linfo)
        if _want(vs):
            vsout = _store(vs if isinstance(vs, np.ndarray) else None, vsv)
        if w is not None:
            w[:] = wout
            wout = w
    _report(srname, linfo, info, exc)
    if _want(vs):
        return wout, vsout, sdim, rconde, rcondv
    return wout, sdim, rconde, rcondv


@backend_aware
def la_geevx(a, w=None, vl=None, vr=None, balanc: str = "B",
             sense: str = "B", info: Info | None = None):
    """Expert eigen driver: eigenvalues/vectors plus balancing data and
    per-eigenvalue condition numbers (paper: ``CALL LA_GEEVX( A, ω,
    VL=vl, VR=vr, BALANC=balanc, ILO=ilo, IHI=ihi, SCALE=scale,
    ABNRM=abnrm, RCONDE=rconde, RCONDV=rcondv, INFO=info )``).

    Returns ``(w, vl, vr, ilo, ihi, scale, abnrm, rconde, rcondv)``
    (``vl``/``vr`` are ``None`` when not requested).
    """
    srname = "LA_GEEVX"
    exc = None
    linfo = validate_args("la_geevx", a=a)
    if linfo:
        _report(srname, linfo, info)
        return (np.zeros(0, dtype=complex), None, None, 0, -1,
                np.zeros(0), 0.0, np.zeros(0), np.zeros(0))
    (wout, vlv, vrv, ilo, ihi, scale, abnrm, rconde, rcondv,
     linfo) = geevx(a, jobvl="V" if _want(vl) else "N",
                    jobvr="V" if _want(vr) else "N", balanc=balanc,
                    sense=sense)
    if linfo > 0:
        exc = NoConvergence(srname, linfo)
    vlout = vrout = None
    if _want(vl):
        vlout = _store(vl if isinstance(vl, np.ndarray) else None, vlv)
    if _want(vr):
        vrout = _store(vr if isinstance(vr, np.ndarray) else None, vrv)
    if w is not None:
        w[:] = wout
        wout = w
    _report(srname, linfo, info, exc)
    return wout, vlout, vrout, ilo, ihi, scale, abnrm, rconde, rcondv
