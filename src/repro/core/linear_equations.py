"""Driver Routines for Linear Equations (paper Appendix G, §1).

Each wrapper follows the code shape of the paper's Appendix C listings:
initialize a local ``LINFO``, test the arguments (negative codes keyed to
argument positions), allocate any omitted workspace output, call the
LAPACK77 substrate, and report through ``ERINFO``.

All drivers overwrite ``a`` with its factorization and ``b`` with the
solution (the LAPACK90 in-place contract) and also *return* the solution
array for Pythonic chaining.  ``b`` may be shape ``(n,)`` or
``(n, nrhs)`` — the paper's ``xGESV1_F90`` vs ``xGESV_F90`` generic
resolution.

Every driver runs :func:`repro.core.auxmod.driver_guard` after argument
validation (NaN/Inf screening per the active exception policy, plus the
simulated allocation fault), and with ``fallbacks=True`` in
:func:`repro.policy.exception_policy` the three drivers with a natural
escape hatch degrade gracefully instead of failing:

========== ==============================  ===============================
driver     primary failure                 fallback
========== ==============================  ===============================
la_posv    Cholesky not positive definite  Bunch–Kaufman (``LA_SYSV`` /
                                           ``LA_HESV``) on the original A
la_gesv    zero pivot in the LU factor     expert ``LA_GESVX(FACT='E')``
                                           equilibrate-and-refine path
la_gbsv    zero pivot in the band factor   expert ``LA_GBSVX`` refine path
========== ==============================  ===============================

A taken fallback is announced with
:class:`repro.errors.DriverFallbackWarning` and recorded on the caller's
:class:`~repro.errors.Info` handle (``info.fallback``/``info.rcond``);
after a fallback the contents of ``a``/``ab`` (the abandoned partial
factor) are unspecified while ``b`` holds the fallback solution.
"""

from __future__ import annotations

import numpy as np

from ..errors import (Info, LinAlgError, NotPositiveDefinite,
                      SingularMatrix)
from ..backends import backend_aware
from ..backends.kernels import (gbsv, gtsv, gesv, hesv, hpsv, pbsv, posv,
                                ppsv, ptsv, spsv, sysv)
from ..policy import get_policy, has_nonfinite
from ..specs import validate_args
from .auxmod import _record_fallback, _report, as_matrix, driver_guard

__all__ = ["la_gesv", "la_gbsv", "la_gtsv", "la_posv", "la_ppsv",
           "la_pbsv", "la_ptsv", "la_sysv", "la_hesv", "la_spsv",
           "la_hpsv"]


def _fallback_posv(srname, a_orig, bmat, uplo, info):
    """``la_posv``'s ladder: retry the (possibly indefinite) system
    through the Bunch–Kaufman symmetric/Hermitian-indefinite path."""
    solver, via = (hesv, "LA_HESV") if np.iscomplexobj(a_orig) \
        else (sysv, "LA_SYSV")
    b_try = bmat.copy()
    try:
        _, linfo2 = solver(a_orig, b_try, uplo)
    except LinAlgError:
        return False
    if linfo2 != 0 or has_nonfinite(b_try):
        return False
    bmat[:] = b_try
    _record_fallback(srname, via, None, 0, info)
    return True


def _fallback_gesv(srname, a_orig, bmat, n, info):
    """``la_gesv``'s ladder: escalate to the expert driver's
    equilibrate-and-refine path."""
    from .expert_linear import la_gesvx
    sub = Info()
    try:
        res = la_gesvx(a_orig, bmat.copy(), fact="E", info=sub)
    except LinAlgError:
        return False
    if sub.value not in (0, n + 1) or res.x is None:
        return False
    x2d, _ = as_matrix(res.x)
    if has_nonfinite(x2d):
        return False
    bmat[:] = x2d
    _record_fallback(srname, "LA_GESVX(FACT='E')", res.rcond,
                     0 if sub.value == 0 else n + 1, info)
    return True


def _fallback_gbsv(srname, ab_plain, kl, bmat, n, info):
    """``la_gbsv``'s ladder: escalate to the expert band driver's
    condition-estimate-and-refine path."""
    from .expert_linear import la_gbsvx
    sub = Info()
    try:
        res = la_gbsvx(ab_plain, bmat.copy(), kl=kl, info=sub)
    except LinAlgError:
        return False
    if sub.value not in (0, n + 1) or res.x is None:
        return False
    x2d, _ = as_matrix(res.x)
    if has_nonfinite(x2d):
        return False
    bmat[:] = x2d
    _record_fallback(srname, "LA_GBSVX", res.rcond,
                     0 if sub.value == 0 else n + 1, info)
    return True


@backend_aware
def la_gesv(a: np.ndarray, b: np.ndarray, ipiv: np.ndarray | None = None,
            info: Info | None = None) -> np.ndarray:
    """Solves a general system of linear equations ``A X = B``
    (paper: ``CALL LA_GESV( A, B, IPIV=ipiv, INFO=info )``).

    Gaussian elimination with row interchanges factors ``A = Pᵀ L U``;
    the factored form then solves the system.

    Parameters
    ----------
    a : (n, n) array, REAL or COMPLEX
        On entry the matrix A; on exit the factors L and U (unit diagonal
        of L not stored).
    b : (n,) or (n, nrhs) array
        On entry the right-hand side(s); on exit the solution X.
    ipiv : optional (n,) integer array, output
        Pivot indices: row i was interchanged with row ``ipiv[i]``
        (0-based; the paper's 1-based values are these plus one).
    info : optional :class:`repro.errors.Info`
        LAPACK status. ``info = i > 0`` means ``U[i-1, i-1]`` is exactly
        zero (singular). Omit to have errors raised instead.

    Returns
    -------
    The solution array ``b``.
    """
    srname = "LA_GESV"
    exc = None
    linfo = validate_args("la_gesv", a=a, b=b, ipiv=ipiv)
    if linfo == 0 and a.shape[0] > 0:
        n = a.shape[0]
        linfo, exc = driver_guard(srname, (1, a), (2, b))
        if linfo == 0:
            bmat, _ = as_matrix(b)
            pol = get_policy()
            a_orig = a.copy() if pol.fallbacks else None
            lpiv, linfo = gesv(a, bmat)
            if ipiv is not None:
                ipiv[:] = lpiv
            if linfo > 0:
                exc = SingularMatrix(srname, linfo)
                if pol.fallbacks and _fallback_gesv(srname, a_orig, bmat,
                                                    n, info):
                    return b
    _report(srname, linfo, info, exc)
    return b


@backend_aware
def la_gbsv(ab: np.ndarray, b: np.ndarray, kl: int | None = None,
            ipiv: np.ndarray | None = None,
            info: Info | None = None) -> np.ndarray:
    """Solves a general band system of linear equations ``A X = B``
    (paper: ``CALL LA_GBSV( AB, B, KL=kl, IPIV=ipiv, INFO=info )``).

    ``ab`` uses LAPACK's factored-band layout with ``2·kl + ku + 1``
    rows (the input matrix in rows ``kl``..; fill-in space above).  When
    ``kl`` is omitted it defaults to ``(rows − 1) // 3`` — the LAPACK90
    convention covering the common ``kl = ku`` case.
    """
    srname = "LA_GBSV"
    exc = None
    linfo = validate_args("la_gbsv", ab=ab, b=b, kl=kl, ipiv=ipiv)
    if linfo == 0:
        n = ab.shape[1]
        rows = ab.shape[0]
        if kl is None:
            kl = (rows - 1) // 3
        ku = rows - 2 * kl - 1
        linfo, exc = driver_guard(srname, (1, ab), (2, b))
        if linfo == 0:
            bmat, _ = as_matrix(b)
            pol = get_policy()
            ab_orig = ab[kl:, :].copy() if pol.fallbacks else None
            lpiv, linfo = gbsv(ab, kl, ku, bmat)
            if ipiv is not None:
                ipiv[:] = lpiv
            if linfo > 0:
                exc = SingularMatrix(srname, linfo)
                if pol.fallbacks and _fallback_gbsv(srname, ab_orig, kl,
                                                    bmat, n, info):
                    return b
    _report(srname, linfo, info, exc)
    return b


@backend_aware
def la_gtsv(dl: np.ndarray, d: np.ndarray, du: np.ndarray, b: np.ndarray,
            info: Info | None = None) -> np.ndarray:
    """Solves a general tridiagonal system of linear equations ``A X = B``
    (paper: ``CALL LA_GTSV( DL, D, DU, B, INFO=info )``).

    ``dl``/``d``/``du`` are the sub-, main and superdiagonal; all three
    (and ``b``) are overwritten.
    """
    srname = "LA_GTSV"
    exc = None
    linfo = validate_args("la_gtsv", dl=dl, d=d, du=du, b=b)
    if linfo == 0 and d.shape[0] > 0:
        linfo, exc = driver_guard(srname, (1, dl), (2, d), (3, du), (4, b))
        if linfo == 0:
            bmat, _ = as_matrix(b)
            linfo = gtsv(dl, d, du, bmat)
            if linfo > 0:
                exc = SingularMatrix(srname, linfo)
    _report(srname, linfo, info, exc)
    return b


@backend_aware
def la_posv(a: np.ndarray, b: np.ndarray, uplo: str = "U",
            info: Info | None = None) -> np.ndarray:
    """Solves a symmetric/Hermitian positive definite system ``A X = B``
    (paper: ``CALL LA_POSV( A, B, UPLO=uplo, INFO=info )``).

    Only the ``uplo`` triangle of ``a`` is referenced; on exit it holds
    the Cholesky factor.
    """
    srname = "LA_POSV"
    exc = None
    linfo = validate_args("la_posv", a=a, b=b, uplo=uplo)
    if linfo == 0 and a.shape[0] > 0:
        linfo, exc = driver_guard(srname, (1, a), (2, b))
        if linfo == 0:
            bmat, _ = as_matrix(b)
            pol = get_policy()
            a_orig = a.copy() if pol.fallbacks else None
            linfo = posv(a, bmat, uplo)
            if linfo > 0:
                exc = NotPositiveDefinite(srname, linfo)
                if pol.fallbacks and _fallback_posv(srname, a_orig, bmat,
                                                    uplo, info):
                    return b
    _report(srname, linfo, info, exc)
    return b


@backend_aware
def la_ppsv(ap: np.ndarray, b: np.ndarray, uplo: str = "U",
            info: Info | None = None) -> np.ndarray:
    """Solves a symmetric/Hermitian positive definite system with A in
    packed storage (paper: ``CALL LA_PPSV( AP, B, UPLO=uplo,
    INFO=info )``)."""
    srname = "LA_PPSV"
    exc = None
    linfo = validate_args("la_ppsv", ap=ap, b=b, uplo=uplo)
    if linfo == 0 and b.shape[0] > 0:
        linfo, exc = driver_guard(srname, (1, ap), (2, b))
        if linfo == 0:
            bmat, _ = as_matrix(b)
            linfo = ppsv(ap, bmat, uplo)
            if linfo > 0:
                exc = NotPositiveDefinite(srname, linfo)
    _report(srname, linfo, info, exc)
    return b


@backend_aware
def la_pbsv(ab: np.ndarray, b: np.ndarray, uplo: str = "U",
            info: Info | None = None) -> np.ndarray:
    """Solves a symmetric/Hermitian positive definite band system
    (paper: ``CALL LA_PBSV( AB, B, UPLO=uplo, INFO=info )``).

    ``ab`` has ``kd + 1`` rows in LAPACK symmetric band storage.
    """
    srname = "LA_PBSV"
    exc = None
    linfo = validate_args("la_pbsv", ab=ab, b=b, uplo=uplo)
    if linfo == 0 and ab.shape[1] > 0:
        linfo, exc = driver_guard(srname, (1, ab), (2, b))
        if linfo == 0:
            bmat, _ = as_matrix(b)
            linfo = pbsv(ab, bmat, uplo)
            if linfo > 0:
                exc = NotPositiveDefinite(srname, linfo)
    _report(srname, linfo, info, exc)
    return b


@backend_aware
def la_ptsv(d: np.ndarray, e: np.ndarray, b: np.ndarray,
            info: Info | None = None) -> np.ndarray:
    """Solves a symmetric/Hermitian positive definite tridiagonal system
    (paper: ``CALL LA_PTSV( D, E, B, INFO=info )``).

    ``d`` is the (real) diagonal, ``e`` the subdiagonal; both receive the
    ``L D Lᴴ`` factors.
    """
    srname = "LA_PTSV"
    exc = None
    linfo = validate_args("la_ptsv", d=d, e=e, b=b)
    if linfo == 0 and d.shape[0] > 0:
        linfo, exc = driver_guard(srname, (1, d), (2, e), (3, b))
        if linfo == 0:
            bmat, _ = as_matrix(b)
            linfo = ptsv(d, e, bmat)
            if linfo > 0:
                exc = NotPositiveDefinite(srname, linfo)
    _report(srname, linfo, info, exc)
    return b


def _indef_driver(srname, solver, a, b, uplo, ipiv, info):
    exc = None
    linfo = validate_args(srname.lower(), a=a, b=b, uplo=uplo, ipiv=ipiv)
    if linfo == 0 and a.shape[0] > 0:
        linfo, exc = driver_guard(srname, (1, a), (2, b))
        if linfo == 0:
            bmat, _ = as_matrix(b)
            lpiv, linfo = solver(a, bmat, uplo)
            if ipiv is not None:
                ipiv[:] = lpiv
            if linfo > 0:
                exc = SingularMatrix(srname, linfo)
    _report(srname, linfo, info, exc)
    return b


@backend_aware
def la_sysv(a: np.ndarray, b: np.ndarray, uplo: str = "U",
            ipiv: np.ndarray | None = None,
            info: Info | None = None) -> np.ndarray:
    """Solves a symmetric (possibly complex symmetric) indefinite system
    by Bunch–Kaufman diagonal pivoting (paper: ``CALL LA_SYSV( A, B,
    UPLO=uplo, IPIV=ipiv, INFO=info )``)."""
    return _indef_driver("LA_SYSV", sysv, a, b, uplo, ipiv, info)


@backend_aware
def la_hesv(a: np.ndarray, b: np.ndarray, uplo: str = "U",
            ipiv: np.ndarray | None = None,
            info: Info | None = None) -> np.ndarray:
    """Solves a complex Hermitian indefinite system (``LA_HESV``)."""
    return _indef_driver("LA_HESV", hesv, a, b, uplo, ipiv, info)


def _packed_indef_driver(srname, solver, ap, b, uplo, ipiv, info):
    exc = None
    linfo = validate_args(srname.lower(), ap=ap, b=b, uplo=uplo, ipiv=ipiv)
    if linfo == 0 and b.shape[0] > 0:
        linfo, exc = driver_guard(srname, (1, ap), (2, b))
        if linfo == 0:
            bmat, _ = as_matrix(b)
            lpiv, linfo = solver(ap, bmat, uplo)
            if ipiv is not None:
                ipiv[:] = lpiv
            if linfo > 0:
                exc = SingularMatrix(srname, linfo)
    _report(srname, linfo, info, exc)
    return b


@backend_aware
def la_spsv(ap: np.ndarray, b: np.ndarray, uplo: str = "U",
            ipiv: np.ndarray | None = None,
            info: Info | None = None) -> np.ndarray:
    """Solves a symmetric indefinite system in packed storage
    (``LA_SPSV``)."""
    return _packed_indef_driver("LA_SPSV", spsv, ap, b, uplo, ipiv, info)


@backend_aware
def la_hpsv(ap: np.ndarray, b: np.ndarray, uplo: str = "U",
            ipiv: np.ndarray | None = None,
            info: Info | None = None) -> np.ndarray:
    """Solves a complex Hermitian indefinite system in packed storage
    (``LA_HPSV``)."""
    return _packed_indef_driver("LA_HPSV", hpsv, ap, b, uplo, ipiv, info)
