"""Matrix Manipulation Routines (Appendix G, §10): ``LA_LANGE`` (norms)
and ``LA_LAGGE`` (random test-matrix generation)."""

from __future__ import annotations

import numpy as np

from ..errors import Info
from ..backends import backend_aware
from ..backends.kernels import lagge, lange
from ..specs import validate_args
from .auxmod import _report

__all__ = ["la_lange", "la_lagge"]


@backend_aware
def la_lange(a: np.ndarray, norm: str = "1",
             info: Info | None = None) -> float:
    """Returns the value of the one norm, the Frobenius norm, the
    infinity norm, or the element of largest absolute value of a matrix
    (paper: ``VNORM = LA_ANGE( A, NORM=norm, INFO=info )``).

    ``norm`` ∈ {'M', '1'/'O', 'I', 'F'/'E'}.
    """
    srname = "LA_LANGE"
    value = 0.0
    linfo = validate_args("la_lange", a=a, norm=norm)
    if linfo == 0:
        value = float(lange(norm, a))
    _report(srname, linfo, info)
    return value


@backend_aware
def la_lagge(a: np.ndarray, kl: int | None = None, ku: int | None = None,
             d: np.ndarray | None = None, iseed: int | None = None,
             info: Info | None = None) -> np.ndarray:
    """Generates a general rectangular matrix by pre- and post-multiplying
    a diagonal matrix D with random orthogonal matrices: ``A = U D V``
    (paper: ``CALL LA_LAGGE( A, KL=kl, KU=ku, D=d, ISEED=iseed,
    INFO=info )``).

    Fills ``a`` in place; ``d`` defaults to uniform(0, 1] singular values.
    ``kl``/``ku`` bound the generated bandwidth.
    """
    srname = "LA_LAGGE"
    linfo = validate_args("la_lagge", a=a, d=d)
    if linfo:
        _report(srname, linfo, info)
        return a
    m, n = a.shape
    rng = np.random.default_rng(iseed)
    if d is None:
        d = rng.uniform(1e-3, 1.0, min(m, n))
    a[...] = lagge(m, n, np.asarray(d), kl=kl, ku=ku, dtype=a.dtype,
                   rng=rng)
    _report(srname, 0, info)
    return a
