"""The ``LA_PRECISION`` module: working-precision selection.

The paper's FORTRAN version is two lines::

    MODULE LA_PRECISION
    INTEGER, PARAMETER :: SP=KIND(1.0), DP=KIND(1.0D0)
    END MODULE LA_PRECISION

A program chooses its working precision with
``USE LA_PRECISION, ONLY: WP => SP`` and declares ``REAL(WP)`` or
``COMPLEX(WP)`` data; the generic interfaces then resolve to the right
precision/type routine.  The NumPy analogue: ``SP``/``DP`` are dtype
*kinds*, and :func:`wp` maps (kind, real-or-complex) to the concrete
NumPy dtype, so the examples read almost identically::

    WP = wp(SP)              # REAL(WP) with WP => SP
    a = np.zeros((n, n), dtype=WP)
    WPC = wp(DP, complex=True)   # COMPLEX(WP) with WP => DP
"""

from __future__ import annotations

import numpy as np

__all__ = ["SP", "DP", "wp", "real_dtype_of", "is_complex", "same_kind"]

#: Single-precision kind (FORTRAN ``KIND(1.0)``).
SP = "SP"
#: Double-precision kind (FORTRAN ``KIND(1.0D0)``).
DP = "DP"

_MAP = {
    (SP, False): np.float32,
    (SP, True): np.complex64,
    (DP, False): np.float64,
    (DP, True): np.complex128,
}

_KIND_OF = {
    np.dtype(np.float32): SP,
    np.dtype(np.complex64): SP,
    np.dtype(np.float64): DP,
    np.dtype(np.complex128): DP,
}


def wp(kind: str = DP, complex: bool = False):
    """Working-precision dtype for a precision kind (``SP``/``DP``)."""
    try:
        return _MAP[(kind, bool(complex))]
    except KeyError:
        raise ValueError(f"unknown precision kind {kind!r}") from None


def real_dtype_of(dtype) -> np.dtype:
    """The real dtype underlying ``dtype`` (eigenvalues, norms, rcond…)."""
    d = np.dtype(dtype)
    if d == np.complex64:
        return np.dtype(np.float32)
    if d == np.complex128:
        return np.dtype(np.float64)
    return d


def is_complex(a) -> bool:
    """True when the array's type resolves to a COMPLEX routine."""
    return np.iscomplexobj(a)


def same_kind(*arrays) -> bool:
    """True when all arrays share one precision kind (SP or DP)."""
    kinds = {_KIND_OF.get(np.dtype(a.dtype)) for a in arrays}
    return len(kinds) == 1 and None not in kinds
