"""Expert Driver Routines for Linear Equations (paper Appendix G, §2).

Each ``la_xxsvx`` driver reproduces the full LAPACK expert pipeline:

1. optionally **equilibrate** (``fact='E'``, where the family supports it),
2. **factor** (or reuse supplied factors with ``fact='F'``),
3. estimate the **reciprocal condition number**,
4. **solve**, then run **iterative refinement**,
5. return per-column **forward/backward error bounds**,
6. set ``info = n+1`` when the matrix is singular to working precision.

Outputs are collected in :class:`ExpertResult`; the solution is *not*
written into ``b`` (matching LAPACK, which returns X separately and
preserves B).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import Info, erinfo, SingularMatrix, NotPositiveDefinite
from ..backends import backend_aware
from ..backends.kernels import (gbcon, gbequ, gbrfs, gbtrf, gbtrs, gecon,
                                geequ, gerfs, getrf, getrs, gtcon, gtrfs,
                                gttrf, gttrs, hecon, herfs, hetrf, hetrs,
                                hpcon, hptrf, lamch, langb, lange, langt,
                                lanhe, lansb, lansp, lansy, lanst, laqge,
                                laqsy, pbcon, pbequ, pbrfs, pbtrf, pbtrs,
                                pocon, poequ, porfs, potrf, potrs, ppcon,
                                pprfs, pptrf, pptrs, ptcon, ptrfs, pttrf,
                                pttrs, spcon, sptrf, sptrs, sycon, syrfs,
                                sytrf, sytrs)
from ..policy import illcond_event
from ..resilience import calllog, deadlines
from ..specs import validate_args
from .auxmod import as_matrix, driver_guard, lsame

__all__ = ["ExpertResult", "la_gesvx", "la_gbsvx", "la_gtsvx", "la_posvx",
           "la_ppsvx", "la_pbsvx", "la_ptsvx", "la_sysvx", "la_hesvx",
           "la_spsvx", "la_hpsvx"]


@dataclass
class ExpertResult:
    """Everything an expert driver reports.

    Attributes mirror the paper's optional output arguments: the solution
    ``x``, condition estimate ``rcond``, error bounds ``ferr``/``berr``
    (one entry per right-hand side), the applied equilibration ``equed``
    and scalings (``r``/``c`` or ``s``), the reciprocal pivot growth
    ``rpvgrw`` (GE/GB only), and the factorization (``af``/``ipiv`` or
    family-specific factors) for reuse with ``fact='F'``.
    """
    x: np.ndarray | None = None
    rcond: float = 0.0
    ferr: np.ndarray | None = None
    berr: np.ndarray | None = None
    equed: str = "N"
    r: np.ndarray | None = None
    c: np.ndarray | None = None
    s: np.ndarray | None = None
    rpvgrw: float | None = None
    af: np.ndarray | None = None
    ipiv: np.ndarray | None = None
    factors: tuple = field(default_factory=tuple)
    info_value: int = 0


def _vector_like(b, x2d, was_vec):
    return x2d[:, 0] if was_vec else x2d


def _rcond_verdict(srname, rcond, n, dtype) -> int:
    """The catalogue-wide ill-conditioning verdict: ``info = n+1`` when
    RCOND is below machine epsilon (the matrix is singular to working
    precision), with the policy's RCOND guard deciding whether an
    :class:`repro.errors.IllConditionedWarning` accompanies it."""
    if n > 0 and rcond < lamch("E", dtype):
        illcond_event(srname, rcond)
        return n + 1
    return 0


def _finish(srname, linfo, info, res, exc=None):
    res.info_value = linfo
    calllog.drain_into(info)
    if linfo > 0 and exc is None:
        # info = n+1 (rcond < eps): LAPACK's expert drivers compute the
        # solution and bounds anyway — a warning-class condition, reported
        # through info without terminating (like ERINFO's <= -200 codes).
        if info is not None:
            info.value = linfo
        return res
    erinfo(linfo, srname, info, exc=exc)
    return res


@backend_aware
def la_gesvx(a: np.ndarray, b: np.ndarray, x: np.ndarray | None = None,
             af: np.ndarray | None = None, ipiv: np.ndarray | None = None,
             fact: str = "N", trans: str = "N", equed: str | None = None,
             r: np.ndarray | None = None, c: np.ndarray | None = None,
             info: Info | None = None) -> ExpertResult:
    """Solves ``A X = B`` (or ``AᵀX = B`` / ``AᴴX = B``) with
    equilibration, condition estimation, iterative refinement and error
    bounds (paper: ``CALL LA_GESVX( A, B, X, … )``).

    ``fact``: 'N' factor A; 'E' equilibrate then factor; 'F' reuse the
    supplied ``af``/``ipiv`` (and ``equed``/``r``/``c``).
    """
    srname = "LA_GESVX"
    res = ExpertResult()
    linfo = validate_args("la_gesvx", a=a, b=b, af=af, ipiv=ipiv,
                          fact=fact, trans=trans)
    if linfo:
        return _finish(srname, linfo, info, res)
    n = a.shape[0]
    linfo, exc = driver_guard(srname, (1, a), (2, b))
    if linfo:
        return _finish(srname, linfo, info, res, exc)
    bmat, was_vec = as_matrix(b)
    nrhs = bmat.shape[1]
    equed_out = "N" if equed is None else equed
    a_work = a
    b_work = bmat.astype(a.dtype, copy=True)
    if lsame(fact, "E"):
        rr, cc, rowcnd, colcnd, amax, ieq = geequ(a)
        if ieq == 0:
            equed_out = laqge(a, rr, cc, rowcnd, colcnd, amax)
            res.r, res.c = rr, cc
    elif lsame(fact, "F") and equed is not None and r is not None \
            and c is not None:
        res.r, res.c = r, c
    # Scale the RHS to match the equilibrated system.
    row_scaled = equed_out in ("R", "B")
    col_scaled = equed_out in ("C", "B")
    t = trans.upper()
    if row_scaled and t == "N" and res.r is not None:
        b_work *= res.r[:, None]
    if col_scaled and t != "N" and res.c is not None:
        b_work *= res.c[:, None]
    # Factor.
    if lsame(fact, "F"):
        res.af, res.ipiv = af, ipiv
        linfo = 0
    else:
        res.af = a.copy()
        res.ipiv, linfo = getrf(res.af)
    if linfo > 0:
        res.rcond = 0.0
        return _finish(srname, linfo, info, res,
                       SingularMatrix(srname, linfo))
    deadlines.check(srname, "factor", info)
    # Reciprocal pivot growth: max|A| / max|U| (LAPACK's convention).
    umax = float(np.abs(np.triu(res.af)).max()) if n else 0.0
    amax_ = float(np.abs(a).max()) if n else 0.0
    res.rpvgrw = (amax_ / umax) if umax > 0 else 1.0
    # Condition estimate (of the equilibrated matrix).
    norm = "1" if t == "N" else "I"
    anorm = lange(norm, a)
    res.rcond, _ = gecon(res.af, anorm, norm=norm)
    res.rcond = min(res.rcond, 1.0)
    # Solve + refine.
    deadlines.check(srname, "solve", info)
    x2d = b_work.copy()
    getrs(res.af, res.ipiv, x2d, trans=t)
    deadlines.check(srname, "refine", info)
    res.ferr, res.berr, _ = gerfs(a, res.af, res.ipiv, b_work, x2d,
                                  trans=t)
    # Undo equilibration on the solution.
    if t == "N" and col_scaled and res.c is not None:
        x2d *= res.c[:, None]
    if t != "N" and row_scaled and res.r is not None:
        x2d *= res.r[:, None]
    res.equed = equed_out
    res.x = _vector_like(b, x2d, was_vec)
    if x is not None:
        xv, _ = as_matrix(x)
        xv[:] = x2d
    linfo = _rcond_verdict(srname, res.rcond, n, a.dtype)
    return _finish(srname, linfo, info, res)


@backend_aware
def la_gbsvx(ab: np.ndarray, b: np.ndarray, x: np.ndarray | None = None,
             kl: int | None = None, abf: np.ndarray | None = None,
             ipiv: np.ndarray | None = None, fact: str = "N",
             trans: str = "N", info: Info | None = None) -> ExpertResult:
    """Expert band solver (paper ``LA_GBSVX``): factor + condition +
    refinement for a band system.  ``ab`` is the *plain* band storage
    ``(kl+ku+1, n)`` here (the expert driver keeps A and its factor
    separately, as LAPACK does)."""
    srname = "LA_GBSVX"
    res = ExpertResult()
    linfo = validate_args("la_gbsvx", ab=ab, b=b, kl=kl, abf=abf,
                          ipiv=ipiv, fact=fact, trans=trans)
    if linfo:
        return _finish(srname, linfo, info, res)
    n = ab.shape[1]
    rows = ab.shape[0]
    if kl is None:
        kl = (rows - 1) // 2
    ku = rows - kl - 1
    t = trans.upper()
    linfo, exc = driver_guard(srname, (1, ab), (2, b))
    if linfo:
        return _finish(srname, linfo, info, res, exc)
    bmat, was_vec = as_matrix(b)
    if lsame(fact, "F"):
        res.af, res.ipiv = abf, ipiv
        linfo = 0
    else:
        res.af = np.zeros((2 * kl + ku + 1, n), dtype=ab.dtype)
        res.af[kl:, :] = ab
        res.ipiv, linfo = gbtrf(res.af, kl, ku)
    if linfo > 0:
        res.rcond = 0.0
        return _finish(srname, linfo, info, res,
                       SingularMatrix(srname, linfo))
    deadlines.check(srname, "factor", info)
    norm = "1" if t == "N" else "I"
    anorm = langb(norm, ab, kl, ku)
    res.rcond, _ = gbcon(res.af, kl, ku, res.ipiv, anorm, norm=norm)
    res.rcond = min(res.rcond, 1.0)
    deadlines.check(srname, "solve", info)
    x2d = bmat.astype(ab.dtype, copy=True)
    gbtrs(res.af, kl, ku, res.ipiv, x2d, trans=t)
    deadlines.check(srname, "refine", info)
    res.ferr, res.berr, _ = gbrfs(ab, res.af, kl, ku, res.ipiv, bmat, x2d,
                                  trans=t)
    res.x = _vector_like(b, x2d, was_vec)
    if x is not None:
        xv, _ = as_matrix(x)
        xv[:] = x2d
    linfo = _rcond_verdict(srname, res.rcond, n, ab.dtype)
    return _finish(srname, linfo, info, res)


@backend_aware
def la_gtsvx(dl, d, du, b, x=None, trans: str = "N",
             info: Info | None = None) -> ExpertResult:
    """Expert tridiagonal solver (paper ``LA_GTSVX``)."""
    srname = "LA_GTSVX"
    res = ExpertResult()
    linfo = validate_args("la_gtsvx", dl=dl, d=d, du=du, b=b, trans=trans)
    if linfo:
        return _finish(srname, linfo, info, res)
    n = d.shape[0]
    t = trans.upper()
    linfo, exc = driver_guard(srname, (1, dl), (2, d), (3, du), (4, b))
    if linfo:
        return _finish(srname, linfo, info, res, exc)
    bmat, was_vec = as_matrix(b)
    dlf, df, duf = dl.copy(), d.copy(), du.copy()
    du2, ipiv, linfo = gttrf(dlf, df, duf)
    res.factors = (dlf, df, duf, du2)
    res.ipiv = ipiv
    if linfo > 0:
        res.rcond = 0.0
        return _finish(srname, linfo, info, res,
                       SingularMatrix(srname, linfo))
    deadlines.check(srname, "factor", info)
    norm = "1" if t == "N" else "I"
    anorm = langt(norm, dl, d, du)
    res.rcond, _ = gtcon(dlf, df, duf, du2, ipiv, anorm, norm=norm)
    res.rcond = min(res.rcond, 1.0)
    deadlines.check(srname, "solve", info)
    x2d = bmat.astype(d.dtype, copy=True)
    gttrs(dlf, df, duf, du2, ipiv, x2d, trans=t)
    deadlines.check(srname, "refine", info)
    res.ferr, res.berr, _ = gtrfs(dl, d, du, dlf, df, duf, du2, ipiv,
                                  bmat, x2d, trans=t)
    res.x = _vector_like(b, x2d, was_vec)
    if x is not None:
        xv, _ = as_matrix(x)
        xv[:] = x2d
    linfo = _rcond_verdict(srname, res.rcond, n, d.dtype)
    return _finish(srname, linfo, info, res)


@backend_aware
def la_posvx(a: np.ndarray, b: np.ndarray, x: np.ndarray | None = None,
             uplo: str = "U", af: np.ndarray | None = None,
             fact: str = "N", s: np.ndarray | None = None,
             info: Info | None = None) -> ExpertResult:
    """Expert SPD/HPD solver with equilibration (paper ``LA_POSVX``)."""
    srname = "LA_POSVX"
    res = ExpertResult()
    linfo = validate_args("la_posvx", a=a, b=b, uplo=uplo, af=af,
                          fact=fact)
    if linfo:
        return _finish(srname, linfo, info, res)
    n = a.shape[0]
    linfo, exc = driver_guard(srname, (1, a), (2, b))
    if linfo:
        return _finish(srname, linfo, info, res, exc)
    bmat, was_vec = as_matrix(b)
    b_work = bmat.astype(a.dtype, copy=True)
    equed_out = "N"
    if lsame(fact, "E"):
        ss, scond, amax, ieq = poequ(a)
        if ieq == 0:
            equed_out = laqsy(a, ss, scond, amax, uplo)
            if equed_out == "Y":
                res.s = ss
                b_work *= ss[:, None]
    if lsame(fact, "F"):
        res.af = af
        linfo = 0
    else:
        res.af = a.copy()
        linfo = potrf(res.af, uplo)
    if linfo > 0:
        res.rcond = 0.0
        return _finish(srname, linfo, info, res,
                       NotPositiveDefinite(srname, linfo))
    deadlines.check(srname, "factor", info)
    hermitian = np.iscomplexobj(a)
    anorm = lanhe("1", a, uplo) if hermitian else lansy("1", a, uplo)
    res.rcond, _ = pocon(res.af, anorm, uplo)
    res.rcond = min(res.rcond, 1.0)
    deadlines.check(srname, "solve", info)
    x2d = b_work.copy()
    potrs(res.af, x2d, uplo)
    deadlines.check(srname, "refine", info)
    res.ferr, res.berr, _ = porfs(a, res.af, b_work, x2d, uplo)
    if equed_out == "Y" and res.s is not None:
        x2d *= res.s[:, None]
    res.equed = equed_out
    res.x = _vector_like(b, x2d, was_vec)
    if x is not None:
        xv, _ = as_matrix(x)
        xv[:] = x2d
    linfo = _rcond_verdict(srname, res.rcond, n, a.dtype)
    return _finish(srname, linfo, info, res)


@backend_aware
def la_ppsvx(ap: np.ndarray, b: np.ndarray, x: np.ndarray | None = None,
             uplo: str = "U", afp: np.ndarray | None = None,
             fact: str = "N", info: Info | None = None) -> ExpertResult:
    """Expert packed SPD/HPD solver (paper ``LA_PPSVX``)."""
    srname = "LA_PPSVX"
    res = ExpertResult()
    linfo = validate_args("la_ppsvx", ap=ap, b=b, uplo=uplo, afp=afp,
                          fact=fact)
    if linfo:
        return _finish(srname, linfo, info, res)
    n = b.shape[0]
    linfo, exc = driver_guard(srname, (1, ap), (2, b))
    if linfo:
        return _finish(srname, linfo, info, res, exc)
    bmat, was_vec = as_matrix(b)
    if lsame(fact, "F"):
        res.af = afp
        linfo = 0
    else:
        res.af = ap.copy()
        linfo = pptrf(res.af, uplo)
    if linfo > 0:
        res.rcond = 0.0
        return _finish(srname, linfo, info, res,
                       NotPositiveDefinite(srname, linfo))
    deadlines.check(srname, "factor", info)
    hermitian = np.iscomplexobj(ap)
    anorm = lansp("1", ap, n, uplo, hermitian=hermitian)
    res.rcond, _ = ppcon(res.af, anorm, uplo)
    res.rcond = min(res.rcond, 1.0)
    deadlines.check(srname, "solve", info)
    x2d = bmat.astype(ap.dtype, copy=True)
    pptrs(res.af, x2d, uplo)
    deadlines.check(srname, "refine", info)
    res.ferr, res.berr, _ = pprfs(ap, res.af, bmat, x2d, uplo)
    res.x = _vector_like(b, x2d, was_vec)
    if x is not None:
        xv, _ = as_matrix(x)
        xv[:] = x2d
    linfo = _rcond_verdict(srname, res.rcond, n, ap.dtype)
    return _finish(srname, linfo, info, res)


@backend_aware
def la_pbsvx(ab: np.ndarray, b: np.ndarray, x: np.ndarray | None = None,
             uplo: str = "U", afb: np.ndarray | None = None,
             fact: str = "N", info: Info | None = None) -> ExpertResult:
    """Expert SPD/HPD band solver (paper ``LA_PBSVX``)."""
    srname = "LA_PBSVX"
    res = ExpertResult()
    linfo = validate_args("la_pbsvx", ab=ab, b=b, uplo=uplo, afb=afb,
                          fact=fact)
    if linfo:
        return _finish(srname, linfo, info, res)
    n = ab.shape[1]
    linfo, exc = driver_guard(srname, (1, ab), (2, b))
    if linfo:
        return _finish(srname, linfo, info, res, exc)
    bmat, was_vec = as_matrix(b)
    if lsame(fact, "F"):
        res.af = afb
        linfo = 0
    else:
        res.af = ab.copy()
        linfo = pbtrf(res.af, uplo)
    if linfo > 0:
        res.rcond = 0.0
        return _finish(srname, linfo, info, res,
                       NotPositiveDefinite(srname, linfo))
    deadlines.check(srname, "factor", info)
    hermitian = np.iscomplexobj(ab)
    anorm = lansb("1", ab, n, uplo, hermitian=hermitian)
    res.rcond, _ = pbcon(res.af, anorm, uplo)
    res.rcond = min(res.rcond, 1.0)
    deadlines.check(srname, "solve", info)
    x2d = bmat.astype(ab.dtype, copy=True)
    pbtrs(res.af, x2d, uplo)
    deadlines.check(srname, "refine", info)
    res.ferr, res.berr, _ = pbrfs(ab, res.af, bmat, x2d, uplo)
    res.x = _vector_like(b, x2d, was_vec)
    if x is not None:
        xv, _ = as_matrix(x)
        xv[:] = x2d
    linfo = _rcond_verdict(srname, res.rcond, n, ab.dtype)
    return _finish(srname, linfo, info, res)


@backend_aware
def la_ptsvx(d: np.ndarray, e: np.ndarray, b: np.ndarray,
             x: np.ndarray | None = None, fact: str = "N",
             info: Info | None = None) -> ExpertResult:
    """Expert SPD tridiagonal solver (paper ``LA_PTSVX``)."""
    srname = "LA_PTSVX"
    res = ExpertResult()
    linfo = validate_args("la_ptsvx", d=d, e=e, b=b)
    if linfo:
        return _finish(srname, linfo, info, res)
    n = d.shape[0]
    linfo, exc = driver_guard(srname, (1, d), (2, e), (3, b))
    if linfo:
        return _finish(srname, linfo, info, res, exc)
    bmat, was_vec = as_matrix(b)
    df, ef = d.copy(), e.copy()
    linfo = pttrf(df, ef)
    res.factors = (df, ef)
    if linfo > 0:
        res.rcond = 0.0
        return _finish(srname, linfo, info, res,
                       NotPositiveDefinite(srname, linfo))
    deadlines.check(srname, "factor", info)
    anorm = lanst("1", d, np.abs(e))
    res.rcond, _ = ptcon(df, ef, anorm)
    res.rcond = min(res.rcond, 1.0)
    deadlines.check(srname, "solve", info)
    x2d = bmat.astype(np.result_type(d.dtype, e.dtype), copy=True)
    pttrs(df, ef, x2d)
    deadlines.check(srname, "refine", info)
    res.ferr, res.berr, _ = ptrfs(d, e, df, ef, bmat, x2d)
    res.x = _vector_like(b, x2d, was_vec)
    if x is not None:
        xv, _ = as_matrix(x)
        xv[:] = x2d
    linfo = _rcond_verdict(srname, res.rcond, n, e.dtype)
    return _finish(srname, linfo, info, res)


def _indef_expert(srname, trf, trs, con, rfs, a, b, x, uplo, af, ipiv,
                  fact, info, hermitian):
    res = ExpertResult()
    linfo = validate_args(srname.lower(), a=a, b=b, uplo=uplo, af=af,
                          ipiv=ipiv, fact=fact)
    if linfo:
        return _finish(srname, linfo, info, res)
    n = a.shape[0]
    linfo, exc = driver_guard(srname, (1, a), (2, b))
    if linfo:
        return _finish(srname, linfo, info, res, exc)
    bmat, was_vec = as_matrix(b)
    if lsame(fact, "F"):
        res.af, res.ipiv = af, ipiv
        linfo = 0
    else:
        res.af = a.copy()
        res.ipiv, linfo = trf(res.af, uplo)
    if linfo > 0:
        res.rcond = 0.0
        return _finish(srname, linfo, info, res,
                       SingularMatrix(srname, linfo))
    deadlines.check(srname, "factor", info)
    anorm = lanhe("1", a, uplo) if hermitian else lansy("1", a, uplo)
    res.rcond, _ = con(res.af, res.ipiv, anorm, uplo)
    res.rcond = min(res.rcond, 1.0)
    deadlines.check(srname, "solve", info)
    x2d = bmat.astype(a.dtype, copy=True)
    trs(res.af, res.ipiv, x2d, uplo)
    deadlines.check(srname, "refine", info)
    res.ferr, res.berr, _ = rfs(a, res.af, res.ipiv, bmat, x2d, uplo)
    res.x = _vector_like(b, x2d, was_vec)
    if x is not None:
        xv, _ = as_matrix(x)
        xv[:] = x2d
    linfo = _rcond_verdict(srname, res.rcond, n, a.dtype)
    return _finish(srname, linfo, info, res)


@backend_aware
def la_sysvx(a, b, x=None, uplo="U", af=None, ipiv=None, fact="N",
             info: Info | None = None) -> ExpertResult:
    """Expert symmetric indefinite solver (paper ``LA_SYSVX``)."""
    return _indef_expert("LA_SYSVX", sytrf, sytrs, sycon, syrfs, a, b, x,
                         uplo, af, ipiv, fact, info, hermitian=False)


@backend_aware
def la_hesvx(a, b, x=None, uplo="U", af=None, ipiv=None, fact="N",
             info: Info | None = None) -> ExpertResult:
    """Expert Hermitian indefinite solver (paper ``LA_HESVX``)."""
    return _indef_expert("LA_HESVX", hetrf, hetrs, hecon, herfs, a, b, x,
                         uplo, af, ipiv, fact, info, hermitian=True)


def _packed_indef_expert(srname, hermitian, ap, b, x, uplo, afp, ipiv,
                         fact, info):
    res = ExpertResult()
    linfo = validate_args(srname.lower(), ap=ap, b=b, uplo=uplo, afp=afp,
                          ipiv=ipiv, fact=fact)
    if linfo:
        return _finish(srname, linfo, info, res)
    n = b.shape[0]
    linfo, exc = driver_guard(srname, (1, ap), (2, b))
    if linfo:
        return _finish(srname, linfo, info, res, exc)
    bmat, was_vec = as_matrix(b)
    if lsame(fact, "F"):
        res.af, res.ipiv = afp, ipiv
        linfo = 0
    else:
        res.af = ap.copy()
        if hermitian:
            res.ipiv, linfo = hptrf(res.af, uplo)
        else:
            res.ipiv, linfo = sptrf(res.af, uplo)
    if linfo > 0:
        res.rcond = 0.0
        return _finish(srname, linfo, info, res,
                       SingularMatrix(srname, linfo))
    deadlines.check(srname, "factor", info)
    anorm = lansp("1", ap, n, uplo, hermitian=hermitian)
    if hermitian:
        res.rcond, _ = hpcon(res.af, res.ipiv, anorm, uplo)
    else:
        res.rcond, _ = spcon(res.af, res.ipiv, anorm, uplo)
    res.rcond = min(res.rcond, 1.0)
    deadlines.check(srname, "solve", info)
    x2d = bmat.astype(ap.dtype, copy=True)
    sptrs(res.af, res.ipiv, x2d, uplo, hermitian=hermitian)
    deadlines.check(srname, "refine", info)
    # Refinement via the dense machinery on the unpacked matrix.
    from ..storage import unpack
    full = unpack(ap, n, uplo=uplo, symmetric=not hermitian,
                  hermitian=hermitian)
    fullf = unpack(res.af, n, uplo=uplo)
    rfs = herfs if hermitian else syrfs
    res.ferr, res.berr, _ = rfs(full, fullf, res.ipiv, bmat, x2d, uplo)
    res.x = _vector_like(b, x2d, was_vec)
    if x is not None:
        xv, _ = as_matrix(x)
        xv[:] = x2d
    linfo = _rcond_verdict(srname, res.rcond, n, ap.dtype)
    return _finish(srname, linfo, info, res)


@backend_aware
def la_spsvx(ap, b, x=None, uplo="U", afp=None, ipiv=None, fact="N",
             info: Info | None = None) -> ExpertResult:
    """Expert packed symmetric indefinite solver (paper ``LA_SPSVX``)."""
    return _packed_indef_expert("LA_SPSVX", False, ap, b, x, uplo, afp,
                                ipiv, fact, info)


@backend_aware
def la_hpsvx(ap, b, x=None, uplo="U", afp=None, ipiv=None, fact="N",
             info: Info | None = None) -> ExpertResult:
    """Expert packed Hermitian indefinite solver (paper ``LA_HPSVX``)."""
    return _packed_indef_expert("LA_HPSVX", True, ap, b, x, uplo, afp,
                                ipiv, fact, info)
