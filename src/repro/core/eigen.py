"""Driver Routines for Standard Eigenvalue and Singular Value Problems
(Appendix G, §5).

Optional-output conventions (the Python rendering of F90 optional
arguments):

* ``jobz``/vector requests — passing an output array (or ``True``) for
  ``z``/``vs``/``vl``/``vr``/``u``/``vt`` requests that quantity, exactly
  like supplying the optional argument in LAPACK90.
* Eigenvalues are returned (``w``; complex for the nonsymmetric drivers —
  the paper's ``ω ::= WR, WI | W`` collapses to one complex array).
"""

from __future__ import annotations

import numpy as np

from ..errors import Info, NoConvergence
from ..backends import backend_aware
from ..backends.kernels import (gees, geev, gesvd, hbev, heev, hpev, sbev,
                                spev, stev, syev)
from ..specs import validate_args
from .auxmod import _report, driver_guard

__all__ = ["la_syev", "la_heev", "la_spev", "la_hpev", "la_sbev",
           "la_hbev", "la_stev", "la_gees", "la_geev", "la_gesvd"]


def _want(flag) -> bool:
    return flag is not None and flag is not False


def _store(target, value):
    if isinstance(target, np.ndarray):
        target[...] = value
        return target
    return value


@backend_aware
def la_syev(a: np.ndarray, w: np.ndarray | None = None, jobz: str = "N",
            uplo: str = "U", info: Info | None = None) -> np.ndarray:
    """Computes all eigenvalues and, optionally, eigenvectors of a real
    symmetric matrix A (paper: ``CALL LA_SYEV( A, W, JOBZ=jobz,
    UPLO=uplo, INFO=info )``).

    With ``jobz='V'`` the eigenvectors overwrite ``a`` (column *i* pairs
    with ``w[i]``).  Returns the ascending eigenvalues.
    """
    srname = "LA_SYEV"
    exc = None
    wout = np.zeros(0)
    linfo = validate_args("la_syev", a=a, w=w, jobz=jobz, uplo=uplo)
    if linfo == 0:
        linfo, exc = driver_guard(srname, (1, a))
        if linfo == 0:
            wout, linfo = syev(a, jobz=jobz, uplo=uplo)
            if linfo > 0:
                exc = NoConvergence(srname, linfo)
            if w is not None:
                w[:] = wout
                wout = w
    _report(srname, linfo, info, exc)
    return wout


@backend_aware
def la_heev(a: np.ndarray, w: np.ndarray | None = None, jobz: str = "N",
            uplo: str = "U", info: Info | None = None) -> np.ndarray:
    """Hermitian analogue of :func:`la_syev` (paper ``LA_HEEV``);
    eigenvalues are real."""
    srname = "LA_HEEV"
    exc = None
    wout = np.zeros(0)
    linfo = validate_args("la_heev", a=a, w=w, jobz=jobz, uplo=uplo)
    if linfo == 0:
        linfo, exc = driver_guard(srname, (1, a))
        if linfo == 0:
            wout, linfo = heev(a, jobz=jobz, uplo=uplo)
            if linfo > 0:
                exc = NoConvergence(srname, linfo)
            if w is not None:
                w[:] = wout
                wout = w
    _report(srname, linfo, info, exc)
    return wout


def _packed_ev(srname, driver, ap, w, uplo, z, info):
    exc = None
    wout = np.zeros(0)
    zout = None
    linfo = validate_args(srname.lower(), ap=ap, w=w, uplo=uplo)
    if linfo == 0:
        ln = ap.shape[0]
        n = int((np.sqrt(8.0 * ln + 1.0) - 1.0) / 2.0 + 0.5)
        linfo, exc = driver_guard(srname, (1, ap))
        if linfo == 0:
            jobz = "V" if _want(z) else "N"
            wout, zv, linfo = driver(ap, n, jobz=jobz, uplo=uplo)
            if linfo > 0:
                exc = NoConvergence(srname, linfo)
            if _want(z):
                zout = _store(z if isinstance(z, np.ndarray) else None, zv)
            if w is not None:
                w[:] = wout
                wout = w
    _report(srname, linfo, info, exc)
    return (wout, zout) if _want(z) else wout


@backend_aware
def la_spev(ap: np.ndarray, w: np.ndarray | None = None, uplo: str = "U",
            z=None, info: Info | None = None):
    """Computes all eigenvalues and, optionally, eigenvectors of a real
    symmetric matrix A in packed storage (paper ``LA_SPEV``).

    Pass ``z=True`` (or an output array) to request eigenvectors; then
    ``(w, z)`` is returned.
    """
    return _packed_ev("LA_SPEV", spev, ap, w, uplo, z, info)


@backend_aware
def la_hpev(ap: np.ndarray, w: np.ndarray | None = None, uplo: str = "U",
            z=None, info: Info | None = None):
    """Packed Hermitian eigen driver (paper ``LA_HPEV``)."""
    return _packed_ev("LA_HPEV", hpev, ap, w, uplo, z, info)


def _band_ev(srname, driver, ab, w, uplo, z, info):
    exc = None
    wout = np.zeros(0)
    zout = None
    linfo = validate_args(srname.lower(), ab=ab, w=w, uplo=uplo)
    if linfo == 0:
        n = ab.shape[1]
        linfo, exc = driver_guard(srname, (1, ab))
        if linfo == 0:
            jobz = "V" if _want(z) else "N"
            wout, zv, linfo = driver(ab, n, jobz=jobz, uplo=uplo)
            if linfo > 0:
                exc = NoConvergence(srname, linfo)
            if _want(z):
                zout = _store(z if isinstance(z, np.ndarray) else None,
                              zv)
            if w is not None:
                w[:] = wout
                wout = w
    _report(srname, linfo, info, exc)
    return (wout, zout) if _want(z) else wout


@backend_aware
def la_sbev(ab: np.ndarray, w: np.ndarray | None = None, uplo: str = "U",
            z=None, info: Info | None = None):
    """Symmetric band eigen driver (paper ``LA_SBEV``); ``ab`` is the
    ``(kd+1, n)`` symmetric band storage."""
    return _band_ev("LA_SBEV", sbev, ab, w, uplo, z, info)


@backend_aware
def la_hbev(ab: np.ndarray, w: np.ndarray | None = None, uplo: str = "U",
            z=None, info: Info | None = None):
    """Hermitian band eigen driver (paper ``LA_HBEV``)."""
    return _band_ev("LA_HBEV", hbev, ab, w, uplo, z, info)


@backend_aware
def la_stev(d: np.ndarray, e: np.ndarray, z=None,
            info: Info | None = None):
    """Computes all eigenvalues (and optionally eigenvectors) of a real
    symmetric tridiagonal matrix (paper: ``CALL LA_STEV( D, E, Z=z,
    INFO=info )``).

    Eigenvalues overwrite ``d`` (ascending); ``e`` is destroyed.
    """
    srname = "LA_STEV"
    exc = None
    zout = None
    linfo = validate_args("la_stev", d=d, e=e)
    if linfo == 0:
        n = d.shape[0]
        linfo, exc = driver_guard(srname, (1, d), (2, e))
        if linfo == 0:
            if _want(z):
                zbuf = z if isinstance(z, np.ndarray) else \
                    np.empty((n, n), dtype=d.dtype)
                linfo = stev(d, e, zbuf, jobz="V")
                zout = zbuf
            else:
                linfo = stev(d, e, jobz="N")
            if linfo > 0:
                exc = NoConvergence(srname, linfo)
    _report(srname, linfo, info, exc)
    return (d, zout) if _want(z) else d


@backend_aware
def la_gees(a: np.ndarray, w: np.ndarray | None = None, vs=None,
            select=None, info: Info | None = None):
    """Computes the eigenvalues and Schur form of a nonsymmetric matrix,
    and optionally the Schur vectors (paper: ``CALL LA_GEES( A, ω,
    VS=vs, SELECT=select, SDIM=sdim, INFO=info )``).

    ``a`` is overwritten with the (quasi-)triangular Schur form T.  The
    paper's ``ω`` (WR/WI or W) is the returned complex ``w``.  With a
    ``select`` callable the chosen eigenvalues are moved to the leading
    block.  Returns ``(w, sdim)`` — or ``(w, vs, sdim)`` when Schur
    vectors were requested.
    """
    srname = "LA_GEES"
    exc = None
    wout = np.zeros(0, dtype=complex)
    sdim = 0
    vsout = None
    linfo = validate_args("la_gees", a=a)
    if linfo == 0:
        linfo, exc = driver_guard(srname, (1, a))
        if linfo == 0:
            jobvs = "V" if _want(vs) else "N"
            wout, vsv, sdim, linfo = gees(a, jobvs=jobvs, select=select)
            if linfo > 0:
                exc = NoConvergence(srname, linfo)
            if _want(vs):
                vsout = _store(vs if isinstance(vs, np.ndarray) else None,
                               vsv)
            if w is not None:
                w[:] = wout
                wout = w
    _report(srname, linfo, info, exc)
    if _want(vs):
        return wout, vsout, sdim
    return wout, sdim


@backend_aware
def la_geev(a: np.ndarray, w: np.ndarray | None = None, vl=None, vr=None,
            info: Info | None = None):
    """Computes the eigenvalues and, optionally, left/right eigenvectors
    of a nonsymmetric matrix (paper: ``CALL LA_GEEV( A, ω, VL=vl,
    VR=vr, INFO=info )``).

    Returns ``w`` (complex), plus ``vl``/``vr`` (complex unit-norm
    columns) in the order requested: ``(w[, vl][, vr])``.
    """
    srname = "LA_GEEV"
    exc = None
    wout = np.zeros(0, dtype=complex)
    vlout = vrout = None
    linfo = validate_args("la_geev", a=a)
    if linfo == 0:
        linfo, exc = driver_guard(srname, (1, a))
        if linfo == 0:
            wout, vlv, vrv, linfo = geev(a,
                                         jobvl="V" if _want(vl) else "N",
                                         jobvr="V" if _want(vr) else "N")
            if linfo > 0:
                exc = NoConvergence(srname, linfo)
            if _want(vl):
                vlout = _store(vl if isinstance(vl, np.ndarray) else None,
                               vlv)
            if _want(vr):
                vrout = _store(vr if isinstance(vr, np.ndarray) else None,
                               vrv)
            if w is not None:
                w[:] = wout
                wout = w
    _report(srname, linfo, info, exc)
    out = [wout]
    if _want(vl):
        out.append(vlout)
    if _want(vr):
        out.append(vrout)
    return out[0] if len(out) == 1 else tuple(out)


@backend_aware
def la_gesvd(a: np.ndarray, s: np.ndarray | None = None, u=None, vt=None,
             ww: np.ndarray | None = None, job: str = "N",
             info: Info | None = None):
    """Computes the singular value decomposition ``A = U Σ Vᴴ``
    (paper: ``CALL LA_GESVD( A, S, U=u, VT=vt, WW=ww, JOB=job,
    INFO=info )``).

    Request factors by passing ``u=True``/``vt=True`` (economy size) or
    preallocated arrays (square m×m / n×n arrays select the full
    factors).  ``a`` is destroyed.  Returns ``s`` (descending), plus the
    requested factors: ``(s[, u][, vt])``.
    """
    srname = "LA_GESVD"
    exc = None
    sout = np.zeros(0)
    uout = vtout = None
    linfo = validate_args("la_gesvd", a=a)
    if linfo == 0:
        linfo, exc = driver_guard(srname, (1, a))
    if linfo == 0:
        m, n = a.shape
        jobu = "N"
        if _want(u):
            # A square preallocated array requests the full factor.
            jobu = "A" if (isinstance(u, np.ndarray) and u.shape == (m, m)
                           and m > min(m, n)) else "S"
        jobvt = "N"
        if _want(vt):
            jobvt = "A" if (isinstance(vt, np.ndarray)
                            and vt.shape == (n, n) and n > min(m, n)) \
                else "S"
        # WW receives the superdiagonal of the intermediate bidiagonal
        # form: zeros on convergence, the unconverged elements when
        # linfo > 0 (paper Appendix G, LA_GESVD).
        ev = np.zeros(max(min(m, n) - 1, 0), dtype=a.real.dtype)
        sout, uv, vtv, linfo = gesvd(a, jobu=jobu, jobvt=jobvt,
                                     superdiag=ev)
        if linfo > 0:
            exc = NoConvergence(srname, linfo,
                                "bidiagonal QR failed to converge")
        if ww is not None:
            ww[:] = ev
        if _want(u):
            uout = _store(u if isinstance(u, np.ndarray) else None, uv)
        if _want(vt):
            vtout = _store(vt if isinstance(vt, np.ndarray) else None, vtv)
        if s is not None:
            s[:] = sout
            sout = s
    _report(srname, linfo, info, exc)
    out = [sout]
    if _want(u):
        out.append(uout)
    if _want(vt):
        out.append(vtout)
    return out[0] if len(out) == 1 else tuple(out)
