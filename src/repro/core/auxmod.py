"""The ``LA_AUXMOD`` module: shared helpers used by every wrapper.

* :func:`lsame` — case-insensitive option-letter comparison,
* :func:`la_ws_gels` / :func:`la_ws_gelss` — workspace-size enquiries
  (kept for interface fidelity; the Python wrappers allocate internally
  but the sizes are exactly what a FORTRAN caller would have needed),
* validation helpers that turn argument mistakes into the negative
  ``LINFO`` codes the ERINFO protocol reports,
* :func:`driver_guard` — the per-driver entry gate: NaN/Inf screening per
  the active exception policy plus the simulated workspace-allocation
  fault (``LINFO = -100``) used by the fault-injection harness,
* :func:`_report` / :func:`_record_fallback` — the shared reporting
  shims every driver module funnels its outcomes through.
"""

from __future__ import annotations

import warnings

import numpy as np

from ..config import ilaenv
from ..errors import ALLOC_FAILED, DriverFallbackWarning, Info, erinfo
from ..faults import alloc_fault
from ..policy import screen
from ..resilience import calllog, deadlines

__all__ = ["lsame", "la_ws_gels", "la_ws_gelss", "as_matrix",
           "check_square", "check_rhs", "checked_dtype", "driver_guard"]


def _report(srname, linfo, info, exc=None):
    """Funnel a driver outcome through :func:`repro.errors.erinfo`.

    The open resilience call-log frame (if any) is drained onto the Info
    handle first, so ``info.attempts``/``info.breaker`` are populated
    even when ``erinfo`` goes on to raise.
    """
    calllog.drain_into(info)
    erinfo(linfo, srname, info, exc=exc)


def _record_fallback(srname, via, rcond, linfo, info):
    """Announce a taken fallback and record it on the Info handle.

    ``linfo`` is stored without going through ``erinfo``: a successful
    fallback is a warning-class outcome (even the ``n+1``
    singular-to-working-precision verdict) and must not terminate.
    """
    calllog.drain_into(info)
    detail = f" (RCOND = {rcond:.3e})" if rcond is not None else ""
    warnings.warn(
        f"{srname}: primary factorization failed; solution computed via "
        f"the {via} fallback{detail}",
        DriverFallbackWarning, stacklevel=4)
    if info is not None:
        info.value = int(linfo)
        info.fallback = via
        info.rcond = rcond


def lsame(ca: str, cb: str) -> bool:
    """True when two option characters agree regardless of case
    (the paper's ``LSAME``)."""
    return bool(ca) and bool(cb) and ca[0].upper() == cb[0].upper()


def la_ws_gels(ver: str, m: int, n: int, nrhs: int, trans: str = "N") -> int:
    """Minimum workspace length ``xGELS`` would need (``LA_WS_GELS``)."""
    nb = max(ilaenv(1, "geqrf"), ilaenv(1, "gelqf"),
             ilaenv(1, "ormqr"), ilaenv(1, "ormlq"))
    mn = min(m, n)
    return max(1, mn + max(mn, nrhs) * nb)


def la_ws_gelss(ver: str, m: int, n: int, nrhs: int) -> int:
    """Minimum workspace length ``xGELSS`` would need (``LA_WS_GELSS``)."""
    mn = min(m, n)
    mx = max(m, n)
    return max(1, 3 * mn + max(2 * mn, mx, nrhs))


def as_matrix(b: np.ndarray):
    """View a RHS as 2-D, remembering whether it arrived as a vector
    (the ``GESV1_F90`` shape dispatch).  Returns ``(b2d, was_vector)``."""
    if b.ndim == 1:
        return b[:, None], True
    return b, False


def check_square(a, argpos: int) -> int:
    """0 when ``a`` is a square 2-D array, else ``-argpos``."""
    if not isinstance(a, np.ndarray) or a.ndim != 2 \
            or a.shape[0] != a.shape[1]:
        return -argpos
    return 0


def check_rhs(a_rows: int, b, argpos: int) -> int:
    """0 when ``b`` is a 1-D/2-D array with ``a_rows`` rows."""
    if not isinstance(b, np.ndarray) or b.ndim not in (1, 2) \
            or b.shape[0] != a_rows:
        return -argpos
    return 0


def driver_guard(srname: str, *args):
    """Entry gate run after argument validation, before any computation.

    ``args`` are 1-based ``(position, array)`` pairs.  Returns
    ``(linfo, exc)``: the non-finite screening verdict from
    :func:`repro.policy.screen`, or ``(ALLOC_FAILED, None)`` when the
    fault-injection harness simulates a failed workspace allocation for
    this driver.  ``(0, None)`` means proceed.

    The guard also opens the driver's resilience call-log frame (drained
    back onto the Info handle by ``_report``/``_record_fallback``) and
    runs the ``"entry"`` deadline checkpoint, which raises
    :class:`~repro.errors.DeadlineExceeded` when an enclosing
    ``repro.deadline()`` budget is already spent.
    """
    calllog.push()
    deadlines.check(srname, "entry")
    linfo, exc = screen(srname, *args)
    if linfo == 0 and alloc_fault(srname):
        return ALLOC_FAILED, None
    return linfo, exc


def checked_dtype(*arrays) -> int:
    """0 when all arrays share a supported floating dtype family."""
    kinds = {np.dtype(a.dtype).kind for a in arrays if a is not None}
    if not kinds <= {"f", "c"}:
        return 1
    return 0
