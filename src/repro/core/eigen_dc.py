"""Divide and Conquer Driver Routines for Standard Eigenvalue Problems
(Appendix G, §6): same interfaces as the §5 drivers, but eigenvectors
come from the Cuppen divide-and-conquer algorithm (``stedc``)."""

from __future__ import annotations

import numpy as np

from ..errors import Info, NoConvergence
from ..backends import backend_aware
from ..backends.kernels import (hbevd, heevd, hpevd, sbevd, spevd, stevd,
                                syevd)
from ..specs import validate_args
from .auxmod import _report
from .eigen import _band_ev, _packed_ev, _store, _want

__all__ = ["la_syevd", "la_heevd", "la_spevd", "la_hpevd", "la_sbevd",
           "la_hbevd", "la_stevd"]


def _dense_evd(srname, driver, a, w, jobz, uplo, info):
    exc = None
    wout = np.zeros(0)
    linfo = validate_args(srname.lower(), a=a, w=w, jobz=jobz, uplo=uplo)
    if linfo == 0:
        wout, linfo = driver(a, jobz=jobz, uplo=uplo)
        if linfo > 0:
            exc = NoConvergence(srname, linfo)
        if w is not None:
            w[:] = wout
            wout = w
    _report(srname, linfo, info, exc)
    return wout


@backend_aware
def la_syevd(a: np.ndarray, w: np.ndarray | None = None, jobz: str = "N",
             uplo: str = "U", info: Info | None = None) -> np.ndarray:
    """Divide-and-conquer eigensolver for a real symmetric matrix
    (paper: ``CALL LA_SYEVD( A, W, JOBZ=jobz, UPLO=uplo, INFO=info )``).

    With ``jobz='V'`` the eigenvectors overwrite ``a``.
    """
    return _dense_evd("LA_SYEVD", syevd, a, w, jobz, uplo, info)


@backend_aware
def la_heevd(a: np.ndarray, w: np.ndarray | None = None, jobz: str = "N",
             uplo: str = "U", info: Info | None = None) -> np.ndarray:
    """Divide-and-conquer Hermitian eigensolver (paper ``LA_HEEVD``)."""
    return _dense_evd("LA_HEEVD", heevd, a, w, jobz, uplo, info)


@backend_aware
def la_spevd(ap: np.ndarray, w: np.ndarray | None = None,
             uplo: str = "U", z=None, info: Info | None = None):
    """Packed symmetric divide-and-conquer driver (paper ``LA_SPEVD``)."""
    return _packed_ev("LA_SPEVD", spevd, ap, w, uplo, z, info)


@backend_aware
def la_hpevd(ap: np.ndarray, w: np.ndarray | None = None,
             uplo: str = "U", z=None, info: Info | None = None):
    """Packed Hermitian divide-and-conquer driver (paper ``LA_HPEVD``)."""
    return _packed_ev("LA_HPEVD", hpevd, ap, w, uplo, z, info)


@backend_aware
def la_sbevd(ab: np.ndarray, w: np.ndarray | None = None,
             uplo: str = "U", z=None, info: Info | None = None):
    """Symmetric band divide-and-conquer driver (paper ``LA_SBEVD``)."""
    return _band_ev("LA_SBEVD", sbevd, ab, w, uplo, z, info)


@backend_aware
def la_hbevd(ab: np.ndarray, w: np.ndarray | None = None,
             uplo: str = "U", z=None, info: Info | None = None):
    """Hermitian band divide-and-conquer driver (paper ``LA_HBEVD``)."""
    return _band_ev("LA_HBEVD", hbevd, ab, w, uplo, z, info)


@backend_aware
def la_stevd(d: np.ndarray, e: np.ndarray, z=None,
             info: Info | None = None):
    """Divide-and-conquer tridiagonal driver (paper: ``CALL LA_STEVD( D,
    E, Z=z, INFO=info )``): eigenvalues overwrite ``d``."""
    srname = "LA_STEVD"
    exc = None
    zout = None
    linfo = validate_args("la_stevd", d=d, e=e)
    if linfo == 0:
        n = d.shape[0]
        if _want(z):
            zbuf = z if isinstance(z, np.ndarray) else \
                np.empty((n, n), dtype=d.dtype)
            linfo = stevd(d, e, zbuf, jobz="V")
            zout = zbuf
        else:
            linfo = stevd(d, e, jobz="N")
        if linfo > 0:
            exc = NoConvergence(srname, linfo)
    _report(srname, linfo, info, exc)
    return (d, zout) if _want(z) else d
