"""Driver Routines for Generalized Eigenvalue and Singular Value Problems
(Appendix G, §8)."""

from __future__ import annotations

import numpy as np

from ..errors import Info, NoConvergence, erinfo, NotPositiveDefinite
from ..backends import backend_aware
from ..backends.kernels import (gegs, gegv, ggsvd, hbgv, hegv, hpgv, sbgv,
                                spgv, sygv)
from .auxmod import check_rhs, check_square, lsame
from .eigen import _store, _want

__all__ = ["la_sygv", "la_hegv", "la_spgv", "la_hpgv", "la_sbgv",
           "la_hbgv", "la_gegs", "la_gegv", "la_ggsvd"]


def _gv(srname, driver, a, b, w, itype, jobz, uplo, info):
    linfo = 0
    exc = None
    wout = np.zeros(0)
    n = a.shape[0] if isinstance(a, np.ndarray) and a.ndim == 2 else -1
    if check_square(a, 1):
        linfo = -1
    elif check_square(b, 2) or b.shape[0] != n:
        linfo = -2
    elif w is not None and w.shape[0] != n:
        linfo = -3
    elif itype not in (1, 2, 3):
        linfo = -4
    elif not (lsame(jobz, "N") or lsame(jobz, "V")):
        linfo = -5
    elif not (lsame(uplo, "U") or lsame(uplo, "L")):
        linfo = -6
    else:
        wout, linfo = driver(a, b, itype=itype, jobz=jobz, uplo=uplo)
        if linfo > n:
            exc = NotPositiveDefinite(srname, linfo - n)
        elif linfo > 0:
            exc = NoConvergence(srname, linfo)
        if w is not None:
            w[:] = wout
            wout = w
    erinfo(linfo, srname, info, exc=exc)
    return wout


@backend_aware
def la_sygv(a: np.ndarray, b: np.ndarray, w: np.ndarray | None = None,
            itype: int = 1, jobz: str = "N", uplo: str = "U",
            info: Info | None = None) -> np.ndarray:
    """Computes all eigenvalues (and optionally eigenvectors) of a real
    generalized symmetric-definite eigenproblem (paper: ``CALL LA_SYGV(
    A, B, W, ITYPE=itype, JOBZ=jobz, UPLO=uplo, INFO=info )``).

    itype 1: ``A x = λ B x``; 2: ``A B x = λ x``; 3: ``B A x = λ x``.
    With ``jobz='V'`` the eigenvectors overwrite ``a``; ``b`` receives
    the Cholesky factor of B.  ``info = n + i`` flags B not positive
    definite at minor *i*.
    """
    return _gv("LA_SYGV", sygv, a, b, w, itype, jobz, uplo, info)


@backend_aware
def la_hegv(a: np.ndarray, b: np.ndarray, w: np.ndarray | None = None,
            itype: int = 1, jobz: str = "N", uplo: str = "U",
            info: Info | None = None) -> np.ndarray:
    """Complex Hermitian-definite generalized eigen driver
    (paper ``LA_HEGV``)."""
    return _gv("LA_HEGV", hegv, a, b, w, itype, jobz, uplo, info)


def _packed_gv(srname, ap, bp, w, itype, uplo, z, info, method="qr"):
    linfo = 0
    exc = None
    wout = np.zeros(0)
    zout = None
    ln = ap.shape[0] if isinstance(ap, np.ndarray) and ap.ndim == 1 else -1
    n = int((np.sqrt(8.0 * max(ln, 0) + 1.0) - 1.0) / 2.0 + 0.5)
    if ln < 0 or n * (n + 1) // 2 != ln:
        linfo = -1
    elif not isinstance(bp, np.ndarray) or bp.shape != ap.shape:
        linfo = -2
    else:
        jobz = "V" if _want(z) else "N"
        wout, zv, linfo = spgv(ap, bp, n, itype=itype, jobz=jobz,
                               uplo=uplo, method=method)
        if linfo > n:
            exc = NotPositiveDefinite(srname, linfo - n)
        elif linfo > 0:
            exc = NoConvergence(srname, linfo)
        if _want(z):
            zout = _store(z if isinstance(z, np.ndarray) else None, zv)
        if w is not None:
            w[:] = wout
            wout = w
    erinfo(linfo, srname, info, exc=exc)
    return (wout, zout) if _want(z) else wout


@backend_aware
def la_spgv(ap, bp, w=None, itype: int = 1, uplo: str = "U", z=None,
            info: Info | None = None):
    """Packed generalized symmetric-definite driver (paper ``LA_SPGV``)."""
    return _packed_gv("LA_SPGV", ap, bp, w, itype, uplo, z, info)


@backend_aware
def la_hpgv(ap, bp, w=None, itype: int = 1, uplo: str = "U", z=None,
            info: Info | None = None):
    """Packed generalized Hermitian-definite driver (paper ``LA_HPGV``)."""
    return _packed_gv("LA_HPGV", ap, bp, w, itype, uplo, z, info)


def _band_gv(srname, ab, bb, w, uplo, z, info):
    linfo = 0
    exc = None
    wout = np.zeros(0)
    zout = None
    if not isinstance(ab, np.ndarray) or ab.ndim != 2:
        linfo = -1
    elif not isinstance(bb, np.ndarray) or bb.ndim != 2 \
            or bb.shape[1] != ab.shape[1]:
        linfo = -2
    else:
        n = ab.shape[1]
        jobz = "V" if _want(z) else "N"
        wout, zv, linfo = sbgv(ab, bb, n, jobz=jobz, uplo=uplo)
        if linfo > n:
            exc = NotPositiveDefinite(srname, linfo - n)
        elif linfo > 0:
            exc = NoConvergence(srname, linfo)
        if _want(z):
            zout = _store(z if isinstance(z, np.ndarray) else None, zv)
        if w is not None:
            w[:] = wout
            wout = w
    erinfo(linfo, srname, info, exc=exc)
    return (wout, zout) if _want(z) else wout


@backend_aware
def la_sbgv(ab, bb, w=None, uplo: str = "U", z=None,
            info: Info | None = None):
    """Band generalized symmetric-definite driver (paper ``LA_SBGV``)."""
    return _band_gv("LA_SBGV", ab, bb, w, uplo, z, info)


@backend_aware
def la_hbgv(ab, bb, w=None, uplo: str = "U", z=None,
            info: Info | None = None):
    """Band generalized Hermitian-definite driver (paper ``LA_HBGV``)."""
    return _band_gv("LA_HBGV", ab, bb, w, uplo, z, info)


@backend_aware
def la_gegs(a: np.ndarray, b: np.ndarray, vsl=None, vsr=None,
            info: Info | None = None):
    """Generalized Schur factorization of a nonsymmetric pencil (A, B)
    (paper: ``CALL LA_GEGS( A, B, α=alpha, BETA=beta, VSL=vsl,
    VSR=vsr, INFO=info )``).

    ``a``/``b`` are replaced by the (complex) triangular Schur pair; the
    generalized eigenvalues are the returned ``(alpha, beta)`` pairs (the
    paper's ``α ::= ALPHAR, ALPHAI | ALPHA`` collapses to complex
    ``alpha``).  Returns ``(alpha, beta[, vsl][, vsr])``.
    """
    srname = "LA_GEGS"
    linfo = 0
    exc = None
    if check_square(a, 1) or check_square(b, 2) \
            or a.shape != b.shape:
        erinfo(-1 if check_square(a, 1) else -2, srname, info)
        return np.zeros(0, complex), np.zeros(0, complex)
    alpha, beta, s, t, q, z, linfo = gegs(a, b)
    if np.iscomplexobj(a):
        a[...] = s
        b[...] = t
    if linfo > 0:
        exc = NoConvergence(srname, linfo)
    out = [alpha, beta]
    if _want(vsl):
        out.append(_store(vsl if isinstance(vsl, np.ndarray) else None, q))
    if _want(vsr):
        out.append(_store(vsr if isinstance(vsr, np.ndarray) else None, z))
    if not _want(vsl) and not _want(vsr):
        out.extend([s, t])
    erinfo(linfo, srname, info, exc=exc)
    return tuple(out)


@backend_aware
def la_gegv(a: np.ndarray, b: np.ndarray, vl=None, vr=None,
            info: Info | None = None):
    """Generalized eigenvalues (and optionally eigenvectors) of a pair of
    nonsymmetric matrices (paper: ``CALL LA_GEGV( A, B, α=alpha,
    BETA=beta, VL=vl, VR=vr, INFO=info )``).

    Returns ``(alpha, beta[, vl][, vr])``; eigenvalue *i* is
    ``alpha[i]/beta[i]`` (``beta ≈ 0`` flags an infinite eigenvalue).
    """
    srname = "LA_GEGV"
    linfo = 0
    exc = None
    if check_square(a, 1) or check_square(b, 2) or a.shape != b.shape:
        erinfo(-1 if check_square(a, 1) else -2, srname, info)
        return np.zeros(0, complex), np.zeros(0, complex)
    alpha, beta, vlv, vrv, linfo = gegv(a, b, want_vl=_want(vl),
                                        want_vr=_want(vr))
    if linfo > 0:
        exc = NoConvergence(srname, linfo)
    out = [alpha, beta]
    if _want(vl):
        out.append(_store(vl if isinstance(vl, np.ndarray) else None, vlv))
    if _want(vr):
        out.append(_store(vr if isinstance(vr, np.ndarray) else None, vrv))
    erinfo(linfo, srname, info, exc=exc)
    return tuple(out)


@backend_aware
def la_ggsvd(a: np.ndarray, b: np.ndarray, info: Info | None = None):
    """Computes the generalized singular value decomposition
    (paper: ``CALL LA_GGSVD( A, B, ALPHA, BETA, K=k, L=l, U=u, V=v,
    Q=q, INFO=info )``).

    Returns ``(alpha, beta, k, l, u, v, q, r)`` with
    ``A = U·D1·R·Qᴴ``, ``B = V·D2·R·Qᴴ`` (see
    :func:`repro.lapack77.gsvd.ggsvd` for the D1/D2 layout).
    """
    srname = "LA_GGSVD"
    linfo = 0
    exc = None
    if not isinstance(a, np.ndarray) or a.ndim != 2:
        erinfo(-1, srname, info)
        return None
    if not isinstance(b, np.ndarray) or b.ndim != 2 \
            or b.shape[1] != a.shape[1]:
        erinfo(-2, srname, info)
        return None
    alpha, beta, k, l, u, v, q, r, linfo = ggsvd(a, b)
    if linfo > 0:
        exc = NoConvergence(srname, linfo)
    erinfo(linfo, srname, info, exc=exc)
    return alpha, beta, k, l, u, v, q, r
