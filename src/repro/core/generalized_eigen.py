"""Driver Routines for Generalized Eigenvalue and Singular Value Problems
(Appendix G, §8)."""

from __future__ import annotations

import numpy as np

from ..errors import Info, NoConvergence, NotPositiveDefinite
from ..backends import backend_aware
from ..backends.kernels import (gegs, gegv, ggsvd, hbgv, hegv, hpgv, sbgv,
                                spgv, sygv)
from ..specs import validate_args
from .auxmod import _report
from .eigen import _store, _want

__all__ = ["la_sygv", "la_hegv", "la_spgv", "la_hpgv", "la_sbgv",
           "la_hbgv", "la_gegs", "la_gegv", "la_ggsvd"]


def _gv(srname, driver, a, b, w, itype, jobz, uplo, info):
    exc = None
    wout = np.zeros(0)
    linfo = validate_args(srname.lower(), a=a, b=b, w=w, itype=itype,
                          jobz=jobz, uplo=uplo)
    if linfo == 0:
        n = a.shape[0]
        wout, linfo = driver(a, b, itype=itype, jobz=jobz, uplo=uplo)
        if linfo > n:
            exc = NotPositiveDefinite(srname, linfo - n)
        elif linfo > 0:
            exc = NoConvergence(srname, linfo)
        if w is not None:
            w[:] = wout
            wout = w
    _report(srname, linfo, info, exc)
    return wout


@backend_aware
def la_sygv(a: np.ndarray, b: np.ndarray, w: np.ndarray | None = None,
            itype: int = 1, jobz: str = "N", uplo: str = "U",
            info: Info | None = None) -> np.ndarray:
    """Computes all eigenvalues (and optionally eigenvectors) of a real
    generalized symmetric-definite eigenproblem (paper: ``CALL LA_SYGV(
    A, B, W, ITYPE=itype, JOBZ=jobz, UPLO=uplo, INFO=info )``).

    itype 1: ``A x = λ B x``; 2: ``A B x = λ x``; 3: ``B A x = λ x``.
    With ``jobz='V'`` the eigenvectors overwrite ``a``; ``b`` receives
    the Cholesky factor of B.  ``info = n + i`` flags B not positive
    definite at minor *i*.
    """
    return _gv("LA_SYGV", sygv, a, b, w, itype, jobz, uplo, info)


@backend_aware
def la_hegv(a: np.ndarray, b: np.ndarray, w: np.ndarray | None = None,
            itype: int = 1, jobz: str = "N", uplo: str = "U",
            info: Info | None = None) -> np.ndarray:
    """Complex Hermitian-definite generalized eigen driver
    (paper ``LA_HEGV``)."""
    return _gv("LA_HEGV", hegv, a, b, w, itype, jobz, uplo, info)


def _packed_gv(srname, ap, bp, w, itype, uplo, z, info, method="qr"):
    exc = None
    wout = np.zeros(0)
    zout = None
    linfo = validate_args(srname.lower(), ap=ap, bp=bp)
    if linfo == 0:
        ln = ap.shape[0]
        n = int((np.sqrt(8.0 * ln + 1.0) - 1.0) / 2.0 + 0.5)
        jobz = "V" if _want(z) else "N"
        wout, zv, linfo = spgv(ap, bp, n, itype=itype, jobz=jobz,
                               uplo=uplo, method=method)
        if linfo > n:
            exc = NotPositiveDefinite(srname, linfo - n)
        elif linfo > 0:
            exc = NoConvergence(srname, linfo)
        if _want(z):
            zout = _store(z if isinstance(z, np.ndarray) else None, zv)
        if w is not None:
            w[:] = wout
            wout = w
    _report(srname, linfo, info, exc)
    return (wout, zout) if _want(z) else wout


@backend_aware
def la_spgv(ap, bp, w=None, itype: int = 1, uplo: str = "U", z=None,
            info: Info | None = None):
    """Packed generalized symmetric-definite driver (paper ``LA_SPGV``)."""
    return _packed_gv("LA_SPGV", ap, bp, w, itype, uplo, z, info)


@backend_aware
def la_hpgv(ap, bp, w=None, itype: int = 1, uplo: str = "U", z=None,
            info: Info | None = None):
    """Packed generalized Hermitian-definite driver (paper ``LA_HPGV``)."""
    return _packed_gv("LA_HPGV", ap, bp, w, itype, uplo, z, info)


def _band_gv(srname, ab, bb, w, uplo, z, info):
    exc = None
    wout = np.zeros(0)
    zout = None
    linfo = validate_args(srname.lower(), ab=ab, bb=bb)
    if linfo == 0:
        n = ab.shape[1]
        jobz = "V" if _want(z) else "N"
        wout, zv, linfo = sbgv(ab, bb, n, jobz=jobz, uplo=uplo)
        if linfo > n:
            exc = NotPositiveDefinite(srname, linfo - n)
        elif linfo > 0:
            exc = NoConvergence(srname, linfo)
        if _want(z):
            zout = _store(z if isinstance(z, np.ndarray) else None, zv)
        if w is not None:
            w[:] = wout
            wout = w
    _report(srname, linfo, info, exc)
    return (wout, zout) if _want(z) else wout


@backend_aware
def la_sbgv(ab, bb, w=None, uplo: str = "U", z=None,
            info: Info | None = None):
    """Band generalized symmetric-definite driver (paper ``LA_SBGV``)."""
    return _band_gv("LA_SBGV", ab, bb, w, uplo, z, info)


@backend_aware
def la_hbgv(ab, bb, w=None, uplo: str = "U", z=None,
            info: Info | None = None):
    """Band generalized Hermitian-definite driver (paper ``LA_HBGV``)."""
    return _band_gv("LA_HBGV", ab, bb, w, uplo, z, info)


@backend_aware
def la_gegs(a: np.ndarray, b: np.ndarray, vsl=None, vsr=None,
            info: Info | None = None):
    """Generalized Schur factorization of a nonsymmetric pencil (A, B)
    (paper: ``CALL LA_GEGS( A, B, α=alpha, BETA=beta, VSL=vsl,
    VSR=vsr, INFO=info )``).

    ``a``/``b`` are replaced by the (complex) triangular Schur pair; the
    generalized eigenvalues are the returned ``(alpha, beta)`` pairs (the
    paper's ``α ::= ALPHAR, ALPHAI | ALPHA`` collapses to complex
    ``alpha``).  Returns ``(alpha, beta[, vsl][, vsr])``.
    """
    srname = "LA_GEGS"
    exc = None
    linfo = validate_args("la_gegs", a=a, b=b)
    if linfo:
        _report(srname, linfo, info)
        return np.zeros(0, complex), np.zeros(0, complex)
    alpha, beta, s, t, q, z, linfo = gegs(a, b)
    if np.iscomplexobj(a):
        a[...] = s
        b[...] = t
    if linfo > 0:
        exc = NoConvergence(srname, linfo)
    out = [alpha, beta]
    if _want(vsl):
        out.append(_store(vsl if isinstance(vsl, np.ndarray) else None, q))
    if _want(vsr):
        out.append(_store(vsr if isinstance(vsr, np.ndarray) else None, z))
    if not _want(vsl) and not _want(vsr):
        out.extend([s, t])
    _report(srname, linfo, info, exc)
    return tuple(out)


@backend_aware
def la_gegv(a: np.ndarray, b: np.ndarray, vl=None, vr=None,
            info: Info | None = None):
    """Generalized eigenvalues (and optionally eigenvectors) of a pair of
    nonsymmetric matrices (paper: ``CALL LA_GEGV( A, B, α=alpha,
    BETA=beta, VL=vl, VR=vr, INFO=info )``).

    Returns ``(alpha, beta[, vl][, vr])``; eigenvalue *i* is
    ``alpha[i]/beta[i]`` (``beta ≈ 0`` flags an infinite eigenvalue).
    """
    srname = "LA_GEGV"
    exc = None
    linfo = validate_args("la_gegv", a=a, b=b)
    if linfo:
        _report(srname, linfo, info)
        return np.zeros(0, complex), np.zeros(0, complex)
    alpha, beta, vlv, vrv, linfo = gegv(a, b, want_vl=_want(vl),
                                        want_vr=_want(vr))
    if linfo > 0:
        exc = NoConvergence(srname, linfo)
    out = [alpha, beta]
    if _want(vl):
        out.append(_store(vl if isinstance(vl, np.ndarray) else None, vlv))
    if _want(vr):
        out.append(_store(vr if isinstance(vr, np.ndarray) else None, vrv))
    _report(srname, linfo, info, exc)
    return tuple(out)


@backend_aware
def la_ggsvd(a: np.ndarray, b: np.ndarray, info: Info | None = None):
    """Computes the generalized singular value decomposition
    (paper: ``CALL LA_GGSVD( A, B, ALPHA, BETA, K=k, L=l, U=u, V=v,
    Q=q, INFO=info )``).

    Returns ``(alpha, beta, k, l, u, v, q, r)`` with
    ``A = U·D1·R·Qᴴ``, ``B = V·D2·R·Qᴴ`` (see
    :func:`repro.lapack77.gsvd.ggsvd` for the D1/D2 layout).
    """
    srname = "LA_GGSVD"
    exc = None
    linfo = validate_args("la_ggsvd", a=a, b=b)
    if linfo:
        _report(srname, linfo, info)
        return None
    alpha, beta, k, l, u, v, q, r, linfo = ggsvd(a, b)
    if linfo > 0:
        exc = NoConvergence(srname, linfo)
    _report(srname, linfo, info, exc)
    return alpha, beta, k, l, u, v, q, r
