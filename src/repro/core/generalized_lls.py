"""Driver Routines for generalized Linear Least Squares Problems
(Appendix G, §4): the LSE and GLM problems."""

from __future__ import annotations

import numpy as np

from ..errors import Info
from ..backends import backend_aware
from ..backends.kernels import gglse, ggglm
from ..specs import validate_args
from .auxmod import _report

__all__ = ["la_gglse", "la_ggglm"]


@backend_aware
def la_gglse(a: np.ndarray, b: np.ndarray, c: np.ndarray, d: np.ndarray,
             x: np.ndarray | None = None,
             info: Info | None = None) -> np.ndarray:
    """Solves the linear equality-constrained least squares (LSE)
    problem: minimize ``‖c − A x‖₂`` subject to ``B x = d``
    (paper: ``CALL LA_GGLSE( A, B, C, D, X, INFO=info )``).

    ``a`` (m×n), ``b`` (p×n) with ``p ≤ n ≤ m+p``; all inputs are
    destroyed.  The solution is returned (and written into ``x`` when
    supplied).
    """
    srname = "LA_GGLSE"
    linfo = validate_args("la_gglse", a=a, b=b, c=c, d=d, x=x)
    if linfo == 0:
        sol, linfo = gglse(a, b, c, d)
        if x is not None:
            x[:] = sol
        _report(srname, linfo, info)
        return sol
    _report(srname, linfo, info)
    return x


@backend_aware
def la_ggglm(a: np.ndarray, b: np.ndarray, d: np.ndarray,
             x: np.ndarray | None = None, y: np.ndarray | None = None,
             info: Info | None = None):
    """Solves a general Gauss–Markov linear model (GLM) problem:
    minimize ``‖y‖₂`` subject to ``d = A x + B y``
    (paper: ``CALL LA_GGGLM( A, B, D, X, Y, INFO=info )``).

    ``a`` (n×m), ``b`` (n×p) with ``m ≤ n ≤ m+p``.  Returns ``(x, y)``.
    """
    srname = "LA_GGGLM"
    linfo = validate_args("la_ggglm", a=a, b=b, d=d, x=x, y=y)
    if linfo == 0:
        xs, ys, linfo = ggglm(a, b, d)
        if x is not None:
            x[:] = xs
        if y is not None:
            y[:] = ys
        _report(srname, linfo, info)
        return xs, ys
    _report(srname, linfo, info)
    return x, y
