"""Driver Routines for generalized Linear Least Squares Problems
(Appendix G, §4): the LSE and GLM problems."""

from __future__ import annotations

import numpy as np

from ..errors import Info, erinfo
from ..backends import backend_aware
from ..backends.kernels import gglse, ggglm

__all__ = ["la_gglse", "la_ggglm"]


@backend_aware
def la_gglse(a: np.ndarray, b: np.ndarray, c: np.ndarray, d: np.ndarray,
             x: np.ndarray | None = None,
             info: Info | None = None) -> np.ndarray:
    """Solves the linear equality-constrained least squares (LSE)
    problem: minimize ``‖c − A x‖₂`` subject to ``B x = d``
    (paper: ``CALL LA_GGLSE( A, B, C, D, X, INFO=info )``).

    ``a`` (m×n), ``b`` (p×n) with ``p ≤ n ≤ m+p``; all inputs are
    destroyed.  The solution is returned (and written into ``x`` when
    supplied).
    """
    srname = "LA_GGLSE"
    linfo = 0
    if not isinstance(a, np.ndarray) or a.ndim != 2:
        linfo = -1
    elif not isinstance(b, np.ndarray) or b.ndim != 2 \
            or b.shape[1] != a.shape[1] \
            or not (b.shape[0] <= a.shape[1] <= a.shape[0] + b.shape[0]):
        linfo = -2
    elif not isinstance(c, np.ndarray) or c.shape[0] != a.shape[0]:
        linfo = -3
    elif not isinstance(d, np.ndarray) or d.shape[0] != b.shape[0]:
        linfo = -4
    elif x is not None and x.shape[0] != a.shape[1]:
        linfo = -5
    if linfo == 0:
        sol, linfo = gglse(a, b, c, d)
        if x is not None:
            x[:] = sol
        erinfo(linfo, srname, info)
        return sol
    erinfo(linfo, srname, info)
    return x


@backend_aware
def la_ggglm(a: np.ndarray, b: np.ndarray, d: np.ndarray,
             x: np.ndarray | None = None, y: np.ndarray | None = None,
             info: Info | None = None):
    """Solves a general Gauss–Markov linear model (GLM) problem:
    minimize ``‖y‖₂`` subject to ``d = A x + B y``
    (paper: ``CALL LA_GGGLM( A, B, D, X, Y, INFO=info )``).

    ``a`` (n×m), ``b`` (n×p) with ``m ≤ n ≤ m+p``.  Returns ``(x, y)``.
    """
    srname = "LA_GGGLM"
    linfo = 0
    if not isinstance(a, np.ndarray) or a.ndim != 2:
        linfo = -1
    elif not isinstance(b, np.ndarray) or b.ndim != 2 \
            or b.shape[0] != a.shape[0] \
            or not (a.shape[1] <= a.shape[0] <= a.shape[1] + b.shape[1]):
        linfo = -2
    elif not isinstance(d, np.ndarray) or d.shape[0] != a.shape[0]:
        linfo = -3
    elif x is not None and x.shape[0] != a.shape[1]:
        linfo = -4
    elif y is not None and y.shape[0] != b.shape[1]:
        linfo = -5
    if linfo == 0:
        xs, ys, linfo = ggglm(a, b, d)
        if x is not None:
            x[:] = xs
        if y is not None:
            y[:] = ys
        erinfo(linfo, srname, info)
        return xs, ys
    erinfo(linfo, srname, info)
    return x, y
