"""Dispatching kernel proxies — the drivers' import surface.

One :class:`KernelProxy` is exported per name in the lapack77 catalogue.
Calling a proxy resolves ``(routine, dtype-of-first-array-argument)``
through the backend registry at call time and invokes the winning
kernel, so ``from ..backends.kernels import gesv`` behaves exactly like
the direct substrate import it replaces while honouring the backend
selection in effect at each call.

Since the resilience subsystem landed, the invocation itself goes
through :func:`repro.resilience.dispatch.call`, which layers retry,
accelerated→reference escalation, circuit breaking, and chaos injection
over the resolved kernel.  The registry's ``resolve`` and
``get_backend_name`` are handed in as parameters so the resilience
package never has to import this one (avoiding an import cycle).  The
reference-served, un-chaosed call keeps a near-zero-overhead fast path.

lalint treats these imports as substrate imports: LA004/LA006 see a
dispatched call as "the lapack77 call", and LA008 requires driver
modules to import kernels from here rather than from ``repro.lapack77``.
"""

from __future__ import annotations

import numpy as np

from .. import lapack77
from ..resilience import dispatch as _dispatch
from . import get_backend_name, resolve


class KernelProxy:
    """Late-binding stand-in for one substrate routine."""

    def __init__(self, routine):
        self.routine = routine
        # Synthetic routines (the batched ``*_stack`` entry points) have
        # no lapack77 counterpart to borrow a docstring from.
        base = getattr(lapack77, routine, None)
        self.__doc__ = base.__doc__ if base is not None else None

    def __call__(self, *args, **kwargs):
        dtype = None
        for value in args:
            if isinstance(value, np.ndarray):
                dtype = value.dtype
                break
        return _dispatch.call(self.routine, dtype, args, kwargs,
                              resolve, get_backend_name)

    def __repr__(self):
        return "<dispatched lapack77 kernel {!r}>".format(self.routine)


for _name in lapack77.__all__:
    globals()[_name] = KernelProxy(_name)
del _name

__all__ = ["KernelProxy"] + list(lapack77.__all__)
