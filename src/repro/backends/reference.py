"""The ``reference`` substrate: today's pure-NumPy lapack77 kernels.

Built straight from the explicit export catalogue in
``repro/lapack77/__init__.py`` — every public kernel is served, for any
dtype the kernel itself accepts.  This backend is always registered and
is the fallback target for every other substrate.
"""

from __future__ import annotations

from .. import lapack77


def build_reference_backend():
    from . import Backend
    table = {name: getattr(lapack77, name) for name in lapack77.__all__}
    return Backend("reference", table)
