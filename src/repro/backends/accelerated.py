"""The ``accelerated`` substrate: adapters over ``scipy.linalg.lapack``.

Each adapter presents the exact Python signature, in-place semantics and
``info`` conventions of its reference twin in :mod:`repro.lapack77`, so
the :mod:`repro.core` drivers cannot tell the substrates apart:

* arrays the reference kernel overwrites (factors, solutions) are copied
  back from SciPy's returned copies;
* SciPy's LU pivots are already 0-based like ours; the Bunch–Kaufman
  ``ipiv`` from ``?sysv``/``?hesv`` is 1-based for interchanges and is
  shifted down (negative 2x2-block entries already match our encoding);
* on a positive ``info`` the right-hand side is left unsolved, matching
  LAPACK (and the reference kernels);
* argument errors raise through :func:`repro.errors.xerbla` with the
  reference kernels' positions.

Only simple dense/band/tridiagonal drivers plus the dense symmetric
eigensolvers, SVD and GELS are adapted.  The computational kernels the
expert drivers build on (``sytrf``/``sytrs``, condition estimators,
refinement loops) stay on the reference substrate — their factored forms
and ``ipiv`` encodings would otherwise mix between substrates mid-driver.

``build_accelerated_backend`` returns ``None`` when SciPy is absent; the
registry then leaves the backend unregistered and selection degrades to
``reference`` per routine.
"""

from __future__ import annotations

import numpy as np

from ..errors import xerbla

try:
    from scipy.linalg import lapack as _scipy_lapack
except Exception:  # pragma: no cover - exercised on the no-SciPy CI leg
    _scipy_lapack = None

#: NumPy dtype char -> LAPACK precision prefix.
_PREFIX = {"f": "s", "d": "d", "F": "c", "D": "z"}


def _flavor(name, dtype):
    """The typed SciPy wrapper (e.g. ``dgesv``) for ``name``/``dtype``."""
    return getattr(_scipy_lapack, _PREFIX[np.dtype(dtype).char] + name)


def _as2d(b):
    """View ``b`` as a 2-D right-hand-side block (LAPACK's NRHS shape)."""
    return b if b.ndim == 2 else b[:, None]


def _bk_ipiv(piv):
    """Map SciPy's 1-based Bunch-Kaufman interchange indices onto the
    reference kernels' 0-based encoding (negatives already agree)."""
    piv = piv.astype(np.int64)
    return np.where(piv > 0, piv - 1, piv)


def _nan_diag_info(diag):
    """LAPACK's ``DISNAN`` pivot check, which some SciPy builds omit:
    the 1-based index of the first NaN factor diagonal, or 0.  Infinite
    pivots pass (``AJJ <= 0 .OR. DISNAN(AJJ)``) and propagate."""
    bad = np.flatnonzero(np.isnan(diag))
    return int(bad[0]) + 1 if bad.size else 0


def gesv(a, b):
    n = a.shape[0]
    if a.shape[1] != n:
        xerbla("GESV", 1, "matrix must be square")
    if b.shape[0] != n:
        xerbla("GESV", 2, "dimension mismatch between A and B")
    bm = _as2d(b)
    lu, piv, x, info = _flavor("gesv", a.dtype)(a, bm)
    a[...] = lu
    if info == 0:
        bm[...] = x
    return piv.astype(np.int64), int(info)


def gesv_stack(a, b):
    """Natively batched ``gesv``: one seam crossing for a whole
    ``(batch, n, n)`` / ``(batch, n, nrhs)`` stack.

    The typed SciPy wrapper is resolved once and the scalar adapter's
    per-call overhead (flavor lookup, shape checks) is hoisted out of
    the loop; each slice then runs the very same ``?gesv`` call as a
    scalar :func:`gesv`, so per-problem factors, pivots and info codes
    stay bit-identical to the scalar path (the parity suite pins this).
    """
    n = a.shape[1]
    if a.shape[2] != n:
        xerbla("GESV_STACK", 1, "matrices must be square")
    if b.shape[1] != n:
        xerbla("GESV_STACK", 2, "dimension mismatch between A and B")
    f = _flavor("gesv", a.dtype)
    batch = a.shape[0]
    pivs = np.empty((batch, n), dtype=np.int64)
    infos = np.empty(batch, dtype=np.int64)
    for k in range(batch):
        ak = a[k]
        bk = _as2d(b[k])
        lu, piv, x, info = f(ak, bk)
        ak[...] = lu
        if info == 0:
            bk[...] = x
        pivs[k] = piv
        infos[k] = info
    return pivs, infos


def getrf(a):
    lu, piv, info = _flavor("getrf", a.dtype)(a)
    a[...] = lu
    return piv.astype(np.int64), int(info)


def getrs(a, ipiv, b, trans="N"):
    t = trans.upper()
    if t not in ("N", "T", "C"):
        xerbla("GETRS", 4, f"trans={trans!r}")
    bm = _as2d(b)
    x, info = _flavor("getrs", a.dtype)(
        a, ipiv, bm, trans={"N": 0, "T": 1, "C": 2}[t])
    bm[...] = x
    return int(info)


def posv(a, b, uplo="U"):
    if uplo.upper() not in ("U", "L"):
        xerbla("POSV", 3, f"uplo={uplo!r}")
    bm = _as2d(b)
    c, x, info = _flavor("posv", a.dtype)(
        a, bm, lower=uplo.upper() == "L")
    a[...] = c
    info = int(info)
    if info == 0:
        info = _nan_diag_info(np.diagonal(c).real)
    if info == 0:
        bm[...] = x
    return info


def posv_stack(a, b, uplo="U"):
    """Natively batched ``posv``: one seam crossing per SPD stack.

    Mirrors :func:`gesv_stack` — the typed wrapper is resolved once and
    each ``(n, n)`` / ``(n, nrhs)`` slice runs the very same ``?posv``
    call as the scalar :func:`posv` adapter (including the NaN-diagonal
    pivot check and the unsolved-B-on-failure contract), so per-problem
    factors and info codes stay bit-identical to the scalar path.
    """
    n = a.shape[1]
    if a.shape[2] != n:
        xerbla("POSV_STACK", 1, "matrices must be square")
    if b.shape[1] != n:
        xerbla("POSV_STACK", 2, "dimension mismatch between A and B")
    if uplo.upper() not in ("U", "L"):
        xerbla("POSV_STACK", 3, f"uplo={uplo!r}")
    f = _flavor("posv", a.dtype)
    lower = uplo.upper() == "L"
    batch = a.shape[0]
    infos = np.empty(batch, dtype=np.int64)
    for k in range(batch):
        ak = a[k]
        bk = _as2d(b[k])
        c, x, info = f(ak, bk, lower=lower)
        ak[...] = c
        info = int(info)
        if info == 0:
            info = _nan_diag_info(np.diagonal(c).real)
        if info == 0:
            bk[...] = x
        infos[k] = info
    return infos


def gels_stack(a, b, trans="N"):
    """Natively batched ``gels`` over a least-squares problem stack.

    Same hoisting as :func:`gesv_stack`: one typed-wrapper resolution
    and one trans validation for the whole ``(batch, m, n)`` stack, with
    each slice running the scalar adapter's exact ``?gels`` call
    (complex ``T`` promoted to ``C`` the same way).
    """
    t = trans.upper()
    if t not in ("N", "T", "C"):
        xerbla("GELS_STACK", 1, f"trans={trans!r}")
    if np.iscomplexobj(a) and t == "T":
        t = "C"
    m, n = a.shape[1], a.shape[2]
    if b.shape[1] < max(m, n):
        xerbla("GELS_STACK", 3, "b must have max(m, n) rows")
    f = _flavor("gels", a.dtype)
    batch = a.shape[0]
    infos = np.empty(batch, dtype=np.int64)
    for k in range(batch):
        ak = a[k]
        bk = _as2d(b[k])
        lqr, x, info = f(ak, bk, trans=t)
        ak[...] = lqr
        bk[...] = x
        infos[k] = info
    return infos


def trtrs(a, b, uplo="U", trans="N", diag="N"):
    t = trans.upper()
    if uplo.upper() not in ("U", "L"):
        xerbla("TRTRS", 1, f"uplo={uplo!r}")
    if t not in ("N", "T", "C"):
        xerbla("TRTRS", 2, f"trans={trans!r}")
    if diag.upper() not in ("N", "U"):
        xerbla("TRTRS", 3, f"diag={diag!r}")
    n = a.shape[0]
    if b.shape[0] != n:
        xerbla("TRTRS", 5, "dimension mismatch")
    bm = _as2d(b)
    x, info = _flavor("trtrs", a.dtype)(
        a, bm, lower=uplo.upper() == "L",
        trans={"N": 0, "T": 1, "C": 2}[t],
        unitdiag=diag.upper() == "U")
    info = int(info)
    if info == 0:
        bm[...] = x
    return info


def potrf(a, uplo="U"):
    if uplo.upper() not in ("U", "L"):
        xerbla("POTRF", 2, f"uplo={uplo!r}")
    # clean=0: leave the unreferenced triangle untouched, like LAPACK.
    c, info = _flavor("potrf", a.dtype)(
        a, lower=uplo.upper() == "L", clean=0)
    a[...] = c
    info = int(info)
    if info == 0:
        info = _nan_diag_info(np.diagonal(c).real)
    return info


def potrs(a, b, uplo="U"):
    if uplo.upper() not in ("U", "L"):
        xerbla("POTRS", 3, f"uplo={uplo!r}")
    bm = _as2d(b)
    x, info = _flavor("potrs", a.dtype)(
        a, bm, lower=uplo.upper() == "L")
    bm[...] = x
    return int(info)


def sysv(a, b, uplo="U"):
    if uplo.upper() not in ("U", "L"):
        xerbla("SYSV", 3, f"uplo={uplo!r}")
    bm = _as2d(b)
    udut, piv, x, info = _flavor("sysv", a.dtype)(
        a, bm, lower=uplo.upper() == "L")
    a[...] = udut
    if info == 0:
        bm[...] = x
    return _bk_ipiv(piv), int(info)


def hesv(a, b, uplo="U"):
    if uplo.upper() not in ("U", "L"):
        xerbla("HESV", 3, f"uplo={uplo!r}")
    bm = _as2d(b)
    udut, piv, x, info = _flavor("hesv", a.dtype)(
        a, bm, lower=uplo.upper() == "L")
    a[...] = udut
    if info == 0:
        bm[...] = x
    return _bk_ipiv(piv), int(info)


def gtsv(dl, d, du, b):
    bm = _as2d(b)
    dl2, d2, du2, x, info = _flavor("gtsv", d.dtype)(dl, d, du, bm)
    dl[...] = dl2
    d[...] = d2
    du[...] = du2
    if info == 0:
        bm[...] = x
    return int(info)


def ptsv(d, e, b):
    bm = _as2d(b)
    # LAPACK's D is REAL even in the complex flavors.
    d_in = np.ascontiguousarray(d.real)
    d2, e2, x, info = _flavor("ptsv", e.dtype)(d_in, e, bm)
    d[...] = d2
    e[...] = e2
    if info == 0:
        bm[...] = x
    return int(info)


def gbsv(ab, kl, ku, b):
    bm = _as2d(b)
    lub, piv, x, info = _flavor("gbsv", ab.dtype)(kl, ku, ab, bm)
    ab[...] = lub
    if info == 0:
        bm[...] = x
    return piv.astype(np.int64), int(info)


def pbsv(ab, b, uplo="U"):
    if uplo.upper() not in ("U", "L"):
        xerbla("PBSV", 3, f"uplo={uplo!r}")
    bm = _as2d(b)
    c, x, info = _flavor("pbsv", ab.dtype)(
        ab, bm, lower=uplo.upper() == "L")
    ab[...] = c
    info = int(info)
    if info == 0:
        diag = c[0] if uplo.upper() == "L" else c[-1]
        info = _nan_diag_info(diag.real)
    if info == 0:
        bm[...] = x
    return info


def _dense_eig(srname, name, a, jobz, uplo):
    if jobz.upper() not in ("N", "V"):
        xerbla(srname, 1, f"jobz={jobz!r}")
    if uplo.upper() not in ("U", "L"):
        xerbla(srname, 2, f"uplo={uplo!r}")
    wantz = jobz.upper() == "V"
    w, v, info = _flavor(name, a.dtype)(
        a, compute_v=1 if wantz else 0, lower=uplo.upper() == "L")
    if wantz and info == 0:
        a[...] = v
    return w, int(info)


def syev(a, jobz="N", uplo="U"):
    return _dense_eig("SYEV", "syev", a, jobz, uplo)


def heev(a, jobz="N", uplo="U"):
    return _dense_eig("HEEV", "heev", a, jobz, uplo)


def gesvd(a, jobu="N", jobvt="N", superdiag=None):
    # SciPy's gesvd does not expose the bidiagonal work array; the
    # superdiagonal output is defined (all zero) only on convergence,
    # and LAPACK overwrites it before any info > 0 return anyway.
    if superdiag is not None:
        superdiag[:] = 0
    ju, jvt = jobu.upper(), jobvt.upper()
    if ju not in ("N", "S", "A"):
        xerbla("GESVD", 2, f"jobu={jobu!r}")
    if jvt not in ("N", "S", "A"):
        xerbla("GESVD", 3, f"jobvt={jobvt!r}")
    m, n = a.shape
    k = min(m, n)
    rdtype = np.float32 if a.dtype.char in "fF" else np.float64
    if k == 0:
        s = np.zeros(0, dtype=rdtype)
        u = np.eye(m, dtype=a.dtype) if ju == "A" else None
        vt = np.eye(n, dtype=a.dtype) if jvt == "A" else None
        return s, u, vt, 0
    f = _flavor("gesvd", a.dtype)
    if ju == "N" and jvt == "N":
        _, s, _, info = f(a, compute_uv=0)
        return s, None, None, int(info)
    full = 1 if "A" in (ju, jvt) else 0
    u, s, vt, info = f(a, compute_uv=1, full_matrices=full)
    u_out = None if ju == "N" else (u if ju == "A" else u[:, :k])
    vt_out = None if jvt == "N" else (vt if jvt == "A" else vt[:k, :])
    return s, u_out, vt_out, int(info)


def gels(a, b, trans="N"):
    t = trans.upper()
    if t not in ("N", "T", "C"):
        xerbla("GELS", 1, f"trans={trans!r}")
    if np.iscomplexobj(a) and t == "T":
        t = "C"
    m, n = a.shape
    bm = _as2d(b)
    if bm.shape[0] < max(m, n):
        xerbla("GELS", 3, "b must have max(m, n) rows")
    lqr, x, info = _flavor("gels", a.dtype)(a, bm, trans=t)
    a[...] = lqr
    bm[...] = x
    return int(info)


#: routine name -> accepted NumPy dtype chars (default "fdFD").
_DTYPES = {
    "syev": "fd",
    "heev": "FD",
    "hesv": "FD",
}

_ADAPTERS = (gesv, gesv_stack, getrf, getrs, posv, posv_stack, trtrs,
             potrf, potrs, sysv, hesv, gtsv, ptsv, gbsv, pbsv, syev,
             heev, gesvd, gels, gels_stack)


def build_accelerated_backend():
    if _scipy_lapack is None:
        return None
    from . import Backend
    table = {fn.__name__: fn for fn in _ADAPTERS}
    chars = {name: _DTYPES.get(name, "fdFD") for name in table}
    return Backend("accelerated", table, dtype_chars=chars)
