"""Pluggable compute backends under the F90_LAPACK drivers.

The paper's two-module design (§2, Example 3) keeps ``F77_LAPACK`` — the
explicit-argument-list layer — distinct from the ``F90_LAPACK`` drivers
precisely so the substrate can be swapped.  This package makes that
seam explicit: a registry resolves ``(routine, dtype)`` to a concrete
kernel, and the :mod:`repro.core` drivers dispatch through it instead of
importing :mod:`repro.lapack77` directly (lalint rule LA008 enforces
this).

Two substrates are known:

``reference``
    Today's pure-NumPy :mod:`repro.lapack77` kernels, registered from
    the package's explicit export catalogue.  Always present.
``accelerated``
    Thin adapters over ``scipy.linalg.lapack`` with LAPACK-style info
    translation (:mod:`repro.backends.accelerated`).  Auto-registered
    only when SciPy imports; selecting it without SciPy degrades
    gracefully per routine.

Selection mirrors :mod:`repro.policy`: a process-global knob
(:func:`set_backend`, also initialised from the ``REPRO_BACKEND``
environment variable), a context-manager override
(``with use_backend("accelerated"): ...``), and a per-call ``backend=``
escape hatch on every ``la_*`` driver (via :func:`backend_aware`).
When the selected backend cannot serve a routine the call falls back to
``reference`` and a :class:`~repro.errors.BackendFallbackWarning` is
announced — rate-limited to once per (backend, routine) pair per
resilience-policy ``warning_window``, with the next announcement after a
window carrying how many identical warnings were suppressed meanwhile.

Fault injection (:mod:`repro.faults`) hooks into the reference kernels;
while any fault is armed, :func:`resolve` routes every dispatch to
``reference`` so fault-injection tests stay backend-agnostic.
"""

from __future__ import annotations

import functools
import os
import warnings
from contextlib import contextmanager

import numpy as np

from .. import faults
from .._sync import STATE_LOCK
from ..errors import BackendFallbackWarning
from ..resilience.config import get_resilience
from ..resilience.ratelimit import RateLimiter

__all__ = [
    "Backend",
    "KNOWN_BACKENDS",
    "register_backend",
    "unregister_backend",
    "available_backends",
    "get_backend",
    "get_backend_name",
    "set_backend",
    "use_backend",
    "resolve",
    "bound_kernel",
    "driver_kernel",
    "backend_aware",
    "reset_fallback_announcements",
    "on_backend_switch",
    "BackendFallbackWarning",
]

#: Backend names that may always be *selected*, even when the substrate
#: failed to register (selection then degrades to ``reference`` per
#: routine, with a warning).  Unknown names raise ``ValueError``.
KNOWN_BACKENDS = ("reference", "accelerated")

_REGISTRY: dict[str, "Backend"] = {}
_SELECTED = "reference"
_ANNOUNCED = RateLimiter()


class Backend:
    """A named table mapping routine names to concrete kernels.

    ``dtype_chars`` optionally restricts individual routines to NumPy
    dtype characters (e.g. ``{"syev": "fd"}``); routines absent from the
    map accept any dtype the kernel itself accepts.
    """

    def __init__(self, name, table, dtype_chars=None):
        self.name = name
        self._table = dict(table)
        self._dtype_chars = dict(dtype_chars or {})

    def routines(self):
        """The routine names this backend can serve (any dtype)."""
        return frozenset(self._table)

    def supports(self, routine, dtype=None):
        """True when ``routine`` (for ``dtype``, if given) is served."""
        if routine not in self._table:
            return False
        if dtype is None:
            return True
        chars = self._dtype_chars.get(routine)
        return chars is None or np.dtype(dtype).char in chars

    def get(self, routine, dtype=None):
        """The kernel for ``routine``, or None when unsupported."""
        if not self.supports(routine, dtype):
            return None
        return self._table[routine]

    def extend(self, table, dtype_chars=None):
        """Add (or overwrite) routine entries after registration — the
        hook :mod:`repro.backends.batched` uses to graft the synthetic
        ``*_stack`` entry points onto every registered substrate."""
        self._table.update(table)
        if dtype_chars:
            self._dtype_chars.update(dtype_chars)

    def __repr__(self):
        return "Backend({!r}, {} routines)".format(self.name,
                                                   len(self._table))


def register_backend(backend, replace=False):
    """Add ``backend`` to the registry (``replace=True`` to overwrite)."""
    with STATE_LOCK:
        if backend.name in _REGISTRY and not replace:
            raise ValueError("backend {!r} already registered"
                             .format(backend.name))
        _REGISTRY[backend.name] = backend


def unregister_backend(name):
    """Remove a registered backend (test scaffolding for synthetic
    substrates).  ``reference`` cannot be removed; the selection falls
    back to ``reference`` if it pointed at the removed backend."""
    global _SELECTED
    if name == "reference":
        raise ValueError("the reference backend cannot be unregistered")
    with STATE_LOCK:
        _REGISTRY.pop(name, None)
        if _SELECTED == name:
            _SELECTED = "reference"


def available_backends():
    """Names of the registered (importable) backends, reference first."""
    with STATE_LOCK:
        names = tuple(_REGISTRY)
    return tuple(sorted(names, key=lambda n: (n != "reference", n)))


def get_backend(name):
    """The registered :class:`Backend` called ``name``."""
    with STATE_LOCK:
        backend = _REGISTRY.get(name)
    if backend is None:
        raise ValueError("no backend registered under {!r}; available: "
                         "{}".format(name, ", ".join(available_backends())))
    return backend


def _validate(name):
    name = str(name).lower()
    with STATE_LOCK:
        known = name in KNOWN_BACKENDS or name in _REGISTRY
        if not known:
            raise ValueError(
                "unknown backend {!r}; known: {}".format(
                    name, ", ".join(sorted(set(KNOWN_BACKENDS) |
                                           set(_REGISTRY)))))
    return name


def get_backend_name():
    """Name of the process-global backend selection."""
    return _SELECTED  # laflow: benign-race — atomic snapshot of one name binding


#: Callbacks fired after every *effective* backend switch, as
#: ``hook(previous, selected)``.  The dispatch front end registers its
#: structure-cache invalidation here; keeping a hook list (instead of a
#: direct import) avoids a backends -> dispatch_front import cycle.
_SWITCH_HOOKS: list = []


def on_backend_switch(hook):
    """Register ``hook(previous, selected)`` to run after each effective
    backend switch; returns ``hook`` (usable as a decorator)."""
    with STATE_LOCK:
        if hook not in _SWITCH_HOOKS:
            _SWITCH_HOOKS.append(hook)
    return hook


def _switched(previous, selected, durable):
    """Post-switch housekeeping, run on every *effective* change.

    The registered switch hooks always fire — the dispatch front end's
    structure cache must drop factors computed by the departed substrate
    no matter how briefly the selection changed.  Reopening the departed
    backend's rate-limited warning windows (so a reroute after the
    switch re-announces once instead of staying suppressed by pre-switch
    history) happens only on *durable* switches — a direct
    :func:`set_backend` or a :func:`use_backend` entry, not the
    context manager's restore: the per-call ``backend=`` escape hatch
    round-trips the selection on every driver call, and resetting on
    each restore would turn one suppressed warning into a flood."""
    if durable:
        _ANNOUNCED.reset(where=lambda key: key[0] == previous)
        from ..resilience import dispatch as _dispatch
        _dispatch._OPEN_WARNINGS.reset(
            where=lambda key: key[0] == previous)
    with STATE_LOCK:
        hooks = list(_SWITCH_HOOKS)
    for hook in hooks:       # outside the lock: hooks may take it
        hook(previous, selected)


def _select(name, durable):
    global _SELECTED
    validated = _validate(name)
    with STATE_LOCK:
        previous = _SELECTED
        _SELECTED = validated  # laflow: atomic-split — each swap is atomic; use_backend's set/restore are deliberately separate swaps
    if previous != validated:
        _switched(previous, validated, durable)
    return previous


def set_backend(name):
    """Select the process-global backend; returns the previous name.

    ``name`` must be a known backend (``reference`` or ``accelerated``).
    Selecting a known-but-unregistered backend (e.g. ``accelerated``
    without SciPy) is allowed: every dispatch then falls back to
    ``reference`` and announces a :class:`BackendFallbackWarning`.

    An *effective* switch (``name`` differs from the current selection)
    also invalidates per-array caches layered over the seam (the
    dispatch front end's structure cache) and resets the departed
    backend's rate-limited warning windows — see :func:`_switched`.
    """
    return _select(name, durable=True)


@contextmanager
def use_backend(name):
    """Context manager: select ``name`` for the duration of the block.

    Entering counts as a durable switch (warning windows for the
    departed backend reopen); the restore on exit runs only the cache-
    invalidation hooks — see :func:`_switched`.
    """
    previous = _select(name, durable=True)
    try:
        yield
    finally:
        _select(previous, durable=False)


def reset_fallback_announcements():
    """Forget the fallback-warning rate-limit history (so tests can
    assert the warning fires again immediately)."""
    _ANNOUNCED.reset()


def _announce(name, routine, reason):
    emit, suppressed = _ANNOUNCED.tick(
        (name, routine), window=get_resilience().warning_window)
    if not emit:
        return
    message = ("backend {!r} cannot serve routine {!r} ({}); falling "
               "back to the reference kernel".format(name, routine, reason))
    if suppressed:
        message += (" ({} identical warnings suppressed in the last "
                    "window)".format(suppressed))
    warnings.warn(message, BackendFallbackWarning, stacklevel=4)


def resolve(routine, dtype=None, backend=None):
    """Resolve ``(routine, dtype)`` to a concrete kernel.

    ``backend`` overrides the process-global selection for this lookup.
    Resolution order: armed faults force ``reference`` (the fault hooks
    live in the reference kernels); otherwise the selected backend is
    consulted and, when it cannot serve the routine/dtype, the call
    falls back to ``reference`` with a once-per-pair warning.
    """
    name = _validate(backend) if backend is not None else _SELECTED  # laflow: benign-race — snapshot read; a racing switch serves the prior backend for one call
    reference = _REGISTRY["reference"]  # laflow: benign-race — reference entry is registered once at import and never replaced
    if faults.active():
        kernel = reference.get(routine)
        if kernel is None:
            raise LookupError("unknown routine {!r}".format(routine))
        return kernel
    if name != "reference":
        chosen = _REGISTRY.get(name)  # laflow: benign-race — snapshot read; Backend objects are immutable once registered
        if chosen is None:
            _announce(name, routine, "backend not registered")
        else:
            kernel = chosen.get(routine, dtype)
            if kernel is not None:
                return kernel
            if routine in chosen.routines():
                _announce(name, routine,
                          "dtype {} unsupported".format(np.dtype(dtype)))
            else:
                _announce(name, routine, "routine not provided")
    kernel = reference.get(routine, dtype)
    if kernel is None:
        raise LookupError("unknown routine {!r}".format(routine))
    return kernel


def bound_kernel(driver):
    """The backend-kernel name a ``la_*`` driver is bound to, read from
    its :mod:`repro.specs` registration.

    Raises ``LookupError`` for a driver with no spec or with no kernel
    binding (the spec layer marks pure-wrapper routines that way).
    """
    from ..specs import SPECS
    spec = SPECS.get(driver)
    if spec is None:
        raise LookupError("no driver spec registered for {!r}"
                          .format(driver))
    if spec.kernel is None:
        raise LookupError("driver {!r} has no kernel binding"
                          .format(driver))
    return spec.kernel


def driver_kernel(driver, dtype=None, backend=None):
    """Resolve a ``la_*`` driver straight to its concrete kernel.

    Convenience composition of :func:`bound_kernel` (spec-declared
    binding) and :func:`resolve` (backend selection, dtype support,
    fallback ladder) — ``driver_kernel("la_gesv", np.float64)`` is the
    kernel ``la_gesv`` would dispatch to right now.
    """
    return resolve(bound_kernel(driver), dtype=dtype, backend=backend)


def backend_aware(func):
    """Decorator giving a driver the per-call ``backend=`` escape hatch.

    The wrapped driver accepts a keyword-only ``backend=None``; when
    given, the whole call (including any dispatched substrate calls made
    by fallback ladders) runs under ``use_backend(backend)``.
    """
    @functools.wraps(func)
    def wrapper(*args, backend=None, **kwargs):
        if backend is None:
            return func(*args, **kwargs)
        with use_backend(backend):
            return func(*args, **kwargs)
    return wrapper


# ---------------------------------------------------------------------
# Substrate registration.  Kept at the bottom: importing the substrates
# pulls in repro.lapack77 (whose submodules import repro.config, which
# re-exports this module's selection API), so everything above must
# already be defined.
from .reference import build_reference_backend  # noqa: E402

register_backend(build_reference_backend())

from .accelerated import build_accelerated_backend  # noqa: E402

_accelerated = build_accelerated_backend()
if _accelerated is not None:
    register_backend(_accelerated)

from . import kernels  # noqa: E402,F401 — dispatching proxies
from . import batched  # noqa: E402 — synthetic *_stack entry points

batched.install()

_env = os.environ.get("REPRO_BACKEND", "").strip()
if _env:
    try:
        set_backend(_env)
    except ValueError:
        warnings.warn(
            "ignoring unknown REPRO_BACKEND={!r}; known: {}".format(
                _env, ", ".join(KNOWN_BACKENDS)),
            RuntimeWarning, stacklevel=2)
del _env
