"""Batched entry points grafted onto the substrate seam.

The batched wrappers (:mod:`repro.batch`) want to cross the dispatch
seam **once** per stack, not once per problem: the resilience layer then
sees a single kernel call (one breaker admit, one snapshot set, one
retry ladder covering the whole stack), and the per-problem Python
overhead of proxy resolution, chaos consultation and calllog recording
is amortized away.  This module builds one synthetic ``<kernel>_stack``
routine per batchable solver and grafts it onto every registered
backend via :meth:`repro.backends.Backend.extend`.

Each stack kernel is a closure over the owning backend's *own* base
kernel, so problem *k* of a stacked call runs byte-for-byte the same
code path as a scalar call on that backend — the parity guarantee the
hypothesis suite (tests/batch/test_parity.py) pins down (identical
pivots, identical info codes).  Substrates with a natively batched
primitive could register a true stack-forwarding kernel instead; the
capability report (:func:`batch_capability`) tells the two modes apart
so ``repro.healthcheck()`` can say which one a backend is using.

Eigen drivers (``syev``/``heev``) are deliberately *not* given stack
entries: their wrappers loop per problem inside the driver so that
deadlines and breakers interleave with individual solves (a mid-batch
``DeadlineExceeded`` then returns the completed prefix).
"""

from __future__ import annotations

import numpy as np

from . import available_backends, get_backend

__all__ = ["STACK_ROUTINES", "install", "batch_capability"]

#: Solver kernels that gain a ``<name>_stack`` entry on every backend.
STACK_ROUTINES = ("gesv", "posv", "sysv", "hesv", "gels")


def _restack(results):
    """Combine per-problem kernel returns into stacked form.

    A kernel returns either a bare int info code or a tuple whose
    elements are ndarrays (pivots, eigenvalues) or ints (info).  Arrays
    stack along a new leading axis; ints collect into an int64 vector.
    """
    first = results[0]
    if not isinstance(first, tuple):
        return np.asarray(results, dtype=np.int64)
    cols = list(zip(*results))
    out = []
    for col in cols:
        if isinstance(col[0], np.ndarray):
            out.append(np.stack(col))
        else:
            out.append(np.asarray(col, dtype=np.int64))
    return tuple(out)


def _make_stack_kernel(base, routine):
    """A loop-mode stack kernel over one backend's *base* kernel.

    Slices every ndarray argument along axis 0 (views, so in-place
    writes land back in the caller's stacks), passes everything else
    through unchanged, and restacks the per-problem returns.
    """
    def stack_kernel(*args, **kwargs):
        batch = next(a.shape[0] for a in args if isinstance(a, np.ndarray))
        results = []
        for k in range(batch):
            sliced = tuple(a[k] if isinstance(a, np.ndarray) else a
                           for a in args)
            skw = {key: (v[k] if isinstance(v, np.ndarray) else v)
                   for key, v in kwargs.items()}
            results.append(base(*sliced, **skw))
        return _restack(results)

    stack_kernel.__name__ = routine + "_stack"
    stack_kernel.loop_mode = True   # vs a native stack-forwarding kernel
    return stack_kernel


def install():
    """Graft ``<routine>_stack`` entries onto every registered backend.

    Idempotent: re-installing rebuilds the closures from the backend's
    current base kernels.  Backends registered *after* install (test
    scaffolding) simply lack stack entries and report ``"loop"``
    capability — the wrappers then loop per problem inside the seam.
    """
    for name in available_backends():
        backend = get_backend(name)
        table, chars = {}, {}
        for routine in STACK_ROUTINES:
            existing = backend.get(routine + "_stack")
            if existing is not None \
                    and not getattr(existing, "loop_mode", False):
                continue        # the substrate ships a native stack entry
            base = backend.get(routine)
            if base is None:
                continue
            table[routine + "_stack"] = _make_stack_kernel(base, routine)
            base_chars = backend._dtype_chars.get(routine)
            if base_chars is not None:
                chars[routine + "_stack"] = base_chars
        if table:
            backend.extend(table, chars)


def batch_capability():
    """Per-backend batch-serving mode for every batchable driver kernel.

    ``{"accelerated": {"posv": "native", "gesv": "stack",
    "syev": "loop", ...}, ...}`` — ``"native"`` means the substrate
    ships its own stack-forwarding kernel (one substrate call for the
    whole stack), ``"stack"`` means the grafted loop-mode entry serves
    it (one *seam* crossing, per-problem base-kernel calls inside),
    ``"loop"`` means the derived wrapper loops per problem inside the
    seam (individual breaker/retry/deadline visibility).
    """
    from ..specs import all_specs
    kernels = sorted({s.kernel for s in all_specs()
                      if s.batchable and s.kernel})
    report = {}
    for name in available_backends():
        backend = get_backend(name)
        modes = {}
        for k in kernels:
            entry = backend.get(k + "_stack")
            if entry is None:
                modes[k] = "loop"
            elif getattr(entry, "loop_mode", False):
                modes[k] = "stack"
            else:
                modes[k] = "native"
        report[name] = modes
    return report
