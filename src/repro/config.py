"""Tuning parameters: the Python analogue of LAPACK's ``ILAENV``.

LAPACK77 centralizes machine-dependent algorithm parameters (block sizes,
crossover points, minimum block sizes) in the integer function ``ILAENV``.
The LAPACK90 wrappers consult it to size workspaces, e.g. ``LA_GETRI``
calls ``ILAENV(1, 'SGETRI', ...)`` before allocating ``N*NB`` reals.

This module keeps the same shape: a process-global, mutable table of block
sizes consulted by the blocked factorizations, so benchmarks can ablate
blocked vs. unblocked execution by flipping one knob.

The numerical-exception policy (NaN/Inf screening modes, the RCOND
guard, driver fallbacks) follows the same process-global/context-scoped
pattern; it lives in :mod:`repro.policy` and its API is re-exported here
for discoverability.  So does the compute-backend selection
(``reference`` vs ``accelerated`` substrates): it lives in
:mod:`repro.backends` and is re-exported at the bottom of this module
(the backend registry imports the substrate, whose kernels consult
:func:`ilaenv`, so the re-export must follow the definitions here).
"""

from __future__ import annotations

from contextlib import contextmanager

from ._sync import STATE_LOCK
from .policy import (exception_policy, get_policy,  # noqa: F401
                     set_policy)

__all__ = ["ilaenv", "get_block_size", "set_block_size",
           "block_size_override", "exception_policy", "get_policy",
           "set_policy", "use_backend", "set_backend",
           "get_backend_name", "available_backends"]

# ISPEC=1 block sizes per routine family (values follow LAPACK's defaults
# for "generic" machines; NumPy-matmul-backed updates favour larger blocks).
_BLOCK_SIZES: dict[str, int] = {
    "getrf": 64,
    "getri": 64,
    "potrf": 64,
    "sytrf": 64,
    "hetrf": 64,
    "geqrf": 32,
    "gelqf": 32,
    "orgqr": 32,
    "ormqr": 32,
    "gehrd": 32,
    "sytrd": 32,
    "hetrd": 32,
    "gebrd": 32,
    "gbtrf": 32,
}

# ISPEC=2: minimum block size for which blocking pays off at all.
_MIN_BLOCK = {name: 2 for name in _BLOCK_SIZES}

# ISPEC=3: crossover point below which the unblocked routine is used.
_CROSSOVER: dict[str, int] = {name: 128 for name in _BLOCK_SIZES}
_CROSSOVER.update({"getrf": 96, "potrf": 96})


def _family(name: str) -> str:
    """Strip the precision prefix: ``'SGETRI'`` → ``'getri'``."""
    name = name.lower()
    if name and name[0] in "sdcz" and name[1:] in _BLOCK_SIZES:  # laflow: benign-race — membership probe against a stable key set; values never leave the dict
        return name[1:]
    return name


def ilaenv(ispec: int, name: str, opts: str = "", n1: int = -1,
           n2: int = -1, n3: int = -1, n4: int = -1) -> int:
    """Return algorithm tuning parameters, LAPACK ``ILAENV`` style.

    Supported ``ispec`` values:

    * ``1`` — optimal block size,
    * ``2`` — minimum block size,
    * ``3`` — crossover point (problem size below which unblocked code runs).

    Unknown routine names return the conservative answer ``1`` (unblocked),
    like the reference implementation.
    """
    fam = _family(name)
    if ispec == 1:
        return _BLOCK_SIZES.get(fam, 1)  # laflow: benign-race — single tear-free dict read of an int tuning knob
    if ispec == 2:
        return _MIN_BLOCK.get(fam, 2)  # laflow: benign-race — single tear-free dict read of an int tuning knob
    if ispec == 3:
        return _CROSSOVER.get(fam, 0)  # laflow: benign-race — single tear-free dict read of an int tuning knob
    # Other ISPEC values exist in LAPACK (environmental enquiries); nothing
    # in this package consults them.
    return -1


def get_block_size(family: str) -> int:
    """Current block size for a routine family, e.g. ``'getrf'``."""
    return _BLOCK_SIZES.get(_family(family), 1)  # laflow: benign-race — single tear-free dict read of an int tuning knob


def set_block_size(family: str, nb: int) -> None:
    """Set the block size for a routine family (``nb=1`` forces unblocked)."""
    if nb < 1:
        raise ValueError("block size must be >= 1")
    with STATE_LOCK:
        _BLOCK_SIZES[_family(family)] = int(nb)


@contextmanager
def block_size_override(family: str, nb: int):
    """Temporarily override one family's block size (used by the ablation
    benchmarks to compare blocked vs. unblocked execution)."""
    fam = _family(family)
    with STATE_LOCK:
        old = _BLOCK_SIZES.get(fam, 1)
        set_block_size(fam, nb)
    try:
        yield
    finally:
        set_block_size(fam, old)


# Backend selection (process-global + context-scoped, like the exception
# policy above).  Imported last: repro.backends registers the reference
# substrate at import time, and those kernels consult ilaenv.
from .backends import (available_backends, get_backend_name,  # noqa: E402,F401
                       set_backend, use_backend)
