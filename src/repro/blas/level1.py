"""Level-1 BLAS: O(n) vector-vector kernels.

These are the kernels LINPACK/EISPACK were built on (paper §1.1); LAPACK
retains them for the unblocked inner factorizations.  Each kernel accepts
NumPy 1-D views (slices of matrices work naturally) and performs BLAS
semantics: in-place updates where the reference BLAS updates an operand.
"""

from __future__ import annotations

import numpy as np

from ..policy import notfinite

__all__ = [
    "axpy", "scal", "copy", "swap", "dot", "dotu", "dotc",
    "nrm2", "asum", "iamax", "rot", "rotg",
]


def axpy(alpha, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """``y := alpha*x + y`` (in place). Returns ``y``."""
    if alpha != 0:
        y += alpha * x
    return y


def scal(alpha, x: np.ndarray) -> np.ndarray:
    """``x := alpha*x`` (in place). Returns ``x``."""
    x *= alpha
    return x


def copy(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """``y := x`` (in place). Returns ``y``."""
    y[...] = x
    return y


def swap(x: np.ndarray, y: np.ndarray) -> None:
    """Exchange the contents of ``x`` and ``y`` in place."""
    tmp = x.copy()
    x[...] = y
    y[...] = tmp


def dot(x: np.ndarray, y: np.ndarray):
    """Real dot product ``xᵀ y`` (``sdot``/``ddot``)."""
    return np.dot(x, y)


def dotu(x: np.ndarray, y: np.ndarray):
    """Unconjugated complex dot product ``xᵀ y`` (``cdotu``/``zdotu``)."""
    return np.dot(x, y)


def dotc(x: np.ndarray, y: np.ndarray):
    """Conjugated complex dot product ``xᴴ y`` (``cdotc``/``zdotc``)."""
    return np.vdot(x, y)


def nrm2(x: np.ndarray):
    """Euclidean norm with scaling against overflow (``snrm2`` semantics)."""
    if x.size == 0:
        return x.real.dtype.type(0)
    amax = np.max(np.abs(x))
    # Reference xNRM2 semantics (shared predicate from repro.policy): a
    # non-finite magnitude is returned unchanged — Inf stays Inf, NaN
    # stays NaN — instead of being squared into an overflow.
    if amax == 0 or notfinite(amax):
        return x.real.dtype.type(amax)
    # Scale to avoid overflow/underflow in the square, like the reference.
    scaled = x / amax
    return amax * np.sqrt(np.real(np.vdot(scaled, scaled)))


def asum(x: np.ndarray):
    """``sum(|Re x_i| + |Im x_i|)`` — the BLAS ``asum`` (1-norm variant)."""
    if np.iscomplexobj(x):
        return np.sum(np.abs(x.real) + np.abs(x.imag))
    return np.sum(np.abs(x))


def iamax(x: np.ndarray) -> int:
    """0-based index of the element of largest ``|Re|+|Im|`` magnitude.

    (The reference BLAS returns a 1-based index; the substrate code here is
    all 0-based, so we return 0-based and document it.)
    """
    if x.size == 0:
        return -1
    if np.iscomplexobj(x):
        return int(np.argmax(np.abs(x.real) + np.abs(x.imag)))
    return int(np.argmax(np.abs(x)))


def rot(x: np.ndarray, y: np.ndarray, c, s) -> None:
    """Apply a plane rotation: ``[x; y] := [[c, s], [-conj(s), c]] [x; y]``.

    Matches ``zrot``: ``c`` real, ``s`` possibly complex.
    """
    tmp = c * x + s * y
    y[...] = c * y - np.conj(s) * x
    x[...] = tmp


def rotg(a, b):
    """Generate a plane rotation: return ``(c, s, r)`` with
    ``[[c, s], [-conj(s), c]] [a; b] = [r; 0]``.

    Follows the LAPACK ``xLARTG`` convention (``c`` real and non-negative)
    rather than the legacy BLAS ``srotg`` sign convention, since that is
    what the eigen/SVD substrate needs.
    """
    if b == 0:
        return 1.0, 0.0 * b, a
    if a == 0:
        if np.iscomplexobj(np.asarray(b)):
            absb = abs(b)
            return 0.0, np.conj(b) / absb, absb
        return 0.0, 1.0 if b > 0 else -1.0, abs(b)
    if np.iscomplexobj(np.asarray(a)) or np.iscomplexobj(np.asarray(b)):
        norm = np.sqrt(abs(a) ** 2 + abs(b) ** 2)
        alpha = a / abs(a)
        c = abs(a) / norm
        s = alpha * np.conj(b) / norm
        return c, s, alpha * norm
    r = np.hypot(a, b)
    r = r if a >= 0 else -r
    return a / r, b / r, r
