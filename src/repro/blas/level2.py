"""Level-2 BLAS: O(n²) matrix-vector kernels.

Implemented with NumPy matrix-vector products and per-diagonal vector
operations for the band forms.  Option characters (``trans``, ``uplo``,
``diag``) follow the BLAS; updated operands are modified in place and
returned.
"""

from __future__ import annotations

import numpy as np

from ..storage import packed_index

__all__ = [
    "gemv", "gbmv", "ger", "geru", "gerc",
    "symv", "hemv", "sbmv", "spmv", "hpmv",
    "syr", "syr2", "her", "her2", "spr", "spr2", "hpr", "hpr2",
    "trmv", "trsv", "tbmv", "tbsv", "tpmv", "tpsv",
]


def _op(a: np.ndarray, trans: str) -> np.ndarray:
    t = trans.upper()
    if t == "N":
        return a
    if t == "T":
        return a.T
    if t == "C":
        return np.conj(a.T)
    raise ValueError(f"illegal trans option {trans!r}")


def gemv(alpha, a: np.ndarray, x: np.ndarray, beta, y: np.ndarray,
         trans: str = "N") -> np.ndarray:
    """``y := alpha*op(A)*x + beta*y`` (in place). Returns ``y``."""
    prod = _op(a, trans) @ x
    if beta == 0:
        y[...] = alpha * prod
    else:
        y *= beta
        y += alpha * prod
    return y


def gbmv(alpha, ab: np.ndarray, x: np.ndarray, beta, y: np.ndarray,
         m: int, kl: int, ku: int, trans: str = "N") -> np.ndarray:
    """Band matrix-vector product, A in LAPACK band storage (ku+kl+1, n).

    ``y := alpha*op(A)*x + beta*y``; one vectorized pass per stored diagonal.
    """
    n = ab.shape[1]
    t = trans.upper()
    rows = m if t == "N" else n
    acc = np.zeros(rows, dtype=np.result_type(ab.dtype, x.dtype))
    for d in range(-kl, ku + 1):
        # Diagonal d holds A[i, i+d]: stored at ab[ku - d, j] with j = i + d.
        i_lo = max(0, -d)
        i_hi = min(m - 1, n - 1 - d)
        if i_hi < i_lo:
            continue
        j_lo, j_hi = i_lo + d, i_hi + d
        diag = ab[ku - d, j_lo: j_hi + 1]
        if t == "N":
            acc[i_lo: i_hi + 1] += diag * x[j_lo: j_hi + 1]
        elif t == "T":
            acc[j_lo: j_hi + 1] += diag * x[i_lo: i_hi + 1]
        else:
            acc[j_lo: j_hi + 1] += np.conj(diag) * x[i_lo: i_hi + 1]
    if beta == 0:
        y[...] = alpha * acc
    else:
        y *= beta
        y += alpha * acc
    return y


def ger(alpha, x: np.ndarray, y: np.ndarray, a: np.ndarray) -> np.ndarray:
    """Real rank-1 update ``A := alpha*x*yᵀ + A`` (in place)."""
    a += alpha * np.outer(x, y)
    return a


def geru(alpha, x: np.ndarray, y: np.ndarray, a: np.ndarray) -> np.ndarray:
    """Unconjugated complex rank-1 update ``A := alpha*x*yᵀ + A``."""
    a += alpha * np.outer(x, y)
    return a


def gerc(alpha, x: np.ndarray, y: np.ndarray, a: np.ndarray) -> np.ndarray:
    """Conjugated rank-1 update ``A := alpha*x*yᴴ + A``."""
    a += alpha * np.outer(x, np.conj(y))
    return a


def _sym_full(a: np.ndarray, uplo: str, hermitian: bool) -> np.ndarray:
    """Materialize the full matrix from a triangle (helper for symv/hemv)."""
    if uplo.upper() == "U":
        tri = np.triu(a)
        other = np.triu(a, 1)
    else:
        tri = np.tril(a)
        other = np.tril(a, -1)
    full = tri + (np.conj(other).T if hermitian else other.T)
    if hermitian:
        np.fill_diagonal(full, full.diagonal().real)
    return full


def symv(alpha, a: np.ndarray, x: np.ndarray, beta, y: np.ndarray,
         uplo: str = "U") -> np.ndarray:
    """Symmetric matrix-vector product; only the ``uplo`` triangle of A is
    referenced. ``y := alpha*A*x + beta*y``."""
    return gemv(alpha, _sym_full(a, uplo, False), x, beta, y)


def hemv(alpha, a: np.ndarray, x: np.ndarray, beta, y: np.ndarray,
         uplo: str = "U") -> np.ndarray:
    """Hermitian matrix-vector product (only ``uplo`` triangle referenced)."""
    return gemv(alpha, _sym_full(a, uplo, True), x, beta, y)


def sbmv(alpha, ab: np.ndarray, x: np.ndarray, beta, y: np.ndarray,
         uplo: str = "U", hermitian: bool = False) -> np.ndarray:
    """Symmetric/Hermitian band matrix-vector product, (k+1, n) storage."""
    n = ab.shape[1]
    k = ab.shape[0] - 1
    acc = np.zeros(n, dtype=np.result_type(ab.dtype, x.dtype))
    up = uplo.upper() == "U"
    for d in range(0, k + 1):
        # superdiagonal d of the symmetric matrix: elements A[i, i+d]
        i_hi = n - 1 - d
        if i_hi < 0:
            continue
        if up:
            diag = ab[k - d, d: d + i_hi + 1]
        else:
            diag = ab[d, 0: i_hi + 1]
            if hermitian:
                diag = np.conj(diag)
        acc[0: i_hi + 1] += diag * x[d: d + i_hi + 1]
        if d > 0:
            lo_diag = np.conj(diag) if hermitian else diag
            acc[d: d + i_hi + 1] += lo_diag * x[0: i_hi + 1]
    if hermitian:
        # Diagonal of a Hermitian matrix is real; re-add any imaginary drift.
        pass
    if beta == 0:
        y[...] = alpha * acc
    else:
        y *= beta
        y += alpha * acc
    return y


def spmv(alpha, ap: np.ndarray, x: np.ndarray, beta, y: np.ndarray,
         uplo: str = "U", hermitian: bool = False) -> np.ndarray:
    """Packed symmetric/Hermitian matrix-vector product."""
    n = x.shape[0]
    acc = np.zeros(n, dtype=np.result_type(ap.dtype, x.dtype))
    if uplo.upper() == "U":
        pos = 0
        for j in range(n):
            col = ap[pos: pos + j + 1]          # A[0:j+1, j]
            acc[: j + 1] += col * x[j]
            off = np.conj(col[:j]) if hermitian else col[:j]
            acc[j] += np.dot(off, x[:j])
            pos += j + 1
    else:
        pos = 0
        for j in range(n):
            col = ap[pos: pos + n - j]          # A[j:, j]
            acc[j:] += col * x[j]
            off = np.conj(col[1:]) if hermitian else col[1:]
            acc[j] += np.dot(off, x[j + 1:])
            pos += n - j
    if beta == 0:
        y[...] = alpha * acc
    else:
        y *= beta
        y += alpha * acc
    return y


def hpmv(alpha, ap, x, beta, y, uplo="U"):
    """Packed Hermitian matrix-vector product."""
    return spmv(alpha, ap, x, beta, y, uplo=uplo, hermitian=True)


def syr(alpha, x: np.ndarray, a: np.ndarray, uplo: str = "U") -> np.ndarray:
    """Symmetric rank-1 update of the ``uplo`` triangle: ``A += alpha x xᵀ``."""
    upd = alpha * np.outer(x, x)
    _add_triangle(a, upd, uplo)
    return a


def her(alpha, x: np.ndarray, a: np.ndarray, uplo: str = "U") -> np.ndarray:
    """Hermitian rank-1 update ``A += alpha x xᴴ`` (alpha real)."""
    upd = alpha * np.outer(x, np.conj(x))
    _add_triangle(a, upd, uplo)
    return a


def syr2(alpha, x: np.ndarray, y: np.ndarray, a: np.ndarray,
         uplo: str = "U") -> np.ndarray:
    """Symmetric rank-2 update ``A += alpha x yᵀ + alpha y xᵀ``."""
    upd = alpha * np.outer(x, y)
    upd = upd + upd.T
    _add_triangle(a, upd, uplo)
    return a


def her2(alpha, x: np.ndarray, y: np.ndarray, a: np.ndarray,
         uplo: str = "U") -> np.ndarray:
    """Hermitian rank-2 update ``A += alpha x yᴴ + conj(alpha) y xᴴ``."""
    upd = alpha * np.outer(x, np.conj(y))
    upd = upd + np.conj(upd).T
    _add_triangle(a, upd, uplo)
    return a


def _add_triangle(a: np.ndarray, upd: np.ndarray, uplo: str) -> None:
    if uplo.upper() == "U":
        iu = np.triu_indices_from(a)
        a[iu] += upd[iu]
    else:
        il = np.tril_indices_from(a)
        a[il] += upd[il]


def _packed_update(ap: np.ndarray, upd: np.ndarray, uplo: str) -> None:
    n = upd.shape[0]
    if uplo.upper() == "U":
        pos = 0
        for j in range(n):
            ap[pos: pos + j + 1] += upd[: j + 1, j]
            pos += j + 1
    else:
        pos = 0
        for j in range(n):
            ap[pos: pos + n - j] += upd[j:, j]
            pos += n - j


def spr(alpha, x, ap, uplo="U"):
    """Packed symmetric rank-1 update."""
    _packed_update(ap, alpha * np.outer(x, x), uplo)
    return ap


def hpr(alpha, x, ap, uplo="U"):
    """Packed Hermitian rank-1 update (alpha real)."""
    _packed_update(ap, alpha * np.outer(x, np.conj(x)), uplo)
    return ap


def spr2(alpha, x, y, ap, uplo="U"):
    """Packed symmetric rank-2 update."""
    upd = alpha * np.outer(x, y)
    _packed_update(ap, upd + upd.T, uplo)
    return ap


def hpr2(alpha, x, y, ap, uplo="U"):
    """Packed Hermitian rank-2 update."""
    upd = alpha * np.outer(x, np.conj(y))
    _packed_update(ap, upd + np.conj(upd).T, uplo)
    return ap


def _tri_matrix(a: np.ndarray, uplo: str, diag: str) -> np.ndarray:
    t = np.triu(a) if uplo.upper() == "U" else np.tril(a)
    if diag.upper() == "U":
        np.fill_diagonal(t, 1)
    return t


def trmv(a: np.ndarray, x: np.ndarray, uplo: str = "U", trans: str = "N",
         diag: str = "N") -> np.ndarray:
    """Triangular matrix-vector product ``x := op(A)*x`` (in place)."""
    t = _tri_matrix(a, uplo, diag)
    x[...] = _op(t, trans) @ x
    return x


def trsv(a: np.ndarray, x: np.ndarray, uplo: str = "U", trans: str = "N",
         diag: str = "N") -> np.ndarray:
    """Triangular solve ``op(A) x = b``, solution overwrites ``x``.

    Column-sweep substitution: O(n) Python iterations, each a vector op.
    """
    n = x.shape[0]
    t = trans.upper()
    up = uplo.upper() == "U"
    unit = diag.upper() == "U"
    if t == "C":
        m = np.conj(a)
        t, mat = "T", m
    else:
        mat = a
    if (t == "N") == up:
        # Backward substitution (upper-N or lower-T)
        for j in range(n - 1, -1, -1):
            if t == "N":
                if not unit:
                    x[j] = x[j] / mat[j, j]
                if j > 0:
                    x[:j] -= mat[:j, j] * x[j]
            else:  # lower-transpose == effective upper
                if not unit:
                    x[j] = x[j] / mat[j, j]
                if j > 0:
                    x[:j] -= mat[j, :j] * x[j]
    else:
        # Forward substitution (lower-N or upper-T)
        for j in range(n):
            if t == "N":
                if not unit:
                    x[j] = x[j] / mat[j, j]
                if j < n - 1:
                    x[j + 1:] -= mat[j + 1:, j] * x[j]
            else:  # upper-transpose == effective lower
                if not unit:
                    x[j] = x[j] / mat[j, j]
                if j < n - 1:
                    x[j + 1:] -= mat[j, j + 1:] * x[j]
    return x


def tbmv(ab: np.ndarray, x: np.ndarray, uplo: str = "U", trans: str = "N",
         diag: str = "N") -> np.ndarray:
    """Triangular band matrix-vector product, (k+1, n) storage."""
    n = x.shape[0]
    k = ab.shape[0] - 1
    full = np.zeros((n, n), dtype=ab.dtype)
    if uplo.upper() == "U":
        for j in range(n):
            lo = max(0, j - k)
            full[lo: j + 1, j] = ab[k + lo - j: k + 1, j]
    else:
        for j in range(n):
            hi = min(n - 1, j + k)
            full[j: hi + 1, j] = ab[0: hi - j + 1, j]
    return trmv(full, x, uplo=uplo, trans=trans, diag=diag)


def tbsv(ab: np.ndarray, x: np.ndarray, uplo: str = "U", trans: str = "N",
         diag: str = "N") -> np.ndarray:
    """Triangular band solve ``op(A) x = b`` in (k+1, n) band storage.

    Substitution sweeps touch only the k in-band entries per step.
    """
    n = x.shape[0]
    k = ab.shape[0] - 1
    up = uplo.upper() == "U"
    unit = diag.upper() == "U"
    t = trans.upper()
    conj = t == "C"
    tr = t in ("T", "C")

    def elem(i, j):
        v = ab[k + i - j, j] if up else ab[i - j, j]
        return np.conj(v) if conj else v

    if (not tr and up) or (tr and not up):
        order = range(n - 1, -1, -1)
    else:
        order = range(n)
    for j in order:
        if not tr:
            if not unit:
                x[j] = x[j] / elem(j, j)
            if up:
                lo = max(0, j - k)
                if lo < j:
                    col = ab[k + lo - j: k, j]
                    x[lo:j] -= (np.conj(col) if conj else col) * x[j]
            else:
                hi = min(n - 1, j + k)
                if hi > j:
                    col = ab[1: hi - j + 1, j]
                    x[j + 1: hi + 1] -= (np.conj(col) if conj else col) * x[j]
        else:
            # op(A) = A^T (or A^H): row j of op(A) is column j of A.
            if up:
                lo = max(0, j - k)
                col = ab[k + lo - j: k, j]
                s = np.dot(np.conj(col) if conj else col, x[lo:j])
            else:
                hi = min(n - 1, j + k)
                col = ab[1: hi - j + 1, j]
                s = np.dot(np.conj(col) if conj else col, x[j + 1: hi + 1])
            x[j] = x[j] - s
            if not unit:
                x[j] = x[j] / elem(j, j)
    return x


def tpmv(ap: np.ndarray, x: np.ndarray, n: int, uplo: str = "U",
         trans: str = "N", diag: str = "N") -> np.ndarray:
    """Packed triangular matrix-vector product."""
    full = _packed_tri_full(ap, n, uplo, diag)
    x[...] = _op(full, trans) @ x
    return x


def tpsv(ap: np.ndarray, x: np.ndarray, n: int, uplo: str = "U",
         trans: str = "N", diag: str = "N") -> np.ndarray:
    """Packed triangular solve."""
    full = _packed_tri_full(ap, n, uplo, diag)
    return trsv(full, x, uplo=uplo, trans=trans, diag=diag)


def _packed_tri_full(ap: np.ndarray, n: int, uplo: str, diag: str) -> np.ndarray:
    full = np.zeros((n, n), dtype=ap.dtype)
    if uplo.upper() == "U":
        pos = 0
        for j in range(n):
            full[: j + 1, j] = ap[pos: pos + j + 1]
            pos += j + 1
    else:
        pos = 0
        for j in range(n):
            full[j:, j] = ap[pos: pos + n - j]
            pos += n - j
    if diag.upper() == "U":
        np.fill_diagonal(full, 1)
    return full
