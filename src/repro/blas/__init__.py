"""From-scratch BLAS layer (the substrate LAPACK requires, per paper §1.1).

LAPACK is structured so that "as much of the computation as possible is
performed by calls to the BLAS"; the Level-3 kernels are where blocked
algorithms earn their efficiency.  This package provides the same three
levels with NumPy-vectorized implementations:

* :mod:`repro.blas.level1` — vector-vector kernels (axpy, dot, nrm2, rot…),
* :mod:`repro.blas.level2` — matrix-vector kernels (gemv, ger, symv, trsv…),
* :mod:`repro.blas.level3` — matrix-matrix kernels (gemm, syrk, trsm…).

All kernels follow BLAS semantics (in-place updates, ``uplo``/``trans``/
``diag`` option characters, conjugation rules for the complex forms) but use
Pythonic signatures: dimensions come from array shapes, and the updated
operand is both modified in place and returned.
"""

from .level1 import (
    asum, axpy, copy, dot, dotc, dotu, iamax, nrm2, rot, rotg, scal, swap,
)
from .level2 import (
    gbmv, gemv, ger, gerc, geru, hemv, her, her2, hpmv, hpr, hpr2, sbmv,
    spmv, spr, spr2, symv, syr, syr2, tbmv, tbsv, tpmv, tpsv, trmv, trsv,
)
from .level3 import gemm, hemm, her2k, herk, symm, syr2k, syrk, trmm, trsm

__all__ = [
    # level 1
    "asum", "axpy", "copy", "dot", "dotc", "dotu", "iamax", "nrm2",
    "rot", "rotg", "scal", "swap",
    # level 2
    "gbmv", "gemv", "ger", "gerc", "geru", "hemv", "her", "her2", "hpmv",
    "hpr", "hpr2", "sbmv", "spmv", "spr", "spr2", "symv", "syr", "syr2",
    "tbmv", "tbsv", "tpmv", "tpsv", "trmv", "trsv",
    # level 3
    "gemm", "hemm", "her2k", "herk", "symm", "syr2k", "syrk", "trmm", "trsm",
]
