"""Level-3 BLAS: O(n³) matrix-matrix kernels.

These are the kernels whose "coarse granularity … promotes high efficiency"
(paper §1.1).  NumPy's ``@`` (vendor GEMM underneath) plays the role the
manufacturer-tuned BLAS plays for FORTRAN LAPACK; the triangular solve and
multiply are built as blocked column sweeps on top of it.
"""

from __future__ import annotations

import numpy as np

__all__ = ["gemm", "symm", "hemm", "syrk", "herk", "syr2k", "her2k",
           "trmm", "trsm"]


def _op(a: np.ndarray, trans: str) -> np.ndarray:
    t = trans.upper()
    if t == "N":
        return a
    if t == "T":
        return a.T
    if t == "C":
        return np.conj(a.T)
    raise ValueError(f"illegal trans option {trans!r}")


def gemm(alpha, a: np.ndarray, b: np.ndarray, beta, c: np.ndarray,
         transa: str = "N", transb: str = "N") -> np.ndarray:
    """``C := alpha*op(A)*op(B) + beta*C`` (in place). Returns ``C``."""
    prod = _op(a, transa) @ _op(b, transb)
    if beta == 0:
        c[...] = alpha * prod
    else:
        c *= beta
        c += alpha * prod
    return c


def _sym_full(a: np.ndarray, uplo: str, hermitian: bool) -> np.ndarray:
    if uplo.upper() == "U":
        full = np.triu(a) + (np.conj(np.triu(a, 1)).T if hermitian
                             else np.triu(a, 1).T)
    else:
        full = np.tril(a) + (np.conj(np.tril(a, -1)).T if hermitian
                             else np.tril(a, -1).T)
    if hermitian:
        np.fill_diagonal(full, full.diagonal().real)
    return full


def symm(alpha, a: np.ndarray, b: np.ndarray, beta, c: np.ndarray,
         side: str = "L", uplo: str = "U") -> np.ndarray:
    """``C := alpha*A*B + beta*C`` (side='L') with A symmetric, only the
    ``uplo`` triangle referenced."""
    full = _sym_full(a, uplo, False)
    prod = full @ b if side.upper() == "L" else b @ full
    if beta == 0:
        c[...] = alpha * prod
    else:
        c *= beta
        c += alpha * prod
    return c


def hemm(alpha, a, b, beta, c, side="L", uplo="U"):
    """Hermitian variant of :func:`symm`."""
    full = _sym_full(a, uplo, True)
    prod = full @ b if side.upper() == "L" else b @ full
    if beta == 0:
        c[...] = alpha * prod
    else:
        c *= beta
        c += alpha * prod
    return c


def _rank_k_store(c: np.ndarray, upd: np.ndarray, beta, uplo: str,
                  real_diag: bool) -> np.ndarray:
    if uplo.upper() == "U":
        idx = np.triu_indices_from(c)
    else:
        idx = np.tril_indices_from(c)
    if beta == 0:
        c[idx] = upd[idx]
    else:
        c[idx] = beta * c[idx] + upd[idx]
    if real_diag:
        d = c.diagonal().real.copy()
        np.fill_diagonal(c, d)
    return c


def syrk(alpha, a: np.ndarray, beta, c: np.ndarray, uplo: str = "U",
         trans: str = "N") -> np.ndarray:
    """Symmetric rank-k update: ``C := alpha*A*Aᵀ + beta*C`` (trans='N') or
    ``alpha*Aᵀ*A + beta*C`` (trans='T'); only the ``uplo`` triangle of C is
    updated."""
    if trans.upper() == "N":
        upd = alpha * (a @ a.T)
    else:
        upd = alpha * (a.T @ a)
    return _rank_k_store(c, upd, beta, uplo, False)


def herk(alpha, a: np.ndarray, beta, c: np.ndarray, uplo: str = "U",
         trans: str = "N") -> np.ndarray:
    """Hermitian rank-k update (alpha, beta real)."""
    if trans.upper() == "N":
        upd = alpha * (a @ np.conj(a.T))
    else:
        upd = alpha * (np.conj(a.T) @ a)
    return _rank_k_store(c, upd, beta, uplo, True)


def syr2k(alpha, a, b, beta, c, uplo="U", trans="N"):
    """Symmetric rank-2k update."""
    if trans.upper() == "N":
        upd = alpha * (a @ b.T)
        upd = upd + upd.T
    else:
        upd = alpha * (a.T @ b)
        upd = upd + upd.T
    return _rank_k_store(c, upd, beta, uplo, False)


def her2k(alpha, a, b, beta, c, uplo="U", trans="N"):
    """Hermitian rank-2k update (beta real)."""
    if trans.upper() == "N":
        upd = alpha * (a @ np.conj(b.T))
        upd = upd + np.conj(upd.T)
    else:
        upd = alpha * (np.conj(a.T) @ b)
        upd = upd + np.conj(upd.T)
    return _rank_k_store(c, upd, beta, uplo, True)


def _tri(a: np.ndarray, uplo: str, diag: str) -> np.ndarray:
    t = np.triu(a) if uplo.upper() == "U" else np.tril(a)
    if diag.upper() == "U":
        np.fill_diagonal(t, 1)
    return t


def trmm(alpha, a: np.ndarray, b: np.ndarray, side: str = "L",
         uplo: str = "U", transa: str = "N", diag: str = "N") -> np.ndarray:
    """Triangular matrix-matrix product ``B := alpha*op(A)*B`` (side='L')
    or ``alpha*B*op(A)`` (side='R'), in place."""
    t = _op(_tri(a, uplo, diag), transa)
    if side.upper() == "L":
        b[...] = alpha * (t @ b)
    else:
        b[...] = alpha * (b @ t)
    return b


def trsm(alpha, a: np.ndarray, b: np.ndarray, side: str = "L",
         uplo: str = "U", transa: str = "N", diag: str = "N") -> np.ndarray:
    """Triangular solve with multiple right-hand sides, in place:

    * side='L': solve ``op(A) X = alpha B``  → ``B := X``
    * side='R': solve ``X op(A) = alpha B``  → ``B := X``

    Column/row sweep substitution — O(n) Python steps, each a GEMM-shaped
    vector-matrix update, so multiple RHS stay fully vectorized.
    """
    up = uplo.upper() == "U"
    unit = diag.upper() == "U"
    ta = transa.upper()
    if alpha != 1:
        b *= alpha
    if ta == "C":
        mat = np.conj(a)
        ta = "T"
    else:
        mat = a
    n = mat.shape[0]
    left = side.upper() == "L"
    if left:
        # Solve op(A) X = B by blocked substitution: scalar sweeps inside
        # nb-sized diagonal blocks, GEMM updates between blocks — the
        # Level-3 organization that keeps Python-loop overhead O(n).
        nb = 32
        backward = (ta == "N") == up
        blocks = list(range(0, n, nb))
        if backward:
            blocks = blocks[::-1]
        for j0 in blocks:
            j1 = min(j0 + nb, n)
            # In-block substitution (rows j0..j1-1).
            order = range(j1 - 1, j0 - 1, -1) if backward \
                else range(j0, j1)
            for j in order:
                if not unit:
                    b[j] = b[j] / mat[j, j]
                if ta == "N":
                    if up and j > j0:
                        b[j0:j] -= np.outer(mat[j0:j, j], b[j])
                    elif not up and j < j1 - 1:
                        b[j + 1:j1] -= np.outer(mat[j + 1:j1, j], b[j])
                else:
                    if up and j < j1 - 1:
                        b[j + 1:j1] -= np.outer(mat[j, j + 1:j1], b[j])
                    elif not up and j > j0:
                        b[j0:j] -= np.outer(mat[j, j0:j], b[j])
            # Rank-update the remaining rows with one GEMM.
            if ta == "N":
                if up and j0 > 0:
                    b[:j0] -= mat[:j0, j0:j1] @ b[j0:j1]
                elif not up and j1 < n:
                    b[j1:] -= mat[j1:, j0:j1] @ b[j0:j1]
            else:
                if up and j1 < n:
                    b[j1:] -= mat[j0:j1, j1:].T @ b[j0:j1]
                elif not up and j0 > 0:
                    b[:j0] -= mat[j0:j1, :j0].T @ b[j0:j1]
    else:
        # Solve X op(A) = B, columns of B updated.
        # X op(A) = B  ⇔  op(A)ᵀ Xᵀ = Bᵀ; reuse the left sweep on B.T views.
        bt = b.T
        flip = {"N": "T", "T": "N"}[ta]
        # op(A)ᵀ: if ta == 'N', we need Aᵀ solve == trans solve on A.
        trsm(1, mat, bt, side="L", uplo=uplo, transa=flip, diag=diag)
    return b
