"""Batch-indexed warning reporting.

A warning raised for problem *k* of a batched call must name *k* and
the originating routine — but a 10⁶-problem stack of NaN inputs must
not emit 10⁶ warnings.  :func:`warn_batch` therefore rate-limits per
``(routine, key)`` through the same
:class:`repro.resilience.ratelimit.RateLimiter` windows the backend
fallback announcements use (one window per resilience-policy
``warning_window``), *not* per problem: the first offending problem in
a window is announced with its index, later identical ones only bump
the suppressed count reported when the window rolls over.
"""

from __future__ import annotations

import warnings

from ..errors import NumericalWarning
from ..resilience.config import get_resilience
from ..resilience.ratelimit import RateLimiter

__all__ = ["warn_batch", "reset_batch_announcements"]

_ANNOUNCED = RateLimiter()


def reset_batch_announcements() -> None:
    """Forget the rate-limit history (tests assert first-fire behaviour)."""
    _ANNOUNCED.reset()


def warn_batch(srname: str, key, index: int, message: str,
               category=NumericalWarning, stacklevel: int = 3) -> None:
    """Emit a batch-index-annotated warning, rate-limited per
    ``(srname, key)``.

    ``key`` identifies the warning class within the routine (e.g.
    ``("nonfinite", position)`` or ``("fallback", via)``); every problem
    index shares the same key, so a stack full of the same condition
    costs one warning per window.
    """
    emit, suppressed = _ANNOUNCED.tick(
        (srname, key), window=get_resilience().warning_window)
    if not emit:
        return
    text = f"{srname}[batch problem {index}]: {message}"
    if suppressed:
        text += (f" ({suppressed} identical warnings suppressed in the "
                 "last window)")
    warnings.warn(text, category, stacklevel=stacklevel)
