"""Spec-generated batched drivers.

``batch_gesv``, ``batch_posv``, ``batch_sysv``, ``batch_hesv``,
``batch_gels``, ``batch_syev`` and ``batch_heev`` — one wrapper per
registry spec carrying ``batchable=True`` — accept ``(batch, n, n)``
matrix stacks and ``(batch, n)`` / ``(batch, n, nrhs)`` right-hand-side
stacks and solve every problem under one amortized validation pass, one
ERINFO verdict, and per-problem :class:`BatchInfo` telemetry::

    from repro import batch_gesv, BatchInfo
    info = BatchInfo()
    x = batch_gesv(a_stack, b_stack, info=info)   # (256, n, nrhs)
    info.codes()          # per-problem LAPACK info codes
    info.first_failure    # -1 when the whole stack solved

The wrappers are *derived* from the DriverSpec registry at import time
(:mod:`repro.batch.generator`); the package exports whatever the
registry opts in, so ``__all__`` is dynamic by construction.
"""

from __future__ import annotations

from .info import BatchInfo
from .report import reset_batch_announcements, warn_batch
from .generator import batchable_specs, generate, make_batched

_GENERATED = generate(globals())

__all__ = ["BatchInfo", "batchable_specs", "make_batched",
           "warn_batch", "reset_batch_announcements"] + _GENERATED
