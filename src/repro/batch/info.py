"""Batched rendering of the ``INFO`` contract.

A batched call is many problems behind one ``ERINFO`` funnel, so the
handle must answer two questions the scalar :class:`repro.errors.Info`
cannot: *which* problem failed, and what happened to *each* problem.
:class:`BatchInfo` keeps the scalar surface (``value``/``bool``/``int``
compare on the aggregate code, telemetry excluded — so existing
``if info:`` call sites keep working) and adds a per-problem ``Info``
tuple underneath, following the per-entry status vector of the Demmel
et al. consistent-exception-handling proposal (arXiv:2207.09281).
"""

from __future__ import annotations

from ..errors import Info, is_error_code

__all__ = ["BatchInfo"]


class BatchInfo(Info):
    """An :class:`~repro.errors.Info` aggregating one handle per problem.

    ``value`` carries the aggregate verdict the wrapper reported through
    ``erinfo`` (the first failing problem's code, or 0); ``problems`` is
    one scalar ``Info`` per problem in stack order, each carrying its
    own code plus fallback/attempts/breaker telemetry::

        info = BatchInfo()
        batch_gesv(a, b, info=info)
        if info:                      # aggregate, like scalar Info
            k = info.first_failure    # which problem
            codes = info.codes()      # every per-problem code

    A problem that degraded through a driver fallback is *not* a
    failure: its ``Info.fallback`` names the substitute path and its
    code may legitimately sit at the warning-ish ``n+1`` verdict, the
    same contract the scalar drivers honour by returning without
    raising after a recorded fallback.
    """

    __slots__ = ("problems",)

    def __init__(self, value: int = 0):
        super().__init__(value)
        self.problems: tuple = ()

    def _arm(self, batch: int) -> None:
        """Size the per-problem handles (called by the batch wrappers)."""
        self.problems = tuple(Info() for _ in range(batch))

    @property
    def batch(self) -> int:
        """Number of problems this handle was armed for."""
        return len(self.problems)

    @property
    def first_failure(self) -> int:
        """Index of the first problem whose code is error-class (and not
        a recorded fallback), or -1 when every problem succeeded."""
        for k, p in enumerate(self.problems):
            if p.fallback is None and is_error_code(p.value):
                return k
        return -1

    def codes(self) -> tuple:
        """Every per-problem code, in stack order."""
        return tuple(p.value for p in self.problems)

    def __repr__(self) -> str:
        base = super().__repr__()
        if not self.problems:
            return "Batch" + base
        nonzero = sum(1 for p in self.problems if p.value != 0)
        return ("Batch{} <{} problems, {} nonzero, first_failure={}>"
                .format(base, self.batch, nonzero, self.first_failure))
