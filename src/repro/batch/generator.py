"""Spec→wrapper derivation for the batched drivers.

Every ``batch_*`` wrapper in :mod:`repro.batch` is *generated* here from
the parent driver's :class:`~repro.specs.DriverSpec` — there is no
hand-written batched validation ladder anywhere (lalint rule LA021
forbids one outside this package).  The derivation mirrors the paper's
own derivation arrow: just as the F90 generic interfaces were mechanical
wrappers over the F77 kernels, a ``batch_gesv`` is a mechanical lift of
``la_gesv``'s spec over a leading batch axis:

* argument binding, flag defaults and the validation ladder come from
  the spec (one amortized :func:`~repro.specs.validate_batch` run per
  call — structural checks once on the stack cross-section, NaN/Inf
  screens vectorized over the stack by
  :func:`repro.policy.screen_stack`);
* the kernel binding comes from ``spec.kernel``; when the selected
  backend serves a ``<kernel>_stack`` entry (see
  :mod:`repro.backends.batched`) the whole stack crosses the dispatch
  seam once, otherwise the wrapper loops per problem *inside* the seam
  so breakers, retries and deadlines observe individual kernel calls
  and a mid-batch :class:`~repro.errors.DeadlineExceeded` leaves the
  completed prefix intact;
* the error contract is the parent's, lifted: per-problem codes land
  on a :class:`~repro.batch.BatchInfo`, the aggregate verdict goes
  through ``erinfo`` with the failing problem's index, and the parent's
  fallback ladder (``la_gesv`` → expert refine, ``la_posv`` →
  indefinite retry) replays per failing problem on pristine snapshots.

Only the tiny per-family *kernel calling convention* — how many values
the substrate routine returns and which flags it takes — is written by
hand (``_FAMILIES``); everything else derives from the spec, so a new
driver opts in by setting ``batchable=True`` in the registry.
"""

from __future__ import annotations

import warnings

import numpy as np

from .. import faults
from ..backends import backend_aware, get_backend, get_backend_name
from ..backends import kernels as _kernels
from ..errors import (ALLOC_FAILED, DEADLINE, DeadlineExceeded,
                      DriverFallbackWarning, NoConvergence,
                      NonFiniteWarning, NotPositiveDefinite,
                      SingularMatrix, erinfo)
from ..policy import get_policy, screen_stack
from ..resilience import calllog, deadlines
from ..specs import SPECS, validate_batch
from .info import BatchInfo
from .report import warn_batch

__all__ = ["batchable_specs", "make_batched", "generate"]


def batchable_specs():
    """The registered specs that opt into wrapper derivation."""
    return [s for s in SPECS.values() if s.batchable]


# -- per-family kernel calling conventions ----------------------------
# ``run(kern, c)`` invokes one substrate kernel (or its ``*_stack``
# counterpart — the argument shapes are the only difference) on the
# bound values in ``c`` and returns ``(linfo, extras)``; ``extras`` maps
# output names (``ipiv``, ``w``) to the kernel-returned arrays.

def _run_gesv(kern, c):
    lpiv, linfo = kern(c["a"], c["b"])
    return linfo, {"ipiv": lpiv}


def _run_posv(kern, c):
    return kern(c["a"], c["b"], c["uplo"]), {}


def _run_indef(kern, c):
    lpiv, linfo = kern(c["a"], c["b"], c["uplo"])
    return linfo, {"ipiv": lpiv}


def _run_gels(kern, c):
    return kern(c["a"], c["b"], trans=c["trans"]), {}


def _run_ev(kern, c):
    wout, linfo = kern(c["a"], jobz=c["jobz"], uplo=c["uplo"])
    return linfo, {"w": wout}


def _fb_gesv(srname, c, k, snaps, pinfo):
    from ..core.linear_equations import _fallback_gesv
    n = c["a"].shape[2]
    return _fallback_gesv(srname, snaps["a"][k].copy(), c["b"][k], n,
                          pinfo)


def _fb_posv(srname, c, k, snaps, pinfo):
    from ..core.linear_equations import _fallback_posv
    return _fallback_posv(srname, snaps["a"][k].copy(), c["b"][k],
                          c["uplo"], pinfo)


class _Family:
    """One kernel family's hand-written residue: calling convention,
    positive-info exception class, optional fallback replay, whether a
    ``*_stack`` seam entry exists, and the n=0 early-out gate."""

    def __init__(self, run, exc=None, fallback=None, stack=True,
                 size_gate=False):
        self.run = run
        self.exc = exc
        self.fallback = fallback
        self.stack = stack
        self.size_gate = size_gate


_FAMILIES = {
    "gesv": _Family(_run_gesv, SingularMatrix, _fb_gesv, size_gate=True),
    "posv": _Family(_run_posv, NotPositiveDefinite, _fb_posv,
                    size_gate=True),
    "sysv": _Family(_run_indef, SingularMatrix, size_gate=True),
    "hesv": _Family(_run_indef, SingularMatrix, size_gate=True),
    "gels": _Family(_run_gels),
    "syev": _Family(_run_ev, NoConvergence, stack=False),
    "heev": _Family(_run_ev, NoConvergence, stack=False),
}

_STACK_PROXIES: dict = {}


def _stack_proxy(kernel):
    proxy = _STACK_PROXIES.get(kernel)
    if proxy is None:
        proxy = _STACK_PROXIES[kernel] = _kernels.KernelProxy(kernel + "_stack")
    return proxy


def _stack_capable(kernel, dtype):
    """True when the *selected* backend natively serves the stacked
    entry point for ``dtype`` (so one seam crossing loses nothing —
    the per-problem kernels are byte-for-byte the scalar path's)."""
    try:
        backend = get_backend(get_backend_name())
    except ValueError:
        return False
    return backend.supports(kernel + "_stack", dtype)


def _replay_fallback(family, srname, c, k, snaps, pinfo):
    """Replay the parent driver's fallback ladder for failing problem
    *k* on its pristine snapshot, re-emitting the fallback announcement
    batch-indexed and window-rate-limited."""
    done = False
    calllog.push()
    try:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            done = family.fallback(srname, c, k, snaps, pinfo)
    finally:
        if not done:
            calllog.drain()
    for msg in caught:
        if issubclass(msg.category, DriverFallbackWarning):
            text = str(msg.message)
            text = text.removeprefix(f"{srname}: ")
            warn_batch(srname, ("fallback", pinfo.fallback), k,
                       text, DriverFallbackWarning, stacklevel=4)
        else:
            warnings.warn(msg.message, msg.category, stacklevel=3)
    return done


def make_batched(spec):
    """Derive the ``batch_*`` wrapper for one batchable *spec*."""
    family = _FAMILIES[spec.kernel]
    stem = spec.name[3:]                     # "la_gesv" -> "gesv"
    fname = "batch_" + stem
    srname = fname.upper()
    arg_names = [a.name for a in spec.args if a.kind != "info"]
    array_specs = [a for a in spec.args if a.name in spec.batch_stacked]
    screen_specs = [a for a in array_specs if a.intent == "inout"]
    flags = spec.flags
    defaults = {}
    for a in spec.args:
        if a.kind == "info" or a.required:
            continue
        defaults[a.name] = flags[a.name][0] if a.name in flags else None
    base_kernel = getattr(_kernels, spec.kernel)
    is_ev = spec.kernel in ("syev", "heev")
    is_ls = spec.kernel == "gels"

    def wrapper(*args, info=None, **kwargs):
        if len(args) > len(arg_names):
            raise TypeError(f"{fname}() takes at most {len(arg_names)} "
                            f"positional arguments ({len(args)} given)")
        bound = dict(defaults)
        bound.update(zip(arg_names, args))
        for key, val in kwargs.items():
            if key not in arg_names:
                raise TypeError(f"{fname}() got an unexpected keyword "
                                f"argument {key!r}")
            bound[key] = val
        binfo = info if isinstance(info, BatchInfo) else BatchInfo()

        linfo, batch = validate_batch(spec, bound)
        a = bound.get("a")
        b = bound.get("b")
        if linfo == 0 and batch > 0 and family.size_gate \
                and a.shape[1] == 0:
            batch = 0               # n = 0: nothing to compute
        if linfo != 0 or batch == 0:
            erinfo(linfo, srname, info)
            if is_ev:
                return bound.get("w") if bound.get("w") is not None \
                    else np.zeros((batch, 0))
            return b

        # -- per-problem value screens, vectorized over the stack -----
        calllog.push()
        base_depth = calllog.depth()
        deadlines.check(srname, "entry")
        codes, warned = screen_stack(
            srname, batch,
            *((s.position, bound[s.name]) for s in screen_specs
              if bound.get(s.name) is not None))
        for position, idxs in warned:
            for k in idxs:
                warn_batch(srname, ("nonfinite", position), int(k),
                           f"argument {position} contains non-finite "
                           "entries; they will propagate",
                           NonFiniteWarning, stacklevel=4)
        if not codes.any() and faults.alloc_fault(srname):
            calllog.drain_into(binfo)
            erinfo(ALLOC_FAILED, srname, info)
            return b if not is_ev else np.zeros((batch, 0))

        binfo._arm(batch)
        pol = get_policy()

        # -- bind the compute view of every operand -------------------
        c = {name: bound.get(name) for name in arg_names}
        was_vec = False
        if b is not None and b.ndim == 2:    # stack of RHS vectors
            was_vec = True
            c["b"] = b[:, :, None]
        if is_ls:
            m, n = a.shape[1], a.shape[2]
            rows = max(m, n)
            if c["b"].shape[1] != rows:      # pad the whole stack once
                bw = np.zeros((batch, rows, c["b"].shape[2]),
                              dtype=np.result_type(a, c["b"]))
                bw[:, :c["b"].shape[1]] = c["b"]
                c["b"] = bw
        ipiv = bound.get("ipiv")
        snaps = None
        if pol.fallbacks and family.fallback is not None:
            snaps = {"a": a.copy()}

        use_stack = (family.stack
                     and not faults.CHAOS_ACTIVE and not faults.active()
                     and deadlines.remaining() is None
                     and not codes.any()
                     and _stack_capable(spec.kernel, a.dtype))

        wouts = [None] * batch
        if use_stack:
            # One seam crossing for the whole stack: the resilience
            # layer sees a single kernel call (one breaker admit, one
            # snapshot set covering every operand stack).
            linfos, extras = family.run(_stack_proxy(spec.kernel), c)
            for k in range(batch):
                binfo.problems[k].value = int(linfos[k])
            if ipiv is not None and "ipiv" in extras:
                ipiv[:] = extras["ipiv"]
            if pol.fallbacks and family.fallback is not None:
                for k in np.nonzero(np.asarray(linfos) > 0)[0]:
                    _replay_fallback(family, srname, c, int(k), snaps,
                                     binfo.problems[int(k)])
        else:
            k = 0
            try:
                for k in range(batch):
                    pinfo = binfo.problems[k]
                    if codes[k]:
                        pinfo.value = int(codes[k])
                        continue
                    deadlines.check(srname, "batch", info=binfo)
                    ck = {n: (v[k] if isinstance(v, np.ndarray) else v)
                          for n, v in c.items()}
                    calllog.push()
                    try:
                        linfo_k, extras = family.run(base_kernel, ck)
                    finally:
                        calllog.drain_into(pinfo)
                    pinfo.value = int(linfo_k)
                    if ipiv is not None and "ipiv" in extras:
                        ipiv[k] = extras["ipiv"]
                    if "w" in extras:
                        wouts[k] = extras["w"]
                    if linfo_k > 0 and pol.fallbacks \
                            and family.fallback is not None:
                        _replay_fallback(family, srname, c, k, snaps,
                                         pinfo)
            except DeadlineExceeded as derr:
                # Completed prefix stays; problems from k on are marked
                # interrupted and travel on the exception's partial.
                for j in range(k, batch):
                    binfo.problems[j].value = DEADLINE
                binfo.value = DEADLINE
                if calllog.depth() >= base_depth:
                    calllog.drain_into(binfo)
                derr.partial = binfo
                raise

        # -- aggregate verdict through the ERINFO funnel --------------
        kf = binfo.first_failure
        final = binfo.problems[kf].value if kf >= 0 else 0
        exc = family.exc(srname, final) \
            if kf >= 0 and final > 0 and family.exc is not None else None
        calllog.drain_into(binfo)
        erinfo(final, srname, info, exc=exc,
               batch_index=kf if kf >= 0 else None)
        if is_ev:
            w = bound.get("w")
            wstack = np.zeros((batch, a.shape[1]), dtype=a.real.dtype)
            for k, wout in enumerate(wouts):
                if wout is not None:
                    wstack[k] = wout
            if w is not None:
                w[:] = wstack
                return w
            return wstack
        if is_ls:
            out_rows = a.shape[2] if str(c["trans"]).upper() == "N" \
                else a.shape[1]
            return c["b"][:, :out_rows, 0] if was_vec \
                else c["b"][:, :out_rows]
        return b

    wrapper.__name__ = fname
    wrapper.__qualname__ = fname
    wrapper.__doc__ = (
        f"Batched ``{spec.name}``, derived from its DriverSpec: "
        f"{spec.summary}.\n\n"
        f"Array operands {spec.batch_stacked} gain a leading batch "
        f"axis; {spec.batch_broadcast or '()'} broadcast across the "
        "batch.  Pass ``info=BatchInfo()`` to collect per-problem "
        "codes and telemetry; without a handle the first failing "
        "problem raises with its batch index in the message.")
    wrapper.spec = spec
    return backend_aware(wrapper)


def generate(namespace: dict) -> list:
    """Derive every opted-in wrapper into *namespace* (the package's
    ``__init__`` globals); returns the generated names."""
    names = []
    for spec in batchable_specs():
        fn = make_batched(spec)
        namespace[fn.__name__] = fn
        names.append(fn.__name__)
    return names
