"""Structure probing: which matrix class is this, cheaply and exactly.

:func:`probe` classifies a square operand into one of the
:data:`repro.specs.routing.STRUCTURES` labels.  Every test is *exact*
(bitwise equality, exact zeros): the front door guarantees the routed
driver returns bit-identical results to calling it directly, and an
almost-symmetric matrix handed to ``la_sysv`` (which reads one triangle)
would silently solve a different system.  Near-misses therefore probe as
``general`` — the adversarial suite in ``tests/dispatch`` pins this.

Positive definiteness is established by a *trial Cholesky*: a ``potrf``
kernel call (through the full backend/resilience dispatch seam) on a
copy of the operand.  On success the factor travels with the probe
result and becomes the cached factorization — repeated SPD solves
against the same array skip straight to ``potrs``.

Band widths are extracted vectorized (one ``nonzero`` sweep); a matrix
only probes as ``banded`` when band storage actually pays,
``2·kl + ku + 1 < n`` — so bandwidth ``n−1`` routes as ``general``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..specs.routing import STRUCTURES

__all__ = ["Structure", "probe", "probe_stack", "bandwidths"]


@dataclass
class Structure:
    """One probe verdict.

    ``label`` is the routing-table key; ``kl``/``ku`` the extracted
    band widths (dense fallback: ``n-1``); ``uplo`` the triangle a
    triangular/Cholesky route should reference; ``cholesky`` the
    retained trial-``potrf`` factor for ``spd``/``hpd`` (the caller's
    array is never touched); ``probe_cost`` the wall-clock seconds the
    probe took.
    """

    label: str
    kl: int = 0
    ku: int = 0
    uplo: str = "U"
    symmetric: bool = False
    hermitian: bool = False
    cholesky: np.ndarray | None = field(default=None, repr=False)
    probe_cost: float = 0.0

    def __post_init__(self):
        if self.label not in STRUCTURES:
            raise ValueError(f"unknown structure label {self.label!r}")


def bandwidths(a):
    """Exact ``(kl, ku)`` of a 2-D matrix from one nonzero sweep."""
    rows, cols = np.nonzero(a)
    if rows.size == 0:
        return 0, 0
    offsets = cols - rows
    return int(max(0, -offsets.min())), int(max(0, offsets.max()))


def _trial_cholesky(a, uplo="U"):
    """``potrf`` on a copy through the dispatch seam; ``None`` unless
    positive definite.  The probe pre-filters on a strictly positive
    real diagonal so obviously indefinite operands skip the kernel."""
    diag = np.diagonal(a)
    if np.iscomplexobj(diag):
        if (diag.imag != 0).any():
            return None
        diag = diag.real
    if not (diag > 0).all():
        return None
    from ..backends.kernels import potrf
    factor = a.copy()
    if int(potrf(factor, uplo)) != 0:
        return None
    return factor


def probe(a) -> Structure:
    """Classify one 2-D operand; non-square probes as ``general``.

    The ``symmetric``/``hermitian`` flags are recorded for *every*
    square operand, including ones whose routing label is a band shape:
    the solve route for a symmetric tridiagonal matrix is still
    ``la_gtsv``, but the eig front door uses the flags to stay on the
    symmetric eigensolver.
    """
    start = time.perf_counter()
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        return Structure("general",
                         probe_cost=time.perf_counter() - start)
    n = a.shape[0]
    kl, ku = bandwidths(a)
    iscomplex = np.iscomplexobj(a)
    symmetric = np.array_equal(a, a.T)
    hermitian = np.array_equal(a, a.conj().T) if iscomplex else symmetric
    label, uplo, factor = "general", "U", None
    if kl == 0 and ku == 0:
        label = "diagonal"
    elif ku == 0:
        label, uplo = "triangular", "L"
    elif kl == 0:
        label = "triangular"
    elif kl <= 1 and ku <= 1:
        label = "tridiagonal"
    elif 2 * kl + ku + 1 < n:
        label = "banded"
    elif hermitian:
        factor = _trial_cholesky(a)
        if factor is not None:
            label = "hpd" if iscomplex else "spd"
        else:
            label = "hermitian" if iscomplex else "symmetric"
    elif symmetric:
        label = "symmetric"          # complex symmetric, non-Hermitian
    return Structure(label, kl=kl, ku=ku, uplo=uplo,
                     symmetric=symmetric, hermitian=hermitian,
                     cholesky=factor,
                     probe_cost=time.perf_counter() - start)


def probe_stack(a) -> Structure:
    """Classify a ``(batch, n, n)`` stack for the ``batch_*`` routes.

    Stacked structure checks are vectorized over the whole stack;
    definiteness is probed on a representative slice (the first), since
    a stack route cannot reuse per-problem factors anyway — a later
    slice that turns out indefinite reports through ``BatchInfo``
    exactly as a direct ``batch_posv`` call would.  Only the structures
    with batched drivers are distinguished (``spd``/``hpd``,
    ``symmetric``, ``hermitian``, ``general``): there is no batched
    band or tridiagonal solver to route to.
    """
    start = time.perf_counter()
    if a.ndim != 3 or a.shape[1] != a.shape[2] or a.shape[0] == 0:
        return Structure("general",
                         probe_cost=time.perf_counter() - start)
    iscomplex = np.iscomplexobj(a)
    swapped = a.transpose(0, 2, 1)
    symmetric = np.array_equal(a, swapped)
    hermitian = np.array_equal(a, swapped.conj()) if iscomplex \
        else symmetric
    label = "general"
    if hermitian:
        label = "hermitian" if iscomplex else "symmetric"
        if _trial_cholesky(a[0]) is not None:
            label = "hpd" if iscomplex else "spd"
    elif symmetric:
        label = "symmetric"
    return Structure(label, kl=max(0, a.shape[1] - 1),
                     ku=max(0, a.shape[1] - 1),
                     symmetric=symmetric, hermitian=hermitian,
                     probe_cost=time.perf_counter() - start)
