"""One front door: structure-detecting auto-dispatch.

``repro.solve(a, b)``, ``repro.lstsq(a, b)`` and ``repro.eig(a)`` probe
the operand's structure (:mod:`~repro.dispatch_front.probe`), remember
the verdict per array (:mod:`~repro.dispatch_front.cache`), derive the
best registered driver from the DriverSpec registry's declarative
routing metadata (:mod:`repro.specs.routing`) and execute it through
the ordinary backend/resilience seams (:mod:`~repro.dispatch_front.api`)
— the LAPACK90 generic-interface idea taken one step further: the
paper's generic drivers dispatch on *type and rank*; the front door
also dispatches on *mathematical structure*.
"""

from .api import Explanation, eig, lstsq, solve
from .cache import invalidate as invalidate_structure_cache
from .cache import stats as structure_cache_stats
from .probe import Structure, probe, probe_stack

__all__ = ["solve", "lstsq", "eig", "Explanation", "Structure",
           "probe", "probe_stack", "invalidate_structure_cache",
           "structure_cache_stats"]
