"""The front door: ``repro.solve`` / ``repro.lstsq`` / ``repro.eig``.

Callers who know their matrix call ``la_posv``; callers who don't call
:func:`solve` and get the same driver chosen for them.  The flow is

1. **classify** — the per-array structure cache
   (:mod:`repro.dispatch_front.cache`) answers instantly for a repeat
   operand; otherwise :func:`~repro.dispatch_front.probe.probe` runs
   once and its verdict (including any trial-Cholesky factor) is cached.
2. **route** — :func:`repro.specs.routing.route` walks the refinement
   lattice over the DriverSpec registry's declarative
   ``problem_kind``/``structure`` metadata.  There is no structure→
   driver ladder in this module (lalint rule LA022): what is written by
   hand here is only the per-kernel *calling convention* — how the
   routed driver wants its operands shaped — keyed by ``spec.kernel``,
   exactly like the batched generator's ``_FAMILIES`` residue.
3. **execute** — the routed ``la_*`` driver runs with the caller's
   ``info`` handle, through the ordinary backend/resilience/deadline
   seams, *on copies*: unlike the drivers, the front door never
   overwrites its operands (it must not — a mutated operand would
   invalidate its own cache entry).  A cached ``spd``/``hpd`` verdict
   skips the refactorization entirely: the retained ``potrf`` factor
   goes straight to ``potrs`` inside the same ``LA_POSV`` contract
   (spec validation, driver guard, ERINFO report).

Stacked operands (``a.ndim == 3``) route through the spec-derived
``batch_*`` wrappers instead, chosen from the same metadata filtered by
``spec.batchable``.

``explain=True`` returns the :class:`Explanation` — classification,
candidate ladder and chosen driver — *without executing*.  ``assume=``
skips probing and pins the structure label (trusted, not verified: an
``assume="spd"`` on an indefinite matrix fails exactly like calling
``la_posv`` yourself).  When an :class:`~repro.errors.Info` handle is
passed, the verdict comes back with ``info.structure``,
``info.chosen_driver`` and ``info.probe_cost`` telemetry
(``probe_cost == 0.0`` on a cache hit).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..backends.kernels import potrs
from ..core import (la_gbsv, la_gels, la_geev, la_gesv, la_gtsv, la_heev,
                    la_hesv, la_posv, la_syev, la_sysv, la_trtrs)
from ..core.auxmod import _report, as_matrix, driver_guard
from ..errors import Info, is_error_code
from ..specs import validate_args
from ..specs.routing import STRUCTURES, candidates, route
from . import cache
from .probe import Structure, probe, probe_stack

__all__ = ["solve", "lstsq", "eig", "Explanation"]


@dataclass(frozen=True)
class Explanation:
    """What the front door *would* do — returned by ``explain=True``.

    ``candidates`` is the full refinement ladder the router considered,
    most specific first; ``chosen_driver`` is its head.  ``cached`` says
    whether the classification came from the structure cache;
    ``probe_cost`` is the probe's wall-clock seconds (0.0 when cached
    or assumed).
    """

    kind: str
    structure: str
    chosen_driver: str
    candidates: tuple
    batch: bool = False
    cached: bool = False
    probe_cost: float = 0.0


def _classify(a, assume):
    """``(Structure, cached)`` for ``a`` — cache, probe, or assumption."""
    if assume is not None:
        if assume not in STRUCTURES:
            raise ValueError(
                "assume={!r} is not a structure label; expected one of "
                "{}".format(assume, ", ".join(STRUCTURES)))
        sym = assume in ("spd", "symmetric")
        herm = assume in ("spd", "hpd", "symmetric", "hermitian")
        return Structure(assume, symmetric=sym, hermitian=herm), False
    st = cache.lookup(a)
    if st is not None:
        return st, True
    st = probe_stack(a) if a.ndim == 3 else probe(a)
    cache.store(a, st)  # laflow: atomic-split — probing runs unlocked by design; a racing store of the same verdict is idempotent
    return st, False


def _note(info, st, driver, cached):
    """Attach routing telemetry to the caller's ``Info`` handle."""
    if isinstance(info, Info):
        info.structure = st.label
        info.chosen_driver = driver
        info.probe_cost = 0.0 if cached else st.probe_cost


def _rhs_copy(a, b):
    """The working copy of the right-hand side.  The drivers' in-place
    contract forbids them from promoting a real ``b`` against a complex
    ``A``; the front door returns a fresh array, so it can."""
    return b.astype(np.result_type(a, b), copy=True)


def _batch_wrapper(spec):
    """The spec-derived ``batch_*`` wrapper for ``spec``."""
    from .. import batch as _batch
    return getattr(_batch, spec.name.replace("la_", "batch_", 1))


def _batch_route(kind, st, iscomplex):
    """First candidate on the refinement ladder with a batched wrapper,
    or ``None`` (the caller then loops the scalar driver per slice)."""
    for spec in candidates(kind, st.label, iscomplex):
        if spec.batchable:
            return spec
    return None


# -- per-kernel calling conventions (the hand-written residue) --------
# Each executor receives the *original* operands plus the probe verdict
# and runs the routed driver on copies, returning the solution.  The
# ``cached`` flag lets the posv convention reuse the retained factor.

def _band_storage(a, kl, ku):
    """Pack a dense band matrix into ``la_gbsv``'s ``2·kl+ku+1``-row
    factored-band layout (``A[i, j]`` at ``ab[kl+ku+i-j, j]``)."""
    n = a.shape[0]
    ab = np.zeros((2 * kl + ku + 1, n), dtype=a.dtype)
    for d in range(-kl, ku + 1):
        lo = max(0, d)
        ab[kl + ku - d, lo:lo + n - abs(d)] = np.diagonal(a, d)
    return ab


def _posv_from_factor(st, a, bc, info):
    """Repeat SPD solve: the cached trial-``potrf`` factor goes straight
    to ``potrs``, inside the full ``LA_POSV`` contract (spec validation,
    driver guard, ERINFO report) — the refactorization is what the cache
    exists to skip."""
    srname = "LA_POSV"
    linfo = validate_args("la_posv", a=a, b=bc, uplo=st.uplo)
    exc = None
    if linfo == 0 and a.shape[0] > 0:
        linfo, exc = driver_guard(srname, (1, a), (2, bc))
        if linfo == 0:
            bmat, _ = as_matrix(bc)
            linfo = potrs(st.cholesky, bmat, st.uplo)
    _report(srname, linfo, info, exc)
    return bc


def _exec_gesv(st, a, bc, info, cached):
    return la_gesv(a.copy(), bc, info=info)


def _exec_posv(st, a, bc, info, cached):
    if cached and st.cholesky is not None:
        return _posv_from_factor(st, a, bc, info)
    return la_posv(a.copy(), bc, uplo=st.uplo, info=info)


def _exec_sysv(st, a, bc, info, cached):
    return la_sysv(a.copy(), bc, info=info)


def _exec_hesv(st, a, bc, info, cached):
    return la_hesv(a.copy(), bc, info=info)


def _exec_gtsv(st, a, bc, info, cached):
    return la_gtsv(a.diagonal(-1).copy(), a.diagonal().copy(),
                   a.diagonal(1).copy(), bc, info=info)


def _exec_gbsv(st, a, bc, info, cached):
    return la_gbsv(_band_storage(a, st.kl, st.ku), bc, kl=st.kl,
                   info=info)


def _exec_trtrs(st, a, bc, info, cached):
    return la_trtrs(a, bc, uplo=st.uplo, info=info)


_SOLVERS = {
    "gesv": _exec_gesv,
    "posv": _exec_posv,
    "sysv": _exec_sysv,
    "hesv": _exec_hesv,
    "gtsv": _exec_gtsv,
    "gbsv": _exec_gbsv,
    "trtrs": _exec_trtrs,
}


def _exec_syev(st, a, info, vectors, driver):
    ac = a.copy()
    w = driver(ac, jobz="V" if vectors else "N", info=info)
    return (w, ac) if vectors else w


def _exec_geev(st, a, info, vectors, driver):
    ac = a.copy()
    if vectors:
        return driver(ac, vr=True, info=info)
    return driver(ac, info=info)


_EIG_DRIVERS = {"syev": la_syev, "heev": la_heev, "geev": la_geev}
_EIG_CONVENTIONS = {"syev": _exec_syev, "heev": _exec_syev,
                    "geev": _exec_geev}


def _eig_label(st, iscomplex):
    """The eig verb cares about symmetry, not band shape: a banded or
    tridiagonal operand that is also (Hermitian-)symmetric still routes
    to the symmetric eigensolver."""
    if iscomplex and st.hermitian:
        return "hermitian"
    if st.symmetric:
        return "symmetric"
    return st.label


# -- the three verbs --------------------------------------------------

def solve(a, b, *, info=None, explain=False, assume=None):
    """Solve ``A x = b`` through the structure-routed front door.

    Returns the solution with ``b``'s shape; ``a`` and ``b`` are never
    overwritten.  ``info``/``explain``/``assume`` per the module
    docstring; a ``(batch, n, n)`` stack routes to the ``batch_*``
    wrappers (pass ``info=BatchInfo()`` for per-problem codes).
    """
    a = np.asarray(a)
    b = np.asarray(b)
    st, cached = _classify(a, assume)
    iscomplex = np.iscomplexobj(a)
    if a.ndim == 3:
        spec = _batch_route("solve", st, iscomplex)
        if explain:
            return Explanation(
                "solve", st.label, spec.name,
                tuple(s.name for s in candidates("solve", st.label,
                                                 iscomplex)),
                batch=True, cached=cached,
                probe_cost=0.0 if cached else st.probe_cost)
        x = _batch_wrapper(spec)(a.copy(), _rhs_copy(a, b), info=info)
        _note(info, st, spec.name, cached)
        return x
    spec = route("solve", st.label, iscomplex)
    if explain:
        return Explanation(
            "solve", st.label, spec.name,
            tuple(s.name for s in candidates("solve", st.label,
                                             iscomplex)),
            cached=cached, probe_cost=0.0 if cached else st.probe_cost)
    x = _SOLVERS[spec.kernel](st, a, _rhs_copy(a, b), info, cached)
    _note(info, st, spec.name, cached)
    return x


def lstsq(a, b, *, trans="N", info=None, explain=False):
    """Least-squares solve ``min ‖A x − b‖₂`` through the front door.

    The routing metadata resolves every structure to the QR/LQ driver
    today (``la_gels``); classification still runs so the telemetry and
    the routing table stay honest when a specialised least-squares
    driver is registered.  Returns the solution (``n`` rows for
    ``trans="N"``); never overwrites ``a``/``b``.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    st, cached = _classify(a, None)
    iscomplex = np.iscomplexobj(a)
    if a.ndim == 3:
        spec = _batch_route("lstsq", st, iscomplex)
        if explain:
            return Explanation(
                "lstsq", st.label, spec.name,
                tuple(s.name for s in candidates("lstsq", st.label,
                                                 iscomplex)),
                batch=True, cached=cached,
                probe_cost=0.0 if cached else st.probe_cost)
        x = _batch_wrapper(spec)(a.copy(), _rhs_copy(a, b), trans=trans,
                                 info=info)
        _note(info, st, spec.name, cached)
        return x
    spec = route("lstsq", st.label, iscomplex)
    if explain:
        return Explanation(
            "lstsq", st.label, spec.name,
            tuple(s.name for s in candidates("lstsq", st.label,
                                             iscomplex)),
            cached=cached, probe_cost=0.0 if cached else st.probe_cost)
    x = la_gels(a.copy(), _rhs_copy(a, b), trans=trans, info=info) \
        if spec.kernel == "gels" else \
        _SOLVERS[spec.kernel](st, a, _rhs_copy(a, b), info, cached)
    _note(info, st, spec.name, cached)
    return x


def eig(a, *, vectors=False, info=None, explain=False, assume=None):
    """Eigenvalues (and optionally eigenvectors) through the front door.

    Symmetric/Hermitian operands route to ``la_syev``/``la_heev`` and
    return real eigenvalues ascending (plus the orthonormal eigenvector
    matrix when ``vectors=True``); everything else routes to ``la_geev``
    and returns complex eigenvalues (plus right eigenvectors).  ``a`` is
    never overwritten.  A ``(batch, n, n)`` stack uses ``batch_syev``/
    ``batch_heev`` when the structure allows, and loops the scalar
    driver per slice otherwise.
    """
    a = np.asarray(a)
    st, cached = _classify(a, assume)
    iscomplex = np.iscomplexobj(a)
    label = _eig_label(st, iscomplex)
    if a.ndim == 3:
        return _eig_stack(a, st, label, iscomplex, vectors, info,
                          explain, cached)
    spec = route("eig", label, iscomplex)
    if explain:
        return Explanation(
            "eig", st.label, spec.name,
            tuple(s.name for s in candidates("eig", label, iscomplex)),
            cached=cached, probe_cost=0.0 if cached else st.probe_cost)
    out = _EIG_CONVENTIONS[spec.kernel](st, a, info, vectors,
                                        _EIG_DRIVERS[spec.kernel])
    _note(info, st, spec.name, cached)
    return out


def _eig_stack(a, st, label, iscomplex, vectors, info, explain, cached):
    batched = Structure(label, symmetric=st.symmetric,
                        hermitian=st.hermitian)
    spec = _batch_route("eig", batched, iscomplex)
    if spec is not None:
        if explain:
            return Explanation(
                "eig", st.label, spec.name,
                tuple(s.name for s in candidates("eig", label,
                                                 iscomplex)),
                batch=True, cached=cached,
                probe_cost=0.0 if cached else st.probe_cost)
        ac = a.copy()
        w = _batch_wrapper(spec)(ac, jobz="V" if vectors else "N",
                                 info=info)
        _note(info, st, spec.name, cached)
        return (w, ac) if vectors else w
    # No batched eigensolver on the ladder (general stacks): loop the
    # routed scalar driver per slice, recording per-problem codes on a
    # BatchInfo when one is supplied.
    from ..batch import BatchInfo
    spec = route("eig", label, iscomplex)
    if explain:
        return Explanation(
            "eig", st.label, spec.name,
            tuple(s.name for s in candidates("eig", label, iscomplex)),
            batch=True, cached=cached,
            probe_cost=0.0 if cached else st.probe_cost)
    batch = a.shape[0]
    binfo = info if isinstance(info, BatchInfo) else None
    if binfo is not None:
        binfo._arm(batch)
    ws, vrs = [], []
    first_failure = 0
    for k in range(batch):
        pinfo = binfo.problems[k] if binfo is not None else info
        out = _EIG_CONVENTIONS[spec.kernel](st, a[k], pinfo, vectors,
                                            _EIG_DRIVERS[spec.kernel])
        if vectors:
            ws.append(out[0])
            vrs.append(out[1])
        else:
            ws.append(out)
        if binfo is not None and first_failure == 0 \
                and is_error_code(binfo.problems[k].value):
            first_failure = binfo.problems[k].value
    if binfo is not None:
        binfo.value = first_failure
    w = np.stack(ws)
    _note(info, st, spec.name, cached)
    return (w, np.stack(vrs)) if vectors else w
