"""Per-array structure cache for the dispatch front door.

Probing is cheap but not free (a ``nonzero`` sweep plus, for candidate
SPD operands, a trial Cholesky).  Iterative codes solve against the
*same* operand many times, so the front door remembers each array's
probe verdict and re-routes without re-probing — the acceptance gate in
``benchmarks/test_dispatch_overhead.py`` holds the cached path under 5%
overhead versus calling the driver directly.

The cache never holds a strong reference to a user array (that would
pin arbitrarily large operands alive; note ``np.ndarray`` does not
support weak references either).  An entry is keyed by ``id(a)`` and
revalidated on every hit against recorded metadata — shape, dtype,
writeable flag, base data pointer, strides — plus a sampled
*fingerprint* of up to 16 elements.  A recycled id or an in-place
mutation that touches a sampled element therefore reads as a miss and
the entry is re-probed.  (A mutation that dodges every sampled element
of a writeable array is undetectable by design — callers doing in-place
updates between solves should pass ``assume=`` or call
:func:`invalidate`; the Users' Guide spells this out.)

Backend switches invalidate everything: the retained Cholesky factor
was computed by the departed substrate, and bit-reproducibility of the
cached-reuse path is only guaranteed within one backend.  The hook is
registered on :func:`repro.backends.on_backend_switch` at import time;
each switch bumps a monotonically increasing *epoch* surfaced (with
hit/miss counters) through ``repro.resilience.health.healthcheck()``.

All cache state is guarded by the process-wide ``STATE_LOCK``, same as
the backend selection it is layered over.
"""

from __future__ import annotations

import numpy as np

from .._sync import STATE_LOCK
from ..backends import on_backend_switch

__all__ = ["lookup", "store", "invalidate", "clear", "stats",
           "fingerprint", "MAX_ENTRIES"]

#: Hard cap on live entries; storing past it evicts the oldest entry
#: (insertion order), which keeps the cache O(1) for long-running
#: processes that touch many distinct operands once.
MAX_ENTRIES = 256

#: Number of elements sampled into the mutation fingerprint.
_SAMPLES = 16

_ENTRIES: dict = {}  # id(a) -> (metadata tuple, fingerprint, Structure)
_STATS = {"hits": 0, "misses": 0, "invalidated": 0, "epoch": 0}


def fingerprint(a) -> bytes:
    """Bytes of up to ``_SAMPLES`` evenly spaced elements of ``a``."""
    if a.size == 0:
        return b""
    idx = np.linspace(0, a.size - 1, min(a.size, _SAMPLES), dtype=np.intp)
    return a.flat[idx].tobytes()


def _metadata(a):
    return (a.shape, a.dtype.str, a.flags.writeable,
            a.__array_interface__["data"][0], a.strides)


def lookup(a):
    """The cached :class:`~repro.dispatch_front.probe.Structure` for
    ``a``, or ``None`` after any metadata or fingerprint drift."""
    key = id(a)
    with STATE_LOCK:
        entry = _ENTRIES.get(key)  # laflow: atomic-split — revalidation reads the array outside the lock; the delete region re-checks `is entry` first
        if entry is None:
            _STATS["misses"] += 1
            return None
        meta, prints, structure = entry
    # Revalidation reads the array outside the lock: the metadata is
    # immutable tuples and a stale verdict is resolved below.
    if meta != _metadata(a) or prints != fingerprint(a):
        with STATE_LOCK:
            if _ENTRIES.get(key) is entry:  # laflow: atomic-split — miss path; a racing store of the same operand is idempotent
                del _ENTRIES[key]
                _STATS["invalidated"] += 1
            _STATS["misses"] += 1
        return None
    with STATE_LOCK:
        _STATS["hits"] += 1
    return structure


def store(a, structure):
    """Remember ``structure`` as the probe verdict for ``a``."""
    meta, prints = _metadata(a), fingerprint(a)
    with STATE_LOCK:
        _ENTRIES.pop(id(a), None)
        while len(_ENTRIES) >= MAX_ENTRIES:
            del _ENTRIES[next(iter(_ENTRIES))]
        _ENTRIES[id(a)] = (meta, prints, structure)
    return structure


def invalidate(a=None) -> int:
    """Drop the entry for ``a`` (or every entry when ``a`` is None);
    returns how many entries were dropped."""
    with STATE_LOCK:
        if a is None:
            dropped = len(_ENTRIES)
            _ENTRIES.clear()
        else:
            dropped = 1 if _ENTRIES.pop(id(a), None) is not None else 0
        _STATS["invalidated"] += dropped
    return dropped


def clear() -> int:
    """Alias for ``invalidate()`` with no argument."""
    return invalidate()


def stats() -> dict:
    """Snapshot: ``{"entries", "hits", "misses", "invalidated",
    "epoch"}`` — merged into ``healthcheck()``'s report."""
    with STATE_LOCK:
        snapshot = dict(_STATS)
        snapshot["entries"] = len(_ENTRIES)
    return snapshot


def reset_stats():
    """Zero the counters (the epoch is preserved) — test scaffolding."""
    with STATE_LOCK:
        epoch = _STATS["epoch"]
        _STATS.update(hits=0, misses=0, invalidated=0, epoch=epoch)


@on_backend_switch
def _on_backend_switch(previous, selected):
    """Every effective backend switch starts a new cache epoch: cached
    Cholesky factors belong to the departed substrate."""
    with STATE_LOCK:
        dropped = len(_ENTRIES)
        _ENTRIES.clear()
        _STATS["invalidated"] += dropped
        _STATS["epoch"] += 1
