"""Backend parity: hypothesis-driven random systems solved under both
substrates agree to componentwise-backward-error tolerance.

The componentwise backward error of a computed solution x̂ is
``max_i |A x̂ − b|_i / (|A| |x̂| + |b|)_i`` (Oettli–Prager); a solver is
backward stable when it is O(eps).  Both substrates must pass the same
bound — and their factors must describe the same pivot sequence for LU.
Skips cleanly when SciPy (the accelerated substrate) is absent.
"""

import warnings

import numpy as np
import pytest

from repro import backends, la_gesv, la_posv, la_sysv, use_backend

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

if "accelerated" not in backends.available_backends():
    pytest.skip("SciPy (accelerated backend) not available",
                allow_module_level=True)

SETTINGS = dict(max_examples=25, deadline=None)

dims = st.integers(min_value=1, max_value=24)
seeds = st.integers(min_value=0, max_value=2**31 - 1)
nrhs_st = st.integers(min_value=1, max_value=3)


def _cwise_backward_error(a, x, b):
    x2 = x if x.ndim == 2 else x[:, None]
    b2 = b if b.ndim == 2 else b[:, None]
    resid = np.abs(a @ x2 - b2)
    denom = np.abs(a) @ np.abs(x2) + np.abs(b2)
    mask = denom > 0
    if not mask.any():
        return 0.0
    return float((resid[mask] / denom[mask]).max())


def _tol(dtype):
    return 50 * np.finfo(np.dtype(dtype)).eps


def _both(driver, a, b):
    out = {}
    for name in ("reference", "accelerated"):
        with use_backend(name):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                ai, bi = a.copy(), b.copy()
                driver(ai, bi)
        out[name] = bi
    return out["reference"], out["accelerated"]


@settings(**SETTINGS)
@given(n=dims, nrhs=nrhs_st, seed=seeds,
       dtype=st.sampled_from([np.float64, np.complex128]))
def test_gesv_parity(n, nrhs, seed, dtype):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    if np.dtype(dtype).kind == "c":
        a = a + 1j * rng.standard_normal((n, n))
    a = (a + n * np.eye(n)).astype(dtype)
    b = a @ rng.standard_normal((n, nrhs)).astype(dtype)
    x_ref, x_acc = _both(la_gesv, a, b)
    tol = _tol(np.float64)
    assert _cwise_backward_error(a, x_ref, b) <= tol
    assert _cwise_backward_error(a, x_acc, b) <= tol


@settings(**SETTINGS)
@given(n=dims, seed=seeds,
       dtype=st.sampled_from([np.float32, np.float64]))
def test_posv_parity(n, seed, dtype):
    rng = np.random.default_rng(seed)
    g = rng.standard_normal((n, n))
    a = (g @ g.T + n * np.eye(n)).astype(dtype)
    b = a @ rng.standard_normal(n).astype(dtype)
    x_ref, x_acc = _both(la_posv, a, b)
    tol = _tol(dtype)
    assert _cwise_backward_error(a, x_ref, b) <= tol
    assert _cwise_backward_error(a, x_acc, b) <= tol


@settings(**SETTINGS)
@given(n=dims, seed=seeds)
def test_sysv_parity(n, seed):
    rng = np.random.default_rng(seed)
    g = rng.standard_normal((n, n))
    a = g + g.T + n * np.eye(n)
    b = a @ rng.standard_normal(n)
    x_ref, x_acc = _both(la_sysv, a, b)
    tol = _tol(np.float64)
    assert _cwise_backward_error(a, x_ref, b) <= tol
    assert _cwise_backward_error(a, x_acc, b) <= tol


@settings(**SETTINGS)
@given(n=dims, seed=seeds)
def test_lu_pivot_sequences_match(n, seed):
    """The adapters' pivot convention is the reference convention —
    same permutation, elementwise."""
    from repro.backends.kernels import getrf
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    a_ref, a_acc = a.copy(), a.copy()
    with use_backend("reference"):
        piv_ref, info_ref = getrf(a_ref)
    with use_backend("accelerated"):
        piv_acc, info_acc = getrf(a_acc)
    assert info_ref == info_acc == 0
    np.testing.assert_array_equal(piv_ref, piv_acc)


@settings(**SETTINGS)
@given(n=dims, seed=seeds)
def test_syev_parity_spectrum(n, seed):
    """Eigenvalues agree absolutely (eigenvectors may differ by sign /
    phase, so parity is on the spectrum and the residual)."""
    from repro import la_syev
    rng = np.random.default_rng(seed)
    g = rng.standard_normal((n, n))
    a = (g + g.T) / 2
    outs = {}
    for name in ("reference", "accelerated"):
        with use_backend(name):
            ai = a.copy()
            w = la_syev(ai, jobz="V")
            outs[name] = (w, ai)
    w_ref, _ = outs["reference"]
    w_acc, v_acc = outs["accelerated"]
    scale = max(1.0, float(np.abs(w_ref).max()))
    np.testing.assert_allclose(w_acc, w_ref, atol=200 * scale *
                               np.finfo(np.float64).eps)
    resid = np.linalg.norm(a @ v_acc - v_acc * w_acc)
    assert resid <= 100 * n * scale * np.finfo(np.float64).eps
