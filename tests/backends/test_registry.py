"""Backend registry semantics: selection (global / context / per-call /
environment), per-routine fallback with announcement, and the fault
seam that keeps injection tests backend-agnostic."""

import os
import pathlib
import subprocess
import sys
import warnings

import numpy as np
import pytest

from repro import (BackendFallbackWarning, backends, exception_policy,
                   la_gesv, la_posv, use_backend)
from repro.backends import kernels
from repro.errors import SingularMatrix
from repro.testing import faultinject

HAVE_ACCELERATED = "accelerated" in backends.available_backends()

needs_accelerated = pytest.mark.skipif(
    not HAVE_ACCELERATED, reason="SciPy (accelerated backend) not available")


@pytest.fixture(autouse=True)
def _pin_reference():
    # The process-global selection may have been initialised from
    # REPRO_BACKEND (the CI matrix runs the whole suite that way); pin
    # the documented default for the test body and restore after.
    before = backends.set_backend("reference")
    yield
    backends.set_backend(before)


def _system(n=6, dtype=np.float64, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n)).astype(dtype)
    a += n * np.eye(n, dtype=dtype)
    b = a.sum(axis=1)
    return a, b


class TestSelection:
    def test_reference_is_always_registered_and_first(self):
        assert backends.available_backends()[0] == "reference"
        assert "reference" in backends.KNOWN_BACKENDS

    def test_default_selection_is_reference(self):
        # in a fresh process with no REPRO_BACKEND the default is
        # reference (the in-process global may differ; see _pin_reference)
        env = dict(os.environ)
        env.pop("REPRO_BACKEND", None)
        repo = pathlib.Path(__file__).parents[2]
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = str(repo / "src") + (
            os.pathsep + existing if existing else "")
        proc = subprocess.run(
            [sys.executable, "-c",
             "import repro, sys;"
             "sys.exit(0 if repro.get_backend_name() == 'reference'"
             " else 1)"], env=env, cwd=str(repo))
        assert proc.returncode == 0

    def test_set_backend_returns_previous(self):
        prev = backends.set_backend("accelerated")
        try:
            assert prev == "reference"
            assert backends.get_backend_name() == "accelerated"
        finally:
            backends.set_backend(prev)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            backends.set_backend("cuda")
        with pytest.raises(ValueError):
            with use_backend("nosuch"):
                pass

    def test_context_manager_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_backend("accelerated"):
                assert backends.get_backend_name() == "accelerated"
                raise RuntimeError("boom")
        assert backends.get_backend_name() == "reference"

    @staticmethod
    def _subprocess(code, backend):
        env = dict(os.environ)
        repo = pathlib.Path(__file__).parents[2]
        src = str(repo / "src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src + (os.pathsep + existing
                                   if existing else "")
        env["REPRO_BACKEND"] = backend
        return subprocess.run([sys.executable, "-c", code], env=env,
                              cwd=str(repo))

    def test_env_var_initialises_selection(self):
        proc = self._subprocess(
            "import repro, sys;"
            "sys.exit(0 if repro.get_backend_name() == 'accelerated'"
            " else 1)", "accelerated")
        assert proc.returncode == 0

    def test_env_var_unknown_name_warns_not_raises(self):
        proc = self._subprocess(
            "import warnings\n"
            "with warnings.catch_warnings(record=True) as rec:\n"
            "    warnings.simplefilter('always')\n"
            "    import repro\n"
            "bad = [w for w in rec if 'REPRO_BACKEND' in str(w.message)]\n"
            "assert bad, rec\n"
            "assert repro.get_backend_name() == 'reference'\n", "sparc")
        assert proc.returncode == 0


class TestDispatch:
    @needs_accelerated
    def test_proxy_routes_by_selection(self):
        a, b = _system()
        ref = backends.get_backend("reference").get("gesv")
        acc = backends.get_backend("accelerated").get("gesv")
        assert backends.resolve("gesv", a.dtype) is ref
        with use_backend("accelerated"):
            assert backends.resolve("gesv", a.dtype) is acc

    @needs_accelerated
    def test_driver_backend_kwarg(self):
        a, b = _system()
        x_ref = la_gesv(a.copy(), b.copy())
        x_acc = la_gesv(a.copy(), b.copy(), backend="accelerated")
        np.testing.assert_allclose(x_acc, x_ref, rtol=1e-12)

    def test_driver_backend_kwarg_rejects_unknown(self):
        a, b = _system()
        with pytest.raises(ValueError):
            la_gesv(a.copy(), b.copy(), backend="nosuch")

    def test_unknown_routine_raises_lookup(self):
        with pytest.raises(LookupError):
            backends.resolve("nosuchkernel")


class TestFallback:
    def test_unserved_routine_falls_back_with_warning(self):
        backends.reset_fallback_announcements()
        a = np.triu(_system()[0])
        with use_backend("accelerated"):
            with warnings.catch_warnings(record=True) as rec:
                warnings.simplefilter("always")
                # trtri is reference-only in every configuration
                info = kernels.trtri(a)
        assert info == 0
        got = [w for w in rec
               if issubclass(w.category, BackendFallbackWarning)]
        assert got and "trtri" in str(got[0].message)

    def test_fallback_announced_once_per_routine(self):
        backends.reset_fallback_announcements()
        with use_backend("accelerated"):
            for _ in range(3):
                with warnings.catch_warnings(record=True) as rec:
                    warnings.simplefilter("always")
                    kernels.trcon(np.eye(4))
        later = [w for w in rec
                 if issubclass(w.category, BackendFallbackWarning)]
        assert later == []

    @needs_accelerated
    def test_unsupported_dtype_falls_back(self):
        backends.reset_fallback_announcements()
        acc = backends.get_backend("accelerated")
        assert acc.supports("syev", np.float64)
        assert not acc.supports("syev", np.complex128)
        ref = backends.get_backend("reference").get("syev")
        with use_backend("accelerated"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", BackendFallbackWarning)
                assert backends.resolve("syev", np.complex128) is ref


class TestFaultSeam:
    @needs_accelerated
    def test_armed_faults_route_to_reference(self):
        with use_backend("accelerated"):
            with faultinject.injected("getf2", zero_pivot=2):
                ref = backends.get_backend("reference").get("gesv")
                assert backends.resolve("gesv", np.float64) is ref
            acc = backends.get_backend("accelerated").get("gesv")
            assert backends.resolve("gesv", np.float64) is acc

    @needs_accelerated
    def test_injected_fault_fires_under_accelerated(self):
        a, b = _system()
        with use_backend("accelerated"):
            with faultinject.injected("getf2", zero_pivot=2):
                with pytest.raises(SingularMatrix) as e:
                    la_gesv(a.copy(), b.copy())
        assert e.value.info == 3


class TestAdapterContracts:
    @needs_accelerated
    def test_positive_info_leaves_b_unsolved(self):
        a = np.zeros((3, 3))
        b = np.arange(3.0)
        b0 = b.copy()
        with use_backend("accelerated"):
            with pytest.raises(SingularMatrix):
                la_gesv(a, b)
        np.testing.assert_array_equal(b, b0)

    @needs_accelerated
    def test_nan_cholesky_pivot_reported(self):
        a = np.diag([np.nan, 1.0])
        with use_backend("accelerated"):
            info = kernels.potrf(a.copy())
        assert info == 1

    @needs_accelerated
    def test_posv_fallback_ladder_runs_accelerated(self):
        # indefinite but symmetric: posv fails, the policy ladder
        # retries through sysv — all dispatched to the same backend
        rng = np.random.default_rng(3)
        s = rng.standard_normal((5, 5))
        s = s + s.T
        b = s.sum(axis=1)
        with exception_policy(fallbacks=True):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                x = la_posv(s.copy(), b.copy(), backend="accelerated")
        np.testing.assert_allclose(x, np.ones(5), atol=1e-8)
