"""Concurrency stress for the process-global configuration state.

LA015's companion runtime guarantee: backend selection, the exception
policy and the block-size table are all guarded by one shared
re-entrant lock (:data:`repro._sync.STATE_LOCK`), so N threads flipping
the knobs while other threads solve never observe a torn update or
corrupt the tables permanently.
"""

import threading
import warnings

import numpy as np
import pytest

from repro import _sync, backends, config, policy
from repro import exception_policy, la_gesv, set_policy, solve, use_backend
from repro.dispatch_front import cache
from repro.errors import Info
from repro.resilience import (breaker, breaker_state, breaker_states,
                              get_resilience, reset_breakers,
                              reset_open_warnings, resilience_policy,
                              set_resilience)
from repro.resilience.ratelimit import RateLimiter
from repro.testing import faultinject as fi

N_THREADS = 8
N_ITER = 60


@pytest.fixture(autouse=True)
def _restore_state():
    backend = backends.get_backend_name()
    pol = policy.get_policy()
    before = (pol.nonfinite, pol.rcond_guard, pol.fallbacks)
    nb = config.get_block_size("getrf")
    res = get_resilience()
    res_before = (res.retries, res.breaker_threshold,
                  res.breaker_cooldown, res.warning_window)
    yield
    backends.set_backend(backend)
    set_policy(nonfinite=before[0], rcond_guard=before[1],
               fallbacks=before[2])
    config.set_block_size("getrf", nb)
    set_resilience(retries=res_before[0], breaker_threshold=res_before[1],
                   breaker_cooldown=res_before[2],
                   warning_window=res_before[3])
    fi.chaos_clear()
    reset_breakers()
    reset_open_warnings()


def _system(n=8, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    a += n * np.eye(n)
    b = a.sum(axis=1)
    return a, b


def test_state_lock_is_shared_and_reentrant():
    # One lock guards all three owners, and it must be an RLock: the
    # context managers restore through the setters while holding it.
    assert isinstance(_sync.STATE_LOCK, type(threading.RLock()))
    with _sync.STATE_LOCK:
        with _sync.STATE_LOCK:      # re-entry must not deadlock
            backends.set_backend(backends.get_backend_name())
            set_policy(fallbacks=False)


def test_threads_flipping_state_while_drivers_solve():
    errors = []
    start = threading.Barrier(N_THREADS)

    def solver(seed):
        start.wait()
        a, b = _system(seed=seed)
        for _ in range(N_ITER):
            info = Info()
            x = la_gesv(a.copy(), b.copy(), info=info)
            if info.value != 0:
                errors.append(f"solver info={info.value}")
                return
            if not np.allclose(a @ x, b, atol=1e-8):
                errors.append("solver residual blew up")
                return

    def backend_flipper():
        start.wait()
        for i in range(N_ITER):
            name = "accelerated" if i % 2 else "reference"
            try:
                with use_backend(name):
                    got = backends.get_backend_name()
                    if got not in ("reference", "accelerated"):
                        errors.append(f"torn backend read: {got!r}")
                        return
            except Exception as exc:          # noqa: BLE001
                errors.append(f"backend flip raised: {exc!r}")
                return

    def policy_flipper():
        start.wait()
        for i in range(N_ITER):
            mode = "check" if i % 2 else "propagate"
            try:
                with exception_policy(nonfinite=mode):
                    got = policy.get_policy().nonfinite
                    if got not in ("check", "warn", "propagate"):
                        errors.append(f"torn policy read: {got!r}")
                        return
            except Exception as exc:          # noqa: BLE001
                errors.append(f"policy flip raised: {exc!r}")
                return

    def block_flipper():
        start.wait()
        for i in range(N_ITER):
            try:
                with config.block_size_override("getrf", 8 + (i % 4)):
                    nb = config.get_block_size("getrf")
                    if nb < 1:
                        errors.append(f"torn block size: {nb}")
                        return
            except Exception as exc:          # noqa: BLE001
                errors.append(f"block flip raised: {exc!r}")
                return

    workers = [threading.Thread(target=solver, args=(s,))
               for s in range(N_THREADS - 3)]
    workers += [threading.Thread(target=backend_flipper),
                threading.Thread(target=policy_flipper),
                threading.Thread(target=block_flipper)]
    for t in workers:
        t.start()
    for t in workers:
        t.join(timeout=120)
    assert not any(t.is_alive() for t in workers), "stress test hung"
    assert errors == []


def test_context_managers_restore_under_contention():
    # Scoped overrides of *distinct* knobs from concurrent threads must
    # leave the defaults exactly as they found them once every thread
    # exits.  (Two threads scoping the same knob is inherently
    # last-restore-wins — the lock makes each transition atomic, not
    # the nesting commutative.)
    backends.set_backend("reference")
    set_policy(nonfinite="propagate", rcond_guard="silent",
               fallbacks=False)
    config.set_block_size("getrf", 64)
    start = threading.Barrier(3)

    def churn_backend():
        start.wait()
        for j in range(N_ITER):
            with use_backend("accelerated" if j % 2 else "reference"):
                backends.get_backend_name()

    def churn_policy():
        start.wait()
        for _ in range(N_ITER):
            with exception_policy(nonfinite="warn", fallbacks=True):
                policy.get_policy()

    def churn_blocks():
        start.wait()
        for j in range(N_ITER):
            with config.block_size_override("getrf", 8 + (j % 4)):
                config.get_block_size("getrf")

    threads = [threading.Thread(target=f)
               for f in (churn_backend, churn_policy, churn_blocks)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert backends.get_backend_name() == "reference"
    pol = policy.get_policy()
    assert (pol.nonfinite, pol.rcond_guard, pol.fallbacks) \
        == ("propagate", "silent", False)
    assert config.get_block_size("getrf") == 64


def test_breaker_trips_and_resets_under_contention():
    # Solver threads hammer a permanently-failing accelerated pair —
    # tripping its breaker — while other threads reset and read the
    # registry concurrently.  Every solve must still come back correct
    # (escalation or open-route), and no reader may observe a state
    # outside the three-value machine.
    if "accelerated" not in backends.available_backends():
        pytest.skip("breaker contention needs a second backend")
    errors = []
    start = threading.Barrier(N_THREADS)

    def failing_solver(seed):
        start.wait()
        a, b = _system(seed=seed)
        for _ in range(N_ITER):
            info = Info()
            x = la_gesv(a.copy(), b.copy(), info=info,
                        backend="accelerated")
            if info.value != 0:
                errors.append(f"solver info={info.value}")
                return
            if not np.allclose(a @ x, b, atol=1e-8):
                errors.append("solver residual blew up")
                return

    def resetter():
        start.wait()
        for _ in range(N_ITER):
            try:
                reset_breakers()
            except Exception as exc:          # noqa: BLE001
                errors.append(f"reset raised: {exc!r}")
                return

    def reader():
        start.wait()
        for _ in range(N_ITER):
            st = breaker_state("accelerated", "gesv")
            if st not in ("closed", "open", "half-open"):
                errors.append(f"torn breaker state: {st!r}")
                return
            for state in breaker_states().values():
                if state not in ("open", "half-open"):
                    errors.append(f"torn registry entry: {state!r}")
                    return

    with resilience_policy(retries=0, breaker_threshold=2,
                           breaker_cooldown=30.0):
        # Every accelerated attempt fails; escalation keeps answers
        # correct while failures accumulate toward (and past) the trip.
        fi.chaos_install("gesv", flaky_every=1, backend="accelerated")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            workers = [threading.Thread(target=failing_solver, args=(s,))
                       for s in range(N_THREADS - 3)]
            workers += [threading.Thread(target=resetter),
                        threading.Thread(target=resetter),
                        threading.Thread(target=reader)]
            for t in workers:
                t.start()
            for t in workers:
                t.join(timeout=120)
    assert not any(t.is_alive() for t in workers), "stress test hung"
    assert errors == []
    # Once quiet and reset, the registry drains and tracking disarms.
    fi.chaos_clear()
    reset_breakers()
    assert breaker_states() == {}
    assert not breaker.TRACKING


def test_resilience_policy_restores_under_contention():
    # Same contract as the config/policy churn above: concurrent scoped
    # overrides of *distinct* resilience knobs must leave the globals
    # exactly as they found them.
    set_resilience(retries=1, breaker_threshold=3,
                   breaker_cooldown=30.0, warning_window=60.0)
    start = threading.Barrier(3)

    def churn_retries():
        start.wait()
        for j in range(N_ITER):
            with resilience_policy(retries=j % 4):
                get_resilience()

    def churn_threshold():
        start.wait()
        for j in range(N_ITER):
            with resilience_policy(breaker_threshold=2 + (j % 5)):
                get_resilience()

    def churn_windows():
        start.wait()
        for j in range(N_ITER):
            with resilience_policy(breaker_cooldown=float(j % 7),
                                   warning_window=float(j % 3)):
                get_resilience()

    threads = [threading.Thread(target=f)
               for f in (churn_retries, churn_threshold, churn_windows)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    res = get_resilience()
    assert (res.retries, res.breaker_threshold, res.breaker_cooldown,
            res.warning_window) == (1, 3, 30.0, 60.0)


def test_structure_cache_survives_probe_insert_invalidate_races():
    # The front door's per-array structure cache (LA023's largest
    # guarded surface) under fire: solver threads probe/hit/store the
    # same operands, invalidators drop entries wholesale, and backend
    # flippers bump the epoch (which clears the cache through the
    # switch hook) — all while every solve must stay correct and every
    # stats() snapshot internally consistent.
    errors = []
    start = threading.Barrier(N_THREADS)
    rng = np.random.default_rng(7)
    spd = rng.standard_normal((8, 8))
    spd = spd @ spd.T + 8 * np.eye(8)
    gen, rhs = _system(seed=3)
    cache.clear()
    cache.reset_stats()
    epoch0 = cache.stats()["epoch"]

    def solver(seed):
        start.wait()
        b = spd.sum(axis=1)
        for i in range(N_ITER):
            info = Info()
            a = spd if i % 2 else gen
            bb = b if i % 2 else rhs
            x = solve(a, bb, info=info)
            if info.value != 0:
                errors.append(f"solve info={info.value}")
                return
            if not np.allclose(a @ x, bb, atol=1e-8):
                errors.append("front-door residual blew up")
                return

    def invalidator():
        start.wait()
        for i in range(N_ITER):
            try:
                if i % 3 == 0:
                    cache.clear()
                elif i % 3 == 1:
                    cache.invalidate(spd)
                else:
                    cache.invalidate(gen)
            except Exception as exc:          # noqa: BLE001
                errors.append(f"invalidate raised: {exc!r}")
                return

    def epoch_bumper():
        start.wait()
        for i in range(N_ITER):
            try:
                with use_backend("accelerated" if i % 2 else "reference"):
                    pass
            except Exception as exc:          # noqa: BLE001
                errors.append(f"backend flip raised: {exc!r}")
                return

    def stats_reader():
        start.wait()
        last_epoch = epoch0
        for _ in range(N_ITER):
            st = cache.stats()
            if st["entries"] < 0 or st["entries"] > cache.MAX_ENTRIES:
                errors.append(f"entry count out of range: {st}")
                return
            if min(st["hits"], st["misses"], st["invalidated"]) < 0:
                errors.append(f"negative counter: {st}")
                return
            if st["epoch"] < last_epoch:
                errors.append(f"epoch went backwards: {st}")
                return
            last_epoch = st["epoch"]

    workers = [threading.Thread(target=solver, args=(s,))
               for s in range(N_THREADS - 3)]
    workers += [threading.Thread(target=invalidator),
                threading.Thread(target=epoch_bumper),
                threading.Thread(target=stats_reader)]
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        for t in workers:
            t.start()
        for t in workers:
            t.join(timeout=120)
    assert not any(t.is_alive() for t in workers), "cache stress hung"
    assert errors == []
    # Quiesced: one more solve repopulates and the counters still add up.
    x = solve(spd, spd.sum(axis=1))
    assert np.allclose(spd @ x, spd.sum(axis=1), atol=1e-8)
    st = cache.stats()
    assert st["epoch"] >= epoch0
    assert st["entries"] >= 1
    cache.clear()


def test_fallback_warning_windows_under_concurrent_resets():
    # The fallback-warning rate limiter (LA023's ``RateLimiter._seen``
    # attribute guard) with solver threads ticking the same window key
    # while other threads reopen it.  With a frozen clock a key can only
    # emit on its first tick or on the tick right after a reset, so
    # total emissions are bounded by total successful resets + 1.
    limiter = RateLimiter(window=60.0, clock=lambda: 0.0)
    emits = []
    resets = []
    start = threading.Barrier(6)

    def ticker():
        start.wait()
        count = 0
        for _ in range(N_ITER * 5):
            emit, suppressed = limiter.tick(("accelerated", "gesv"))
            if suppressed < 0:
                emits.append(-10**9)  # poison: impossible accounting
                return
            if emit:
                count += 1
        emits.append(count)

    def resetter():
        start.wait()
        count = 0
        for _ in range(N_ITER):
            count += limiter.reset()
        resets.append(count)

    threads = [threading.Thread(target=ticker) for _ in range(4)]
    threads += [threading.Thread(target=resetter),
                threading.Thread(target=resetter)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not any(t.is_alive() for t in threads), "limiter stress hung"
    assert len(emits) == 4 and min(emits) >= 0
    assert sum(emits) <= sum(resets) + 1


def test_fallback_warnings_stay_windowed_during_breaker_churn():
    # End-to-end: accelerated gesv fails every call, so every solve
    # escalates through the fallback seam and ticks the live warning
    # window, while a thread keeps calling reset_open_warnings() —
    # exactly the probe/insert/reset interleaving LA023 polices on
    # ``_seen``.  Nothing may raise, and every answer must be right.
    if "accelerated" not in backends.available_backends():
        pytest.skip("fallback windows need a second backend")
    errors = []
    start = threading.Barrier(4)

    def solver(seed):
        start.wait()
        a, b = _system(seed=seed)
        for _ in range(N_ITER):
            info = Info()
            x = la_gesv(a.copy(), b.copy(), info=info,
                        backend="accelerated")
            if info.value != 0:
                errors.append(f"solver info={info.value}")
                return
            if not np.allclose(a @ x, b, atol=1e-8):
                errors.append("fallback residual blew up")
                return

    def window_resetter():
        start.wait()
        for _ in range(N_ITER):
            try:
                reset_open_warnings()
            except Exception as exc:          # noqa: BLE001
                errors.append(f"window reset raised: {exc!r}")
                return

    with resilience_policy(retries=0, breaker_threshold=10**9,
                           warning_window=0.0):
        fi.chaos_install("gesv", flaky_every=1, backend="accelerated")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            workers = [threading.Thread(target=solver, args=(s,))
                       for s in range(3)]
            workers += [threading.Thread(target=window_resetter)]
            for t in workers:
                t.start()
            for t in workers:
                t.join(timeout=120)
    assert not any(t.is_alive() for t in workers), "window stress hung"
    assert errors == []
