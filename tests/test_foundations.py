"""Foundation modules: storage layouts, machine parameters, ilaenv/config,
norms and auxiliaries, the condition estimator, precision mapping."""

import numpy as np
import pytest

from repro import config
from repro.core.auxmod import la_ws_gels, la_ws_gelss, lsame
from repro.core.precision import DP, SP, is_complex, real_dtype_of, same_kind, wp
from repro.lapack77.lacon import lacon
from repro.lapack77.lautil import (lacpy, langt, lanhs, lansp, lanst,
                                   lantr, lapy2, lapy3, larnv, laset,
                                   lassq, laswp)
from repro.lapack77.machine import lamch
from repro.storage import (band_to_full, full_to_band, pack, packed_index,
                           packed_size, unpack)

from .conftest import rand_matrix


@pytest.fixture
def rng():
    return np.random.default_rng(99)


class TestMachine:
    def test_eps_values(self):
        assert lamch("E", np.float32) == np.finfo(np.float32).eps
        assert lamch("E", np.float64) == np.finfo(np.float64).eps
        # Complex dtypes report their real component's parameters.
        assert lamch("E", np.complex64) == np.finfo(np.float32).eps

    def test_safe_min_invertible(self):
        for dt in (np.float32, np.float64):
            s = lamch("S", dt)
            assert np.isfinite(1.0 / s)

    def test_overflow_underflow(self):
        assert lamch("O", np.float64) == np.finfo(np.float64).max
        assert lamch("U", np.float64) == np.finfo(np.float64).tiny
        assert lamch("B", np.float64) == 2.0

    def test_unknown_query_raises(self):
        with pytest.raises(ValueError):
            lamch("Q")


class TestConfig:
    def test_ilaenv_block_sizes(self):
        assert config.ilaenv(1, "getrf") >= 1
        assert config.ilaenv(1, "SGETRF") == config.ilaenv(1, "getrf")
        assert config.ilaenv(1, "unknown_routine") == 1

    def test_override_restores(self):
        old = config.get_block_size("getrf")
        with config.block_size_override("getrf", 7):
            assert config.get_block_size("getrf") == 7
        assert config.get_block_size("getrf") == old

    def test_set_block_size_validates(self):
        with pytest.raises(ValueError):
            config.set_block_size("getrf", 0)


class TestPrecision:
    def test_wp_mapping(self):
        assert wp(SP) == np.float32
        assert wp(DP) == np.float64
        assert wp(SP, complex=True) == np.complex64
        assert wp(DP, complex=True) == np.complex128
        with pytest.raises(ValueError):
            wp("QP")

    def test_real_dtype_of(self):
        assert real_dtype_of(np.complex128) == np.float64
        assert real_dtype_of(np.float32) == np.float32

    def test_same_kind(self):
        a = np.zeros(2, np.float32)
        b = np.zeros(2, np.complex64)
        c = np.zeros(2, np.float64)
        assert same_kind(a, b)
        assert not same_kind(a, c)

    def test_is_complex(self):
        assert is_complex(np.zeros(1, complex))
        assert not is_complex(np.zeros(1))


class TestAuxmod:
    def test_lsame(self):
        assert lsame("u", "U") and lsame("N", "n")
        assert not lsame("U", "L")
        assert not lsame("", "U")

    def test_workspace_queries_positive(self):
        assert la_ws_gels("S", 100, 50, 10) > 50
        assert la_ws_gelss("D", 100, 50, 10) > 100


class TestStorage:
    def test_packed_size_and_index(self):
        assert packed_size(4) == 10
        # Column-major packing of the upper triangle.
        assert packed_index(0, 0, 4, "U") == 0
        assert packed_index(0, 1, 4, "U") == 1
        assert packed_index(1, 1, 4, "U") == 2
        assert packed_index(0, 0, 4, "L") == 0
        assert packed_index(3, 0, 4, "L") == 3
        with pytest.raises(IndexError):
            packed_index(2, 1, 4, "U")
        with pytest.raises(IndexError):
            packed_index(1, 2, 4, "L")

    @pytest.mark.parametrize("uplo", ["U", "L"])
    def test_pack_unpack_hermitian(self, rng, uplo):
        n = 6
        a = rand_matrix(rng, n, n, np.complex128)
        a = a + np.conj(a.T)
        np.fill_diagonal(a, a.diagonal().real)
        ap = pack(a, uplo)
        assert ap.shape == (packed_size(n),)
        full = unpack(ap, n, uplo=uplo, hermitian=True)
        np.testing.assert_allclose(full, a)

    def test_pack_requires_square(self, rng):
        with pytest.raises(ValueError):
            pack(rand_matrix(rng, 3, 4, np.float64))

    def test_band_rectangular(self, rng):
        m, n, kl, ku = 7, 5, 2, 1
        a = rand_matrix(rng, m, n, np.float64)
        for i in range(m):
            for j in range(n):
                if j - i > ku or i - j > kl:
                    a[i, j] = 0
        ab = full_to_band(a, kl, ku)
        assert ab.shape == (kl + ku + 1, n)
        np.testing.assert_array_equal(band_to_full(ab, m, n, kl, ku), a)


class TestLautil:
    def test_laswp_roundtrip(self, rng):
        a = rand_matrix(rng, 6, 4, np.float64)
        a0 = a.copy()
        ipiv = np.array([2, 3, 2, 5, 4, 5])
        laswp(a, ipiv)
        laswp(a, ipiv, forward=False)
        np.testing.assert_array_equal(a, a0)

    def test_lacpy_triangles(self, rng):
        a = rand_matrix(rng, 5, 5, np.float64)
        b = np.zeros_like(a)
        lacpy(a, b, uplo="U")
        np.testing.assert_array_equal(np.triu(b), np.triu(a))
        assert np.all(np.tril(b, -1) == 0)

    def test_laset(self):
        a = np.ones((4, 5))
        laset(a, alpha=2.0, beta=7.0)
        assert np.all(a.diagonal() == 7.0)
        assert np.all(a[np.triu_indices(4, 1, 5)] == 2.0)

    def test_lassq_overflow_safe(self):
        scale, sumsq = lassq(np.array([3e300, 4e300]))
        assert np.isclose(scale * np.sqrt(sumsq), 5e300, rtol=1e-12)

    def test_lapy(self):
        assert lapy2(3, 4) == 5
        assert np.isclose(lapy3(1, 2, 2), 3)
        assert lapy3(0, 0, 0) == 0

    def test_larnv_distributions(self, rng):
        v1 = larnv(1, 1000, rng=rng)
        assert 0 <= v1.min() and v1.max() <= 1
        v2 = larnv(2, 1000, rng=rng)
        assert v2.min() < -0.5 and v2.max() > 0.5
        v3 = larnv(3, 1000, dtype=np.complex128, rng=rng)
        assert np.iscomplexobj(v3)
        with pytest.raises(ValueError):
            larnv(4, 5, rng=rng)

    def test_structured_norms(self, rng):
        n = 6
        dl = rng.standard_normal(n - 1)
        d = rng.standard_normal(n)
        du = rng.standard_normal(n - 1)
        full = np.diag(d) + np.diag(dl, -1) + np.diag(du, 1)
        assert np.isclose(langt("1", dl, d, du), np.linalg.norm(full, 1))
        assert np.isclose(lanst("I", d, dl), np.linalg.norm(
            np.diag(d) + np.diag(dl, 1) + np.diag(dl, -1), np.inf))
        h = np.triu(rng.standard_normal((n, n)), -1)
        assert np.isclose(lanhs("F", h), np.linalg.norm(h, "fro"))
        t = np.triu(rng.standard_normal((n, n)))
        assert np.isclose(lantr("M", t, "U"), np.abs(t).max())
        # Unit-diagonal triangular norm replaces the diagonal by ones.
        t2 = t.copy()
        np.fill_diagonal(t2, 1.0)
        assert np.isclose(lantr("1", t, "U", diag="U"),
                          np.linalg.norm(np.triu(t2), 1))
        sym = rng.standard_normal((n, n))
        sym = sym + sym.T
        ap = pack(sym, "U")
        assert np.isclose(lansp("1", ap, n, "U"), np.linalg.norm(sym, 1))


class TestLacon:
    @pytest.mark.parametrize("n", [1, 5, 40])
    def test_estimates_one_norm(self, rng, n):
        a = rng.standard_normal((n, n)) + np.eye(n) * 2
        est = lacon(n, lambda x: a @ x, lambda x: a.T @ x)
        true = np.linalg.norm(a, 1)
        assert true / 3 <= est <= true * 1.01

    def test_complex(self, rng):
        n = 20
        a = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
        est = lacon(n, lambda x: a @ x, lambda x: np.conj(a.T) @ x,
                    dtype=np.complex128)
        true = np.linalg.norm(a, 1)
        assert true / 3 <= est <= true * 1.01

    def test_zero_dimension(self):
        assert lacon(0, None, None) == 0.0
