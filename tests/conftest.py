"""Shared fixtures: seeded RNG, dtype parametrization, tolerance helpers."""

from __future__ import annotations

import numpy as np
import pytest

REAL_DTYPES = [np.float32, np.float64]
COMPLEX_DTYPES = [np.complex64, np.complex128]
ALL_DTYPES = REAL_DTYPES + COMPLEX_DTYPES

_TOL = {
    np.dtype(np.float32): 1e-4,
    np.dtype(np.float64): 1e-10,
    np.dtype(np.complex64): 1e-4,
    np.dtype(np.complex128): 1e-10,
}


def tol_for(dtype, factor: float = 1.0) -> float:
    """A practical comparison tolerance for a dtype, scaled by ``factor``."""
    return _TOL[np.dtype(dtype)] * factor


def rand_matrix(rng, m, n, dtype):
    """Random matrix with entries in [-1, 1] (+ imaginary part if complex)."""
    a = rng.uniform(-1, 1, (m, n))
    if np.dtype(dtype).kind == "c":
        a = a + 1j * rng.uniform(-1, 1, (m, n))
    return np.asarray(a, dtype=dtype)


def rand_vector(rng, n, dtype):
    v = rng.uniform(-1, 1, n)
    if np.dtype(dtype).kind == "c":
        v = v + 1j * rng.uniform(-1, 1, n)
    return np.asarray(v, dtype=dtype)


def well_conditioned(rng, n, dtype, diag_boost: float = None):
    """Random diagonally-dominant matrix — safely invertible in any dtype."""
    a = rand_matrix(rng, n, n, dtype)
    boost = n if diag_boost is None else diag_boost
    a[np.diag_indices(n)] += boost
    return a


def spd_matrix(rng, n, dtype):
    """Random symmetric/Hermitian positive definite matrix."""
    a = rand_matrix(rng, n, n, dtype)
    h = a @ np.conj(a.T)
    h[np.diag_indices(n)] += n
    if np.dtype(dtype).kind == "c":
        h = (h + np.conj(h.T)) / 2
    else:
        h = (h + h.T) / 2
    return np.asarray(h, dtype=dtype)


@pytest.fixture
def rng():
    return np.random.default_rng(20260704)


@pytest.fixture(params=ALL_DTYPES, ids=["f32", "f64", "c64", "c128"])
def dtype(request):
    return request.param


@pytest.fixture(params=REAL_DTYPES, ids=["f32", "f64"])
def real_dtype(request):
    return request.param


@pytest.fixture(params=COMPLEX_DTYPES, ids=["c64", "c128"])
def complex_dtype(request):
    return request.param
