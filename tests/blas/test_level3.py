"""Level-3 BLAS kernels vs dense NumPy oracles."""

import numpy as np
import pytest

from repro.blas import level3 as b3

from ..conftest import rand_matrix, tol_for

UPLOS = ["U", "L"]
SIDES = ["L", "R"]
DIAGS = ["N", "U"]


@pytest.mark.parametrize("transa", ["N", "T", "C"])
@pytest.mark.parametrize("transb", ["N", "T"])
def test_gemm(rng, dtype, transa, transb):
    m, n, k = 5, 4, 6
    a = rand_matrix(rng, *( (m, k) if transa == "N" else (k, m) ), dtype)
    b = rand_matrix(rng, *( (k, n) if transb == "N" else (n, k) ), dtype)
    c = rand_matrix(rng, m, n, dtype)
    opa = {"N": a, "T": a.T, "C": np.conj(a.T)}[transa]
    opb = {"N": b, "T": b.T, "C": np.conj(b.T)}[transb]
    expect = 1.5 * opa @ opb + 0.5 * c
    b3.gemm(1.5, a, b, 0.5, c, transa=transa, transb=transb)
    np.testing.assert_allclose(c, expect, rtol=tol_for(dtype, 30),
                               atol=tol_for(dtype, 30))


@pytest.mark.parametrize("side", SIDES)
@pytest.mark.parametrize("uplo", UPLOS)
def test_symm_hemm(rng, dtype, side, uplo):
    n, m = 5, 4
    hermitian = np.dtype(dtype).kind == "c"
    s = rand_matrix(rng, n, n, dtype)
    full = s + (np.conj(s.T) if hermitian else s.T)
    if hermitian:
        np.fill_diagonal(full, full.diagonal().real)
    b = rand_matrix(rng, *((n, m) if side == "L" else (m, n)), dtype)
    c = np.zeros_like(b)
    expect = full @ b if side == "L" else b @ full
    fn = b3.hemm if hermitian else b3.symm
    fn(1.0, full, b, 0.0, c, side=side, uplo=uplo)
    np.testing.assert_allclose(c, expect, rtol=tol_for(dtype, 30),
                               atol=tol_for(dtype, 30))


@pytest.mark.parametrize("uplo", UPLOS)
@pytest.mark.parametrize("trans", ["N", "T"])
def test_syrk(rng, real_dtype, uplo, trans):
    a = rand_matrix(rng, 5, 3, real_dtype)
    c = rand_matrix(rng, *( (5, 5) if trans == "N" else (3, 3) ), real_dtype)
    c = c + c.T
    c0 = c.copy()
    upd = a @ a.T if trans == "N" else a.T @ a
    expect = 2 * upd + 0.5 * c0
    b3.syrk(2.0, a, 0.5, c, uplo=uplo, trans=trans)
    tri = (np.triu_indices_from(c) if uplo == "U"
           else np.tril_indices_from(c))
    np.testing.assert_allclose(c[tri], expect[tri],
                               rtol=tol_for(real_dtype, 30))


@pytest.mark.parametrize("uplo", UPLOS)
@pytest.mark.parametrize("trans", ["N", "C"])
def test_herk_real_diagonal(rng, complex_dtype, uplo, trans):
    a = rand_matrix(rng, 5, 3, complex_dtype)
    nn = 5 if trans == "N" else 3
    c = np.zeros((nn, nn), dtype=complex_dtype)
    tr = "N" if trans == "N" else "T"  # herk uses trans='N'/'C' semantics
    b3.herk(1.0, a, 0.0, c, uplo=uplo, trans=tr)
    upd = a @ np.conj(a.T) if trans == "N" else np.conj(a.T) @ a
    tri = (np.triu_indices(nn) if uplo == "U" else np.tril_indices(nn))
    np.testing.assert_allclose(c[tri], upd[tri],
                               rtol=tol_for(complex_dtype, 30),
                               atol=tol_for(complex_dtype, 30))
    assert np.all(c.diagonal().imag == 0)


@pytest.mark.parametrize("uplo", UPLOS)
def test_syr2k_her2k(rng, dtype, uplo):
    hermitian = np.dtype(dtype).kind == "c"
    a = rand_matrix(rng, 5, 3, dtype)
    b = rand_matrix(rng, 5, 3, dtype)
    c = np.zeros((5, 5), dtype=dtype)
    if hermitian:
        b3.her2k(1.0, a, b, 0.0, c, uplo=uplo)
        upd = a @ np.conj(b.T)
        upd = upd + np.conj(upd.T)
    else:
        b3.syr2k(1.0, a, b, 0.0, c, uplo=uplo)
        upd = a @ b.T
        upd = upd + upd.T
    tri = np.triu_indices(5) if uplo == "U" else np.tril_indices(5)
    np.testing.assert_allclose(c[tri], upd[tri], rtol=tol_for(dtype, 30),
                               atol=tol_for(dtype, 30))


@pytest.mark.parametrize("side", SIDES)
@pytest.mark.parametrize("uplo", UPLOS)
@pytest.mark.parametrize("transa", ["N", "T", "C"])
@pytest.mark.parametrize("diag", DIAGS)
def test_trmm(rng, dtype, side, uplo, transa, diag):
    n = 5
    a = rand_matrix(rng, n, n, dtype)
    t = np.triu(a) if uplo == "U" else np.tril(a)
    if diag == "U":
        np.fill_diagonal(t, 1)
    op = {"N": t, "T": t.T, "C": np.conj(t.T)}[transa]
    b = rand_matrix(rng, n, n, dtype)
    expect = 2 * (op @ b) if side == "L" else 2 * (b @ op)
    b3.trmm(2.0, a, b, side=side, uplo=uplo, transa=transa, diag=diag)
    np.testing.assert_allclose(b, expect, rtol=tol_for(dtype, 30),
                               atol=tol_for(dtype, 30))


@pytest.mark.parametrize("side", SIDES)
@pytest.mark.parametrize("uplo", UPLOS)
@pytest.mark.parametrize("transa", ["N", "T", "C"])
@pytest.mark.parametrize("diag", DIAGS)
def test_trsm_solves(rng, dtype, side, uplo, transa, diag):
    n, m = 6, 3
    a = rand_matrix(rng, n, n, dtype)
    a[np.diag_indices(n)] += 4
    t = np.triu(a) if uplo == "U" else np.tril(a)
    if diag == "U":
        np.fill_diagonal(t, 1)
    op = {"N": t, "T": t.T, "C": np.conj(t.T)}[transa]
    if side == "L":
        b = rand_matrix(rng, n, m, dtype)
        b0 = b.copy()
        b3.trsm(1.5, a, b, side=side, uplo=uplo, transa=transa, diag=diag)
        np.testing.assert_allclose(op @ b, 1.5 * b0,
                                   rtol=tol_for(dtype, 200),
                                   atol=tol_for(dtype, 200))
    else:
        b = rand_matrix(rng, m, n, dtype)
        b0 = b.copy()
        b3.trsm(1.5, a, b, side=side, uplo=uplo, transa=transa, diag=diag)
        np.testing.assert_allclose(b @ op, 1.5 * b0,
                                   rtol=tol_for(dtype, 200),
                                   atol=tol_for(dtype, 200))
