"""Level-1 BLAS kernels vs NumPy oracles."""

import numpy as np
import pytest

from repro.blas import level1 as b1

from ..conftest import rand_vector, tol_for


def test_axpy_updates_in_place(rng, dtype):
    x = rand_vector(rng, 17, dtype)
    y = rand_vector(rng, 17, dtype)
    expect = 2.5 * x + y
    out = b1.axpy(2.5, x, y)
    assert out is y
    np.testing.assert_allclose(y, expect, rtol=tol_for(dtype))


def test_axpy_alpha_zero_is_noop(rng, dtype):
    x = rand_vector(rng, 8, dtype)
    y = rand_vector(rng, 8, dtype)
    y0 = y.copy()
    b1.axpy(0.0, x, y)
    np.testing.assert_array_equal(y, y0)


def test_scal(rng, dtype):
    x = rand_vector(rng, 9, dtype)
    expect = x * 3
    b1.scal(3, x)
    np.testing.assert_allclose(x, expect, rtol=tol_for(dtype))


def test_copy_and_swap(rng, dtype):
    x = rand_vector(rng, 11, dtype)
    y = rand_vector(rng, 11, dtype)
    x0, y0 = x.copy(), y.copy()
    b1.swap(x, y)
    np.testing.assert_array_equal(x, y0)
    np.testing.assert_array_equal(y, x0)
    b1.copy(x, y)
    np.testing.assert_array_equal(y, x)


def test_dot_real(rng, real_dtype):
    x = rand_vector(rng, 13, real_dtype)
    y = rand_vector(rng, 13, real_dtype)
    assert np.isclose(b1.dot(x, y), np.sum(x * y), rtol=tol_for(real_dtype))


def test_dotu_dotc(rng, complex_dtype):
    x = rand_vector(rng, 13, complex_dtype)
    y = rand_vector(rng, 13, complex_dtype)
    assert np.isclose(b1.dotu(x, y), np.sum(x * y), rtol=tol_for(complex_dtype))
    assert np.isclose(b1.dotc(x, y), np.sum(np.conj(x) * y),
                      rtol=tol_for(complex_dtype))


def test_nrm2_matches_numpy(rng, dtype):
    x = rand_vector(rng, 31, dtype)
    assert np.isclose(b1.nrm2(x), np.linalg.norm(x), rtol=tol_for(dtype))


def test_nrm2_overflow_safe():
    # Plain sqrt(sum(x**2)) would overflow in float32 here.
    x = np.array([3e19, 4e19], dtype=np.float32)
    assert np.isclose(b1.nrm2(x), 5e19, rtol=1e-5)


def test_nrm2_empty_and_zero():
    assert b1.nrm2(np.zeros(0)) == 0
    assert b1.nrm2(np.zeros(5)) == 0


def test_asum_complex_uses_re_plus_im():
    x = np.array([3 + 4j, -1 - 2j], dtype=np.complex128)
    assert b1.asum(x) == pytest.approx(3 + 4 + 1 + 2)


def test_iamax_complex_convention():
    # |.|-metric is |Re| + |Im|, so 3+3j (6) beats 4+0j (4).
    x = np.array([4 + 0j, 3 + 3j], dtype=np.complex128)
    assert b1.iamax(x) == 1
    assert b1.iamax(np.zeros(0)) == -1


def test_rot_applies_plane_rotation(rng, real_dtype):
    x = rand_vector(rng, 6, real_dtype)
    y = rand_vector(rng, 6, real_dtype)
    c, s = np.cos(0.3), np.sin(0.3)
    ex = c * x + s * y
    ey = c * y - s * x
    b1.rot(x, y, c, s)
    np.testing.assert_allclose(x, ex, rtol=tol_for(real_dtype))
    np.testing.assert_allclose(y, ey, rtol=tol_for(real_dtype))


@pytest.mark.parametrize("a,b", [(3.0, 4.0), (-3.0, 4.0), (0.0, 2.0),
                                 (2.0, 0.0), (1e-3, 1e3)])
def test_rotg_real_annihilates(a, b):
    c, s, r = b1.rotg(a, b)
    assert np.isclose(c * a + s * b, r)
    assert np.isclose(-s * a + c * b, 0, atol=1e-12 * max(abs(a), abs(b), 1))
    assert np.isclose(c * c + s * s, 1)


def test_rotg_complex_annihilates():
    a, b = 1 + 2j, 3 - 1j
    c, s, r = b1.rotg(a, b)
    assert np.isclose(c * a + s * b, r)
    assert np.isclose(-np.conj(s) * a + c * b, 0, atol=1e-12)
    assert np.isreal(c) and c >= 0
