"""Level-2 BLAS kernels vs dense NumPy oracles."""

import numpy as np
import pytest

from repro.blas import level2 as b2
from repro.storage import full_to_band, full_to_sym_band, pack

from ..conftest import rand_matrix, rand_vector, tol_for

UPLOS = ["U", "L"]
TRANS_REAL = ["N", "T"]
TRANS_ALL = ["N", "T", "C"]
DIAGS = ["N", "U"]


@pytest.mark.parametrize("trans", TRANS_ALL)
def test_gemv(rng, dtype, trans):
    a = rand_matrix(rng, 7, 5, dtype)
    x = rand_vector(rng, 5 if trans == "N" else 7, dtype)
    y = rand_vector(rng, 7 if trans == "N" else 5, dtype)
    op = {"N": a, "T": a.T, "C": np.conj(a.T)}[trans]
    expect = 1.5 * op @ x + 0.5 * y
    b2.gemv(1.5, a, x, 0.5, y, trans=trans)
    np.testing.assert_allclose(y, expect, rtol=tol_for(dtype, 10))


def test_gemv_beta_zero_ignores_garbage(rng, dtype):
    a = rand_matrix(rng, 4, 4, dtype)
    x = rand_vector(rng, 4, dtype)
    y = np.full(4, np.nan, dtype=dtype)
    b2.gemv(1.0, a, x, 0.0, y)
    np.testing.assert_allclose(y, a @ x, rtol=tol_for(dtype, 10))


@pytest.mark.parametrize("trans", TRANS_ALL)
def test_gbmv(rng, dtype, trans):
    m, n, kl, ku = 8, 6, 2, 1
    a = rand_matrix(rng, m, n, dtype)
    # Zero outside the band so the dense oracle matches band storage.
    for i in range(m):
        for j in range(n):
            if j - i > ku or i - j > kl:
                a[i, j] = 0
    ab = full_to_band(a, kl, ku)
    op = {"N": a, "T": a.T, "C": np.conj(a.T)}[trans]
    x = rand_vector(rng, op.shape[1], dtype)
    y = rand_vector(rng, op.shape[0], dtype)
    expect = 2.0 * op @ x + 3.0 * y
    b2.gbmv(2.0, ab, x, 3.0, y, m=m, kl=kl, ku=ku, trans=trans)
    np.testing.assert_allclose(y, expect, rtol=tol_for(dtype, 10))


def test_ger_family(rng, complex_dtype):
    m, n = 5, 4
    x = rand_vector(rng, m, complex_dtype)
    y = rand_vector(rng, n, complex_dtype)
    a = rand_matrix(rng, m, n, complex_dtype)
    a0 = a.copy()
    b2.geru(2.0, x, y, a)
    np.testing.assert_allclose(a, a0 + 2 * np.outer(x, y),
                               rtol=tol_for(complex_dtype, 10))
    a = a0.copy()
    b2.gerc(2.0, x, y, a)
    np.testing.assert_allclose(a, a0 + 2 * np.outer(x, np.conj(y)),
                               rtol=tol_for(complex_dtype, 10))


def test_ger_real(rng, real_dtype):
    x = rand_vector(rng, 5, real_dtype)
    y = rand_vector(rng, 4, real_dtype)
    a = rand_matrix(rng, 5, 4, real_dtype)
    a0 = a.copy()
    b2.ger(-1.5, x, y, a)
    np.testing.assert_allclose(a, a0 - 1.5 * np.outer(x, y),
                               rtol=tol_for(real_dtype, 10))


def _sym(rng, n, dtype, hermitian):
    a = rand_matrix(rng, n, n, dtype)
    full = a + (np.conj(a.T) if hermitian else a.T)
    if hermitian:
        np.fill_diagonal(full, full.diagonal().real)
    return full


@pytest.mark.parametrize("uplo", UPLOS)
def test_symv_references_one_triangle(rng, dtype, uplo):
    full = _sym(rng, 6, dtype, False)
    x = rand_vector(rng, 6, dtype)
    y = rand_vector(rng, 6, dtype)
    expect = 1.2 * full @ x + 0.3 * y
    stored = full.copy()
    # Poison the opposite triangle: must not be referenced.
    if uplo == "U":
        stored[np.tril_indices(6, -1)] = np.nan
    else:
        stored[np.triu_indices(6, 1)] = np.nan
    b2.symv(1.2, stored, x, 0.3, y, uplo=uplo)
    np.testing.assert_allclose(y, expect, rtol=tol_for(dtype, 10))


@pytest.mark.parametrize("uplo", UPLOS)
def test_hemv(rng, complex_dtype, uplo):
    full = _sym(rng, 6, complex_dtype, True)
    x = rand_vector(rng, 6, complex_dtype)
    y = rand_vector(rng, 6, complex_dtype)
    expect = full @ x
    b2.hemv(1.0, full, x, 0.0, y, uplo=uplo)
    np.testing.assert_allclose(y, expect, rtol=tol_for(complex_dtype, 10))


@pytest.mark.parametrize("uplo", UPLOS)
@pytest.mark.parametrize("hermitian", [False, True])
def test_sbmv(rng, dtype, uplo, hermitian):
    if hermitian and np.dtype(dtype).kind != "c":
        pytest.skip("hermitian only meaningful for complex")
    n, k = 7, 2
    full = _sym(rng, n, dtype, hermitian)
    # Band-limit it.
    for i in range(n):
        for j in range(n):
            if abs(i - j) > k:
                full[i, j] = 0
    ab = full_to_sym_band(full, k, uplo=uplo)
    x = rand_vector(rng, n, dtype)
    y = np.zeros(n, dtype=dtype)
    b2.sbmv(1.0, ab, x, 0.0, y, uplo=uplo, hermitian=hermitian)
    np.testing.assert_allclose(y, full @ x, rtol=tol_for(dtype, 20),
                               atol=tol_for(dtype, 20))


@pytest.mark.parametrize("uplo", UPLOS)
def test_spmv_and_hpmv(rng, dtype, uplo):
    n = 6
    hermitian = np.dtype(dtype).kind == "c"
    full = _sym(rng, n, dtype, hermitian)
    ap = pack(full, uplo=uplo)
    x = rand_vector(rng, n, dtype)
    y = np.zeros(n, dtype=dtype)
    if hermitian:
        b2.hpmv(1.0, ap, x, 0.0, y, uplo=uplo)
    else:
        b2.spmv(1.0, ap, x, 0.0, y, uplo=uplo)
    np.testing.assert_allclose(y, full @ x, rtol=tol_for(dtype, 20),
                               atol=tol_for(dtype, 20))


@pytest.mark.parametrize("uplo", UPLOS)
def test_syr_syr2(rng, real_dtype, uplo):
    n = 5
    x = rand_vector(rng, n, real_dtype)
    y = rand_vector(rng, n, real_dtype)
    a = _sym(rng, n, real_dtype, False)
    a0 = a.copy()
    b2.syr(2.0, x, a, uplo=uplo)
    b2.syr2(0.5, x, y, a, uplo=uplo)
    expect = a0 + 2 * np.outer(x, x) + 0.5 * (np.outer(x, y) + np.outer(y, x))
    tri = np.triu_indices(n) if uplo == "U" else np.tril_indices(n)
    np.testing.assert_allclose(a[tri], expect[tri], rtol=tol_for(real_dtype, 10))


@pytest.mark.parametrize("uplo", UPLOS)
def test_her_her2(rng, complex_dtype, uplo):
    n = 5
    x = rand_vector(rng, n, complex_dtype)
    y = rand_vector(rng, n, complex_dtype)
    a = _sym(rng, n, complex_dtype, True)
    a0 = a.copy()
    b2.her(2.0, x, a, uplo=uplo)
    b2.her2(1 + 1j, x, y, a, uplo=uplo)
    upd = (1 + 1j) * np.outer(x, np.conj(y))
    expect = a0 + 2 * np.outer(x, np.conj(x)) + upd + np.conj(upd.T)
    tri = np.triu_indices(n) if uplo == "U" else np.tril_indices(n)
    np.testing.assert_allclose(a[tri], expect[tri],
                               rtol=tol_for(complex_dtype, 10))


@pytest.mark.parametrize("uplo", UPLOS)
@pytest.mark.parametrize("trans", TRANS_ALL)
@pytest.mark.parametrize("diag", DIAGS)
def test_trmv_trsv_roundtrip(rng, dtype, uplo, trans, diag):
    n = 6
    a = rand_matrix(rng, n, n, dtype)
    a[np.diag_indices(n)] += 3  # well conditioned
    x = rand_vector(rng, n, dtype)
    y = x.copy()
    b2.trmv(a, y, uplo=uplo, trans=trans, diag=diag)
    b2.trsv(a, y, uplo=uplo, trans=trans, diag=diag)
    np.testing.assert_allclose(y, x, rtol=tol_for(dtype, 100),
                               atol=tol_for(dtype, 100))


@pytest.mark.parametrize("uplo", UPLOS)
@pytest.mark.parametrize("trans", TRANS_ALL)
def test_tbsv_matches_dense_solve(rng, dtype, uplo, trans):
    n, k = 7, 2
    a = rand_matrix(rng, n, n, dtype)
    a[np.diag_indices(n)] += 3
    # Triangular band matrix
    keep = np.zeros((n, n), dtype=bool)
    for i in range(n):
        for j in range(n):
            if uplo == "U" and 0 <= j - i <= k:
                keep[i, j] = True
            if uplo == "L" and 0 <= i - j <= k:
                keep[i, j] = True
    a[~keep] = 0
    ab = full_to_sym_band(a, k, uplo=uplo) if uplo == "U" else None
    # full_to_sym_band only stores one triangle; for tb storage that is
    # exactly the triangular band layout.
    if uplo == "L":
        from repro.storage import full_to_sym_band as f2sb
        ab = f2sb(a, k, uplo="L")
    x = rand_vector(rng, n, dtype)
    rhs = x.copy()
    b2.tbsv(ab, rhs, uplo=uplo, trans=trans)
    op = {"N": a, "T": a.T, "C": np.conj(a.T)}[trans]
    np.testing.assert_allclose(op @ rhs, x, rtol=tol_for(dtype, 200),
                               atol=tol_for(dtype, 200))


@pytest.mark.parametrize("uplo", UPLOS)
@pytest.mark.parametrize("trans", TRANS_REAL)
def test_tpsv_tpmv_roundtrip(rng, real_dtype, uplo, trans):
    n = 6
    a = rand_matrix(rng, n, n, real_dtype)
    a[np.diag_indices(n)] += 3
    tri = np.triu(a) if uplo == "U" else np.tril(a)
    ap = pack(tri, uplo=uplo)
    x = rand_vector(rng, n, real_dtype)
    y = x.copy()
    b2.tpmv(ap, y, n, uplo=uplo, trans=trans)
    b2.tpsv(ap, y, n, uplo=uplo, trans=trans)
    np.testing.assert_allclose(y, x, rtol=tol_for(real_dtype, 100))
