"""laflow self-tests: LA011–LA020 fire on their seeded fixtures (exact
marker lines), stay quiet on the conforming twins, the owner-module
lock discipline of LA015/LA016 is checked against synthesized owners,
and the interprocedural machinery (summary memoization, helper-call
value threading, allocation-site remapping, checkpoint replay) is
exercised against a driver that routes its work through helpers.

The dataflow fixtures live under ``fixtures/flow/repro/core/`` so the
spec-bound rules (which only police the core driver package) pick them
up; the LA015/LA016 fixtures sit at the fixtures top level because
those rules scan every module.  ``fixtures/flow/repro/lapack77/stub.py``
is the substrate stub whose ``def`` signatures give the LA018/LA019
effect signatures their kernel parameter order — the fixtures that need
effects are loaded together with it.
"""

import os
import textwrap

from repro.analysis import Project, run_rules
from repro.analysis.flow import (DriverFlow, SummaryEngine, check_la015,
                                 check_la016, front_door_sites,
                                 kernel_effects, spec_dim_formulas)
from repro.analysis.flow import values as V
from repro.analysis.flow.rules import _classify_check, _shadowed_checks
from repro.specs.model import ArgSpec, Check, DriverSpec
from repro.specs.registry import SPECS

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "fixtures")
FLOW = os.path.join(FIXTURES, "flow", "repro", "core")
FRONT = os.path.join(FIXTURES, "flow", "repro", "dispatch_front")
STUB = os.path.join(FIXTURES, "flow", "repro", "lapack77", "stub.py")
REPO = os.path.dirname(os.path.dirname(HERE))


def _findings(paths, code=None):
    found = run_rules(Project.load(paths))
    if code is not None:
        found = [f for f in found if f.code == code]
    return found


def _marked_lines(path, code):
    with open(path, "r", encoding="utf-8") as fh:
        return sorted(i for i, line in enumerate(fh, 1)
                      if f"lint: {code}" in line)


def _assert_matches_markers(path, code, extra=()):
    found = _findings([path, *extra], code)
    got = sorted(f.line for f in found)
    want = _marked_lines(path, code)
    assert got == want, f"{code}: findings at {got}, markers at {want}"
    return found


def _flow_fixture(name):
    return os.path.join(FLOW, name)


# -- the abstract interpreter itself ----------------------------------

def test_interpreter_seeds_and_tracks_the_gesv_body():
    path = _flow_fixture("good_la011.py")
    project = Project.load([path])
    (impl,) = [i for i in project.driver_impls()
               if i.driver == "la_gesv"]
    flow = DriverFlow(impl, SPECS["la_gesv"]).run()
    # n = a.shape[0] resolves to the spec's rows2d(a) formula.
    assert ("n", V.atom(("rows", "a")), flow.dim_defs[0][2]) \
        in flow.dim_defs
    assert spec_dim_formulas(SPECS["la_gesv"])["n"] \
        == V.atom(("rows", "a"))
    # The pivot buffer allocation is recorded with symbolic length n
    # and an integer dtype.
    (site,) = flow.allocs
    assert site.shape == (V.atom(("rows", "a")),)
    assert site.dtype == V.DT_INT
    # gesv(a, b) is a sink receiving both caller arrays.
    (sink,) = flow.sinks
    assert sink.callee == "gesv"
    origins = set()
    for val in sink.values:
        if isinstance(val, V.ArrayVal):
            origins |= val.origins
    assert origins == {"a", "b"}
    # ipiv[:] = buf is a write aliasing the declared output.
    assert any(w.names == frozenset({"ipiv"}) for w in flow.writes)


# -- rule true positives (marker-pinned) and clean twins --------------

def test_la011_fires_on_seeded_violations():
    found = _assert_matches_markers(_flow_fixture("bad_la011.py"),
                                    "LA011")
    messages = " | ".join(f.message for f in found)
    assert "cols(a)" in messages and "rows(a)" in messages
    assert "allocation stored into ipiv" in messages


def test_la012_fires_on_seeded_violations():
    found = _assert_matches_markers(_flow_fixture("bad_la012.py"),
                                    "LA012")
    assert "ipiv" in found[0].message
    assert found[0].context == "la_gesv"


def test_la013_fires_on_seeded_violations():
    found = _assert_matches_markers(_flow_fixture("bad_la013.py"),
                                    "LA013")
    assert "float64" in found[0].message


def test_la014_fires_on_seeded_violations():
    found = _assert_matches_markers(_flow_fixture("bad_la014.py"),
                                    "LA014")
    assert "intent(in)" in found[0].message
    assert "mutate a" in found[0].message


def test_la015_fires_on_seeded_violations():
    path = os.path.join(FIXTURES, "bad_la015.py")
    found = _assert_matches_markers(path, "LA015")
    messages = " | ".join(f.message for f in found)
    assert "_POLICY" in messages
    assert "_SELECTED" in messages
    assert "_BLOCK_SIZES" in messages
    assert "set_policy()" in messages


def test_la016_fires_on_seeded_violations():
    path = os.path.join(FIXTURES, "bad_la016.py")
    found = _assert_matches_markers(path, "LA016")
    messages = " | ".join(f.message for f in found)
    assert "_BREAKERS" in messages
    assert "_RESILIENCE" in messages
    assert "_ARMED" in messages
    assert "_CHAOS" in messages
    assert "set_resilience()" in messages


def test_la017_fires_on_seeded_violations():
    found = _assert_matches_markers(_flow_fixture("bad_la017.py"),
                                    "LA017")
    assert "error exit -3" in found[0].message
    assert "unreachable" in found[0].message
    assert "ipiv" in found[0].message
    assert "optlen" in found[0].message
    assert found[0].context == "la_gesv"


# -- LA017 over the dispatch front door's borrowed ladders ------------

def test_la017_front_door_fires_on_borrowed_ladder_violations():
    path = os.path.join(FRONT, "bad_front_door.py")
    found = _assert_matches_markers(path, "LA017")
    by_ctx = {f.context: f for f in found}
    lu = by_ctx["la_gesv"]
    assert "front-door _solve_lu" in lu.message
    assert "unreachable" in lu.message
    assert "ipiv" in lu.message
    chol = by_ctx["la_posv"]
    assert "front-door _solve_chol" in chol.message
    assert "always fires" in chol.message
    assert "omits b" in chol.message
    assert "-2" in chol.message


def test_la017_front_door_bad_fixture_only_fires_la017():
    found = _findings([os.path.join(FRONT, "bad_front_door.py")])
    assert {f.code for f in found} == {"LA017"}


def test_la017_front_door_good_fixture_is_quiet():
    assert _findings([os.path.join(FRONT, "good_front_door.py")]) == []


def test_front_door_sites_skips_unmappable_replays():
    project = Project.load([os.path.join(FRONT,
                                         "good_front_door.py")])
    sites = list(front_door_sites(project, SPECS))
    # _replay's dynamic driver name is statically unmappable and the
    # whole function is skipped; only the la_posv replay remains.
    assert [(func.name, driver)
            for _, func, driver, _, _ in sites] \
        == [("_solve_chol", "la_posv")]
    _, _, _, spec, calls = sites[0]
    assert spec is SPECS["la_posv"]
    assert calls[0][1] == {"a", "b", "uplo"}


def test_shipped_front_door_keeps_every_borrowed_exit_live():
    """The acceptance seam: the shipped dispatch front borrows at least
    one validation ladder (the cached-Cholesky la_posv replay) and the
    full LA017 pass stays empty over it."""
    src = os.path.join(REPO, "src", "repro")
    project = Project.load([src])
    sites = list(front_door_sites(project, SPECS))
    assert ("la_posv" in {driver for _, _, driver, _, _ in sites})
    found = [f for f in run_rules(project, select={"LA017"})]
    assert found == [], "\n".join(f.render() for f in found)


def test_la018_fires_on_seeded_violations():
    found = _assert_matches_markers(_flow_fixture("bad_la018.py"),
                                    "LA018", extra=[STUB])
    assert "may overlap" in found[0].message
    assert "alias a" in found[0].message
    assert "written in place" in found[0].message


def test_la019_fires_on_seeded_violations():
    found = _assert_matches_markers(_flow_fixture("bad_la019.py"),
                                    "LA019", extra=[STUB])
    assert "operand b of kernel gesv" in found[0].message
    assert "snapshot_set" in found[0].message


def test_la020_fires_on_seeded_violations():
    found = _assert_matches_markers(_flow_fixture("bad_la020.py"),
                                    "LA020")
    assert "factor -> solve" in found[0].message
    assert "deadlines.check" in found[0].message
    assert "getrf" in found[0].message


def test_bad_flow_fixtures_only_fire_their_own_rule():
    for name, code in [("bad_la011.py", "LA011"),
                       ("bad_la012.py", "LA012"),
                       ("bad_la013.py", "LA013"),
                       ("bad_la014.py", "LA014"),
                       ("bad_la017.py", "LA017"),
                       ("bad_la020.py", "LA020")]:
        found = _findings([_flow_fixture(name)])
        assert {f.code for f in found} == {code}, name
    for name, code in [("bad_la018.py", "LA018"),
                       ("bad_la019.py", "LA019")]:
        found = _findings([_flow_fixture(name), STUB])
        assert {f.code for f in found} == {code}, name
    found = _findings([os.path.join(FIXTURES, "bad_la015.py")])
    assert {f.code for f in found} == {"LA015"}
    found = _findings([os.path.join(FIXTURES, "bad_la016.py")])
    assert {f.code for f in found} == {"LA016"}


def test_good_flow_fixtures_are_clean():
    for name in ("good_la011.py", "good_la012.py", "good_la013.py",
                 "good_la014.py"):
        assert _findings([_flow_fixture(name)]) == [], name
    # The LA017-LA020 twins load together with the substrate stub so
    # the effect signatures (and LA006's import audit) see its defs.
    for name in ("good_la017.py", "good_la018.py", "good_la019.py",
                 "good_la020.py"):
        assert _findings([_flow_fixture(name), STUB]) == [], name
    assert _findings([os.path.join(FIXTURES, "good_la015.py")]) == []
    assert _findings([os.path.join(FIXTURES, "good_la016.py")]) == []


# -- LA015 owner-module lock discipline -------------------------------

def _owner_tree(tmp_path, source):
    pkg = tmp_path / "repro"
    pkg.mkdir()
    path = pkg / "policy.py"
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return str(path)


def test_la015_owner_mutation_requires_the_lock(tmp_path):
    path = _owner_tree(tmp_path, """\
        from ._sync import STATE_LOCK

        _POLICY = object()          # top-level init: allowed

        def set_policy(value):
            _POLICY.mode = value    # unlocked mutation

        def set_policy_locked(value):
            with STATE_LOCK:
                _POLICY.mode = value
        """)
    found = check_la015(Project.load([path]))
    assert len(found) == 1
    assert "outside `with STATE_LOCK:`" in found[0].message
    # The finding points at the unlocked store, not the locked one.
    assert found[0].line == 6


def test_la015_owner_reads_are_allowed(tmp_path):
    path = _owner_tree(tmp_path, """\
        _POLICY = object()

        def get_policy():
            return _POLICY
        """)
    assert check_la015(Project.load([path])) == []


def test_la015_nested_def_loses_the_lexical_lock(tmp_path):
    path = _owner_tree(tmp_path, """\
        from ._sync import STATE_LOCK

        _POLICY = object()

        def make_setter():
            with STATE_LOCK:
                def setter(value):
                    _POLICY.mode = value    # runs after the lock is gone
                return setter
        """)
    found = check_la015(Project.load([path]))
    assert len(found) == 1


# -- LA016 owner-module lock discipline -------------------------------

def _breaker_owner(tmp_path, source):
    pkg = tmp_path / "repro" / "resilience"
    pkg.mkdir(parents=True)
    path = pkg / "breaker.py"
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return str(path)


def test_la016_owner_mutation_requires_the_lock(tmp_path):
    path = _breaker_owner(tmp_path, """\
        from .._sync import STATE_LOCK

        _BREAKERS = {}              # top-level init: allowed

        def trip(key):
            _BREAKERS[key] = 1      # unlocked mutation

        def trip_locked(key):
            with STATE_LOCK:
                _BREAKERS[key] = 1
        """)
    found = check_la016(Project.load([path]))
    assert len(found) == 1
    assert "outside `with STATE_LOCK:`" in found[0].message
    assert found[0].line == 6


def test_la016_thread_local_deadline_stack_is_lock_exempt(tmp_path):
    pkg = tmp_path / "repro" / "resilience"
    pkg.mkdir(parents=True)
    path = pkg / "deadlines.py"
    path.write_text(textwrap.dedent("""\
        import threading

        _DEADLINES = threading.local()

        def _stack():
            _DEADLINES.stack = []       # thread-local: no lock needed
            return _DEADLINES.stack
        """), encoding="utf-8")
    assert check_la016(Project.load([str(path)])) == []


def test_la016_is_silent_for_la015_state_and_vice_versa(tmp_path):
    # The two rules police disjoint tables: the policy owner's unlocked
    # mutation is LA015's business only, and the breaker owner's is
    # LA016's only.
    policy = _owner_tree(tmp_path, """\
        _POLICY = object()

        def set_policy(value):
            _POLICY.mode = value
        """)
    assert check_la016(Project.load([policy])) == []
    breaker = _breaker_owner(tmp_path, """\
        _BREAKERS = {}

        def trip(key):
            _BREAKERS[key] = 1
        """)
    assert check_la015(Project.load([breaker])) == []


# -- interprocedural machinery: summaries, effects, classifier --------

_HELPER_DRIVER = """\
    import numpy as np

    from repro.errors import Info, erinfo
    from repro.backends.kernels import gesv
    from repro.resilience import deadlines
    from repro.specs import validate_args

    __all__ = ["la_gesv"]


    def _pivot_buffer(n):
        return np.zeros(n, dtype=np.intp)


    def _entry_guard(srname, info):
        deadlines.check(srname, "entry", info)


    def la_gesv(a, b, ipiv=None, info=None):
        srname = "LA_GESV"
        exc = None
        linfo = validate_args("la_gesv", a=a, b=b, ipiv=ipiv)
        if linfo == 0:
            _entry_guard(srname, info)
            n = a.shape[0]
            buf = _pivot_buffer(n)
            extra = _pivot_buffer(n)
            _, linfo = gesv(a, b)
            if ipiv is not None:
                ipiv[:] = buf
        erinfo(linfo, srname, info, exc=exc)
        return b
    """


def _helper_flow(tmp_path):
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    path = pkg / "driver.py"
    path.write_text(textwrap.dedent(_HELPER_DRIVER), encoding="utf-8")
    project = Project.load([str(path)])
    (impl,) = [i for i in project.driver_impls()
               if i.driver == "la_gesv"]
    engine = SummaryEngine(project)
    flow = DriverFlow(impl, SPECS["la_gesv"], summaries=engine).run()
    return engine, flow


def test_summary_memoization_interprets_each_helper_once(tmp_path):
    engine, flow = _helper_flow(tmp_path)
    # _pivot_buffer is called twice with the same abstract input (the
    # spec dimension n) but interpreted once; _entry_guard once.
    assert engine.computed == 2


def test_helper_return_value_threads_into_the_caller(tmp_path):
    engine, flow = _helper_flow(tmp_path)
    # Each _pivot_buffer call instantiates a *fresh* caller allocation
    # site (an allocation per call, even on a memo hit), carrying the
    # helper's symbolic shape and dtype.
    assert len(flow.allocs) == 2
    for site in flow.allocs:
        assert site.shape == (V.atom(("rows", "a")),)
        assert site.dtype == V.DT_INT
    # The first call's return value flows through buf into the
    # ipiv[:] = buf store with its remapped allocation index.
    (write,) = [w for w in flow.writes
                if w.names == frozenset({"ipiv"})]
    assert isinstance(write.value, V.ArrayVal)
    assert write.value.allocs == frozenset({flow.allocs[0].index})


def test_helper_checkpoints_replay_at_depth_one(tmp_path):
    engine, flow = _helper_flow(tmp_path)
    (mark,) = flow.checkpoints
    assert mark.stage == "entry"
    assert mark.depth == 1      # LA020 only credits depth-0 checkpoints


def test_kernel_effects_derive_from_spec_intents():
    project = Project.load([STUB])
    effects = kernel_effects(project, SPECS)
    gesv = effects["gesv"]
    assert gesv.params == ("a", "b")
    assert gesv.arrays == frozenset({"a", "b"})
    assert gesv.written == frozenset({"a", "b"})
    lagge = effects["lagge"]
    assert "a" in lagge.written and "d" not in lagge.written
    # Slot alignment covers positionals and keywords alike.
    slots = gesv.slots((1,), (("b", 2),))
    assert slots == {"a": 1, "b": 2}


_LA017_SPEC = DriverSpec(
    "la_x", "§T", "synthetic classifier subject",
    args=(ArgSpec("a", 1),
          ArgSpec("ipiv", 3, kind="vector", required=False,
                  intent="out")),
    dims=(("n", "rows2d", "a"),))


def test_la017_classifier_mirrors_engine_semantics():
    spec = _LA017_SPEC
    every = {"a", "ipiv", "w", "trans"}
    # A missing optional-length arg enters as None and disarms the
    # check forever; a missing square arg violates unconditionally.
    assert _classify_check(Check(-3, "optlen", ("ipiv",), "n"),
                           spec, {"a"}) == "never"
    assert _classify_check(Check(-3, "optlen", ("ipiv",), "n"),
                           spec, every) == "ok"
    assert _classify_check(Check(-1, "square", ("a",)),
                           spec, set()) == "always"
    assert _classify_check(Check(-1, "square", ("a",)),
                           spec, every) == "ok"
    # reqlen: one side missing always fires, both missing never does
    # (the -1 sentinels agree).
    assert _classify_check(Check(-4, "reqlen", ("w",), "n"),
                           spec, {"a"}) == "always"
    assert _classify_check(Check(-4, "reqlen", ("w",), "n"),
                           spec, set()) == "never"
    # flag in "first" mode is satisfied by str(None) when "N" is legal.
    assert _classify_check(
        Check(-2, "flag", ("trans",),
              params={"options": ("N", "T"), "mode": "first"}),
        spec, set()) == "ok"
    assert _classify_check(
        Check(-2, "flag", ("uplo",),
              params={"options": ("U", "L")}),
        spec, set()) == "always"
    # lsame(None, 'F') is False: the fact guard never opens.
    assert _classify_check(Check(-5, "fact_requires", ("fact",)),
                           spec, set()) == "never"


def test_la017_shadowed_checks_detects_duplicates():
    dup = DriverSpec(
        "la_x", "§T", "synthetic", args=_LA017_SPEC.args,
        dims=_LA017_SPEC.dims,
        checks=(Check(-1, "square", ("a",)),
                Check(-2, "optlen", ("ipiv",), "n"),
                Check(-3, "square", ("a",))))
    ((shadowed, first),) = _shadowed_checks(dup)
    assert shadowed.code == -3 and first.code == -1
    assert _shadowed_checks(_LA017_SPEC) == []


# -- the shipped tree passes the new rules ----------------------------

def test_shipped_tree_clean_under_flow_rules():
    src = os.path.join(REPO, "src", "repro")
    found = _findings([src])
    flow_findings = [f for f in found if f.code >= "LA011"]
    assert flow_findings == [], \
        "\n".join(f.render() for f in flow_findings)


def test_shipped_gesvd_writes_its_ww_output():
    """The LA012 true positive this PR fixed must stay fixed: la_gesvd
    now threads the bidiagonal superdiagonal into ww."""
    src = os.path.join(REPO, "src", "repro", "core", "eigen.py")
    assert _findings([src], "LA012") == []
